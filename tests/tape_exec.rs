//! Differential suite for the execution engines, now a **five-way**
//! comparison with an **ISA axis**: the ahead-of-time compiled native
//! tier (a dlopen'd `.so` emitted from the same superword tape), the
//! in-process SIMD chain (compiled per vector ISA — AVX2/FMA, NEON, or
//! the scalar reference), the superword backend, the scalar tape, the
//! tree-walking interpreter, and the naive reference must agree. Where
//! the computation is literally the same sequence of f32 operations
//! (superword vs. tape vs. interpreter, arena vs. legacy driver, 1 vs. N
//! threads, ic vs. jc split — and any one SIMD chain against *itself*
//! across drivers and thread counts), they must agree **bit for bit**.
//! The native tier is emitted so that each lane performs the same fused
//! (or, on the scalar floor, unfused) operations as the simd chain, so
//! native vs. simd is held to exact equality on every host — including
//! hosts without a C toolchain, where "native" silently *is* the simd
//! chain. The native ISAs contract their FMAs, so against the portable
//! tiers they are held to the accumulation-scaled ULP bound of
//! `common::assert_fma_close`; the scalar ISA chain does not contract
//! and is held to exact equality — which is also what `EXO_ISA=scalar`
//! (the CI forced-scalar leg) pins process-wide, and what
//! `EXO_BACKEND=superword` (the CI fallback leg) gets by skipping the
//! chains entirely. `EXO_CC=/nonexistent/cc` (the CI poisoned-toolchain
//! leg) disables only the ahead-of-time tier; every test here must still
//! pass, with the native legs collapsing onto the simd chain.

mod common;

use std::sync::Arc;

use common::{assert_fma_close, Cases};
use exo_gemm::exo_codegen::SimdKernel;
use exo_gemm::exo_isa::neon_f32;
use exo_gemm::gemm_blis::{
    active_isa, exo_kernel, exo_kernel_interp, exo_kernel_simd, exo_kernel_superword, exo_kernel_tape,
    naive_gemm, native_available, toolchain, BlisGemm, BlockingParams, ExecBackend, GemmProblem, IsaKind,
    Matrix,
};
use exo_gemm::ukernel_gen::{KernelCache, KernelSet, MicroKernelGenerator};

fn packed_operands(mr: usize, nr: usize, kc: usize, cases: &mut Cases) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..kc * mr).map(|_| cases.f32_unit()).collect();
    let b: Vec<f32> = (0..kc * nr).map(|_| cases.f32_unit()).collect();
    let c: Vec<f32> = (0..mr * nr).map(|_| cases.f32_unit()).collect();
    (a, b, c)
}

/// Five-way differential on every registry tile shape, across several KC
/// values including `k = 0` and `k = 1`: superword ≡ tape ≡ interpreter
/// bit-for-bit, the SIMD chain within the FMA-contraction bound, and the
/// ahead-of-time native tier **bit-identical to the SIMD chain** — with a
/// toolchain because the emitted C performs the same per-lane fused ops,
/// without one because the fallback *is* the chain.
#[test]
fn native_simd_superword_tape_and_interpreter_agree_across_registry_shapes() {
    let cache = KernelCache::new();
    let generator = MicroKernelGenerator::new(neon_f32());
    let mut cases = Cases::new(0x7a9e);
    for (mr, nr) in KernelSet::paper_shapes() {
        let kernel = cache.get_or_generate(&generator, mr, nr).unwrap();
        assert!(kernel.tape.is_some(), "{mr}x{nr} must tape-compile");
        let sw = kernel.superword.as_ref().unwrap_or_else(|| panic!("{mr}x{nr} must superword-compile"));
        assert!(sw.vector_op_count() > 0, "{mr}x{nr} must pack whole-vector ops");
        let chain = kernel.simd.as_ref().unwrap_or_else(|| {
            panic!("{mr}x{nr} must compile a SIMD chain (the scalar ISA floor exists everywhere)")
        });
        assert_eq!(chain.isa(), exo_gemm::gemm_blis::active_isa(), "{mr}x{nr}: chain targets the active ISA");
        // Settle the asynchronous native verdict before measuring, so the
        // bit-faithfulness leg below actually exercises the compiled tier
        // whenever a toolchain answers. A None verdict (no toolchain, or
        // the engine declined) is fine — the fallback covers it below.
        if let Some(native) = kernel.native_wait() {
            assert!(native_available(), "{mr}x{nr}: a native kernel implies an answering toolchain");
            assert_eq!(native.isa(), active_isa(), "{mr}x{nr}: native artifact targets the active ISA");
        }
        for kc in [0usize, 1, 2, 17, 64] {
            let (a, b, c0) = packed_operands(mr, nr, kc, &mut cases);
            let mut c_simd = c0.clone();
            kernel.run_packed(kc, &a, &b, &mut c_simd).unwrap();
            let mut c_sw = c0.clone();
            kernel.run_packed_superword(kc, &a, &b, &mut c_sw).unwrap();
            let mut c_tape = c0.clone();
            kernel.run_packed_tape(kc, &a, &b, &mut c_tape).unwrap();
            let mut c_interp = c0.clone();
            kernel.run_packed_interp(kc, &a, &b, &mut c_interp).unwrap();
            let mut c_native = c0.clone();
            kernel.run_packed_native(kc, &a, &b, &mut c_native).unwrap();
            assert_eq!(c_native, c_simd, "{mr}x{nr} kc={kc}: native must be bit-faithful to simd");
            assert_eq!(c_sw, c_tape, "{mr}x{nr} kc={kc}: superword vs tape");
            assert_eq!(c_tape, c_interp, "{mr}x{nr} kc={kc}: tape vs interpreter");
            assert_fma_close(&c_simd, &c_sw, kc, &format!("{mr}x{nr} kc={kc}: simd vs superword"));
            if kc == 0 {
                assert_eq!(c_simd, c_sw, "{mr}x{nr} kc=0: no FMA executes, all tiers bit-equal");
            }
        }
    }
    // The cache compiled each tape, superword, and simd lowering exactly
    // once, alongside its kernel.
    assert_eq!(cache.generator_invocations(), KernelSet::paper_shapes().len() as u64);
}

/// All five tiers agree with `naive_gemm` (to accumulation tolerance) on
/// fringe-heavy problems through the full five-loop driver; the portable
/// driver runs are bit-identical to each other, the native (default)
/// driver run is bit-identical to the pinned-simd run, and both stay
/// within the FMA bound of the portable tiers.
#[test]
fn native_and_simd_drivers_match_naive_on_fringe_heavy_problems() {
    let generator = MicroKernelGenerator::new(neon_f32());
    let mut cases = Cases::new(0x51ab);
    // (mr, nr) x (m, n, k) including m < mr, n < nr, and k = 1.
    let shapes = [(8usize, 12usize), (4, 4), (1, 8)];
    let problems = [(3usize, 5usize, 1usize), (5, 40, 9), (13, 7, 23), (50, 45, 16), (8, 12, 1)];
    for &(mr, nr) in &shapes {
        let kernel = Arc::new(generator.generate(mr, nr).unwrap());
        // Settle the native tier up front so the default driver's runs
        // exercise the compiled artifact deterministically (when a
        // toolchain answers) instead of racing the background build.
        let _ = kernel.native_wait();
        for &(m, n, k) in &problems {
            let a = Matrix::from_fn(m, k, |_, _| cases.f32_unit());
            let b = Matrix::from_fn(k, n, |_, _| cases.f32_unit());
            let c0 = Matrix::from_fn(m, n, |_, _| cases.f32_unit());
            let blocking = BlockingParams { mc: 16, kc: 8, nc: 24, mr, nr };
            let run = |kimpl| {
                let mut c = c0.clone();
                BlisGemm::new(blocking)
                    .gemm_with(&kimpl, GemmProblem::new(a.view(), b.view(), c.view_mut()))
                    .unwrap();
                c
            };

            let c_native = run(exo_kernel(Arc::clone(&kernel)));
            let c_simd = run(exo_kernel_simd(Arc::clone(&kernel)));
            let c_sw = run(exo_kernel_superword(Arc::clone(&kernel)));
            let c_tape = run(exo_kernel_tape(Arc::clone(&kernel)));
            let c_interp = run(exo_kernel_interp(Arc::clone(&kernel)));
            assert_eq!(
                c_native.data, c_simd.data,
                "{mr}x{nr} on {m}x{n}x{k}: native (default) vs pinned-simd driver"
            );
            assert_eq!(c_sw.data, c_tape.data, "{mr}x{nr} on {m}x{n}x{k}: superword vs tape driver");
            assert_eq!(c_tape.data, c_interp.data, "{mr}x{nr} on {m}x{n}x{k}: tape vs interp driver");
            assert_fma_close(
                &c_simd.data,
                &c_sw.data,
                k,
                &format!("{mr}x{nr} on {m}x{n}x{k}: simd vs superword driver"),
            );

            let mut c_ref = c0.clone();
            naive_gemm(&a, &b, &mut c_ref);
            for idx in 0..c_simd.data.len() {
                assert!(
                    (c_simd.data[idx] - c_ref.data[idx]).abs() < 1e-3,
                    "{mr}x{nr} on {m}x{n}x{k} mismatch at {idx}: {} vs {}",
                    c_simd.data[idx],
                    c_ref.data[idx]
                );
            }
        }
    }
}

/// The programmatic backend pin: `with_backend(Superword)` on the simd
/// default must be bit-identical to the dedicated superword pin through
/// the full driver — the portable fallback really is the unchanged
/// superword path, not a third code path.
#[test]
fn forced_superword_fallback_is_bit_identical_to_the_superword_pin() {
    let generator = MicroKernelGenerator::new(neon_f32());
    let kernel = Arc::new(generator.generate(8, 12).unwrap());
    let mut cases = Cases::new(0xfa11);
    let blocking = BlockingParams { mc: 16, kc: 8, nc: 24, mr: 8, nr: 12 };
    for &(m, n, k) in &[(37usize, 29usize, 23usize), (8, 60, 9)] {
        let a = Matrix::from_fn(m, k, |_, _| cases.f32_unit());
        let b = Matrix::from_fn(k, n, |_, _| cases.f32_unit());
        let c0 = Matrix::from_fn(m, n, |_, _| cases.f32_unit());
        let mut c_forced = c0.clone();
        BlisGemm::new(blocking)
            .gemm_with(
                &exo_kernel(Arc::clone(&kernel)).with_backend(ExecBackend::Superword),
                GemmProblem::new(a.view(), b.view(), c_forced.view_mut()),
            )
            .unwrap();
        let mut c_sw = c0.clone();
        BlisGemm::new(blocking)
            .gemm_with(
                &exo_kernel_superword(Arc::clone(&kernel)),
                GemmProblem::new(a.view(), b.view(), c_sw.view_mut()),
            )
            .unwrap();
        assert_eq!(c_forced.data, c_sw.data, "{m}x{n}x{k}");
    }
}

/// The arena hot path computes bit-identical results to the legacy
/// allocate-per-block path — per tier, including the SIMD chain (same op
/// order either way).
#[test]
fn arena_driver_is_bit_identical_to_the_legacy_driver() {
    let generator = MicroKernelGenerator::new(neon_f32());
    let kernel = Arc::new(generator.generate(8, 8).unwrap());
    let mut cases = Cases::new(0xc0de);
    for &(m, n, k) in &[(64usize, 64usize, 64usize), (37, 53, 29), (7, 3, 11)] {
        let a = Matrix::from_fn(m, k, |_, _| cases.f32_unit());
        let b = Matrix::from_fn(k, n, |_, _| cases.f32_unit());
        let c0 = Matrix::from_fn(m, n, |_, _| cases.f32_unit());
        let blocking = BlockingParams { mc: 24, kc: 16, nc: 32, mr: 8, nr: 8 };
        for (label, kimpl) in [
            ("simd", exo_kernel(Arc::clone(&kernel))),
            ("superword", exo_kernel_superword(Arc::clone(&kernel))),
        ] {
            let mut c_arena = c0.clone();
            BlisGemm::new(blocking)
                .gemm_with(&kimpl, GemmProblem::new(a.view(), b.view(), c_arena.view_mut()))
                .unwrap();
            let mut c_legacy = c0.clone();
            BlisGemm::new(blocking)
                .without_arena()
                .gemm_with(&kimpl, GemmProblem::new(a.view(), b.view(), c_legacy.view_mut()))
                .unwrap();
            assert_eq!(c_arena.data, c_legacy.data, "{m}x{n}x{k} {label}");
        }
    }
}

/// `threads = 1` and `threads = N` produce identical `C` on the SIMD
/// default: the `ic` blocks write disjoint row ranges, each computed in
/// the same order — the chain is deterministic, so even the contracted
/// FMAs agree bit-for-bit across thread counts.
#[test]
fn thread_count_never_changes_the_result() {
    let generator = MicroKernelGenerator::new(neon_f32());
    let kernel = Arc::new(generator.generate(8, 12).unwrap());
    let mut cases = Cases::new(0xbeef);
    // Small mc so even modest m yields many ic blocks to spread over workers.
    let blocking = BlockingParams { mc: 8, kc: 16, nc: 36, mr: 8, nr: 12 };
    for &(m, n, k) in &[(96usize, 60usize, 33usize), (70, 25, 9)] {
        let a = Matrix::from_fn(m, k, |_, _| cases.f32_unit());
        let b = Matrix::from_fn(k, n, |_, _| cases.f32_unit());
        let c0 = Matrix::from_fn(m, n, |_, _| cases.f32_unit());
        let mut c1 = c0.clone();
        BlisGemm::new(blocking)
            .gemm_with(&exo_kernel(Arc::clone(&kernel)), GemmProblem::new(a.view(), b.view(), c1.view_mut()))
            .unwrap();
        for threads in [2usize, 4, 7] {
            let mut cn = c0.clone();
            BlisGemm::new(blocking)
                .with_threads(threads)
                .gemm_with(
                    &exo_kernel(Arc::clone(&kernel)),
                    GemmProblem::new(a.view(), b.view(), cn.view_mut()),
                )
                .unwrap();
            assert_eq!(c1.data, cn.data, "{m}x{n}x{k} with {threads} threads");
        }
    }
}

/// Wide-and-short problems take the `jc` column split instead of the `ic`
/// row split; across fringe-heavy shapes, every backend tier, and 1–7
/// threads the split must stay bit-identical to that tier's sequential
/// run and match the naive reference.
#[test]
fn jc_split_is_bit_identical_across_backends_and_thread_counts() {
    let generator = MicroKernelGenerator::new(neon_f32());
    let kernel = Arc::new(generator.generate(8, 12).unwrap());
    let mut cases = Cases::new(0x1c0f);
    // Single ic block (m <= mc) with many nc-wide jc blocks, including a
    // fringe column block and a fringe row range.
    let blocking = BlockingParams { mc: 32, kc: 16, nc: 24, mr: 8, nr: 12 };
    for &(m, n, k) in &[(8usize, 200usize, 33usize), (13, 100, 9), (5, 49, 17)] {
        let a = Matrix::from_fn(m, k, |_, _| cases.f32_unit());
        let b = Matrix::from_fn(k, n, |_, _| cases.f32_unit());
        let c0 = Matrix::from_fn(m, n, |_, _| cases.f32_unit());
        for (label, kimpl) in [
            ("simd", exo_kernel(Arc::clone(&kernel))),
            ("superword", exo_kernel_superword(Arc::clone(&kernel))),
            ("tape", exo_kernel_tape(Arc::clone(&kernel))),
        ] {
            let mut c_seq = c0.clone();
            BlisGemm::new(blocking)
                .gemm_with(&kimpl, GemmProblem::new(a.view(), b.view(), c_seq.view_mut()))
                .unwrap();
            for threads in [2usize, 4, 7] {
                let mut c_par = c0.clone();
                BlisGemm::new(blocking)
                    .with_threads(threads)
                    .gemm_with(&kimpl, GemmProblem::new(a.view(), b.view(), c_par.view_mut()))
                    .unwrap();
                assert_eq!(
                    c_seq.data, c_par.data,
                    "{m}x{n}x{k} jc split, {threads} threads, {label} backend"
                );
            }
            let mut c_ref = c0.clone();
            naive_gemm(&a, &b, &mut c_ref);
            for idx in 0..c_seq.data.len() {
                assert!((c_seq.data[idx] - c_ref.data[idx]).abs() < 1e-3, "{m}x{n}x{k} at {idx} ({label})");
            }
        }
    }
}

/// The ISA axis of the differential suite: for every registry shape and
/// every vector ISA the host can run, the chain compiled *for that ISA*
/// (via `SimdKernel::compile_for`, independent of the `EXO_ISA` pin) must
/// agree with the portable superword reference — the scalar chain **bit
/// for bit** (it rounds multiply-then-add exactly like the portable
/// tiers), the native AVX2/NEON chains within the documented
/// FMA-contraction bound.
#[test]
fn every_available_isa_matches_superword_across_registry_shapes() {
    let generator = MicroKernelGenerator::new(neon_f32());
    let mut cases = Cases::new(0x15a5);
    let isas: Vec<IsaKind> = IsaKind::ALL.iter().copied().filter(|isa| isa.available()).collect();
    assert!(isas.contains(&IsaKind::Scalar), "the scalar reference is available on every host");
    for (mr, nr) in KernelSet::paper_shapes() {
        let kernel = generator.generate(mr, nr).unwrap();
        let sw = kernel.superword.as_ref().unwrap_or_else(|| panic!("{mr}x{nr} must superword-compile"));
        for &isa in &isas {
            let chain = SimdKernel::compile_for(Arc::clone(sw), isa)
                .unwrap_or_else(|| panic!("{mr}x{nr}: {isa} is available but declined the chain"));
            assert_eq!(chain.isa(), isa);
            for kc in [0usize, 1, 2, 17, 64] {
                let (a, b, c0) = packed_operands(mr, nr, kc, &mut cases);
                let mut c_sw = c0.clone();
                sw.run_packed(kc, &a, &b, &mut c_sw).unwrap();
                let mut c_chain = c0.clone();
                chain.run_packed(kc, &a, &b, &mut c_chain).unwrap();
                if isa.contracts_fma() {
                    assert_fma_close(&c_chain, &c_sw, kc, &format!("{mr}x{nr} kc={kc}: {isa} vs superword"));
                } else {
                    assert_eq!(c_chain, c_sw, "{mr}x{nr} kc={kc}: the scalar chain must be bit-exact");
                }
            }
        }
    }
}

/// The masked-fringe axis: a staged kernel whose lane runs (6 and 3) are
/// *not* multiples of any native vector width, so the NEON chain must take
/// its masked partial-vector path (one whole `float32x4_t` plus a 2-lane
/// masked fringe per 6-lane run) and the AVX2 chain its `__m128`-quarter +
/// scalar-tail path. Every available ISA must still agree with the
/// superword reference under the same per-ISA contract as the registry
/// shapes.
#[test]
fn fringe_lane_runs_take_the_masked_partial_vector_path_on_every_isa() {
    use exo_gemm::exo_ir::builder::*;
    use exo_gemm::exo_ir::{Expr, MemSpace, ScalarType};

    let (mr, nr) = (6i64, 3i64);
    let p = proc("ukr_6x3_staged")
        .size_arg("KC")
        .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(mr)], MemSpace::Dram)
        .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), int(nr)], MemSpace::Dram)
        .tensor_arg("C", ScalarType::F32, vec![int(nr * mr)], MemSpace::Dram)
        .body(vec![
            alloc("Ct", ScalarType::F32, vec![int(nr), int(mr)], MemSpace::Neon),
            alloc("Ra", ScalarType::F32, vec![int(mr)], MemSpace::Neon),
            alloc("Rb", ScalarType::F32, vec![int(nr)], MemSpace::Neon),
            for_(
                "j",
                0,
                nr,
                vec![for_(
                    "i",
                    0,
                    mr,
                    vec![assign(
                        "Ct",
                        vec![var("j"), var("i")],
                        read("C", vec![Expr::add(Expr::mul(var("j"), int(mr)), var("i"))]),
                    )],
                )],
            ),
            for_(
                "k",
                0,
                var("KC"),
                vec![
                    for_(
                        "i",
                        0,
                        mr,
                        vec![assign("Ra", vec![var("i")], read("Ac", vec![var("k"), var("i")]))],
                    ),
                    for_(
                        "j",
                        0,
                        nr,
                        vec![assign("Rb", vec![var("j")], read("Bc", vec![var("k"), var("j")]))],
                    ),
                    for_(
                        "j",
                        0,
                        nr,
                        vec![for_(
                            "i",
                            0,
                            mr,
                            vec![reduce(
                                "Ct",
                                vec![var("j"), var("i")],
                                Expr::mul(read("Ra", vec![var("i")]), read("Rb", vec![var("j")])),
                            )],
                        )],
                    ),
                ],
            ),
            for_(
                "j",
                0,
                nr,
                vec![for_(
                    "i",
                    0,
                    mr,
                    vec![assign(
                        "C",
                        vec![Expr::add(Expr::mul(var("j"), int(mr)), var("i"))],
                        read("Ct", vec![var("j"), var("i")]),
                    )],
                )],
            ),
        ])
        .build();
    let sw = Arc::new(exo_gemm::exo_codegen::compile(&p).unwrap().to_superword().unwrap());
    assert!(sw.vector_op_count() > 0, "the 6-lane staged tiles must pack whole-vector ops");
    let (mr, nr) = (mr as usize, nr as usize);
    let mut cases = Cases::new(0xf41e);
    for isa in IsaKind::ALL.iter().copied().filter(|isa| isa.available()) {
        let chain = SimdKernel::compile_for(Arc::clone(&sw), isa)
            .unwrap_or_else(|| panic!("{isa} declined the fringe kernel"));
        for kc in [0usize, 1, 2, 17, 64] {
            let (a, b, c0) = packed_operands(mr, nr, kc, &mut cases);
            let mut c_sw = c0.clone();
            sw.run_packed(kc, &a, &b, &mut c_sw).unwrap();
            let mut c_chain = c0.clone();
            chain.run_packed(kc, &a, &b, &mut c_chain).unwrap();
            if isa.contracts_fma() {
                assert_fma_close(&c_chain, &c_sw, kc, &format!("fringe {mr}x{nr} kc={kc}: {isa}"));
            } else {
                assert_eq!(c_chain, c_sw, "fringe {mr}x{nr} kc={kc}: scalar chain must be bit-exact");
            }
        }
    }
}

/// The reported-ISA probe the cross-target CI matrix asserts against: the
/// runtime selection must actually pick the native ISA of the build target
/// (NEON under the aarch64/QEMU job, AVX2 on the x86 runners) unless
/// `EXO_ISA` pins one — and a pinned run must report exactly the pin.
/// `simd_available()` means "a native ISA was selected", so the
/// forced-scalar leg reports `false` even on AVX2 hosts.
#[test]
fn the_active_isa_is_the_native_one_unless_pinned() {
    let active = active_isa();
    assert!(active.available());
    assert_eq!(exo_gemm::gemm_blis::simd_available(), active != IsaKind::Scalar);
    match exo_gemm::gemm_blis::env_isa_override() {
        Some(pinned) => assert_eq!(active, pinned, "EXO_ISA pin must win the selection"),
        None => {
            #[cfg(target_arch = "aarch64")]
            assert_eq!(active, IsaKind::Neon, "NEON is baseline on aarch64 and must be selected");
            #[cfg(target_arch = "x86_64")]
            if IsaKind::Avx2.available() {
                assert_eq!(active, IsaKind::Avx2, "AVX2 hosts must select the AVX2 chain");
            } else {
                assert_eq!(active, IsaKind::Scalar);
            }
        }
    }
    // The generator's chains report the same selection.
    let kernel = MicroKernelGenerator::new(neon_f32()).generate(4, 4).unwrap();
    assert_eq!(kernel.simd.as_ref().expect("scalar floor").isa(), active);
}

/// The native-tier probe the CI toolchain legs assert against. With an
/// answering C compiler (the ordinary runners), the registry kernel must
/// actually compile, load, and target the active ISA — the tier being
/// "available but silently declined" would hide a real regression. With
/// none (`EXO_CC=/nonexistent/cc` on the poisoned leg, or a genuinely
/// bare host), the tier must vanish without a single error surfacing:
/// `native_available()` is false, no artifact exists, and the Native
/// entry points still answer — running the simd chain, bit for bit.
#[test]
fn the_native_tier_follows_the_toolchain_probe_and_never_errors() {
    assert_eq!(ExecBackend::default(), ExecBackend::Native, "Native is the top of the default ladder");
    assert_eq!(ExecBackend::Native.degraded(), Some(ExecBackend::Simd), "and degrades onto simd");
    let kernel = Arc::new(MicroKernelGenerator::new(neon_f32()).generate(8, 12).unwrap());
    match toolchain() {
        Some(tc) => {
            assert!(native_available());
            assert!(!tc.cc.is_empty() && !tc.version.is_empty(), "the probe records cc and version");
            let native = kernel.native_wait().unwrap_or_else(|| {
                panic!("toolchain `{}` answered but the 8x12 kernel did not compile natively", tc.cc)
            });
            assert_eq!(native.isa(), active_isa(), "the artifact targets the active ISA");
        }
        None => {
            assert!(!native_available());
            assert!(kernel.native_wait().is_none(), "no toolchain, no artifact — and no error either");
        }
    }
    // Both probe branches continue here: the packed entry point and the
    // full driver under an explicit `Native` pin answer identically to
    // the simd chain, so a toolchain outage is invisible except in speed.
    let mut cases = Cases::new(0xaa07);
    for kc in [0usize, 1, 7, 33] {
        let (a, b, c0) = packed_operands(8, 12, kc, &mut cases);
        let mut c_native = c0.clone();
        kernel.run_packed_native(kc, &a, &b, &mut c_native).unwrap();
        let mut c_simd = c0.clone();
        kernel.simd.as_ref().expect("scalar floor").run_packed(kc, &a, &b, &mut c_simd).unwrap();
        assert_eq!(c_native, c_simd, "kc={kc}: native entry point vs simd chain");
    }
    let blocking = BlockingParams { mc: 16, kc: 8, nc: 24, mr: 8, nr: 12 };
    for &(m, n, k) in &[(37usize, 29usize, 23usize), (8, 60, 9)] {
        let a = Matrix::from_fn(m, k, |_, _| cases.f32_unit());
        let b = Matrix::from_fn(k, n, |_, _| cases.f32_unit());
        let c0 = Matrix::from_fn(m, n, |_, _| cases.f32_unit());
        let mut c_native = c0.clone();
        BlisGemm::new(blocking)
            .gemm_with(
                &exo_kernel(Arc::clone(&kernel)).with_backend(ExecBackend::Native),
                GemmProblem::new(a.view(), b.view(), c_native.view_mut()),
            )
            .unwrap();
        let mut c_simd = c0.clone();
        BlisGemm::new(blocking)
            .gemm_with(
                &exo_kernel_simd(Arc::clone(&kernel)),
                GemmProblem::new(a.view(), b.view(), c_simd.view_mut()),
            )
            .unwrap();
        assert_eq!(c_native.data, c_simd.data, "{m}x{n}x{k}: Native pin vs simd pin through the driver");
    }
}
