//! Integration tests of the `exo-tune` subsystem against the acceptance
//! criteria of its introduction:
//!
//! * every kernel the design-space enumerator proposes computes
//!   `C += A * B` exactly like `gemm_blis::naive_gemm`,
//! * a warm registry performs zero generator invocations,
//! * a second tuning run loads every verdict from the persisted cache,
//! * the tuned `ALG+EXO` path is at least as fast (modelled) as the fixed
//!   8x12 default on the Fig. 14 square sweep,
//! * every ResNet50 GEMM shape gets a per-layer kernel.

mod common;

use common::Cases;
use dnn_models::{resnet50_table, vgg16_table};
use exo_tune::{KernelRegistry, TunedGemm, Tuner};
use gemm_blis::{naive_gemm, GemmExecutor, GemmProblem, Implementation, Matrix, SimOptions};
use ukernel_gen::MicroKernelGenerator;

fn temp_registry_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("exo-tune-it-{tag}-{}.json", std::process::id()))
}

/// Property: every tile the enumerator proposes generates a kernel that
/// agrees with the naive reference on random data (via `run_packed`).
#[test]
fn every_enumerated_kernel_matches_naive_gemm() {
    let tuner = Tuner::new();
    let generator = MicroKernelGenerator::new(tuner.isa().clone());
    let mut cases = Cases::new(0xE1_0001);
    let tiles = tuner.space().tile_shapes();
    assert!(!tiles.is_empty());
    for tile in tiles {
        let (mr, nr) = (tile.mr, tile.nr);
        let kernel = generator.generate(mr, nr).unwrap();
        for &kc in &[1usize, 7, 24] {
            let a: Vec<f32> = (0..kc * mr).map(|_| cases.f32_unit()).collect();
            let b: Vec<f32> = (0..kc * nr).map(|_| cases.f32_unit()).collect();
            let mut c: Vec<f32> = (0..mr * nr).map(|_| cases.f32_unit()).collect();
            let mut c_ref = c.clone();
            kernel.run_packed(kc, &a, &b, &mut c).unwrap();
            for k in 0..kc {
                for j in 0..nr {
                    for i in 0..mr {
                        c_ref[j * mr + i] += a[k * mr + i] * b[k * nr + j];
                    }
                }
            }
            for (idx, (x, y)) in c.iter().zip(&c_ref).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-3 * y.abs().max(1.0),
                    "{mr}x{nr} (kc={kc}) mismatch at {idx}: {x} vs {y}"
                );
            }
        }
    }
}

/// A warm registry answers repeat shapes with zero generator invocations.
#[test]
fn warm_registry_skips_the_generator() {
    let tuner = Tuner::new();
    tuner.tune(300, 200, 100).unwrap();
    let after_search = tuner.registry().generator_invocations();
    assert!(after_search > 0, "the cold search must generate candidates");

    // Same shape again: memoised verdict, no generator activity.
    tuner.tune(300, 200, 100).unwrap();
    assert_eq!(tuner.registry().generator_invocations(), after_search);

    // A different shape reuses the cached kernels: still no new generation
    // (the candidate tile set is problem-independent).
    tuner.tune(128, 128, 128).unwrap();
    assert_eq!(tuner.registry().generator_invocations(), after_search);
}

/// Acceptance: a second tuning run over a persisted registry loads every
/// verdict from disk and never invokes the generator.
#[test]
fn second_run_loads_every_verdict_from_the_persisted_cache() {
    let path = temp_registry_path("second-run");
    let _ = std::fs::remove_file(&path);
    let shapes: Vec<(usize, usize, usize)> = resnet50_table().gemm_shapes();

    // First run: cold search, persists verdicts.
    {
        let registry = KernelRegistry::with_persistence("neon-f32", &path).unwrap();
        let tuner = Tuner::with_registry(registry).unwrap();
        let verdicts = tuner.tune_all(&shapes).unwrap();
        assert_eq!(verdicts.len(), shapes.len());
        assert!(tuner.registry().generator_invocations() > 0);
    }

    // Second run: every verdict comes from the file, generator untouched.
    let registry = KernelRegistry::with_persistence("neon-f32", &path).unwrap();
    assert_eq!(registry.len(), shapes.len(), "all verdicts must be persisted");
    let tuner = Tuner::with_registry(registry).unwrap();
    let verdicts = tuner.tune_all(&shapes).unwrap();
    assert_eq!(verdicts.len(), shapes.len());
    assert_eq!(tuner.registry().generator_invocations(), 0, "a warm run must not invoke the generator");
    let _ = std::fs::remove_file(&path);
}

/// Acceptance: on the Fig. 14 square sweep the tuned kernels are modelled
/// at least as fast as the fixed 8x12 default.
#[test]
fn tuned_kernels_meet_or_beat_the_fixed_8x12_default_on_fig14_squares() {
    let tuner = Tuner::new();
    let monolithic = tuner.simulator(SimOptions { monolithic_exo: true, ..SimOptions::default() }).unwrap();
    for size in [1000usize, 2000, 3000, 4000, 5000] {
        let tuned = tuner.tune(size, size, size).unwrap();
        let fixed = monolithic.simulate(Implementation::AlgExo, size, size, size).gflops;
        assert!(
            tuned.predicted_gflops >= fixed - 1e-9,
            "size {size}: tuned {} GFLOPS < fixed 8x12 {fixed} GFLOPS",
            tuned.predicted_gflops
        );
    }
}

/// Acceptance: every ResNet50 GEMM shape gets a per-layer kernel, and the
/// winning tiles are specialised (not one global shape). VGG16 rides along.
#[test]
fn resnet50_layers_each_get_a_tuned_kernel() {
    let tuner = Tuner::new();
    for workload in [resnet50_table(), vgg16_table()] {
        let plans = exo_tune::tune_workload(&tuner, &workload).unwrap();
        assert_eq!(plans.len(), workload.unique_layers.len());
        for plan in &plans {
            assert!(plan.verdict.mr > 0 && plan.verdict.nr > 0);
            assert!(plan.verdict.predicted_gflops > 0.0);
            // The chosen tile must actually exist in the design space.
            assert!(tuner
                .space()
                .tile_shapes()
                .iter()
                .any(|t| (t.mr, t.nr) == (plan.verdict.mr, plan.verdict.nr)));
        }
    }
    // Per-layer specialisation: ResNet50's shapes do not all pick one tile.
    let resnet_tiles: std::collections::BTreeSet<(usize, usize)> = resnet50_table()
        .gemm_shapes()
        .iter()
        .map(|&(m, n, k)| {
            let v = tuner.tune(m, n, k).unwrap();
            (v.mr, v.nr)
        })
        .collect();
    assert!(resnet_tiles.len() > 1, "expected specialised per-layer tiles, got {resnet_tiles:?}");
}

/// The `TunedGemm` front-end computes the right answer on fringe-heavy
/// problems while memoising per-shape verdicts.
#[test]
fn tuned_gemm_front_end_is_correct_and_memoises() {
    let tuned = TunedGemm::new();
    let mut cases = Cases::new(0xE1_0002);
    for &(m, n, k) in &[(33usize, 47usize, 21usize), (64, 64, 64), (13, 100, 9)] {
        let a = Matrix::from_fn(m, k, |_, _| cases.f32_unit());
        let b = Matrix::from_fn(k, n, |_, _| cases.f32_unit());
        let mut c = Matrix::zeros(m, n);
        let mut c_ref = Matrix::zeros(m, n);
        let stats = tuned.gemm(GemmProblem::new(a.view(), b.view(), c.view_mut())).unwrap();
        naive_gemm(&a, &b, &mut c_ref);
        for (idx, (x, y)) in c.data.iter().zip(&c_ref.data).enumerate() {
            assert!(
                (x - y).abs() <= 2e-3 * y.abs().max(1.0),
                "{m}x{n}x{k} ({}) mismatch at {idx}: {x} vs {y}",
                stats.kernel
            );
        }
    }
    assert_eq!(tuned.registry().len(), 3);

    // Repeat dispatch of a known shape: no additional searching.
    let invocations = tuned.registry().generator_invocations();
    let a = Matrix::zeros(64, 64);
    let b = Matrix::zeros(64, 64);
    let mut c = Matrix::zeros(64, 64);
    tuned.gemm(GemmProblem::new(a.view(), b.view(), c.view_mut())).unwrap();
    assert_eq!(tuned.registry().generator_invocations(), invocations);
    assert_eq!(tuned.registry().len(), 3);
}

/// The registry-backed simulator keeps the qualitative Fig. 14 ordering
/// while serving its kernels from the shared cache.
#[test]
fn registry_backed_simulator_preserves_fig14_ordering() {
    let tuner = Tuner::new();
    let sim = tuner.simulator(SimOptions::default()).unwrap();
    let n = 1000;
    let blis = sim.simulate(Implementation::BlisLib, n, n, n).gflops;
    let alg_exo = sim.simulate(Implementation::AlgExo, n, n, n).gflops;
    let alg_blis = sim.simulate(Implementation::AlgBlis, n, n, n).gflops;
    let alg_neon = sim.simulate(Implementation::AlgNeon, n, n, n).gflops;
    assert!(blis > alg_exo, "blis {blis} vs alg+exo {alg_exo}");
    assert!(alg_exo > alg_blis, "alg+exo {alg_exo} vs alg+blis {alg_blis}");
    assert!(alg_blis > alg_neon, "alg+blis {alg_blis} vs alg+neon {alg_neon}");
    // The widened design space can only help ALG+EXO relative to the
    // paper's eight shapes.
    let paper_sim = gemm_blis::GemmSimulator::new().unwrap();
    let paper_exo = paper_sim.simulate(Implementation::AlgExo, n, n, n).gflops;
    assert!(alg_exo >= paper_exo - 1e-9, "registry space {alg_exo} vs paper set {paper_exo}");
}
