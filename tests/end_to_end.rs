//! Cross-crate integration tests: instruction libraries -> scheduling ->
//! generated kernels -> BLIS-like GEMM driver -> numerical agreement with a
//! naive reference.

use std::sync::Arc;

use exo_isa::{avx512_f32, neon_f16, neon_f32};
use gemm_blis::{
    blis_assembly_kernel, exo_kernel, naive_gemm, neon_intrinsics_kernel, BlisGemm, BlockingParams,
    GemmProblem, Matrix,
};
use ukernel_gen::{KernelSet, MicroKernelGenerator, Strategy};

fn check_full_gemm(kernel: &gemm_blis::KernelImpl, m: usize, n: usize, k: usize) {
    let a = Matrix::from_fn(m, k, |i, j| ((i * 7 + j * 3 + 1) % 13) as f32 * 0.25 - 1.5);
    let b = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 11 + 2) % 17) as f32 * 0.125 - 1.0);
    let mut c = Matrix::from_fn(m, n, |i, j| ((i + j) % 3) as f32);
    let mut c_ref = c.clone();

    let blocking = BlockingParams { mc: 32, kc: 24, nc: 48, mr: kernel.mr, nr: kernel.nr };
    BlisGemm::new(blocking)
        .gemm_with(kernel, GemmProblem::new(a.view(), b.view(), c.view_mut()))
        .expect("gemm runs");
    naive_gemm(&a, &b, &mut c_ref);
    for (idx, (x, y)) in c.data.iter().zip(&c_ref.data).enumerate() {
        assert!((x - y).abs() < 1e-3, "{} mismatch at {idx}: {x} vs {y} for {m}x{n}x{k}", kernel.name);
    }
}

#[test]
fn generated_kernels_run_inside_the_blis_algorithm() {
    let generator = MicroKernelGenerator::new(neon_f32());
    for (mr, nr) in [(8, 12), (8, 8), (4, 4), (1, 12)] {
        let kernel = exo_kernel(Arc::new(generator.generate(mr, nr).unwrap()));
        check_full_gemm(&kernel, 40, 36, 29);
        // Fringe-heavy problem.
        check_full_gemm(&kernel, 37, 41, 23);
    }
}

#[test]
fn baseline_kernels_and_generated_kernels_agree_on_dnn_shapes() {
    let generator = MicroKernelGenerator::new(neon_f32());
    let exo = exo_kernel(Arc::new(generator.generate(8, 8).unwrap()));
    let neon = neon_intrinsics_kernel();
    let blis = blis_assembly_kernel(true);
    // A miniature version of the ResNet50 layer 12 shape (196 x 256 x 2304,
    // scaled down to keep the test fast).
    for kernel in [&exo, &neon, &blis] {
        check_full_gemm(kernel, 49, 64, 72);
    }
}

#[test]
fn all_paper_tile_shapes_generate_for_all_isas_where_applicable() {
    let neon = MicroKernelGenerator::new(neon_f32());
    let set = KernelSet::generate(&neon, &KernelSet::paper_shapes()).unwrap();
    assert_eq!(set.kernels().len(), 8);
    for kernel in set.kernels() {
        assert!(kernel.c_code.contains("void uk_"));
        assert!(!kernel.asm.is_empty());
        assert!(kernel.proc.validate().is_ok());
    }

    // The f16 target covers the multiple-of-8 shapes.
    let f16 = MicroKernelGenerator::new(neon_f16());
    let k = f16.generate(8, 8).unwrap();
    assert_eq!(k.strategy, Strategy::Laneq);
    assert!(k.c_code.contains("vfmaq_laneq_f16"));

    // The AVX-512 target has no lane-indexed FMA and falls back to the
    // broadcast recipe.
    let avx = MicroKernelGenerator::new(avx512_f32());
    let k = avx.generate(16, 12).unwrap();
    assert_eq!(k.strategy, Strategy::BroadcastB);
    assert!(k.c_code.contains("_mm512_fmadd_ps"));
}

#[test]
fn f16_kernel_matches_a_half_precision_reference() {
    let generator = MicroKernelGenerator::new(neon_f16());
    let kernel = generator.generate(8, 8).unwrap();
    let kc = 24usize;
    // Values chosen to stay exactly representable in f16 throughout.
    let a: Vec<f32> = (0..kc * 8).map(|i| ((i % 4) as f32) * 0.25).collect();
    let b: Vec<f32> = (0..kc * 8).map(|i| ((i % 3) as f32) * 0.5).collect();
    let mut c = vec![0.0f32; 64];
    kernel.run_packed(kc, &a, &b, &mut c).unwrap();
    let mut c_ref = vec![0.0f32; 64];
    for k in 0..kc {
        for j in 0..8 {
            for i in 0..8 {
                c_ref[j * 8 + i] += a[k * 8 + i] * b[k * 8 + j];
            }
        }
    }
    for (x, y) in c.iter().zip(&c_ref) {
        assert!((x - y).abs() < 1e-2, "{x} vs {y}");
    }
}

#[test]
fn generated_code_listings_match_paper_structure() {
    let generator = MicroKernelGenerator::new(neon_f32());
    let kernel = generator.generate(8, 12).unwrap();
    // v1..v6 snapshots (Figs. 6-11).
    assert_eq!(kernel.steps.len(), 6);
    // The register tiles of Fig. 8/9.
    let final_text = exo_ir::printer::proc_to_string(&kernel.proc);
    assert!(final_text.contains("C_reg: f32[12, 2, 4] @ Neon"));
    assert!(final_text.contains("A_reg: f32[2, 4] @ Neon"));
    assert!(final_text.contains("B_reg: f32[3, 4] @ Neon"));
    // The Fig. 12 instruction mix: 2 ldp + 1 ldr + 24 fmla per iteration.
    let counts = exo_codegen::count_mnemonics(&kernel.asm);
    assert_eq!(counts.get("fmla"), Some(&24));
    assert_eq!(counts.get("ldp").copied().unwrap_or(0) * 2 + counts.get("ldr").copied().unwrap_or(0), 5);
}
