//! Integration tests asserting the qualitative results of the paper's
//! evaluation section on the modelled hardware: the orderings and crossover
//! behaviour of Figs. 13–18 and the contents of Tables I–II.

use dnn_models::{resnet50_table, vgg16_table};
use gemm_blis::{GemmSimulator, Implementation};

fn simulator() -> GemmSimulator {
    GemmSimulator::new().expect("simulator builds")
}

#[test]
fn fig13_solo_mode_shape() {
    let sim = simulator();
    let kc = 512;
    // Native shape: all close, EXO on top, everything in [25, peak].
    let exo = sim.simulate_solo(Implementation::AlgExo, 8, 12, kc).gflops;
    let blis = sim.simulate_solo(Implementation::BlisLib, 8, 12, kc).gflops;
    let neon = sim.simulate_solo(Implementation::AlgNeon, 8, 12, kc).gflops;
    assert!(exo >= blis && blis >= neon);
    assert!(neon > 25.0 && exo < sim.core().peak_gflops());
    // Edge cases: the specialised kernel wins by a factor that grows as the
    // tile shrinks (Fig. 13's dominant feature).
    let exo44 = sim.simulate_solo(Implementation::AlgExo, 4, 4, kc).gflops;
    let blis44 = sim.simulate_solo(Implementation::BlisLib, 4, 4, kc).gflops;
    assert!(exo44 > 2.0 * blis44, "4x4: exo {exo44} vs blis {blis44}");
    let exo88 = sim.simulate_solo(Implementation::AlgExo, 8, 8, kc).gflops;
    let blis88 = sim.simulate_solo(Implementation::BlisLib, 8, 8, kc).gflops;
    assert!(exo88 > 1.3 * blis88, "8x8: exo {exo88} vs blis {blis88}");
    // Monolithic kernels scale with the useful fraction of the tile.
    assert!(blis44 < blis88);
}

#[test]
fn fig14_square_gemm_shape() {
    let sim = simulator();
    for n in [1000usize, 2000, 4000] {
        let blis = sim.simulate(Implementation::BlisLib, n, n, n).gflops;
        let alg_blis = sim.simulate(Implementation::AlgBlis, n, n, n).gflops;
        let alg_neon = sim.simulate(Implementation::AlgNeon, n, n, n).gflops;
        let alg_exo = sim.simulate(Implementation::AlgExo, n, n, n).gflops;
        assert!(blis > alg_exo && alg_exo > alg_blis && alg_blis > alg_neon, "n = {n}");
        // The paper's Fig. 14 band: everything between ~20 and ~32 GFLOPS.
        for g in [blis, alg_blis, alg_neon, alg_exo] {
            assert!(g > 18.0 && g < 33.0, "n = {n}, gflops = {g}");
        }
    }
}

#[test]
fn fig15_resnet_layers_shape() {
    let sim = simulator();
    let workload = resnet50_table();
    let mut exo_best = 0usize;
    let mut blis_best = 0usize;
    let mut exo_beats_alg_variants = 0usize;
    for p in &workload.unique_layers {
        let neon = sim.simulate(Implementation::AlgNeon, p.m, p.n, p.k).gflops;
        let alg_blis = sim.simulate(Implementation::AlgBlis, p.m, p.n, p.k).gflops;
        let blis = sim.simulate(Implementation::BlisLib, p.m, p.n, p.k).gflops;
        let exo = sim.simulate(Implementation::AlgExo, p.m, p.n, p.k).gflops;
        if exo >= blis && exo >= alg_blis && exo >= neon {
            exo_best += 1;
        }
        if blis >= exo && blis >= alg_blis && blis >= neon {
            blis_best += 1;
        }
        if exo >= alg_blis && exo >= neon {
            exo_beats_alg_variants += 1;
        }
    }
    // Fig. 15: ALG+EXO and BLIS split the wins between them (9 and 6 layers
    // in the paper); the other ALG variants never dominate.
    assert!(exo_best + blis_best >= 18, "exo {exo_best}, blis {blis_best}");
    assert!(exo_best >= 5, "ALG+EXO should win a substantial share of layers, got {exo_best}");
    assert!(blis_best >= 3, "BLIS should win a substantial share of layers, got {blis_best}");
    // Specialisation always pays against the monolithic non-prefetching kernels.
    assert_eq!(exo_beats_alg_variants, workload.unique_layers.len());
}

#[test]
fn fig16_and_fig18_aggregated_times_shape() {
    let sim = simulator();
    for workload in [resnet50_table(), vgg16_table()] {
        let mut totals = std::collections::HashMap::new();
        for imp in Implementation::all() {
            let mut t = 0.0;
            for p in &workload.unique_layers {
                t += sim.simulate(imp, p.m, p.n, p.k).seconds * p.occurrences() as f64;
            }
            totals.insert(imp.label(), t);
        }
        // Figs. 16/18: ALG+EXO and BLIS are the two fastest and close to each
        // other; ALG+NEON is the slowest.
        let exo = totals["ALG+EXO"];
        let blis = totals["BLIS"];
        let alg_blis = totals["ALG+BLIS"];
        let alg_neon = totals["ALG+NEON"];
        assert!(exo < alg_blis && exo < alg_neon, "{}: exo {exo}", workload.name);
        assert!(blis < alg_blis && blis < alg_neon, "{}: blis {blis}", workload.name);
        assert!(alg_neon > alg_blis, "{}", workload.name);
        let leaders_gap = (exo - blis).abs() / blis.max(exo);
        assert!(leaders_gap < 0.25, "{}: the two leaders stay close, gap {leaders_gap}", workload.name);
        // Sanity: inference times are milliseconds-to-seconds, not zero.
        assert!(exo > 1e-3 && alg_neon < 10.0, "{}", workload.name);
    }
}

#[test]
fn tables_match_the_paper() {
    let resnet = resnet50_table();
    let vgg = vgg16_table();
    // Table I row 1 and Table II row 1, as printed in the paper.
    assert_eq!(
        (resnet.unique_layers[0].m, resnet.unique_layers[0].n, resnet.unique_layers[0].k),
        (12544, 64, 147)
    );
    assert_eq!((vgg.unique_layers[0].m, vgg.unique_layers[0].n, vgg.unique_layers[0].k), (50176, 64, 27));
    assert_eq!(resnet.unique_layers.len(), 20);
    assert_eq!(vgg.unique_layers.len(), 9);
    assert_eq!(resnet.instances().len(), 53);
    assert_eq!(vgg.instances().len(), 13);
}

#[test]
fn exo_uses_multiple_specialised_kernels_across_resnet() {
    let sim = simulator();
    let kernels: std::collections::BTreeSet<String> = resnet50_table()
        .unique_layers
        .iter()
        .map(|p| sim.select_kernel(Implementation::AlgExo, p.m, p.n, p.k).name)
        .collect();
    // The paper reports seven different kernels for ResNet50. The modelled
    // core evaluates the candidates analytically and consolidates on fewer
    // shapes, but specialisation must still select more than one kernel.
    assert!(kernels.len() >= 2, "expected several specialised kernels, got {kernels:?}");
}
