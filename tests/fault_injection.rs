//! Fault-injection stress suite for the `exo-serve` serving stack.
//!
//! Every test arms a deterministic [`FaultPlan`] (the same harness CI
//! drives through `EXO_FAULT`), hammers the service or the batch executor,
//! and asserts the fault-tolerance contract:
//!
//! * the service stays live — every handle resolves, nothing hangs;
//! * a fault is isolated to the job it hit — survivors are bit-identical
//!   to a sequential per-call run of the same executor (degraded
//!   completions are tolerance-checked instead, since they ran a
//!   different backend tier);
//! * the books balance: `jobs_submitted == jobs_completed + jobs_failed`.
//!
//! Fault countdowns are process-global, so the tests serialise on one
//! mutex and disarm on entry and exit.

use std::sync::Mutex;
use std::time::Duration;

use exo_gemm::exo_serve::fault::{self, FaultPlan};
use exo_gemm::exo_serve::{
    CompletedJob, GemmBatch, GemmBatchExecutor, GemmJob, GemmService, JobHandle, OwnedMat, ServiceConfig,
    ServiceHealth, SubmitErrorReason,
};
use exo_gemm::gemm_blis::{BlisGemm, BlockingParams};
use exo_gemm::{GemmError, GemmExecutor};

/// Fault countdowns are process-global: one experiment at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn driver() -> BlisGemm {
    BlisGemm::new(BlockingParams::carmel_defaults(8, 12))
}

fn make_job(m: usize, n: usize, k: usize, seed: usize, beta: f32) -> GemmJob {
    let a = OwnedMat::from_fn(m, k, move |i, j| ((i * 7 + j * 3 + seed) % 13) as f32 * 0.25 - 1.0);
    let b = OwnedMat::from_fn(k, n, move |i, j| ((i * 5 + j * 11 + seed) % 17) as f32 * 0.125 - 1.0);
    let c = OwnedMat::from_fn(m, n, move |i, j| ((i + 2 * j + seed) % 7) as f32 * 0.5 - 1.0);
    GemmJob::new(a, b, c).beta(beta)
}

/// The bit-identity baseline: the same job run per-call, sequentially,
/// through the same driver. Must run while faults are DISARMED so the
/// reference run does not consume countdowns.
fn reference_c(m: usize, n: usize, k: usize, seed: usize, beta: f32) -> OwnedMat {
    let mut job = make_job(m, n, k, seed, beta);
    driver().gemm(job.problem()).expect("reference gemm");
    job.into_c()
}

fn assert_bits(got: &OwnedMat, want: &OwnedMat, who: &str) {
    for i in 0..want.rows() {
        for j in 0..want.cols() {
            assert_eq!(
                got.get(i, j).to_bits(),
                want.get(i, j).to_bits(),
                "{who}: ({i},{j}) diverged from the sequential per-call run"
            );
        }
    }
}

/// Degraded completions ran a different backend tier (different FMA
/// contraction), so they are tolerance-checked, not bit-checked.
fn assert_close(got: &OwnedMat, want: &OwnedMat, who: &str) {
    for i in 0..want.rows() {
        for j in 0..want.cols() {
            let (g, w) = (got.get(i, j), want.get(i, j));
            assert!((g - w).abs() <= 2e-3 * w.abs().max(1.0), "{who}: ({i},{j}): {g} vs reference {w}");
        }
    }
}

fn wait_or_hang(handle: &JobHandle) -> Result<CompletedJob, GemmError> {
    handle
        .wait_timeout(Duration::from_secs(120))
        .expect("a job handle hung: the service must always resolve handles")
}

/// The headline chaos run: every executable fault class armed at once,
/// four concurrent submitters, and the full contract checked afterwards.
/// `beta = 0` everywhere, so executional failures are eligible for the
/// tier-down retry; jobs killed at shard level may still fail — but only
/// with `JobPanicked`/`Kernel`, and only they.
#[test]
fn armed_chaos_run_stays_live_and_survivors_stay_bit_identical() {
    let _guard = serial();
    fault::disarm();
    const CALLERS: usize = 4;
    const JOBS: usize = 12;
    // Three recurring shapes so batch groups grow past one entry and the
    // pool-level fault classes see sharded work.
    let shape = |j: usize| [(24, 20, 16), (16, 16, 16), (33, 9, 21)][j % 3];
    let refs: Vec<Vec<OwnedMat>> = (0..CALLERS)
        .map(|caller| {
            (0..JOBS)
                .map(|j| {
                    let (m, n, k) = shape(j);
                    reference_c(m, n, k, caller * JOBS + j, 0.0)
                })
                .collect()
        })
        .collect();

    let service = GemmService::with_config(driver(), ServiceConfig { queue_capacity: 16, max_batch: 8 });
    FaultPlan::new().pool_panic(7).worker_death(3).entry_panic(5).slow(9, 5).decline(13).arm();

    let outcomes: Vec<Vec<Result<CompletedJob, GemmError>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|caller| {
                let service = &service;
                scope.spawn(move || {
                    let submitted: Vec<JobHandle> = (0..JOBS)
                        .map(|j| {
                            let (m, n, k) = shape(j);
                            service
                                .submit(make_job(m, n, k, caller * JOBS + j, 0.0))
                                .expect("a live service accepts submissions")
                        })
                        .collect();
                    submitted.iter().map(wait_or_hang).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("submitter thread")).collect()
    });
    fault::disarm();

    for (caller, (results, wants)) in outcomes.iter().zip(&refs).enumerate() {
        for (j, (outcome, want)) in results.iter().zip(wants).enumerate() {
            let who = format!("caller {caller} job {j}");
            match outcome {
                Ok(done) if done.stats.degraded => assert_close(&done.c, want, &who),
                Ok(done) => assert_bits(&done.c, want, &who),
                Err(GemmError::JobPanicked { .. }) | Err(GemmError::Kernel { .. }) => {}
                Err(other) => panic!("{who}: unexpected failure class {other:?}"),
            }
        }
    }

    let stats = service.stats();
    let total = (CALLERS * JOBS) as u64;
    assert_eq!(stats.jobs_submitted, total);
    assert_eq!(
        stats.jobs_completed + stats.jobs_failed,
        total,
        "every submitted job must be accounted for: {stats}"
    );
    assert!(stats.panics_caught >= 1, "the armed entry-panic must have been caught: {stats}");
    assert!(stats.retries >= 1, "beta = 0 failures must have been retried: {stats}");
    assert!(stats.degraded_completions >= 1, "the declined entry must complete degraded: {stats}");
    assert_eq!(stats.deadline_expired, 0);
    assert_ne!(service.health(), ServiceHealth::Failed, "chaos must not kill the service");

    // Disarmed, the service keeps serving cleanly.
    let epilogue =
        service.submit(make_job(16, 16, 16, 999, 0.0)).expect("service accepts after the chaos run");
    let done = wait_or_hang(&epilogue).expect("clean job after disarm");
    assert_eq!(done.stats.flop_count, 2 * 16 * 16 * 16);
}

/// The acceptance criterion for isolation: a panic inside one batch entry
/// fails only that job. `beta != 0` disables the tier-down retry (C may
/// already be partially written), so the fault surfaces as `JobPanicked`.
#[test]
fn an_entry_panic_fails_only_its_own_job() {
    let _guard = serial();
    fault::disarm();
    let driver = driver();
    const N: usize = 6;
    let refs: Vec<OwnedMat> = (0..N).map(|s| reference_c(24, 20, 16, s, 1.0)).collect();
    let mut jobs: Vec<GemmJob> = (0..N).map(|s| make_job(24, 20, 16, s, 1.0)).collect();

    FaultPlan::new().entry_panic(3).arm();
    let mut batch = GemmBatch::new();
    for job in &mut jobs {
        batch.push(job.problem());
    }
    let report = driver.gemm_batch(batch);
    fault::disarm();

    assert_eq!(report.panics_caught, 1);
    assert_eq!(report.retries, 0, "beta != 0 must never retry: C was partially written");
    let mut panicked = 0;
    for (idx, (job, outcome)) in jobs.into_iter().zip(&report.outcomes).enumerate() {
        match outcome {
            Ok(stats) => {
                assert!(stats.batched);
                assert_bits(&job.into_c(), &refs[idx], &format!("entry {idx}"));
            }
            Err(GemmError::JobPanicked { message }) => {
                assert!(message.contains("injected fault"), "unexpected payload: {message}");
                panicked += 1;
            }
            Err(other) => panic!("entry {idx}: unexpected error {other:?}"),
        }
    }
    assert_eq!(panicked, 1, "exactly the faulted entry fails; its neighbours complete");
}

/// A slow batch holds the queue; jobs whose deadline expires while waiting
/// resolve with `DeadlineExceeded` instead of executing stale work, while
/// the slow job itself still completes bit-identically (the fault only
/// sleeps).
#[test]
fn slow_batches_expire_queued_deadlines() {
    let _guard = serial();
    fault::disarm();
    let want = reference_c(16, 16, 16, 1, 0.0);
    let service = GemmService::with_config(driver(), ServiceConfig { queue_capacity: 8, max_batch: 4 });
    FaultPlan::new().slow(1, 120).arm();
    let slow = service.submit(make_job(16, 16, 16, 1, 0.0)).expect("accepting");
    // Give the collector a beat to pick up the slow batch, then queue
    // deadline-bound work behind it.
    std::thread::sleep(Duration::from_millis(30));
    let expired: Vec<JobHandle> = (2..4)
        .map(|s| {
            service.submit(make_job(16, 16, 16, s, 0.0).with_deadline(Duration::ZERO)).expect("accepting")
        })
        .collect();

    let done = wait_or_hang(&slow).expect("the slow job still completes");
    assert_bits(&done.c, &want, "slow job");
    for handle in &expired {
        match wait_or_hang(handle) {
            Err(GemmError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    fault::disarm();
    let stats = service.stats();
    assert_eq!(stats.deadline_expired, 2);
    assert_eq!(stats.jobs_failed, 2);
    assert_eq!(stats.jobs_completed, 1);
}

/// A simulated backend decline on a `beta = 0` job retries once on the
/// next tier down and completes, stamped `degraded`, with the service
/// health raised to `Degraded` (but still serving).
#[test]
fn a_declined_entry_retries_one_tier_down_and_completes() {
    let _guard = serial();
    fault::disarm();
    let want = reference_c(24, 24, 24, 9, 0.0);
    let service = GemmService::new(driver());
    FaultPlan::new().decline(1).arm();
    let handle = service.submit(make_job(24, 24, 24, 9, 0.0)).expect("accepting");
    let done = wait_or_hang(&handle).expect("declined job must complete via the fallback tier");
    fault::disarm();

    assert!(done.stats.degraded, "the completion must be stamped as degraded");
    assert_close(&done.c, &want, "degraded completion");
    let stats = service.stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.degraded_completions, 1);
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(service.health(), ServiceHealth::Degraded);

    // Degraded is not dead: the next clean job serves normally.
    let clean = service.submit(make_job(16, 16, 16, 10, 0.0)).expect("degraded still accepts");
    assert!(wait_or_hang(&clean).is_ok());
}

/// Collector death is the worst case: the service flips to `Failed`,
/// every outstanding handle resolves with `ServiceShutdown` (no hangs),
/// later submissions are refused with the job handed back, and the books
/// still balance.
#[test]
fn collector_death_resolves_outstanding_handles_and_fails_the_service() {
    let _guard = serial();
    fault::disarm();
    let service = GemmService::with_config(driver(), ServiceConfig { queue_capacity: 8, max_batch: 4 });
    FaultPlan::new().collector_panic(2).arm();

    // Batch 1 survives (the countdown fires before batch 2).
    let first = service.submit(make_job(16, 16, 16, 0, 0.0)).expect("accepting");
    assert!(wait_or_hang(&first).is_ok());

    // The next burst triggers the collector panic. Depending on timing a
    // submission may be accepted (its handle must then resolve with
    // ServiceShutdown) or refused outright — either way nothing hangs and
    // nothing is lost.
    let mut accepted = Vec::new();
    for s in 1..5 {
        match service.submit(make_job(16, 16, 16, s, 0.0)) {
            Ok(handle) => accepted.push(handle),
            Err(e) => assert_eq!(e.reason(), SubmitErrorReason::Shutdown),
        }
    }
    for handle in &accepted {
        match wait_or_hang(handle) {
            Err(GemmError::ServiceShutdown) => {}
            other => panic!("expected ServiceShutdown, got {other:?}"),
        }
    }
    fault::disarm();

    // Health flips to Failed (the flip races the last handle resolution by
    // a hair, so poll briefly).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.health() != ServiceHealth::Failed {
        assert!(std::time::Instant::now() < deadline, "service never reported Failed");
        std::thread::sleep(Duration::from_millis(1));
    }
    let refused = service.submit(make_job(16, 16, 16, 9, 0.0));
    match refused {
        Err(e) => {
            assert_eq!(e.reason(), SubmitErrorReason::Shutdown);
            let job = e.into_job(); // the job comes back intact
            assert_eq!(job.deadline(), None);
        }
        Ok(_) => panic!("a failed service must refuse new work"),
    }
    let stats = service.stats();
    assert_eq!(
        stats.jobs_completed + stats.jobs_failed,
        stats.jobs_submitted,
        "the books must balance after collector death: {stats}"
    );
    assert_eq!(stats.health, ServiceHealth::Failed);
    drop(service); // must join cleanly, not hang
}

/// Dropping a service with handles still outstanding must resolve every
/// one of them — accepted work drains and completes; nothing hangs.
#[test]
fn shutdown_with_outstanding_handles_resolves_them_all() {
    let _guard = serial();
    fault::disarm();
    let service = GemmService::with_config(driver(), ServiceConfig { queue_capacity: 8, max_batch: 2 });
    let handles: Vec<JobHandle> =
        (0..6).map(|s| service.submit(make_job(16, 16, 16, s, 0.0)).expect("accepting")).collect();
    drop(service);
    for (idx, handle) in handles.iter().enumerate() {
        match wait_or_hang(handle) {
            Ok(done) => assert_eq!(done.stats.flop_count, 2 * 16 * 16 * 16),
            // A job can only fail here if shutdown outran acceptance —
            // and then it must say so, not hang.
            Err(GemmError::ServiceShutdown) => panic!("job {idx} was accepted, it must complete"),
            Err(other) => panic!("job {idx}: unexpected error {other:?}"),
        }
    }
}

/// Generates a fresh kernel for an AOT fault experiment. The AOT
/// engine's per-key state is process-global, so each experiment needs a
/// tile shape no other test in this binary serves (the shared 8x12 key
/// may already be promoted, and an armed countdown must fire in the
/// experiment that armed it, not in a neighbour's background build).
fn fresh_kernel(mr: usize, nr: usize) -> std::sync::Arc<exo_gemm::ukernel_gen::GeneratedKernel> {
    std::sync::Arc::new(
        exo_gemm::ukernel_gen::MicroKernelGenerator::new(exo_gemm::exo_isa::neon_f32())
            .generate(mr, nr)
            .unwrap_or_else(|e| panic!("{mr}x{nr} generates: {e}")),
    )
}

/// Settles any in-flight background build of the shared 8x12 key before
/// an AOT fault is armed: earlier tests' drivers poll that key, and a
/// build they kicked must not still be running (and consuming
/// countdowns) when the experiment starts.
fn settle_shared_native_key() {
    let _ = fresh_kernel(8, 12).native_wait();
}

/// Computes the cache key the native tier will use for `kernel` on this
/// host and evicts any cached artifact for it. AOT fault experiments
/// need the build pipeline to actually run end to end: against a warm
/// cache the compiler is never invoked, so a fault hooked into the
/// compile path could never fire. Returns the artifact path.
fn evict_artifact(kernel: &std::sync::Arc<exo_gemm::ukernel_gen::GeneratedKernel>) -> std::path::PathBuf {
    let sw = kernel.superword.as_ref().expect("kernel superword-compiles");
    let c_source = exo_gemm::exo_codegen::emit_superword_c(
        sw,
        exo_gemm::exo_codegen::active_isa(),
        exo_gemm::exo_aot::KERNEL_SYMBOL,
    )
    .expect("kernel emits");
    let key = exo_gemm::exo_aot::artifact_key(&c_source, &exo_gemm::gemm_blis::toolchain().unwrap().version);
    let store = exo_gemm::exo_aot::engine().store();
    let artifact = store.artifact_path(key);
    let _ = std::fs::remove_file(&artifact);
    let _ = std::fs::remove_file(store.manifest_path(key));
    artifact
}

/// Runs `jobs` shapes through a fresh service over `driver`, requiring
/// every job to complete ununusually — not failed, not degraded — and
/// bit-identical to `refs`. Returns the service for stats assertions.
fn run_clean_batch(
    driver: BlisGemm,
    shapes: &[(usize, usize, usize)],
    refs: &[OwnedMat],
    who: &str,
) -> GemmService {
    let service = GemmService::new(driver);
    let handles: Vec<JobHandle> = shapes
        .iter()
        .enumerate()
        .map(|(s, &(m, n, k))| service.submit(make_job(m, n, k, s, 0.0)).expect("accepting"))
        .collect();
    for (idx, handle) in handles.iter().enumerate() {
        let done = wait_or_hang(handle)
            .unwrap_or_else(|e| panic!("{who} job {idx}: an AOT fault must never fail a job, got {e:?}"));
        assert!(!done.stats.degraded, "{who} job {idx}: pre-dispatch fallback is not a degraded completion");
        assert_bits(&done.c, &refs[idx], &format!("{who} job {idx} (simd fallback)"));
    }
    service
}

/// Spin-waits until `get(stats)` reaches `want`: AOT builds settle in the
/// background, after the jobs that triggered them may already be done.
fn await_aot_stat(
    service: &GemmService,
    want: u64,
    get: impl Fn(&exo_gemm::exo_serve::ServiceStats) -> u64,
    what: &str,
) {
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    while get(&service.stats()) < want {
        assert!(std::time::Instant::now() < deadline, "{what} never reached {want}: {}", service.stats());
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The simd-pinned reference results for `shapes` through `kernel` —
/// computed while faults are disarmed. This is the tier every AOT
/// failure must silently land on, bit for bit.
fn simd_refs(
    kernel: &std::sync::Arc<exo_gemm::ukernel_gen::GeneratedKernel>,
    blocking: BlockingParams,
    shapes: &[(usize, usize, usize)],
) -> Vec<OwnedMat> {
    let simd_driver = BlisGemm::new(blocking)
        .with_kernel(exo_gemm::gemm_blis::exo_kernel_simd(std::sync::Arc::clone(kernel)));
    shapes
        .iter()
        .enumerate()
        .map(|(s, &(m, n, k))| {
            let mut job = make_job(m, n, k, s, 0.0);
            simd_driver.gemm(job.problem()).expect("reference gemm");
            job.into_c()
        })
        .collect()
}

/// The toolchain-outage fault class: the first ahead-of-time build
/// attempt for a freshly generated kernel fails mid-serve
/// (`aot-compile-fail@1` — the shape a broken `cc`, a full disk, or a
/// revoked cache dir takes at runtime). The build runs in the
/// background, so the contract is *silent* degradation, one tier down
/// and pre-dispatch: every job completes, none is stamped `degraded` (no
/// executional failure ever surfaced), the results are bit-identical to
/// a pinned-simd run — and the failed build surfaces in the service's
/// AOT stats, raising health to `Degraded`.
#[test]
fn a_mid_serve_compile_failure_degrades_to_simd_without_failing_jobs() {
    if exo_gemm::gemm_blis::env_backend_override().is_some() {
        return; // a pinned backend never consults the native tier
    }
    let _guard = serial();
    fault::disarm();
    if !exo_gemm::gemm_blis::native_available() {
        return; // no toolchain: no build ever starts, so no fault can fire
    }
    settle_shared_native_key();
    let kernel = fresh_kernel(4, 8);
    let _ = evict_artifact(&kernel);
    let blocking = BlockingParams::carmel_defaults(4, 8);
    let shapes = [(24usize, 20usize, 16usize), (16, 16, 16), (33, 9, 21)];
    let refs = simd_refs(&kernel, blocking, &shapes);

    // The serve run: Native-tier kernel (the default ladder), with the
    // first background build attempt failing.
    FaultPlan::new().aot_compile_fail(1).arm();
    let native_driver =
        BlisGemm::new(blocking).with_kernel(exo_gemm::gemm_blis::exo_kernel(std::sync::Arc::clone(&kernel)));
    let service = run_clean_batch(native_driver, &shapes, &refs, "compile-fail");

    // The failed background build lands in the service's AOT deltas and
    // raises health — visibly degraded, while every job stayed whole.
    // Disarm only after the verdict is booked: the build runs in the
    // background, and disarming while it is still in flight would zero
    // the countdown before the builder reads it.
    await_aot_stat(&service, 1, |s| s.aot_builds_failed, "aot_builds_failed");
    fault::disarm();
    let stats = service.stats();
    assert_eq!(stats.jobs_completed, shapes.len() as u64);
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(stats.retries, 0, "the fallback happens before dispatch, not via the retry path");
    assert_eq!(service.health(), ServiceHealth::Degraded, "a lost build is a visible degradation");
}

/// The hung-compiler fault class (`aot-hang@1`): the first compiler
/// invocation never returns and must be killed on the
/// `EXO_AOT_TIMEOUT_MS` deadline — in the background. Four concurrent
/// callers keep submitting the whole time; no GEMM ever waits on `cc`,
/// every handle resolves, the books balance, the results are
/// bit-identical to a simd-pinned run, and the timeout surfaces in the
/// service's AOT stats.
#[test]
fn a_hung_compiler_never_delays_jobs_and_the_books_balance() {
    if exo_gemm::gemm_blis::env_backend_override().is_some() {
        return;
    }
    let _guard = serial();
    fault::disarm();
    if !exo_gemm::gemm_blis::native_available() {
        return;
    }
    settle_shared_native_key();
    let kernel = fresh_kernel(16, 8);
    // The hang hook lives inside the compiler invocation: evict any
    // cached artifact so the build cannot short-circuit via a disk hit.
    let _ = evict_artifact(&kernel);
    let blocking = BlockingParams::carmel_defaults(16, 8);
    const CALLERS: usize = 4;
    const JOBS: usize = 6;
    let shape = |j: usize| [(24, 20, 16), (16, 16, 16), (33, 9, 21)][j % 3];
    let refs: Vec<Vec<OwnedMat>> = (0..CALLERS)
        .map(|caller| {
            (0..JOBS)
                .map(|j| {
                    let (m, n, k) = shape(j);
                    let mut job = make_job(m, n, k, caller * JOBS + j, 0.0);
                    BlisGemm::new(blocking)
                        .with_kernel(exo_gemm::gemm_blis::exo_kernel_simd(std::sync::Arc::clone(&kernel)))
                        .gemm(job.problem())
                        .expect("reference gemm");
                    job.into_c()
                })
                .collect()
        })
        .collect();

    FaultPlan::new().aot_hang(1).arm();
    let native_driver =
        BlisGemm::new(blocking).with_kernel(exo_gemm::gemm_blis::exo_kernel(std::sync::Arc::clone(&kernel)));
    let service = GemmService::with_config(native_driver, ServiceConfig { queue_capacity: 16, max_batch: 8 });
    let started = std::time::Instant::now();
    let outcomes: Vec<Vec<Result<CompletedJob, GemmError>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|caller| {
                let service = &service;
                scope.spawn(move || {
                    let submitted: Vec<JobHandle> = (0..JOBS)
                        .map(|j| {
                            let (m, n, k) = shape(j);
                            service
                                .submit(make_job(m, n, k, caller * JOBS + j, 0.0))
                                .expect("a live service accepts submissions")
                        })
                        .collect();
                    submitted.iter().map(wait_or_hang).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("submitter thread")).collect()
    });
    let elapsed = started.elapsed();

    for (caller, (results, wants)) in outcomes.iter().zip(&refs).enumerate() {
        for (j, (outcome, want)) in results.iter().zip(wants).enumerate() {
            let who = format!("caller {caller} job {j}");
            let done = outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{who}: a hung compiler must not fail jobs: {e:?}"));
            assert!(!done.stats.degraded, "{who}: the simd fallback is pre-dispatch, not a degraded retry");
            assert_bits(&done.c, want, &who);
        }
    }
    // The hung child sleeps for 600 s; the jobs must not have waited on it.
    assert!(elapsed < Duration::from_secs(300), "jobs waited on the hung compiler ({elapsed:?})");
    // The kill lands in the background: wait for the timeout to be
    // booked, and then for the attempt itself (booked a beat later).
    // Only then disarm — disarming while the build is still in flight
    // would zero the countdown before the builder reads it.
    await_aot_stat(&service, 1, |s| s.aot_compile_timeouts, "aot_compile_timeouts");
    await_aot_stat(&service, 1, |s| s.aot_builds_failed, "aot_builds_failed");
    fault::disarm();
    let stats = service.stats();
    let total = (CALLERS * JOBS) as u64;
    assert_eq!(stats.jobs_submitted, total);
    assert_eq!(stats.jobs_completed + stats.jobs_failed, total, "the books must balance: {stats}");
    assert_eq!(stats.jobs_failed, 0);
    assert!(stats.aot_builds_failed >= 1, "the timed-out attempt is a failed build: {stats}");
    assert_eq!(service.health(), ServiceHealth::Degraded, "a killed compiler is a visible degradation");
}

/// The wrong-result fault class (`aot-wrong-result@1`): a kernel that
/// compiles, loads, and *runs* — but computes garbage. The verification
/// probe must catch it before dispatch ever sees it: every job is
/// bit-identical to the simd-pinned run, the artifact is quarantined as
/// `<path>.wrong-result`, and the key is pinned to simd terminally.
#[test]
fn a_wrong_result_kernel_is_quarantined_before_dispatch_ever_sees_it() {
    if exo_gemm::gemm_blis::env_backend_override().is_some() {
        return;
    }
    let _guard = serial();
    fault::disarm();
    if !exo_gemm::gemm_blis::native_available() {
        return;
    }
    settle_shared_native_key();
    let kernel = fresh_kernel(8, 16);
    let blocking = BlockingParams::carmel_defaults(8, 16);
    let shapes = [(24usize, 20usize, 16usize), (16, 16, 16), (33, 9, 21)];
    let refs = simd_refs(&kernel, blocking, &shapes);

    // Evict any cached artifact (so the build runs end to end) and note
    // where the quarantined evidence will land in the process-wide
    // engine's store (cleaned from any earlier run).
    let artifact = evict_artifact(&kernel);
    let mut quarantined = artifact.as_os_str().to_owned();
    quarantined.push(".wrong-result");
    let quarantined = std::path::PathBuf::from(quarantined);
    let _ = std::fs::remove_file(&quarantined);

    FaultPlan::new().aot_wrong_result(1).arm();
    let native_driver =
        BlisGemm::new(blocking).with_kernel(exo_gemm::gemm_blis::exo_kernel(std::sync::Arc::clone(&kernel)));
    let service = run_clean_batch(native_driver, &shapes, &refs, "wrong-result");

    // The probe verdict lands first, the failed attempt a beat later;
    // health keys off the latter. Disarm only after both are booked:
    // the build runs in the background, and disarming while it is still
    // in flight would zero the countdown before the builder reads it.
    await_aot_stat(&service, 1, |s| s.aot_wrong_results, "aot_wrong_results");
    await_aot_stat(&service, 1, |s| s.aot_builds_failed, "aot_builds_failed");
    fault::disarm();
    let stats = service.stats();
    assert_eq!(stats.jobs_completed, shapes.len() as u64);
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(service.health(), ServiceHealth::Degraded, "a rejected kernel is a visible degradation");
    assert!(quarantined.is_file(), "the wrong-result artifact is kept as evidence at {quarantined:?}");
    // The pin is terminal: polling the key again must stay on simd, not
    // rebuild the same wrong answer.
    assert!(kernel.native().is_none(), "a wrong-result key must stay pinned to simd");
    let _ = std::fs::remove_file(&quarantined);
}

/// CI's entry point: when `EXO_FAULT` is set, the first service
/// construction arms it and this generic liveness run must survive
/// whatever the spec throws. Without `EXO_FAULT` the test is a no-op.
#[test]
fn env_spec_drives_a_full_fault_run() {
    let spec = match std::env::var("EXO_FAULT") {
        Ok(spec) if !spec.is_empty() => spec,
        _ => return,
    };
    let _guard = serial();
    // Constructing the service arms the env plan (first construction in
    // this process wins the OnceLock).
    let service = GemmService::with_config(driver(), ServiceConfig { queue_capacity: 16, max_batch: 8 });
    const CALLERS: usize = 4;
    const JOBS: usize = 8;
    let outcomes: Vec<Result<CompletedJob, GemmError>> = std::thread::scope(|scope| {
        let spawned: Vec<_> = (0..CALLERS)
            .map(|caller| {
                let service = &service;
                scope.spawn(move || {
                    let mut results = Vec::new();
                    for j in 0..JOBS {
                        match service.submit(make_job(24, 20, 16, caller * JOBS + j, 0.0)) {
                            Ok(handle) => results.push(wait_or_hang(&handle)),
                            // A collector-panic spec may flip the service
                            // to Failed mid-run; refusal is a valid
                            // outcome, hanging is not.
                            Err(e) => results.push(Err(e.gemm_error())),
                        }
                    }
                    results
                })
            })
            .collect();
        spawned.into_iter().flat_map(|h| h.join().expect("submitter thread")).collect()
    });
    fault::disarm();

    assert_eq!(outcomes.len(), CALLERS * JOBS, "every job resolved, spec `{spec}`");
    let stats = service.stats();
    assert_eq!(
        stats.jobs_completed + stats.jobs_failed,
        stats.jobs_submitted,
        "books must balance under EXO_FAULT={spec}: {stats}"
    );
    if service.health() != ServiceHealth::Failed {
        let clean = service.submit(make_job(16, 16, 16, 777, 0.0)).expect("live service accepts");
        assert!(wait_or_hang(&clean).is_ok());
    }
}
