//! Property-based tests (proptest) over the core invariants of the
//! workspace:
//!
//! * generated micro-kernels agree with the naive reference for random data
//!   and random depths,
//! * the BLIS-like driver agrees with the naive reference for random problem
//!   sizes,
//! * scheduling operators preserve interpreter semantics,
//! * packing round-trips, and the f16 model round-trips exactly
//!   representable values.

use proptest::prelude::*;
use std::sync::Arc;

use exo_ir::interp::{run_proc, ArgValue, TensorData};
use exo_ir::{ScalarType, Sym};
use exo_isa::{neon_f32, ukernel_ref_simple};
use gemm_blis::{exo_kernel, naive_gemm, BlisGemm, BlockingParams, Matrix};
use ukernel_gen::MicroKernelGenerator;

fn tile_shapes() -> impl Strategy<Value = (usize, usize)> {
    prop::sample::select(vec![(8usize, 12usize), (8, 8), (8, 4), (4, 12), (4, 8), (4, 4), (1, 12), (1, 8), (3, 5)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated kernel computes exactly what the naive reference
    /// computes, for any tile shape, depth, and data.
    #[test]
    fn generated_kernels_match_reference(
        (mr, nr) in tile_shapes(),
        kc in 1usize..48,
        seed in any::<u64>(),
    ) {
        let generator = MicroKernelGenerator::new(neon_f32());
        let kernel = generator.generate(mr, nr).unwrap();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let a: Vec<f32> = (0..kc * mr).map(|_| next()).collect();
        let b: Vec<f32> = (0..kc * nr).map(|_| next()).collect();
        let mut c: Vec<f32> = (0..mr * nr).map(|_| next()).collect();
        let mut c_ref = c.clone();
        kernel.run_packed(kc, &a, &b, &mut c).unwrap();
        for k in 0..kc {
            for j in 0..nr {
                for i in 0..mr {
                    c_ref[j * mr + i] += a[k * mr + i] * b[k * nr + j];
                }
            }
        }
        for (x, y) in c.iter().zip(&c_ref) {
            prop_assert!((x - y).abs() <= 1e-3 * y.abs().max(1.0), "{x} vs {y}");
        }
    }

    /// The five-loop BLIS-like driver agrees with the naive reference for
    /// arbitrary (fringe-heavy) problem sizes.
    #[test]
    fn blis_driver_matches_naive(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..32,
        seed in any::<u64>(),
    ) {
        let generator = MicroKernelGenerator::new(neon_f32());
        let kernel = exo_kernel(Arc::new(generator.generate(8, 8).unwrap()));
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((state >> 34) as f32 / (1u64 << 30) as f32) - 1.0
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let mut c = Matrix::zeros(m, n);
        let mut c_ref = Matrix::zeros(m, n);
        let blocking = BlockingParams { mc: 16, kc: 12, nc: 24, mr: 8, nr: 8 };
        BlisGemm::new(blocking).gemm(&kernel, &a, &b, &mut c).unwrap();
        naive_gemm(&a, &b, &mut c_ref);
        for (x, y) in c.data.iter().zip(&c_ref.data) {
            prop_assert!((x - y).abs() <= 2e-3 * y.abs().max(1.0), "{x} vs {y}");
        }
    }

    /// `divide_loop` preserves the interpreter semantics of the reference
    /// kernel for arbitrary divisible sizes.
    #[test]
    fn divide_loop_preserves_semantics(
        factor in prop::sample::select(vec![1usize, 2, 4, 8]),
        multiple in 1usize..4,
        kc in 1usize..12,
    ) {
        let mr = factor * multiple;
        let nr = 4usize;
        let base = ukernel_ref_simple(ScalarType::F32);
        let p = exo_sched::partial_eval(&base, &[mr as i64, nr as i64]).unwrap();
        let q = exo_sched::divide_loop(&p, "i", factor as i64, "it", "itt", true).unwrap();

        let a = TensorData::from_fn(ScalarType::F32, vec![kc, mr], |i| (i % 9) as f64 * 0.5 - 2.0);
        let b = TensorData::from_fn(ScalarType::F32, vec![kc, nr], |i| (i % 7) as f64 * 0.25);
        let c = TensorData::zeros(ScalarType::F32, vec![nr, mr]);
        let mut args_p = vec![
            ArgValue::Size(kc as i64),
            ArgValue::Tensor(a.clone()),
            ArgValue::Tensor(b.clone()),
            ArgValue::Tensor(c.clone()),
        ];
        let mut args_q = args_p.clone();
        run_proc(&p, &mut args_p).unwrap();
        run_proc(&q, &mut args_q).unwrap();
        prop_assert_eq!(args_p[3].as_tensor().unwrap(), args_q[3].as_tensor().unwrap());
    }

    /// Packing then reading panels reproduces the original matrix elements
    /// (and zero-pads the fringe).
    #[test]
    fn packing_round_trips(
        m in 1usize..20,
        k in 1usize..20,
        mr in prop::sample::select(vec![4usize, 8]),
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| i as f32).collect();
        let packed = gemm_blis::pack_a(&a, k, 0, 0, m, k, mr);
        let panels = m.div_ceil(mr);
        prop_assert_eq!(packed.len(), panels * k * mr);
        for p in 0..panels {
            for kk in 0..k {
                for i in 0..mr {
                    let got = packed[p * k * mr + kk * mr + i];
                    let row = p * mr + i;
                    let expected = if row < m { a[row * k + kk] } else { 0.0 };
                    prop_assert_eq!(got, expected);
                }
            }
        }
    }

    /// The f16 storage model is idempotent: rounding twice equals rounding
    /// once, and exactly representable values survive unchanged.
    #[test]
    fn f16_rounding_is_idempotent(v in -60000.0f64..60000.0) {
        let once = exo_ir::types::f16_round(v);
        let twice = exo_ir::types::f16_round(once);
        prop_assert_eq!(once, twice);
    }

    /// The interpreter and the executable lowering agree on the reference
    /// kernel for random sizes — the two execution paths are interchangeable.
    #[test]
    fn interpreter_and_compiled_execution_agree(
        mr in 1usize..6,
        nr in 1usize..6,
        kc in 1usize..10,
    ) {
        let base = ukernel_ref_simple(ScalarType::F32);
        let p = exo_sched::partial_eval_named(
            &base,
            &[(Sym::new("MR"), mr as i64), (Sym::new("NR"), nr as i64)],
        )
        .unwrap();
        let compiled = exo_codegen::compile(&p).unwrap();

        let a_data: Vec<f64> = (0..kc * mr).map(|i| (i % 5) as f64 - 2.0).collect();
        let b_data: Vec<f64> = (0..kc * nr).map(|i| (i % 3) as f64 * 0.5).collect();

        // Interpreter path.
        let mut interp_args = vec![
            ArgValue::Size(kc as i64),
            ArgValue::Tensor(TensorData::from_fn(ScalarType::F32, vec![kc, mr], |i| a_data[i])),
            ArgValue::Tensor(TensorData::from_fn(ScalarType::F32, vec![kc, nr], |i| b_data[i])),
            ArgValue::Tensor(TensorData::zeros(ScalarType::F32, vec![nr, mr])),
        ];
        run_proc(&p, &mut interp_args).unwrap();
        let interp_c = interp_args[3].as_tensor().unwrap().clone();

        // Compiled path.
        let mut a32: Vec<f32> = a_data.iter().map(|&v| v as f32).collect();
        let mut b32: Vec<f32> = b_data.iter().map(|&v| v as f32).collect();
        let mut c32 = vec![0.0f32; nr * mr];
        let mut run_args = vec![
            exo_codegen::RunArg::Size(kc as i64),
            exo_codegen::RunArg::Tensor(&mut a32),
            exo_codegen::RunArg::Tensor(&mut b32),
            exo_codegen::RunArg::Tensor(&mut c32),
        ];
        compiled.run(&mut run_args).unwrap();

        for (idx, &v) in c32.iter().enumerate() {
            prop_assert!((v as f64 - interp_c.data[idx]).abs() < 1e-4);
        }
    }
}
