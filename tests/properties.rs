//! Property-based tests over the core invariants of the workspace:
//!
//! * generated micro-kernels agree with the naive reference for random data
//!   and random depths,
//! * the BLIS-like driver agrees with the naive reference for random problem
//!   sizes,
//! * scheduling operators preserve interpreter semantics,
//! * packing round-trips, and the f16 model round-trips exactly
//!   representable values.
//!
//! The workspace carries no external dependencies, so instead of `proptest`
//! the harness draws its cases from a seeded xorshift generator: each
//! property runs over a fixed number of pseudo-random cases, fully
//! deterministic across runs.

mod common;

use std::sync::Arc;

use common::Cases;

use exo_ir::interp::{run_proc, ArgValue, TensorData};
use exo_ir::{ScalarType, Sym};
use exo_isa::{neon_f32, ukernel_ref_simple};
use gemm_blis::{exo_kernel, naive_gemm, BlisGemm, BlockingParams, GemmProblem, MatRef, Matrix};
use ukernel_gen::MicroKernelGenerator;

const TILE_SHAPES: [(usize, usize); 9] =
    [(8, 12), (8, 8), (8, 4), (4, 12), (4, 8), (4, 4), (1, 12), (1, 8), (3, 5)];

/// Every generated kernel computes exactly what the naive reference
/// computes, for any tile shape, depth, and data.
#[test]
fn generated_kernels_match_reference() {
    let generator = MicroKernelGenerator::new(neon_f32());
    let mut cases = Cases::new(0xA5A5_0001);
    for _ in 0..12 {
        let &(mr, nr) = cases.pick(&TILE_SHAPES);
        let kc = cases.usize_in(1, 48);
        let kernel = generator.generate(mr, nr).unwrap();
        let a: Vec<f32> = (0..kc * mr).map(|_| cases.f32_unit()).collect();
        let b: Vec<f32> = (0..kc * nr).map(|_| cases.f32_unit()).collect();
        let mut c: Vec<f32> = (0..mr * nr).map(|_| cases.f32_unit()).collect();
        let mut c_ref = c.clone();
        kernel.run_packed(kc, &a, &b, &mut c).unwrap();
        for k in 0..kc {
            for j in 0..nr {
                for i in 0..mr {
                    c_ref[j * mr + i] += a[k * mr + i] * b[k * nr + j];
                }
            }
        }
        for (x, y) in c.iter().zip(&c_ref) {
            assert!((x - y).abs() <= 1e-3 * y.abs().max(1.0), "{mr}x{nr} kc={kc}: {x} vs {y}");
        }
    }
}

/// The five-loop BLIS-like driver agrees with the naive reference for
/// arbitrary (fringe-heavy) problem sizes.
#[test]
fn blis_driver_matches_naive() {
    let generator = MicroKernelGenerator::new(neon_f32());
    let kernel = exo_kernel(Arc::new(generator.generate(8, 8).unwrap()));
    let mut cases = Cases::new(0xA5A5_0002);
    for _ in 0..12 {
        let m = cases.usize_in(1, 40);
        let n = cases.usize_in(1, 40);
        let k = cases.usize_in(1, 32);
        let a = Matrix::from_fn(m, k, |_, _| cases.f32_unit());
        let b = Matrix::from_fn(k, n, |_, _| cases.f32_unit());
        let mut c = Matrix::zeros(m, n);
        let mut c_ref = Matrix::zeros(m, n);
        let blocking = BlockingParams { mc: 16, kc: 12, nc: 24, mr: 8, nr: 8 };
        BlisGemm::new(blocking)
            .gemm_with(&kernel, GemmProblem::new(a.view(), b.view(), c.view_mut()))
            .unwrap();
        naive_gemm(&a, &b, &mut c_ref);
        for (x, y) in c.data.iter().zip(&c_ref.data) {
            assert!((x - y).abs() <= 2e-3 * y.abs().max(1.0), "{m}x{n}x{k}: {x} vs {y}");
        }
    }
}

/// `divide_loop` preserves the interpreter semantics of the reference
/// kernel for arbitrary divisible sizes.
#[test]
fn divide_loop_preserves_semantics() {
    let mut cases = Cases::new(0xA5A5_0003);
    for _ in 0..10 {
        let factor = *cases.pick(&[1usize, 2, 4, 8]);
        let multiple = cases.usize_in(1, 4);
        let kc = cases.usize_in(1, 12);
        let mr = factor * multiple;
        let nr = 4usize;
        let base = ukernel_ref_simple(ScalarType::F32);
        let p = exo_sched::partial_eval(&base, &[mr as i64, nr as i64]).unwrap();
        let q = exo_sched::divide_loop(&p, "i", factor as i64, "it", "itt", true).unwrap();

        let a = TensorData::from_fn(ScalarType::F32, vec![kc, mr], |i| (i % 9) as f64 * 0.5 - 2.0);
        let b = TensorData::from_fn(ScalarType::F32, vec![kc, nr], |i| (i % 7) as f64 * 0.25);
        let c = TensorData::zeros(ScalarType::F32, vec![nr, mr]);
        let mut args_p = vec![
            ArgValue::Size(kc as i64),
            ArgValue::Tensor(a.clone()),
            ArgValue::Tensor(b.clone()),
            ArgValue::Tensor(c.clone()),
        ];
        let mut args_q = args_p.clone();
        run_proc(&p, &mut args_p).unwrap();
        run_proc(&q, &mut args_q).unwrap();
        assert_eq!(args_p[3].as_tensor().unwrap(), args_q[3].as_tensor().unwrap());
    }
}

/// Packing then reading panels reproduces the original matrix elements
/// (and zero-pads the fringe).
#[test]
fn packing_round_trips() {
    let mut cases = Cases::new(0xA5A5_0004);
    for _ in 0..12 {
        let m = cases.usize_in(1, 20);
        let k = cases.usize_in(1, 20);
        let mr = *cases.pick(&[4usize, 8]);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32).collect();
        let packed = gemm_blis::pack_a(MatRef::from_slice(&a, m, k), 0, 0, m, k, mr, 1.0);
        let panels = m.div_ceil(mr);
        assert_eq!(packed.len(), panels * k * mr);
        for p in 0..panels {
            for kk in 0..k {
                for i in 0..mr {
                    let got = packed[p * k * mr + kk * mr + i];
                    let row = p * mr + i;
                    let expected = if row < m { a[row * k + kk] } else { 0.0 };
                    assert_eq!(got, expected);
                }
            }
        }
    }
}

/// The f16 storage model is idempotent: rounding twice equals rounding
/// once, and exactly representable values survive unchanged.
#[test]
fn f16_rounding_is_idempotent() {
    let mut cases = Cases::new(0xA5A5_0005);
    for _ in 0..100 {
        let v = cases.f32_unit() as f64 * 60000.0;
        let once = exo_ir::types::f16_round(v);
        let twice = exo_ir::types::f16_round(once);
        assert_eq!(once, twice, "v = {v}");
    }
}

/// The interpreter and the executable lowering agree on the reference
/// kernel for random sizes — the two execution paths are interchangeable.
#[test]
fn interpreter_and_compiled_execution_agree() {
    let mut cases = Cases::new(0xA5A5_0006);
    for _ in 0..10 {
        let mr = cases.usize_in(1, 6);
        let nr = cases.usize_in(1, 6);
        let kc = cases.usize_in(1, 10);
        let base = ukernel_ref_simple(ScalarType::F32);
        let p =
            exo_sched::partial_eval_named(&base, &[(Sym::new("MR"), mr as i64), (Sym::new("NR"), nr as i64)])
                .unwrap();
        let compiled = exo_codegen::compile(&p).unwrap();

        let a_data: Vec<f64> = (0..kc * mr).map(|i| (i % 5) as f64 - 2.0).collect();
        let b_data: Vec<f64> = (0..kc * nr).map(|i| (i % 3) as f64 * 0.5).collect();

        // Interpreter path.
        let mut interp_args = vec![
            ArgValue::Size(kc as i64),
            ArgValue::Tensor(TensorData::from_fn(ScalarType::F32, vec![kc, mr], |i| a_data[i])),
            ArgValue::Tensor(TensorData::from_fn(ScalarType::F32, vec![kc, nr], |i| b_data[i])),
            ArgValue::Tensor(TensorData::zeros(ScalarType::F32, vec![nr, mr])),
        ];
        run_proc(&p, &mut interp_args).unwrap();
        let interp_c = interp_args[3].as_tensor().unwrap().clone();

        // Compiled path.
        let mut a32: Vec<f32> = a_data.iter().map(|&v| v as f32).collect();
        let mut b32: Vec<f32> = b_data.iter().map(|&v| v as f32).collect();
        let mut c32 = vec![0.0f32; nr * mr];
        let mut run_args = vec![
            exo_codegen::RunArg::Size(kc as i64),
            exo_codegen::RunArg::Tensor(&mut a32),
            exo_codegen::RunArg::Tensor(&mut b32),
            exo_codegen::RunArg::Tensor(&mut c32),
        ];
        compiled.run(&mut run_args).unwrap();

        for (idx, &v) in c32.iter().enumerate() {
            assert!((v as f64 - interp_c.data[idx]).abs() < 1e-4);
        }
    }
}
