//! Shared test-support code for the integration suites.

use exo_gemm::{MatMut, MatRef, Op};

/// Deterministic pseudo-random source (xorshift64*), the workspace's
/// stand-in for a property-testing framework's case generator.
pub struct Cases {
    state: u64,
}

// Each integration test binary compiles its own copy of this module and
// uses a different subset of the helpers.
#[allow(dead_code)]
impl Cases {
    pub fn new(seed: u64) -> Self {
        Cases { state: seed | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Roughly uniform float in `[-1, 1)`: 24 high bits scaled by 2^24.
    pub fn f32_unit(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
    }

    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[(self.next_u64() % options.len() as u64) as usize]
    }
}

/// Asserts the two result buffers are within the SIMD tier's
/// FMA-contraction bound (`exo_codegen::fma_contraction_tol`, the single
/// workspace-wide definition) of each other, elementwise, relative to the
/// element magnitude (floor 1.0). On hosts without AVX2/FMA the simd
/// backend runs the superword tier and the distance is exactly zero.
#[allow(dead_code)]
pub fn assert_fma_close(x: &[f32], y: &[f32], k: usize, label: &str) {
    assert_eq!(x.len(), y.len(), "{label}: length mismatch");
    let tol = exo_gemm::exo_codegen::fma_contraction_tol(k);
    for (i, (a, b)) in x.iter().zip(y).enumerate() {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= tol * scale,
            "{label} at {i}: {a} vs {b} exceeds the FMA-contraction bound {tol}"
        );
    }
}

/// One operand held in a randomly chosen strided layout. The view covers a
/// `rows x cols` logical matrix; the backing buffer may be larger (padding,
/// enclosing matrix), and the padding holds garbage on purpose.
#[allow(dead_code)]
pub struct Stored {
    pub data: Vec<f32>,
    pub offset: usize,
    pub rows: usize,
    pub cols: usize,
    pub row_stride: usize,
    pub col_stride: usize,
}

#[allow(dead_code)]
impl Stored {
    /// Generates a layout: 0 = dense row-major, 1 = padded row-major,
    /// 2 = column-major, 3 = padded column-major, 4 = window of a larger
    /// dense matrix.
    pub fn random(rows: usize, cols: usize, cases: &mut Cases, mut fill: impl FnMut() -> f32) -> Stored {
        let layout = cases.usize_in(0, 5);
        let pad = cases.usize_in(1, 9);
        let (len, offset, row_stride, col_stride) = match layout {
            0 => (rows * cols, 0, cols, 1),
            1 => (rows * (cols + pad), 0, cols + pad, 1),
            2 => (rows * cols, 0, 1, rows),
            3 => (cols * (rows + pad), 0, 1, rows + pad),
            _ => {
                // A window at (r0, c0) of a (rows + dr) x (cols + dc) matrix.
                let (dr, dc) = (cases.usize_in(1, 6), cases.usize_in(1, 6));
                let (r0, c0) = (cases.usize_in(0, dr), cases.usize_in(0, dc));
                let big_cols = cols + dc;
                ((rows + dr) * big_cols, r0 * big_cols + c0, big_cols, 1)
            }
        };
        let data: Vec<f32> = (0..len).map(|_| fill()).collect();
        Stored { data, offset, rows, cols, row_stride, col_stride }
    }

    pub fn view(&self) -> MatRef<'_> {
        MatRef::with_strides(
            &self.data[self.offset..],
            self.rows,
            self.cols,
            self.row_stride,
            self.col_stride,
        )
    }

    pub fn view_mut(&mut self) -> MatMut<'_> {
        MatMut::with_strides(
            &mut self.data[self.offset..],
            self.rows,
            self.cols,
            self.row_stride,
            self.col_stride,
        )
    }

    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[self.offset + i * self.row_stride + j * self.col_stride]
    }
}

/// The inline strided reference: the BLAS contract, spelled out directly
/// over the stored layouts (no view machinery), one accumulator per output
/// element, `k` ascending.
#[allow(dead_code)]
#[allow(clippy::too_many_arguments)]
pub fn reference(
    a: &Stored,
    b: &Stored,
    c0: &Stored,
    op_a: Op,
    op_b: Op,
    alpha: f32,
    beta: f32,
    m: usize,
    n: usize,
    k: usize,
) -> Vec<f32> {
    let a_at = |i: usize, p: usize| if op_a == Op::Transpose { a.get(p, i) } else { a.get(i, p) };
    let b_at = |p: usize, j: usize| if op_b == Op::Transpose { b.get(j, p) } else { b.get(p, j) };
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let base = if beta == 0.0 { 0.0 } else { beta * c0.get(i, j) };
            let update = if alpha == 0.0 {
                0.0
            } else {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a_at(i, p) * b_at(p, j);
                }
                alpha * acc
            };
            out[i * n + j] = base + update;
        }
    }
    out
}

/// A deterministic element source that yields NaN when the operand must
/// never be read (the executors have to prove it by not tripping on it).
#[allow(dead_code)]
pub fn poison_filler(seed: u64, poison: bool) -> impl FnMut() -> f32 {
    let mut cases = Cases::new(seed);
    move || {
        if poison {
            f32::NAN
        } else {
            cases.f32_unit()
        }
    }
}

#[test]
fn f32_unit_stays_in_the_unit_interval() {
    let mut cases = Cases::new(0xC0FFEE);
    for _ in 0..10_000 {
        let v = cases.f32_unit();
        assert!((-1.0..1.0).contains(&v), "{v} outside [-1, 1)");
    }
}
