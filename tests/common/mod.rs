//! Shared test-support code for the integration suites.

/// Deterministic pseudo-random source (xorshift64*), the workspace's
/// stand-in for a property-testing framework's case generator.
pub struct Cases {
    state: u64,
}

// Each integration test binary compiles its own copy of this module and
// uses a different subset of the helpers.
#[allow(dead_code)]
impl Cases {
    pub fn new(seed: u64) -> Self {
        Cases { state: seed | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Roughly uniform float in `[-1, 1)`: 24 high bits scaled by 2^24.
    pub fn f32_unit(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
    }

    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[(self.next_u64() % options.len() as u64) as usize]
    }
}

/// Asserts the two result buffers are within the SIMD tier's
/// FMA-contraction bound (`exo_codegen::fma_contraction_tol`, the single
/// workspace-wide definition) of each other, elementwise, relative to the
/// element magnitude (floor 1.0). On hosts without AVX2/FMA the simd
/// backend runs the superword tier and the distance is exactly zero.
#[allow(dead_code)]
pub fn assert_fma_close(x: &[f32], y: &[f32], k: usize, label: &str) {
    assert_eq!(x.len(), y.len(), "{label}: length mismatch");
    let tol = exo_gemm::exo_codegen::fma_contraction_tol(k);
    for (i, (a, b)) in x.iter().zip(y).enumerate() {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= tol * scale,
            "{label} at {i}: {a} vs {b} exceeds the FMA-contraction bound {tol}"
        );
    }
}

#[test]
fn f32_unit_stays_in_the_unit_interval() {
    let mut cases = Cases::new(0xC0FFEE);
    for _ in 0..10_000 {
        let v = cases.f32_unit();
        assert!((-1.0..1.0).contains(&v), "{v} outside [-1, 1)");
    }
}
