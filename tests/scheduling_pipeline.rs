//! Integration tests for the scheduling pipeline itself: the operator
//! sequence of Section III applied manually (outside the generator), its
//! intermediate snapshots, and the error paths a user hits when a recipe is
//! mis-applied.

use exo_ir::interp::{run_proc, ArgValue, TensorData};
use exo_ir::printer::proc_to_string;
use exo_ir::ScalarType;
use exo_isa::{neon_f32, ukernel_ref_simple};
use exo_sched::{
    autofission, bind_expr, divide_loop, expand_dim, lift_alloc, partial_eval, rename, reorder_loops,
    replace, set_memory, set_precision, stage_mem, unroll_loop, Anchor, SchedError,
};
use ukernel_gen::MicroKernelGenerator;

/// Runs a scheduled kernel and the unscheduled reference on the same inputs
/// and compares the output tile.
fn assert_same_behaviour(scheduled: &exo_ir::Proc, mr: usize, nr: usize, kc: usize) {
    let reference = partial_eval(&ukernel_ref_simple(ScalarType::F32), &[mr as i64, nr as i64]).unwrap();
    let a = TensorData::from_fn(ScalarType::F32, vec![kc, mr], |i| ((i * 3 + 2) % 11) as f64 * 0.5 - 2.0);
    let b = TensorData::from_fn(ScalarType::F32, vec![kc, nr], |i| ((i * 7 + 1) % 9) as f64 * 0.25);
    let c = TensorData::from_fn(ScalarType::F32, vec![nr, mr], |i| (i % 5) as f64);
    let mut ref_args = vec![
        ArgValue::Size(kc as i64),
        ArgValue::Tensor(a.clone()),
        ArgValue::Tensor(b.clone()),
        ArgValue::Tensor(c.clone()),
    ];
    let mut sched_args = ref_args.clone();
    run_proc(&reference, &mut ref_args).unwrap();
    run_proc(scheduled, &mut sched_args).unwrap();
    assert_eq!(ref_args[3], sched_args[3], "scheduled kernel diverges from the reference");
}

/// The paper's user code, written out operator by operator (instead of going
/// through `MicroKernelGenerator`), and checked for behaviour preservation at
/// every stage.
#[test]
fn manual_section_iii_recipe_preserves_semantics_at_every_step() {
    let isa = neon_f32();
    let base = ukernel_ref_simple(ScalarType::F32);
    let (mr, nr, kc) = (8usize, 12usize, 9usize);

    let p = rename(&base, "uk8x12");
    let p = partial_eval(&p, &[mr as i64, nr as i64]).unwrap();
    assert_same_behaviour(&p, mr, nr, kc);

    let p = divide_loop(&p, "i", 4, "it", "itt", true).unwrap();
    let p = divide_loop(&p, "j", 4, "jt", "jtt", true).unwrap();
    assert_same_behaviour(&p, mr, nr, kc);

    let p = stage_mem(&p, "C[_] += _", "C[4 * jt + jtt, 4 * it + itt]", "C_reg").unwrap();
    let p = expand_dim(&p, "C_reg", 4, "itt").unwrap();
    let p = expand_dim(&p, "C_reg", 2, "it").unwrap();
    let p = expand_dim(&p, "C_reg", 12, "jt * 4 + jtt").unwrap();
    let p = lift_alloc(&p, "C_reg", 5).unwrap();
    let p = autofission(&p, "C_reg[_] = _", Anchor::After, 5).unwrap();
    let p = autofission(&p, "C[_] = _", Anchor::Before, 5).unwrap();
    assert_same_behaviour(&p, mr, nr, kc);

    let p = replace(&p, "for itt in _: _", &isa.load).unwrap();
    let p = replace(&p, "for itt in _: _", &isa.store).unwrap();
    let p = set_memory(&p, "C_reg", isa.mem).unwrap();
    assert_same_behaviour(&p, mr, nr, kc);

    let p = bind_expr(&p, "Ac[_]", "A_reg").unwrap();
    let p = expand_dim(&p, "A_reg", 4, "itt").unwrap();
    let p = expand_dim(&p, "A_reg", 2, "it").unwrap();
    let p = lift_alloc(&p, "A_reg", 5).unwrap();
    let p = autofission(&p, "A_reg[_] = _", Anchor::After, 4).unwrap();
    let p = replace(&p, "for itt in _: _", &isa.load).unwrap();
    let p = set_memory(&p, "A_reg", isa.mem).unwrap();
    assert_same_behaviour(&p, mr, nr, kc);

    let p = bind_expr(&p, "Bc[_]", "B_reg").unwrap();
    let p = expand_dim(&p, "B_reg", 4, "jtt").unwrap();
    let p = expand_dim(&p, "B_reg", 3, "jt").unwrap();
    let p = lift_alloc(&p, "B_reg", 5).unwrap();
    let p = autofission(&p, "B_reg[_] = _", Anchor::After, 4).unwrap();
    let p = replace(&p, "for jtt in _: _", &isa.load).unwrap();
    let p = set_memory(&p, "B_reg", isa.mem).unwrap();
    assert_same_behaviour(&p, mr, nr, kc);

    let p = reorder_loops(&p, "jtt it").unwrap();
    let fma = isa.fma_lane.clone().unwrap();
    let p = replace(&p, "for itt in _: _", &fma).unwrap();
    assert_same_behaviour(&p, mr, nr, kc);

    let text = proc_to_string(&p);
    assert!(text.contains("neon_vfmla_4xf32_4xf32("));
    assert!(text.contains("C_reg: f32[12, 2, 4] @ Neon"));
}

#[test]
fn recipe_misuse_is_reported_with_useful_errors() {
    let base = ukernel_ref_simple(ScalarType::F32);
    let p = partial_eval(&base, &[8, 12]).unwrap();

    // Dividing by a factor that does not divide the extent.
    assert!(matches!(divide_loop(&p, "i", 3, "it", "itt", true), Err(SchedError::NotDivisible { .. })));
    // Unrolling the symbolic k loop.
    assert!(matches!(unroll_loop(&p, "k"), Err(SchedError::NonConstantBound { .. })));
    // Staging a window that does not cover the accesses.
    let q = divide_loop(&p, "i", 4, "it", "itt", true).unwrap();
    assert!(matches!(stage_mem(&q, "C[_] += _", "C[it, itt]", "C_reg"), Err(SchedError::OutOfRange { .. })));
    // Replacing a loop that does not match the instruction semantics.
    let isa = neon_f32();
    assert!(matches!(replace(&q, "for it in _: _", &isa.load), Err(SchedError::ReplaceFailed { .. })));
    // Unknown buffers.
    assert!(matches!(set_memory(&q, "ghost", isa.mem), Err(SchedError::UnknownBuffer { .. })));
    assert!(matches!(set_precision(&q, "ghost", ScalarType::F16), Err(SchedError::UnknownBuffer { .. })));
}

#[test]
fn generator_snapshots_are_individually_valid_and_equivalent() {
    let generator = MicroKernelGenerator::new(neon_f32());
    let kernel = generator.generate(8, 12).unwrap();
    for step in &kernel.steps {
        assert!(step.proc.validate().is_ok(), "snapshot `{}` is ill-formed", step.label);
        assert_same_behaviour(&step.proc, 8, 12, 6);
    }
}

#[test]
fn f16_retarget_via_set_precision_matches_section_iii_d() {
    // Section III-D: switching the data type is set_precision on the staged
    // buffers plus the Neon8f memory annotation.
    let generator = MicroKernelGenerator::new(neon_f32());
    let kernel = generator.generate(8, 12).unwrap();
    let p = set_precision(&kernel.proc, "A_reg", ScalarType::F16).unwrap();
    let p = set_memory(&p, "A_reg", exo_ir::MemSpace::Neon8f).unwrap();
    let text = proc_to_string(&p);
    assert!(text.contains("A_reg: f16[2, 4] @ Neon8f"));
}
