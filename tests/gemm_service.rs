//! Stress and edge-case suite for the `exo-serve` service layer:
//!
//! * N caller threads submit random-layout problems (the same generators
//!   as `tests/gemm_api.rs`) to one shared [`GemmService`]; every result
//!   must be bit-identical to a sequential per-call run of the same
//!   executor, and must match the single-threaded `NaiveGemm` reference to
//!   accumulation tolerance.
//! * Batch edge cases through the [`GemmBatchExecutor`] trait: empty
//!   batch, single-entry batch, mixed-shape batch with degenerate entries.
//! * Pool-reuse: after warm-up, the hot path never spawns another OS
//!   thread — the shared pool is borrowed, not recreated.
//! * Runner-reuse: a [`CachedTunedGemm`] executor builds runner scratch
//!   (dispatch, arena, accumulator tile) on the cold batch only — warm
//!   batches of the same shapes report `runners_built == 0`.

mod common;

use common::{poison_filler, reference, Cases, Stored};
use exo_gemm::exo_serve::{
    CachedTunedGemm, GemmBatch, GemmBatchExecutor, GemmJob, GemmService, OwnedMat, ServiceConfig, ThreadPool,
};
use exo_gemm::exo_tune::TunedGemm;
use exo_gemm::gemm_blis::{BlisGemm, BlockingParams};
use exo_gemm::{GemmExecutor, Op};

/// Re-homes a randomly laid-out operand into an owned job operand with the
/// exact same stride map (padding garbage included).
fn owned(s: &Stored) -> OwnedMat {
    OwnedMat::with_layout(s.data.clone(), s.rows, s.cols, s.row_stride, s.col_stride, s.offset)
}

/// One pre-generated random problem: operands in random layouts, the
/// strided-reference expectation, and the result of a sequential per-call
/// run of the shared executor (the bit-identity baseline).
struct Case {
    a: Stored,
    b: Stored,
    c0: Stored,
    op_a: Op,
    op_b: Op,
    alpha: f32,
    beta: f32,
    m: usize,
    n: usize,
    k: usize,
    want: Vec<f32>,
    sequential: Vec<f32>,
}

impl Case {
    fn random(cases: &mut Cases, executor: &impl GemmExecutor) -> Case {
        let (m, n, k) = (cases.usize_in(1, 40), cases.usize_in(1, 40), cases.usize_in(1, 32));
        let op_a = if cases.usize_in(0, 2) == 1 { Op::Transpose } else { Op::None };
        let op_b = if cases.usize_in(0, 2) == 1 { Op::Transpose } else { Op::None };
        let alpha = *cases.pick(&[1.0f32, 1.0, -0.5, 2.0, 0.0]);
        let beta = *cases.pick(&[1.0f32, 1.0, 0.0, 0.5, -1.0]);
        let (a_rows, a_cols) = if op_a == Op::Transpose { (k, m) } else { (m, k) };
        let (b_rows, b_cols) = if op_b == Op::Transpose { (n, k) } else { (k, n) };
        let (seed_a, seed_b, seed_c) = (cases.next_u64() | 1, cases.next_u64() | 1, cases.next_u64() | 1);
        let a = Stored::random(a_rows, a_cols, cases, poison_filler(seed_a, alpha == 0.0));
        let b = Stored::random(b_rows, b_cols, cases, poison_filler(seed_b, alpha == 0.0));
        let c0 = Stored::random(m, n, cases, poison_filler(seed_c, beta == 0.0));
        let want = reference(&a, &b, &c0, op_a, op_b, alpha, beta, m, n, k);

        // The bit-identity baseline: the same executor, one plain per-call
        // `gemm` on a clone of the operands.
        let mut c_seq = Stored { data: c0.data.clone(), ..c0 };
        executor
            .gemm(
                exo_gemm::GemmProblem::new(a.view(), b.view(), c_seq.view_mut())
                    .op_a(op_a)
                    .op_b(op_b)
                    .alpha(alpha)
                    .beta(beta),
            )
            .unwrap();
        let sequential =
            (0..m).flat_map(|i| (0..n).map(move |j| (i, j))).map(|(i, j)| c_seq.get(i, j)).collect();
        Case { a, b, c0, op_a, op_b, alpha, beta, m, n, k, want, sequential }
    }

    fn job(&self) -> GemmJob {
        let mut job =
            GemmJob::new(owned(&self.a), owned(&self.b), owned(&self.c0)).alpha(self.alpha).beta(self.beta);
        if self.op_a == Op::Transpose {
            job = job.transpose_a();
        }
        if self.op_b == Op::Transpose {
            job = job.transpose_b();
        }
        job
    }

    fn check(&self, c: &OwnedMat, who: &str) {
        for i in 0..self.m {
            for j in 0..self.n {
                let got = c.get(i, j);
                assert_eq!(
                    got,
                    self.sequential[i * self.n + j],
                    "{who}: {}x{}x{} at ({i},{j}) diverged from the sequential per-call run",
                    self.m,
                    self.n,
                    self.k
                );
                let want = self.want[i * self.n + j];
                assert!(
                    (got - want).abs() <= 2e-3 * want.abs().max(1.0),
                    "{who}: {}x{}x{} at ({i},{j}): {got} vs naive reference {want}",
                    self.m,
                    self.n,
                    self.k
                );
            }
        }
    }
}

/// The headline stress: 4 caller threads share one service over the
/// autotuned executor, each submitting a stream of random-layout problems.
/// Every job's `C` comes back bit-identical to the sequential per-call run
/// and within tolerance of the strided `NaiveGemm`-style reference.
#[test]
fn concurrent_callers_match_the_sequential_reference_bitwise() {
    const CALLERS: usize = 4;
    const JOBS_PER_CALLER: usize = 8;
    let executor = TunedGemm::new();
    let mut cases = Cases::new(0x5E27_0001);
    let per_caller: Vec<Vec<Case>> = (0..CALLERS)
        .map(|_| (0..JOBS_PER_CALLER).map(|_| Case::random(&mut cases, &executor)).collect())
        .collect();

    // A small queue forces the backpressure path under 4 concurrent
    // callers; max_batch below the job count forces multiple batches.
    let service = GemmService::with_config(executor, ServiceConfig { queue_capacity: 8, max_batch: 16 });
    std::thread::scope(|scope| {
        for caller in &per_caller {
            scope.spawn(|| {
                // Keep a couple of jobs in flight per caller so batches form.
                let handles: Vec<_> = caller
                    .iter()
                    .map(|case| service.submit(case.job()).expect("healthy service accepts"))
                    .collect();
                for (case, handle) in caller.iter().zip(handles) {
                    let done = handle.wait().unwrap();
                    assert!(done.stats.batched, "service runs must go through the batch path");
                    case.check(&done.c, "service");
                }
            });
        }
    });

    let stats = service.stats();
    let total = (CALLERS * JOBS_PER_CALLER) as u64;
    assert_eq!(stats.jobs_submitted, total);
    assert_eq!(stats.jobs_completed, total);
    assert_eq!(stats.jobs_failed, 0);
    assert!(stats.batches >= 1 && stats.batches <= total);
    assert!(stats.queue_highwater >= 1);
    let want_flops: u64 = per_caller
        .iter()
        .flatten()
        .map(|c| if c.alpha == 0.0 { 0 } else { 2 * (c.m * c.n * c.k) as u64 })
        .sum();
    assert_eq!(stats.total_flops, want_flops);
}

/// Batch edge cases through the trait: empty, single entry, and a
/// mixed-shape batch with degenerate (zero-dimension) entries — which must
/// complete with zero flops, not be skipped.
#[test]
fn batch_edge_cases_empty_single_mixed_degenerate() {
    let executor = TunedGemm::new();

    // Empty batch: no work, no stats, no error.
    assert!(executor.gemm_batch(GemmBatch::new()).into_stats().unwrap().is_empty());

    // Single entry behaves exactly like a per-call run.
    let mut cases = Cases::new(0x5E27_0002);
    let single = Case::random(&mut cases, &executor);
    let mut job = single.job();
    let mut batch = GemmBatch::new();
    batch.push(job.problem());
    let stats = executor.gemm_batch(batch).into_stats().unwrap();
    assert_eq!(stats.len(), 1);
    assert!(stats[0].batched);

    // Mixed shapes + a degenerate k = 0 entry: all run, order preserved,
    // the degenerate one reports zero flops and still applies beta.
    let shapes = [(17, 13, 9), (1, 40, 3), (8, 8, 0), (23, 5, 31)];
    let mut jobs: Vec<GemmJob> = shapes
        .iter()
        .enumerate()
        .map(|(s, &(m, n, k))| {
            GemmJob::new(
                OwnedMat::from_fn(m, k, move |i, j| ((i * 7 + j * 3 + s) % 13) as f32 * 0.25 - 1.0),
                OwnedMat::from_fn(k, n, move |i, j| ((i * 5 + j * 11 + s) % 17) as f32 * 0.125 - 1.0),
                OwnedMat::from_fn(m, n, |i, j| (i + j) as f32 * 0.5),
            )
            .beta(2.0)
        })
        .collect();
    let mut batch = GemmBatch::new();
    for job in &mut jobs {
        batch.push(job.problem());
    }
    let stats = executor.gemm_batch(batch).into_stats().unwrap();
    assert_eq!(stats.len(), shapes.len());
    for (st, &(m, n, k)) in stats.iter().zip(&shapes) {
        assert_eq!((st.m, st.n, st.k), (m, n, k));
        assert_eq!(st.flop_count, 2 * (m * n * k) as u64);
        assert!(st.batched);
    }
    // The degenerate entry applied beta = 2 to its C.
    let c_degenerate = jobs.remove(2).into_c();
    assert_eq!(c_degenerate.get(3, 4), (3 + 4) as f32 * 0.5 * 2.0);
}

/// After warm-up, no execute path spawns OS threads: the global pool is
/// created once and borrowed by per-call, batched, and service execution
/// alike.
#[test]
fn hot_paths_reuse_the_pool_without_spawning_threads() {
    let pool = ThreadPool::global();
    let executor = BlisGemm::new(BlockingParams::carmel_defaults(8, 12)).with_threads(4);

    // Warm-up: one per-call run and one batch touch every lazy path.
    let mut cases = Cases::new(0x5E27_0003);
    let warm = Case::random(&mut cases, &executor);
    let mut job = warm.job();
    executor.gemm(job.problem()).unwrap();
    let mut batch = GemmBatch::new();
    batch.push(job.problem());
    executor.gemm_batch(batch).into_stats().unwrap();

    let spawned_after_warmup = pool.threads_spawned();

    // Hammer all three entry points; the pool must not grow.
    let service = GemmService::new(BlisGemm::new(BlockingParams::carmel_defaults(8, 12)).with_threads(4));
    let hot: Vec<Case> = (0..12).map(|_| Case::random(&mut cases, &executor)).collect();
    for case in &hot {
        let mut job = case.job();
        executor.gemm(job.problem()).unwrap();
    }
    let mut jobs: Vec<GemmJob> = hot.iter().map(|c| c.job()).collect();
    let mut batch = GemmBatch::new();
    for job in &mut jobs {
        batch.push(job.problem());
    }
    executor.gemm_batch(batch).into_stats().unwrap();
    for result in service.execute_all(hot.iter().map(|c| c.job()).collect()) {
        result.unwrap();
    }

    assert_eq!(
        pool.threads_spawned(),
        spawned_after_warmup,
        "hot-path execution must borrow the shared pool, not spawn threads"
    );
    assert_eq!(service.stats().pool_workers, pool.workers());
}

/// Runner scratch (dispatch handle, packing arena, accumulator tile) is
/// pooled per verdict group by `CachedTunedGemm`: the cold batch builds
/// runners, warm batches of the same shapes build **zero** and allocate
/// no new arenas, and the pooling never changes a bit of the results.
#[test]
fn warm_batches_through_the_cached_executor_build_zero_runners() {
    let executor = CachedTunedGemm::new(TunedGemm::new());
    let mut cases = Cases::new(0xCA5E_D001);
    let pool: Vec<Case> = (0..12).map(|_| Case::random(&mut cases, executor.tuned())).collect();
    let run = || {
        let mut jobs: Vec<GemmJob> = pool.iter().map(Case::job).collect();
        let mut batch = GemmBatch::new();
        for job in &mut jobs {
            batch.push(job.problem());
        }
        let report = executor.gemm_batch(batch);
        for outcome in &report.outcomes {
            outcome.as_ref().expect("batch entry");
        }
        for (case, job) in pool.iter().zip(jobs) {
            case.check(&job.into_c(), "cached batch");
        }
        report.runners_built
    };
    let cold = run();
    assert!(cold > 0, "the cold batch must build runners");
    assert!(executor.cached_groups() > 0, "verdict groups must be pooled");
    let steady = executor.cached_runners();
    assert!(steady > 0, "runner scratch must be pooled for reuse");
    for rerun in 0..3 {
        assert_eq!(run(), 0, "warm batch {rerun} must reuse pooled runner scratch, not build anew");
        assert_eq!(executor.cached_runners(), steady, "warm batch {rerun} must not grow the pool");
    }
}
