//! Differential suite for the BLAS-grade GEMM front door: every
//! [`GemmExecutor`] implementation (`NaiveGemm`, `BlisGemm`, `TunedGemm`)
//! must solve `C = alpha * op(A) * op(B) + beta * C` identically to an
//! inline strided reference, across:
//!
//! * random operand layouts — dense, padded leading dimensions, column
//!   major, and sub-matrix windows of larger buffers,
//! * random transposes (`op(A)`, `op(B)`),
//! * random `alpha`/`beta`, including `beta = 0` over NaN-poisoned
//!   (uninitialised-looking) `C` and `alpha = 0` over NaN-poisoned `A`/`B`,
//! * 1–7 worker threads (which must be bit-identical to sequential runs).

mod common;

use std::sync::Arc;

use common::{assert_fma_close, poison_filler, reference, Cases, Stored};
use exo_gemm::exo_isa::neon_f32;
use exo_gemm::exo_tune::TunedGemm;
use exo_gemm::gemm_blis::{
    exo_kernel, exo_kernel_interp, exo_kernel_superword, exo_kernel_tape, reference_kernel, BlisGemm,
    BlockingParams, GemmExecutor, GemmProblem, KernelImpl, MatMut, MatRef, NaiveGemm, Op,
};
use exo_gemm::ukernel_gen::MicroKernelGenerator;

fn kernels() -> Vec<KernelImpl> {
    let generator = MicroKernelGenerator::new(neon_f32());
    vec![
        exo_kernel(Arc::new(generator.generate(8, 12).unwrap())),
        exo_kernel(Arc::new(generator.generate(4, 4).unwrap())),
        exo_kernel(Arc::new(generator.generate(1, 8).unwrap())),
        reference_kernel(3, 5),
    ]
}

#[allow(clippy::too_many_arguments)]
fn build_problem<'a>(
    a: &'a Stored,
    b: &'a Stored,
    c: &'a mut Stored,
    op_a: Op,
    op_b: Op,
    alpha: f32,
    beta: f32,
) -> GemmProblem<'a> {
    GemmProblem::new(a.view(), b.view(), c.view_mut()).op_a(op_a).op_b(op_b).alpha(alpha).beta(beta)
}

/// The main property: across random layouts, transposes, scalars, and
/// thread counts, all three executors agree with the inline strided
/// reference (`NaiveGemm` exactly; the blocked drivers to accumulation
/// tolerance), and thread count never changes the blocked result bit-wise.
#[test]
fn executors_match_the_strided_reference_across_random_problems() {
    let mut cases = Cases::new(0xB1A5_0001);
    let kernels = kernels();
    let tuned = TunedGemm::new();
    let alphas = [1.0f32, 1.0, -0.5, 2.0, 0.0];
    let betas = [1.0f32, 1.0, 0.0, 0.5, -1.0];
    for case in 0..40 {
        // Mostly small sizes; occasionally wide-and-short so the jc-split
        // path runs too.
        let (m, n, k) = if case % 8 == 7 {
            (cases.usize_in(1, 8), cases.usize_in(60, 140), cases.usize_in(1, 24))
        } else {
            (cases.usize_in(1, 40), cases.usize_in(1, 40), cases.usize_in(1, 32))
        };
        let op_a = if cases.usize_in(0, 2) == 1 { Op::Transpose } else { Op::None };
        let op_b = if cases.usize_in(0, 2) == 1 { Op::Transpose } else { Op::None };
        let alpha = *cases.pick(&alphas);
        let beta = *cases.pick(&betas);
        let (a_rows, a_cols) = if op_a == Op::Transpose { (k, m) } else { (m, k) };
        let (b_rows, b_cols) = if op_b == Op::Transpose { (n, k) } else { (k, n) };
        // alpha = 0 must never read A/B, beta = 0 must never read C:
        // poison the never-read operand with NaN and let the executors
        // prove it.
        let (seed_a, seed_b, seed_c) = (cases.next_u64() | 1, cases.next_u64() | 1, cases.next_u64() | 1);
        let a = Stored::random(a_rows, a_cols, &mut cases, poison_filler(seed_a, alpha == 0.0));
        let b = Stored::random(b_rows, b_cols, &mut cases, poison_filler(seed_b, alpha == 0.0));
        let c0 = Stored::random(m, n, &mut cases, poison_filler(seed_c, beta == 0.0));
        let want = reference(&a, &b, &c0, op_a, op_b, alpha, beta, m, n, k);
        let label = format!(
            "case {case}: {m}x{n}x{k} op_a={op_a:?} op_b={op_b:?} alpha={alpha} beta={beta} \
             a=({},{}) b=({},{}) c=({},{})",
            a.row_stride, a.col_stride, b.row_stride, b.col_stride, c0.row_stride, c0.col_stride
        );

        // NaiveGemm: same op order as the reference — exact equality.
        let mut c_naive = Stored { data: c0.data.clone(), ..c0 };
        NaiveGemm.gemm(build_problem(&a, &b, &mut c_naive, op_a, op_b, alpha, beta)).unwrap();
        for i in 0..m {
            for j in 0..n {
                assert_eq!(c_naive.get(i, j), want[i * n + j], "{label} (naive at {i},{j})");
            }
        }

        // BlisGemm with a random kernel and random thread count.
        let kernel = cases.pick(&kernels).clone();
        let blocking = BlockingParams { mc: 16, kc: 8, nc: 24, mr: kernel.mr, nr: kernel.nr };
        let driver = BlisGemm::new(blocking).with_kernel(kernel);
        let mut c_blis = Stored { data: c0.data.clone(), ..c0 };
        driver.gemm(build_problem(&a, &b, &mut c_blis, op_a, op_b, alpha, beta)).unwrap();
        for i in 0..m {
            for j in 0..n {
                let (x, y) = (c_blis.get(i, j), want[i * n + j]);
                assert!((x - y).abs() <= 2e-3 * y.abs().max(1.0), "{label} (blis at {i},{j}): {x} vs {y}");
            }
        }
        // Threaded runs are bit-identical to the sequential blocked run.
        for threads in [2usize, 7] {
            let mut c_par = Stored { data: c0.data.clone(), ..c0 };
            driver
                .clone()
                .with_threads(threads)
                .gemm(build_problem(&a, &b, &mut c_par, op_a, op_b, alpha, beta))
                .unwrap();
            for i in 0..m {
                for j in 0..n {
                    // NaN never survives (beta = 0 overwrites; otherwise the
                    // inputs were finite), so bit equality via f32 compare
                    // is sound here.
                    assert_eq!(c_par.get(i, j), c_blis.get(i, j), "{label} ({threads} threads at {i},{j})");
                }
            }
        }

        // TunedGemm on a subset (each new shape pays one analytical search).
        if case % 4 == 0 {
            let mut c_tuned = Stored { data: c0.data.clone(), ..c0 };
            tuned.gemm(build_problem(&a, &b, &mut c_tuned, op_a, op_b, alpha, beta)).unwrap();
            for i in 0..m {
                for j in 0..n {
                    let (x, y) = (c_tuned.get(i, j), want[i * n + j]);
                    assert!(
                        (x - y).abs() <= 2e-3 * y.abs().max(1.0),
                        "{label} (tuned at {i},{j}): {x} vs {y}"
                    );
                }
            }
        }
    }
}

/// Four-way backend differential through the BLAS front door: across
/// random strided layouts, transposes, and `alpha`/`beta`, the portable
/// tiers (superword / tape / interp) solve the problem bit-identically,
/// the SIMD default stays within the FMA-contraction bound of them, and
/// each tier — including SIMD, whose chain is deterministic — is
/// bit-identical to itself across 1–7 worker threads.
#[test]
fn backend_tiers_agree_across_layouts_scalars_and_threads() {
    let mut cases = Cases::new(0xB1A5_0003);
    let generator = MicroKernelGenerator::new(neon_f32());
    let kernel = Arc::new(generator.generate(8, 12).unwrap());
    let alphas = [1.0f32, -0.5, 2.0];
    let betas = [1.0f32, 0.0, 0.5];
    for case in 0..10 {
        let (m, n, k) = (cases.usize_in(1, 40), cases.usize_in(1, 40), cases.usize_in(1, 32));
        let op_a = if cases.usize_in(0, 2) == 1 { Op::Transpose } else { Op::None };
        let op_b = if cases.usize_in(0, 2) == 1 { Op::Transpose } else { Op::None };
        let alpha = *cases.pick(&alphas);
        let beta = *cases.pick(&betas);
        let (a_rows, a_cols) = if op_a == Op::Transpose { (k, m) } else { (m, k) };
        let (b_rows, b_cols) = if op_b == Op::Transpose { (n, k) } else { (k, n) };
        let (seed_a, seed_b, seed_c) = (cases.next_u64() | 1, cases.next_u64() | 1, cases.next_u64() | 1);
        let a = Stored::random(a_rows, a_cols, &mut cases, poison_filler(seed_a, false));
        let b = Stored::random(b_rows, b_cols, &mut cases, poison_filler(seed_b, false));
        let c0 = Stored::random(m, n, &mut cases, poison_filler(seed_c, beta == 0.0));
        let blocking = BlockingParams { mc: 16, kc: 8, nc: 24, mr: 8, nr: 12 };
        let label = format!("case {case}: {m}x{n}x{k} op_a={op_a:?} op_b={op_b:?} alpha={alpha} beta={beta}");

        let solve = |kimpl: KernelImpl, threads: usize| {
            let mut c = Stored { data: c0.data.clone(), ..c0 };
            BlisGemm::new(blocking)
                .with_kernel(kimpl)
                .with_threads(threads)
                .gemm(build_problem(&a, &b, &mut c, op_a, op_b, alpha, beta))
                .unwrap();
            // Only the logical view is defined output — the padding of the
            // stored layout keeps its (possibly NaN) garbage.
            let mut out = Vec::with_capacity(m * n);
            for i in 0..m {
                for j in 0..n {
                    out.push(c.get(i, j));
                }
            }
            out
        };
        let c_simd = solve(exo_kernel(Arc::clone(&kernel)), 1);
        let c_sw = solve(exo_kernel_superword(Arc::clone(&kernel)), 1);
        let c_tape = solve(exo_kernel_tape(Arc::clone(&kernel)), 1);
        let c_interp = solve(exo_kernel_interp(Arc::clone(&kernel)), 1);
        assert_eq!(c_sw, c_tape, "{label}: superword vs tape");
        assert_eq!(c_tape, c_interp, "{label}: tape vs interpreter");
        assert_fma_close(&c_simd, &c_sw, k, &format!("{label}: simd vs superword"));
        for threads in [2usize, 7] {
            assert_eq!(
                c_simd,
                solve(exo_kernel(Arc::clone(&kernel)), threads),
                "{label}: simd with {threads} threads"
            );
            assert_eq!(
                c_sw,
                solve(exo_kernel_superword(Arc::clone(&kernel)), threads),
                "{label}: superword with {threads} threads"
            );
        }
    }
}

/// Sub-matrix windows compose with transposes: running GEMM on windows of
/// larger matrices equals running it on materialised copies of the windows.
#[test]
fn submatrix_views_compose_with_transposes() {
    let mut cases = Cases::new(0xB1A5_0002);
    let big_a: Vec<f32> = (0..30 * 20).map(|_| cases.f32_unit()).collect();
    let big_b: Vec<f32> = (0..25 * 18).map(|_| cases.f32_unit()).collect();
    let (m, n, k) = (9usize, 11usize, 7usize);
    // A window is taken transposed (k x m at offset (3, 4) of big_a).
    let a_win = MatRef::from_slice(&big_a, 30, 20).submatrix(3, 4, k, m).t();
    let b_win = MatRef::from_slice(&big_b, 25, 18).submatrix(2, 5, k, n);
    // Materialise both windows densely.
    let a_dense = materialise(a_win);
    let b_dense = materialise(b_win);
    let mut c_view = vec![0.25f32; m * n];
    let mut c_dense = c_view.clone();
    let kernel = kernels().remove(0);
    let blocking = BlockingParams { mc: 8, kc: 4, nc: 12, mr: kernel.mr, nr: kernel.nr };
    let driver = BlisGemm::new(blocking).with_kernel(kernel);
    driver
        .gemm(GemmProblem::new(a_win, b_win, MatMut::from_slice(&mut c_view, m, n)).alpha(1.5).beta(0.5))
        .unwrap();
    driver
        .gemm(
            GemmProblem::new(
                MatRef::from_slice(&a_dense, m, k),
                MatRef::from_slice(&b_dense, k, n),
                MatMut::from_slice(&mut c_dense, m, n),
            )
            .alpha(1.5)
            .beta(0.5),
        )
        .unwrap();
    assert_eq!(c_view, c_dense, "window views must equal materialised copies bit-for-bit");
}

/// Densely materialises any view (row-major).
fn materialise(v: MatRef<'_>) -> Vec<f32> {
    let mut out = Vec::with_capacity(v.rows() * v.cols());
    for i in 0..v.rows() {
        for j in 0..v.cols() {
            out.push(v.get(i, j));
        }
    }
    out
}
