//! # exo-gemm
//!
//! A Rust reproduction of *"Tackling the Matrix Multiplication Micro-Kernel
//! Generation with Exo"* (CGO 2024), grown into a small system: a
//! micro-kernel generator driven by scheduling rewrites, a BLIS-like GEMM
//! substrate, a performance model of the paper's Carmel testbed, and an
//! autotuner that searches the kernel design space per problem shape.
//!
//! The pipeline, crate by crate (each is re-exported here):
//!
//! | stage | crate | what it does |
//! |---|---|---|
//! | IR | [`exo_ir`] | Exo-style loop-nest IR: procedures, interpreter, parser, printer |
//! | sched | [`exo_sched`] | the rewrites of the paper's Section III: `divide_loop`, `stage_mem`, `replace`, `unroll_loop`, ... |
//! | isa | [`exo_isa`] | hardware instruction libraries (Neon f32/f16, AVX-512) as semantic procedures |
//! | codegen | [`exo_codegen`] | C-with-intrinsics, pseudo-assembly, machine traces, executable lowering |
//! | generator | [`ukernel_gen`] | size-specialised kernel generation + the shared [`ukernel_gen::KernelCache`] |
//! | sim | [`carmel_sim`] | cycle model of one NVIDIA Carmel core and its cache hierarchy |
//! | GEMM | [`gemm_blis`] | five-loop BLIS algorithm, packing, blocking, baselines, the figure simulator |
//! | workloads | [`dnn_models`] | ResNet50 v1.5 / VGG16 convolutions lowered to GEMM (Tables I/II) |
//! | tune | [`exo_tune`] | design-space search, verdict registry with JSON persistence, [`exo_tune::TunedGemm`] dispatch |
//!
//! A five-line tour (the long version is `examples/quickstart.rs`):
//!
//! ```
//! use exo_gemm::ukernel_gen::MicroKernelGenerator;
//! use exo_gemm::exo_isa::neon_f32;
//!
//! // Generate the paper's 8x12 Neon kernel with the Section III recipe...
//! let kernel = MicroKernelGenerator::new(neon_f32()).generate(8, 12)?;
//! assert!(kernel.c_code.contains("vfmaq_laneq_f32"));
//!
//! // ...or let the autotuner pick kernel + blocking for a problem shape.
//! let tuned = exo_gemm::exo_tune::Tuner::new();
//! let verdict = tuned.tune(196, 256, 2304)?;
//! assert!(verdict.predicted_gflops > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use carmel_sim;
pub use dnn_models;
pub use exo_codegen;
pub use exo_ir;
pub use exo_isa;
pub use exo_sched;
pub use exo_tune;
pub use gemm_blis;
pub use ukernel_gen;
