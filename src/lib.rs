//! Root crate: re-exports the whole workspace. Full docs to come.
pub use carmel_sim;
pub use dnn_models;
pub use exo_codegen;
pub use exo_ir;
pub use exo_isa;
pub use exo_sched;
pub use gemm_blis;
pub use ukernel_gen;
