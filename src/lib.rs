//! # exo-gemm
//!
//! A Rust reproduction of *"Tackling the Matrix Multiplication Micro-Kernel
//! Generation with Exo"* (CGO 2024), grown into a small system: a
//! micro-kernel generator driven by scheduling rewrites, a BLIS-like GEMM
//! substrate, a performance model of the paper's Carmel testbed, and an
//! autotuner that searches the kernel design space per problem shape.
//!
//! The pipeline, crate by crate (each is re-exported here):
//!
//! | stage | crate | what it does |
//! |---|---|---|
//! | IR | [`exo_ir`] | Exo-style loop-nest IR: procedures, interpreter, parser, printer |
//! | sched | [`exo_sched`] | the rewrites of the paper's Section III: `divide_loop`, `stage_mem`, `replace`, `unroll_loop`, ... |
//! | isa | [`exo_isa`] | hardware instruction libraries (Neon f32/f16, AVX-512) as semantic procedures |
//! | codegen | [`exo_codegen`] | C-with-intrinsics, pseudo-assembly, machine traces, executable lowering |
//! | generator | [`ukernel_gen`] | size-specialised kernel generation + the shared [`ukernel_gen::KernelCache`] |
//! | sim | [`carmel_sim`] | cycle model of one NVIDIA Carmel core and its cache hierarchy |
//! | GEMM | [`gemm_blis`] | five-loop BLIS algorithm, packing, blocking, baselines, the figure simulator |
//! | workloads | [`dnn_models`] | ResNet50 v1.5 / VGG16 convolutions lowered to GEMM (Tables I/II) |
//! | tune | [`exo_tune`] | design-space search, verdict registry with JSON persistence, [`exo_tune::TunedGemm`] dispatch |
//! | serve | [`exo_serve`] | persistent service layer: shared worker pool, batched execution, queued front door |
//!
//! The public GEMM entry point is the BLAS-grade front door re-exported at
//! the crate root: borrowed strided views ([`MatRef`]/[`MatMut`]), the
//! problem descriptor [`GemmProblem`]
//! (`C = alpha * op(A) * op(B) + beta * C`), and the [`GemmExecutor`] trait
//! implemented by every driver ([`NaiveGemm`], [`gemm_blis::BlisGemm`],
//! [`exo_tune::TunedGemm`]).
//!
//! A short tour (the long versions are `examples/quickstart.rs` and
//! `examples/blas_api.rs`):
//!
//! ```
//! use exo_gemm::ukernel_gen::MicroKernelGenerator;
//! use exo_gemm::exo_isa::neon_f32;
//! use exo_gemm::{GemmExecutor, GemmProblem, MatMut, MatRef, NaiveGemm};
//!
//! // Generate the paper's 8x12 Neon kernel with the Section III recipe...
//! let kernel = MicroKernelGenerator::new(neon_f32()).generate(8, 12)?;
//! assert!(kernel.c_code.contains("vfmaq_laneq_f32"));
//!
//! // ...let the autotuner pick kernel + blocking for a problem shape...
//! let tuned = exo_gemm::exo_tune::Tuner::new();
//! let verdict = tuned.tune(196, 256, 2304)?;
//! assert!(verdict.predicted_gflops > 0.0);
//!
//! // ...and solve a strided, transposed problem through the front door:
//! // C = 2 * A^T * B + C over caller-owned memory, zero copies.
//! let (m, n, k) = (4usize, 3, 5);
//! let a_t: Vec<f32> = (0..k * m).map(|i| i as f32).collect(); // stored k x m
//! let b: Vec<f32> = (0..k * n).map(|i| (i % 3) as f32).collect();
//! let mut c = vec![0.0f32; m * n];
//! NaiveGemm.gemm(
//!     GemmProblem::new(
//!         MatRef::from_slice(&a_t, k, m),
//!         MatRef::from_slice(&b, k, n),
//!         MatMut::from_slice(&mut c, m, n),
//!     )
//!     .transpose_a()
//!     .alpha(2.0),
//! )?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use carmel_sim;
pub use dnn_models;
pub use exo_aot;
pub use exo_codegen;
pub use exo_ir;
pub use exo_isa;
pub use exo_sched;
pub use exo_serve;
pub use exo_tune;
pub use gemm_blis;
pub use ukernel_gen;

pub use gemm_blis::{GemmError, GemmExecutor, GemmProblem, GemmStats, MatMut, MatRef, Matrix, NaiveGemm, Op};
