//! # exo-isa
//!
//! Hardware instruction libraries for the micro-kernel generator, expressed —
//! exactly as in the paper (Fig. 3) — as ordinary procedures whose bodies
//! *define* the semantics of each intrinsic. `exo_sched::replace` matches
//! loop nests against these bodies, so adding a new target is a matter of
//! writing a new library, not extending the compiler.
//!
//! Three targets are provided:
//!
//! * [`neon_f32`] — ARM Neon, 128-bit registers, 4 x f32 lanes (the paper's
//!   main target, the NVIDIA Carmel core),
//! * [`neon_f16`] — ARM Neon with 8 x f16 lanes (Section III-D),
//! * [`avx512_f32`] — Intel AVX-512, 512-bit registers, 16 x f32 lanes
//!   (Section III-C, architectural portability).

#![warn(missing_docs)]

use std::sync::Arc;

use exo_ir::builder::*;
use exo_ir::{Expr, MemSpace, Proc, ScalarType};

pub mod instrs;

pub use instrs::{make_fma_broadcast, make_fma_lane, make_load, make_prefetch, make_store, make_zero};

/// A vector instruction set description sufficient to drive the micro-kernel
/// generator: which register file to use, how wide it is, and the semantic
/// specification of each instruction the generated kernels may use.
#[derive(Debug, Clone)]
pub struct VectorIsa {
    /// Human-readable name, e.g. `"neon-f32"`.
    pub name: String,
    /// Register file used for vector allocations (`set_memory` target).
    pub mem: MemSpace,
    /// Number of elements per vector register.
    pub lanes: usize,
    /// Element type.
    pub elem: ScalarType,
    /// Vector load: `dst[0..lanes] = src[0..lanes]` with `src` in DRAM.
    pub load: Arc<Proc>,
    /// Vector store: `dst[0..lanes] = src[0..lanes]` with `dst` in DRAM.
    pub store: Arc<Proc>,
    /// Lane-indexed FMA `dst += lhs * rhs[l]` (ARM `vfmaq_laneq`); absent on
    /// targets without a lane-indexed form.
    pub fma_lane: Option<Arc<Proc>>,
    /// Broadcast FMA `dst += lhs * scalar` where the scalar is a single DRAM
    /// element (used by the non-packed / edge-case kernels).
    pub fma_broadcast: Arc<Proc>,
    /// Register zeroing (used when the generated kernel owns `beta == 0`).
    pub zero: Arc<Proc>,
    /// Software prefetch hint (semantically a no-op; used by the BLIS-style
    /// baseline and by the prefetch ablation).
    pub prefetch: Arc<Proc>,
}

impl VectorIsa {
    /// Bytes per vector register.
    pub fn vector_bytes(&self) -> usize {
        self.lanes * self.elem.size_bytes()
    }

    /// All instruction specifications of this ISA, for registration with
    /// code generators and the performance model.
    pub fn instructions(&self) -> Vec<Arc<Proc>> {
        let mut out = vec![
            self.load.clone(),
            self.store.clone(),
            self.fma_broadcast.clone(),
            self.zero.clone(),
            self.prefetch.clone(),
        ];
        if let Some(f) = &self.fma_lane {
            out.push(f.clone());
        }
        out
    }

    /// Looks up an instruction of this ISA by name.
    pub fn instruction(&self, name: &str) -> Option<Arc<Proc>> {
        self.instructions().into_iter().find(|i| i.name == name)
    }
}

/// The ARM Neon f32 target used throughout the paper: 128-bit registers,
/// 4 lanes of `f32`, lane-indexed FMA (`vfmaq_laneq_f32`).
pub fn neon_f32() -> VectorIsa {
    let lanes = 4;
    let ty = ScalarType::F32;
    let mem = MemSpace::Neon;
    VectorIsa {
        name: "neon-f32".to_string(),
        mem,
        lanes,
        elem: ty,
        load: make_load("neon_vld_4xf32", "{dst_data} = vld1q_f32(&{src_data});", lanes, ty, mem),
        store: make_store("neon_vst_4xf32", "vst1q_f32(&{dst_data}, {src_data});", lanes, ty, mem),
        fma_lane: Some(make_fma_lane(
            "neon_vfmla_4xf32_4xf32",
            "{dst_data} = vfmaq_laneq_f32({dst_data}, {lhs_data}, {rhs_data}, {l});",
            lanes,
            ty,
            mem,
        )),
        fma_broadcast: make_fma_broadcast(
            "neon_vfmadd_4xf32_1xf32",
            "{dst_data} = vfmaq_n_f32({dst_data}, {lhs_data}, *{rhs_data});",
            lanes,
            ty,
            mem,
        ),
        zero: make_zero("neon_vzero_4xf32", "{dst_data} = vdupq_n_f32(0.0f);", lanes, ty, mem),
        prefetch: make_prefetch("neon_prfm", "__builtin_prefetch(&{addr_data});", ty),
    }
}

/// The ARM Neon f16 target of Section III-D: 128-bit registers holding
/// 8 lanes of `f16` (the paper's `Neon8f` memory).
pub fn neon_f16() -> VectorIsa {
    let lanes = 8;
    let ty = ScalarType::F16;
    let mem = MemSpace::Neon8f;
    VectorIsa {
        name: "neon-f16".to_string(),
        mem,
        lanes,
        elem: ty,
        load: make_load("neon_vld_8xf16", "{dst_data} = vld1q_f16(&{src_data});", lanes, ty, mem),
        store: make_store("neon_vst_8xf16", "vst1q_f16(&{dst_data}, {src_data});", lanes, ty, mem),
        fma_lane: Some(make_fma_lane(
            "neon_vfmla_8xf16_8xf16",
            "{dst_data} = vfmaq_laneq_f16({dst_data}, {lhs_data}, {rhs_data}, {l});",
            lanes,
            ty,
            mem,
        )),
        fma_broadcast: make_fma_broadcast(
            "neon_vfmadd_8xf16_1xf16",
            "{dst_data} = vfmaq_n_f16({dst_data}, {lhs_data}, *{rhs_data});",
            lanes,
            ty,
            mem,
        ),
        zero: make_zero("neon_vzero_8xf16", "{dst_data} = vdupq_n_f16(0.0f16);", lanes, ty, mem),
        prefetch: make_prefetch("neon_prfm_f16", "__builtin_prefetch(&{addr_data});", ty),
    }
}

/// The Intel AVX-512 f32 target of Section III-C: 512-bit registers holding
/// 16 lanes of `f32`. AVX-512 has no lane-indexed FMA, so only the broadcast
/// form is provided — exactly the situation the paper describes when an
/// intrinsic of one ISA has no counterpart in another.
pub fn avx512_f32() -> VectorIsa {
    let lanes = 16;
    let ty = ScalarType::F32;
    let mem = MemSpace::Avx512;
    VectorIsa {
        name: "avx512-f32".to_string(),
        mem,
        lanes,
        elem: ty,
        load: make_load("mm512_loadu_ps", "{dst_data} = _mm512_loadu_ps(&{src_data});", lanes, ty, mem),
        store: make_store("mm512_storeu_ps", "_mm512_storeu_ps(&{dst_data}, {src_data});", lanes, ty, mem),
        fma_lane: None,
        fma_broadcast: make_fma_broadcast(
            "mm512_fmadd_broadcast_ps",
            "{dst_data} = _mm512_fmadd_ps({lhs_data}, _mm512_set1_ps(*{rhs_data}), {dst_data});",
            lanes,
            ty,
            mem,
        ),
        zero: make_zero("mm512_setzero_ps", "{dst_data} = _mm512_setzero_ps();", lanes, ty, mem),
        prefetch: make_prefetch(
            "mm512_prefetch",
            "_mm_prefetch((const char*)&{addr_data}, _MM_HINT_T0);",
            ty,
        ),
    }
}

/// All bundled instruction sets.
pub fn all_isas() -> Vec<VectorIsa> {
    vec![neon_f32(), neon_f16(), avx512_f32()]
}

/// Builds the `ukernel_ref` procedure of the paper's Fig. 4: the general
/// alpha/beta micro-kernel `C = beta*C + alpha * Ac * Bc` with symbolic
/// `MR`, `NR`, `KC`, staged through the temporary `Cb` and `Ba` buffers.
pub fn ukernel_ref_general(ty: ScalarType) -> Proc {
    proc("ukernel_ref")
        .size_arg("MR")
        .size_arg("NR")
        .size_arg("KC")
        .tensor_arg("alpha", ty, vec![int(1)], MemSpace::Dram)
        .tensor_arg("Ac", ty, vec![var("KC"), var("MR")], MemSpace::Dram)
        .tensor_arg("Bc", ty, vec![var("KC"), var("NR")], MemSpace::Dram)
        .tensor_arg("beta", ty, vec![int(1)], MemSpace::Dram)
        .tensor_arg("C", ty, vec![var("NR"), var("MR")], MemSpace::Dram)
        .body(vec![
            comment("Tmp buffers for C * beta and B * alpha"),
            alloc("Cb", ty, vec![var("NR"), var("MR")], MemSpace::Dram),
            alloc("Ba", ty, vec![var("KC"), var("NR")], MemSpace::Dram),
            comment("Cb = C * beta"),
            for_(
                "cj",
                0,
                var("NR"),
                vec![for_(
                    "ci",
                    0,
                    var("MR"),
                    vec![assign(
                        "Cb",
                        vec![var("cj"), var("ci")],
                        Expr::mul(read("C", vec![var("cj"), var("ci")]), read("beta", vec![int(0)])),
                    )],
                )],
            ),
            comment("Ba = Bc * alpha"),
            for_(
                "bk",
                0,
                var("KC"),
                vec![for_(
                    "bj",
                    0,
                    var("NR"),
                    vec![assign(
                        "Ba",
                        vec![var("bk"), var("bj")],
                        Expr::mul(read("Bc", vec![var("bk"), var("bj")]), read("alpha", vec![int(0)])),
                    )],
                )],
            ),
            comment("C += Ac * Bc"),
            for_(
                "k",
                0,
                var("KC"),
                vec![for_(
                    "j",
                    0,
                    var("NR"),
                    vec![for_(
                        "i",
                        0,
                        var("MR"),
                        vec![reduce(
                            "Cb",
                            vec![var("j"), var("i")],
                            Expr::mul(
                                read("Ac", vec![var("k"), var("i")]),
                                read("Ba", vec![var("k"), var("j")]),
                            ),
                        )],
                    )],
                )],
            ),
            comment("C = Cb"),
            for_(
                "cj",
                0,
                var("NR"),
                vec![for_(
                    "ci",
                    0,
                    var("MR"),
                    vec![assign("C", vec![var("cj"), var("ci")], read("Cb", vec![var("cj"), var("ci")]))],
                )],
            ),
        ])
        .build()
}

/// Builds the simplified `ukernel_ref` of the paper's Fig. 5 (alpha = beta
/// = 1): `C += Ac * Bc` with `C` stored `[NR, MR]`, `Ac` stored `[KC, MR]`,
/// and `Bc` stored `[KC, NR]` — the starting point of every scheduling
/// recipe in this workspace.
pub fn ukernel_ref_simple(ty: ScalarType) -> Proc {
    proc("ukernel_ref")
        .size_arg("MR")
        .size_arg("NR")
        .size_arg("KC")
        .tensor_arg("Ac", ty, vec![var("KC"), var("MR")], MemSpace::Dram)
        .tensor_arg("Bc", ty, vec![var("KC"), var("NR")], MemSpace::Dram)
        .tensor_arg("C", ty, vec![var("NR"), var("MR")], MemSpace::Dram)
        .body(vec![
            comment("C += Ac * Bc"),
            for_(
                "k",
                0,
                var("KC"),
                vec![for_(
                    "j",
                    0,
                    var("NR"),
                    vec![for_(
                        "i",
                        0,
                        var("MR"),
                        vec![reduce(
                            "C",
                            vec![var("j"), var("i")],
                            Expr::mul(
                                read("Ac", vec![var("k"), var("i")]),
                                read("Bc", vec![var("k"), var("j")]),
                            ),
                        )],
                    )],
                )],
            ),
        ])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::interp::{run_proc, ArgValue, TensorData};

    #[test]
    fn all_isas_have_valid_instruction_specs() {
        for isa in all_isas() {
            for instr in isa.instructions() {
                assert!(instr.is_instr(), "{} must carry @instr metadata", instr.name);
                assert_eq!(instr.validate(), Ok(()), "{} must be well-formed", instr.name);
            }
            assert_eq!(isa.vector_bytes(), isa.lanes * isa.elem.size_bytes());
        }
    }

    #[test]
    fn lane_counts_match_register_width() {
        assert_eq!(neon_f32().vector_bytes(), 16);
        assert_eq!(neon_f16().vector_bytes(), 16);
        assert_eq!(avx512_f32().vector_bytes(), 64);
        assert!(avx512_f32().fma_lane.is_none());
        assert!(neon_f32().fma_lane.is_some());
    }

    #[test]
    fn instruction_lookup_by_name() {
        let isa = neon_f32();
        assert!(isa.instruction("neon_vld_4xf32").is_some());
        assert!(isa.instruction("missing").is_none());
    }

    #[test]
    fn load_instruction_semantics_copy_lanes() {
        let isa = neon_f32();
        let src = TensorData::from_fn(ScalarType::F32, vec![4], |i| i as f64 + 1.0);
        let dst = TensorData::zeros(ScalarType::F32, vec![4]);
        let mut args = vec![ArgValue::Tensor(dst), ArgValue::Tensor(src)];
        run_proc(&isa.load, &mut args).unwrap();
        assert_eq!(args[0].as_tensor().unwrap().data, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fma_lane_semantics_accumulate() {
        let isa = neon_f32();
        let fma = isa.fma_lane.clone().unwrap();
        let dst = TensorData::from_fn(ScalarType::F32, vec![4], |_| 1.0);
        let lhs = TensorData::from_fn(ScalarType::F32, vec![4], |i| i as f64);
        let rhs = TensorData::from_fn(ScalarType::F32, vec![4], |i| 10.0 * (i as f64 + 1.0));
        let mut args =
            vec![ArgValue::Tensor(dst), ArgValue::Tensor(lhs), ArgValue::Tensor(rhs), ArgValue::Index(2)];
        run_proc(&fma, &mut args).unwrap();
        // dst[i] = 1 + i * rhs[2] = 1 + 30 i
        assert_eq!(args[0].as_tensor().unwrap().data, vec![1.0, 31.0, 61.0, 91.0]);
    }

    #[test]
    fn reference_kernels_validate_and_agree() {
        let general = ukernel_ref_general(ScalarType::F32);
        let simple = ukernel_ref_simple(ScalarType::F32);
        assert_eq!(general.validate(), Ok(()));
        assert_eq!(simple.validate(), Ok(()));

        let (mr, nr, kc) = (3usize, 2usize, 4usize);
        let a = TensorData::from_fn(ScalarType::F32, vec![kc, mr], |i| (i % 5) as f64 - 1.0);
        let b = TensorData::from_fn(ScalarType::F32, vec![kc, nr], |i| (i % 7) as f64 * 0.5);
        let c0 = TensorData::from_fn(ScalarType::F32, vec![nr, mr], |i| i as f64);
        let one = TensorData::from_fn(ScalarType::F32, vec![1], |_| 1.0);

        let mut args_general = vec![
            ArgValue::Size(mr as i64),
            ArgValue::Size(nr as i64),
            ArgValue::Size(kc as i64),
            ArgValue::Tensor(one.clone()),
            ArgValue::Tensor(a.clone()),
            ArgValue::Tensor(b.clone()),
            ArgValue::Tensor(one.clone()),
            ArgValue::Tensor(c0.clone()),
        ];
        run_proc(&general, &mut args_general).unwrap();

        let mut args_simple = vec![
            ArgValue::Size(mr as i64),
            ArgValue::Size(nr as i64),
            ArgValue::Size(kc as i64),
            ArgValue::Tensor(a),
            ArgValue::Tensor(b),
            ArgValue::Tensor(c0),
        ];
        run_proc(&simple, &mut args_simple).unwrap();

        assert_eq!(args_general[7].as_tensor().unwrap().data, args_simple[5].as_tensor().unwrap().data);
    }

    #[test]
    fn general_kernel_applies_alpha_and_beta() {
        let general = ukernel_ref_general(ScalarType::F32);
        let (mr, nr, kc) = (2usize, 2usize, 1usize);
        let a = TensorData::from_fn(ScalarType::F32, vec![kc, mr], |_| 1.0);
        let b = TensorData::from_fn(ScalarType::F32, vec![kc, nr], |_| 1.0);
        let c0 = TensorData::from_fn(ScalarType::F32, vec![nr, mr], |_| 10.0);
        let alpha = TensorData::from_fn(ScalarType::F32, vec![1], |_| 2.0);
        let beta = TensorData::from_fn(ScalarType::F32, vec![1], |_| 0.5);
        let mut args = vec![
            ArgValue::Size(mr as i64),
            ArgValue::Size(nr as i64),
            ArgValue::Size(kc as i64),
            ArgValue::Tensor(alpha),
            ArgValue::Tensor(a),
            ArgValue::Tensor(b),
            ArgValue::Tensor(beta),
            ArgValue::Tensor(c0),
        ];
        run_proc(&general, &mut args).unwrap();
        // C = 0.5 * 10 + 2 * 1 = 7 everywhere.
        assert!(args[7].as_tensor().unwrap().data.iter().all(|&v| v == 7.0));
    }
}
