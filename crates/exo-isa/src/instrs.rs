//! Generic instruction-specification constructors.
//!
//! Every intrinsic in this workspace is defined the way the paper defines
//! `vst1q_f32` and `vfmaq_laneq_f32` in Fig. 3: a small procedure whose body
//! is the reference semantics, plus a C format string used by the code
//! generator and a machine classification used by the performance model.

use std::sync::Arc;

use exo_ir::builder::*;
use exo_ir::{Expr, InstrClass, InstrInfo, MemSpace, Proc, ScalarType};

/// Builds a vector-load instruction: `dst[i] = src[i]` for `i in 0..lanes`,
/// with `dst` in the register file and `src` in DRAM.
pub fn make_load(name: &str, c_format: &str, lanes: usize, ty: ScalarType, mem: MemSpace) -> Arc<Proc> {
    Arc::new(
        proc(name)
            .tensor_arg("dst", ty, vec![int(lanes as i64)], mem)
            .tensor_arg("src", ty, vec![int(lanes as i64)], MemSpace::Dram)
            .body(vec![for_(
                "i",
                0,
                int(lanes as i64),
                vec![assign("dst", vec![var("i")], read("src", vec![var("i")]))],
            )])
            .instr_info(InstrInfo::new(c_format, InstrClass::VecLoad, lanes, ty))
            .build(),
    )
}

/// Builds a vector-store instruction: `dst[i] = src[i]` for `i in 0..lanes`,
/// with `dst` in DRAM and `src` in the register file.
pub fn make_store(name: &str, c_format: &str, lanes: usize, ty: ScalarType, mem: MemSpace) -> Arc<Proc> {
    Arc::new(
        proc(name)
            .tensor_arg("dst", ty, vec![int(lanes as i64)], MemSpace::Dram)
            .tensor_arg("src", ty, vec![int(lanes as i64)], mem)
            .body(vec![for_(
                "i",
                0,
                int(lanes as i64),
                vec![assign("dst", vec![var("i")], read("src", vec![var("i")]))],
            )])
            .instr_info(InstrInfo::new(c_format, InstrClass::VecStore, lanes, ty))
            .build(),
    )
}

/// Builds a lane-indexed FMA: `dst[i] += lhs[i] * rhs[l]` for `i in
/// 0..lanes`, where `l` is an `index` argument selecting a lane of `rhs`
/// (ARM's `vfmaq_laneq` family).
pub fn make_fma_lane(name: &str, c_format: &str, lanes: usize, ty: ScalarType, mem: MemSpace) -> Arc<Proc> {
    Arc::new(
        proc(name)
            .tensor_arg("dst", ty, vec![int(lanes as i64)], mem)
            .tensor_arg("lhs", ty, vec![int(lanes as i64)], mem)
            .tensor_arg("rhs", ty, vec![int(lanes as i64)], mem)
            .index_arg("l")
            .body(vec![for_(
                "i",
                0,
                int(lanes as i64),
                vec![reduce(
                    "dst",
                    vec![var("i")],
                    Expr::mul(read("lhs", vec![var("i")]), read("rhs", vec![var("l")])),
                )],
            )])
            .instr_info(InstrInfo::new(c_format, InstrClass::VecFma, lanes, ty))
            .build(),
    )
}

/// Builds a broadcast FMA: `dst[i] += lhs[i] * rhs[0]` for `i in 0..lanes`,
/// where `rhs` is a single element in DRAM that the hardware broadcasts
/// across lanes (`vfmaq_n_f32` / `_mm512_set1_ps` + FMA).
pub fn make_fma_broadcast(
    name: &str,
    c_format: &str,
    lanes: usize,
    ty: ScalarType,
    mem: MemSpace,
) -> Arc<Proc> {
    Arc::new(
        proc(name)
            .tensor_arg("dst", ty, vec![int(lanes as i64)], mem)
            .tensor_arg("lhs", ty, vec![int(lanes as i64)], mem)
            .tensor_arg("rhs", ty, vec![int(1)], MemSpace::Dram)
            .body(vec![for_(
                "i",
                0,
                int(lanes as i64),
                vec![reduce(
                    "dst",
                    vec![var("i")],
                    Expr::mul(read("lhs", vec![var("i")]), read("rhs", vec![int(0)])),
                )],
            )])
            .instr_info(InstrInfo::new(c_format, InstrClass::VecFma, lanes, ty))
            .build(),
    )
}

/// Builds a register-zeroing instruction: `dst[i] = 0` for `i in 0..lanes`.
pub fn make_zero(name: &str, c_format: &str, lanes: usize, ty: ScalarType, mem: MemSpace) -> Arc<Proc> {
    Arc::new(
        proc(name)
            .tensor_arg("dst", ty, vec![int(lanes as i64)], mem)
            .body(vec![for_("i", 0, int(lanes as i64), vec![assign("dst", vec![var("i")], flt(0.0))])])
            .instr_info(InstrInfo::new(c_format, InstrClass::VecZero, lanes, ty))
            .build(),
    )
}

/// Builds a software-prefetch hint. The semantic body is empty (a prefetch
/// has no architectural effect); the performance model charges it as an
/// address-generation micro-op and warms the modelled cache line.
pub fn make_prefetch(name: &str, c_format: &str, ty: ScalarType) -> Arc<Proc> {
    Arc::new(
        proc(name)
            .tensor_arg("addr", ty, vec![int(1)], MemSpace::Dram)
            .body(vec![])
            .instr_info(InstrInfo::new(c_format, InstrClass::Prefetch, 1, ty))
            .build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::interp::{run_proc, ArgValue, TensorData};

    #[test]
    fn constructors_produce_instr_procs() {
        let l = make_load("ld", "ld({dst_data},{src_data})", 4, ScalarType::F32, MemSpace::Neon);
        let s = make_store("st", "st({dst_data},{src_data})", 4, ScalarType::F32, MemSpace::Neon);
        let f = make_fma_lane("fma", "fma(...)", 4, ScalarType::F32, MemSpace::Neon);
        let b = make_fma_broadcast("fmab", "fmab(...)", 4, ScalarType::F32, MemSpace::Neon);
        let z = make_zero("zero", "zero(...)", 4, ScalarType::F32, MemSpace::Neon);
        let p = make_prefetch("pf", "pf(...)", ScalarType::F32);
        for instr in [&l, &s, &f, &b, &z, &p] {
            assert!(instr.is_instr());
            assert_eq!(instr.validate(), Ok(()));
        }
        assert_eq!(l.instr.as_ref().unwrap().class, InstrClass::VecLoad);
        assert_eq!(s.instr.as_ref().unwrap().class, InstrClass::VecStore);
        assert_eq!(f.instr.as_ref().unwrap().class, InstrClass::VecFma);
        assert_eq!(z.instr.as_ref().unwrap().class, InstrClass::VecZero);
        assert_eq!(p.instr.as_ref().unwrap().class, InstrClass::Prefetch);
    }

    #[test]
    fn store_and_zero_semantics() {
        let s = make_store("st", "st", 4, ScalarType::F32, MemSpace::Neon);
        let dst = TensorData::zeros(ScalarType::F32, vec![4]);
        let src = TensorData::from_fn(ScalarType::F32, vec![4], |i| i as f64);
        let mut args = vec![ArgValue::Tensor(dst), ArgValue::Tensor(src)];
        run_proc(&s, &mut args).unwrap();
        assert_eq!(args[0].as_tensor().unwrap().data, vec![0.0, 1.0, 2.0, 3.0]);

        let z = make_zero("zero", "zero", 4, ScalarType::F32, MemSpace::Neon);
        let mut args = vec![ArgValue::Tensor(TensorData::from_fn(ScalarType::F32, vec![4], |_| 9.0))];
        run_proc(&z, &mut args).unwrap();
        assert_eq!(args[0].as_tensor().unwrap().data, vec![0.0; 4]);
    }

    #[test]
    fn broadcast_fma_semantics() {
        let b = make_fma_broadcast("fmab", "fmab", 4, ScalarType::F32, MemSpace::Neon);
        let dst = TensorData::zeros(ScalarType::F32, vec![4]);
        let lhs = TensorData::from_fn(ScalarType::F32, vec![4], |i| i as f64);
        let rhs = TensorData::from_fn(ScalarType::F32, vec![1], |_| 3.0);
        let mut args = vec![ArgValue::Tensor(dst), ArgValue::Tensor(lhs), ArgValue::Tensor(rhs)];
        run_proc(&b, &mut args).unwrap();
        assert_eq!(args[0].as_tensor().unwrap().data, vec![0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn prefetch_is_a_semantic_noop() {
        let p = make_prefetch("pf", "pf", ScalarType::F32);
        let addr = TensorData::from_fn(ScalarType::F32, vec![1], |_| 42.0);
        let mut args = vec![ArgValue::Tensor(addr.clone())];
        run_proc(&p, &mut args).unwrap();
        assert_eq!(args[0].as_tensor().unwrap().data, addr.data);
    }

    #[test]
    fn f16_instructions_round_to_half_precision() {
        let l = make_load("ld16", "ld16", 8, ScalarType::F16, MemSpace::Neon8f);
        let src = TensorData::from_fn(ScalarType::F16, vec![8], |_| 1.0);
        let dst = TensorData::zeros(ScalarType::F16, vec![8]);
        let mut args = vec![ArgValue::Tensor(dst), ArgValue::Tensor(src)];
        run_proc(&l, &mut args).unwrap();
        assert!(args[0].as_tensor().unwrap().data.iter().all(|&v| v == 1.0));
    }
}
