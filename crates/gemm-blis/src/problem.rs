//! The BLAS-grade GEMM front door: one problem descriptor, one executor
//! trait, one strided reference implementation.
//!
//! A [`GemmProblem`] describes the full BLAS contract
//!
//! ```text
//! C = alpha * op(A) * op(B) + beta * C
//! ```
//!
//! over borrowed strided views ([`MatRef`]/[`MatMut`]) of caller-owned
//! memory, where `op(X)` is identity or transpose ([`Op`]). Every driver in
//! the workspace implements [`GemmExecutor`] over it:
//!
//! * [`NaiveGemm`] (here) — the strided reference triple loop, the ground
//!   truth of the differential suites;
//! * [`crate::BlisGemm`] — the five-loop blocked algorithm with packing,
//!   arenas, threads, and generated micro-kernels;
//! * `exo_tune::TunedGemm` — autotuned kernel + blocking per problem shape.
//!
//! The semantics corner cases follow BLAS: `beta == 0` means the initial
//! contents of `C` are **never read** (so `C` may hold uninitialised-looking
//! values such as NaN), and `alpha == 0` skips the product entirely (neither
//! `A` nor `B` is read).

use crate::views::{MatMut, MatRef};
use crate::GemmError;

/// The `op(X)` applied to a GEMM operand before the product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Op {
    /// Use the operand as given.
    #[default]
    None,
    /// Use the operand's transpose. Zero-cost: strides swap, no data moves.
    Transpose,
}

impl Op {
    /// Applies the op to a view (a stride swap for [`Op::Transpose`]).
    #[inline]
    pub fn apply(self, m: MatRef<'_>) -> MatRef<'_> {
        match self {
            Op::None => m,
            Op::Transpose => m.t(),
        }
    }
}

/// One GEMM problem: `C = alpha * op(A) * op(B) + beta * C` over borrowed
/// strided views.
///
/// Built with [`GemmProblem::new`] plus the builder methods; the defaults
/// (`alpha = 1`, `beta = 1`, no transposes) make it the accumulating
/// `C += A * B` of the paper. Consumed by [`GemmExecutor::gemm`].
#[derive(Debug)]
pub struct GemmProblem<'a> {
    /// The `A` operand (before `op_a`).
    pub a: MatRef<'a>,
    /// The `B` operand (before `op_b`).
    pub b: MatRef<'a>,
    /// The `C` operand, updated in place.
    pub c: MatMut<'a>,
    /// Scale on the `op(A) * op(B)` product. `0` skips the product (and
    /// never reads `A`/`B`).
    pub alpha: f32,
    /// Scale on the initial `C`. `0` means `C` is never read, only written.
    pub beta: f32,
    /// Op applied to `A`.
    pub op_a: Op,
    /// Op applied to `B`.
    pub op_b: Op,
}

impl<'a> GemmProblem<'a> {
    /// The accumulating problem `C += A * B` (`alpha = 1`, `beta = 1`, no
    /// transposes).
    pub fn new(a: MatRef<'a>, b: MatRef<'a>, c: MatMut<'a>) -> Self {
        GemmProblem { a, b, c, alpha: 1.0, beta: 1.0, op_a: Op::None, op_b: Op::None }
    }

    /// Sets the scale on the product.
    #[must_use]
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the scale on the initial `C` (`0` = overwrite without reading).
    #[must_use]
    pub fn beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }

    /// Uses `A` transposed.
    #[must_use]
    pub fn transpose_a(mut self) -> Self {
        self.op_a = Op::Transpose;
        self
    }

    /// Uses `B` transposed.
    #[must_use]
    pub fn transpose_b(mut self) -> Self {
        self.op_b = Op::Transpose;
        self
    }

    /// Sets the op applied to `A`.
    #[must_use]
    pub fn op_a(mut self, op: Op) -> Self {
        self.op_a = op;
        self
    }

    /// Sets the op applied to `B`.
    #[must_use]
    pub fn op_b(mut self, op: Op) -> Self {
        self.op_b = op;
        self
    }

    /// Validates the shapes and returns the problem dimensions `(m, n, k)`
    /// where `op(A)` is `m x k`, `op(B)` is `k x n` and `C` is `m x n`.
    /// (`C` can never alias `A`/`B`: [`MatMut`] borrows its storage
    /// exclusively.)
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::ShapeMismatch`] when the dimensions are
    /// inconsistent.
    pub fn dims(&self) -> Result<(usize, usize, usize), GemmError> {
        let a = self.op_a.apply(self.a);
        let b = self.op_b.apply(self.b);
        if a.cols() != b.rows() || a.rows() != self.c.rows() || b.cols() != self.c.cols() {
            return Err(GemmError::ShapeMismatch {
                what: format!(
                    "op(A) is {}x{}, op(B) is {}x{}, C is {}x{}",
                    a.rows(),
                    a.cols(),
                    b.rows(),
                    b.cols(),
                    self.c.rows(),
                    self.c.cols()
                ),
            });
        }
        Ok((a.rows(), b.cols(), a.cols()))
    }

    /// A mutable reborrow of this problem: the same descriptor over views
    /// borrowed from `self`, so an executor can consume the reborrow while
    /// the caller keeps the original — what the batch path's degradation
    /// retry needs to attempt the same problem twice.
    pub fn reborrow(&mut self) -> GemmProblem<'_> {
        GemmProblem {
            a: self.a,
            b: self.b,
            c: self.c.rb_mut(),
            alpha: self.alpha,
            beta: self.beta,
            op_a: self.op_a,
            op_b: self.op_b,
        }
    }

    /// Floating-point operations of the problem (`2 m n k`, zero when
    /// `alpha == 0`).
    pub fn flops(&self) -> u64 {
        if self.alpha == 0.0 {
            return 0;
        }
        let a = self.op_a.apply(self.a);
        2 * a.rows() as u64 * self.c.cols() as u64 * a.cols() as u64
    }
}

/// What a [`GemmExecutor`] reports about one completed GEMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmStats {
    /// Rows of `C`.
    pub m: usize,
    /// Columns of `C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Useful floating-point operations actually performed (`2 m n k`, but
    /// `0` when the problem's `alpha == 0` short-circuited the product) —
    /// recorded by the executor so throughput derived from stats stays
    /// honest.
    pub flop_count: u64,
    /// Display name of the micro-kernel (or backend) that ran the problem.
    pub kernel: String,
    /// Worker threads the driver used (`1` for sequential executors).
    pub threads: usize,
    /// Width of the shared worker pool the driver drew from, or `0` when
    /// the run stayed entirely on the calling thread.
    pub pool_workers: usize,
    /// Whether the problem ran through a batch executor (`exo-serve`'s
    /// `GemmBatch` path) rather than a standalone call.
    pub batched: bool,
    /// Whether the result came from a degradation retry: the first attempt
    /// failed (error or contained panic) and the problem was re-run once on
    /// the next execution tier down (simd → superword → tape → interp).
    pub degraded: bool,
}

impl GemmStats {
    /// Useful floating-point operations of the executed problem (zero when
    /// `alpha == 0` skipped the product).
    pub fn flops(&self) -> u64 {
        self.flop_count
    }

    /// Useful floating-point operations of an `m x n x k` problem:
    /// `2 m n k`, explicitly zero both for `alpha == 0` (the product is
    /// skipped, `A`/`B` never read) and for degenerate shapes (any
    /// dimension zero) — degenerate calls are *counted* as zero-flop work,
    /// never silently skipped, so service-level aggregation stays honest.
    pub fn flops_for(m: usize, n: usize, k: usize, alpha: f32) -> u64 {
        if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
            0
        } else {
            2 * m as u64 * n as u64 * k as u64
        }
    }
}

/// The single GEMM entry point every driver implements: solve one
/// [`GemmProblem`], updating `C` in place.
///
/// Implementations must honor the full contract — strides, transposes,
/// `alpha`/`beta` (including the never-read-`C` `beta == 0` and the
/// never-read-`A`/`B` `alpha == 0` cases) — and agree with [`NaiveGemm`] to
/// floating-point accumulation tolerance on every valid problem.
pub trait GemmExecutor {
    /// Executes the problem.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::ShapeMismatch`] for inconsistent dimensions and
    /// implementation-specific errors otherwise.
    fn gemm(&self, problem: GemmProblem<'_>) -> Result<GemmStats, GemmError>;
}

/// The strided reference executor: a straight `(i, j, k)` triple loop over
/// the views, one `f32` accumulator per output element, `k` ascending.
///
/// Slow and obviously correct — the ground truth the differential suites
/// compare every other [`GemmExecutor`] against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveGemm;

impl GemmExecutor for NaiveGemm {
    fn gemm(&self, problem: GemmProblem<'_>) -> Result<GemmStats, GemmError> {
        let (m, n, k) = problem.dims()?;
        let a = problem.op_a.apply(problem.a);
        let b = problem.op_b.apply(problem.b);
        let (alpha, beta) = (problem.alpha, problem.beta);
        let mut c = problem.c;
        for i in 0..m {
            for j in 0..n {
                // beta == 0 must not read C (it may hold NaN), and
                // alpha == 0 must not read A or B.
                let base = if beta == 0.0 { 0.0 } else { beta * c.get(i, j) };
                let update = if alpha == 0.0 {
                    0.0
                } else {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a.get(i, p) * b.get(p, j);
                    }
                    alpha * acc
                };
                c.set(i, j, base + update);
            }
        }
        let flop_count = GemmStats::flops_for(m, n, k, alpha);
        Ok(GemmStats {
            m,
            n,
            k,
            flop_count,
            kernel: "naive strided reference".into(),
            threads: 1,
            pool_workers: 0,
            batched: false,
            degraded: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        (0..rows * cols).map(|x| f(x / cols, x % cols)).collect()
    }

    #[test]
    fn naive_executor_honors_the_full_contract() {
        // C = alpha * A^T * B + beta * C on small hand-checkable data.
        let at = dense(3, 2, |i, j| (i * 2 + j) as f32); // A^T stored as 3x2; op(A) = T makes A 2x3.
        let b = dense(3, 2, |i, j| (i + j) as f32 * 0.5);
        let mut c = vec![1.0f32; 4];
        let p = GemmProblem::new(
            MatRef::from_slice(&at, 3, 2),
            MatRef::from_slice(&b, 3, 2),
            MatMut::from_slice(&mut c, 2, 2),
        )
        .transpose_a()
        .alpha(2.0)
        .beta(-1.0);
        let stats = NaiveGemm.gemm(p).unwrap();
        assert_eq!((stats.m, stats.n, stats.k), (2, 2, 3));
        // op(A) = [[0, 2, 4], [1, 3, 5]]; B = [[0, .5], [.5, 1], [1, 1.5]].
        // op(A)*B = [[5, 8], [6.5, 11]]; alpha*.. - C = [[9, 15], [12, 21]].
        assert_eq!(c, vec![9.0, 15.0, 12.0, 21.0]);
    }

    #[test]
    fn beta_zero_never_reads_c() {
        let a = dense(2, 2, |i, j| (i + j) as f32);
        let b = dense(2, 2, |i, j| (i * 2 + j) as f32);
        let mut c = vec![f32::NAN; 4];
        let p = GemmProblem::new(
            MatRef::from_slice(&a, 2, 2),
            MatRef::from_slice(&b, 2, 2),
            MatMut::from_slice(&mut c, 2, 2),
        )
        .beta(0.0);
        NaiveGemm.gemm(p).unwrap();
        assert!(c.iter().all(|v| v.is_finite()), "beta = 0 must overwrite NaN garbage: {c:?}");
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let a = dense(2, 3, |_, _| f32::NAN);
        let b = dense(3, 2, |_, _| f32::NAN);
        let mut c = vec![2.0f32; 4];
        let p = GemmProblem::new(
            MatRef::from_slice(&a, 2, 3),
            MatRef::from_slice(&b, 3, 2),
            MatMut::from_slice(&mut c, 2, 2),
        )
        .alpha(0.0)
        .beta(0.5);
        NaiveGemm.gemm(p).unwrap();
        assert_eq!(c, vec![1.0; 4], "alpha = 0 must not read A/B");
    }

    #[test]
    fn mismatched_shapes_are_rejected() {
        let a = dense(2, 3, |_, _| 0.0);
        let b = dense(2, 2, |_, _| 0.0);
        let mut c = vec![0.0f32; 4];
        let p = GemmProblem::new(
            MatRef::from_slice(&a, 2, 3),
            MatRef::from_slice(&b, 2, 2),
            MatMut::from_slice(&mut c, 2, 2),
        );
        assert!(matches!(NaiveGemm.gemm(p), Err(GemmError::ShapeMismatch { .. })));
    }

    #[test]
    fn flops_account_for_alpha_zero() {
        let a = dense(4, 8, |_, _| 0.0);
        let b = dense(8, 2, |_, _| 0.0);
        let mut c = vec![0.0f32; 8];
        let p = GemmProblem::new(
            MatRef::from_slice(&a, 4, 8),
            MatRef::from_slice(&b, 8, 2),
            MatMut::from_slice(&mut c, 4, 2),
        );
        assert_eq!(p.flops(), 2 * 4 * 2 * 8);
        let p = p.alpha(0.0);
        assert_eq!(p.flops(), 0);
    }

    #[test]
    fn degenerate_shapes_report_zero_flops_not_garbage() {
        assert_eq!(GemmStats::flops_for(4, 3, 5, 1.0), 120);
        assert_eq!(GemmStats::flops_for(0, 3, 5, 1.0), 0);
        assert_eq!(GemmStats::flops_for(4, 0, 5, 1.0), 0);
        assert_eq!(GemmStats::flops_for(4, 3, 0, 1.0), 0);
        assert_eq!(GemmStats::flops_for(4, 3, 5, 0.0), 0);
        // And the executors *count* the degenerate call rather than
        // skipping it: stats come back with the shape and zero flops.
        let a: Vec<f32> = Vec::new();
        let b = vec![0.0f32; 0];
        let mut c = vec![7.0f32; 6];
        let p = GemmProblem::new(
            MatRef::from_slice(&a, 2, 0),
            MatRef::from_slice(&b, 0, 3),
            MatMut::from_slice(&mut c, 2, 3),
        );
        let stats = NaiveGemm.gemm(p).unwrap();
        assert_eq!((stats.m, stats.n, stats.k), (2, 3, 0));
        assert_eq!(stats.flops(), 0);
        assert!(!stats.batched);
        assert_eq!(stats.pool_workers, 0);
    }
}
