//! The functional BLIS-like GEMM algorithm: the five loops of Fig. 1 around
//! the packing routines and a micro-kernel, computing `C += A * B` on real
//! `f32` data.
//!
//! This path exists for correctness: it is how the workspace demonstrates end
//! to end that generated micro-kernels drop into the GotoBLAS/BLIS structure
//! and produce the right answer for arbitrary (including fringe) problem
//! sizes. Performance questions go through [`crate::model`] instead.

use crate::baselines::KernelImpl;
use crate::blocking::BlockingParams;
use crate::packing::{a_panel, b_panel, pack_a, pack_b};
use crate::GemmError;

/// A dense row-major matrix view used by the driver.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major element storage.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix with `f(row, col)` values.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Element accessor.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }
}

/// Reference triple-loop GEMM, the ground truth for every test in the
/// workspace: `c += a * b`.
pub fn naive_gemm(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols, b.rows);
    for i in 0..a.rows {
        for p in 0..a.cols {
            let aip = a.get(i, p);
            for j in 0..b.cols {
                c.data[i * c.cols + j] += aip * b.get(p, j);
            }
        }
    }
}

/// The BLIS-like GEMM driver of Fig. 1, parameterised by blocking values and
/// a micro-kernel.
#[derive(Debug, Clone)]
pub struct BlisGemm {
    /// Cache blocking parameters.
    pub blocking: BlockingParams,
}

impl BlisGemm {
    /// Creates a driver with the given blocking.
    pub fn new(blocking: BlockingParams) -> Self {
        BlisGemm { blocking }
    }

    /// Creates a driver whose blocking is derived analytically from the
    /// cache hierarchy for the given micro-kernel's register tile — the
    /// constructor used when a registry (rather than a hard-coded shape)
    /// chooses the kernel.
    pub fn for_kernel(kernel: &KernelImpl, mem: &carmel_sim::CacheHierarchy) -> Self {
        BlisGemm::new(BlockingParams::analytical(mem, kernel.mr, kernel.nr, 4))
    }

    /// Computes `c += a * b` using the five-loop algorithm with the given
    /// micro-kernel. Fringe tiles are zero-padded by the packing routines and
    /// the `C` tile is staged through a padded scratch tile, exactly as the
    /// monolithic library kernels do.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::ShapeMismatch`] if the matrix dimensions are
    /// inconsistent, and propagates micro-kernel failures.
    pub fn gemm(&self, kernel: &KernelImpl, a: &Matrix, b: &Matrix, c: &mut Matrix) -> Result<(), GemmError> {
        if a.cols != b.rows || a.rows != c.rows || b.cols != c.cols {
            return Err(GemmError::ShapeMismatch {
                what: format!(
                    "A is {}x{}, B is {}x{}, C is {}x{}",
                    a.rows, a.cols, b.rows, b.cols, c.rows, c.cols
                ),
            });
        }
        let (m, n, k) = (a.rows, b.cols, a.cols);
        if m == 0 || n == 0 || k == 0 {
            return Ok(());
        }
        let BlockingParams { mc, kc, nc, .. } = self.blocking;
        let (mr, nr) = (kernel.mr, kernel.nr);

        // Loop L1: columns of C / B.
        let mut jc = 0;
        while jc < n {
            let nc_eff = nc.min(n - jc);
            // Loop L2: the k dimension.
            let mut pc = 0;
            while pc < k {
                let kc_eff = kc.min(k - pc);
                let packed_b = pack_b(&b.data, n, pc, jc, kc_eff, nc_eff, nr);
                // Loop L3: rows of C / A.
                let mut ic = 0;
                while ic < m {
                    let mc_eff = mc.min(m - ic);
                    let packed_a = pack_a(&a.data, k, ic, pc, mc_eff, kc_eff, mr);
                    // Loops L4 and L5: micro-tiles.
                    let n_panels = nc_eff.div_ceil(nr);
                    let m_panels = mc_eff.div_ceil(mr);
                    for jr in 0..n_panels {
                        for ir in 0..m_panels {
                            let ap = a_panel(&packed_a, ir, kc_eff, mr);
                            let bp = b_panel(&packed_b, jr, kc_eff, nr);
                            // Stage the (possibly fringe) C tile into a padded
                            // [nr][mr] scratch in the micro-kernel's layout.
                            let mut c_tile = vec![0.0f32; mr * nr];
                            let rows = mr.min(mc_eff - ir * mr);
                            let cols = nr.min(nc_eff - jr * nr);
                            for j in 0..cols {
                                for i in 0..rows {
                                    let gi = ic + ir * mr + i;
                                    let gj = jc + jr * nr + j;
                                    c_tile[j * mr + i] = c.get(gi, gj);
                                }
                            }
                            kernel.run(kc_eff, ap, bp, &mut c_tile)?;
                            for j in 0..cols {
                                for i in 0..rows {
                                    let gi = ic + ir * mr + i;
                                    let gj = jc + jr * nr + j;
                                    c.set(gi, gj, c_tile[j * mr + i]);
                                }
                            }
                        }
                    }
                    ic += mc_eff;
                }
                pc += kc_eff;
            }
            jc += nc_eff;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{blis_assembly_kernel, exo_kernel, neon_intrinsics_kernel, reference_kernel};
    use exo_isa::neon_f32;
    use std::sync::Arc;
    use ukernel_gen::MicroKernelGenerator;

    fn check_gemm(kernel: &KernelImpl, m: usize, n: usize, k: usize) {
        let a = Matrix::from_fn(m, k, |i, j| ((i * 7 + j * 3 + 1) % 13) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 11 + 2) % 17) as f32 * 0.125 - 1.0);
        let mut c = Matrix::from_fn(m, n, |i, j| ((i + j) % 3) as f32);
        let mut c_ref = c.clone();
        // Use small blocking values so every loop level is exercised even on
        // small problems.
        let blocking = BlockingParams { mc: 24, kc: 16, nc: 36, mr: kernel.mr, nr: kernel.nr };
        BlisGemm::new(blocking).gemm(kernel, &a, &b, &mut c).unwrap();
        naive_gemm(&a, &b, &mut c_ref);
        for idx in 0..c.data.len() {
            assert!(
                (c.data[idx] - c_ref.data[idx]).abs() < 1e-3,
                "{} mismatch at {idx}: {} vs {}",
                kernel.name,
                c.data[idx],
                c_ref.data[idx]
            );
        }
    }

    #[test]
    fn blis_algorithm_matches_naive_for_exact_tiles() {
        check_gemm(&neon_intrinsics_kernel(), 48, 48, 32);
    }

    #[test]
    fn blis_algorithm_handles_fringe_tiles() {
        check_gemm(&blis_assembly_kernel(true), 50, 45, 23);
        check_gemm(&reference_kernel(3, 5), 17, 11, 9);
    }

    #[test]
    fn generated_exo_kernels_drop_into_the_algorithm() {
        let generator = MicroKernelGenerator::new(neon_f32());
        let k8x8 = exo_kernel(Arc::new(generator.generate(8, 8).unwrap()));
        check_gemm(&k8x8, 40, 40, 24);
        let k1x12 = exo_kernel(Arc::new(generator.generate(1, 12).unwrap()));
        check_gemm(&k1x12, 13, 36, 20);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(5, 4);
        let mut c = Matrix::zeros(4, 4);
        let gemm = BlisGemm::new(BlockingParams::carmel_defaults(8, 12));
        assert!(matches!(
            gemm.gemm(&neon_intrinsics_kernel(), &a, &b, &mut c),
            Err(GemmError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_problems_are_a_no_op() {
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let mut c = Matrix::zeros(0, 0);
        let gemm = BlisGemm::new(BlockingParams::carmel_defaults(8, 12));
        gemm.gemm(&neon_intrinsics_kernel(), &a, &b, &mut c).unwrap();
    }
}
