//! The functional BLIS-like GEMM algorithm: the five loops of Fig. 1 around
//! the packing routines and a micro-kernel, computing
//! `C = alpha * op(A) * op(B) + beta * C` over strided views
//! ([`crate::GemmProblem`]).
//!
//! The BLAS contract is honored *inside* the blocked structure, never via
//! temporaries:
//!
//! * `op(A)`/`op(B)` reach the packing routines as stride-swapped views, so
//!   a transpose is a different gather walk, not a copy;
//! * `alpha` is folded into the packed `Ac` elements (one multiply in the
//!   pass that already touches every element once per k-block);
//! * `beta` is applied on the `C` write-back path of the **first** k-block
//!   only — later k-blocks accumulate — and `beta == 0` never reads `C`.
//!
//! The driver has two modes:
//!
//! * the default **arena** hot path — a [`crate::packing::PackArena`], the
//!   staged `C` tile, and a prove-once [`KernelDispatch`] per worker are
//!   allocated once per GEMM and reused across every `(jc, pc, ic)`
//!   iteration, and one of the block loops can optionally be spread over a
//!   scoped thread pool ([`BlisGemm::with_threads`]): the `ic` loop by
//!   default (disjoint row blocks of `C`), or the `jc` loop when the
//!   problem is wide and short (large `n`, small `m` — disjoint nc-wide
//!   column blocks, each staged through a private dense copy). Either way
//!   every `C` element is computed by exactly one worker in the sequential
//!   op order, so the result is bit-for-bit identical for any thread count;
//! * the legacy **unbuffered** path ([`BlisGemm::without_arena`]) that
//!   allocates fresh buffers per block, kept as a baseline for the
//!   `gemm_throughput` bench and for differential tests.
//!
//! Correctness for arbitrary (including fringe) problem sizes is the point;
//! with tape-compiled kernels the same entry point is also the fast path.
//! Modelled performance questions go through [`crate::model`] instead.

use crate::baselines::{neon_intrinsics_kernel, KernelDispatch, KernelImpl};
use crate::blocking::BlockingParams;
use crate::packing::{a_panel, b_panel, pack_a, pack_a_into, pack_b, pack_b_into, PackArena};
use crate::pool::{PoolJob, ThreadPool};
use crate::problem::{GemmExecutor, GemmProblem, GemmStats};
use crate::views::{MatMut, MatRef};
use crate::GemmError;

/// A dense row-major owned matrix: the convenience container of the
/// workspace's tests, benches, and examples.
///
/// `Matrix` is storage only — GEMM entry points take borrowed strided views
/// ([`MatRef`]/[`MatMut`]), which a `Matrix` produces zero-copy via
/// [`Matrix::view`] / [`Matrix::view_mut`] (or the `From` impls).
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major element storage.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix with `f(row, col)` values.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Element accessor.
    ///
    /// Both axes are checked in debug builds: an out-of-range `j` with an
    /// in-range `i` would otherwise silently alias into the next row of the
    /// flat storage instead of panicking.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows, "row index {i} out of {} rows", self.rows);
        debug_assert!(j < self.cols, "column index {j} out of {} columns", self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable element accessor (both axes checked in debug builds, see
    /// [`Matrix::get`]).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows, "row index {i} out of {} rows", self.rows);
        debug_assert!(j < self.cols, "column index {j} out of {} columns", self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice — hoists the row offset out of hot loops.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let w = self.cols;
        &mut self.data[i * w..(i + 1) * w]
    }

    /// A borrowed read-only view of the whole matrix.
    #[inline]
    pub fn view(&self) -> MatRef<'_> {
        MatRef::from_slice(&self.data, self.rows, self.cols)
    }

    /// A borrowed mutable view of the whole matrix.
    #[inline]
    pub fn view_mut(&mut self) -> MatMut<'_> {
        MatMut::from_slice(&mut self.data, self.rows, self.cols)
    }
}

impl<'a> From<&'a Matrix> for MatRef<'a> {
    fn from(m: &'a Matrix) -> Self {
        m.view()
    }
}

impl<'a> From<&'a mut Matrix> for MatMut<'a> {
    fn from(m: &'a mut Matrix) -> Self {
        m.view_mut()
    }
}

/// Reference triple-loop GEMM over dense matrices, the ground truth for the
/// dense differential tests in the workspace: `c += a * b`.
///
/// Row slices are hoisted out of the inner loop so the baseline pays no
/// per-element index arithmetic — it is run by every differential test, and
/// its wall-time bounds the whole suite's. The strided/transposed/
/// alpha-beta generalisation is [`crate::NaiveGemm`].
pub fn naive_gemm(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols, b.rows);
    assert_eq!(a.rows, c.rows);
    assert_eq!(b.cols, c.cols);
    for i in 0..a.rows {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (p, &aip) in a_row.iter().enumerate() {
            let b_row = b.row(p);
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aip * bv;
            }
        }
    }
}

/// A raw strided window onto the `C` operand, shared across the driver's
/// workers.
///
/// Why raw pointers: with arbitrary strides the row blocks of `C` are
/// logically disjoint but *interleaved* in memory (e.g. a column-major or
/// padded-submatrix `C`), so the safe `split_at_mut` partition of the old
/// dense driver cannot express them. Each worker reads and writes only
/// `(i, j)` elements of its own row range; [`MatMut`]'s constructor proved
/// the stride map injective, so those element sets are disjoint and the
/// shared pointer is race-free.
#[derive(Clone, Copy)]
struct RawMat {
    ptr: *mut f32,
    row_stride: usize,
    col_stride: usize,
    rows: usize,
    cols: usize,
}

// SAFETY: see the type docs — workers touch disjoint element sets, which
// the driver guarantees by partitioning rows (or handing each worker a
// private staging buffer).
unsafe impl Send for RawMat {}
unsafe impl Sync for RawMat {}

impl RawMat {
    fn of(c: &mut MatMut<'_>) -> Self {
        let (rows, cols) = (c.rows(), c.cols());
        let (ptr, row_stride, col_stride) = c.raw_parts();
        RawMat { ptr, row_stride, col_stride, rows, cols }
    }

    fn of_dense(data: &mut [f32], rows: usize, cols: usize) -> Self {
        debug_assert!(data.len() >= rows * cols);
        RawMat { ptr: data.as_mut_ptr(), row_stride: cols, col_stride: 1, rows, cols }
    }

    /// # Safety
    ///
    /// `(i, j)` must be in bounds and the caller must own the element (no
    /// concurrent writer).
    #[inline]
    unsafe fn load(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        *self.ptr.add(i * self.row_stride + j * self.col_stride)
    }

    /// # Safety
    ///
    /// `(i, j)` must be in bounds and the caller must own the element (no
    /// concurrent reader or writer).
    #[inline]
    unsafe fn store(&self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        *self.ptr.add(i * self.row_stride + j * self.col_stride) = v;
    }
}

/// The BLIS-like GEMM driver of Fig. 1, parameterised by blocking values and
/// a micro-kernel.
///
/// As a [`GemmExecutor`] it dispatches its stored kernel (set with
/// [`BlisGemm::with_kernel`] / [`BlisGemm::for_kernel`]); the kernel-sweep
/// harnesses use [`BlisGemm::gemm_with`] to supply one per call.
#[derive(Debug, Clone)]
pub struct BlisGemm {
    /// Cache blocking parameters.
    pub blocking: BlockingParams,
    /// Maximum parallelism drawn from the shared worker pool
    /// ([`ThreadPool::global`]) for the arena path's parallel block loop
    /// (`ic` rows by default, `jc` columns for wide-and-short problems).
    /// `1` is fully sequential; `0` means "the pool's full width" (the
    /// machine, or the `EXO_THREADS` override).
    pub threads: usize,
    /// Whether to use the zero-allocation arena hot path (default) or the
    /// legacy allocate-per-block path.
    pub use_arena: bool,
    /// The micro-kernel the [`GemmExecutor`] entry point dispatches.
    kernel: KernelImpl,
}

impl BlisGemm {
    /// Creates a driver with the given blocking (arena path, single thread,
    /// and the hand-written NEON 8x12 kernel as the executor default —
    /// override with [`BlisGemm::with_kernel`]).
    pub fn new(blocking: BlockingParams) -> Self {
        BlisGemm { blocking, threads: 1, use_arena: true, kernel: neon_intrinsics_kernel() }
    }

    /// Creates a driver around a micro-kernel, with blocking derived
    /// analytically from the cache hierarchy for the kernel's register tile
    /// — the constructor used when a registry (rather than a hard-coded
    /// shape) chooses the kernel.
    pub fn for_kernel(kernel: &KernelImpl, mem: &carmel_sim::CacheHierarchy) -> Self {
        BlisGemm::new(BlockingParams::analytical(mem, kernel.mr, kernel.nr, 4)).with_kernel(kernel.clone())
    }

    /// Sets the micro-kernel the [`GemmExecutor`] entry point dispatches.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelImpl) -> Self {
        self.kernel = kernel;
        self
    }

    /// The micro-kernel the [`GemmExecutor`] entry point dispatches.
    pub fn kernel(&self) -> &KernelImpl {
        &self.kernel
    }

    /// Sets the worker-thread count for the parallel block loop (`0` = all
    /// cores). Wide-and-short problems split the `jc` column loop, all
    /// others the `ic` row loop; the result is identical either way.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Switches to the legacy allocate-per-block path (no arena, no
    /// threading) — the baseline the perf benches compare against.
    #[must_use]
    pub fn without_arena(mut self) -> Self {
        self.use_arena = false;
        self
    }

    /// Creates an amortised sequential runner around this driver's stored
    /// kernel and blocking: the arena, staged `C` tile, and prove-once
    /// dispatch handle are allocated here, once, and reused by every
    /// [`GemmRunner::gemm`] call.
    pub fn runner(&self) -> GemmRunner<'_> {
        let (mr, nr) = (self.kernel.mr, self.kernel.nr);
        GemmRunner {
            driver: self,
            dispatch: self.kernel.dispatcher(),
            arena: PackArena::empty(),
            c_tile: vec![0.0f32; mr * nr],
        }
    }

    /// Re-attaches detached runner scratch ([`GemmRunner::into_scratch`])
    /// to this driver: the warm arena, staged tile, and memoised dispatch
    /// proofs are reused when the scratch was built for this driver's
    /// kernel and backend, so a caller keeping scratch across batches pays
    /// the [`BlisGemm::runner`] costs once per kernel group instead of
    /// once per batch. Scratch from a *different* kernel or backend keeps
    /// only its warm buffers — the dispatch handle is rebuilt, so results
    /// never depend on where the scratch came from.
    pub fn runner_with(&self, scratch: RunnerScratch) -> GemmRunner<'_> {
        let RunnerScratch { dispatch, arena, mut c_tile } = scratch;
        let matches = {
            let built_for = dispatch.kernel();
            built_for.name == self.kernel.name
                && built_for.mr == self.kernel.mr
                && built_for.nr == self.kernel.nr
                && built_for.backend == self.kernel.backend
        };
        let dispatch = if matches { dispatch } else { self.kernel.dispatcher() };
        c_tile.resize(self.kernel.mr * self.kernel.nr, 0.0);
        GemmRunner { driver: self, dispatch, arena, c_tile }
    }

    /// Solves a [`GemmProblem`] with an explicitly supplied micro-kernel
    /// (the stored one is ignored): the full-control entry point behind the
    /// [`GemmExecutor`] impl, used by harnesses that sweep kernels over one
    /// driver.
    ///
    /// Fringe tiles are zero-padded by the packing routines and the `C`
    /// tile is staged through a padded scratch tile, exactly as the
    /// monolithic library kernels do.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::ShapeMismatch`] if the view dimensions are
    /// inconsistent, and propagates micro-kernel failures.
    pub fn gemm_with(&self, kernel: &KernelImpl, problem: GemmProblem<'_>) -> Result<GemmStats, GemmError> {
        let (m, n, k) = problem.dims()?;
        let a = problem.op_a.apply(problem.a);
        let b = problem.op_b.apply(problem.b);
        let (alpha, beta) = (problem.alpha, problem.beta);
        let mut c = problem.c;
        let flop_count = GemmStats::flops_for(m, n, k, alpha);
        let stats = |threads: usize| GemmStats {
            m,
            n,
            k,
            flop_count,
            kernel: kernel.name.clone(),
            threads,
            pool_workers: if threads > 1 { ThreadPool::global().workers() } else { 0 },
            batched: false,
            degraded: false,
        };
        if m == 0 || n == 0 {
            return Ok(stats(1));
        }
        if k == 0 || alpha == 0.0 {
            // Degenerate product: C = beta * C, honoring beta == 0 as
            // "never read".
            scale_c(&mut c, beta);
            return Ok(stats(1));
        }
        if self.use_arena {
            let threads = self.gemm_arena(kernel, a, b, &mut c, alpha, beta)?;
            Ok(stats(threads))
        } else {
            self.gemm_unbuffered(kernel, a, b, &mut c, alpha, beta)?;
            Ok(stats(1))
        }
    }

    /// The zero-allocation hot path: packing buffers, the `C` scratch tile,
    /// and one prove-once kernel dispatch handle per worker are allocated
    /// once up front, and the `ic` (or `jc`) loop optionally fans out over
    /// scoped threads. Returns the worker count used.
    fn gemm_arena(
        &self,
        kernel: &KernelImpl,
        a: MatRef<'_>,
        b: MatRef<'_>,
        c: &mut MatMut<'_>,
        alpha: f32,
        beta: f32,
    ) -> Result<usize, GemmError> {
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        let BlockingParams { mc, kc, nc, .. } = self.blocking;
        let (mr, nr) = (kernel.mr, kernel.nr);
        let threads = match self.threads {
            0 => ThreadPool::global().workers(),
            t => t,
        };

        // Pick the parallel loop. The ic loop is the default (disjoint row
        // ranges of C), but a wide-and-short problem (large n, small m) has
        // too few ic blocks to occupy the pool — there the jc loop over nc
        // column blocks offers more parallelism.
        let blocks = ic_blocks(m, mc);
        let col_blocks = jc_blocks(n, nc);
        if threads > 1 && col_blocks.len() > blocks.len() && blocks.len() < threads {
            return self.gemm_arena_jc(kernel, a, b, c, &blocks, &col_blocks, alpha, beta, threads);
        }

        // Packing arena sized once at the blocking-derived maxima, clamped
        // to the problem; split-borrowed so the packed Bc prefix can stay
        // live while Ac blocks are repacked. Panels are shaped by the
        // *kernel's* register tile, which the blocking's mr/nr need not
        // match (callers may pair a generic blocking with any kernel), so
        // the arena is sized for the tile that will actually be packed.
        let tile_blocking = BlockingParams { mr, nr, ..self.blocking };
        let mut arena = PackArena::for_problem(&tile_blocking, m, n, k);
        let c_raw = RawMat::of(c);

        // Fully sequential run: one scratch set, the shared five-loop body.
        if threads <= 1 || blocks.len() <= 1 {
            let (a_buf, b_buf) = arena.buffers();
            let mut c_tile = vec![0.0f32; mr * nr];
            let mut dispatch = kernel.dispatcher();
            // SAFETY: sequential — this is the only live user of the C
            // pointer, and all indices are in bounds.
            unsafe {
                gemm_arena_sequential(
                    &self.blocking,
                    &mut dispatch,
                    a_buf,
                    b_buf,
                    &mut c_tile,
                    a,
                    b,
                    c_raw,
                    alpha,
                    beta,
                )?;
            }
            return Ok(1);
        }

        // Threaded run: one private A-pack/C-tile/dispatch triple per
        // worker, allocated once per GEMM, and the ic loop of every
        // (jc, pc) iteration fanned out over the shared pool's recycled
        // workers — no OS threads are spawned here.
        let a_cap = arena.a_capacity();
        let (_, b_buf) = arena.buffers();
        let workers = threads.min(blocks.len());
        let mut worker_state: Vec<(Vec<f32>, Vec<f32>, KernelDispatch)> =
            (0..workers).map(|_| (vec![0.0f32; a_cap], vec![0.0f32; mr * nr], kernel.dispatcher())).collect();
        // Loop L1: columns of C / B.
        let mut jc = 0;
        while jc < n {
            let nc_eff = nc.min(n - jc);
            // Loop L2: the k dimension. beta belongs to the first k-block
            // only; later blocks accumulate.
            let mut pc = 0;
            while pc < k {
                let kc_eff = kc.min(k - pc);
                let first_k = pc == 0;
                let b_len = nc_eff.div_ceil(nr) * kc_eff * nr;
                pack_b_into(&mut b_buf[..b_len], b, pc, jc, kc_eff, nc_eff, nr);
                let packed_b = &b_buf[..b_len];

                // Loop L3: rows of C / A — the pooled loop. Deal the ic
                // blocks round-robin to the workers; each block is a
                // disjoint row range of C.
                let mut groups: Vec<Vec<(usize, usize)>> = vec![Vec::new(); workers];
                for (idx, &blk) in blocks.iter().enumerate() {
                    groups[idx % workers].push(blk);
                }
                let mut results: Vec<Result<(), GemmError>> = vec![Ok(()); workers];
                let jobs: Vec<PoolJob<'_>> = groups
                    .into_iter()
                    .zip(worker_state.iter_mut())
                    .zip(results.iter_mut())
                    .map(|((group, (a_buf, c_tile, dispatch)), result)| {
                        Box::new(move || {
                            *result = group.into_iter().try_for_each(|(ic, mc_eff)| {
                                // SAFETY: each worker owns the disjoint row
                                // ranges dealt to it; MatMut proved the
                                // stride map injective, so their C element
                                // sets are disjoint.
                                unsafe {
                                    run_ic_block(
                                        dispatch, a, ic, pc, mc_eff, kc_eff, packed_b, nc_eff, jc, c_raw,
                                        alpha, beta, first_k, a_buf, c_tile,
                                    )
                                }
                            });
                        }) as PoolJob<'_>
                    })
                    .collect();
                ThreadPool::global().scope_run(jobs);
                results.into_iter().collect::<Result<(), GemmError>>()?;
                pc += kc_eff;
            }
            jc += nc_eff;
        }
        Ok(workers)
    }

    /// The jc-parallel arena path: nc-wide column blocks of `C` are dealt
    /// out to scoped workers, each with a private packing arena, dispatch
    /// handle, and a private dense copy of its column block. Returns the
    /// worker count used.
    ///
    /// A column block of a strided `C` is not generally contiguous; each
    /// worker therefore stages its block through a dense `m x nc_eff` copy
    /// (copied in before the block's loops, copied back after the join —
    /// O(m·n) traffic total, negligible against the O(m·n·k) compute).
    /// Within a block the pc/ic/jr/ir loops run in exactly the sequential
    /// order, and every `C` element belongs to exactly one block, so the
    /// result is bit-for-bit identical for any thread count. `beta` is
    /// applied inside the block loops (first k-block), so the staged copy
    /// carries original `C` values — which are never read when
    /// `beta == 0`.
    #[allow(clippy::too_many_arguments)]
    fn gemm_arena_jc(
        &self,
        kernel: &KernelImpl,
        a: MatRef<'_>,
        b: MatRef<'_>,
        c: &mut MatMut<'_>,
        ic_blocks: &[(usize, usize)],
        col_blocks: &[(usize, usize)],
        alpha: f32,
        beta: f32,
        threads: usize,
    ) -> Result<usize, GemmError> {
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        let BlockingParams { kc, nc, .. } = self.blocking;
        let (mr, nr) = (kernel.mr, kernel.nr);
        let tile_blocking = BlockingParams { mr, nr, ..self.blocking };

        // Stage every column block into a dense private copy up front
        // (memcpy per row when C's column stride is unit — the common
        // row-major case — scalar walk otherwise).
        let c_ro = c.rb();
        let mut staged: Vec<(usize, usize, Vec<f32>)> = col_blocks
            .iter()
            .map(|&(jc, nc_eff)| {
                let mut cols = vec![0.0f32; m * nc_eff];
                for i in 0..m {
                    let dst = &mut cols[i * nc_eff..(i + 1) * nc_eff];
                    if let Some(src) = c_ro.contiguous_row(i, jc, nc_eff) {
                        dst.copy_from_slice(src);
                    } else {
                        for (j, slot) in dst.iter_mut().enumerate() {
                            *slot = c_ro.get(i, jc + j);
                        }
                    }
                }
                (jc, nc_eff, cols)
            })
            .collect();

        // Deal blocks round-robin to up to `threads` workers; each worker
        // owns disjoint `&mut` block entries, so the jobs need no unsafe
        // sharing of C itself. The jobs run on the shared pool's recycled
        // workers (plus this thread helping) — no OS threads are spawned.
        let workers = threads.min(staged.len());
        let mut groups: Vec<Vec<&mut (usize, usize, Vec<f32>)>> = (0..workers).map(|_| Vec::new()).collect();
        for (idx, blk) in staged.iter_mut().enumerate() {
            groups[idx % workers].push(blk);
        }
        let mut results: Vec<Result<(), GemmError>> = vec![Ok(()); workers];
        let jobs: Vec<PoolJob<'_>> = groups
            .into_iter()
            .zip(results.iter_mut())
            .map(|(group, result)| {
                Box::new(move || {
                    *result = (|| -> Result<(), GemmError> {
                        // Private per-worker arena and dispatch handle,
                        // sized for one column block, allocated once per
                        // GEMM.
                        let mut arena = PackArena::for_problem(&tile_blocking, m, nc.min(n), k);
                        let (a_buf, b_buf) = arena.buffers();
                        let mut c_tile = vec![0.0f32; mr * nr];
                        let mut dispatch = kernel.dispatcher();
                        for (jc, nc_eff, cols) in group {
                            let (jc, nc_eff) = (*jc, *nc_eff);
                            let cols_raw = RawMat::of_dense(cols, m, nc_eff);
                            let mut pc = 0;
                            while pc < k {
                                let kc_eff = kc.min(k - pc);
                                let b_len = nc_eff.div_ceil(nr) * kc_eff * nr;
                                pack_b_into(&mut b_buf[..b_len], b, pc, jc, kc_eff, nc_eff, nr);
                                for &(ic, mc_eff) in ic_blocks {
                                    // SAFETY: `cols_raw` points into this
                                    // worker's private staging buffer.
                                    unsafe {
                                        run_ic_block(
                                            &mut dispatch,
                                            a,
                                            ic,
                                            pc,
                                            mc_eff,
                                            kc_eff,
                                            &b_buf[..b_len],
                                            nc_eff,
                                            0,
                                            cols_raw,
                                            alpha,
                                            beta,
                                            pc == 0,
                                            a_buf,
                                            &mut c_tile,
                                        )?;
                                    }
                                }
                                pc += kc_eff;
                            }
                        }
                        Ok(())
                    })();
                }) as PoolJob<'_>
            })
            .collect();
        ThreadPool::global().scope_run(jobs);
        results.into_iter().collect::<Result<(), GemmError>>()?;

        // Scatter the finished column blocks back into C (memcpy per row
        // for unit column stride, scalar walk otherwise).
        for (jc, nc_eff, cols) in &staged {
            for i in 0..m {
                let src = &cols[i * nc_eff..(i + 1) * nc_eff];
                if let Some(dst) = c.contiguous_row_mut(i, *jc, *nc_eff) {
                    dst.copy_from_slice(src);
                } else {
                    for (j, &v) in src.iter().enumerate() {
                        c.set(i, jc + j, v);
                    }
                }
            }
        }
        Ok(workers.max(1))
    }

    /// The legacy path: fresh packing buffers per block and a fresh scratch
    /// tile per micro-tile, exactly as the original driver allocated.
    fn gemm_unbuffered(
        &self,
        kernel: &KernelImpl,
        a: MatRef<'_>,
        b: MatRef<'_>,
        c: &mut MatMut<'_>,
        alpha: f32,
        beta: f32,
    ) -> Result<(), GemmError> {
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        let BlockingParams { mc, kc, nc, .. } = self.blocking;
        let (mr, nr) = (kernel.mr, kernel.nr);

        let mut jc = 0;
        while jc < n {
            let nc_eff = nc.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc_eff = kc.min(k - pc);
                let first_k = pc == 0;
                let packed_b = pack_b(b, pc, jc, kc_eff, nc_eff, nr);
                let mut ic = 0;
                while ic < m {
                    let mc_eff = mc.min(m - ic);
                    let packed_a = pack_a(a, ic, pc, mc_eff, kc_eff, mr, alpha);
                    let n_panels = nc_eff.div_ceil(nr);
                    let m_panels = mc_eff.div_ceil(mr);
                    for jr in 0..n_panels {
                        for ir in 0..m_panels {
                            let ap = a_panel(&packed_a, ir, kc_eff, mr);
                            let bp = b_panel(&packed_b, jr, kc_eff, nr);
                            let mut c_tile = vec![0.0f32; mr * nr];
                            let rows = mr.min(mc_eff - ir * mr);
                            let cols = nr.min(nc_eff - jr * nr);
                            for j in 0..cols {
                                for i in 0..rows {
                                    let gi = ic + ir * mr + i;
                                    let gj = jc + jr * nr + j;
                                    c_tile[j * mr + i] = staged_c_value(c.get(gi, gj), beta, first_k);
                                }
                            }
                            kernel.run(kc_eff, ap, bp, &mut c_tile)?;
                            for j in 0..cols {
                                for i in 0..rows {
                                    let gi = ic + ir * mr + i;
                                    let gj = jc + jr * nr + j;
                                    c.set(gi, gj, c_tile[j * mr + i]);
                                }
                            }
                        }
                    }
                    ic += mc_eff;
                }
                pc += kc_eff;
            }
            jc += nc_eff;
        }
        Ok(())
    }
}

impl GemmExecutor for BlisGemm {
    fn gemm(&self, problem: GemmProblem<'_>) -> Result<GemmStats, GemmError> {
        self.gemm_with(&self.kernel, problem)
    }
}

/// An amortised sequential GEMM runner: one packing arena (sized at the
/// driver's blocking maxima, so any problem fits), one staged `C` tile, and
/// one prove-once [`KernelDispatch`] handle, reused across every problem
/// passed to [`GemmRunner::gemm`].
///
/// This is the per-shard engine of the `exo-serve` batch executor: where
/// [`BlisGemm::gemm`] pays arena allocation and dispatch proof per call, a
/// runner pays them once per batch. Results are bit-identical to
/// [`BlisGemm::gemm`] with `threads = 1` — same packing, same op order.
/// Built with [`BlisGemm::runner`].
pub struct GemmRunner<'d> {
    driver: &'d BlisGemm,
    dispatch: KernelDispatch,
    arena: PackArena,
    c_tile: Vec<f32>,
}

/// The owned state of a [`GemmRunner`] — packing arena, staged `C` tile,
/// and prove-once dispatch handle — detached from the driver borrow.
///
/// A runner borrows its [`BlisGemm`] for its whole life, which stops a
/// caller from keeping it warm across scopes that rebuild the driver (the
/// `exo-serve` batch executor builds one driver borrow per batch). The
/// scratch is the movable part: [`GemmRunner::into_scratch`] detaches it,
/// [`BlisGemm::runner_with`] re-attaches it, and the arena capacity plus
/// the memoised dispatch proofs survive the round trip.
pub struct RunnerScratch {
    dispatch: KernelDispatch,
    arena: PackArena,
    c_tile: Vec<f32>,
}

impl GemmRunner<'_> {
    /// Detaches the runner's owned scratch from the driver borrow, for
    /// re-attachment (to the same or an equivalent driver) with
    /// [`BlisGemm::runner_with`].
    pub fn into_scratch(self) -> RunnerScratch {
        RunnerScratch { dispatch: self.dispatch, arena: self.arena, c_tile: self.c_tile }
    }

    /// Solves one problem on the calling thread with the reused scratch.
    ///
    /// # Errors
    ///
    /// Same contract as [`BlisGemm::gemm`]: [`GemmError::ShapeMismatch`]
    /// for inconsistent dimensions, micro-kernel failures propagated.
    pub fn gemm(&mut self, problem: GemmProblem<'_>) -> Result<GemmStats, GemmError> {
        let (m, n, k) = problem.dims()?;
        let a = problem.op_a.apply(problem.a);
        let b = problem.op_b.apply(problem.b);
        let (alpha, beta) = (problem.alpha, problem.beta);
        let mut c = problem.c;
        let stats = GemmStats {
            m,
            n,
            k,
            flop_count: GemmStats::flops_for(m, n, k, alpha),
            kernel: self.driver.kernel.name.clone(),
            threads: 1,
            pool_workers: 0,
            batched: false,
            degraded: false,
        };
        if m == 0 || n == 0 {
            return Ok(stats);
        }
        if k == 0 || alpha == 0.0 {
            scale_c(&mut c, beta);
            return Ok(stats);
        }
        let c_raw = RawMat::of(&mut c);
        let tile_blocking =
            BlockingParams { mr: self.driver.kernel.mr, nr: self.driver.kernel.nr, ..self.driver.blocking };
        self.arena.ensure_for_problem(&tile_blocking, m, n, k);
        let (a_buf, b_buf) = self.arena.buffers();
        // SAFETY: `c_raw` wraps the problem's exclusively borrowed C view;
        // this sequential call is its only user.
        unsafe {
            gemm_arena_sequential(
                &self.driver.blocking,
                &mut self.dispatch,
                a_buf,
                b_buf,
                &mut self.c_tile,
                a,
                b,
                c_raw,
                alpha,
                beta,
            )?;
        }
        Ok(stats)
    }
}

/// The sequential five-loop body over pre-allocated scratch: loops L1/L2
/// packing `Bc` blocks, then every ic block through [`run_ic_block`].
/// Shared by the single-thread arena path and [`GemmRunner`], so both
/// produce identical bits by construction.
///
/// # Safety
///
/// `c_raw` must point to live storage covering its declared extent, with no
/// other thread accessing any of its elements during the call, and the
/// scratch buffers must be sized for the blocking/kernel pair (see
/// [`PackArena::for_problem`]).
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_arena_sequential(
    blocking: &BlockingParams,
    dispatch: &mut KernelDispatch,
    a_buf: &mut [f32],
    b_buf: &mut [f32],
    c_tile: &mut [f32],
    a: MatRef<'_>,
    b: MatRef<'_>,
    c_raw: RawMat,
    alpha: f32,
    beta: f32,
) -> Result<(), GemmError> {
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let BlockingParams { mc, kc, nc, .. } = *blocking;
    let nr = dispatch.kernel().nr;
    let mut jc = 0;
    while jc < n {
        let nc_eff = nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc_eff = kc.min(k - pc);
            let first_k = pc == 0;
            let b_len = nc_eff.div_ceil(nr) * kc_eff * nr;
            pack_b_into(&mut b_buf[..b_len], b, pc, jc, kc_eff, nc_eff, nr);
            let mut ic = 0;
            while ic < m {
                let mc_eff = mc.min(m - ic);
                // SAFETY: forwarded from the caller — exclusive C access.
                unsafe {
                    run_ic_block(
                        dispatch,
                        a,
                        ic,
                        pc,
                        mc_eff,
                        kc_eff,
                        &b_buf[..b_len],
                        nc_eff,
                        jc,
                        c_raw,
                        alpha,
                        beta,
                        first_k,
                        a_buf,
                        c_tile,
                    )?;
                }
                ic += mc_eff;
            }
            pc += kc_eff;
        }
        jc += nc_eff;
    }
    Ok(())
}

/// `C = beta * C` in place, honoring `beta == 0` as "never read".
fn scale_c(c: &mut MatMut<'_>, beta: f32) {
    if beta == 1.0 {
        return;
    }
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            let v = if beta == 0.0 { 0.0 } else { beta * c.get(i, j) };
            c.set(i, j, v);
        }
    }
}

/// The staged value of one `C` element: `beta` belongs to the first k-block
/// only, and `beta == 0` means the stored value is never trusted (it may be
/// NaN garbage) — the tile starts from zero instead.
#[inline]
fn staged_c_value(stored: f32, beta: f32, first_k_block: bool) -> f32 {
    if !first_k_block || beta == 1.0 {
        stored
    } else if beta == 0.0 {
        0.0
    } else {
        beta * stored
    }
}

/// Splits an extent into step-sized `(start, len)` blocks, the last one
/// possibly short — the block structure of both parallel loops.
fn blocks_of(extent: usize, step: usize) -> Vec<(usize, usize)> {
    let mut blocks = Vec::with_capacity(extent.div_ceil(step.max(1)));
    let mut start = 0;
    while start < extent {
        let len = step.min(extent - start);
        blocks.push((start, len));
        start += len;
    }
    blocks
}

/// The `ic` block starts of the L3 loop. Each block owns a disjoint row
/// range of `C`, so any partition of the blocks over workers computes
/// bit-identical results.
fn ic_blocks(m: usize, mc: usize) -> Vec<(usize, usize)> {
    blocks_of(m, mc)
}

/// The `jc` block starts of the L1 loop: disjoint nc-wide column ranges of
/// `C`, the unit of work of the jc-parallel path.
fn jc_blocks(n: usize, nc: usize) -> Vec<(usize, usize)> {
    blocks_of(n, nc)
}

/// Loops L4/L5 for one `ic` block: pack the `op(A)` block (scaled by
/// `alpha`) into `a_buf`, then run the micro-kernel over every `(jr, ir)`
/// tile, staging each (possibly fringe) `C` tile through `c_tile` and
/// applying `beta` on the first k-block's staging load.
///
/// # Safety
///
/// `c` must point to live storage covering its declared `rows x cols`
/// extent, and no other thread may concurrently access any `C` element with
/// row in `[ic, ic + mc_eff)` — the driver guarantees this by partitioning
/// ic blocks over workers (or by handing each worker a private staging
/// buffer).
#[allow(clippy::too_many_arguments)]
unsafe fn run_ic_block(
    dispatch: &mut KernelDispatch,
    a: MatRef<'_>,
    ic: usize,
    pc: usize,
    mc_eff: usize,
    kc_eff: usize,
    packed_b: &[f32],
    nc_eff: usize,
    jc: usize,
    c: RawMat,
    alpha: f32,
    beta: f32,
    first_k_block: bool,
    a_buf: &mut [f32],
    c_tile: &mut [f32],
) -> Result<(), GemmError> {
    let (mr, nr) = (dispatch.kernel().mr, dispatch.kernel().nr);
    let a_len = mc_eff.div_ceil(mr) * kc_eff * mr;
    pack_a_into(&mut a_buf[..a_len], a, ic, pc, mc_eff, kc_eff, mr, alpha);
    let packed_a = &a_buf[..a_len];

    let n_panels = nc_eff.div_ceil(nr);
    let m_panels = mc_eff.div_ceil(mr);
    for jr in 0..n_panels {
        for ir in 0..m_panels {
            let ap = a_panel(packed_a, ir, kc_eff, mr);
            let bp = b_panel(packed_b, jr, kc_eff, nr);
            let rows = mr.min(mc_eff - ir * mr);
            let cols = nr.min(nc_eff - jr * nr);
            // Stage the C tile. Fringe padding positions receive only
            // zero-padded products from the kernel and are never copied
            // back, so the reused scratch needs no re-zeroing. On the first
            // k-block the staged values carry beta (and beta == 0 loads
            // nothing at all — C may hold NaN garbage).
            if first_k_block && beta == 0.0 {
                for j in 0..cols {
                    c_tile[j * mr..j * mr + rows].fill(0.0);
                }
            } else {
                for j in 0..cols {
                    let col0 = jc + jr * nr + j;
                    let tile_col = &mut c_tile[j * mr..j * mr + rows];
                    for (i, t) in tile_col.iter_mut().enumerate() {
                        *t = staged_c_value(c.load(ic + ir * mr + i, col0), beta, first_k_block);
                    }
                }
            }
            dispatch.run(kc_eff, ap, bp, c_tile)?;
            for j in 0..cols {
                let col0 = jc + jr * nr + j;
                let tile_col = &c_tile[j * mr..j * mr + rows];
                for (i, t) in tile_col.iter().enumerate() {
                    c.store(ic + ir * mr + i, col0, *t);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{blis_assembly_kernel, exo_kernel, neon_intrinsics_kernel, reference_kernel};
    use crate::problem::NaiveGemm;
    use exo_isa::neon_f32;
    use std::sync::Arc;
    use ukernel_gen::MicroKernelGenerator;

    fn check_gemm(kernel: &KernelImpl, m: usize, n: usize, k: usize) {
        let a = Matrix::from_fn(m, k, |i, j| ((i * 7 + j * 3 + 1) % 13) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 11 + 2) % 17) as f32 * 0.125 - 1.0);
        let mut c = Matrix::from_fn(m, n, |i, j| ((i + j) % 3) as f32);
        let mut c_ref = c.clone();
        let c_start = c.clone();
        // Use small blocking values so every loop level is exercised even on
        // small problems.
        let blocking = BlockingParams { mc: 24, kc: 16, nc: 36, mr: kernel.mr, nr: kernel.nr };
        let stats = BlisGemm::new(blocking)
            .gemm_with(kernel, GemmProblem::new(a.view(), b.view(), c.view_mut()))
            .unwrap();
        assert_eq!((stats.m, stats.n, stats.k), (m, n, k));
        naive_gemm(&a, &b, &mut c_ref);
        for idx in 0..c.data.len() {
            assert!(
                (c.data[idx] - c_ref.data[idx]).abs() < 1e-3,
                "{} mismatch at {idx}: {} vs {}",
                kernel.name,
                c.data[idx],
                c_ref.data[idx]
            );
        }
        // The legacy unbuffered path and a threaded run must agree with the
        // arena path bit-for-bit: same packing, same op order, disjoint
        // per-thread row blocks.
        let mut c_legacy = c_start.clone();
        BlisGemm::new(blocking)
            .without_arena()
            .gemm_with(kernel, GemmProblem::new(a.view(), b.view(), c_legacy.view_mut()))
            .unwrap();
        assert_eq!(c.data, c_legacy.data, "{}: arena vs legacy", kernel.name);
        let mut c_threaded = c_start;
        BlisGemm::new(blocking)
            .with_threads(4)
            .gemm_with(kernel, GemmProblem::new(a.view(), b.view(), c_threaded.view_mut()))
            .unwrap();
        assert_eq!(c.data, c_threaded.data, "{}: threads=4 vs threads=1", kernel.name);
    }

    #[test]
    fn blis_algorithm_matches_naive_for_exact_tiles() {
        check_gemm(&neon_intrinsics_kernel(), 48, 48, 32);
    }

    #[test]
    fn blis_algorithm_handles_fringe_tiles() {
        check_gemm(&blis_assembly_kernel(true), 50, 45, 23);
        check_gemm(&reference_kernel(3, 5), 17, 11, 9);
    }

    #[test]
    fn generated_exo_kernels_drop_into_the_algorithm() {
        let generator = MicroKernelGenerator::new(neon_f32());
        let k8x8 = exo_kernel(Arc::new(generator.generate(8, 8).unwrap()));
        check_gemm(&k8x8, 40, 40, 24);
        let k1x12 = exo_kernel(Arc::new(generator.generate(1, 12).unwrap()));
        check_gemm(&k1x12, 13, 36, 20);
    }

    #[test]
    fn executor_entry_point_uses_the_stored_kernel() {
        let generator = MicroKernelGenerator::new(neon_f32());
        let kernel = exo_kernel(Arc::new(generator.generate(8, 8).unwrap()));
        let driver = BlisGemm::for_kernel(&kernel, &carmel_sim::CacheHierarchy::carmel());
        let a = Matrix::from_fn(20, 12, |i, j| (i * 3 + j) as f32 * 0.125 - 1.0);
        let b = Matrix::from_fn(12, 9, |i, j| (i + j * 2) as f32 * 0.25 - 0.5);
        let mut c = Matrix::zeros(20, 9);
        let mut c_ref = Matrix::zeros(20, 9);
        let stats = driver.gemm(GemmProblem::new(a.view(), b.view(), c.view_mut())).unwrap();
        assert_eq!(stats.kernel, "EXO 8x8");
        naive_gemm(&a, &b, &mut c_ref);
        for idx in 0..c.data.len() {
            assert!((c.data[idx] - c_ref.data[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn transposes_alpha_and_beta_match_the_strided_reference() {
        // C = alpha * A^T * B^T + beta * C, through the blocked driver vs
        // the naive strided reference.
        let (m, n, k) = (23usize, 17usize, 11usize);
        let at = Matrix::from_fn(k, m, |i, j| ((i * 5 + j * 7 + 3) % 11) as f32 * 0.25 - 1.0);
        let bt = Matrix::from_fn(n, k, |i, j| ((i * 3 + j * 13 + 1) % 7) as f32 * 0.5 - 1.5);
        let c0 = Matrix::from_fn(m, n, |i, j| ((i * 2 + j) % 5) as f32 * 0.5 - 1.0);
        let kernel = neon_intrinsics_kernel();
        let blocking = BlockingParams { mc: 8, kc: 4, nc: 12, mr: kernel.mr, nr: kernel.nr };
        fn build<'x>(at: &'x Matrix, bt: &'x Matrix, c: MatMut<'x>) -> GemmProblem<'x> {
            GemmProblem::new(at.view(), bt.view(), c).transpose_a().transpose_b().alpha(-0.5).beta(0.75)
        }
        let mut c_blis = c0.clone();
        BlisGemm::new(blocking).gemm_with(&kernel, build(&at, &bt, c_blis.view_mut())).unwrap();
        let mut c_ref = c0.clone();
        NaiveGemm.gemm(build(&at, &bt, c_ref.view_mut())).unwrap();
        for idx in 0..c_blis.data.len() {
            assert!(
                (c_blis.data[idx] - c_ref.data[idx]).abs() < 1e-3,
                "mismatch at {idx}: {} vs {}",
                c_blis.data[idx],
                c_ref.data[idx]
            );
        }
        // And the unbuffered legacy path agrees bit-for-bit with the arena.
        let mut c_legacy = c0.clone();
        BlisGemm::new(blocking)
            .without_arena()
            .gemm_with(&kernel, build(&at, &bt, c_legacy.view_mut()))
            .unwrap();
        assert_eq!(c_blis.data, c_legacy.data);
    }

    #[test]
    fn beta_zero_overwrites_nan_garbage() {
        let a = Matrix::from_fn(10, 6, |i, j| (i + j) as f32 * 0.25);
        let b = Matrix::from_fn(6, 7, |i, j| (i * 2 + j) as f32 * 0.125);
        let mut c = Matrix::from_fn(10, 7, |_, _| f32::NAN);
        let kernel = neon_intrinsics_kernel();
        let blocking = BlockingParams { mc: 4, kc: 4, nc: 4, mr: kernel.mr, nr: kernel.nr };
        BlisGemm::new(blocking)
            .gemm_with(&kernel, GemmProblem::new(a.view(), b.view(), c.view_mut()).beta(0.0))
            .unwrap();
        assert!(c.data.iter().all(|v| v.is_finite()), "beta = 0 must never read C");
    }

    #[test]
    fn degenerate_k_and_alpha_zero_scale_c_only() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32);
        let gemm = BlisGemm::new(BlockingParams::carmel_defaults(8, 12));
        gemm.gemm(GemmProblem::new(a.view(), b.view(), c.view_mut()).beta(2.0)).unwrap();
        assert_eq!(c.get(2, 3), 22.0, "k = 0 still applies beta");
        let a = Matrix::from_fn(3, 5, |_, _| f32::NAN);
        let b = Matrix::from_fn(5, 4, |_, _| f32::NAN);
        gemm.gemm(GemmProblem::new(a.view(), b.view(), c.view_mut()).alpha(0.0).beta(0.5)).unwrap();
        assert_eq!(c.get(2, 3), 11.0, "alpha = 0 must not read A or B");
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(5, 4);
        let mut c = Matrix::zeros(4, 4);
        let gemm = BlisGemm::new(BlockingParams::carmel_defaults(8, 12));
        assert!(matches!(
            gemm.gemm(GemmProblem::new(a.view(), b.view(), c.view_mut())),
            Err(GemmError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_problems_are_a_no_op() {
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let mut c = Matrix::zeros(0, 0);
        let gemm = BlisGemm::new(BlockingParams::carmel_defaults(8, 12));
        gemm.gemm(GemmProblem::new(a.view(), b.view(), c.view_mut())).unwrap();
    }

    #[test]
    fn blocking_tile_need_not_match_the_kernel_tile() {
        // The public API lets a generic blocking drive any kernel; the
        // arena must size its panels from the kernel's tile, not the
        // blocking's, or packing overruns the buffer.
        let kernel = reference_kernel(16, 32);
        let blocking = BlockingParams { mc: 24, kc: 16, nc: 36, mr: 8, nr: 12 };
        let a = Matrix::from_fn(13, 9, |i, j| (i * 2 + j) as f32 * 0.25);
        let b = Matrix::from_fn(9, 13, |i, j| (i + j * 3) as f32 * 0.125);
        let mut c = Matrix::zeros(13, 13);
        let mut c_ref = Matrix::zeros(13, 13);
        BlisGemm::new(blocking)
            .with_threads(3)
            .gemm_with(&kernel, GemmProblem::new(a.view(), b.view(), c.view_mut()))
            .unwrap();
        naive_gemm(&a, &b, &mut c_ref);
        for idx in 0..c.data.len() {
            assert!((c.data[idx] - c_ref.data[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn wide_short_problems_split_the_jc_loop_bit_identically() {
        // m fits a single ic block while n spans many jc blocks, so the
        // driver takes the jc-parallel path; it must agree bit-for-bit with
        // the sequential run for any thread count.
        let kernel = neon_intrinsics_kernel();
        let blocking = BlockingParams { mc: 32, kc: 16, nc: 24, mr: kernel.mr, nr: kernel.nr };
        let a = Matrix::from_fn(8, 33, |i, j| ((i * 5 + j * 7 + 1) % 11) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(33, 200, |i, j| ((i * 3 + j * 13 + 2) % 17) as f32 * 0.125 - 1.0);
        let c0 = Matrix::from_fn(8, 200, |i, j| ((i + j) % 5) as f32 * 0.5);
        let mut c_seq = c0.clone();
        BlisGemm::new(blocking)
            .gemm_with(&kernel, GemmProblem::new(a.view(), b.view(), c_seq.view_mut()))
            .unwrap();
        for threads in [2usize, 3, 8] {
            let mut c_par = c0.clone();
            BlisGemm::new(blocking)
                .with_threads(threads)
                .gemm_with(&kernel, GemmProblem::new(a.view(), b.view(), c_par.view_mut()))
                .unwrap();
            assert_eq!(c_seq.data, c_par.data, "jc split with {threads} threads");
        }
        // And it is actually correct, not just self-consistent.
        let mut c_ref = c0.clone();
        naive_gemm(&a, &b, &mut c_ref);
        for idx in 0..c_seq.data.len() {
            assert!((c_seq.data[idx] - c_ref.data[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let kernel = neon_intrinsics_kernel();
        let a = Matrix::from_fn(40, 16, |i, j| (i + j) as f32 * 0.25);
        let b = Matrix::from_fn(16, 24, |i, j| (i * 2 + j) as f32 * 0.125);
        let mut c = Matrix::zeros(40, 24);
        let mut c_ref = Matrix::zeros(40, 24);
        let blocking = BlockingParams { mc: 8, kc: 8, nc: 24, mr: kernel.mr, nr: kernel.nr };
        BlisGemm::new(blocking)
            .with_threads(0)
            .gemm_with(&kernel, GemmProblem::new(a.view(), b.view(), c.view_mut()))
            .unwrap();
        naive_gemm(&a, &b, &mut c_ref);
        for idx in 0..c.data.len() {
            assert!((c.data[idx] - c_ref.data[idx]).abs() < 1e-3);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "column index")]
    fn matrix_accessors_check_both_axes_in_debug_builds() {
        // 3 x 4: (0, 5) used to alias silently into row 1 (index 5 of the
        // flat storage); the per-axis assert must catch it.
        let m = Matrix::zeros(3, 4);
        let _ = m.get(0, 5);
    }
}
