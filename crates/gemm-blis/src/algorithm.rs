//! The functional BLIS-like GEMM algorithm: the five loops of Fig. 1 around
//! the packing routines and a micro-kernel, computing `C += A * B` on real
//! `f32` data.
//!
//! The driver has two modes:
//!
//! * the default **arena** hot path — a [`crate::packing::PackArena`] and
//!   the staged `C` tile are allocated once per GEMM and reused across
//!   every `(jc, pc, ic)` iteration, and one of the block loops can
//!   optionally be spread over a scoped thread pool
//!   ([`BlisGemm::with_threads`]): the `ic` loop by default (disjoint row
//!   blocks of `C`, one private `A`-pack/`C`-tile scratch pair per worker),
//!   or the `jc` loop when the problem is wide and short (large `n`, small
//!   `m` — disjoint nc-wide column blocks, each staged through a private
//!   dense copy). Either way every `C` element is computed by exactly one
//!   worker in the sequential op order, so the result is bit-for-bit
//!   identical for any thread count;
//! * the legacy **unbuffered** path ([`BlisGemm::without_arena`]) that
//!   allocates fresh buffers per block, kept as a baseline for the
//!   `gemm_throughput` bench and for differential tests.
//!
//! Correctness for arbitrary (including fringe) problem sizes is the point;
//! with tape-compiled kernels the same entry point is also the fast path.
//! Modelled performance questions go through [`crate::model`] instead.

use crate::baselines::KernelImpl;
use crate::blocking::BlockingParams;
use crate::packing::{a_panel, b_panel, pack_a, pack_a_into, pack_b, pack_b_into, PackArena};
use crate::GemmError;

/// A dense row-major matrix view used by the driver.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major element storage.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix with `f(row, col)` values.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice — hoists the row offset out of hot loops.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let w = self.cols;
        &mut self.data[i * w..(i + 1) * w]
    }
}

/// Reference triple-loop GEMM, the ground truth for every test in the
/// workspace: `c += a * b`.
///
/// Row slices are hoisted out of the inner loop so the baseline pays no
/// per-element index arithmetic — it is run by every differential test, and
/// its wall-time bounds the whole suite's.
pub fn naive_gemm(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols, b.rows);
    assert_eq!(a.rows, c.rows);
    assert_eq!(b.cols, c.cols);
    for i in 0..a.rows {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (p, &aip) in a_row.iter().enumerate() {
            let b_row = b.row(p);
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aip * bv;
            }
        }
    }
}

/// The BLIS-like GEMM driver of Fig. 1, parameterised by blocking values and
/// a micro-kernel.
#[derive(Debug, Clone)]
pub struct BlisGemm {
    /// Cache blocking parameters.
    pub blocking: BlockingParams,
    /// Worker threads for the arena path's parallel block loop (`ic` rows
    /// by default, `jc` columns for wide-and-short problems). `1` is fully
    /// sequential; `0` means "ask the OS" (`available_parallelism`).
    pub threads: usize,
    /// Whether to use the zero-allocation arena hot path (default) or the
    /// legacy allocate-per-block path.
    pub use_arena: bool,
}

impl BlisGemm {
    /// Creates a driver with the given blocking (arena path, single thread).
    pub fn new(blocking: BlockingParams) -> Self {
        BlisGemm { blocking, threads: 1, use_arena: true }
    }

    /// Creates a driver whose blocking is derived analytically from the
    /// cache hierarchy for the given micro-kernel's register tile — the
    /// constructor used when a registry (rather than a hard-coded shape)
    /// chooses the kernel.
    pub fn for_kernel(kernel: &KernelImpl, mem: &carmel_sim::CacheHierarchy) -> Self {
        BlisGemm::new(BlockingParams::analytical(mem, kernel.mr, kernel.nr, 4))
    }

    /// Sets the worker-thread count for the parallel block loop (`0` = all
    /// cores). Wide-and-short problems split the `jc` column loop, all
    /// others the `ic` row loop; the result is identical either way.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Switches to the legacy allocate-per-block path (no arena, no
    /// threading) — the baseline the perf benches compare against.
    pub fn without_arena(mut self) -> Self {
        self.use_arena = false;
        self
    }

    /// Computes `c += a * b` using the five-loop algorithm with the given
    /// micro-kernel. Fringe tiles are zero-padded by the packing routines and
    /// the `C` tile is staged through a padded scratch tile, exactly as the
    /// monolithic library kernels do.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::ShapeMismatch`] if the matrix dimensions are
    /// inconsistent, and propagates micro-kernel failures.
    pub fn gemm(&self, kernel: &KernelImpl, a: &Matrix, b: &Matrix, c: &mut Matrix) -> Result<(), GemmError> {
        if a.cols != b.rows || a.rows != c.rows || b.cols != c.cols {
            return Err(GemmError::ShapeMismatch {
                what: format!(
                    "A is {}x{}, B is {}x{}, C is {}x{}",
                    a.rows, a.cols, b.rows, b.cols, c.rows, c.cols
                ),
            });
        }
        if a.rows == 0 || b.cols == 0 || a.cols == 0 {
            return Ok(());
        }
        if self.use_arena {
            self.gemm_arena(kernel, a, b, c)
        } else {
            self.gemm_unbuffered(kernel, a, b, c)
        }
    }

    /// The zero-allocation hot path: packing buffers and the `C` scratch
    /// tile are allocated once up front, and the `ic` loop optionally fans
    /// out over scoped threads.
    fn gemm_arena(
        &self,
        kernel: &KernelImpl,
        a: &Matrix,
        b: &Matrix,
        c: &mut Matrix,
    ) -> Result<(), GemmError> {
        let (m, n, k) = (a.rows, b.cols, a.cols);
        let BlockingParams { mc, kc, nc, .. } = self.blocking;
        let (mr, nr) = (kernel.mr, kernel.nr);
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        };

        // Pick the parallel loop. The ic loop is the default (disjoint row
        // ranges of C split with safe borrows), but a wide-and-short problem
        // (large n, small m) has too few ic blocks to occupy the pool — there
        // the jc loop over nc column blocks offers more parallelism.
        let blocks = ic_blocks(m, mc);
        let col_blocks = jc_blocks(n, nc);
        if threads > 1 && col_blocks.len() > blocks.len() && blocks.len() < threads {
            return self.gemm_arena_jc(kernel, a, b, c, &blocks, &col_blocks, threads);
        }

        // Packing arena sized once at the blocking-derived maxima, clamped
        // to the problem; split-borrowed so the packed Bc prefix can stay
        // live while Ac blocks are repacked. Panels are shaped by the
        // *kernel's* register tile, which the blocking's mr/nr need not
        // match (callers may pair a generic blocking with any kernel), so
        // the arena is sized for the tile that will actually be packed.
        let tile_blocking = BlockingParams { mr, nr, ..self.blocking };
        let mut arena = PackArena::for_problem(&tile_blocking, m, n, k);
        let a_cap = arena.a_capacity();
        let (a_buf, b_buf) = arena.buffers();
        // Sequential-mode C scratch tile, plus one private A-pack/C-tile
        // scratch pair per worker, all allocated once per GEMM.
        let mut c_tile = vec![0.0f32; mr * nr];
        let mut worker_scratch: Vec<(Vec<f32>, Vec<f32>)> = if threads > 1 {
            (0..threads).map(|_| (vec![0.0f32; a_cap], vec![0.0f32; mr * nr])).collect()
        } else {
            Vec::new()
        };
        // Loop L1: columns of C / B.
        let mut jc = 0;
        while jc < n {
            let nc_eff = nc.min(n - jc);
            // Loop L2: the k dimension.
            let mut pc = 0;
            while pc < k {
                let kc_eff = kc.min(k - pc);
                let b_len = nc_eff.div_ceil(nr) * kc_eff * nr;
                pack_b_into(&mut b_buf[..b_len], &b.data, n, pc, jc, kc_eff, nc_eff, nr);
                let packed_b = &b_buf[..b_len];

                // Loop L3: rows of C / A — the threaded loop.
                if threads <= 1 || blocks.len() <= 1 {
                    for &(ic, mc_eff) in &blocks {
                        let c_rows = &mut c.data[ic * n..(ic + mc_eff) * n];
                        run_ic_block(
                            kernel,
                            &a.data,
                            k,
                            ic,
                            pc,
                            mc_eff,
                            kc_eff,
                            packed_b,
                            nc_eff,
                            jc,
                            n,
                            a_buf,
                            &mut c_tile,
                            c_rows,
                        )?;
                    }
                } else {
                    // Split C into per-block row chunks (the blocks tile
                    // the rows contiguously), deal them out to up to
                    // `threads` workers.
                    let mut chunks: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(blocks.len());
                    let mut rest: &mut [f32] = &mut c.data;
                    for &(ic, mc_eff) in &blocks {
                        let (rows, tail) = rest.split_at_mut(mc_eff * n);
                        chunks.push((ic, mc_eff, rows));
                        rest = tail;
                    }
                    let workers = threads.min(chunks.len());
                    let mut groups: Vec<Vec<(usize, usize, &mut [f32])>> =
                        (0..workers).map(|_| Vec::new()).collect();
                    for (idx, chunk) in chunks.into_iter().enumerate() {
                        groups[idx % workers].push(chunk);
                    }
                    let a_data = &a.data;
                    std::thread::scope(|scope| -> Result<(), GemmError> {
                        let handles: Vec<_> = groups
                            .into_iter()
                            .zip(worker_scratch.iter_mut())
                            .map(|(group, (a_buf, c_tile))| {
                                scope.spawn(move || -> Result<(), GemmError> {
                                    for (ic, mc_eff, c_rows) in group {
                                        run_ic_block(
                                            kernel, a_data, k, ic, pc, mc_eff, kc_eff, packed_b, nc_eff, jc,
                                            n, a_buf, c_tile, c_rows,
                                        )?;
                                    }
                                    Ok(())
                                })
                            })
                            .collect();
                        for handle in handles {
                            handle.join().expect("gemm worker panicked")?;
                        }
                        Ok(())
                    })?;
                }
                pc += kc_eff;
            }
            jc += nc_eff;
        }
        Ok(())
    }

    /// The jc-parallel arena path: nc-wide column blocks of `C` are dealt
    /// out to scoped workers, each with a private packing arena and a
    /// private dense copy of its column block.
    ///
    /// `C` is row-major, so a column block is not a contiguous slice; each
    /// worker therefore stages its block through a dense `m x nc_eff` copy
    /// (copied in before the block's loops, copied back after the join —
    /// O(m·n) traffic total, negligible against the O(m·n·k) compute).
    /// Within a block the pc/ic/jr/ir loops run in exactly the sequential
    /// order, and every `C` element belongs to exactly one block, so the
    /// result is bit-for-bit identical for any thread count.
    #[allow(clippy::too_many_arguments)]
    fn gemm_arena_jc(
        &self,
        kernel: &KernelImpl,
        a: &Matrix,
        b: &Matrix,
        c: &mut Matrix,
        ic_blocks: &[(usize, usize)],
        col_blocks: &[(usize, usize)],
        threads: usize,
    ) -> Result<(), GemmError> {
        let (m, n, k) = (a.rows, b.cols, a.cols);
        let BlockingParams { kc, nc, .. } = self.blocking;
        let (mr, nr) = (kernel.mr, kernel.nr);
        let tile_blocking = BlockingParams { mr, nr, ..self.blocking };

        // Stage every column block into a dense private copy up front.
        let mut staged: Vec<(usize, usize, Vec<f32>)> = col_blocks
            .iter()
            .map(|&(jc, nc_eff)| {
                let mut cols = vec![0.0f32; m * nc_eff];
                for i in 0..m {
                    cols[i * nc_eff..(i + 1) * nc_eff]
                        .copy_from_slice(&c.data[i * n + jc..i * n + jc + nc_eff]);
                }
                (jc, nc_eff, cols)
            })
            .collect();

        // Deal blocks round-robin to up to `threads` workers; each worker
        // owns disjoint `&mut` block entries, so the scope needs no unsafe.
        let workers = threads.min(staged.len());
        let mut groups: Vec<Vec<&mut (usize, usize, Vec<f32>)>> = (0..workers).map(|_| Vec::new()).collect();
        for (idx, blk) in staged.iter_mut().enumerate() {
            groups[idx % workers].push(blk);
        }
        let (a_data, b_data) = (&a.data, &b.data);
        std::thread::scope(|scope| -> Result<(), GemmError> {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|group| {
                    scope.spawn(move || -> Result<(), GemmError> {
                        // Private per-worker arena, sized for one column
                        // block, allocated once per GEMM.
                        let mut arena = PackArena::for_problem(&tile_blocking, m, nc.min(n), k);
                        let (a_buf, b_buf) = arena.buffers();
                        let mut c_tile = vec![0.0f32; mr * nr];
                        for (jc, nc_eff, cols) in group {
                            let (jc, nc_eff) = (*jc, *nc_eff);
                            let mut pc = 0;
                            while pc < k {
                                let kc_eff = kc.min(k - pc);
                                let b_len = nc_eff.div_ceil(nr) * kc_eff * nr;
                                pack_b_into(&mut b_buf[..b_len], b_data, n, pc, jc, kc_eff, nc_eff, nr);
                                for &(ic, mc_eff) in ic_blocks {
                                    run_ic_block(
                                        kernel,
                                        a_data,
                                        k,
                                        ic,
                                        pc,
                                        mc_eff,
                                        kc_eff,
                                        &b_buf[..b_len],
                                        nc_eff,
                                        0,
                                        nc_eff,
                                        a_buf,
                                        &mut c_tile,
                                        &mut cols[ic * nc_eff..(ic + mc_eff) * nc_eff],
                                    )?;
                                }
                                pc += kc_eff;
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("gemm worker panicked")?;
            }
            Ok(())
        })?;

        // Scatter the finished column blocks back into C.
        for (jc, nc_eff, cols) in &staged {
            for i in 0..m {
                c.data[i * n + jc..i * n + jc + nc_eff].copy_from_slice(&cols[i * nc_eff..(i + 1) * nc_eff]);
            }
        }
        Ok(())
    }

    /// The legacy path: fresh packing buffers per block and a fresh scratch
    /// tile per micro-tile, exactly as the original driver allocated.
    fn gemm_unbuffered(
        &self,
        kernel: &KernelImpl,
        a: &Matrix,
        b: &Matrix,
        c: &mut Matrix,
    ) -> Result<(), GemmError> {
        let (m, n, k) = (a.rows, b.cols, a.cols);
        let BlockingParams { mc, kc, nc, .. } = self.blocking;
        let (mr, nr) = (kernel.mr, kernel.nr);

        let mut jc = 0;
        while jc < n {
            let nc_eff = nc.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc_eff = kc.min(k - pc);
                let packed_b = pack_b(&b.data, n, pc, jc, kc_eff, nc_eff, nr);
                let mut ic = 0;
                while ic < m {
                    let mc_eff = mc.min(m - ic);
                    let packed_a = pack_a(&a.data, k, ic, pc, mc_eff, kc_eff, mr);
                    let n_panels = nc_eff.div_ceil(nr);
                    let m_panels = mc_eff.div_ceil(mr);
                    for jr in 0..n_panels {
                        for ir in 0..m_panels {
                            let ap = a_panel(&packed_a, ir, kc_eff, mr);
                            let bp = b_panel(&packed_b, jr, kc_eff, nr);
                            let mut c_tile = vec![0.0f32; mr * nr];
                            let rows = mr.min(mc_eff - ir * mr);
                            let cols = nr.min(nc_eff - jr * nr);
                            for j in 0..cols {
                                for i in 0..rows {
                                    let gi = ic + ir * mr + i;
                                    let gj = jc + jr * nr + j;
                                    c_tile[j * mr + i] = c.get(gi, gj);
                                }
                            }
                            kernel.run(kc_eff, ap, bp, &mut c_tile)?;
                            for j in 0..cols {
                                for i in 0..rows {
                                    let gi = ic + ir * mr + i;
                                    let gj = jc + jr * nr + j;
                                    c.set(gi, gj, c_tile[j * mr + i]);
                                }
                            }
                        }
                    }
                    ic += mc_eff;
                }
                pc += kc_eff;
            }
            jc += nc_eff;
        }
        Ok(())
    }
}

/// Splits an extent into step-sized `(start, len)` blocks, the last one
/// possibly short — the block structure of both parallel loops.
fn blocks_of(extent: usize, step: usize) -> Vec<(usize, usize)> {
    let mut blocks = Vec::with_capacity(extent.div_ceil(step.max(1)));
    let mut start = 0;
    while start < extent {
        let len = step.min(extent - start);
        blocks.push((start, len));
        start += len;
    }
    blocks
}

/// The `ic` block starts of the L3 loop. Each block owns a disjoint row
/// range of `C`, so any partition of the blocks over workers computes
/// bit-identical results.
fn ic_blocks(m: usize, mc: usize) -> Vec<(usize, usize)> {
    blocks_of(m, mc)
}

/// The `jc` block starts of the L1 loop: disjoint nc-wide column ranges of
/// `C`, the unit of work of the jc-parallel path.
fn jc_blocks(n: usize, nc: usize) -> Vec<(usize, usize)> {
    blocks_of(n, nc)
}

/// Loops L4/L5 for one `ic` block: pack the `A` block into `a_buf`, then run
/// the micro-kernel over every `(jr, ir)` tile, staging each (possibly
/// fringe) `C` tile through `c_tile`.
///
/// `c_rows` is the row range `ic..ic+mc_eff` of `C` (width `n_total`).
#[allow(clippy::too_many_arguments)]
fn run_ic_block(
    kernel: &KernelImpl,
    a_data: &[f32],
    k_total: usize,
    ic: usize,
    pc: usize,
    mc_eff: usize,
    kc_eff: usize,
    packed_b: &[f32],
    nc_eff: usize,
    jc: usize,
    n_total: usize,
    a_buf: &mut [f32],
    c_tile: &mut [f32],
    c_rows: &mut [f32],
) -> Result<(), GemmError> {
    let (mr, nr) = (kernel.mr, kernel.nr);
    let a_len = mc_eff.div_ceil(mr) * kc_eff * mr;
    pack_a_into(&mut a_buf[..a_len], a_data, k_total, ic, pc, mc_eff, kc_eff, mr);
    let packed_a = &a_buf[..a_len];

    let n_panels = nc_eff.div_ceil(nr);
    let m_panels = mc_eff.div_ceil(mr);
    for jr in 0..n_panels {
        for ir in 0..m_panels {
            let ap = a_panel(packed_a, ir, kc_eff, mr);
            let bp = b_panel(packed_b, jr, kc_eff, nr);
            let rows = mr.min(mc_eff - ir * mr);
            let cols = nr.min(nc_eff - jr * nr);
            // Stage the C tile. Fringe padding positions receive only
            // zero-padded products from the kernel and are never copied
            // back, so the reused scratch needs no re-zeroing.
            for j in 0..cols {
                let col0 = jc + jr * nr + j;
                let tile_col = &mut c_tile[j * mr..j * mr + rows];
                for (i, t) in tile_col.iter_mut().enumerate() {
                    *t = c_rows[(ir * mr + i) * n_total + col0];
                }
            }
            kernel.run(kc_eff, ap, bp, c_tile)?;
            for j in 0..cols {
                let col0 = jc + jr * nr + j;
                let tile_col = &c_tile[j * mr..j * mr + rows];
                for (i, t) in tile_col.iter().enumerate() {
                    c_rows[(ir * mr + i) * n_total + col0] = *t;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{blis_assembly_kernel, exo_kernel, neon_intrinsics_kernel, reference_kernel};
    use exo_isa::neon_f32;
    use std::sync::Arc;
    use ukernel_gen::MicroKernelGenerator;

    fn check_gemm(kernel: &KernelImpl, m: usize, n: usize, k: usize) {
        let a = Matrix::from_fn(m, k, |i, j| ((i * 7 + j * 3 + 1) % 13) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 11 + 2) % 17) as f32 * 0.125 - 1.0);
        let mut c = Matrix::from_fn(m, n, |i, j| ((i + j) % 3) as f32);
        let mut c_ref = c.clone();
        let c_start = c.clone();
        // Use small blocking values so every loop level is exercised even on
        // small problems.
        let blocking = BlockingParams { mc: 24, kc: 16, nc: 36, mr: kernel.mr, nr: kernel.nr };
        BlisGemm::new(blocking).gemm(kernel, &a, &b, &mut c).unwrap();
        naive_gemm(&a, &b, &mut c_ref);
        for idx in 0..c.data.len() {
            assert!(
                (c.data[idx] - c_ref.data[idx]).abs() < 1e-3,
                "{} mismatch at {idx}: {} vs {}",
                kernel.name,
                c.data[idx],
                c_ref.data[idx]
            );
        }
        // The legacy unbuffered path and a threaded run must agree with the
        // arena path bit-for-bit: same packing, same op order, disjoint
        // per-thread row blocks.
        let mut c_legacy = c_start.clone();
        BlisGemm::new(blocking).without_arena().gemm(kernel, &a, &b, &mut c_legacy).unwrap();
        assert_eq!(c.data, c_legacy.data, "{}: arena vs legacy", kernel.name);
        let mut c_threaded = c_start;
        BlisGemm::new(blocking).with_threads(4).gemm(kernel, &a, &b, &mut c_threaded).unwrap();
        assert_eq!(c.data, c_threaded.data, "{}: threads=4 vs threads=1", kernel.name);
    }

    #[test]
    fn blis_algorithm_matches_naive_for_exact_tiles() {
        check_gemm(&neon_intrinsics_kernel(), 48, 48, 32);
    }

    #[test]
    fn blis_algorithm_handles_fringe_tiles() {
        check_gemm(&blis_assembly_kernel(true), 50, 45, 23);
        check_gemm(&reference_kernel(3, 5), 17, 11, 9);
    }

    #[test]
    fn generated_exo_kernels_drop_into_the_algorithm() {
        let generator = MicroKernelGenerator::new(neon_f32());
        let k8x8 = exo_kernel(Arc::new(generator.generate(8, 8).unwrap()));
        check_gemm(&k8x8, 40, 40, 24);
        let k1x12 = exo_kernel(Arc::new(generator.generate(1, 12).unwrap()));
        check_gemm(&k1x12, 13, 36, 20);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(5, 4);
        let mut c = Matrix::zeros(4, 4);
        let gemm = BlisGemm::new(BlockingParams::carmel_defaults(8, 12));
        assert!(matches!(
            gemm.gemm(&neon_intrinsics_kernel(), &a, &b, &mut c),
            Err(GemmError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_problems_are_a_no_op() {
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let mut c = Matrix::zeros(0, 0);
        let gemm = BlisGemm::new(BlockingParams::carmel_defaults(8, 12));
        gemm.gemm(&neon_intrinsics_kernel(), &a, &b, &mut c).unwrap();
    }

    #[test]
    fn blocking_tile_need_not_match_the_kernel_tile() {
        // The public API lets a generic blocking drive any kernel; the
        // arena must size its panels from the kernel's tile, not the
        // blocking's, or packing overruns the buffer.
        let kernel = reference_kernel(16, 32);
        let blocking = BlockingParams { mc: 24, kc: 16, nc: 36, mr: 8, nr: 12 };
        let a = Matrix::from_fn(13, 9, |i, j| (i * 2 + j) as f32 * 0.25);
        let b = Matrix::from_fn(9, 13, |i, j| (i + j * 3) as f32 * 0.125);
        let mut c = Matrix::zeros(13, 13);
        let mut c_ref = Matrix::zeros(13, 13);
        BlisGemm::new(blocking).with_threads(3).gemm(&kernel, &a, &b, &mut c).unwrap();
        naive_gemm(&a, &b, &mut c_ref);
        for idx in 0..c.data.len() {
            assert!((c.data[idx] - c_ref.data[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn wide_short_problems_split_the_jc_loop_bit_identically() {
        // m fits a single ic block while n spans many jc blocks, so the
        // driver takes the jc-parallel path; it must agree bit-for-bit with
        // the sequential run for any thread count.
        let kernel = neon_intrinsics_kernel();
        let blocking = BlockingParams { mc: 32, kc: 16, nc: 24, mr: kernel.mr, nr: kernel.nr };
        let a = Matrix::from_fn(8, 33, |i, j| ((i * 5 + j * 7 + 1) % 11) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(33, 200, |i, j| ((i * 3 + j * 13 + 2) % 17) as f32 * 0.125 - 1.0);
        let c0 = Matrix::from_fn(8, 200, |i, j| ((i + j) % 5) as f32 * 0.5);
        let mut c_seq = c0.clone();
        BlisGemm::new(blocking).gemm(&kernel, &a, &b, &mut c_seq).unwrap();
        for threads in [2usize, 3, 8] {
            let mut c_par = c0.clone();
            BlisGemm::new(blocking).with_threads(threads).gemm(&kernel, &a, &b, &mut c_par).unwrap();
            assert_eq!(c_seq.data, c_par.data, "jc split with {threads} threads");
        }
        // And it is actually correct, not just self-consistent.
        let mut c_ref = c0.clone();
        naive_gemm(&a, &b, &mut c_ref);
        for idx in 0..c_seq.data.len() {
            assert!((c_seq.data[idx] - c_ref.data[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let kernel = neon_intrinsics_kernel();
        let a = Matrix::from_fn(40, 16, |i, j| (i + j) as f32 * 0.25);
        let b = Matrix::from_fn(16, 24, |i, j| (i * 2 + j) as f32 * 0.125);
        let mut c = Matrix::zeros(40, 24);
        let mut c_ref = Matrix::zeros(40, 24);
        let blocking = BlockingParams { mc: 8, kc: 8, nc: 24, mr: kernel.mr, nr: kernel.nr };
        BlisGemm::new(blocking).with_threads(0).gemm(&kernel, &a, &b, &mut c).unwrap();
        naive_gemm(&a, &b, &mut c_ref);
        for idx in 0..c.data.len() {
            assert!((c.data[idx] - c_ref.data[idx]).abs() < 1e-3);
        }
    }
}
