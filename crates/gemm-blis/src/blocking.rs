//! Cache-blocking parameters for the BLIS algorithm: the `mc`, `kc`, `nc`
//! values that keep the packed `Ac` block in L2, the packed `Bc` block in L3
//! and the micro-panels streaming through L1 (Section II-A of the paper).
//!
//! Two sources are provided: the analytical model of Low et al. ("Analytical
//! modeling is enough for high-performance BLIS", reference \[9\] of the
//! paper), and the fixed values BLIS ships for the Carmel/A57 family, which
//! the paper quotes (`kc = 512`). The choice between them is one of the
//! ablations listed in DESIGN.md.

use carmel_sim::{CacheHierarchy, CacheLevel};

/// Blocking parameters of the five-loop BLIS algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingParams {
    /// Rows of the packed `Ac` block (L2-resident).
    pub mc: usize,
    /// Depth of the packed blocks (shared by `Ac` and `Bc`).
    pub kc: usize,
    /// Columns of the packed `Bc` block (L3-resident).
    pub nc: usize,
    /// Micro-kernel rows.
    pub mr: usize,
    /// Micro-kernel columns.
    pub nr: usize,
}

impl BlockingParams {
    /// The fixed parameters BLIS uses on this ARM family, quoted by the paper
    /// (`kc = 512`), adjusted to the given register tile.
    pub fn carmel_defaults(mr: usize, nr: usize) -> Self {
        BlockingParams { mc: 120.max(mr), kc: 512, nc: 3072.max(nr), mr, nr }
    }

    /// The analytical model: choose `kc` so that one `mr x kc` A micro-panel
    /// plus one `kc x nr` B micro-panel plus the `C` tile occupy about half
    /// of L1; `mc` so that the `mc x kc` A block occupies about half of L2;
    /// `nc` so that the `kc x nc` B block occupies about half of L3. Each
    /// value is rounded down to a multiple of the register tile.
    pub fn analytical(cache: &CacheHierarchy, mr: usize, nr: usize, elem_bytes: usize) -> Self {
        let l1 = cache.capacity(CacheLevel::L1) as f64;
        let l2 = cache.capacity(CacheLevel::L2) as f64;
        let l3 = cache.capacity(CacheLevel::L3) as f64;
        let s = elem_bytes as f64;

        let kc = ((l1 / 2.0 - (mr * nr) as f64 * s) / (s * (mr + nr) as f64)).max(mr as f64);
        let kc = round_down_multiple(kc as usize, 8).clamp(32, 1024);
        let mc = round_down_multiple((l2 / (2.0 * s * kc as f64)) as usize, mr).max(mr);
        let nc = round_down_multiple((l3 / (2.0 * s * kc as f64)) as usize, nr).max(nr);
        BlockingParams { mc, kc, nc, mr, nr }
    }

    /// Bytes of the packed `Ac` block.
    pub fn a_block_bytes(&self, elem_bytes: usize) -> usize {
        self.mc * self.kc * elem_bytes
    }

    /// Bytes of the packed `Bc` block.
    pub fn b_block_bytes(&self, elem_bytes: usize) -> usize {
        self.kc * self.nc * elem_bytes
    }
}

fn round_down_multiple(value: usize, multiple: usize) -> usize {
    if multiple == 0 {
        return value;
    }
    (value / multiple).max(1) * multiple
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carmel_defaults_quote_the_paper_kc() {
        let b = BlockingParams::carmel_defaults(8, 12);
        assert_eq!(b.kc, 512);
        assert!(b.mc >= 8 && b.nc >= 12);
    }

    #[test]
    fn analytical_blocks_fit_their_cache_levels() {
        let cache = CacheHierarchy::carmel();
        let b = BlockingParams::analytical(&cache, 8, 12, 4);
        // A and B micro-panels plus the C tile fit in L1.
        let l1_use = (b.mr + b.nr) * b.kc * 4 + b.mr * b.nr * 4;
        assert!(l1_use <= cache.capacity(CacheLevel::L1), "L1 use {l1_use}");
        assert!(b.a_block_bytes(4) <= cache.capacity(CacheLevel::L2));
        assert!(b.b_block_bytes(4) <= cache.capacity(CacheLevel::L3));
        // Multiples of the register tile.
        assert_eq!(b.mc % b.mr, 0);
        assert_eq!(b.nc % b.nr, 0);
        // In the same ballpark as the BLIS values for this core.
        assert!(b.kc >= 256 && b.kc <= 1024, "kc = {}", b.kc);
    }

    #[test]
    fn analytical_adapts_to_the_register_tile() {
        let cache = CacheHierarchy::carmel();
        let wide = BlockingParams::analytical(&cache, 8, 12, 4);
        let narrow = BlockingParams::analytical(&cache, 4, 4, 4);
        assert!(narrow.kc >= wide.kc, "smaller tiles allow deeper kc");
    }

    #[test]
    fn rounding_helper() {
        assert_eq!(round_down_multiple(125, 8), 120);
        assert_eq!(round_down_multiple(7, 8), 8);
        assert_eq!(round_down_multiple(5, 0), 5);
    }
}
