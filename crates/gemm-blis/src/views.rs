//! Borrowed strided matrix views: the zero-copy operand types of the BLAS
//! front door.
//!
//! A [`MatRef`]/[`MatMut`] is a `(data, rows, cols, row_stride, col_stride)`
//! tuple over caller-owned memory: element `(i, j)` lives at
//! `data[i * row_stride + j * col_stride]`. Row-major, column-major,
//! transposed, and sub-matrix layouts are all just stride choices, which is
//! what lets the packing routines fold `op(A)`/`op(B)` into their stride
//! walks instead of materialising transposed temporaries:
//!
//! * [`MatRef::from_slice`] — dense row-major (`row_stride = cols`,
//!   `col_stride = 1`),
//! * [`MatRef::col_major`] — dense column-major (`row_stride = 1`,
//!   `col_stride = rows`),
//! * [`MatRef::with_strides`] — anything else (padded leading dimensions,
//!   interleaved channels, ...),
//! * [`MatRef::t`] — zero-cost transpose (swaps the dimensions and the
//!   strides; no data moves),
//! * [`MatRef::submatrix`] — a rectangular window sharing the same storage.
//!
//! Constructors validate that the largest reachable index fits the backing
//! slice, so every accessor past construction is in bounds by construction;
//! mutable views additionally reject aliasing stride combinations (two
//! index pairs mapping to one element), which would make `MatMut` writes
//! order-dependent.

use std::fmt;

/// Whether the stride pair maps distinct `(i, j)` pairs to distinct linear
/// indices — the sufficient condition used for mutable views: the larger
/// stride must step over the full extent of the smaller-stride dimension.
/// Covers row-major (padded or not), column-major, and every sub-matrix of
/// either. Overflowing extents count as aliasing (checked math).
fn strides_non_aliasing(rows: usize, cols: usize, row_stride: usize, col_stride: usize) -> bool {
    if rows <= 1 || cols <= 1 {
        return true;
    }
    let spans = |outer: usize, inner: usize, inner_extent: usize| {
        inner_extent.checked_mul(inner).is_some_and(|span| outer >= span) && inner > 0
    };
    (row_stride > col_stride && spans(row_stride, col_stride, cols))
        || (col_stride > row_stride && spans(col_stride, row_stride, rows))
}

/// Asserts that the largest linear index a non-empty `rows x cols` view
/// can touch fits the backing slice. All checked math — release builds
/// must not wrap a huge stride into a small, passing index.
fn check_bounds(len: usize, rows: usize, cols: usize, row_stride: usize, col_stride: usize) {
    if rows == 0 || cols == 0 {
        return;
    }
    let max = (rows - 1)
        .checked_mul(row_stride)
        .and_then(|r| (cols - 1).checked_mul(col_stride).and_then(|c| r.checked_add(c)));
    assert!(
        max.is_some_and(|m| m < len),
        "matrix view out of bounds: {rows}x{cols} with strides ({row_stride}, {col_stride}) \
         reaches index {max:?} but the slice holds {len} elements"
    );
}

/// A borrowed, read-only, strided `f32` matrix view.
///
/// `Copy`, so it passes by value; all accessors are in bounds by
/// construction. See the [module docs](self) for the layout model.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    row_stride: usize,
    col_stride: usize,
}

impl fmt::Debug for MatRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatRef")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("row_stride", &self.row_stride)
            .field("col_stride", &self.col_stride)
            .finish_non_exhaustive()
    }
}

impl<'a> MatRef<'a> {
    /// A dense row-major view: element `(i, j)` at `data[i * cols + j]`.
    ///
    /// # Panics
    ///
    /// Panics if `data` holds fewer than `rows * cols` elements.
    pub fn from_slice(data: &'a [f32], rows: usize, cols: usize) -> Self {
        Self::with_strides(data, rows, cols, cols, 1)
    }

    /// A dense column-major view: element `(i, j)` at `data[j * rows + i]`.
    ///
    /// # Panics
    ///
    /// Panics if `data` holds fewer than `rows * cols` elements.
    pub fn col_major(data: &'a [f32], rows: usize, cols: usize) -> Self {
        Self::with_strides(data, rows, cols, 1, rows)
    }

    /// A general strided view: element `(i, j)` at
    /// `data[i * row_stride + j * col_stride]`. Strides of zero are allowed
    /// on read-only views (broadcast rows/columns).
    ///
    /// # Panics
    ///
    /// Panics if the largest reachable index does not fit `data`.
    pub fn with_strides(
        data: &'a [f32],
        rows: usize,
        cols: usize,
        row_stride: usize,
        col_stride: usize,
    ) -> Self {
        check_bounds(data.len(), rows, cols, row_stride, col_stride);
        MatRef { data, rows, cols, row_stride, col_stride }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Linear distance between vertically adjacent elements.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Linear distance between horizontally adjacent elements.
    #[inline]
    pub fn col_stride(&self) -> usize {
        self.col_stride
    }

    /// The backing slice (covering at least every reachable element).
    #[inline]
    pub(crate) fn data(&self) -> &'a [f32] {
        self.data
    }

    /// The contiguous row segment `[col, col + len)` of row `i`, when the
    /// column stride is unit (`None` otherwise) — the memcpy fast path of
    /// the staging copies.
    #[inline]
    pub(crate) fn contiguous_row(&self, i: usize, col: usize, len: usize) -> Option<&'a [f32]> {
        if self.col_stride != 1 {
            return None;
        }
        debug_assert!(i < self.rows && col + len <= self.cols);
        let start = i * self.row_stride + col;
        Some(&self.data[start..start + len])
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows, "row index {i} out of {} rows", self.rows);
        debug_assert!(j < self.cols, "column index {j} out of {} columns", self.cols);
        self.data[i * self.row_stride + j * self.col_stride]
    }

    /// The transpose, by swapping dimensions and strides — zero cost, no
    /// data moves.
    #[inline]
    pub fn t(self) -> MatRef<'a> {
        MatRef {
            data: self.data,
            rows: self.cols,
            cols: self.rows,
            row_stride: self.col_stride,
            col_stride: self.row_stride,
        }
    }

    /// The `rows x cols` window whose top-left corner is `(row, col)`,
    /// sharing this view's storage.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit inside this view.
    pub fn submatrix(self, row: usize, col: usize, rows: usize, cols: usize) -> MatRef<'a> {
        assert!(
            row + rows <= self.rows && col + cols <= self.cols,
            "submatrix ({row}+{rows}, {col}+{cols}) exceeds a {}x{} view",
            self.rows,
            self.cols
        );
        let offset = if rows == 0 || cols == 0 {
            self.data.len()
        } else {
            row * self.row_stride + col * self.col_stride
        };
        MatRef {
            data: &self.data[offset..],
            rows,
            cols,
            row_stride: self.row_stride,
            col_stride: self.col_stride,
        }
    }
}

/// A borrowed, mutable, strided `f32` matrix view.
///
/// Same layout model as [`MatRef`], plus the guarantee that distinct
/// `(i, j)` pairs address distinct elements (aliasing stride combinations
/// are rejected at construction), so writes are order-independent.
pub struct MatMut<'a> {
    data: &'a mut [f32],
    rows: usize,
    cols: usize,
    row_stride: usize,
    col_stride: usize,
}

impl fmt::Debug for MatMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatMut")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("row_stride", &self.row_stride)
            .field("col_stride", &self.col_stride)
            .finish_non_exhaustive()
    }
}

impl<'a> MatMut<'a> {
    /// A dense row-major mutable view: element `(i, j)` at
    /// `data[i * cols + j]`.
    ///
    /// # Panics
    ///
    /// Panics if `data` holds fewer than `rows * cols` elements.
    pub fn from_slice(data: &'a mut [f32], rows: usize, cols: usize) -> Self {
        Self::with_strides(data, rows, cols, cols, 1)
    }

    /// A dense column-major mutable view: element `(i, j)` at
    /// `data[j * rows + i]`.
    ///
    /// # Panics
    ///
    /// Panics if `data` holds fewer than `rows * cols` elements.
    pub fn col_major(data: &'a mut [f32], rows: usize, cols: usize) -> Self {
        Self::with_strides(data, rows, cols, 1, rows)
    }

    /// A general strided mutable view.
    ///
    /// # Panics
    ///
    /// Panics if the largest reachable index does not fit `data`, or if the
    /// stride pair could alias (map two `(i, j)` pairs to one element).
    pub fn with_strides(
        data: &'a mut [f32],
        rows: usize,
        cols: usize,
        row_stride: usize,
        col_stride: usize,
    ) -> Self {
        check_bounds(data.len(), rows, cols, row_stride, col_stride);
        assert!(
            strides_non_aliasing(rows, cols, row_stride, col_stride),
            "aliasing strides ({row_stride}, {col_stride}) for a mutable {rows}x{cols} view"
        );
        MatMut { data, rows, cols, row_stride, col_stride }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Linear distance between vertically adjacent elements.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Linear distance between horizontally adjacent elements.
    #[inline]
    pub fn col_stride(&self) -> usize {
        self.col_stride
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows, "row index {i} out of {} rows", self.rows);
        debug_assert!(j < self.cols, "column index {j} out of {} columns", self.cols);
        self.data[i * self.row_stride + j * self.col_stride]
    }

    /// Stores `v` at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows, "row index {i} out of {} rows", self.rows);
        debug_assert!(j < self.cols, "column index {j} out of {} columns", self.cols);
        self.data[i * self.row_stride + j * self.col_stride] = v;
    }

    /// A mutable reborrow of this view: a `MatMut` over the same elements
    /// whose lifetime is tied to `&mut self`, so the original stays usable
    /// after the reborrow is dropped (the `rb_mut` idiom of `faer`/`pulp`).
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_> {
        MatMut {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            row_stride: self.row_stride,
            col_stride: self.col_stride,
        }
    }

    /// A read-only reborrow of this view.
    #[inline]
    pub fn rb(&self) -> MatRef<'_> {
        MatRef {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            row_stride: self.row_stride,
            col_stride: self.col_stride,
        }
    }

    /// The transpose (swapped dimensions and strides), consuming this view.
    #[inline]
    pub fn t(self) -> MatMut<'a> {
        MatMut {
            data: self.data,
            rows: self.cols,
            cols: self.rows,
            row_stride: self.col_stride,
            col_stride: self.row_stride,
        }
    }

    /// The `rows x cols` mutable window whose top-left corner is
    /// `(row, col)`, consuming this view.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit inside this view.
    pub fn submatrix(self, row: usize, col: usize, rows: usize, cols: usize) -> MatMut<'a> {
        assert!(
            row + rows <= self.rows && col + cols <= self.cols,
            "submatrix ({row}+{rows}, {col}+{cols}) exceeds a {}x{} view",
            self.rows,
            self.cols
        );
        let offset = if rows == 0 || cols == 0 {
            self.data.len()
        } else {
            row * self.row_stride + col * self.col_stride
        };
        MatMut {
            data: &mut self.data[offset..],
            rows,
            cols,
            row_stride: self.row_stride,
            col_stride: self.col_stride,
        }
    }

    /// The contiguous mutable row segment `[col, col + len)` of row `i`,
    /// when the column stride is unit (`None` otherwise).
    #[inline]
    pub(crate) fn contiguous_row_mut(&mut self, i: usize, col: usize, len: usize) -> Option<&mut [f32]> {
        if self.col_stride != 1 {
            return None;
        }
        debug_assert!(i < self.rows && col + len <= self.cols);
        let start = i * self.row_stride + col;
        Some(&mut self.data[start..start + len])
    }

    /// Base pointer and strides for the driver's raw write-back path. The
    /// pointer stays valid for the lifetime of the borrow; non-aliasing of
    /// distinct `(i, j)` pairs was proven at construction.
    #[inline]
    pub(crate) fn raw_parts(&mut self) -> (*mut f32, usize, usize) {
        (self.data.as_mut_ptr(), self.row_stride, self.col_stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_col_major_and_transpose_agree() {
        // M = [[1, 2, 3], [4, 5, 6]]
        let rm = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let cm = [1.0f32, 4.0, 2.0, 5.0, 3.0, 6.0];
        let a = MatRef::from_slice(&rm, 2, 3);
        let b = MatRef::col_major(&cm, 2, 3);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(a.get(i, j), b.get(i, j));
                assert_eq!(a.t().get(j, i), a.get(i, j));
            }
        }
        assert_eq!((a.t().rows(), a.t().cols()), (3, 2));
    }

    #[test]
    fn submatrix_windows_share_storage() {
        let data: Vec<f32> = (0..30).map(|x| x as f32).collect();
        let a = MatRef::from_slice(&data, 5, 6);
        let w = a.submatrix(1, 2, 3, 2);
        assert_eq!(w.get(0, 0), a.get(1, 2));
        assert_eq!(w.get(2, 1), a.get(3, 3));
        // A transposed window of a window still reads the same elements.
        assert_eq!(w.t().get(1, 2), a.get(3, 3));
        // Empty windows are fine anywhere, including the far corner.
        let e = a.submatrix(5, 6, 0, 0);
        assert_eq!((e.rows(), e.cols()), (0, 0));
    }

    #[test]
    fn mutable_views_write_through_strides() {
        let mut data = vec![0.0f32; 24];
        {
            let mut c = MatMut::with_strides(&mut data, 3, 4, 8, 2);
            c.set(2, 3, 7.0);
            assert_eq!(c.get(2, 3), 7.0);
        }
        assert_eq!(data[2 * 8 + 3 * 2], 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_views_are_rejected() {
        let data = vec![0.0f32; 10];
        let _ = MatRef::from_slice(&data, 3, 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overflowing_strides_are_rejected_even_in_release() {
        // (rows - 1) * row_stride wraps in unchecked arithmetic; the
        // checked bounds math must reject it instead of letting a
        // wrapped-small index pass.
        let mut data = vec![0.0f32; 16];
        let _ = MatMut::with_strides(&mut data, 3, 2, (1usize << 63) + 5, 1);
    }

    #[test]
    #[should_panic(expected = "aliasing strides")]
    fn aliasing_mutable_strides_are_rejected() {
        let mut data = vec![0.0f32; 16];
        // (i + j) * 2 maps (0, 1) and (1, 0) to the same element.
        let _ = MatMut::with_strides(&mut data, 3, 3, 2, 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "column index")]
    fn per_axis_bounds_are_checked_in_debug_builds() {
        // A fat row stride means j = cols would still land inside the
        // slice — the per-axis assert must catch it anyway.
        let data = vec![0.0f32; 20];
        let a = MatRef::with_strides(&data, 2, 3, 10, 1);
        let _ = a.get(0, 3);
    }

    #[test]
    fn broadcast_strides_are_allowed_read_only() {
        let data = [2.5f32];
        let a = MatRef::with_strides(&data, 4, 4, 0, 0);
        assert_eq!(a.get(3, 3), 2.5);
    }
}
