//! The process-wide GEMM worker pool: long-lived OS threads created once
//! and borrowed by every driver call, in place of per-call
//! `std::thread::scope` spawning.
//!
//! The pool exists for the serving story (see the `exo-serve` crate): a
//! long-lived process answering a stream of GEMM calls must not pay thread
//! creation and teardown on every call, and concurrent callers must share
//! one bounded set of workers instead of oversubscribing the machine with
//! per-call scopes. [`ThreadPool::global`] is that shared set — created on
//! first use via `OnceLock`, sized to the machine (or the `EXO_THREADS`
//! override), and never torn down.
//!
//! Design notes:
//!
//! * **Scoped semantics without scoped threads.** [`ThreadPool::scope_run`]
//!   accepts jobs borrowing the caller's stack (`'env` closures) and does
//!   not return until every job has finished, so the borrows stay valid —
//!   the same contract as `std::thread::scope`, but on recycled workers.
//! * **The caller helps.** While its jobs are outstanding the submitting
//!   thread runs queued jobs itself. This keeps a single-worker pool (or a
//!   pool whose workers are all blocked inside nested scopes) deadlock-free
//!   and means a `scope_run` never waits idle while work it could do sits
//!   queued.
//! * **Panics propagate.** A panicking job poisons nothing: the first
//!   panic payload is captured and re-thrown from `scope_run` on the
//!   submitting thread, matching what `std::thread::scope` callers observe.
//!   Service-grade callers that must survive a panicking job use
//!   [`ThreadPool::scope_run_captured`], which hands the payload back as a
//!   value instead.
//! * **Poison tolerance.** All pool locks are acquired with a
//!   poison-tolerant helper: a panic while a lock is held (impossible in the
//!   pool's own critical sections, which only move plain data, but cheap to
//!   defend against) can never cascade `PoisonError` unwraps through every
//!   later pool user.
//! * **Worker respawn.** If a worker thread dies of an unwinding panic
//!   (only reachable through the [`arm_worker_death`] fault hook today, but
//!   defended regardless), a replacement is spawned on its way out, so the
//!   pool's width survives any fault the harness can inject.
//! * **Bit-identical results are the driver's concern, not the pool's.**
//!   The pool promises only that each job runs exactly once; the GEMM
//!   driver's block partitioning already makes any worker assignment
//!   produce identical bits.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Acquires a mutex whether or not it is poisoned.
///
/// The pool's critical sections only push/pop plain data, so a poisoned
/// lock's state is always consistent; propagating the poison (the default
/// `unwrap`) would turn one contained panic into a process-wide cascade.
fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Deterministic fault hooks (inert unless armed).
//
// These are the pool-level half of the `exo_serve::fault` harness: the
// dependency arrow points from `exo-serve` down to this crate, so the hooks
// that must fire *inside* the pool live here and are armed from above. The
// countdowns live per pool (tests arm private pools without interfering);
// the free functions [`arm_task_panic`]/[`arm_worker_death`]/
// [`disarm_pool_faults`] target the process-wide [`ThreadPool::global`],
// which is what the service layer executes on. Each hook is one relaxed
// atomic load on the hot path when disarmed.
// ---------------------------------------------------------------------------

/// Decrements an armed countdown; `true` exactly once, when it hits zero.
fn countdown_fires(counter: &AtomicI64) -> bool {
    if counter.load(Ordering::Relaxed) <= 0 {
        return false;
    }
    counter.fetch_sub(1, Ordering::Relaxed) == 1
}

/// Arms [`ThreadPool::arm_task_panic`] on the global pool.
pub fn arm_task_panic(nth: u64) {
    ThreadPool::global().arm_task_panic(nth);
}

/// Arms [`ThreadPool::arm_worker_death`] on the global pool.
pub fn arm_worker_death(nth: u64) {
    ThreadPool::global().arm_worker_death(nth);
}

/// Disarms every fault hook of the global pool.
pub fn disarm_pool_faults() {
    ThreadPool::global().disarm_faults();
}

/// A unit of work submitted to the pool: a lifetime-erased closure plus the
/// completion latch of the `scope_run` that owns it.
struct Task {
    job: Box<dyn FnOnce() + Send + 'static>,
    latch: Arc<Latch>,
}

impl Task {
    /// Runs the job and signals the owning scope, capturing a panic payload
    /// instead of unwinding into the worker loop.
    fn run(self, shared: &Shared) {
        let Task { job, latch } = self;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shared.maybe_injected_task_panic();
            job();
        }));
        let mut state = lock_tolerant(&latch.state);
        state.remaining -= 1;
        if let Err(payload) = outcome {
            state.panic.get_or_insert(payload);
        }
        if state.remaining == 0 {
            latch.done.notify_all();
        }
    }
}

/// Completion tracking for one `scope_run` call.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(jobs: usize) -> Self {
        Latch { state: Mutex::new(LatchState { remaining: jobs, panic: None }), done: Condvar::new() }
    }

    fn is_done(&self) -> bool {
        lock_tolerant(&self.state).remaining == 0
    }

    /// Blocks until either the scope completes or a spurious wakeup occurs
    /// (the caller re-checks the queue afterwards, so spurious wakeups are
    /// harmless).
    fn wait(&self) {
        let state = lock_tolerant(&self.state);
        if state.remaining > 0 {
            drop(self.done.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner()));
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        lock_tolerant(&self.state).panic.take()
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<QueueState>,
    ready: Condvar,
    /// Total OS threads this pool has ever created — the observable the
    /// pool-reuse tests assert on (it must stop growing after warm-up).
    spawned: AtomicUsize,
    /// Total jobs finished by pool workers *and* helping callers.
    executed: AtomicUsize,
    /// Workers respawned after dying of an unwinding panic.
    respawned: AtomicUsize,
    /// Fault hook: countdown until an injected panic inside the Nth job of
    /// this pool (`<= 0` = disarmed).
    task_panic_in: AtomicI64,
    /// Fault hook: countdown until the worker finishing the Nth queued task
    /// of this pool dies (`<= 0` = disarmed). The kill fires *after* the
    /// task signalled its scope, so no latch is stranded — the observable
    /// is the worker death plus its respawn.
    worker_death_in: AtomicI64,
}

struct QueueState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

impl Shared {
    /// Pops one queued task, if any.
    fn try_pop(&self) -> Option<Task> {
        lock_tolerant(&self.queue).tasks.pop_front()
    }

    /// Called at the start of every job of this pool (inside its capture).
    #[inline]
    fn maybe_injected_task_panic(&self) {
        if countdown_fires(&self.task_panic_in) {
            panic!("injected fault: pool job panic (EXO_FAULT pool-panic)");
        }
    }

    fn run_task(&self, task: Task) {
        task.run(self);
        self.executed.fetch_add(1, Ordering::Relaxed);
    }
}

/// A boxed job for [`ThreadPool::scope_run`], borrowing the caller's stack.
pub type PoolJob<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A pool of long-lived worker threads with scoped-execution semantics.
///
/// Most callers want the process-wide [`ThreadPool::global`]; private pools
/// ([`ThreadPool::with_workers`]) exist for tests and for callers that need
/// isolation. Dropping a private pool signals its workers to exit once the
/// queue drains (they are detached, so drop does not block on them).
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: usize,
}

impl ThreadPool {
    /// The process-wide pool: created on first use, sized by
    /// [`env_threads_override`] (`EXO_THREADS`) when set, otherwise by
    /// `std::thread::available_parallelism`, and alive for the rest of the
    /// process.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = env_threads_override()
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
            ThreadPool::with_workers(workers)
        })
    }

    /// Creates a private pool with `workers` threads (clamped to at least
    /// one). Prefer [`ThreadPool::global`] outside tests.
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { tasks: VecDeque::new(), shutdown: false }),
            ready: Condvar::new(),
            spawned: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
            respawned: AtomicUsize::new(0),
            task_panic_in: AtomicI64::new(0),
            worker_death_in: AtomicI64::new(0),
        });
        for idx in 0..workers {
            spawn_worker(Arc::clone(&shared), format!("exo-gemm-worker-{idx}"));
        }
        ThreadPool { shared, workers }
    }

    /// The number of worker threads — the pool's maximum parallelism (the
    /// helping caller adds one more lane while inside `scope_run`).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total OS threads this pool has ever spawned. Constant after
    /// construction — asserted by the serving tests to prove the hot path
    /// recycles workers instead of spawning.
    pub fn threads_spawned(&self) -> usize {
        self.shared.spawned.load(Ordering::Relaxed)
    }

    /// Total jobs the pool has completed (workers and helping callers).
    pub fn tasks_executed(&self) -> usize {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Workers respawned after dying of an unwinding panic — zero in a
    /// healthy process; positive only under injected worker-death faults
    /// (or a pool bug the respawn guard then contains).
    pub fn workers_respawned(&self) -> usize {
        self.shared.respawned.load(Ordering::Relaxed)
    }

    /// Arms a deterministic fault: the `nth` job of this pool to start
    /// from now (1 = the very next one) panics before doing any work. The
    /// panic is observed exactly as a real panicking job: captured by the
    /// job's scope and either re-thrown from [`ThreadPool::scope_run`] or
    /// returned from [`ThreadPool::scope_run_captured`].
    pub fn arm_task_panic(&self, nth: u64) {
        self.shared.task_panic_in.store(nth.max(1) as i64, Ordering::Relaxed);
    }

    /// Arms a deterministic fault: the worker that finishes the `nth`
    /// queued task of this pool from now dies (its thread unwinds) *after*
    /// signalling the task's scope, exercising the respawn path without
    /// stranding any waiter.
    pub fn arm_worker_death(&self, nth: u64) {
        self.shared.worker_death_in.store(nth.max(1) as i64, Ordering::Relaxed);
    }

    /// Disarms every fault hook of this pool.
    pub fn disarm_faults(&self) {
        self.shared.task_panic_in.store(0, Ordering::Relaxed);
        self.shared.worker_death_in.store(0, Ordering::Relaxed);
    }

    /// Runs every job to completion before returning, on pool workers plus
    /// the calling thread — `std::thread::scope` semantics on recycled
    /// threads.
    ///
    /// If a job panics, the first panic payload is re-thrown here after all
    /// jobs of this scope have finished.
    pub fn scope_run<'env>(&self, jobs: Vec<PoolJob<'env>>) {
        match jobs.len() {
            0 => return,
            // One job: run it inline, no queue round-trip. An injected
            // task-panic fault still counts this as a pool job, and its
            // panic propagates — exactly like a real panic on this path.
            1 => {
                let job = jobs.into_iter().next().unwrap();
                self.shared.maybe_injected_task_panic();
                return job();
            }
            _ => {}
        }
        if let Some(payload) = self.scope_run_latch(jobs) {
            resume_unwind(payload);
        }
    }

    /// Like [`ThreadPool::scope_run`], but a panicking job does not unwind
    /// the caller: the first panic payload is returned as a value after
    /// every job of the scope has finished (the rest run to completion).
    ///
    /// This is the service path's opt-in: `scope_run` keeps
    /// `std::thread::scope` propagate semantics for direct callers, while a
    /// batch executor that must keep serving the other entries of a batch
    /// captures here and resolves only the affected jobs with errors.
    pub fn scope_run_captured<'env>(
        &self,
        jobs: Vec<PoolJob<'env>>,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        match jobs.len() {
            0 => None,
            1 => {
                let job = jobs.into_iter().next().unwrap();
                catch_unwind(AssertUnwindSafe(|| {
                    self.shared.maybe_injected_task_panic();
                    job();
                }))
                .err()
            }
            _ => self.scope_run_latch(jobs),
        }
    }

    /// The shared latch machinery behind both scope entry points: queue the
    /// jobs, help run the queue until the scope's latch reports done, and
    /// hand back the first captured panic payload (if any).
    fn scope_run_latch<'env>(&self, jobs: Vec<PoolJob<'env>>) -> Option<Box<dyn std::any::Any + Send>> {
        let latch = Arc::new(Latch::new(jobs.len()));
        {
            let mut queue = lock_tolerant(&self.shared.queue);
            for job in jobs {
                // SAFETY: lifetime erasure only. `scope_run_latch` does not
                // return until this scope's latch reports every job finished
                // (even on panic), so the `'env` borrows captured by the
                // closure outlive every access the pool makes to it.
                let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
                queue.tasks.push_back(Task { job, latch: Arc::clone(&latch) });
            }
        }
        self.shared.ready.notify_all();
        // Help until our scope completes: run queued tasks (ours or another
        // scope's) and only sleep on the latch when the queue is empty.
        loop {
            if latch.is_done() {
                break;
            }
            match self.shared.try_pop() {
                Some(task) => self.shared.run_task(task),
                None => latch.wait(),
            }
        }
        latch.take_panic()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        let mut queue = lock_tolerant(&self.shared.queue);
        queue.shutdown = true;
        drop(queue);
        self.shared.ready.notify_all();
    }
}

/// Spawns one pool worker thread (initial fleet and respawns alike).
fn spawn_worker(shared: Arc<Shared>, name: String) {
    shared.spawned.fetch_add(1, Ordering::Relaxed);
    std::thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(shared))
        .expect("failed to spawn gemm pool worker");
}

/// Replaces the current worker with a fresh one if its thread is dying of
/// an unwinding panic. Armed for the whole worker loop; a clean shutdown
/// exit defuses it.
struct RespawnGuard {
    shared: Arc<Shared>,
    defused: bool,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !self.defused && std::thread::panicking() {
            let idx = self.shared.respawned.fetch_add(1, Ordering::Relaxed);
            spawn_worker(Arc::clone(&self.shared), format!("exo-gemm-worker-r{idx}"));
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut guard = RespawnGuard { shared: Arc::clone(&shared), defused: false };
    loop {
        let task = {
            let mut state = lock_tolerant(&shared.queue);
            loop {
                if let Some(task) = state.tasks.pop_front() {
                    break Some(task);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.ready.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        match task {
            Some(task) => {
                shared.run_task(task);
                // The injected worker-death fault fires *after* the task
                // signalled its scope: no waiter is stranded, the only
                // observable is this thread dying and the respawn guard
                // replacing it.
                if countdown_fires(&shared.worker_death_in) {
                    panic!("injected fault: pool worker death (EXO_FAULT worker-death)");
                }
            }
            None => {
                guard.defused = true;
                return;
            }
        }
    }
}

/// Parses an `EXO_THREADS` value: a positive worker count.
///
/// # Errors
///
/// Returns a description of the problem for non-numeric or zero values.
pub fn parse_threads(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(format!("`{value}` is zero; the pool needs at least one worker (unset EXO_THREADS for the machine default)")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("`{value}` is not a worker count; expected a positive integer like `EXO_THREADS=4`")),
    }
}

/// The process-wide `EXO_THREADS` override, read once under the workspace
/// override contract ([`exo_codegen::env_once`], as `EXO_BACKEND` and
/// `EXO_ISA`): unset or empty means "no override" (size the pool to the
/// machine), anything else must parse as a positive worker count — a typo
/// panics with the parse error rather than silently falling back.
pub fn env_threads_override() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    exo_codegen::env_once(&OVERRIDE, "EXO_THREADS", parse_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn scope_run_completes_every_job_and_keeps_borrows_valid() {
        let pool = ThreadPool::with_workers(3);
        let mut slots = vec![0u32; 17];
        let jobs: Vec<PoolJob<'_>> = slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| Box::new(move || *slot = i as u32 + 1) as PoolJob<'_>)
            .collect();
        pool.scope_run(jobs);
        assert_eq!(slots, (1..=17).collect::<Vec<u32>>());
    }

    #[test]
    fn pool_threads_are_reused_across_scopes() {
        let pool = ThreadPool::with_workers(2);
        let spawned = pool.threads_spawned();
        assert_eq!(spawned, 2);
        let counter = AtomicU32::new(0);
        for _ in 0..20 {
            let jobs: Vec<PoolJob<'_>> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as PoolJob<'_>
                })
                .collect();
            pool.scope_run(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80);
        assert_eq!(pool.threads_spawned(), spawned, "scopes must recycle workers, not spawn");
        assert!(pool.tasks_executed() >= 80);
    }

    #[test]
    fn nested_scopes_do_not_deadlock_even_on_one_worker() {
        let pool = ThreadPool::with_workers(1);
        let counter = AtomicU32::new(0);
        let outer: Vec<PoolJob<'_>> = (0..3)
            .map(|_| {
                Box::new(|| {
                    let inner: Vec<PoolJob<'_>> = (0..3)
                        .map(|_| {
                            Box::new(|| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            }) as PoolJob<'_>
                        })
                        .collect();
                    pool.scope_run(inner);
                }) as PoolJob<'_>
            })
            .collect();
        pool.scope_run(outer);
        assert_eq!(counter.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn panics_propagate_to_the_submitting_thread() {
        let pool = ThreadPool::with_workers(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<PoolJob<'_>> = vec![
                Box::new(|| {}) as PoolJob<'_>,
                Box::new(|| panic!("gemm worker exploded")) as PoolJob<'_>,
                Box::new(|| {}) as PoolJob<'_>,
            ];
            pool.scope_run(jobs);
        }));
        let payload = result.expect_err("panic must cross scope_run");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("exploded"), "payload preserved, got: {message}");
        // The pool survives the panic and keeps serving.
        let ran = AtomicU32::new(0);
        pool.scope_run(
            (0..4)
                .map(|_| {
                    Box::new(|| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    }) as PoolJob<'_>
                })
                .collect(),
        );
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn captured_scopes_return_the_payload_instead_of_unwinding() {
        let pool = ThreadPool::with_workers(2);
        let done = AtomicU32::new(0);
        let jobs: Vec<PoolJob<'_>> = vec![
            Box::new(|| {
                done.fetch_add(1, Ordering::Relaxed);
            }) as PoolJob<'_>,
            Box::new(|| panic!("captured boom")) as PoolJob<'_>,
            Box::new(|| {
                done.fetch_add(1, Ordering::Relaxed);
            }) as PoolJob<'_>,
        ];
        let payload = pool.scope_run_captured(jobs).expect("panic must be captured");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("captured boom"));
        assert_eq!(done.load(Ordering::Relaxed), 2, "the other jobs of the scope still ran");

        // Singleton captured scopes catch inline panics too.
        let payload = pool.scope_run_captured(vec![Box::new(|| panic!("solo")) as PoolJob<'_>]);
        assert!(payload.is_some());
        assert!(pool.scope_run_captured(Vec::new()).is_none());
    }

    #[test]
    fn injected_worker_death_respawns_and_the_pool_keeps_serving() {
        let pool = ThreadPool::with_workers(2);
        let spawned_before = pool.threads_spawned();
        pool.arm_worker_death(1);
        // Drive multi-job scopes until a pool worker (not just the helping
        // caller) runs a task and trips the countdown; jobs sleep briefly
        // so the helping caller cannot drain the whole queue alone.
        let counter = AtomicU32::new(0);
        for _ in 0..200 {
            if pool.workers_respawned() > 0 {
                break;
            }
            pool.scope_run(
                (0..8)
                    .map(|_| {
                        Box::new(|| {
                            std::thread::sleep(std::time::Duration::from_micros(300));
                            counter.fetch_add(1, Ordering::Relaxed);
                        }) as PoolJob<'_>
                    })
                    .collect(),
            );
        }
        pool.disarm_faults();
        assert!(pool.workers_respawned() >= 1, "the dead worker must be replaced");
        assert_eq!(
            pool.threads_spawned(),
            spawned_before + pool.workers_respawned(),
            "each respawn spawns exactly one replacement"
        );
        // Full-width liveness after the death: a scope with more jobs than
        // the helping caller can run alone still completes.
        let ran = AtomicU32::new(0);
        pool.scope_run(
            (0..8)
                .map(|_| {
                    Box::new(|| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    }) as PoolJob<'_>
                })
                .collect(),
        );
        assert_eq!(ran.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn injected_task_panic_is_deterministic_and_contained() {
        let pool = ThreadPool::with_workers(2);
        pool.arm_task_panic(3);
        let ran = AtomicU32::new(0);
        let jobs = || {
            (0..4)
                .map(|_| {
                    Box::new(|| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    }) as PoolJob<'_>
                })
                .collect::<Vec<_>>()
        };
        let payload = pool.scope_run_captured(jobs());
        pool.disarm_faults();
        let message = payload.as_deref().and_then(|p| p.downcast_ref::<&str>()).copied().unwrap_or_default();
        assert!(message.contains("injected fault"), "job 3 of 4 must trip the countdown: {message}");
        assert_eq!(ran.load(Ordering::Relaxed), 3, "exactly one of the four jobs was killed");
        // Disarmed again: everything runs.
        assert!(pool.scope_run_captured(jobs()).is_none());
        assert_eq!(ran.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn empty_and_singleton_scopes_short_circuit() {
        let pool = ThreadPool::with_workers(2);
        pool.scope_run(Vec::new());
        let mut hit = false;
        pool.scope_run(vec![Box::new(|| hit = true) as PoolJob<'_>]);
        assert!(hit);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = ThreadPool::global() as *const ThreadPool;
        let b = ThreadPool::global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(ThreadPool::global().workers() >= 1);
    }

    #[test]
    fn thread_count_parser_accepts_counts_and_rejects_typos() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert!(parse_threads("0").unwrap_err().contains("at least one"));
        assert!(parse_threads("fast").unwrap_err().contains("not a worker count"));
        assert!(parse_threads("-2").unwrap_err().contains("positive integer"));
    }
}
