//! The BLIS packing routines, over strided views.
//!
//! `Ac := op(A)(ic:ic+mc, pc:pc+kc)` is packed into micro-panels of `mr`
//! rows so that the micro-kernel reads it with unit stride as `Ac[k][mr]`
//! (scaled by `alpha` on the way in — folding the BLAS scale into the one
//! pass that already touches every element); `Bc := op(B)(pc:pc+kc,
//! jc:jc+nc)` is packed into micro-panels of `nr` columns read as
//! `Bc[k][nr]`. Fringe panels are zero-padded to the full register tile,
//! which is how the monolithic library kernels handle edge cases.
//!
//! The source is a [`MatRef`] — an arbitrary strided view — so transposes
//! and sub-matrices are *stride walks*, not copies: `op(X) = T` reaches the
//! packers as a view whose strides are swapped. Every pack funnels through
//! one region packer with three code paths, chosen by the region's strides:
//!
//! * unit stride along the packed row → `copy_from_slice` (the dense `B`
//!   hot path, and the dense-`A`-transposed path);
//! * unit stride *across* packed rows → a blocked transpose in small square
//!   tiles, so the strided gather reads each source cache line once (the
//!   dense `A` hot path, and the dense-`B`-transposed path);
//! * anything else → a scalar stride walk.
//!
//! Two layers are provided, as before: [`pack_a`]/[`pack_b`] allocate per
//! call (legacy driver, tests); [`pack_a_into`]/[`pack_b_into`] +
//! [`PackArena`] write into caller-owned buffers sized once per GEMM.

use crate::blocking::BlockingParams;
use crate::views::MatRef;

/// Tile edge of the blocked-transpose gather: big enough that a packed tile
/// spans a cache line of the destination, small enough that `T` source rows
/// stay resident while the tile transposes.
const XPOSE_TILE: usize = 8;

/// Packs the `R x C` `region` into `out` as `R` rows of `tile_w` contiguous
/// elements (`C <= tile_w`; columns `C..tile_w` are zero-padded), scaling
/// every element by `alpha`.
///
/// This is the shared engine of [`pack_a_into`] and [`pack_b_into`]; the
/// region view's strides decide the code path (see the module docs).
fn pack_region(out: &mut [f32], region: MatRef<'_>, tile_w: usize, alpha: f32) {
    let (rows, cols) = (region.rows(), region.cols());
    debug_assert!(cols <= tile_w && out.len() >= rows * tile_w);
    let (rs, cs) = (region.row_stride(), region.col_stride());
    let data = region.data();
    if cs == 1 && rows > 0 && cols > 0 {
        // Packed rows are contiguous in the source.
        for (r, dst) in out.chunks_exact_mut(tile_w).take(rows).enumerate() {
            let src = &data[r * rs..r * rs + cols];
            if alpha == 1.0 {
                dst[..cols].copy_from_slice(src);
            } else {
                for (d, &s) in dst[..cols].iter_mut().zip(src) {
                    *d = alpha * s;
                }
            }
        }
    } else if rs == 1 && rows > 0 && cols > 0 {
        // The source is contiguous *across* packed rows: gather in square
        // tiles so each source run of XPOSE_TILE elements is read once,
        // instead of one element per strided pass.
        let mut c0 = 0;
        while c0 < cols {
            let tc = XPOSE_TILE.min(cols - c0);
            let mut r0 = 0;
            while r0 < rows {
                let tr = XPOSE_TILE.min(rows - r0);
                for c in 0..tc {
                    let src = &data[(c0 + c) * cs + r0..(c0 + c) * cs + r0 + tr];
                    for (r, &s) in src.iter().enumerate() {
                        out[(r0 + r) * tile_w + c0 + c] = alpha * s;
                    }
                }
                r0 += tr;
            }
            c0 += tc;
        }
    } else {
        // General strided walk (also covers empty regions).
        for r in 0..rows {
            let dst = &mut out[r * tile_w..r * tile_w + cols];
            for (c, d) in dst.iter_mut().enumerate() {
                *d = alpha * region.get(r, c);
            }
        }
    }
    // Zero-pad the fringe columns of every row (values beyond `rows * tile_w`
    // are the caller's responsibility — pack_*_into never leaves them stale).
    if cols < tile_w {
        for dst in out.chunks_exact_mut(tile_w).take(rows) {
            dst[cols..].fill(0.0);
        }
    }
}

/// Packs a block of `op(A)` (selecting rows `ic..ic+mc_eff` and columns
/// `pc..pc+kc_eff` of the *effective*, op-applied view) into `mr`-row
/// micro-panels scaled by `alpha`, zero-padding the last panel.
///
/// The returned buffer holds `ceil(mc_eff / mr)` panels, each laid out as
/// `kc_eff` rows of `mr` contiguous elements.
pub fn pack_a(
    a: MatRef<'_>,
    ic: usize,
    pc: usize,
    mc_eff: usize,
    kc_eff: usize,
    mr: usize,
    alpha: f32,
) -> Vec<f32> {
    let mut out = vec![0.0f32; mc_eff.div_ceil(mr) * kc_eff * mr];
    pack_a_into(&mut out, a, ic, pc, mc_eff, kc_eff, mr, alpha);
    out
}

/// Packs a block of `op(A)` into `out` (see [`pack_a`]), which must hold at
/// least `ceil(mc_eff / mr) * kc_eff * mr` elements. Every element of that
/// prefix is written (values or explicit zero padding), so a reused arena
/// buffer never leaks stale data.
///
/// # Panics
///
/// Panics if `out` is shorter than the packed block or the block exceeds
/// the view.
#[allow(clippy::too_many_arguments)]
pub fn pack_a_into(
    out: &mut [f32],
    a: MatRef<'_>,
    ic: usize,
    pc: usize,
    mc_eff: usize,
    kc_eff: usize,
    mr: usize,
    alpha: f32,
) {
    let panels = mc_eff.div_ceil(mr);
    let panel_len = kc_eff * mr;
    assert!(out.len() >= panels * panel_len, "pack_a_into: arena too small");
    for p in 0..panels {
        let prows = mr.min(mc_eff - p * mr);
        // The packed panel is the (kc_eff x prows) *transpose* of the
        // A-block rows, so the region view is the sub-block transposed:
        // dense row-major A lands on the blocked-transpose gather, and
        // op(A) = T (stride-swapped view) lands on the contiguous copy.
        let region = a.submatrix(ic + p * mr, pc, prows, kc_eff).t();
        pack_region(&mut out[p * panel_len..(p + 1) * panel_len], region, mr, alpha);
    }
}

/// Packs a block of `op(B)` (selecting rows `pc..pc+kc_eff` and columns
/// `jc..jc+nc_eff` of the effective, op-applied view) into `nr`-column
/// micro-panels, zero-padding the last panel.
///
/// The returned buffer holds `ceil(nc_eff / nr)` panels, each laid out as
/// `kc_eff` rows of `nr` contiguous elements.
pub fn pack_b(b: MatRef<'_>, pc: usize, jc: usize, kc_eff: usize, nc_eff: usize, nr: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; nc_eff.div_ceil(nr) * kc_eff * nr];
    pack_b_into(&mut out, b, pc, jc, kc_eff, nc_eff, nr);
    out
}

/// Packs a block of `op(B)` into `out` (see [`pack_b`]), which must hold at
/// least `ceil(nc_eff / nr) * kc_eff * nr` elements. Every element of that
/// prefix is written, so a reused arena buffer never leaks stale data.
///
/// # Panics
///
/// Panics if `out` is shorter than the packed block or the block exceeds
/// the view.
pub fn pack_b_into(
    out: &mut [f32],
    b: MatRef<'_>,
    pc: usize,
    jc: usize,
    kc_eff: usize,
    nc_eff: usize,
    nr: usize,
) {
    let panels = nc_eff.div_ceil(nr);
    let panel_len = kc_eff * nr;
    assert!(out.len() >= panels * panel_len, "pack_b_into: arena too small");
    for p in 0..panels {
        let pcols = nr.min(nc_eff - p * nr);
        // The packed panel is the (kc_eff x pcols) sub-block as-is: dense
        // row-major B lands on the contiguous copy, op(B) = T on the
        // blocked-transpose gather.
        let region = b.submatrix(pc, jc + p * nr, kc_eff, pcols);
        pack_region(&mut out[p * panel_len..(p + 1) * panel_len], region, nr, 1.0);
    }
}

/// Returns the `kc_eff x mr` micro-panel `ir` of a packed `Ac` buffer.
pub fn a_panel(packed: &[f32], ir: usize, kc_eff: usize, mr: usize) -> &[f32] {
    let base = ir * kc_eff * mr;
    &packed[base..base + kc_eff * mr]
}

/// Returns the `kc_eff x nr` micro-panel `jr` of a packed `Bc` buffer.
pub fn b_panel(packed: &[f32], jr: usize, kc_eff: usize, nr: usize) -> &[f32] {
    let base = jr * kc_eff * nr;
    &packed[base..base + kc_eff * nr]
}

/// Reusable packing buffers for one GEMM invocation.
///
/// The five-loop driver historically allocated a fresh `Vec<f32>` for the
/// packed `Ac` block on every `(jc, pc, ic)` iteration and for `Bc` on every
/// `(jc, pc)` iteration. A `PackArena` is allocated **once** per GEMM at the
/// blocking-derived maximum block sizes (clamped to the problem), and the
/// `pack_*` calls then write in place.
#[derive(Debug, Clone)]
pub struct PackArena {
    a: Vec<f32>,
    b: Vec<f32>,
}

impl PackArena {
    /// An arena sized for the given blocking, clamped to an `m x n x k`
    /// problem (a small problem never pays for the full `mc x kc` / `kc x
    /// nc` blocks).
    pub fn for_problem(blocking: &BlockingParams, m: usize, n: usize, k: usize) -> Self {
        let kc = blocking.kc.min(k.max(1));
        let a_len = blocking.mc.min(m.max(1)).div_ceil(blocking.mr) * blocking.mr * kc;
        let b_len = blocking.nc.min(n.max(1)).div_ceil(blocking.nr) * blocking.nr * kc;
        PackArena { a: vec![0.0; a_len], b: vec![0.0; b_len] }
    }

    /// The empty arena: no capacity until [`PackArena::ensure_for_problem`]
    /// grows it. The batch runners (`GemmRunner`, exo-serve shards) start
    /// here and grow monotonically, so a stream of small entries never pays
    /// for the blocking's unclamped maxima.
    pub fn empty() -> Self {
        PackArena { a: Vec::new(), b: Vec::new() }
    }

    /// Grows the arena (never shrinks) to fit an `m x n x k` problem under
    /// `blocking` — same clamped sizing as [`PackArena::for_problem`]. A
    /// runner calling this per entry pays an allocation only when an entry
    /// needs more than every entry before it.
    pub fn ensure_for_problem(&mut self, blocking: &BlockingParams, m: usize, n: usize, k: usize) {
        let kc = blocking.kc.min(k.max(1));
        let a_len = blocking.mc.min(m.max(1)).div_ceil(blocking.mr) * blocking.mr * kc;
        let b_len = blocking.nc.min(n.max(1)).div_ceil(blocking.nr) * blocking.nr * kc;
        if self.a.len() < a_len {
            self.a.resize(a_len, 0.0);
        }
        if self.b.len() < b_len {
            self.b.resize(b_len, 0.0);
        }
    }

    /// Capacity of the `Ac` buffer in elements.
    pub fn a_capacity(&self) -> usize {
        self.a.len()
    }

    /// Both buffers at once (`Ac`, `Bc`), split-borrowed so a packed `Bc`
    /// prefix can stay borrowed while `Ac` blocks are repacked — the form
    /// the five-loop driver needs.
    pub fn buffers(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.a, &mut self.b)
    }

    /// Capacity of the `Bc` buffer in elements.
    pub fn b_capacity(&self) -> usize {
        self.b.len()
    }

    /// Packs an `op(A)` block into the arena (see [`pack_a`]) and returns
    /// the packed prefix.
    #[allow(clippy::too_many_arguments)]
    pub fn pack_a<'s>(
        &'s mut self,
        a: MatRef<'_>,
        ic: usize,
        pc: usize,
        mc_eff: usize,
        kc_eff: usize,
        mr: usize,
        alpha: f32,
    ) -> &'s [f32] {
        let len = mc_eff.div_ceil(mr) * kc_eff * mr;
        pack_a_into(&mut self.a[..len], a, ic, pc, mc_eff, kc_eff, mr, alpha);
        &self.a[..len]
    }

    /// Packs an `op(B)` block into the arena (see [`pack_b`]) and returns
    /// the packed prefix.
    #[allow(clippy::too_many_arguments)]
    pub fn pack_b<'s>(
        &'s mut self,
        b: MatRef<'_>,
        pc: usize,
        jc: usize,
        kc_eff: usize,
        nc_eff: usize,
        nr: usize,
    ) -> &'s [f32] {
        let len = nc_eff.div_ceil(nr) * kc_eff * nr;
        pack_b_into(&mut self.b[..len], b, pc, jc, kc_eff, nc_eff, nr);
        &self.b[..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_is_unit_stride_per_panel() {
        // A is 6 x 4 with A[i][j] = 10 i + j.
        let (m, k) = (6usize, 4usize);
        let a: Vec<f32> = (0..m * k).map(|x| (10 * (x / k) + x % k) as f32).collect();
        let packed = pack_a(MatRef::from_slice(&a, m, k), 0, 0, m, k, 4, 1.0);
        // Two panels of 4 rows (second padded by 2 rows of zeros).
        assert_eq!(packed.len(), 2 * k * 4);
        // Panel 0, k = 1 holds rows 0..4 column 1: 1, 11, 21, 31.
        let p0 = a_panel(&packed, 0, k, 4);
        assert_eq!(&p0[4..8], &[1.0, 11.0, 21.0, 31.0]);
        // Panel 1, k = 0 holds rows 4,5 then zero padding.
        let p1 = a_panel(&packed, 1, k, 4);
        assert_eq!(&p1[0..4], &[40.0, 50.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_b_is_unit_stride_per_panel() {
        // B is 3 x 7 with B[k][j] = 100 k + j.
        let (k, n) = (3usize, 7usize);
        let b: Vec<f32> = (0..k * n).map(|x| (100 * (x / n) + x % n) as f32).collect();
        let packed = pack_b(MatRef::from_slice(&b, k, n), 0, 0, k, n, 4);
        assert_eq!(packed.len(), 2 * k * 4);
        let p0 = b_panel(&packed, 0, k, 4);
        assert_eq!(&p0[0..4], &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(&p0[4..8], &[100.0, 101.0, 102.0, 103.0]);
        // Second panel: columns 4..7 then one zero-padded column.
        let p1 = b_panel(&packed, 1, k, 4);
        assert_eq!(&p1[0..4], &[4.0, 5.0, 6.0, 0.0]);
    }

    #[test]
    fn packing_a_sub_block_offsets_correctly() {
        let (m, k) = (8usize, 8usize);
        let a: Vec<f32> = (0..m * k).map(|x| x as f32).collect();
        let packed = pack_a(MatRef::from_slice(&a, m, k), 4, 2, 4, 3, 4, 1.0);
        // Single panel: rows 4..8, columns 2..5.
        let p = a_panel(&packed, 0, 3, 4);
        assert_eq!(p[0], a[4 * k + 2]);
        assert_eq!(p[4], a[4 * k + 3]);
        assert_eq!(p[3], a[7 * k + 2]);
    }

    #[test]
    fn transposed_and_strided_sources_pack_identically_to_materialised_ones() {
        // op(A) = T over a row-major k x m buffer must pack exactly what a
        // materialised m x k transpose packs — the stride walk is the
        // transpose.
        let (m, k) = (11usize, 7usize);
        let at: Vec<f32> = (0..k * m).map(|x| (x as f32) * 0.25 - 3.0).collect();
        let a_dense: Vec<f32> = {
            let mut d = vec![0.0f32; m * k];
            for i in 0..m {
                for j in 0..k {
                    d[i * k + j] = at[j * m + i];
                }
            }
            d
        };
        for mr in [4usize, 8] {
            let via_view = pack_a(MatRef::from_slice(&at, k, m).t(), 0, 0, m, k, mr, 1.0);
            let via_dense = pack_a(MatRef::from_slice(&a_dense, m, k), 0, 0, m, k, mr, 1.0);
            assert_eq!(via_view, via_dense, "mr = {mr}");
        }
        // Same for B: a transposed view and a column-major view of the same
        // logical matrix pack identically to the dense row-major layout.
        let (kk, n) = (6usize, 10usize);
        let b_dense: Vec<f32> = (0..kk * n).map(|x| (x as f32) * 0.5 - 7.0).collect();
        let b_cm: Vec<f32> = {
            let mut d = vec![0.0f32; kk * n];
            for i in 0..kk {
                for j in 0..n {
                    d[j * kk + i] = b_dense[i * n + j];
                }
            }
            d
        };
        let via_dense = pack_b(MatRef::from_slice(&b_dense, kk, n), 1, 2, 4, 7, 4);
        let via_cm = pack_b(MatRef::col_major(&b_cm, kk, n), 1, 2, 4, 7, 4);
        let via_t = pack_b(MatRef::from_slice(&b_cm, n, kk).t(), 1, 2, 4, 7, 4);
        assert_eq!(via_dense, via_cm);
        assert_eq!(via_dense, via_t);
    }

    #[test]
    fn alpha_scales_packed_a_elements() {
        let a: Vec<f32> = (0..12).map(|x| x as f32).collect();
        let plain = pack_a(MatRef::from_slice(&a, 3, 4), 0, 0, 3, 4, 4, 1.0);
        let scaled = pack_a(MatRef::from_slice(&a, 3, 4), 0, 0, 3, 4, 4, -0.5);
        for (p, s) in plain.iter().zip(&scaled) {
            assert_eq!(*s, -0.5 * *p);
        }
    }

    #[test]
    fn arena_packing_matches_the_allocating_routines_after_reuse() {
        let blocking = BlockingParams { mc: 8, kc: 6, nc: 12, mr: 4, nr: 4 };
        let (m, n, k) = (7usize, 11usize, 6usize);
        let a: Vec<f32> = (0..m * k).map(|x| (x as f32) * 0.5 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|x| (x as f32) * 0.25 - 1.0).collect();
        let a_view = MatRef::from_slice(&a, m, k);
        let b_view = MatRef::from_slice(&b, k, n);
        let mut arena = PackArena::for_problem(&blocking, m, n, k);
        // Dirty the arena with a large block first, then pack a smaller
        // fringe block: the reused buffer must not leak stale values.
        arena.pack_a(a_view, 0, 0, 7, 6, 4, 1.0);
        arena.pack_b(b_view, 0, 0, 6, 11, 4);
        let got_a = arena.pack_a(a_view, 4, 1, 3, 5, 4, 1.0).to_vec();
        let want_a = pack_a(a_view, 4, 1, 3, 5, 4, 1.0);
        assert_eq!(got_a, want_a);
        let got_b = arena.pack_b(b_view, 2, 8, 4, 3, 4).to_vec();
        let want_b = pack_b(b_view, 2, 8, 4, 3, 4);
        assert_eq!(got_b, want_b);
    }

    #[test]
    fn arena_capacity_is_clamped_to_the_problem() {
        let blocking = BlockingParams { mc: 120, kc: 512, nc: 3072, mr: 8, nr: 12 };
        let small = PackArena::for_problem(&blocking, 10, 10, 10);
        // 10 rows -> 2 panels of 8, depth 10; 10 cols -> 1 panel of 12.
        assert_eq!(small.a_capacity(), 16 * 10);
        assert_eq!(small.b_capacity(), 12 * 10);
        let large = PackArena::for_problem(&blocking, 4000, 4000, 4000);
        assert_eq!(large.a_capacity(), 120 * 512);
        assert_eq!(large.b_capacity(), 3072 * 512);
    }
}
