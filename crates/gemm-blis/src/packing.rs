//! The BLIS packing routines.
//!
//! `Ac := A(ic:ic+mc, pc:pc+kc)` is packed into micro-panels of `mr` rows so
//! that the micro-kernel reads it with unit stride as `Ac[k][mr]`;
//! `Bc := B(pc:pc+kc, jc:jc+nc)` is packed into micro-panels of `nr` columns
//! read as `Bc[k][nr]`. Fringe panels are zero-padded to the full register
//! tile, which is how the monolithic library kernels handle edge cases.
//!
//! Two layers are provided:
//!
//! * [`pack_a`] / [`pack_b`] — allocate a fresh buffer per call (the
//!   original behaviour, kept for the legacy driver path and tests);
//! * [`pack_a_into`] / [`pack_b_into`] + [`PackArena`] — pack into a
//!   caller-owned buffer sized once per GEMM at the blocking-derived
//!   maximum, so the five-loop driver performs zero allocations in its
//!   block loops.
//!
//! Both layers share the same split: all *full* panels are packed by a
//! branch-free hot loop, and only the single trailing fringe panel (if the
//! block size is not a tile multiple) runs the padded edge loop.

use crate::blocking::BlockingParams;

/// Packs a block of `A` (row-major `m x k`, selecting rows `ic..ic+mc_eff`
/// and columns `pc..pc+kc_eff`) into `mr`-row micro-panels, zero-padding the
/// last panel.
///
/// The returned buffer holds `ceil(mc_eff / mr)` panels, each laid out as
/// `kc_eff` rows of `mr` contiguous elements.
pub fn pack_a(
    a: &[f32],
    k_total: usize,
    ic: usize,
    pc: usize,
    mc_eff: usize,
    kc_eff: usize,
    mr: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; mc_eff.div_ceil(mr) * kc_eff * mr];
    pack_a_into(&mut out, a, k_total, ic, pc, mc_eff, kc_eff, mr);
    out
}

/// Packs a block of `A` into `out` (see [`pack_a`]), which must hold at
/// least `ceil(mc_eff / mr) * kc_eff * mr` elements. Every element of that
/// prefix is written (values or explicit zero padding), so a reused arena
/// buffer never leaks stale data.
///
/// # Panics
///
/// Panics if `out` is shorter than the packed block.
#[allow(clippy::too_many_arguments)]
pub fn pack_a_into(
    out: &mut [f32],
    a: &[f32],
    k_total: usize,
    ic: usize,
    pc: usize,
    mc_eff: usize,
    kc_eff: usize,
    mr: usize,
) {
    let panels = mc_eff.div_ceil(mr);
    let full = mc_eff / mr;
    let panel_len = kc_eff * mr;
    assert!(out.len() >= panels * panel_len, "pack_a_into: arena too small");
    // Full panels: no per-element bounds decision, every row exists.
    for p in 0..full {
        let row0 = ic + p * mr;
        let panel = &mut out[p * panel_len..(p + 1) * panel_len];
        for (kk, dst) in panel.chunks_exact_mut(mr).enumerate() {
            let col = pc + kk;
            for (i, d) in dst.iter_mut().enumerate() {
                *d = a[(row0 + i) * k_total + col];
            }
        }
    }
    // At most one fringe panel: real rows then explicit zero padding.
    if full < panels {
        let rows = mc_eff - full * mr;
        let row0 = ic + full * mr;
        let panel = &mut out[full * panel_len..(full + 1) * panel_len];
        for (kk, dst) in panel.chunks_exact_mut(mr).enumerate() {
            let col = pc + kk;
            for (i, d) in dst.iter_mut().take(rows).enumerate() {
                *d = a[(row0 + i) * k_total + col];
            }
            dst[rows..].fill(0.0);
        }
    }
}

/// Packs a block of `B` (row-major `k x n`, selecting rows `pc..pc+kc_eff`
/// and columns `jc..jc+nc_eff`) into `nr`-column micro-panels, zero-padding
/// the last panel.
///
/// The returned buffer holds `ceil(nc_eff / nr)` panels, each laid out as
/// `kc_eff` rows of `nr` contiguous elements.
pub fn pack_b(
    b: &[f32],
    n_total: usize,
    pc: usize,
    jc: usize,
    kc_eff: usize,
    nc_eff: usize,
    nr: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; nc_eff.div_ceil(nr) * kc_eff * nr];
    pack_b_into(&mut out, b, n_total, pc, jc, kc_eff, nc_eff, nr);
    out
}

/// Packs a block of `B` into `out` (see [`pack_b`]), which must hold at
/// least `ceil(nc_eff / nr) * kc_eff * nr` elements. Every element of that
/// prefix is written, so a reused arena buffer never leaks stale data.
///
/// # Panics
///
/// Panics if `out` is shorter than the packed block.
#[allow(clippy::too_many_arguments)]
pub fn pack_b_into(
    out: &mut [f32],
    b: &[f32],
    n_total: usize,
    pc: usize,
    jc: usize,
    kc_eff: usize,
    nc_eff: usize,
    nr: usize,
) {
    let panels = nc_eff.div_ceil(nr);
    let full = nc_eff / nr;
    let panel_len = kc_eff * nr;
    assert!(out.len() >= panels * panel_len, "pack_b_into: arena too small");
    // Full panels: each packed row is a contiguous run of the source row.
    for p in 0..full {
        let col0 = jc + p * nr;
        let panel = &mut out[p * panel_len..(p + 1) * panel_len];
        for (kk, dst) in panel.chunks_exact_mut(nr).enumerate() {
            let src = (pc + kk) * n_total + col0;
            dst.copy_from_slice(&b[src..src + nr]);
        }
    }
    // At most one fringe panel: real columns then explicit zero padding.
    if full < panels {
        let cols = nc_eff - full * nr;
        let col0 = jc + full * nr;
        let panel = &mut out[full * panel_len..(full + 1) * panel_len];
        for (kk, dst) in panel.chunks_exact_mut(nr).enumerate() {
            let src = (pc + kk) * n_total + col0;
            dst[..cols].copy_from_slice(&b[src..src + cols]);
            dst[cols..].fill(0.0);
        }
    }
}

/// Returns the `kc_eff x mr` micro-panel `ir` of a packed `Ac` buffer.
pub fn a_panel(packed: &[f32], ir: usize, kc_eff: usize, mr: usize) -> &[f32] {
    let base = ir * kc_eff * mr;
    &packed[base..base + kc_eff * mr]
}

/// Returns the `kc_eff x nr` micro-panel `jr` of a packed `Bc` buffer.
pub fn b_panel(packed: &[f32], jr: usize, kc_eff: usize, nr: usize) -> &[f32] {
    let base = jr * kc_eff * nr;
    &packed[base..base + kc_eff * nr]
}

/// Reusable packing buffers for one GEMM invocation.
///
/// The five-loop driver historically allocated a fresh `Vec<f32>` for the
/// packed `Ac` block on every `(jc, pc, ic)` iteration and for `Bc` on every
/// `(jc, pc)` iteration. A `PackArena` is allocated **once** per GEMM at the
/// blocking-derived maximum block sizes (clamped to the problem), and the
/// `pack_*` calls then write in place.
#[derive(Debug, Clone)]
pub struct PackArena {
    a: Vec<f32>,
    b: Vec<f32>,
}

impl PackArena {
    /// An arena sized for the given blocking, clamped to an `m x n x k`
    /// problem (a small problem never pays for the full `mc x kc` / `kc x
    /// nc` blocks).
    pub fn for_problem(blocking: &BlockingParams, m: usize, n: usize, k: usize) -> Self {
        let kc = blocking.kc.min(k.max(1));
        let a_len = blocking.mc.min(m.max(1)).div_ceil(blocking.mr) * blocking.mr * kc;
        let b_len = blocking.nc.min(n.max(1)).div_ceil(blocking.nr) * blocking.nr * kc;
        PackArena { a: vec![0.0; a_len], b: vec![0.0; b_len] }
    }

    /// Capacity of the `Ac` buffer in elements.
    pub fn a_capacity(&self) -> usize {
        self.a.len()
    }

    /// Both buffers at once (`Ac`, `Bc`), split-borrowed so a packed `Bc`
    /// prefix can stay borrowed while `Ac` blocks are repacked — the form
    /// the five-loop driver needs.
    pub fn buffers(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.a, &mut self.b)
    }

    /// Capacity of the `Bc` buffer in elements.
    pub fn b_capacity(&self) -> usize {
        self.b.len()
    }

    /// Packs an `A` block into the arena (see [`pack_a`]) and returns the
    /// packed prefix.
    #[allow(clippy::too_many_arguments)]
    pub fn pack_a<'s>(
        &'s mut self,
        a: &[f32],
        k_total: usize,
        ic: usize,
        pc: usize,
        mc_eff: usize,
        kc_eff: usize,
        mr: usize,
    ) -> &'s [f32] {
        let len = mc_eff.div_ceil(mr) * kc_eff * mr;
        pack_a_into(&mut self.a[..len], a, k_total, ic, pc, mc_eff, kc_eff, mr);
        &self.a[..len]
    }

    /// Packs a `B` block into the arena (see [`pack_b`]) and returns the
    /// packed prefix.
    #[allow(clippy::too_many_arguments)]
    pub fn pack_b<'s>(
        &'s mut self,
        b: &[f32],
        n_total: usize,
        pc: usize,
        jc: usize,
        kc_eff: usize,
        nc_eff: usize,
        nr: usize,
    ) -> &'s [f32] {
        let len = nc_eff.div_ceil(nr) * kc_eff * nr;
        pack_b_into(&mut self.b[..len], b, n_total, pc, jc, kc_eff, nc_eff, nr);
        &self.b[..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_is_unit_stride_per_panel() {
        // A is 6 x 4 with A[i][j] = 10 i + j.
        let (m, k) = (6usize, 4usize);
        let a: Vec<f32> = (0..m * k).map(|x| (10 * (x / k) + x % k) as f32).collect();
        let packed = pack_a(&a, k, 0, 0, m, k, 4);
        // Two panels of 4 rows (second padded by 2 rows of zeros).
        assert_eq!(packed.len(), 2 * k * 4);
        // Panel 0, k = 1 holds rows 0..4 column 1: 1, 11, 21, 31.
        let p0 = a_panel(&packed, 0, k, 4);
        assert_eq!(&p0[4..8], &[1.0, 11.0, 21.0, 31.0]);
        // Panel 1, k = 0 holds rows 4,5 then zero padding.
        let p1 = a_panel(&packed, 1, k, 4);
        assert_eq!(&p1[0..4], &[40.0, 50.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_b_is_unit_stride_per_panel() {
        // B is 3 x 7 with B[k][j] = 100 k + j.
        let (k, n) = (3usize, 7usize);
        let b: Vec<f32> = (0..k * n).map(|x| (100 * (x / n) + x % n) as f32).collect();
        let packed = pack_b(&b, n, 0, 0, k, n, 4);
        assert_eq!(packed.len(), 2 * k * 4);
        let p0 = b_panel(&packed, 0, k, 4);
        assert_eq!(&p0[0..4], &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(&p0[4..8], &[100.0, 101.0, 102.0, 103.0]);
        // Second panel: columns 4..7 then one zero-padded column.
        let p1 = b_panel(&packed, 1, k, 4);
        assert_eq!(&p1[0..4], &[4.0, 5.0, 6.0, 0.0]);
    }

    #[test]
    fn packing_a_sub_block_offsets_correctly() {
        let (m, k) = (8usize, 8usize);
        let a: Vec<f32> = (0..m * k).map(|x| x as f32).collect();
        let packed = pack_a(&a, k, 4, 2, 4, 3, 4);
        // Single panel: rows 4..8, columns 2..5.
        let p = a_panel(&packed, 0, 3, 4);
        assert_eq!(p[0], a[4 * k + 2]);
        assert_eq!(p[4], a[4 * k + 3]);
        assert_eq!(p[3], a[7 * k + 2]);
    }

    #[test]
    fn arena_packing_matches_the_allocating_routines_after_reuse() {
        let blocking = BlockingParams { mc: 8, kc: 6, nc: 12, mr: 4, nr: 4 };
        let (m, n, k) = (7usize, 11usize, 6usize);
        let a: Vec<f32> = (0..m * k).map(|x| (x as f32) * 0.5 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|x| (x as f32) * 0.25 - 1.0).collect();
        let mut arena = PackArena::for_problem(&blocking, m, n, k);
        // Dirty the arena with a large block first, then pack a smaller
        // fringe block: the reused buffer must not leak stale values.
        arena.pack_a(&a, k, 0, 0, 7, 6, 4);
        arena.pack_b(&b, n, 0, 0, 6, 11, 4);
        let got_a = arena.pack_a(&a, k, 4, 1, 3, 5, 4).to_vec();
        let want_a = pack_a(&a, k, 4, 1, 3, 5, 4);
        assert_eq!(got_a, want_a);
        let got_b = arena.pack_b(&b, n, 2, 8, 4, 3, 4).to_vec();
        let want_b = pack_b(&b, n, 2, 8, 4, 3, 4);
        assert_eq!(got_b, want_b);
    }

    #[test]
    fn arena_capacity_is_clamped_to_the_problem() {
        let blocking = BlockingParams { mc: 120, kc: 512, nc: 3072, mr: 8, nr: 12 };
        let small = PackArena::for_problem(&blocking, 10, 10, 10);
        // 10 rows -> 2 panels of 8, depth 10; 10 cols -> 1 panel of 12.
        assert_eq!(small.a_capacity(), 16 * 10);
        assert_eq!(small.b_capacity(), 12 * 10);
        let large = PackArena::for_problem(&blocking, 4000, 4000, 4000);
        assert_eq!(large.a_capacity(), 120 * 512);
        assert_eq!(large.b_capacity(), 3072 * 512);
    }
}
