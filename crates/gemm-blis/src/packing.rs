//! The BLIS packing routines.
//!
//! `Ac := A(ic:ic+mc, pc:pc+kc)` is packed into micro-panels of `mr` rows so
//! that the micro-kernel reads it with unit stride as `Ac[k][mr]`;
//! `Bc := B(pc:pc+kc, jc:jc+nc)` is packed into micro-panels of `nr` columns
//! read as `Bc[k][nr]`. Fringe panels are zero-padded to the full register
//! tile, which is how the monolithic library kernels handle edge cases.

/// Packs a block of `A` (row-major `m x k`, selecting rows `ic..ic+mc_eff`
/// and columns `pc..pc+kc_eff`) into `mr`-row micro-panels, zero-padding the
/// last panel.
///
/// The returned buffer holds `ceil(mc_eff / mr)` panels, each laid out as
/// `kc_eff` rows of `mr` contiguous elements.
pub fn pack_a(
    a: &[f32],
    k_total: usize,
    ic: usize,
    pc: usize,
    mc_eff: usize,
    kc_eff: usize,
    mr: usize,
) -> Vec<f32> {
    let panels = mc_eff.div_ceil(mr);
    let mut out = vec![0.0f32; panels * kc_eff * mr];
    for p in 0..panels {
        let base = p * kc_eff * mr;
        for kk in 0..kc_eff {
            for i in 0..mr {
                let row = ic + p * mr + i;
                let col = pc + kk;
                let v = if p * mr + i < mc_eff { a[row * k_total + col] } else { 0.0 };
                out[base + kk * mr + i] = v;
            }
        }
    }
    out
}

/// Packs a block of `B` (row-major `k x n`, selecting rows `pc..pc+kc_eff`
/// and columns `jc..jc+nc_eff`) into `nr`-column micro-panels, zero-padding
/// the last panel.
///
/// The returned buffer holds `ceil(nc_eff / nr)` panels, each laid out as
/// `kc_eff` rows of `nr` contiguous elements.
pub fn pack_b(
    b: &[f32],
    n_total: usize,
    pc: usize,
    jc: usize,
    kc_eff: usize,
    nc_eff: usize,
    nr: usize,
) -> Vec<f32> {
    let panels = nc_eff.div_ceil(nr);
    let mut out = vec![0.0f32; panels * kc_eff * nr];
    for p in 0..panels {
        let base = p * kc_eff * nr;
        for kk in 0..kc_eff {
            for j in 0..nr {
                let col = jc + p * nr + j;
                let row = pc + kk;
                let v = if p * nr + j < nc_eff { b[row * n_total + col] } else { 0.0 };
                out[base + kk * nr + j] = v;
            }
        }
    }
    out
}

/// Returns the `kc_eff x mr` micro-panel `ir` of a packed `Ac` buffer.
pub fn a_panel(packed: &[f32], ir: usize, kc_eff: usize, mr: usize) -> &[f32] {
    let base = ir * kc_eff * mr;
    &packed[base..base + kc_eff * mr]
}

/// Returns the `kc_eff x nr` micro-panel `jr` of a packed `Bc` buffer.
pub fn b_panel(packed: &[f32], jr: usize, kc_eff: usize, nr: usize) -> &[f32] {
    let base = jr * kc_eff * nr;
    &packed[base..base + kc_eff * nr]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_is_unit_stride_per_panel() {
        // A is 6 x 4 with A[i][j] = 10 i + j.
        let (m, k) = (6usize, 4usize);
        let a: Vec<f32> = (0..m * k).map(|x| (10 * (x / k) + x % k) as f32).collect();
        let packed = pack_a(&a, k, 0, 0, m, k, 4);
        // Two panels of 4 rows (second padded by 2 rows of zeros).
        assert_eq!(packed.len(), 2 * k * 4);
        // Panel 0, k = 1 holds rows 0..4 column 1: 1, 11, 21, 31.
        let p0 = a_panel(&packed, 0, k, 4);
        assert_eq!(&p0[4..8], &[1.0, 11.0, 21.0, 31.0]);
        // Panel 1, k = 0 holds rows 4,5 then zero padding.
        let p1 = a_panel(&packed, 1, k, 4);
        assert_eq!(&p1[0..4], &[40.0, 50.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_b_is_unit_stride_per_panel() {
        // B is 3 x 7 with B[k][j] = 100 k + j.
        let (k, n) = (3usize, 7usize);
        let b: Vec<f32> = (0..k * n).map(|x| (100 * (x / n) + x % n) as f32).collect();
        let packed = pack_b(&b, n, 0, 0, k, n, 4);
        assert_eq!(packed.len(), 2 * k * 4);
        let p0 = b_panel(&packed, 0, k, 4);
        assert_eq!(&p0[0..4], &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(&p0[4..8], &[100.0, 101.0, 102.0, 103.0]);
        // Second panel: columns 4..7 then one zero-padded column.
        let p1 = b_panel(&packed, 1, k, 4);
        assert_eq!(&p1[0..4], &[4.0, 5.0, 6.0, 0.0]);
    }

    #[test]
    fn packing_a_sub_block_offsets_correctly() {
        let (m, k) = (8usize, 8usize);
        let a: Vec<f32> = (0..m * k).map(|x| x as f32).collect();
        let packed = pack_a(&a, k, 4, 2, 4, 3, 4);
        // Single panel: rows 4..8, columns 2..5.
        let p = a_panel(&packed, 0, 3, 4);
        assert_eq!(p[0], a[4 * k + 2]);
        assert_eq!(p[4], a[4 * k + 3]);
        assert_eq!(p[3], a[7 * k + 2]);
    }
}
