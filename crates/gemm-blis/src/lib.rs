//! # gemm-blis
//!
//! The BLIS-like GEMM substrate of the paper's evaluation: the five-loop
//! GotoBLAS/BLIS algorithm (Fig. 1) with its packing routines and cache
//! blocking model, the baseline micro-kernels (`NEON` hand-written
//! intrinsics, `BLIS` assembly with prefetch), and the glue that plugs in
//! generated Exo micro-kernels.
//!
//! The public GEMM front door is the BLAS-grade triple of
//!
//! * [`MatRef`]/[`MatMut`] — borrowed strided views over caller-owned
//!   memory (row-major, column-major, transposed, sub-matrix — all stride
//!   choices, all zero-copy),
//! * [`GemmProblem`] — the problem descriptor
//!   `C = alpha * op(A) * op(B) + beta * C`,
//! * [`GemmExecutor`] — the trait every driver implements
//!   ([`NaiveGemm`], [`BlisGemm`], and `exo_tune::TunedGemm`).
//!
//! Two execution paths are provided:
//!
//! * [`algorithm::BlisGemm`] — functional: solves [`GemmProblem`]s on real
//!   `f32` data through packing + micro-kernel calls, used by the
//!   correctness tests and the examples;
//! * [`model::GemmSimulator`] — performance: predicts GFLOPS on the modelled
//!   Carmel core for the paper's four implementations (`ALG+NEON`,
//!   `ALG+BLIS`, `BLIS`, `ALG+EXO`), used by the figure-reproduction
//!   harnesses.

#![warn(missing_docs)]

pub mod algorithm;
pub mod baselines;
pub mod blocking;
pub mod model;
pub mod packing;
pub mod pool;
pub mod problem;
pub mod views;

pub use algorithm::{naive_gemm, BlisGemm, GemmRunner, Matrix, RunnerScratch};
pub use baselines::{
    blis_assembly_kernel, env_backend_override, exo_kernel, exo_kernel_interp, exo_kernel_simd,
    exo_kernel_superword, exo_kernel_tape, neon_intrinsics_kernel, reference_kernel, ExecBackend,
    KernelDispatch, KernelImpl, KernelKind,
};
pub use blocking::BlockingParams;
pub use exo_aot::{native_available, toolchain, Toolchain};
pub use exo_codegen::{active_isa, env_isa_override, env_once, simd_available, IsaKind};
pub use model::{modelled_gemm_cycles, GemmSimulator, Implementation, SimOptions, SimResult};
pub use packing::{pack_a, pack_a_into, pack_b, pack_b_into, PackArena};
pub use pool::{env_threads_override, PoolJob, ThreadPool};
pub use problem::{GemmExecutor, GemmProblem, GemmStats, NaiveGemm, Op};
pub use views::{MatMut, MatRef};

use std::fmt;

/// Errors produced by the GEMM driver and simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum GemmError {
    /// Matrix or panel dimensions are inconsistent.
    ShapeMismatch {
        /// Description of the mismatch.
        what: String,
    },
    /// A micro-kernel failed.
    Kernel {
        /// Kernel name.
        kernel: String,
        /// Failure description.
        message: String,
    },
    /// A GEMM backend (autotuner, kernel generator, ...) failed before
    /// dispatch.
    Backend {
        /// Backend name.
        backend: String,
        /// Failure description.
        message: String,
    },
    /// The job's execution panicked and the panic was contained to this
    /// job (per-entry isolation in the batch/service path). The job's `C`
    /// operand may be partially written.
    JobPanicked {
        /// The panic payload's message, when it carried one.
        message: String,
    },
    /// The job's deadline expired while it was still queued; it was never
    /// executed and its `C` operand is untouched.
    DeadlineExceeded {
        /// How long the job sat in the queue before expiring, in
        /// milliseconds.
        waited_ms: u64,
    },
    /// The service shut down (or its collector failed) before the job could
    /// be accepted or completed.
    ServiceShutdown,
    /// The service's bounded submission queue was full and the submission
    /// mode did not allow blocking (`try_submit`, or `submit_timeout`
    /// running out of time).
    QueueFull,
}

impl fmt::Display for GemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GemmError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            GemmError::Kernel { kernel, message } => write!(f, "micro-kernel `{kernel}` failed: {message}"),
            GemmError::Backend { backend, message } => {
                write!(f, "gemm backend `{backend}` failed: {message}")
            }
            GemmError::JobPanicked { message } => {
                write!(f, "gemm job panicked (isolated to this job): {message}")
            }
            GemmError::DeadlineExceeded { waited_ms } => {
                write!(f, "gemm job deadline exceeded after {waited_ms}ms in queue; not executed")
            }
            GemmError::ServiceShutdown => {
                write!(f, "gemm service shut down before the job completed")
            }
            GemmError::QueueFull => {
                write!(f, "gemm service queue is full (backpressure); job not accepted")
            }
        }
    }
}

impl std::error::Error for GemmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = GemmError::ShapeMismatch { what: "A is 3x4, B is 5x6".into() };
        assert!(e.to_string().contains("3x4"));
        let e = GemmError::Kernel { kernel: "EXO 8x8".into(), message: "boom".into() };
        assert!(e.to_string().contains("EXO 8x8"));
        let e = GemmError::JobPanicked { message: "index out of bounds".into() };
        assert!(e.to_string().contains("isolated"));
        let e = GemmError::DeadlineExceeded { waited_ms: 12 };
        assert!(e.to_string().contains("12ms"));
        assert!(GemmError::ServiceShutdown.to_string().contains("shut down"));
        assert!(GemmError::QueueFull.to_string().contains("full"));
    }
}
