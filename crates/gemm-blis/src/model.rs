//! The simulated-performance path: combines the BLIS loop structure, the
//! packing costs, and the `carmel-sim` core model to predict GFLOPS for the
//! four implementations the paper compares — `ALG+NEON`, `ALG+BLIS`, `BLIS`
//! (the library, with prefetching micro-kernel), and `ALG+EXO` (the BLIS-like
//! algorithm with generated, size-specialised micro-kernels).

use std::sync::Arc;

use carmel_sim::{gflops, CacheHierarchy, CacheLevel, CarmelCore, Residency};
use ukernel_gen::{KernelCache, KernelSet, MicroKernelGenerator};

use crate::baselines::{blis_assembly_kernel, exo_kernel, neon_intrinsics_kernel, KernelImpl};
use crate::blocking::BlockingParams;
use crate::GemmError;

/// The GEMM implementations of the paper's evaluation (Figs. 14–18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Implementation {
    /// BLIS-like algorithm + hand-written Neon-intrinsics micro-kernel.
    AlgNeon,
    /// BLIS-like algorithm + the BLIS assembly micro-kernel (no prefetch
    /// outside the library).
    AlgBlis,
    /// The BLIS library itself: same kernel, software prefetch of `C` inside
    /// the micro-kernel.
    BlisLib,
    /// BLIS-like algorithm + generated Exo micro-kernels, selected per
    /// problem.
    AlgExo,
}

impl Implementation {
    /// All four implementations in the order the paper plots them.
    pub fn all() -> [Implementation; 4] {
        [Implementation::AlgNeon, Implementation::AlgBlis, Implementation::BlisLib, Implementation::AlgExo]
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Implementation::AlgNeon => "ALG+NEON",
            Implementation::AlgBlis => "ALG+BLIS",
            Implementation::BlisLib => "BLIS",
            Implementation::AlgExo => "ALG+EXO",
        }
    }
}

/// Result of simulating one GEMM problem with one implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Implementation simulated.
    pub implementation: Implementation,
    /// Problem dimensions.
    pub m: usize,
    /// Problem dimensions.
    pub n: usize,
    /// Problem dimensions.
    pub k: usize,
    /// Micro-kernel shape that was used.
    pub kernel: String,
    /// Total modelled cycles.
    pub cycles: f64,
    /// Wall-clock seconds at the modelled frequency.
    pub seconds: f64,
    /// Achieved GFLOPS (`2 m n k` useful flops over the modelled time).
    pub gflops: f64,
}

/// Simulator options (the ablations called out in DESIGN.md).
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Use the analytical blocking model instead of the fixed Carmel values.
    pub analytical_blocking: bool,
    /// Force `ALG+EXO` to use only the 8x12 kernel (specialisation ablation).
    pub monolithic_exo: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { analytical_blocking: true, monolithic_exo: false }
    }
}

/// Predicts GEMM performance on the modelled Carmel core.
///
/// The `ALG+EXO` candidate kernels come from a shared
/// [`KernelCache`] instead of a hard-coded shape list: the simulator asks
/// the cache for each shape it was configured with, so several simulators
/// (or a simulator plus the `exo-tune` autotuner) built over the same cache
/// generate every shape at most once.
#[derive(Debug, Clone)]
pub struct GemmSimulator {
    core: CarmelCore,
    exo_kernels: Vec<KernelImpl>,
    options: SimOptions,
    cache: Arc<KernelCache>,
}

impl GemmSimulator {
    /// Builds a simulator with the default core, the paper's set of generated
    /// kernel shapes, and default options.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::Kernel`] if kernel generation fails.
    pub fn new() -> Result<Self, GemmError> {
        Self::with_options(CarmelCore::carmel(), SimOptions::default())
    }

    /// Builds a simulator with an explicit core model and options, a private
    /// kernel cache, and the paper's shape set.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::Kernel`] if kernel generation fails.
    pub fn with_options(core: CarmelCore, options: SimOptions) -> Result<Self, GemmError> {
        Self::with_kernel_cache(core, options, Arc::new(KernelCache::new()), &KernelSet::paper_shapes())
    }

    /// Builds a simulator whose `ALG+EXO` kernels are served by `cache` for
    /// the given tile `shapes` — the registry-driven path used by `exo-tune`.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::Kernel`] if any shape cannot be generated.
    pub fn with_kernel_cache(
        core: CarmelCore,
        options: SimOptions,
        cache: Arc<KernelCache>,
        shapes: &[(usize, usize)],
    ) -> Result<Self, GemmError> {
        let generator = MicroKernelGenerator::new(exo_isa::neon_f32());
        let mut exo_kernels = Vec::with_capacity(shapes.len());
        for &(mr, nr) in shapes {
            let kernel = cache.get_or_generate(&generator, mr, nr).map_err(|e| GemmError::Kernel {
                kernel: format!("EXO {mr}x{nr}"),
                message: e.to_string(),
            })?;
            exo_kernels.push(exo_kernel(kernel));
        }
        if exo_kernels.is_empty() {
            return Err(GemmError::Kernel {
                kernel: "EXO".into(),
                message: "the simulator needs at least one generated kernel shape".into(),
            });
        }
        Ok(GemmSimulator { core, exo_kernels, options, cache })
    }

    /// The core model in use.
    pub fn core(&self) -> &CarmelCore {
        &self.core
    }

    /// The generated kernels available to `ALG+EXO`.
    pub fn exo_kernels(&self) -> &[KernelImpl] {
        &self.exo_kernels
    }

    /// The kernel cache serving this simulator's generated kernels.
    pub fn kernel_cache(&self) -> &Arc<KernelCache> {
        &self.cache
    }

    /// Simulates one GEMM problem with one implementation.
    pub fn simulate(&self, implementation: Implementation, m: usize, n: usize, k: usize) -> SimResult {
        let kernel = self.select_kernel(implementation, m, n, k);
        let cycles = self.gemm_cycles(&kernel, m, n, k);
        let seconds = carmel_sim::cycles_to_seconds(cycles, self.core.freq_ghz);
        let useful_flops = 2.0 * m as f64 * n as f64 * k as f64;
        SimResult {
            implementation,
            m,
            n,
            k,
            kernel: kernel.name.clone(),
            cycles,
            seconds,
            gflops: gflops(useful_flops, cycles, self.core.freq_ghz),
        }
    }

    /// Simulates the paper's solo-mode experiment (Fig. 13): the micro-kernel
    /// alone, operands L1-resident, `KC = 512`, crediting only the useful
    /// `mr x nr` flops of the probed tile shape.
    pub fn simulate_solo(
        &self,
        implementation: Implementation,
        mr: usize,
        nr: usize,
        kc: usize,
    ) -> SimResult {
        let kernel = match implementation {
            Implementation::AlgExo => self
                .exo_kernels
                .iter()
                .find(|k| k.mr == mr && k.nr == nr)
                .cloned()
                .unwrap_or_else(|| self.exo_kernels[0].clone()),
            Implementation::AlgNeon => neon_intrinsics_kernel(),
            Implementation::AlgBlis => blis_assembly_kernel(false),
            Implementation::BlisLib => blis_assembly_kernel(true),
        };
        let useful_flops = 2.0 * mr as f64 * nr as f64 * kc as f64;
        let perf = self.core.kernel_cycles(
            &kernel.trace,
            kc,
            Residency::solo(),
            kernel.prefetch_c,
            kernel.per_k_overhead,
        );
        SimResult {
            implementation,
            m: mr,
            n: nr,
            k: kc,
            kernel: kernel.name,
            cycles: perf.total_cycles,
            seconds: carmel_sim::cycles_to_seconds(perf.total_cycles, self.core.freq_ghz),
            gflops: gflops(useful_flops, perf.total_cycles, self.core.freq_ghz),
        }
    }

    /// Chooses the micro-kernel an implementation uses for a problem. For
    /// `ALG+EXO` every generated kernel is evaluated with the performance
    /// model and the best one wins — the paper's "the optimization process
    /// boils down to evaluating a number of generated micro-kernels".
    pub fn select_kernel(&self, implementation: Implementation, m: usize, n: usize, k: usize) -> KernelImpl {
        match implementation {
            Implementation::AlgNeon => neon_intrinsics_kernel(),
            Implementation::AlgBlis => blis_assembly_kernel(false),
            Implementation::BlisLib => blis_assembly_kernel(true),
            Implementation::AlgExo => {
                if self.options.monolithic_exo {
                    if let Some(kernel) = self.exo_kernels.iter().find(|kk| kk.mr == 8 && kk.nr == 12) {
                        return kernel.clone();
                    }
                }
                self.exo_kernels
                    .iter()
                    .min_by(|a, b| {
                        let ca = self.gemm_cycles(a, m, n, k);
                        let cb = self.gemm_cycles(b, m, n, k);
                        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .cloned()
                    .expect("the kernel set is never empty")
            }
        }
    }

    fn blocking_for(&self, kernel: &KernelImpl) -> BlockingParams {
        if self.options.analytical_blocking {
            BlockingParams::analytical(&self.core.mem, kernel.mr, kernel.nr, 4)
        } else {
            BlockingParams::carmel_defaults(kernel.mr, kernel.nr)
        }
    }

    /// Models the total cycles of one GEMM with the BLIS loop structure,
    /// using this simulator's blocking policy for the kernel.
    pub fn modelled_cycles(&self, kernel: &KernelImpl, m: usize, n: usize, k: usize) -> f64 {
        modelled_gemm_cycles(&self.core, kernel, &self.blocking_for(kernel), m, n, k)
    }

    fn gemm_cycles(&self, kernel: &KernelImpl, m: usize, n: usize, k: usize) -> f64 {
        self.modelled_cycles(kernel, m, n, k)
    }
}

/// Models the total cycles of one `m x n x k` GEMM run through the five-loop
/// BLIS structure with the given micro-kernel and blocking parameters: the
/// packing traffic of the `Ac`/`Bc` blocks plus every micro-kernel
/// invocation (fringe tiles run the full register tile on zero-padded
/// panels).
///
/// This is the cost model shared by [`GemmSimulator`] and the `exo-tune`
/// autotuner, exposed as a free function so callers can evaluate arbitrary
/// `(kernel, blocking)` candidates — not just the simulator's own policy.
pub fn modelled_gemm_cycles(
    core: &CarmelCore,
    kernel: &KernelImpl,
    blocking: &BlockingParams,
    m: usize,
    n: usize,
    k: usize,
) -> f64 {
    if m == 0 || n == 0 || k == 0 {
        return 0.0;
    }
    let mem: &CacheHierarchy = &core.mem;
    let elem = 4.0f64;

    // Residency of the C tile: small outputs stay in cache.
    let c_bytes = (m * n) as f64 * elem;
    let c_level = if c_bytes <= mem.capacity(CacheLevel::L2) as f64 / 2.0 {
        CacheLevel::L2
    } else if c_bytes <= mem.capacity(CacheLevel::L3) as f64 / 2.0 {
        CacheLevel::L3
    } else {
        CacheLevel::Dram
    };
    let residency = Residency { a: CacheLevel::L2, b: CacheLevel::L1, c: c_level };

    let mut total = 0.0f64;
    let mut jc = 0usize;
    while jc < n {
        let nc_eff = blocking.nc.min(n - jc);
        let mut pc = 0usize;
        while pc < k {
            let kc_eff = blocking.kc.min(k - pc);
            // Pack Bc (kc x nc) from DRAM into the L3-resident buffer.
            total += mem.copy_cycles(kc_eff as f64 * nc_eff as f64 * elem, CacheLevel::Dram, CacheLevel::L3);
            let mut ic = 0usize;
            while ic < m {
                let mc_eff = blocking.mc.min(m - ic);
                // Pack Ac (mc x kc) from DRAM into the L2-resident buffer.
                total +=
                    mem.copy_cycles(mc_eff as f64 * kc_eff as f64 * elem, CacheLevel::Dram, CacheLevel::L2);
                // Micro-kernel invocations (fringe tiles run the full
                // register tile on zero-padded panels).
                let tiles = (nc_eff.div_ceil(kernel.nr) * mc_eff.div_ceil(kernel.mr)) as f64;
                let perf = core.kernel_cycles(
                    &kernel.trace,
                    kc_eff,
                    residency,
                    kernel.prefetch_c,
                    kernel.per_k_overhead,
                );
                total += tiles * perf.total_cycles;
                ic += mc_eff;
            }
            pc += kc_eff;
        }
        jc += nc_eff;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulator() -> GemmSimulator {
        GemmSimulator::new().unwrap()
    }

    #[test]
    fn solo_mode_reproduces_fig13_shape() {
        let sim = simulator();
        // At the native 8x12 shape all three kernels are close, EXO >= BLIS >= NEON.
        let exo = sim.simulate_solo(Implementation::AlgExo, 8, 12, 512).gflops;
        let blis = sim.simulate_solo(Implementation::BlisLib, 8, 12, 512).gflops;
        let neon = sim.simulate_solo(Implementation::AlgNeon, 8, 12, 512).gflops;
        assert!(exo >= blis && blis >= neon, "exo {exo}, blis {blis}, neon {neon}");
        assert!(neon > 0.75 * exo, "all three are close at 8x12");
        assert!(exo > 28.0 && exo < 36.8);

        // On edge cases the specialised kernels win big.
        for &(mr, nr) in &[(4usize, 4usize), (4, 8), (4, 12), (8, 4), (8, 8)] {
            let exo = sim.simulate_solo(Implementation::AlgExo, mr, nr, 512).gflops;
            let blis = sim.simulate_solo(Implementation::BlisLib, mr, nr, 512).gflops;
            let neon = sim.simulate_solo(Implementation::AlgNeon, mr, nr, 512).gflops;
            assert!(exo > blis && exo > neon, "{mr}x{nr}: exo {exo} blis {blis} neon {neon}");
        }
    }

    #[test]
    fn square_gemm_reproduces_fig14_ordering() {
        let sim = simulator();
        let n = 1000;
        let blis = sim.simulate(Implementation::BlisLib, n, n, n).gflops;
        let alg_blis = sim.simulate(Implementation::AlgBlis, n, n, n).gflops;
        let alg_neon = sim.simulate(Implementation::AlgNeon, n, n, n).gflops;
        let alg_exo = sim.simulate(Implementation::AlgExo, n, n, n).gflops;
        // Paper Fig. 14: BLIS best (prefetch), ALG+EXO above the other ALG+
        // variants, ALG+NEON last.
        assert!(blis > alg_exo, "blis {blis} vs alg+exo {alg_exo}");
        assert!(alg_exo > alg_blis, "alg+exo {alg_exo} vs alg+blis {alg_blis}");
        assert!(alg_blis > alg_neon, "alg+blis {alg_blis} vs alg+neon {alg_neon}");
        // All in a plausible band below peak.
        for g in [blis, alg_blis, alg_neon, alg_exo] {
            assert!(g > 15.0 && g < sim.core().peak_gflops(), "gflops {g}");
        }
    }

    #[test]
    fn exo_kernel_selection_matches_the_papers_choices() {
        let sim = simulator();
        // The paper reports using 8x4 / 8x8 kernels for the square problems.
        let k1000 = sim.select_kernel(Implementation::AlgExo, 1000, 1000, 1000);
        assert!(k1000.name.contains("8x8") || k1000.name.contains("8x4"), "{}", k1000.name);
        // Monolithic implementations always use 8x12.
        let kb = sim.select_kernel(Implementation::BlisLib, 1000, 1000, 1000);
        assert_eq!((kb.mr, kb.nr), (8, 12));
    }

    #[test]
    fn rectangular_dnn_layers_favour_specialised_kernels() {
        let sim = simulator();
        // ResNet50 layer 17 (49 x 512 x 4608): ALG+EXO must beat the
        // non-prefetching monolithic variants.
        let exo = sim.simulate(Implementation::AlgExo, 49, 512, 4608).gflops;
        let alg_blis = sim.simulate(Implementation::AlgBlis, 49, 512, 4608).gflops;
        let alg_neon = sim.simulate(Implementation::AlgNeon, 49, 512, 4608).gflops;
        assert!(exo > alg_blis && exo > alg_neon, "exo {exo}, alg+blis {alg_blis}, alg+neon {alg_neon}");
    }

    #[test]
    fn monolithic_exo_ablation_hurts_edge_cases() {
        let core = CarmelCore::carmel();
        let specialised = GemmSimulator::with_options(core.clone(), SimOptions::default()).unwrap();
        let monolithic =
            GemmSimulator::with_options(core, SimOptions { monolithic_exo: true, ..SimOptions::default() })
                .unwrap();
        let g_spec = specialised.simulate(Implementation::AlgExo, 49, 512, 4608).gflops;
        let g_mono = monolithic.simulate(Implementation::AlgExo, 49, 512, 4608).gflops;
        assert!(g_spec >= g_mono, "specialised {g_spec} vs monolithic {g_mono}");
    }

    #[test]
    fn simulation_results_carry_problem_metadata() {
        let sim = simulator();
        let r = sim.simulate(Implementation::AlgExo, 196, 256, 1024);
        assert_eq!((r.m, r.n, r.k), (196, 256, 1024));
        assert!(r.seconds > 0.0);
        assert!(r.cycles > 0.0);
        assert!(!r.kernel.is_empty());
        assert_eq!(Implementation::AlgExo.label(), "ALG+EXO");
        assert_eq!(Implementation::all().len(), 4);
    }

    #[test]
    fn zero_sized_problems_cost_nothing() {
        let sim = simulator();
        let r = sim.simulate(Implementation::BlisLib, 0, 10, 10);
        assert_eq!(r.cycles, 0.0);
        assert_eq!(r.gflops, 0.0);
    }
}
