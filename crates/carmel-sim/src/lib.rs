//! # carmel-sim
//!
//! A performance model of the paper's evaluation platform — one core of the
//! NVIDIA Carmel (ARM v8.2) processor on a Jetson AGX Xavier — used in place
//! of the physical board.
//!
//! The model has two layers:
//!
//! * [`CarmelCore`]: an issue/throughput/latency model of the core's vector
//!   pipelines that turns a micro-kernel `KernelTrace` into cycles per
//!   invocation ([`CarmelCore::kernel_cycles`]);
//! * [`CacheHierarchy`]: capacities, latencies and bandwidths of the L1/L2/L3
//!   caches and DRAM, used to charge operand traffic and packing
//!   ([`CacheHierarchy::stream_cycles`], [`CacheHierarchy::copy_cycles`]).
//!
//! The absolute numbers are calibrated to the Carmel's public parameters
//! (2 x 128-bit FMA pipes at 2.3 GHz, 64 KiB L1D, 2 MiB L2 per cluster,
//! 4 MiB L3), giving a single-core FP32 peak of 36.8 GFLOPS. The goal is the
//! *shape* of the paper's figures — which implementation wins where and by
//! roughly what factor — not cycle-exact agreement with the testbed.

#![warn(missing_docs)]

pub mod core_model;
pub mod memory;

pub use core_model::{CarmelCore, KernelPerf, Residency};
pub use memory::{CacheHierarchy, CacheLevel};

/// Converts cycles at a clock frequency into seconds.
pub fn cycles_to_seconds(cycles: f64, freq_ghz: f64) -> f64 {
    cycles / (freq_ghz * 1.0e9)
}

/// Computes GFLOPS from a flop count and a cycle count at a clock frequency.
pub fn gflops(flops: f64, cycles: f64, freq_ghz: f64) -> f64 {
    if cycles <= 0.0 {
        return 0.0;
    }
    flops / cycles_to_seconds(cycles, freq_ghz) / 1.0e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let secs = cycles_to_seconds(2.3e9, 2.3);
        assert!((secs - 1.0).abs() < 1e-12);
        let g = gflops(36.8e9, 2.3e9, 2.3);
        assert!((g - 36.8).abs() < 1e-9);
        assert_eq!(gflops(1.0, 0.0, 2.3), 0.0);
    }
}
