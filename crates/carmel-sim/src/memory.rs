//! Cache-hierarchy model: capacities, load-to-use latencies, and sustained
//! bandwidths for the Carmel memory system, plus helpers to charge streaming
//! and copy (packing) traffic.

/// A level of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheLevel {
    /// 64 KiB L1 data cache.
    L1,
    /// 2 MiB L2 cache.
    L2,
    /// 4 MiB shared L3 cache.
    L3,
    /// LPDDR4x main memory.
    Dram,
}

/// Capacities, latencies and bandwidths of the modelled memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheHierarchy {
    /// L1 data-cache capacity in bytes.
    pub l1_bytes: usize,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// L3 capacity in bytes.
    pub l3_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Load-to-use latency per level, in cycles.
    pub latency_cycles: [f64; 4],
    /// Sustained bandwidth per level, in bytes per cycle.
    pub bandwidth_bytes_per_cycle: [f64; 4],
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        CacheHierarchy::carmel()
    }
}

impl CacheHierarchy {
    /// The Carmel / Jetson AGX Xavier memory system.
    pub fn carmel() -> Self {
        CacheHierarchy {
            l1_bytes: 64 * 1024,
            l2_bytes: 2 * 1024 * 1024,
            l3_bytes: 4 * 1024 * 1024,
            line_bytes: 64,
            // L1, L2, L3, DRAM.
            latency_cycles: [4.0, 14.0, 38.0, 160.0],
            bandwidth_bytes_per_cycle: [32.0, 24.0, 16.0, 10.0],
        }
    }

    fn index(level: CacheLevel) -> usize {
        match level {
            CacheLevel::L1 => 0,
            CacheLevel::L2 => 1,
            CacheLevel::L3 => 2,
            CacheLevel::Dram => 3,
        }
    }

    /// Capacity of a level in bytes (DRAM is unbounded).
    pub fn capacity(&self, level: CacheLevel) -> usize {
        match level {
            CacheLevel::L1 => self.l1_bytes,
            CacheLevel::L2 => self.l2_bytes,
            CacheLevel::L3 => self.l3_bytes,
            CacheLevel::Dram => usize::MAX,
        }
    }

    /// Load-to-use latency of a level in cycles.
    pub fn latency(&self, level: CacheLevel) -> f64 {
        self.latency_cycles[Self::index(level)]
    }

    /// Sustained bandwidth of a level in bytes per cycle.
    pub fn bandwidth(&self, level: CacheLevel) -> f64 {
        self.bandwidth_bytes_per_cycle[Self::index(level)]
    }

    /// The innermost level whose capacity can hold `bytes` (together with a
    /// `working_set` of other data competing for the same level).
    pub fn residency_for(&self, bytes: usize, working_set: usize) -> CacheLevel {
        let total = bytes.saturating_add(working_set);
        if total <= self.l1_bytes {
            CacheLevel::L1
        } else if total <= self.l2_bytes {
            CacheLevel::L2
        } else if total <= self.l3_bytes {
            CacheLevel::L3
        } else {
            CacheLevel::Dram
        }
    }

    /// Cycles to stream `bytes` from a level assuming the hardware
    /// prefetchers hide all but the bandwidth cost (sequential access).
    pub fn stream_cycles(&self, bytes: f64, from: CacheLevel) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        bytes / self.bandwidth(from)
    }

    /// Cycles to stream `bytes` with a cold start: one latency to first use
    /// plus the bandwidth cost.
    pub fn stream_cycles_cold(&self, bytes: f64, from: CacheLevel) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.latency(from) + self.stream_cycles(bytes, from)
    }

    /// Cycles to copy `bytes` from one level to another (a packing routine):
    /// read bandwidth + write bandwidth + a small per-line overhead for the
    /// address arithmetic of the packing loop.
    pub fn copy_cycles(&self, bytes: f64, from: CacheLevel, to: CacheLevel) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let lines = (bytes / self.line_bytes as f64).ceil();
        self.stream_cycles(bytes, from) + self.stream_cycles(bytes, to) + 0.5 * lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carmel_capacities() {
        let m = CacheHierarchy::carmel();
        assert_eq!(m.capacity(CacheLevel::L1), 64 * 1024);
        assert_eq!(m.capacity(CacheLevel::L2), 2 * 1024 * 1024);
        assert_eq!(m.capacity(CacheLevel::L3), 4 * 1024 * 1024);
        assert_eq!(m.capacity(CacheLevel::Dram), usize::MAX);
    }

    #[test]
    fn latency_and_bandwidth_are_monotone() {
        let m = CacheHierarchy::carmel();
        assert!(m.latency(CacheLevel::L1) < m.latency(CacheLevel::L2));
        assert!(m.latency(CacheLevel::L2) < m.latency(CacheLevel::L3));
        assert!(m.latency(CacheLevel::L3) < m.latency(CacheLevel::Dram));
        assert!(m.bandwidth(CacheLevel::L1) > m.bandwidth(CacheLevel::Dram));
    }

    #[test]
    fn residency_accounts_for_working_set() {
        let m = CacheHierarchy::carmel();
        assert_eq!(m.residency_for(16 * 1024, 0), CacheLevel::L1);
        assert_eq!(m.residency_for(16 * 1024, 60 * 1024), CacheLevel::L2);
        assert_eq!(m.residency_for(3 * 1024 * 1024, 0), CacheLevel::L3);
        assert_eq!(m.residency_for(8 * 1024 * 1024, 0), CacheLevel::Dram);
    }

    #[test]
    fn streaming_costs_scale_with_bytes() {
        let m = CacheHierarchy::carmel();
        let one = m.stream_cycles(1024.0, CacheLevel::L2);
        let two = m.stream_cycles(2048.0, CacheLevel::L2);
        assert!((two - 2.0 * one).abs() < 1e-9);
        assert_eq!(m.stream_cycles(0.0, CacheLevel::Dram), 0.0);
        assert!(m.stream_cycles_cold(1024.0, CacheLevel::Dram) > m.stream_cycles(1024.0, CacheLevel::Dram));
    }

    #[test]
    fn copy_includes_both_directions() {
        let m = CacheHierarchy::carmel();
        let c = m.copy_cycles(4096.0, CacheLevel::Dram, CacheLevel::L2);
        assert!(c > m.stream_cycles(4096.0, CacheLevel::Dram));
        assert_eq!(m.copy_cycles(0.0, CacheLevel::Dram, CacheLevel::L2), 0.0);
    }
}
