//! Core pipeline model: turns a micro-kernel machine-operation trace into
//! cycles on a Carmel-like core.
//!
//! The model is a steady-state throughput/latency bound, the standard way to
//! reason about GEMM micro-kernels: the `k`-loop body issues a fixed mix of
//! vector FMAs, vector loads/stores and scalar bookkeeping every iteration,
//! and the iteration time is the maximum of
//!
//! * FMA issue (`#FMA / pipes`),
//! * FMA dependency latency (`latency` when every FMA has its own
//!   accumulator, which all kernels in this workspace do),
//! * load-port and store-port pressure,
//! * front-end issue width,
//! * operand streaming bandwidth from wherever the operands reside,
//!
//! plus a fixed loop-control overhead. The `C` register tile loads/stores of
//! the prologue/epilogue are charged once per invocation, with or without the
//! latency-hiding effect of software prefetch (the distinguishing feature of
//! the BLIS library kernel in the paper's Figs. 14–18).

use exo_codegen::KernelTrace;
use exo_ir::InstrClass;

use crate::memory::{CacheHierarchy, CacheLevel};

/// Where each GEMM operand resides when the micro-kernel streams it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Residency {
    /// The packed `Ac` panel (L2 in the BLIS blocking).
    pub a: CacheLevel,
    /// The packed `Bc` panel (L3 in the BLIS blocking).
    pub b: CacheLevel,
    /// The `C` tile (streamed from main memory for large problems).
    pub c: CacheLevel,
}

impl Residency {
    /// Everything in L1 — the paper's solo-mode micro-kernel experiment.
    pub fn solo() -> Self {
        Residency { a: CacheLevel::L1, b: CacheLevel::L1, c: CacheLevel::L1 }
    }

    /// The steady-state residency of the BLIS blocking for large problems:
    /// `Ac` in L2, `Bc` in L3, `C` in DRAM.
    pub fn blis_steady_state() -> Self {
        Residency { a: CacheLevel::L2, b: CacheLevel::L3, c: CacheLevel::Dram }
    }
}

/// Cycle breakdown of one micro-kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelPerf {
    /// Cycles of one `k`-loop iteration.
    pub per_k_cycles: f64,
    /// Cycles of the prologue + epilogue (the `C` tile traffic).
    pub once_cycles: f64,
    /// Fixed call overhead.
    pub call_cycles: f64,
    /// Total cycles for the whole invocation.
    pub total_cycles: f64,
    /// Floating-point operations the trace performs in the invocation.
    pub flops: f64,
}

/// Issue/latency/throughput parameters of the modelled core.
#[derive(Debug, Clone, PartialEq)]
pub struct CarmelCore {
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Number of 128-bit vector FMA pipes.
    pub fma_pipes: f64,
    /// Number of load ports.
    pub load_ports: f64,
    /// Number of store ports.
    pub store_ports: f64,
    /// Front-end issue width (micro-ops per cycle).
    pub issue_width: f64,
    /// FMA result latency in cycles.
    pub fma_latency: f64,
    /// Loop-control overhead per `k` iteration (increment, compare, branch).
    pub loop_overhead: f64,
    /// Fixed overhead per micro-kernel invocation (call, prologue setup).
    pub call_overhead: f64,
    /// Vector register width in bytes.
    pub vector_bytes: usize,
    /// The memory system.
    pub mem: CacheHierarchy,
}

impl Default for CarmelCore {
    fn default() -> Self {
        CarmelCore::carmel()
    }
}

impl CarmelCore {
    /// The NVIDIA Carmel core of the Jetson AGX Xavier at 2.3 GHz.
    pub fn carmel() -> Self {
        CarmelCore {
            freq_ghz: 2.3,
            fma_pipes: 2.0,
            load_ports: 2.0,
            store_ports: 1.0,
            issue_width: 4.0,
            fma_latency: 4.0,
            loop_overhead: 2.0,
            call_overhead: 30.0,
            vector_bytes: 16,
            mem: CacheHierarchy::carmel(),
        }
    }

    /// Single-core FP32 peak in GFLOPS (2 pipes x 4 lanes x 2 flops x f GHz).
    pub fn peak_gflops(&self) -> f64 {
        let lanes = self.vector_bytes as f64 / 4.0;
        self.fma_pipes * lanes * 2.0 * self.freq_ghz
    }

    /// Cycles for one invocation of a micro-kernel described by `trace` with
    /// `kc` iterations of its `k` loop.
    ///
    /// `prefetch_c` models a kernel that software-prefetches the next `C`
    /// tile (the BLIS library kernel); `extra_per_k` adds bookkeeping cycles
    /// per iteration (edge-case handling of monolithic kernels, suboptimal
    /// scheduling of compiler-generated intrinsics code, ...).
    pub fn kernel_cycles(
        &self,
        trace: &KernelTrace,
        kc: usize,
        residency: Residency,
        prefetch_c: bool,
        extra_per_k: f64,
    ) -> KernelPerf {
        let per_k = self.per_k_cycles(trace, residency) + extra_per_k;
        let once = self.once_cycles(trace, residency, prefetch_c);
        let total = self.call_overhead + once + per_k * kc as f64;
        KernelPerf {
            per_k_cycles: per_k,
            once_cycles: once,
            call_cycles: self.call_overhead,
            total_cycles: total,
            flops: trace.total_flops(kc as u64) as f64,
        }
    }

    /// GFLOPS of a kernel run back-to-back in the paper's solo mode, crediting
    /// only `useful_flops` per invocation (monolithic kernels on edge cases
    /// waste part of the tile).
    pub fn solo_gflops(&self, trace: &KernelTrace, kc: usize, useful_flops: f64) -> f64 {
        let perf = self.kernel_cycles(trace, kc, Residency::solo(), false, 0.0);
        crate::gflops(useful_flops, perf.total_cycles, self.freq_ghz)
    }

    fn per_k_cycles(&self, trace: &KernelTrace, residency: Residency) -> f64 {
        let mut fma_units = 0.0f64; // pipe occupancy (one slot per FMA, vector or scalar)
        let mut fma_count = 0.0f64;
        let mut load_units = 0.0f64;
        let mut store_units = 0.0f64;
        let mut total_ops = 0.0f64;
        let mut bw_cycles = 0.0f64;
        for op in &trace.per_k {
            let n = op.count as f64;
            total_ops += n;
            match op.class {
                InstrClass::VecFma | InstrClass::VecMul | InstrClass::VecAdd => {
                    fma_units += n;
                    fma_count += n;
                    // Broadcast FMAs with a memory operand consume a load slot
                    // and memory bandwidth as well.
                    if let Some(buf) = &op.buffer {
                        load_units += n;
                        total_ops += n;
                        let level = self.operand_level(buf.as_str(), residency);
                        bw_cycles += n * op.elem.size_bytes() as f64 / self.mem.bandwidth(level);
                    }
                }
                InstrClass::VecLoad => {
                    load_units += n;
                    let level = op
                        .buffer
                        .as_ref()
                        .map(|b| self.operand_level(b.as_str(), residency))
                        .unwrap_or(CacheLevel::L1);
                    bw_cycles += n * op.bytes() as f64 / self.mem.bandwidth(level);
                }
                InstrClass::VecStore => {
                    store_units += n;
                    let level = op
                        .buffer
                        .as_ref()
                        .map(|b| self.operand_level(b.as_str(), residency))
                        .unwrap_or(CacheLevel::L1);
                    bw_cycles += n * op.bytes() as f64 / self.mem.bandwidth(level);
                }
                InstrClass::Prefetch => {
                    load_units += 0.5 * n;
                }
                InstrClass::VecBroadcast | InstrClass::VecZero | InstrClass::Other => {}
            }
        }
        // Every FMA in the kernels generated here has its own accumulator, so
        // the dependency bound is one full latency per iteration (the next
        // iteration's FMA on the same accumulator must wait for this one).
        let latency_bound = if fma_count > 0.0 { self.fma_latency } else { 0.0 };
        let fma_bound = fma_units / self.fma_pipes;
        let load_bound = load_units / self.load_ports;
        let store_bound = store_units / self.store_ports;
        let issue_bound = total_ops / self.issue_width;
        let bound =
            fma_bound.max(latency_bound).max(load_bound).max(store_bound).max(issue_bound).max(bw_cycles);
        bound + self.loop_overhead
    }

    fn once_cycles(&self, trace: &KernelTrace, residency: Residency, prefetch_c: bool) -> f64 {
        let mut load_units = 0.0f64;
        let mut store_units = 0.0f64;
        let mut ops = 0.0f64;
        let mut bytes = 0.0f64;
        for op in trace.prologue.iter().chain(&trace.epilogue) {
            let n = op.count as f64;
            ops += n;
            match op.class {
                InstrClass::VecLoad => {
                    load_units += n;
                    bytes += n * op.bytes() as f64;
                }
                InstrClass::VecStore => {
                    store_units += n;
                    bytes += n * op.bytes() as f64;
                }
                InstrClass::VecFma | InstrClass::VecMul | InstrClass::VecAdd => {}
                _ => {}
            }
        }
        let issue =
            (load_units / self.load_ports).max(store_units / self.store_ports).max(ops / self.issue_width);
        // Memory cost of touching the C tile. With software prefetch the
        // latency is overlapped with the k loop and only bandwidth remains;
        // without it, the misses are exposed (two outstanding misses at a
        // time on this core).
        let level = residency.c;
        let lines = (bytes / self.mem.line_bytes as f64).ceil();
        let mem_cycles = if prefetch_c || level == CacheLevel::L1 {
            self.mem.stream_cycles(bytes, level)
        } else {
            self.mem.stream_cycles(bytes, level) + lines * self.mem.latency(level) / 2.0
        };
        issue + mem_cycles
    }

    fn operand_level(&self, buffer: &str, residency: Residency) -> CacheLevel {
        // Packed operand naming convention of the GEMM driver: the A panel is
        // `Ac`, the B panel `Bc`, the output tile `C`. Anything else (staged
        // register tiles spilled by a scalar kernel) is assumed L1-resident.
        match buffer {
            "Ac" => residency.a,
            "Bc" => residency.b,
            "C" | "Cb" => residency.c,
            _ => CacheLevel::L1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_codegen::MachineOp;
    use exo_ir::ScalarType;

    /// The per-k trace of the paper's 8x12 kernel: 2 A loads, 3 B loads,
    /// 24 lane-indexed FMAs; prologue/epilogue: 24 C loads / stores.
    fn trace_8x12() -> KernelTrace {
        let vec = |class, buffer: Option<&str>, count| MachineOp {
            class,
            lanes: 4,
            elem: ScalarType::F32,
            buffer: buffer.map(|b| b.into()),
            count,
        };
        KernelTrace {
            name: "uk_8x12".into(),
            prologue: vec![vec(InstrClass::VecLoad, Some("C"), 24)],
            per_k: vec![
                vec(InstrClass::VecLoad, Some("Ac"), 2),
                vec(InstrClass::VecLoad, Some("Bc"), 3),
                vec(InstrClass::VecFma, None, 24),
            ],
            epilogue: vec![vec(InstrClass::VecStore, Some("C"), 24)],
            inner_loop_levels: 3,
        }
    }

    fn trace_4x4_specialised() -> KernelTrace {
        let vec = |class, buffer: Option<&str>, count| MachineOp {
            class,
            lanes: 4,
            elem: ScalarType::F32,
            buffer: buffer.map(|b| b.into()),
            count,
        };
        KernelTrace {
            name: "uk_4x4".into(),
            prologue: vec![vec(InstrClass::VecLoad, Some("C"), 4)],
            per_k: vec![
                vec(InstrClass::VecLoad, Some("Ac"), 1),
                vec(InstrClass::VecLoad, Some("Bc"), 1),
                vec(InstrClass::VecFma, None, 4),
            ],
            epilogue: vec![vec(InstrClass::VecStore, Some("C"), 4)],
            inner_loop_levels: 2,
        }
    }

    #[test]
    fn peak_matches_the_carmel() {
        let core = CarmelCore::carmel();
        assert!((core.peak_gflops() - 36.8).abs() < 1e-9);
    }

    #[test]
    fn solo_8x12_lands_in_the_papers_range() {
        let core = CarmelCore::carmel();
        let g = core.solo_gflops(&trace_8x12(), 512, 2.0 * 8.0 * 12.0 * 512.0);
        assert!(g > 28.0 && g < 36.0, "8x12 solo GFLOPS = {g}");
        // And below peak.
        assert!(g < core.peak_gflops());
    }

    #[test]
    fn specialised_edge_kernel_beats_monolithic_on_4x4() {
        let core = CarmelCore::carmel();
        let useful = 2.0 * 4.0 * 4.0 * 512.0;
        // Monolithic 8x12 kernel wastes most of the tile.
        let monolithic = core.solo_gflops(&trace_8x12(), 512, useful);
        // Specialised 4x4 kernel only does the useful work.
        let specialised = core.solo_gflops(&trace_4x4_specialised(), 512, useful);
        assert!(
            specialised > 1.5 * monolithic,
            "specialised {specialised} should clearly beat monolithic {monolithic}"
        );
        // But the small kernel cannot reach the 8x12 efficiency (not enough
        // accumulators to cover the FMA latency).
        let full = core.solo_gflops(&trace_8x12(), 512, 2.0 * 8.0 * 12.0 * 512.0);
        assert!(specialised < full);
    }

    #[test]
    fn edge_case_overhead_reduces_throughput() {
        let core = CarmelCore::carmel();
        let base = core.kernel_cycles(&trace_8x12(), 512, Residency::solo(), false, 0.0);
        let with_overhead = core.kernel_cycles(&trace_8x12(), 512, Residency::solo(), false, 1.0);
        assert!(with_overhead.total_cycles > base.total_cycles);
        assert!((with_overhead.per_k_cycles - base.per_k_cycles - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prefetch_helps_when_c_lives_in_dram() {
        let core = CarmelCore::carmel();
        let resid = Residency::blis_steady_state();
        let without = core.kernel_cycles(&trace_8x12(), 512, resid, false, 0.0);
        let with = core.kernel_cycles(&trace_8x12(), 512, resid, true, 0.0);
        assert!(with.total_cycles < without.total_cycles);
        // The k loop itself is unaffected; only the C tile cost changes.
        assert!((with.per_k_cycles - without.per_k_cycles).abs() < 1e-9);
        assert!(with.once_cycles < without.once_cycles);
    }

    #[test]
    fn far_operands_cost_more_than_near_operands() {
        let core = CarmelCore::carmel();
        let solo = core.kernel_cycles(&trace_8x12(), 512, Residency::solo(), false, 0.0);
        let steady = core.kernel_cycles(&trace_8x12(), 512, Residency::blis_steady_state(), false, 0.0);
        assert!(steady.total_cycles >= solo.total_cycles);
    }

    #[test]
    fn flops_accounting_matches_trace() {
        let core = CarmelCore::carmel();
        let perf = core.kernel_cycles(&trace_8x12(), 100, Residency::solo(), false, 0.0);
        assert_eq!(perf.flops, (24 * 8 * 100) as f64);
        assert!(perf.total_cycles > perf.once_cycles);
    }
}
