//! Interned-ish symbol names used for variables, buffers and procedure arguments.
//!
//! Symbols are thin wrappers around [`String`]. They exist so that the rest of
//! the IR can talk about "names" as a distinct concept from arbitrary strings,
//! and so that fresh-name generation has a single home.

use std::fmt;

/// A variable, buffer, or argument name appearing in the IR.
///
/// `Sym` is deliberately cheap to construct from string literals so that
/// builder code stays readable:
///
/// ```
/// use exo_ir::Sym;
/// let s: Sym = "itt".into();
/// assert_eq!(s.as_str(), "itt");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(String);

impl Sym {
    /// Creates a symbol from anything string-like.
    pub fn new(name: impl Into<String>) -> Self {
        Sym(name.into())
    }

    /// Returns the symbol's textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns a fresh symbol derived from `self` that does not collide with
    /// any name in `taken`.
    ///
    /// The derived name is `<base>`, `<base>_1`, `<base>_2`, ... — whichever
    /// is first not present in `taken`.
    pub fn freshen<'a, I>(&self, taken: I) -> Sym
    where
        I: IntoIterator<Item = &'a Sym>,
    {
        let taken: std::collections::HashSet<&str> = taken.into_iter().map(|s| s.as_str()).collect();
        if !taken.contains(self.as_str()) {
            return self.clone();
        }
        for i in 1.. {
            let candidate = format!("{}_{}", self.0, i);
            if !taken.contains(candidate.as_str()) {
                return Sym(candidate);
            }
        }
        unreachable!("freshen iterates an unbounded counter")
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym(s.to_owned())
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        Sym(s)
    }
}

impl From<&Sym> for Sym {
    fn from(s: &Sym) -> Self {
        s.clone()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_input() {
        let s = Sym::new("C_reg");
        assert_eq!(s.to_string(), "C_reg");
        assert_eq!(s.as_str(), "C_reg");
    }

    #[test]
    fn equality_with_str() {
        let s: Sym = "jt".into();
        assert_eq!(s, "jt");
        assert_ne!(s, "jtt");
    }

    #[test]
    fn freshen_avoids_collisions() {
        let taken: Vec<Sym> = vec!["x".into(), "x_1".into()];
        let fresh = Sym::new("x").freshen(&taken);
        assert_eq!(fresh, "x_2");
    }

    #[test]
    fn freshen_keeps_name_when_free() {
        let taken: Vec<Sym> = vec!["y".into()];
        let fresh = Sym::new("x").freshen(&taken);
        assert_eq!(fresh, "x");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Sym::new("a");
        let b = Sym::new("b");
        assert!(a < b);
    }
}
