//! A reference interpreter for procedures.
//!
//! The interpreter gives every procedure — scheduled or not — an executable
//! semantics, which is what lets the test-suite check that scheduling rewrites
//! are behaviour-preserving: run the original and the transformed procedure on
//! the same inputs and compare the output buffers.
//!
//! Values are carried in `f64` and rounded to the destination buffer's storage
//! precision on every store, so `f32` and `f16` kernels behave faithfully.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::Expr;
use crate::proc::{ArgKind, Proc};
use crate::stmt::{CallArg, Stmt, WAccess};
use crate::sym::Sym;
use crate::types::ScalarType;

/// A dense, row-major tensor of values at model precision.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorData {
    /// Dimension extents.
    pub dims: Vec<usize>,
    /// Row-major element storage (`dims.iter().product()` elements).
    pub data: Vec<f64>,
    /// Storage precision applied on every store.
    pub ty: ScalarType,
}

impl TensorData {
    /// Creates a zero-filled tensor.
    pub fn zeros(ty: ScalarType, dims: Vec<usize>) -> Self {
        let len = dims.iter().product();
        TensorData { dims, data: vec![0.0; len], ty }
    }

    /// Creates a tensor filled by `f(flat_index)`.
    pub fn from_fn(ty: ScalarType, dims: Vec<usize>, mut f: impl FnMut(usize) -> f64) -> Self {
        let len: usize = dims.iter().product();
        let data = (0..len).map(|i| ty.round(f(i))).collect();
        TensorData { dims, data, ty }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major flat offset of a multi-dimensional index, or `None` if out of
    /// bounds.
    pub fn flat_index(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() != self.dims.len() {
            return None;
        }
        let mut flat = 0usize;
        for (i, (&x, &d)) in idx.iter().zip(&self.dims).enumerate() {
            if x < 0 || x as usize >= d {
                let _ = i;
                return None;
            }
            flat = flat * d + x as usize;
        }
        Some(flat)
    }

    /// Reads the element at `idx`.
    pub fn get(&self, idx: &[i64]) -> Option<f64> {
        self.flat_index(idx).map(|i| self.data[i])
    }

    /// Writes the element at `idx`, rounding to the storage precision.
    pub fn set(&mut self, idx: &[i64], value: f64) -> bool {
        match self.flat_index(idx) {
            Some(i) => {
                self.data[i] = self.ty.round(value);
                true
            }
            None => false,
        }
    }
}

/// A runtime argument passed to [`run_proc`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Value for a `size` parameter.
    Size(i64),
    /// Value for an `index` parameter.
    Index(i64),
    /// Buffer for a tensor parameter (mutated in place).
    Tensor(TensorData),
}

impl ArgValue {
    /// Convenience accessor for tensors.
    pub fn as_tensor(&self) -> Option<&TensorData> {
        match self {
            ArgValue::Tensor(t) => Some(t),
            _ => None,
        }
    }
}

/// Counters accumulated while interpreting, used by tests and by reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Scalar floating-point multiply-accumulate style operations executed
    /// (one per `Reduce` of a product, two flops each).
    pub reduces: u64,
    /// Scalar assignments executed.
    pub assigns: u64,
    /// Instruction calls executed.
    pub calls: u64,
    /// Loop iterations executed.
    pub iterations: u64,
}

/// Errors produced by the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// Number of runtime arguments does not match the procedure signature.
    ArgCountMismatch {
        /// Procedure name.
        proc: String,
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// A runtime argument has the wrong kind (e.g. tensor where size expected).
    ArgKindMismatch {
        /// Argument name.
        name: Sym,
    },
    /// A symbol was not bound at use time.
    Unbound {
        /// The symbol.
        name: Sym,
    },
    /// A buffer access was out of bounds.
    OutOfBounds {
        /// Buffer name.
        buf: Sym,
        /// The offending index.
        idx: Vec<i64>,
        /// Buffer extents.
        dims: Vec<usize>,
    },
    /// An expression used in index position did not evaluate to an integer.
    NonIntegerIndex {
        /// Rendered expression.
        expr: String,
    },
    /// A value expression could not be evaluated (e.g. reads a `size`).
    BadValueExpr {
        /// Rendered expression.
        expr: String,
    },
    /// A call argument did not match the instruction parameter shape.
    BadCallArg {
        /// Callee name.
        callee: String,
        /// Parameter name.
        param: Sym,
        /// Description of the mismatch.
        reason: String,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::ArgCountMismatch { proc, expected, got } => {
                write!(f, "procedure `{proc}` expects {expected} arguments, got {got}")
            }
            InterpError::ArgKindMismatch { name } => write!(f, "argument `{name}` has the wrong kind"),
            InterpError::Unbound { name } => write!(f, "unbound symbol `{name}`"),
            InterpError::OutOfBounds { buf, idx, dims } => {
                write!(f, "index {idx:?} out of bounds for buffer `{buf}` with dims {dims:?}")
            }
            InterpError::NonIntegerIndex { expr } => write!(f, "expression `{expr}` is not an integer index"),
            InterpError::BadValueExpr { expr } => {
                write!(f, "expression `{expr}` cannot be evaluated as a value")
            }
            InterpError::BadCallArg { callee, param, reason } => {
                write!(f, "bad argument for parameter `{param}` of `{callee}`: {reason}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Identifies the storage behind a buffer binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Arg(usize),
    Local(usize),
}

/// A (possibly windowed) view of a tensor.
#[derive(Debug, Clone, PartialEq)]
struct BufView {
    slot: Slot,
    /// Offset added to each underlying dimension.
    offsets: Vec<i64>,
    /// Which underlying dimensions are visible through the view, in order.
    kept: Vec<usize>,
    /// Extent of each visible dimension.
    extents: Vec<usize>,
}

impl BufView {
    fn full(slot: Slot, dims: &[usize]) -> Self {
        BufView {
            slot,
            offsets: vec![0; dims.len()],
            kept: (0..dims.len()).collect(),
            extents: dims.to_vec(),
        }
    }

    /// Translates view-relative indices to underlying-tensor indices.
    fn resolve(&self, idx: &[i64]) -> Option<Vec<i64>> {
        if idx.len() != self.kept.len() {
            return None;
        }
        let mut full: Vec<i64> = self.offsets.clone();
        for (pos, &dim) in self.kept.iter().enumerate() {
            if idx[pos] < 0 || idx[pos] as usize >= self.extents[pos] {
                return None;
            }
            full[dim] += idx[pos];
        }
        Some(full)
    }
}

#[derive(Debug, Clone)]
enum Binding {
    Int(i64),
    Buf(BufView),
}

type Env = BTreeMap<Sym, Binding>;

struct Machine<'a> {
    args: &'a mut [ArgValue],
    locals: Vec<TensorData>,
    stats: InterpStats,
}

impl<'a> Machine<'a> {
    fn tensor(&self, slot: Slot) -> &TensorData {
        match slot {
            Slot::Arg(i) => match &self.args[i] {
                ArgValue::Tensor(t) => t,
                _ => unreachable!("slot always refers to a tensor argument"),
            },
            Slot::Local(i) => &self.locals[i],
        }
    }

    fn tensor_mut(&mut self, slot: Slot) -> &mut TensorData {
        match slot {
            Slot::Arg(i) => match &mut self.args[i] {
                ArgValue::Tensor(t) => t,
                _ => unreachable!("slot always refers to a tensor argument"),
            },
            Slot::Local(i) => &mut self.locals[i],
        }
    }

    fn read_view(&self, view: &BufView, buf: &Sym, idx: &[i64]) -> Result<f64, InterpError> {
        let full = view.resolve(idx).ok_or_else(|| InterpError::OutOfBounds {
            buf: buf.clone(),
            idx: idx.to_vec(),
            dims: view.extents.clone(),
        })?;
        let t = self.tensor(view.slot);
        t.get(&full).ok_or_else(|| InterpError::OutOfBounds {
            buf: buf.clone(),
            idx: full,
            dims: t.dims.clone(),
        })
    }

    fn write_view(&mut self, view: &BufView, buf: &Sym, idx: &[i64], value: f64) -> Result<(), InterpError> {
        let full = view.resolve(idx).ok_or_else(|| InterpError::OutOfBounds {
            buf: buf.clone(),
            idx: idx.to_vec(),
            dims: view.extents.clone(),
        })?;
        let t = self.tensor_mut(view.slot);
        if t.set(&full, value) {
            Ok(())
        } else {
            Err(InterpError::OutOfBounds { buf: buf.clone(), idx: full, dims: t.dims.clone() })
        }
    }

    fn eval_index(&self, e: &Expr, env: &Env) -> Result<i64, InterpError> {
        match e {
            Expr::Int(v) => Ok(*v),
            Expr::Var(s) => match env.get(s) {
                Some(Binding::Int(v)) => Ok(*v),
                Some(Binding::Buf(_)) => Err(InterpError::NonIntegerIndex { expr: s.to_string() }),
                None => Err(InterpError::Unbound { name: s.clone() }),
            },
            Expr::Binop { op, lhs, rhs } => {
                let a = self.eval_index(lhs, env)?;
                let b = self.eval_index(rhs, env)?;
                use crate::expr::BinOp::*;
                Ok(match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => {
                        if b == 0 {
                            return Err(InterpError::NonIntegerIndex { expr: "division by zero".into() });
                        }
                        a.div_euclid(b)
                    }
                    Mod => {
                        if b == 0 {
                            return Err(InterpError::NonIntegerIndex { expr: "modulo by zero".into() });
                        }
                        a.rem_euclid(b)
                    }
                })
            }
            Expr::Neg(inner) => Ok(-self.eval_index(inner, env)?),
            Expr::Float(_) | Expr::Read { .. } => {
                Err(InterpError::NonIntegerIndex { expr: crate::printer::expr_to_string(e) })
            }
        }
    }

    fn eval_value(&self, e: &Expr, env: &Env) -> Result<f64, InterpError> {
        match e {
            Expr::Int(v) => Ok(*v as f64),
            Expr::Float(v) => Ok(*v),
            Expr::Var(s) => match env.get(s) {
                Some(Binding::Int(v)) => Ok(*v as f64),
                Some(Binding::Buf(_)) => Err(InterpError::BadValueExpr { expr: s.to_string() }),
                None => Err(InterpError::Unbound { name: s.clone() }),
            },
            Expr::Read { buf, idx } => {
                let view = match env.get(buf) {
                    Some(Binding::Buf(v)) => v.clone(),
                    Some(Binding::Int(_)) => return Err(InterpError::BadValueExpr { expr: buf.to_string() }),
                    None => return Err(InterpError::Unbound { name: buf.clone() }),
                };
                let idx_vals: Result<Vec<i64>, _> = idx.iter().map(|i| self.eval_index(i, env)).collect();
                self.read_view(&view, buf, &idx_vals?)
            }
            Expr::Binop { op, lhs, rhs } => {
                let a = self.eval_value(lhs, env)?;
                let b = self.eval_value(rhs, env)?;
                use crate::expr::BinOp::*;
                Ok(match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Mod => a % b,
                })
            }
            Expr::Neg(inner) => Ok(-self.eval_value(inner, env)?),
        }
    }

    fn exec_block(&mut self, block: &[Stmt], env: &mut Env) -> Result<(), InterpError> {
        let mut local_names: Vec<Sym> = Vec::new();
        for stmt in block {
            match stmt {
                Stmt::Comment(_) => {}
                Stmt::Alloc { name, ty, dims, .. } => {
                    let extents: Result<Vec<i64>, _> = dims.iter().map(|d| self.eval_index(d, env)).collect();
                    let extents: Vec<usize> =
                        extents?.into_iter().map(|d| if d < 0 { 0 } else { d as usize }).collect();
                    let slot = Slot::Local(self.locals.len());
                    self.locals.push(TensorData::zeros(*ty, extents.clone()));
                    env.insert(name.clone(), Binding::Buf(BufView::full(slot, &extents)));
                    local_names.push(name.clone());
                }
                Stmt::Assign { buf, idx, rhs } => {
                    let view = self.lookup_view(buf, env)?;
                    let idx_vals: Result<Vec<i64>, _> = idx.iter().map(|i| self.eval_index(i, env)).collect();
                    let value = self.eval_value(rhs, env)?;
                    self.write_view(&view, buf, &idx_vals?, value)?;
                    self.stats.assigns += 1;
                }
                Stmt::Reduce { buf, idx, rhs } => {
                    let view = self.lookup_view(buf, env)?;
                    let idx_vals: Vec<i64> =
                        idx.iter().map(|i| self.eval_index(i, env)).collect::<Result<_, _>>()?;
                    let value = self.eval_value(rhs, env)?;
                    let current = self.read_view(&view, buf, &idx_vals)?;
                    self.write_view(&view, buf, &idx_vals, current + value)?;
                    self.stats.reduces += 1;
                }
                Stmt::For { var, lo, hi, body } => {
                    let lo_v = self.eval_index(lo, env)?;
                    let hi_v = self.eval_index(hi, env)?;
                    let saved = env.get(var).cloned();
                    for i in lo_v..hi_v {
                        env.insert(var.clone(), Binding::Int(i));
                        self.stats.iterations += 1;
                        self.exec_block(body, env)?;
                    }
                    match saved {
                        Some(b) => {
                            env.insert(var.clone(), b);
                        }
                        None => {
                            env.remove(var);
                        }
                    }
                }
                Stmt::If { cond, then_body, else_body } => {
                    let a = self.eval_index(&cond.lhs, env)?;
                    let b = self.eval_index(&cond.rhs, env)?;
                    if cond.op.eval(a, b) {
                        self.exec_block(then_body, env)?;
                    } else {
                        self.exec_block(else_body, env)?;
                    }
                }
                Stmt::Call { instr, args } => {
                    self.stats.calls += 1;
                    self.exec_call(instr, args, env)?;
                }
            }
        }
        for name in local_names {
            env.remove(&name);
        }
        Ok(())
    }

    fn lookup_view(&self, buf: &Sym, env: &Env) -> Result<BufView, InterpError> {
        match env.get(buf) {
            Some(Binding::Buf(v)) => Ok(v.clone()),
            Some(Binding::Int(_)) => Err(InterpError::BadValueExpr { expr: buf.to_string() }),
            None => Err(InterpError::Unbound { name: buf.clone() }),
        }
    }

    fn exec_call(&mut self, instr: &Proc, args: &[CallArg], env: &Env) -> Result<(), InterpError> {
        if args.len() != instr.args.len() {
            return Err(InterpError::ArgCountMismatch {
                proc: instr.name.clone(),
                expected: instr.args.len(),
                got: args.len(),
            });
        }
        let mut callee_env: Env = Env::new();
        for (formal, actual) in instr.args.iter().zip(args) {
            match (&formal.kind, actual) {
                (ArgKind::Size | ArgKind::Index, CallArg::Expr(e)) => {
                    callee_env.insert(formal.name.clone(), Binding::Int(self.eval_index(e, env)?));
                }
                (ArgKind::Tensor { .. }, CallArg::Window(w)) => {
                    let base = self.lookup_view(&w.buf, env)?;
                    if w.idx.len() != base.kept.len() {
                        return Err(InterpError::BadCallArg {
                            callee: instr.name.clone(),
                            param: formal.name.clone(),
                            reason: format!(
                                "window has {} accesses but buffer `{}` has rank {}",
                                w.idx.len(),
                                w.buf,
                                base.kept.len()
                            ),
                        });
                    }
                    let mut offsets = base.offsets.clone();
                    let mut kept = Vec::new();
                    let mut extents = Vec::new();
                    for (pos, access) in w.idx.iter().enumerate() {
                        let underlying_dim = base.kept[pos];
                        match access {
                            WAccess::Point(e) => {
                                offsets[underlying_dim] += self.eval_index(e, env)?;
                            }
                            WAccess::Interval(lo, hi) => {
                                let lo_v = self.eval_index(lo, env)?;
                                let hi_v = self.eval_index(hi, env)?;
                                offsets[underlying_dim] += lo_v;
                                kept.push(underlying_dim);
                                extents.push((hi_v - lo_v).max(0) as usize);
                            }
                        }
                    }
                    let view = BufView { slot: base.slot, offsets, kept, extents };
                    callee_env.insert(formal.name.clone(), Binding::Buf(view));
                }
                (ArgKind::Tensor { .. }, CallArg::Expr(_)) => {
                    return Err(InterpError::BadCallArg {
                        callee: instr.name.clone(),
                        param: formal.name.clone(),
                        reason: "tensor parameter needs a window argument".into(),
                    })
                }
                (_, CallArg::Window(_)) => {
                    return Err(InterpError::BadCallArg {
                        callee: instr.name.clone(),
                        param: formal.name.clone(),
                        reason: "scalar parameter needs an expression argument".into(),
                    })
                }
            }
        }
        // Execute the instruction's semantic body with the callee environment.
        let body = instr.body.clone();
        self.exec_block(&body, &mut callee_env)
    }
}

/// Runs a procedure on the given arguments, mutating tensor arguments in
/// place.
///
/// # Errors
///
/// Returns [`InterpError`] if the argument list does not match the signature
/// or evaluation fails (unbound symbols, out-of-bounds accesses, ...).
pub fn run_proc(p: &Proc, args: &mut [ArgValue]) -> Result<InterpStats, InterpError> {
    if args.len() != p.args.len() {
        return Err(InterpError::ArgCountMismatch {
            proc: p.name.clone(),
            expected: p.args.len(),
            got: args.len(),
        });
    }
    let mut env: Env = Env::new();
    for (i, (formal, actual)) in p.args.iter().zip(args.iter()).enumerate() {
        match (&formal.kind, actual) {
            (ArgKind::Size, ArgValue::Size(v)) | (ArgKind::Index, ArgValue::Index(v)) => {
                env.insert(formal.name.clone(), Binding::Int(*v));
            }
            (ArgKind::Tensor { .. }, ArgValue::Tensor(t)) => {
                env.insert(formal.name.clone(), Binding::Buf(BufView::full(Slot::Arg(i), &t.dims)));
            }
            _ => return Err(InterpError::ArgKindMismatch { name: formal.name.clone() }),
        }
    }
    let mut machine = Machine { args, locals: Vec::new(), stats: InterpStats::default() };
    machine.exec_block(&p.body.clone(), &mut env)?;
    Ok(machine.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::proc::{InstrClass, InstrInfo};
    use crate::types::MemSpace;

    fn naive_ukernel(mr: i64, nr: i64) -> Proc {
        proc("ukernel_ref")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(mr)], MemSpace::Dram)
            .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), int(nr)], MemSpace::Dram)
            .tensor_arg("C", ScalarType::F32, vec![int(nr), int(mr)], MemSpace::Dram)
            .body(vec![for_(
                "k",
                0,
                var("KC"),
                vec![for_(
                    "j",
                    0,
                    int(nr),
                    vec![for_(
                        "i",
                        0,
                        int(mr),
                        vec![reduce(
                            "C",
                            vec![var("j"), var("i")],
                            Expr::mul(
                                read("Ac", vec![var("k"), var("i")]),
                                read("Bc", vec![var("k"), var("j")]),
                            ),
                        )],
                    )],
                )],
            )])
            .build()
    }

    #[test]
    fn gemm_microkernel_matches_manual_computation() {
        let (mr, nr, kc) = (4usize, 3usize, 5usize);
        let p = naive_ukernel(mr as i64, nr as i64);
        let a = TensorData::from_fn(ScalarType::F32, vec![kc, mr], |i| (i % 7) as f64 * 0.5);
        let b = TensorData::from_fn(ScalarType::F32, vec![kc, nr], |i| (i % 5) as f64 - 2.0);
        let c = TensorData::zeros(ScalarType::F32, vec![nr, mr]);
        let mut args = vec![
            ArgValue::Size(kc as i64),
            ArgValue::Tensor(a.clone()),
            ArgValue::Tensor(b.clone()),
            ArgValue::Tensor(c),
        ];
        let stats = run_proc(&p, &mut args).unwrap();
        assert_eq!(stats.reduces as usize, mr * nr * kc);
        let c_out = args[3].as_tensor().unwrap();
        for j in 0..nr {
            for i in 0..mr {
                let mut expect = 0.0f64;
                for k in 0..kc {
                    expect += a.get(&[k as i64, i as i64]).unwrap() * b.get(&[k as i64, j as i64]).unwrap();
                }
                let got = c_out.get(&[j as i64, i as i64]).unwrap();
                assert!((got - expect).abs() < 1e-6, "C[{j},{i}] = {got}, expected {expect}");
            }
        }
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let p = proc("oob")
            .tensor_arg("x", ScalarType::F32, vec![int(2)], MemSpace::Dram)
            .body(vec![assign("x", vec![int(5)], flt(1.0))])
            .build();
        let mut args = vec![ArgValue::Tensor(TensorData::zeros(ScalarType::F32, vec![2]))];
        match run_proc(&p, &mut args) {
            Err(InterpError::OutOfBounds { buf, .. }) => assert_eq!(buf, "x"),
            other => panic!("expected out-of-bounds, got {other:?}"),
        }
    }

    #[test]
    fn arg_mismatches_are_reported() {
        let p = naive_ukernel(2, 2);
        let mut too_few = vec![ArgValue::Size(1)];
        assert!(matches!(run_proc(&p, &mut too_few), Err(InterpError::ArgCountMismatch { .. })));
        let mut wrong_kind = vec![
            ArgValue::Tensor(TensorData::zeros(ScalarType::F32, vec![1])),
            ArgValue::Size(1),
            ArgValue::Size(1),
            ArgValue::Size(1),
        ];
        assert!(matches!(run_proc(&p, &mut wrong_kind), Err(InterpError::ArgKindMismatch { .. })));
    }

    #[test]
    fn alloc_creates_zeroed_scratch() {
        let p = proc("scratch")
            .tensor_arg("out", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .body(vec![
                alloc("tmp", ScalarType::F32, vec![int(4)], MemSpace::Dram),
                for_(
                    "i",
                    0,
                    4,
                    vec![
                        reduce("tmp", vec![var("i")], Expr::add(var("i"), flt(1.0))),
                        assign("out", vec![var("i")], read("tmp", vec![var("i")])),
                    ],
                ),
            ])
            .build();
        let mut args = vec![ArgValue::Tensor(TensorData::zeros(ScalarType::F32, vec![4]))];
        run_proc(&p, &mut args).unwrap();
        let out = args[0].as_tensor().unwrap();
        assert_eq!(out.get(&[0]).unwrap(), 1.0);
        assert_eq!(out.get(&[3]).unwrap(), 4.0);
    }

    #[test]
    fn f16_storage_rounds_values() {
        let p = proc("round16")
            .tensor_arg("out", ScalarType::F16, vec![int(1)], MemSpace::Dram)
            .body(vec![assign("out", vec![int(0)], flt(1.0 + 1e-5))])
            .build();
        let mut args = vec![ArgValue::Tensor(TensorData::zeros(ScalarType::F16, vec![1]))];
        run_proc(&p, &mut args).unwrap();
        assert_eq!(args[0].as_tensor().unwrap().get(&[0]).unwrap(), 1.0);
    }

    #[test]
    fn call_with_windows_executes_instruction_body() {
        // neon-style 4-wide load: dst[0:4] = src[0:4], where dst is a window
        // into a register tile and src a window into DRAM.
        let vld = std::sync::Arc::new(
            proc("neon_vld_4xf32")
                .tensor_arg("dst", ScalarType::F32, vec![int(4)], MemSpace::Neon)
                .tensor_arg("src", ScalarType::F32, vec![int(4)], MemSpace::Dram)
                .body(vec![for_("i", 0, 4, vec![assign("dst", vec![var("i")], read("src", vec![var("i")]))])])
                .instr_info(InstrInfo::new("vld", InstrClass::VecLoad, 4, ScalarType::F32))
                .build(),
        );
        let p = proc("stage")
            .tensor_arg("C", ScalarType::F32, vec![int(2), int(8)], MemSpace::Dram)
            .tensor_arg("R", ScalarType::F32, vec![int(2), int(2), int(4)], MemSpace::Dram)
            .body(vec![for_(
                "r",
                0,
                2,
                vec![for_(
                    "it",
                    0,
                    2,
                    vec![call(
                        &vld,
                        vec![
                            win("R", vec![pt(var("r")), pt(var("it")), interval(0, 4)]),
                            win(
                                "C",
                                vec![
                                    pt(var("r")),
                                    interval(
                                        Expr::mul(int(4), var("it")),
                                        Expr::add(Expr::mul(int(4), var("it")), int(4)),
                                    ),
                                ],
                            ),
                        ],
                    )],
                )],
            )])
            .build();
        let c = TensorData::from_fn(ScalarType::F32, vec![2, 8], |i| i as f64);
        let r = TensorData::zeros(ScalarType::F32, vec![2, 2, 4]);
        let mut args = vec![ArgValue::Tensor(c), ArgValue::Tensor(r)];
        let stats = run_proc(&p, &mut args).unwrap();
        assert_eq!(stats.calls, 4);
        let r_out = args[1].as_tensor().unwrap();
        // R[1, 1, 3] should hold C[1, 7] = 15.
        assert_eq!(r_out.get(&[1, 1, 3]).unwrap(), 15.0);
        assert_eq!(r_out.get(&[0, 1, 0]).unwrap(), 4.0);
    }

    #[test]
    fn index_call_args_bind_scalars() {
        // fma with lane index: dst[i] += lhs[i] * rhs[l]
        let fma = std::sync::Arc::new(
            proc("neon_vfmla")
                .tensor_arg("dst", ScalarType::F32, vec![int(4)], MemSpace::Neon)
                .tensor_arg("lhs", ScalarType::F32, vec![int(4)], MemSpace::Neon)
                .tensor_arg("rhs", ScalarType::F32, vec![int(4)], MemSpace::Neon)
                .index_arg("l")
                .body(vec![for_(
                    "i",
                    0,
                    4,
                    vec![reduce(
                        "dst",
                        vec![var("i")],
                        Expr::mul(read("lhs", vec![var("i")]), read("rhs", vec![var("l")])),
                    )],
                )])
                .instr_info(InstrInfo::new("fma", InstrClass::VecFma, 4, ScalarType::F32))
                .build(),
        );
        let p = proc("use_fma")
            .tensor_arg("d", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .tensor_arg("a", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .tensor_arg("b", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .body(vec![call(
                &fma,
                vec![
                    win("d", vec![interval(0, 4)]),
                    win("a", vec![interval(0, 4)]),
                    win("b", vec![interval(0, 4)]),
                    arg_expr(int(2)),
                ],
            )])
            .build();
        let a = TensorData::from_fn(ScalarType::F32, vec![4], |i| (i + 1) as f64);
        let b = TensorData::from_fn(ScalarType::F32, vec![4], |i| (i * 10) as f64);
        let d = TensorData::zeros(ScalarType::F32, vec![4]);
        let mut args = vec![ArgValue::Tensor(d), ArgValue::Tensor(a), ArgValue::Tensor(b)];
        run_proc(&p, &mut args).unwrap();
        let d_out = args[0].as_tensor().unwrap();
        // d[i] = a[i] * b[2] = (i+1) * 20
        assert_eq!(d_out.get(&[0]).unwrap(), 20.0);
        assert_eq!(d_out.get(&[3]).unwrap(), 80.0);
    }

    #[test]
    fn if_statement_branches() {
        use crate::stmt::CmpOp;
        let p = proc("edge")
            .size_arg("n")
            .tensor_arg("x", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .body(vec![if_(
                CmpOp::Ge,
                var("n"),
                int(4),
                vec![assign("x", vec![int(0)], flt(1.0))],
                vec![assign("x", vec![int(0)], flt(2.0))],
            )])
            .build();
        let mut args = vec![ArgValue::Size(4), ArgValue::Tensor(TensorData::zeros(ScalarType::F32, vec![4]))];
        run_proc(&p, &mut args).unwrap();
        assert_eq!(args[1].as_tensor().unwrap().get(&[0]).unwrap(), 1.0);
        let mut args2 =
            vec![ArgValue::Size(2), ArgValue::Tensor(TensorData::zeros(ScalarType::F32, vec![4]))];
        run_proc(&p, &mut args2).unwrap();
        assert_eq!(args2[1].as_tensor().unwrap().get(&[0]).unwrap(), 2.0);
    }
}
