//! Exo-style pretty-printing of procedures, matching the layout of the
//! paper's listings (Figs. 4–11).

use std::fmt::Write as _;

use crate::expr::{BinOp, Expr};
use crate::proc::{ArgKind, Proc};
use crate::stmt::{CallArg, Stmt, WAccess, WindowExpr};

/// Renders an expression with minimal parentheses.
pub fn expr_to_string(e: &Expr) -> String {
    render_expr(e, 0)
}

fn render_expr(e: &Expr, parent_prec: u8) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            if v.fract() == 0.0 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::Var(s) => s.to_string(),
        Expr::Read { buf, idx } => {
            let subs: Vec<String> = idx.iter().map(|i| render_expr(i, 0)).collect();
            format!("{}[{}]", buf, subs.join(", "))
        }
        Expr::Binop { op, lhs, rhs } => {
            let prec = op.precedence();
            // Right operand of - and / needs the next precedence level to
            // preserve grouping.
            let rhs_prec = match op {
                BinOp::Sub | BinOp::Div | BinOp::Mod => prec + 1,
                _ => prec,
            };
            let s = format!("{} {} {}", render_expr(lhs, prec), op.symbol(), render_expr(rhs, rhs_prec));
            if prec < parent_prec {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Neg(inner) => format!("-{}", render_expr(inner, 3)),
    }
}

/// Renders a window access such as `C_reg[4 * jt + jtt, it, 0:4]`.
pub fn window_to_string(w: &WindowExpr) -> String {
    let parts: Vec<String> = w
        .idx
        .iter()
        .map(|a| match a {
            WAccess::Point(e) => expr_to_string(e),
            WAccess::Interval(lo, hi) => format!("{}:{}", expr_to_string(lo), expr_to_string(hi)),
        })
        .collect();
    format!("{}[{}]", w.buf, parts.join(", "))
}

/// Renders a call argument.
pub fn call_arg_to_string(a: &CallArg) -> String {
    match a {
        CallArg::Window(w) => window_to_string(w),
        CallArg::Expr(e) => expr_to_string(e),
    }
}

/// Renders a single statement (and its children) at the given indentation
/// level, appending to `out`.
pub fn render_stmt(stmt: &Stmt, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match stmt {
        Stmt::Comment(c) => {
            let _ = writeln!(out, "{pad}# {c}");
        }
        Stmt::Assign { buf, idx, rhs } => {
            let subs: Vec<String> = idx.iter().map(expr_to_string).collect();
            let _ = writeln!(out, "{pad}{}[{}] = {}", buf, subs.join(", "), expr_to_string(rhs));
        }
        Stmt::Reduce { buf, idx, rhs } => {
            let subs: Vec<String> = idx.iter().map(expr_to_string).collect();
            let _ = writeln!(out, "{pad}{}[{}] += {}", buf, subs.join(", "), expr_to_string(rhs));
        }
        Stmt::For { var, lo, hi, body } => {
            let _ = writeln!(out, "{pad}for {} in seq({}, {}):", var, expr_to_string(lo), expr_to_string(hi));
            if body.is_empty() {
                let _ = writeln!(out, "{pad}    pass");
            }
            for s in body {
                render_stmt(s, indent + 1, out);
            }
        }
        Stmt::Alloc { name, ty, dims, mem } => {
            let dims_s: Vec<String> = dims.iter().map(expr_to_string).collect();
            let _ =
                writeln!(out, "{pad}{}: {}[{}] @ {}", name, ty.exo_name(), dims_s.join(", "), mem.exo_name());
        }
        Stmt::Call { instr, args } => {
            let args_s: Vec<String> = args.iter().map(call_arg_to_string).collect();
            let _ = writeln!(out, "{pad}{}({})", instr.name, args_s.join(", "));
        }
        Stmt::If { cond, then_body, else_body } => {
            let _ = writeln!(
                out,
                "{pad}if {} {} {}:",
                expr_to_string(&cond.lhs),
                cond.op.symbol(),
                expr_to_string(&cond.rhs)
            );
            for s in then_body {
                render_stmt(s, indent + 1, out);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}else:");
                for s in else_body {
                    render_stmt(s, indent + 1, out);
                }
            }
        }
    }
}

/// Renders a whole procedure in Exo-style syntax.
///
/// ```
/// use exo_ir::builder::*;
/// use exo_ir::printer::proc_to_string;
/// let p = proc("p")
///     .size_arg("N")
///     .tensor_arg("x", exo_ir::ScalarType::F32, vec![var("N")], exo_ir::MemSpace::Dram)
///     .body(vec![for_("i", 0, var("N"), vec![assign("x", vec![var("i")], flt(0.0))])])
///     .build();
/// let text = proc_to_string(&p);
/// assert!(text.contains("def p("));
/// assert!(text.contains("for i in seq(0, N):"));
/// ```
pub fn proc_to_string(p: &Proc) -> String {
    let mut out = String::new();
    if p.is_instr() {
        if let Some(info) = &p.instr {
            let _ = writeln!(out, "@instr(\"{}\")", info.c_format);
        }
    } else {
        let _ = writeln!(out, "@proc");
    }
    let args: Vec<String> = p
        .args
        .iter()
        .map(|a| match &a.kind {
            ArgKind::Size => format!("{}: size", a.name),
            ArgKind::Index => format!("{}: index", a.name),
            ArgKind::Tensor { ty, dims, mem } => {
                let dims_s: Vec<String> = dims.iter().map(expr_to_string).collect();
                format!("{}: {}[{}] @ {}", a.name, ty.exo_name(), dims_s.join(", "), mem.exo_name())
            }
        })
        .collect();
    let _ = writeln!(out, "def {}({}):", p.name, args.join(", "));
    if p.body.is_empty() {
        let _ = writeln!(out, "    pass");
    }
    for stmt in &p.body {
        render_stmt(stmt, 1, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::types::{MemSpace, ScalarType};

    #[test]
    fn expr_precedence_parenthesises_correctly() {
        let e = Expr::mul(Expr::add(var("a"), var("b")), int(4));
        assert_eq!(expr_to_string(&e), "(a + b) * 4");
        let e2 = Expr::add(Expr::mul(int(4), var("jt")), var("jtt"));
        assert_eq!(expr_to_string(&e2), "4 * jt + jtt");
        let e3 = Expr::sub(var("a"), Expr::sub(var("b"), var("c")));
        assert_eq!(expr_to_string(&e3), "a - (b - c)");
    }

    #[test]
    fn read_prints_subscripts() {
        let e = Expr::read("Ac", vec![var("k"), Expr::add(Expr::mul(int(4), var("it")), var("itt"))]);
        assert_eq!(expr_to_string(&e), "Ac[k, 4 * it + itt]");
    }

    #[test]
    fn window_prints_slices() {
        let w = WindowExpr::new(
            "C_reg",
            vec![
                WAccess::Point(Expr::add(Expr::mul(int(4), var("jt")), var("jtt"))),
                WAccess::Point(var("it")),
                WAccess::Interval(int(0), int(4)),
            ],
        );
        assert_eq!(window_to_string(&w), "C_reg[4 * jt + jtt, it, 0:4]");
    }

    #[test]
    fn proc_header_lists_arguments() {
        let p = proc("uk_8x12")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(8)], MemSpace::Dram)
            .body(vec![])
            .build();
        let text = proc_to_string(&p);
        assert!(text.starts_with("@proc\n"));
        assert!(text.contains("def uk_8x12(KC: size, Ac: f32[KC, 8] @ DRAM):"));
        assert!(text.contains("pass"));
    }

    #[test]
    fn statements_render_like_the_paper() {
        let body = vec![
            Stmt::alloc("C_reg", ScalarType::F32, vec![int(12), int(2), int(4)], MemSpace::Neon),
            for_(
                "k",
                0,
                var("KC"),
                vec![reduce(
                    "C",
                    vec![var("j"), var("i")],
                    Expr::mul(
                        Expr::read("Ac", vec![var("k"), var("i")]),
                        Expr::read("Bc", vec![var("k"), var("j")]),
                    ),
                )],
            ),
        ];
        let p = proc("uk").size_arg("KC").body(body).build();
        let text = proc_to_string(&p);
        assert!(text.contains("C_reg: f32[12, 2, 4] @ Neon"));
        assert!(text.contains("for k in seq(0, KC):"));
        assert!(text.contains("C[j, i] += Ac[k, i] * Bc[k, j]"));
    }

    #[test]
    fn if_and_comment_render() {
        use crate::stmt::{CmpOp, Cond};
        let body = vec![
            Stmt::Comment("edge case".into()),
            Stmt::If {
                cond: Cond { op: CmpOp::Lt, lhs: var("i"), rhs: int(8) },
                then_body: vec![assign("x", vec![var("i")], flt(0.0))],
                else_body: vec![assign("x", vec![var("i")], flt(1.0))],
            },
        ];
        let p = proc("edge")
            .tensor_arg("x", ScalarType::F32, vec![int(16)], MemSpace::Dram)
            .index_arg("i")
            .body(body)
            .build();
        let text = proc_to_string(&p);
        assert!(text.contains("# edge case"));
        assert!(text.contains("if i < 8:"));
        assert!(text.contains("else:"));
    }
}
