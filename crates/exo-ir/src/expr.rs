//! Expressions: index arithmetic, buffer reads, and scalar arithmetic.
//!
//! A single [`Expr`] enum covers both index expressions (loop bounds, buffer
//! subscripts) and value expressions (right-hand sides of assignments). The
//! distinction is enforced contextually by the procedure validator and the
//! interpreter rather than by separate types, which keeps the scheduling
//! rewrites in `exo-sched` considerably simpler.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::sym::Sym;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division in index context).
    Div,
    /// Remainder.
    Mod,
}

impl BinOp {
    /// C / Exo operator spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }

    /// Precedence for pretty-printing (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Add | BinOp::Sub => 1,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 2,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal (index arithmetic, loop bounds, lane numbers).
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// A variable: loop index, `size` argument, or `index` argument.
    Var(Sym),
    /// A read of a buffer element, e.g. `Ac[k, i]`.
    Read {
        /// Buffer being read.
        buf: Sym,
        /// One subscript per buffer dimension.
        idx: Vec<Expr>,
    },
    /// Binary arithmetic.
    Binop {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Integer literal constructor.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Floating-point literal constructor.
    pub fn float(v: f64) -> Expr {
        Expr::Float(v)
    }

    /// Variable reference constructor.
    pub fn var(name: impl Into<Sym>) -> Expr {
        Expr::Var(name.into())
    }

    /// Buffer-read constructor.
    pub fn read(buf: impl Into<Sym>, idx: Vec<Expr>) -> Expr {
        Expr::Read { buf: buf.into(), idx }
    }

    /// `lhs + rhs`.
    #[allow(clippy::should_implement_trait)] // constructor taking two operands, not an operator impl
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop { op: BinOp::Add, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// `lhs - rhs`.
    #[allow(clippy::should_implement_trait)] // constructor taking two operands, not an operator impl
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop { op: BinOp::Sub, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// `lhs * rhs`.
    #[allow(clippy::should_implement_trait)] // constructor taking two operands, not an operator impl
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop { op: BinOp::Mul, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// `lhs / rhs`.
    #[allow(clippy::should_implement_trait)] // constructor taking two operands, not an operator impl
    pub fn div(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop { op: BinOp::Div, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// `lhs % rhs`.
    #[allow(clippy::should_implement_trait)] // constructor taking two operands, not an operator impl
    pub fn rem(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop { op: BinOp::Mod, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Returns `Some(v)` if this expression is an integer literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Collects every symbol referenced by the expression (variables and
    /// buffer names).
    pub fn free_syms(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        self.collect_syms(&mut out);
        out
    }

    fn collect_syms(&self, out: &mut BTreeSet<Sym>) {
        match self {
            Expr::Int(_) | Expr::Float(_) => {}
            Expr::Var(s) => {
                out.insert(s.clone());
            }
            Expr::Read { buf, idx } => {
                out.insert(buf.clone());
                for e in idx {
                    e.collect_syms(out);
                }
            }
            Expr::Binop { lhs, rhs, .. } => {
                lhs.collect_syms(out);
                rhs.collect_syms(out);
            }
            Expr::Neg(e) => e.collect_syms(out),
        }
    }

    /// Whether `var` occurs (as a variable, not a buffer name) in the
    /// expression.
    pub fn uses_var(&self, var: &Sym) -> bool {
        match self {
            Expr::Int(_) | Expr::Float(_) => false,
            Expr::Var(s) => s == var,
            Expr::Read { idx, .. } => idx.iter().any(|e| e.uses_var(var)),
            Expr::Binop { lhs, rhs, .. } => lhs.uses_var(var) || rhs.uses_var(var),
            Expr::Neg(e) => e.uses_var(var),
        }
    }

    /// Whether buffer `buf` is read anywhere in the expression.
    pub fn reads_buf(&self, buf: &Sym) -> bool {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => false,
            Expr::Read { buf: b, idx } => b == buf || idx.iter().any(|e| e.reads_buf(buf)),
            Expr::Binop { lhs, rhs, .. } => lhs.reads_buf(buf) || rhs.reads_buf(buf),
            Expr::Neg(e) => e.reads_buf(buf),
        }
    }

    /// Substitutes variables according to `map`, returning the new expression.
    ///
    /// Buffer names are not substituted; use [`Expr::rename_buf`] for that.
    pub fn subst(&self, map: &BTreeMap<Sym, Expr>) -> Expr {
        match self {
            Expr::Int(_) | Expr::Float(_) => self.clone(),
            Expr::Var(s) => map.get(s).cloned().unwrap_or_else(|| self.clone()),
            Expr::Read { buf, idx } => {
                Expr::Read { buf: buf.clone(), idx: idx.iter().map(|e| e.subst(map)).collect() }
            }
            Expr::Binop { op, lhs, rhs } => {
                Expr::Binop { op: *op, lhs: Box::new(lhs.subst(map)), rhs: Box::new(rhs.subst(map)) }
            }
            Expr::Neg(e) => Expr::Neg(Box::new(e.subst(map))),
        }
    }

    /// Substitutes a single variable with an expression.
    pub fn subst_var(&self, var: &Sym, with: &Expr) -> Expr {
        let mut map = BTreeMap::new();
        map.insert(var.clone(), with.clone());
        self.subst(&map)
    }

    /// Renames every read of buffer `from` to `to`.
    pub fn rename_buf(&self, from: &Sym, to: &Sym) -> Expr {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => self.clone(),
            Expr::Read { buf, idx } => Expr::Read {
                buf: if buf == from { to.clone() } else { buf.clone() },
                idx: idx.iter().map(|e| e.rename_buf(from, to)).collect(),
            },
            Expr::Binop { op, lhs, rhs } => Expr::Binop {
                op: *op,
                lhs: Box::new(lhs.rename_buf(from, to)),
                rhs: Box::new(rhs.rename_buf(from, to)),
            },
            Expr::Neg(e) => Expr::Neg(Box::new(e.rename_buf(from, to))),
        }
    }

    /// Applies `f` to every buffer-read subexpression, bottom-up, replacing it
    /// with the returned expression.
    pub fn map_reads(&self, f: &mut impl FnMut(&Sym, &[Expr]) -> Option<Expr>) -> Expr {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => self.clone(),
            Expr::Read { buf, idx } => {
                let idx: Vec<Expr> = idx.iter().map(|e| e.map_reads(f)).collect();
                match f(buf, &idx) {
                    Some(e) => e,
                    None => Expr::Read { buf: buf.clone(), idx },
                }
            }
            Expr::Binop { op, lhs, rhs } => {
                Expr::Binop { op: *op, lhs: Box::new(lhs.map_reads(f)), rhs: Box::new(rhs.map_reads(f)) }
            }
            Expr::Neg(e) => Expr::Neg(Box::new(e.map_reads(f))),
        }
    }

    /// Evaluates the expression as an integer given bindings for variables.
    ///
    /// Returns `None` if the expression reads a buffer, references an unbound
    /// variable, contains a float literal, or divides by zero.
    pub fn eval_int(&self, env: &BTreeMap<Sym, i64>) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Float(_) => None,
            Expr::Var(s) => env.get(s).copied(),
            Expr::Read { .. } => None,
            Expr::Binop { op, lhs, rhs } => {
                let a = lhs.eval_int(env)?;
                let b = rhs.eval_int(env)?;
                match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div => {
                        if b == 0 {
                            None
                        } else {
                            Some(a.div_euclid(b))
                        }
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            None
                        } else {
                            Some(a.rem_euclid(b))
                        }
                    }
                }
            }
            Expr::Neg(e) => e.eval_int(env).map(|v| -v),
        }
    }

    /// Simplifies the expression: folds constants and, for purely affine index
    /// expressions, normalises into a canonical sum-of-terms form.
    pub fn simplify(&self) -> Expr {
        if let Some(aff) = Affine::of(self) {
            return aff.to_expr();
        }
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => self.clone(),
            Expr::Read { buf, idx } => {
                Expr::Read { buf: buf.clone(), idx: idx.iter().map(Expr::simplify).collect() }
            }
            Expr::Binop { op, lhs, rhs } => {
                let l = lhs.simplify();
                let r = rhs.simplify();
                if let (Some(a), Some(b)) = (l.as_int(), r.as_int()) {
                    let env = BTreeMap::new();
                    if let Some(v) =
                        (Expr::Binop { op: *op, lhs: Box::new(Expr::Int(a)), rhs: Box::new(Expr::Int(b)) })
                            .eval_int(&env)
                    {
                        return Expr::Int(v);
                    }
                }
                Expr::Binop { op: *op, lhs: Box::new(l), rhs: Box::new(r) }
            }
            Expr::Neg(e) => {
                let inner = e.simplify();
                match inner.as_int() {
                    Some(v) => Expr::Int(-v),
                    None => Expr::Neg(Box::new(inner)),
                }
            }
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Int(v)
    }
}

impl From<&Sym> for Expr {
    fn from(s: &Sym) -> Self {
        Expr::Var(s.clone())
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::add(self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::sub(self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::mul(self, rhs)
    }
}

/// A normalised affine form `constant + sum(coeff_i * var_i)` over integer
/// index variables.
///
/// Used by the scheduling operators to answer questions like "is this
/// subscript linear in `itt` with stride 1?" (required by `replace` to match a
/// loop against a vector-instruction spec) and to produce canonical simplified
/// index expressions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affine {
    /// Coefficient of each variable (zero coefficients are not stored).
    pub terms: BTreeMap<Sym, i64>,
    /// Constant offset.
    pub constant: i64,
}

impl Affine {
    /// Attempts to interpret `e` as an affine combination of variables.
    ///
    /// Returns `None` if the expression reads buffers, contains floats, or
    /// multiplies two non-constant subexpressions.
    pub fn of(e: &Expr) -> Option<Affine> {
        match e {
            Expr::Int(v) => Some(Affine { terms: BTreeMap::new(), constant: *v }),
            Expr::Float(_) | Expr::Read { .. } => None,
            Expr::Var(s) => {
                let mut terms = BTreeMap::new();
                terms.insert(s.clone(), 1);
                Some(Affine { terms, constant: 0 })
            }
            Expr::Neg(inner) => Affine::of(inner).map(|a| a.scale(-1)),
            Expr::Binop { op, lhs, rhs } => {
                let l = Affine::of(lhs);
                let r = Affine::of(rhs);
                match op {
                    BinOp::Add => Some(l?.add(&r?)),
                    BinOp::Sub => Some(l?.add(&r?.scale(-1))),
                    BinOp::Mul => {
                        let l = l?;
                        let r = r?;
                        if l.is_constant() {
                            Some(r.scale(l.constant))
                        } else if r.is_constant() {
                            Some(l.scale(r.constant))
                        } else {
                            None
                        }
                    }
                    BinOp::Div | BinOp::Mod => {
                        // Only constant / constant folds; anything else is not affine.
                        let l = l?;
                        let r = r?;
                        if l.is_constant() && r.is_constant() && r.constant != 0 {
                            let v = match op {
                                BinOp::Div => l.constant.div_euclid(r.constant),
                                _ => l.constant.rem_euclid(r.constant),
                            };
                            Some(Affine { terms: BTreeMap::new(), constant: v })
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }

    /// Whether the form has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds two affine forms.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut terms = self.terms.clone();
        for (s, c) in &other.terms {
            let entry = terms.entry(s.clone()).or_insert(0);
            *entry += c;
            if *entry == 0 {
                terms.remove(s);
            }
        }
        Affine { terms, constant: self.constant + other.constant }
    }

    /// Multiplies by an integer constant.
    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::default();
        }
        Affine {
            terms: self.terms.iter().map(|(s, c)| (s.clone(), c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Coefficient of `var` (zero if absent).
    pub fn coeff(&self, var: &Sym) -> i64 {
        self.terms.get(var).copied().unwrap_or(0)
    }

    /// Removes `var` from the form, returning (coefficient, remainder).
    pub fn split_var(&self, var: &Sym) -> (i64, Affine) {
        let c = self.coeff(var);
        let mut rest = self.clone();
        rest.terms.remove(var);
        (c, rest)
    }

    /// Converts back to an expression in canonical order: variable terms in
    /// symbol order (`coeff * var`), then the constant.
    pub fn to_expr(&self) -> Expr {
        let mut acc: Option<Expr> = None;
        for (s, c) in &self.terms {
            let term = match *c {
                1 => Expr::var(s.clone()),
                -1 => Expr::Neg(Box::new(Expr::var(s.clone()))),
                c => Expr::mul(Expr::int(c), Expr::var(s.clone())),
            };
            acc = Some(match acc {
                None => term,
                Some(a) => Expr::add(a, term),
            });
        }
        match acc {
            None => Expr::int(self.constant),
            Some(a) => {
                if self.constant == 0 {
                    a
                } else if self.constant > 0 {
                    Expr::add(a, Expr::int(self.constant))
                } else {
                    Expr::sub(a, Expr::int(-self.constant))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Expr {
        Expr::var(s)
    }

    #[test]
    fn constructors_and_as_int() {
        assert_eq!(Expr::int(4).as_int(), Some(4));
        assert_eq!(v("i").as_int(), None);
    }

    #[test]
    fn free_syms_collects_vars_and_buffers() {
        let e = Expr::read("Ac", vec![v("k"), Expr::int(4) * v("it") + v("itt")]);
        let syms = e.free_syms();
        assert!(syms.contains(&"Ac".into()));
        assert!(syms.contains(&"k".into()));
        assert!(syms.contains(&"it".into()));
        assert!(syms.contains(&"itt".into()));
        assert_eq!(syms.len(), 4);
    }

    #[test]
    fn uses_var_distinguishes_buffers() {
        let e = Expr::read("C", vec![v("j")]);
        assert!(e.uses_var(&"j".into()));
        assert!(!e.uses_var(&"C".into()));
        assert!(e.reads_buf(&"C".into()));
    }

    #[test]
    fn subst_replaces_vars() {
        let e = Expr::int(4) * v("it") + v("itt");
        let out = e.subst_var(&"it".into(), &Expr::int(1));
        assert_eq!(out.simplify(), Expr::add(v("itt"), Expr::int(4)));
    }

    #[test]
    fn eval_int_handles_arithmetic() {
        let mut env = BTreeMap::new();
        env.insert(Sym::new("i"), 3);
        let e = (Expr::int(4) * v("i") + Expr::int(2)).simplify();
        assert_eq!(e.eval_int(&env), Some(14));
        assert_eq!(Expr::div(Expr::int(7), Expr::int(2)).eval_int(&env), Some(3));
        assert_eq!(Expr::rem(Expr::int(7), Expr::int(2)).eval_int(&env), Some(1));
        assert_eq!(Expr::div(Expr::int(7), Expr::int(0)).eval_int(&env), None);
    }

    #[test]
    fn affine_normalisation() {
        let e = Expr::add(Expr::mul(Expr::int(4), v("jt")), v("jtt"));
        let aff = Affine::of(&e).unwrap();
        assert_eq!(aff.coeff(&"jt".into()), 4);
        assert_eq!(aff.coeff(&"jtt".into()), 1);
        assert_eq!(aff.constant, 0);
    }

    #[test]
    fn affine_rejects_var_products() {
        let e = Expr::mul(v("i"), v("j"));
        assert!(Affine::of(&e).is_none());
    }

    #[test]
    fn affine_split_var() {
        let e = Expr::add(Expr::mul(Expr::int(4), v("it")), v("itt"));
        let aff = Affine::of(&e).unwrap();
        let (c, rest) = aff.split_var(&"itt".into());
        assert_eq!(c, 1);
        assert_eq!(rest.coeff(&"it".into()), 4);
    }

    #[test]
    fn simplify_folds_constants() {
        let e = Expr::mul(Expr::int(4), Expr::int(0)) + v("itt");
        assert_eq!(e.simplify(), v("itt"));
        let e2 = Expr::add(Expr::int(4), Expr::int(8));
        assert_eq!(e2.simplify(), Expr::int(12));
    }

    #[test]
    fn simplify_cancels_terms() {
        let e = Expr::sub(Expr::add(v("a"), v("b")), v("b"));
        assert_eq!(e.simplify(), v("a"));
    }

    #[test]
    fn rename_buf_only_touches_reads() {
        let e = Expr::read("Xc", vec![v("Xc")]);
        let out = e.rename_buf(&"Xc".into(), &"X_reg".into());
        match out {
            Expr::Read { buf, idx } => {
                assert_eq!(buf, "X_reg");
                assert_eq!(idx[0], v("Xc"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn to_expr_canonical_order() {
        let mut terms = BTreeMap::new();
        terms.insert(Sym::new("b"), 2);
        terms.insert(Sym::new("a"), 1);
        let aff = Affine { terms, constant: -3 };
        let e = aff.to_expr();
        // a + 2*b - 3
        assert_eq!(e, Expr::sub(Expr::add(v("a"), Expr::mul(Expr::int(2), v("b"))), Expr::int(3)));
    }
}
