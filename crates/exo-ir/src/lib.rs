//! # exo-ir
//!
//! The loop-nest intermediate representation underlying this workspace's
//! reproduction of *"Tackling the Matrix Multiplication Micro-kernel
//! Generation with Exo"* (CGO 2024).
//!
//! A [`Proc`] models an Exo `@proc` (a schedulable procedure) or `@instr`
//! (a hardware instruction specification). Procedures are built from
//! [`Stmt`]s — loops, assignments, reductions, allocations, instruction
//! calls — over [`Expr`] index/value expressions.
//!
//! The crate provides:
//!
//! * construction helpers ([`builder`]),
//! * an Exo-style pretty printer ([`printer`]),
//! * a reference interpreter ([`interp`]) used to check that scheduling
//!   transformations preserve semantics,
//! * alpha-equivalence ([`alpha`]),
//! * a parser for the small textual fragments used by scheduling directives
//!   ([`parse`]).
//!
//! ## Example
//!
//! Build and run the naive micro-kernel of the paper's Fig. 5:
//!
//! ```
//! use exo_ir::builder::*;
//! use exo_ir::interp::{run_proc, ArgValue, TensorData};
//! use exo_ir::{Expr, MemSpace, ScalarType};
//!
//! let p = proc("ukernel_ref")
//!     .size_arg("KC")
//!     .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(8)], MemSpace::Dram)
//!     .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), int(12)], MemSpace::Dram)
//!     .tensor_arg("C", ScalarType::F32, vec![int(12), int(8)], MemSpace::Dram)
//!     .body(vec![for_("k", 0, var("KC"), vec![for_("j", 0, 12, vec![for_("i", 0, 8, vec![
//!         reduce("C", vec![var("j"), var("i")],
//!             Expr::mul(read("Ac", vec![var("k"), var("i")]), read("Bc", vec![var("k"), var("j")]))),
//!     ])])])])
//!     .build();
//! p.validate()?;
//!
//! let mut args = vec![
//!     ArgValue::Size(4),
//!     ArgValue::Tensor(TensorData::from_fn(ScalarType::F32, vec![4, 8], |i| i as f64)),
//!     ArgValue::Tensor(TensorData::from_fn(ScalarType::F32, vec![4, 12], |i| 1.0 + i as f64)),
//!     ArgValue::Tensor(TensorData::zeros(ScalarType::F32, vec![12, 8])),
//! ];
//! run_proc(&p, &mut args)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod alpha;
pub mod builder;
pub mod expr;
pub mod interp;
pub mod parse;
pub mod printer;
pub mod proc;
pub mod stmt;
pub mod sym;
pub mod types;

pub use expr::{Affine, BinOp, Expr};
pub use proc::{ArgKind, InstrClass, InstrInfo, IrError, Proc, ProcArg};
pub use stmt::{CallArg, CmpOp, Cond, Stmt, StmtPath, WAccess, WindowExpr};
pub use sym::Sym;
pub use types::{MemSpace, ScalarType};
