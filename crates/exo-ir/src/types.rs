//! Scalar data types and memory spaces.
//!
//! These mirror the two "hardware description" dimensions that the paper's
//! Exo libraries externalise: the element precision (`f32`, `f16`, ...) and
//! the memory placement annotation (`@ DRAM`, `@ Neon`, `@ Neon8f`, ...).

use std::fmt;

/// Element precision of a buffer or register allocation.
///
/// The paper's generator targets `f32` on Neon and demonstrates retargeting to
/// `f16` (Section III-D); the integer types are included because limitation (5)
/// in the introduction calls out missing integer support in vendor libraries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// IEEE 754 binary32.
    F32,
    /// IEEE 754 binary16 (storage precision; arithmetic modelled in f64 and
    /// rounded on store).
    F16,
    /// IEEE 754 binary64.
    F64,
    /// Signed 8-bit integer.
    I8,
    /// Signed 32-bit integer.
    I32,
}

impl ScalarType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            ScalarType::F32 => 4,
            ScalarType::F16 => 2,
            ScalarType::F64 => 8,
            ScalarType::I8 => 1,
            ScalarType::I32 => 4,
        }
    }

    /// Name used when pretty-printing Exo-style source (`f32`, `f16`, ...).
    pub fn exo_name(self) -> &'static str {
        match self {
            ScalarType::F32 => "f32",
            ScalarType::F16 => "f16",
            ScalarType::F64 => "f64",
            ScalarType::I8 => "i8",
            ScalarType::I32 => "i32",
        }
    }

    /// Name used when emitting C code.
    pub fn c_name(self) -> &'static str {
        match self {
            ScalarType::F32 => "float",
            ScalarType::F16 => "_Float16",
            ScalarType::F64 => "double",
            ScalarType::I8 => "int8_t",
            ScalarType::I32 => "int32_t",
        }
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F16 | ScalarType::F64)
    }

    /// Rounds a value held at model precision (f64) to this storage precision.
    ///
    /// This is what gives the interpreter faithful `f16`/`f32` semantics while
    /// carrying values in `f64`.
    pub fn round(self, v: f64) -> f64 {
        match self {
            ScalarType::F64 => v,
            ScalarType::F32 => v as f32 as f64,
            ScalarType::F16 => f16_round(v),
            ScalarType::I8 => (v as i64).clamp(i8::MIN as i64, i8::MAX as i64) as f64,
            ScalarType::I32 => (v as i64).clamp(i32::MIN as i64, i32::MAX as i64) as f64,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.exo_name())
    }
}

/// Rounds an `f64` value through IEEE binary16 and back.
///
/// Implemented by hand (round-to-nearest-even) so the crate has no external
/// dependencies; used to model `f16` storage in the interpreter and in the
/// executable lowering.
pub fn f16_round(v: f64) -> f64 {
    f16_bits_to_f32(f32_to_f16_bits(v as f32)) as f64
}

/// Converts an `f32` to IEEE binary16 bits with round-to-nearest-even.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        let mant16 = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | mant16;
    }

    // Re-bias exponent from 127 to 15.
    let unbiased = exp - 127;
    let new_exp = unbiased + 15;

    if new_exp >= 0x1f {
        // Overflow to infinity.
        return sign | 0x7c00;
    }

    if new_exp <= 0 {
        // Subnormal or underflow to zero.
        if new_exp < -10 {
            return sign;
        }
        let full_mant = mant | 0x0080_0000;
        let shift = (14 - new_exp) as u32;
        let half_mant = full_mant >> shift;
        let rem = full_mant & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded =
            if rem > halfway || (rem == halfway && (half_mant & 1) == 1) { half_mant + 1 } else { half_mant };
        return sign | rounded as u16;
    }

    // Normal case: keep top 10 mantissa bits, round-to-nearest-even.
    let half_mant = (mant >> 13) as u16;
    let rem = mant & 0x1fff;
    let mut out = sign | ((new_exp as u16) << 10) | half_mant;
    let halfway = 0x1000;
    if rem > halfway || (rem == halfway && (half_mant & 1) == 1) {
        out = out.wrapping_add(1);
    }
    out
}

/// Converts IEEE binary16 bits to an `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x03ff) as u32;

    let out = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalise.
            let mut e = -1i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03ff;
            let new_exp = (114 + e) as u32;
            sign | (new_exp << 23) | (m << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Memory placement of a buffer: main memory or one of the modelled register
/// files.
///
/// In Exo, a memory is itself a user library component; here the set is closed
/// but covers every placement used by the paper (plus AVX-512 for the
/// portability experiment in Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemSpace {
    /// Main memory (the paper's `@ DRAM`).
    Dram,
    /// ARM Neon 128-bit vector registers holding 4 x f32.
    Neon,
    /// ARM Neon 128-bit vector registers holding 8 x f16 (the paper's `Neon8f`).
    Neon8f,
    /// Intel AVX-512 512-bit vector registers holding 16 x f32.
    Avx512,
    /// Generic/unspecified placement (used by instruction formal parameters
    /// before `set_memory`).
    Generic,
}

impl MemSpace {
    /// Name used when pretty-printing Exo-style source.
    pub fn exo_name(self) -> &'static str {
        match self {
            MemSpace::Dram => "DRAM",
            MemSpace::Neon => "Neon",
            MemSpace::Neon8f => "Neon8f",
            MemSpace::Avx512 => "AVX512",
            MemSpace::Generic => "GENERIC",
        }
    }

    /// Returns the register width in bytes if this is a register file, or
    /// `None` for main memory.
    pub fn vector_bytes(self) -> Option<usize> {
        match self {
            MemSpace::Neon | MemSpace::Neon8f => Some(16),
            MemSpace::Avx512 => Some(64),
            MemSpace::Dram | MemSpace::Generic => None,
        }
    }

    /// Whether allocations in this space live in registers (and therefore
    /// should not be counted as memory traffic by the performance model).
    pub fn is_register(self) -> bool {
        self.vector_bytes().is_some()
    }
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.exo_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_correct() {
        assert_eq!(ScalarType::F32.size_bytes(), 4);
        assert_eq!(ScalarType::F16.size_bytes(), 2);
        assert_eq!(ScalarType::F64.size_bytes(), 8);
        assert_eq!(ScalarType::I8.size_bytes(), 1);
        assert_eq!(ScalarType::I32.size_bytes(), 4);
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(ScalarType::F32.exo_name(), "f32");
        assert_eq!(ScalarType::F16.c_name(), "_Float16");
        assert_eq!(MemSpace::Neon.exo_name(), "Neon");
        assert_eq!(MemSpace::Dram.to_string(), "DRAM");
    }

    #[test]
    fn vector_bytes() {
        assert_eq!(MemSpace::Neon.vector_bytes(), Some(16));
        assert_eq!(MemSpace::Avx512.vector_bytes(), Some(64));
        assert_eq!(MemSpace::Dram.vector_bytes(), None);
        assert!(MemSpace::Neon.is_register());
        assert!(!MemSpace::Dram.is_register());
    }

    #[test]
    fn f32_rounding_truncates_precision() {
        let v = 0.1f64 + 1e-12;
        let r = ScalarType::F32.round(v);
        assert_eq!(r, 0.1f32 as f64);
    }

    #[test]
    fn f16_round_trip_exact_values() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25] {
            let bits = f32_to_f16_bits(v);
            let back = f16_bits_to_f32(bits);
            assert_eq!(back, v, "value {v} should be exactly representable");
        }
    }

    #[test]
    fn f16_overflow_saturates_to_infinity() {
        let bits = f32_to_f16_bits(1.0e6);
        assert_eq!(bits & 0x7fff, 0x7c00);
        assert!(f16_bits_to_f32(bits).is_infinite());
    }

    #[test]
    fn f16_subnormals_round_trip() {
        let v = 6.0e-6f32;
        let back = f16_bits_to_f32(f32_to_f16_bits(v));
        assert!((back - v).abs() < 1.0e-6);
    }

    #[test]
    fn f16_rounding_is_nearest() {
        // 1.0 + 2^-11 rounds to 1.0; 1.0 + 2^-10 is exactly representable.
        let lo = f16_round(1.0 + (2f64).powi(-12));
        assert_eq!(lo, 1.0);
        let hi = f16_round(1.0 + (2f64).powi(-10));
        assert!(hi > 1.0);
    }

    #[test]
    fn integer_rounding_clamps() {
        assert_eq!(ScalarType::I8.round(300.0), 127.0);
        assert_eq!(ScalarType::I8.round(-300.0), -128.0);
        assert_eq!(ScalarType::I32.round(1.7), 1.0);
    }
}
