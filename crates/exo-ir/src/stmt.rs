//! Statements, buffer windows, call arguments, and tree-addressing paths.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::expr::Expr;
use crate::proc::Proc;
use crate::sym::Sym;
use crate::types::{MemSpace, ScalarType};

/// One access along a single dimension of a buffer window.
#[derive(Debug, Clone, PartialEq)]
pub enum WAccess {
    /// A single element at the given index.
    Point(Expr),
    /// A half-open interval `[lo, hi)` of elements.
    Interval(Expr, Expr),
}

impl WAccess {
    /// Whether this access selects a range (contributes a dimension to the
    /// windowed view).
    pub fn is_interval(&self) -> bool {
        matches!(self, WAccess::Interval(_, _))
    }

    /// Applies a variable substitution to the contained expressions.
    pub fn subst(&self, map: &BTreeMap<Sym, Expr>) -> WAccess {
        match self {
            WAccess::Point(e) => WAccess::Point(e.subst(map)),
            WAccess::Interval(lo, hi) => WAccess::Interval(lo.subst(map), hi.subst(map)),
        }
    }

    /// Simplifies the contained expressions.
    pub fn simplify(&self) -> WAccess {
        match self {
            WAccess::Point(e) => WAccess::Point(e.simplify()),
            WAccess::Interval(lo, hi) => WAccess::Interval(lo.simplify(), hi.simplify()),
        }
    }
}

/// A window over a buffer, e.g. `C_reg[4 * jt + jtt, it, 0:4]`.
///
/// Windows appear as arguments to instruction calls: point accesses fix a
/// coordinate, interval accesses become dimensions of the callee's view.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExpr {
    /// The buffer being windowed.
    pub buf: Sym,
    /// One access per buffer dimension.
    pub idx: Vec<WAccess>,
}

impl WindowExpr {
    /// Creates a window expression.
    pub fn new(buf: impl Into<Sym>, idx: Vec<WAccess>) -> Self {
        WindowExpr { buf: buf.into(), idx }
    }

    /// Number of interval (range) dimensions — the rank of the windowed view.
    pub fn rank(&self) -> usize {
        self.idx.iter().filter(|a| a.is_interval()).count()
    }

    /// Applies a variable substitution.
    pub fn subst(&self, map: &BTreeMap<Sym, Expr>) -> WindowExpr {
        WindowExpr { buf: self.buf.clone(), idx: self.idx.iter().map(|a| a.subst(map)).collect() }
    }

    /// Simplifies all contained expressions.
    pub fn simplify(&self) -> WindowExpr {
        WindowExpr { buf: self.buf.clone(), idx: self.idx.iter().map(|a| a.simplify()).collect() }
    }

    /// Collects every symbol referenced (buffer name and index variables).
    pub fn free_syms(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        out.insert(self.buf.clone());
        for a in &self.idx {
            match a {
                WAccess::Point(e) => out.extend(e.free_syms()),
                WAccess::Interval(lo, hi) => {
                    out.extend(lo.free_syms());
                    out.extend(hi.free_syms());
                }
            }
        }
        out
    }
}

/// An argument passed to an instruction call.
#[derive(Debug, Clone, PartialEq)]
pub enum CallArg {
    /// A buffer window (tensor argument).
    Window(WindowExpr),
    /// A scalar / index expression (e.g. the lane number of
    /// `vfmaq_laneq_f32`).
    Expr(Expr),
}

impl CallArg {
    /// Applies a variable substitution.
    pub fn subst(&self, map: &BTreeMap<Sym, Expr>) -> CallArg {
        match self {
            CallArg::Window(w) => CallArg::Window(w.subst(map)),
            CallArg::Expr(e) => CallArg::Expr(e.subst(map)),
        }
    }

    /// Simplifies contained expressions.
    pub fn simplify(&self) -> CallArg {
        match self {
            CallArg::Window(w) => CallArg::Window(w.simplify()),
            CallArg::Expr(e) => CallArg::Expr(e.simplify()),
        }
    }

    /// Collects every symbol referenced.
    pub fn free_syms(&self) -> BTreeSet<Sym> {
        match self {
            CallArg::Window(w) => w.free_syms(),
            CallArg::Expr(e) => e.free_syms(),
        }
    }
}

/// Comparison operators for `If` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// C / Exo spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    /// Evaluates the comparison on integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// A scalar comparison used as an `If` condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: Expr,
    /// Right operand.
    pub rhs: Expr,
}

/// A statement in a procedure body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `buf[idx...] = rhs`
    Assign {
        /// Destination buffer.
        buf: Sym,
        /// Subscripts.
        idx: Vec<Expr>,
        /// Value stored.
        rhs: Expr,
    },
    /// `buf[idx...] += rhs`
    Reduce {
        /// Destination buffer.
        buf: Sym,
        /// Subscripts.
        idx: Vec<Expr>,
        /// Value accumulated.
        rhs: Expr,
    },
    /// `for var in seq(lo, hi): body`
    For {
        /// Loop index variable.
        var: Sym,
        /// Inclusive lower bound.
        lo: Expr,
        /// Exclusive upper bound.
        hi: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A buffer allocation, e.g. `C_reg: f32[12, 2, 4] @ Neon`.
    Alloc {
        /// Buffer name.
        name: Sym,
        /// Element type.
        ty: ScalarType,
        /// Dimension extents.
        dims: Vec<Expr>,
        /// Memory placement.
        mem: MemSpace,
    },
    /// A call to a hardware instruction (an `@instr` procedure).
    Call {
        /// The instruction's semantic specification.
        instr: Arc<Proc>,
        /// Arguments, in the instruction's parameter order.
        args: Vec<CallArg>,
    },
    /// `if cond: then_body else: else_body`
    If {
        /// Condition.
        cond: Cond,
        /// Statements executed when the condition holds.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise (may be empty).
        else_body: Vec<Stmt>,
    },
    /// A comment carried through to pretty-printed / generated code.
    Comment(String),
}

impl Stmt {
    /// Convenience constructor for `For`.
    pub fn for_(var: impl Into<Sym>, lo: impl Into<Expr>, hi: impl Into<Expr>, body: Vec<Stmt>) -> Stmt {
        Stmt::For { var: var.into(), lo: lo.into(), hi: hi.into(), body }
    }

    /// Convenience constructor for `Assign`.
    pub fn assign(buf: impl Into<Sym>, idx: Vec<Expr>, rhs: Expr) -> Stmt {
        Stmt::Assign { buf: buf.into(), idx, rhs }
    }

    /// Convenience constructor for `Reduce`.
    pub fn reduce(buf: impl Into<Sym>, idx: Vec<Expr>, rhs: Expr) -> Stmt {
        Stmt::Reduce { buf: buf.into(), idx, rhs }
    }

    /// Convenience constructor for `Alloc`.
    pub fn alloc(name: impl Into<Sym>, ty: ScalarType, dims: Vec<Expr>, mem: MemSpace) -> Stmt {
        Stmt::Alloc { name: name.into(), ty, dims, mem }
    }

    /// Convenience constructor for `Call`.
    pub fn call(instr: Arc<Proc>, args: Vec<CallArg>) -> Stmt {
        Stmt::Call { instr, args }
    }

    /// Returns the nested statement list if this statement has one (`For`
    /// bodies and `If` then-branches).
    pub fn child_block(&self) -> Option<&Vec<Stmt>> {
        match self {
            Stmt::For { body, .. } => Some(body),
            Stmt::If { then_body, .. } => Some(then_body),
            _ => None,
        }
    }

    /// Mutable variant of [`Stmt::child_block`].
    pub fn child_block_mut(&mut self) -> Option<&mut Vec<Stmt>> {
        match self {
            Stmt::For { body, .. } => Some(body),
            Stmt::If { then_body, .. } => Some(then_body),
            _ => None,
        }
    }

    /// Collects every symbol referenced by this statement (recursively),
    /// including buffer names, loop variables it *binds*, and variables it
    /// reads.
    pub fn all_syms(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        self.collect_syms(&mut out);
        out
    }

    fn collect_syms(&self, out: &mut BTreeSet<Sym>) {
        match self {
            Stmt::Assign { buf, idx, rhs } | Stmt::Reduce { buf, idx, rhs } => {
                out.insert(buf.clone());
                for e in idx {
                    out.extend(e.free_syms());
                }
                out.extend(rhs.free_syms());
            }
            Stmt::For { var, lo, hi, body } => {
                out.insert(var.clone());
                out.extend(lo.free_syms());
                out.extend(hi.free_syms());
                for s in body {
                    s.collect_syms(out);
                }
            }
            Stmt::Alloc { name, dims, .. } => {
                out.insert(name.clone());
                for d in dims {
                    out.extend(d.free_syms());
                }
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    out.extend(a.free_syms());
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                out.extend(cond.lhs.free_syms());
                out.extend(cond.rhs.free_syms());
                for s in then_body.iter().chain(else_body) {
                    s.collect_syms(out);
                }
            }
            Stmt::Comment(_) => {}
        }
    }

    /// Whether `var` is used (read) anywhere in this statement, not counting
    /// inner loops that shadow it.
    pub fn uses_var(&self, var: &Sym) -> bool {
        match self {
            Stmt::Assign { idx, rhs, .. } | Stmt::Reduce { idx, rhs, .. } => {
                idx.iter().any(|e| e.uses_var(var)) || rhs.uses_var(var)
            }
            Stmt::For { var: v, lo, hi, body } => {
                if lo.uses_var(var) || hi.uses_var(var) {
                    return true;
                }
                if v == var {
                    // Shadowed inside.
                    return false;
                }
                body.iter().any(|s| s.uses_var(var))
            }
            Stmt::Alloc { dims, .. } => dims.iter().any(|e| e.uses_var(var)),
            Stmt::Call { args, .. } => args.iter().any(|a| a.free_syms().contains(var)),
            Stmt::If { cond, then_body, else_body } => {
                cond.lhs.uses_var(var)
                    || cond.rhs.uses_var(var)
                    || then_body.iter().chain(else_body).any(|s| s.uses_var(var))
            }
            Stmt::Comment(_) => false,
        }
    }

    /// Buffers written (assigned or reduced into, or passed as a mutated call
    /// argument) by this statement, recursively.
    pub fn written_bufs(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        self.collect_written(&mut out);
        out
    }

    fn collect_written(&self, out: &mut BTreeSet<Sym>) {
        match self {
            Stmt::Assign { buf, .. } | Stmt::Reduce { buf, .. } => {
                out.insert(buf.clone());
            }
            Stmt::For { body, .. } => {
                for s in body {
                    s.collect_written(out);
                }
            }
            Stmt::Alloc { .. } | Stmt::Comment(_) => {}
            Stmt::Call { instr, args } => {
                // An argument is written if the instruction's body writes the
                // corresponding formal parameter.
                let written = instr.written_params();
                for (formal, actual) in instr.args.iter().zip(args) {
                    if written.contains(&formal.name) {
                        if let CallArg::Window(w) = actual {
                            out.insert(w.buf.clone());
                        }
                    }
                }
            }
            Stmt::If { then_body, else_body, .. } => {
                for s in then_body.iter().chain(else_body) {
                    s.collect_written(out);
                }
            }
        }
    }

    /// Buffers read by this statement, recursively (including call arguments
    /// the instruction reads).
    pub fn read_bufs(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        self.collect_read(&mut out);
        out
    }

    fn collect_read(&self, out: &mut BTreeSet<Sym>) {
        fn expr_reads(e: &Expr, out: &mut BTreeSet<Sym>) {
            match e {
                Expr::Read { buf, idx } => {
                    out.insert(buf.clone());
                    for i in idx {
                        expr_reads(i, out);
                    }
                }
                Expr::Binop { lhs, rhs, .. } => {
                    expr_reads(lhs, out);
                    expr_reads(rhs, out);
                }
                Expr::Neg(inner) => expr_reads(inner, out),
                Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
            }
        }
        match self {
            Stmt::Assign { idx, rhs, .. } => {
                for e in idx {
                    expr_reads(e, out);
                }
                expr_reads(rhs, out);
            }
            Stmt::Reduce { buf, idx, rhs } => {
                // A reduction reads its destination as well.
                out.insert(buf.clone());
                for e in idx {
                    expr_reads(e, out);
                }
                expr_reads(rhs, out);
            }
            Stmt::For { body, .. } => {
                for s in body {
                    s.collect_read(out);
                }
            }
            Stmt::Alloc { .. } | Stmt::Comment(_) => {}
            Stmt::Call { instr, args } => {
                let read = instr.read_params();
                for (formal, actual) in instr.args.iter().zip(args) {
                    if read.contains(&formal.name) {
                        if let CallArg::Window(w) = actual {
                            out.insert(w.buf.clone());
                        }
                    }
                    if let CallArg::Expr(e) = actual {
                        expr_reads(e, out);
                    }
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                expr_reads(&cond.lhs, out);
                expr_reads(&cond.rhs, out);
                for s in then_body.iter().chain(else_body) {
                    s.collect_read(out);
                }
            }
        }
    }

    /// Applies a variable substitution to every expression in the statement
    /// (recursively). Loop variables that shadow a substituted name stop the
    /// substitution in their body.
    pub fn subst(&self, map: &BTreeMap<Sym, Expr>) -> Stmt {
        match self {
            Stmt::Assign { buf, idx, rhs } => Stmt::Assign {
                buf: buf.clone(),
                idx: idx.iter().map(|e| e.subst(map)).collect(),
                rhs: rhs.subst(map),
            },
            Stmt::Reduce { buf, idx, rhs } => Stmt::Reduce {
                buf: buf.clone(),
                idx: idx.iter().map(|e| e.subst(map)).collect(),
                rhs: rhs.subst(map),
            },
            Stmt::For { var, lo, hi, body } => {
                let mut inner = map.clone();
                inner.remove(var);
                Stmt::For {
                    var: var.clone(),
                    lo: lo.subst(map),
                    hi: hi.subst(map),
                    body: body.iter().map(|s| s.subst(&inner)).collect(),
                }
            }
            Stmt::Alloc { name, ty, dims, mem } => Stmt::Alloc {
                name: name.clone(),
                ty: *ty,
                dims: dims.iter().map(|e| e.subst(map)).collect(),
                mem: *mem,
            },
            Stmt::Call { instr, args } => {
                Stmt::Call { instr: instr.clone(), args: args.iter().map(|a| a.subst(map)).collect() }
            }
            Stmt::If { cond, then_body, else_body } => Stmt::If {
                cond: Cond { op: cond.op, lhs: cond.lhs.subst(map), rhs: cond.rhs.subst(map) },
                then_body: then_body.iter().map(|s| s.subst(map)).collect(),
                else_body: else_body.iter().map(|s| s.subst(map)).collect(),
            },
            Stmt::Comment(c) => Stmt::Comment(c.clone()),
        }
    }

    /// Simplifies every expression in the statement (recursively).
    pub fn simplify(&self) -> Stmt {
        match self {
            Stmt::Assign { buf, idx, rhs } => Stmt::Assign {
                buf: buf.clone(),
                idx: idx.iter().map(Expr::simplify).collect(),
                rhs: rhs.simplify(),
            },
            Stmt::Reduce { buf, idx, rhs } => Stmt::Reduce {
                buf: buf.clone(),
                idx: idx.iter().map(Expr::simplify).collect(),
                rhs: rhs.simplify(),
            },
            Stmt::For { var, lo, hi, body } => Stmt::For {
                var: var.clone(),
                lo: lo.simplify(),
                hi: hi.simplify(),
                body: body.iter().map(Stmt::simplify).collect(),
            },
            Stmt::Alloc { name, ty, dims, mem } => Stmt::Alloc {
                name: name.clone(),
                ty: *ty,
                dims: dims.iter().map(Expr::simplify).collect(),
                mem: *mem,
            },
            Stmt::Call { instr, args } => {
                Stmt::Call { instr: instr.clone(), args: args.iter().map(CallArg::simplify).collect() }
            }
            Stmt::If { cond, then_body, else_body } => Stmt::If {
                cond: Cond { op: cond.op, lhs: cond.lhs.simplify(), rhs: cond.rhs.simplify() },
                then_body: then_body.iter().map(Stmt::simplify).collect(),
                else_body: else_body.iter().map(Stmt::simplify).collect(),
            },
            Stmt::Comment(c) => Stmt::Comment(c.clone()),
        }
    }
}

/// A path addressing a statement inside a nested statement tree.
///
/// Each step selects an index within the current statement block; descending
/// into a `For` enters its body, descending into an `If` enters its
/// then-branch.
pub type StmtPath = Vec<usize>;

/// Returns a reference to the statement at `path` within `block`, or `None`
/// if the path is invalid.
pub fn stmt_at<'a>(block: &'a [Stmt], path: &[usize]) -> Option<&'a Stmt> {
    let (&first, rest) = path.split_first()?;
    let stmt = block.get(first)?;
    if rest.is_empty() {
        Some(stmt)
    } else {
        stmt_at(stmt.child_block()?, rest)
    }
}

/// Returns a mutable reference to the statement at `path` within `block`.
pub fn stmt_at_mut<'a>(block: &'a mut [Stmt], path: &[usize]) -> Option<&'a mut Stmt> {
    let (&first, rest) = path.split_first()?;
    let stmt = block.get_mut(first)?;
    if rest.is_empty() {
        Some(stmt)
    } else {
        stmt_at_mut(stmt.child_block_mut()?, rest)
    }
}

/// Returns a mutable reference to the block (statement list) that directly
/// contains the statement at `path`, together with the statement's index in
/// that block.
pub fn block_of_mut<'a>(block: &'a mut Vec<Stmt>, path: &[usize]) -> Option<(&'a mut Vec<Stmt>, usize)> {
    match path {
        [] => None,
        [i] => {
            if *i < block.len() {
                Some((block, *i))
            } else {
                None
            }
        }
        [first, rest @ ..] => {
            let stmt = block.get_mut(*first)?;
            block_of_mut(stmt.child_block_mut()?, rest)
        }
    }
}

/// Splices `replacement` in place of the statement at `path`, returning the
/// removed statement. Returns `None` (and leaves the tree untouched) if the
/// path is invalid.
pub fn splice_at(block: &mut Vec<Stmt>, path: &[usize], replacement: Vec<Stmt>) -> Option<Stmt> {
    let (parent, i) = block_of_mut(block, path)?;
    let removed = parent.remove(i);
    for (offset, stmt) in replacement.into_iter().enumerate() {
        parent.insert(i + offset, stmt);
    }
    Some(removed)
}

/// Visits every statement in the block in pre-order, yielding `(path, stmt)`.
pub fn walk(block: &[Stmt]) -> Vec<(StmtPath, &Stmt)> {
    let mut out = Vec::new();
    fn rec<'a>(block: &'a [Stmt], prefix: &mut StmtPath, out: &mut Vec<(StmtPath, &'a Stmt)>) {
        for (i, stmt) in block.iter().enumerate() {
            prefix.push(i);
            out.push((prefix.clone(), stmt));
            if let Some(children) = stmt.child_block() {
                rec(children, prefix, out);
            }
            prefix.pop();
        }
    }
    let mut prefix = Vec::new();
    rec(block, &mut prefix, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn v(s: &str) -> Expr {
        Expr::var(s)
    }

    fn sample_block() -> Vec<Stmt> {
        vec![Stmt::for_(
            "k",
            0,
            v("KC"),
            vec![Stmt::for_(
                "j",
                0,
                12,
                vec![Stmt::for_(
                    "i",
                    0,
                    8,
                    vec![Stmt::reduce(
                        "C",
                        vec![v("j"), v("i")],
                        Expr::mul(
                            Expr::read("Ac", vec![v("k"), v("i")]),
                            Expr::read("Bc", vec![v("k"), v("j")]),
                        ),
                    )],
                )],
            )],
        )]
    }

    #[test]
    fn stmt_at_navigates_nesting() {
        let block = sample_block();
        let inner = stmt_at(&block, &[0, 0, 0, 0]).unwrap();
        assert!(matches!(inner, Stmt::Reduce { .. }));
        assert!(stmt_at(&block, &[0, 1]).is_none());
        assert!(stmt_at(&block, &[]).is_none());
    }

    #[test]
    fn walk_visits_preorder() {
        let block = sample_block();
        let visited = walk(&block);
        assert_eq!(visited.len(), 4);
        assert_eq!(visited[0].0, vec![0]);
        assert_eq!(visited[3].0, vec![0, 0, 0, 0]);
    }

    #[test]
    fn splice_replaces_statement() {
        let mut block = sample_block();
        let removed = splice_at(&mut block, &[0, 0, 0], vec![Stmt::Comment("gone".into())]).unwrap();
        assert!(matches!(removed, Stmt::For { .. }));
        let got = stmt_at(&block, &[0, 0, 0]).unwrap();
        assert!(matches!(got, Stmt::Comment(_)));
    }

    #[test]
    fn splice_can_expand_block() {
        let mut block = sample_block();
        splice_at(&mut block, &[0, 0], vec![Stmt::Comment("a".into()), Stmt::Comment("b".into())]).unwrap();
        let parent = stmt_at(&block, &[0]).unwrap();
        assert_eq!(parent.child_block().unwrap().len(), 2);
    }

    #[test]
    fn read_write_sets() {
        let block = sample_block();
        let stmt = &block[0];
        let written = stmt.written_bufs();
        let read = stmt.read_bufs();
        assert!(written.contains(&"C".into()));
        assert!(read.contains(&"Ac".into()));
        assert!(read.contains(&"Bc".into()));
        // A reduction also reads its destination.
        assert!(read.contains(&"C".into()));
    }

    #[test]
    fn uses_var_respects_shadowing() {
        let stmt = Stmt::for_("i", 0, 4, vec![Stmt::assign("x", vec![v("i")], Expr::int(0))]);
        assert!(!stmt.uses_var(&"i".into()), "the loop binds its own i");
        let stmt2 = Stmt::for_("j", 0, v("i"), vec![]);
        assert!(stmt2.uses_var(&"i".into()), "bound is an outer i");
    }

    #[test]
    fn subst_respects_shadowing() {
        let stmt = Stmt::for_("i", 0, v("n"), vec![Stmt::assign("x", vec![v("i")], v("i"))]);
        let mut map = BTreeMap::new();
        map.insert(Sym::new("i"), Expr::int(7));
        map.insert(Sym::new("n"), Expr::int(3));
        let out = stmt.subst(&map);
        match out {
            Stmt::For { hi, body, .. } => {
                assert_eq!(hi, Expr::int(3));
                match &body[0] {
                    Stmt::Assign { idx, .. } => assert_eq!(idx[0], v("i")),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn window_rank_counts_intervals() {
        let w = WindowExpr::new(
            "C_reg",
            vec![
                WAccess::Point(v("jt")),
                WAccess::Point(v("it")),
                WAccess::Interval(Expr::int(0), Expr::int(4)),
            ],
        );
        assert_eq!(w.rank(), 1);
        assert!(w.free_syms().contains(&"C_reg".into()));
    }

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(!CmpOp::Ne.eval(2, 2));
    }
}
