//! Alpha-equivalence: structural comparison of statements and procedures up to
//! consistent renaming of bound loop variables.
//!
//! Used by the scheduling layer's tests (a transformed program should differ
//! from the original in structure, not by accident of naming) and by the
//! `replace` operator's verification step.

use std::collections::BTreeMap;

use crate::expr::Expr;
use crate::proc::Proc;
use crate::stmt::{CallArg, Stmt, WAccess};
use crate::sym::Sym;

/// A bidirectional renaming between bound variables of the two sides.
#[derive(Debug, Default, Clone)]
struct Renaming {
    left_to_right: BTreeMap<Sym, Sym>,
    right_to_left: BTreeMap<Sym, Sym>,
}

impl Renaming {
    fn bind(&self, a: &Sym, b: &Sym) -> Option<Renaming> {
        if let Some(existing) = self.left_to_right.get(a) {
            if existing != b {
                return None;
            }
        }
        if let Some(existing) = self.right_to_left.get(b) {
            if existing != a {
                return None;
            }
        }
        let mut next = self.clone();
        next.left_to_right.insert(a.clone(), b.clone());
        next.right_to_left.insert(b.clone(), a.clone());
        Some(next)
    }

    fn syms_equal(&self, a: &Sym, b: &Sym) -> bool {
        match self.left_to_right.get(a) {
            Some(mapped) => mapped == b,
            // Free symbols (buffers, arguments) must match exactly and must
            // not be captured by a binding on the other side.
            None => a == b && !self.right_to_left.contains_key(b),
        }
    }
}

fn exprs_eq(a: &Expr, b: &Expr, ren: &Renaming) -> bool {
    match (a, b) {
        (Expr::Int(x), Expr::Int(y)) => x == y,
        (Expr::Float(x), Expr::Float(y)) => x == y,
        (Expr::Var(x), Expr::Var(y)) => ren.syms_equal(x, y),
        (Expr::Read { buf: b1, idx: i1 }, Expr::Read { buf: b2, idx: i2 }) => {
            ren.syms_equal(b1, b2)
                && i1.len() == i2.len()
                && i1.iter().zip(i2).all(|(x, y)| exprs_eq(x, y, ren))
        }
        (Expr::Binop { op: o1, lhs: l1, rhs: r1 }, Expr::Binop { op: o2, lhs: l2, rhs: r2 }) => {
            o1 == o2 && exprs_eq(l1, l2, ren) && exprs_eq(r1, r2, ren)
        }
        (Expr::Neg(x), Expr::Neg(y)) => exprs_eq(x, y, ren),
        _ => false,
    }
}

fn waccess_eq(a: &WAccess, b: &WAccess, ren: &Renaming) -> bool {
    match (a, b) {
        (WAccess::Point(x), WAccess::Point(y)) => exprs_eq(x, y, ren),
        (WAccess::Interval(l1, h1), WAccess::Interval(l2, h2)) => {
            exprs_eq(l1, l2, ren) && exprs_eq(h1, h2, ren)
        }
        _ => false,
    }
}

fn blocks_eq(a: &[Stmt], b: &[Stmt], ren: &Renaming) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(x, y)| stmts_eq_inner(x, y, ren))
}

fn stmts_eq_inner(a: &Stmt, b: &Stmt, ren: &Renaming) -> bool {
    match (a, b) {
        (Stmt::Comment(_), Stmt::Comment(_)) => true,
        (Stmt::Assign { buf: b1, idx: i1, rhs: r1 }, Stmt::Assign { buf: b2, idx: i2, rhs: r2 })
        | (Stmt::Reduce { buf: b1, idx: i1, rhs: r1 }, Stmt::Reduce { buf: b2, idx: i2, rhs: r2 }) => {
            ren.syms_equal(b1, b2)
                && i1.len() == i2.len()
                && i1.iter().zip(i2).all(|(x, y)| exprs_eq(x, y, ren))
                && exprs_eq(r1, r2, ren)
        }
        (
            Stmt::For { var: v1, lo: l1, hi: h1, body: bd1 },
            Stmt::For { var: v2, lo: l2, hi: h2, body: bd2 },
        ) => {
            if !exprs_eq(l1, l2, ren) || !exprs_eq(h1, h2, ren) {
                return false;
            }
            match ren.bind(v1, v2) {
                Some(inner) => blocks_eq(bd1, bd2, &inner),
                None => false,
            }
        }
        (
            Stmt::Alloc { name: n1, ty: t1, dims: d1, mem: m1 },
            Stmt::Alloc { name: n2, ty: t2, dims: d2, mem: m2 },
        ) => {
            // Allocations introduce buffer names that are treated as free
            // symbols elsewhere, so require identical names.
            n1 == n2
                && t1 == t2
                && m1 == m2
                && d1.len() == d2.len()
                && d1.iter().zip(d2).all(|(x, y)| exprs_eq(x, y, ren))
        }
        (Stmt::Call { instr: p1, args: a1 }, Stmt::Call { instr: p2, args: a2 }) => {
            p1.name == p2.name
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| match (x, y) {
                    (CallArg::Expr(e1), CallArg::Expr(e2)) => exprs_eq(e1, e2, ren),
                    (CallArg::Window(w1), CallArg::Window(w2)) => {
                        ren.syms_equal(&w1.buf, &w2.buf)
                            && w1.idx.len() == w2.idx.len()
                            && w1.idx.iter().zip(&w2.idx).all(|(p, q)| waccess_eq(p, q, ren))
                    }
                    _ => false,
                })
        }
        (
            Stmt::If { cond: c1, then_body: t1, else_body: e1 },
            Stmt::If { cond: c2, then_body: t2, else_body: e2 },
        ) => {
            c1.op == c2.op
                && exprs_eq(&c1.lhs, &c2.lhs, ren)
                && exprs_eq(&c1.rhs, &c2.rhs, ren)
                && blocks_eq(t1, t2, ren)
                && blocks_eq(e1, e2, ren)
        }
        _ => false,
    }
}

/// Whether two statements are equal up to renaming of loop variables bound
/// within them. Free symbols (arguments, buffers) must match by name.
pub fn stmts_alpha_eq(a: &Stmt, b: &Stmt) -> bool {
    stmts_eq_inner(a, b, &Renaming::default())
}

/// Whether two statement blocks are alpha-equivalent element-wise.
pub fn blocks_alpha_eq(a: &[Stmt], b: &[Stmt]) -> bool {
    blocks_eq(a, b, &Renaming::default())
}

/// Whether two procedures are alpha-equivalent: same argument kinds in the
/// same order (argument names are bound, so they may differ) and
/// alpha-equivalent bodies.
pub fn procs_alpha_eq(a: &Proc, b: &Proc) -> bool {
    if a.args.len() != b.args.len() {
        return false;
    }
    let mut ren = Renaming::default();
    for (x, y) in a.args.iter().zip(&b.args) {
        use crate::proc::ArgKind;
        let kinds_match = match (&x.kind, &y.kind) {
            (ArgKind::Size, ArgKind::Size) | (ArgKind::Index, ArgKind::Index) => true,
            (
                ArgKind::Tensor { ty: t1, dims: d1, mem: m1 },
                ArgKind::Tensor { ty: t2, dims: d2, mem: m2 },
            ) => {
                t1 == t2
                    && m1 == m2
                    && d1.len() == d2.len()
                    && d1.iter().zip(d2).all(|(p, q)| exprs_eq(p, q, &ren))
            }
            _ => false,
        };
        if !kinds_match {
            return false;
        }
        ren = match ren.bind(&x.name, &y.name) {
            Some(r) => r,
            None => return false,
        };
    }
    blocks_eq(&a.body, &b.body, &ren)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::types::{MemSpace, ScalarType};

    #[test]
    fn loop_variable_names_do_not_matter() {
        let a = for_("i", 0, 4, vec![assign("x", vec![var("i")], var("i"))]);
        let b = for_("q", 0, 4, vec![assign("x", vec![var("q")], var("q"))]);
        assert!(stmts_alpha_eq(&a, &b));
    }

    #[test]
    fn buffer_names_do_matter() {
        let a = for_("i", 0, 4, vec![assign("x", vec![var("i")], flt(0.0))]);
        let b = for_("i", 0, 4, vec![assign("y", vec![var("i")], flt(0.0))]);
        assert!(!stmts_alpha_eq(&a, &b));
    }

    #[test]
    fn inconsistent_renaming_rejected() {
        let a = for_("i", 0, 4, vec![assign("x", vec![var("i")], var("i"))]);
        let b = for_("q", 0, 4, vec![assign("x", vec![var("q")], var("r"))]);
        assert!(!stmts_alpha_eq(&a, &b));
    }

    #[test]
    fn bound_cannot_capture_free() {
        // `for q ... x[j]` vs `for j ... x[j]`: the free j on the left must not
        // be identified with the bound j on the right.
        let a = for_("q", 0, 4, vec![assign("x", vec![var("j")], flt(0.0))]);
        let b = for_("j", 0, 4, vec![assign("x", vec![var("j")], flt(0.0))]);
        assert!(!stmts_alpha_eq(&a, &b));
    }

    #[test]
    fn nesting_and_structure_must_match() {
        let a = for_("i", 0, 4, vec![assign("x", vec![var("i")], flt(0.0))]);
        let b = for_("i", 0, 4, vec![reduce("x", vec![var("i")], flt(0.0))]);
        assert!(!stmts_alpha_eq(&a, &b));
        let c = for_("i", 0, 5, vec![assign("x", vec![var("i")], flt(0.0))]);
        assert!(!stmts_alpha_eq(&a, &c));
    }

    #[test]
    fn procs_alpha_eq_allows_renamed_args() {
        let p1 = proc("p")
            .size_arg("N")
            .tensor_arg("x", ScalarType::F32, vec![var("N")], MemSpace::Dram)
            .body(vec![for_("i", 0, var("N"), vec![assign("x", vec![var("i")], flt(1.0))])])
            .build();
        let p2 = proc("q")
            .size_arg("M")
            .tensor_arg("x", ScalarType::F32, vec![var("M")], MemSpace::Dram)
            .body(vec![for_("t", 0, var("M"), vec![assign("x", vec![var("t")], flt(1.0))])])
            .build();
        assert!(procs_alpha_eq(&p1, &p2));
    }

    #[test]
    fn procs_with_different_arg_kinds_differ() {
        let p1 = proc("p").size_arg("N").body(vec![]).build();
        let p2 = proc("p").index_arg("N").body(vec![]).build();
        assert!(!procs_alpha_eq(&p1, &p2));
    }

    #[test]
    fn comments_are_ignored_in_content() {
        let a = comment("hello");
        let b = comment("world");
        assert!(stmts_alpha_eq(&a, &b));
    }
}
