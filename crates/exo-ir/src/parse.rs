//! A small parser for the textual expression and window fragments that appear
//! in user scheduling code, e.g. `stage_mem(p, "C[_] += _", "C[4 * jt + jtt, 4 * it + itt]", "C_reg")`.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := unary (('*' | '/' | '%') unary)*
//! unary   := '-' unary | atom
//! atom    := INT | FLOAT | IDENT ('[' access (',' access)* ']')? | '(' expr ')' | '_'
//! access  := expr (':' expr)?          // ':' makes an interval
//! ```
//!
//! The wildcard `_` parses into a variable named `_`, which the pattern
//! matcher in `exo-sched` treats as "match anything".

use std::fmt;

use crate::expr::{BinOp, Expr};
use crate::stmt::{WAccess, WindowExpr};
use crate::sym::Sym;

/// Error produced by the fragment parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input at which the error was detected.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src: src.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), at: self.pos }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", c as char)))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            let is_ident = c.is_ascii_alphanumeric() || c == b'_';
            let is_start_ok = self.pos > start || !c.is_ascii_digit();
            if is_ident && is_start_ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos > start {
            Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
        } else {
            None
        }
    }

    fn number(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_digit() {
                self.pos += 1;
            } else if c == b'.' && !is_float {
                is_float = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        if text.is_empty() {
            return Err(self.error("expected a number"));
        }
        if is_float {
            text.parse::<f64>().map(Expr::Float).map_err(|e| self.error(e.to_string()))
        } else {
            text.parse::<i64>().map(Expr::Int).map_err(|e| self.error(e.to_string()))
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.bump();
                let e = self.expr()?;
                self.expect(b')')?;
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident().ok_or_else(|| self.error("expected identifier"))?;
                if self.peek() == Some(b'[') {
                    self.bump();
                    let mut idx = Vec::new();
                    loop {
                        let access = self.access()?;
                        match access {
                            WAccess::Point(e) => idx.push(e),
                            WAccess::Interval(_, _) => {
                                return Err(self.error(
                                    "interval access is only allowed in window position; use parse_window",
                                ))
                            }
                        }
                        if self.eat(b',') {
                            continue;
                        }
                        self.expect(b']')?;
                        break;
                    }
                    Ok(Expr::Read { buf: Sym::new(name), idx })
                } else {
                    Ok(Expr::Var(Sym::new(name)))
                }
            }
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn access(&mut self) -> Result<WAccess, ParseError> {
        let lo = self.expr()?;
        if self.eat(b':') {
            let hi = self.expr()?;
            Ok(WAccess::Interval(lo, hi))
        } else {
            Ok(WAccess::Point(lo))
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(b'-') {
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.atom()
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(b'*') => BinOp::Mul,
                Some(b'/') => BinOp::Div,
                Some(b'%') => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binop { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(b'+') => BinOp::Add,
                Some(b'-') => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Binop { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn window(&mut self) -> Result<WindowExpr, ParseError> {
        let name = self.ident().ok_or_else(|| self.error("expected buffer name"))?;
        self.expect(b'[')?;
        let mut idx = Vec::new();
        loop {
            idx.push(self.access()?);
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            break;
        }
        Ok(WindowExpr::new(name, idx))
    }

    fn finish(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.pos == self.src.len() {
            Ok(())
        } else {
            Err(self.error("trailing input"))
        }
    }
}

/// Parses an expression fragment such as `"4 * jt + jtt"` or `"Ac[k, i]"`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing characters.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src);
    let e = p.expr()?;
    p.finish()?;
    Ok(e)
}

/// Parses a window fragment such as `"C[4 * jt + jtt, 4 * it + itt]"` or
/// `"A_reg[it, 0:4]"`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing characters.
pub fn parse_window(src: &str) -> Result<WindowExpr, ParseError> {
    let mut p = Parser::new(src);
    let w = p.window()?;
    p.finish()?;
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn parses_affine_index() {
        let e = parse_expr("4 * jt + jtt").unwrap();
        assert_eq!(e, Expr::add(Expr::mul(int(4), var("jt")), var("jtt")));
    }

    #[test]
    fn parses_reads_and_precedence() {
        let e = parse_expr("Ac[k, 4*it + itt] * Bc[k, jt]").unwrap();
        match e {
            Expr::Binop { op: BinOp::Mul, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        let e2 = parse_expr("(a + b) * c").unwrap();
        assert_eq!(e2, Expr::mul(Expr::add(var("a"), var("b")), var("c")));
    }

    #[test]
    fn parses_negation_and_floats() {
        assert_eq!(parse_expr("-3").unwrap(), Expr::Neg(Box::new(int(3))));
        assert_eq!(parse_expr("2.5").unwrap(), flt(2.5));
    }

    #[test]
    fn parses_wildcard_as_var() {
        let e = parse_expr("C[_]").unwrap();
        assert_eq!(e, Expr::read("C", vec![var("_")]));
    }

    #[test]
    fn parses_window_with_interval() {
        let w = parse_window("C_reg[4 * jt + jtt, it, 0:4]").unwrap();
        assert_eq!(w.buf, "C_reg");
        assert_eq!(w.idx.len(), 3);
        assert!(w.idx[2].is_interval());
        assert_eq!(w.rank(), 1);
    }

    #[test]
    fn window_point_form_round_trips_through_printer() {
        let w = parse_window("C[4 * jt + jtt, 4 * it + itt]").unwrap();
        let s = crate::printer::window_to_string(&w);
        assert_eq!(s, "C[4 * jt + jtt, 4 * it + itt]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_expr("a + b )").is_err());
        assert!(parse_expr("").is_err());
        assert!(parse_window("noindex").is_err());
    }

    #[test]
    fn rejects_interval_outside_window() {
        assert!(parse_expr("C[0:4]").is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = parse_expr("a + ").unwrap_err();
        assert!(err.at >= 3);
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn division_and_modulo_parse() {
        let e = parse_expr("MR / 4 % 2").unwrap();
        // Left-associative: (MR / 4) % 2
        assert_eq!(e, Expr::rem(Expr::div(var("MR"), int(4)), int(2)));
    }
}
