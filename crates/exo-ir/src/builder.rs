//! Concise construction helpers for IR fragments.
//!
//! Builder-style code (used heavily by `exo-isa` and `ukernel-gen`) reads much
//! closer to the paper's Python listings with these helpers:
//!
//! ```
//! use exo_ir::builder::*;
//! use exo_ir::{MemSpace, ScalarType};
//!
//! // for i in seq(0, 4): dst[i] = src[i]
//! let body = vec![for_("i", 0, 4, vec![assign("dst", vec![var("i")], read("src", vec![var("i")]))])];
//! let p = proc("copy4")
//!     .tensor_arg("dst", ScalarType::F32, vec![int(4)], MemSpace::Dram)
//!     .tensor_arg("src", ScalarType::F32, vec![int(4)], MemSpace::Dram)
//!     .body(body)
//!     .build();
//! assert!(p.validate().is_ok());
//! ```

use std::sync::Arc;

use crate::expr::Expr;
use crate::proc::{InstrInfo, Proc, ProcArg};
use crate::stmt::{CallArg, CmpOp, Cond, Stmt, WAccess, WindowExpr};
use crate::sym::Sym;
use crate::types::{MemSpace, ScalarType};

/// Variable reference.
pub fn var(name: impl Into<Sym>) -> Expr {
    Expr::var(name)
}

/// Integer literal.
pub fn int(v: i64) -> Expr {
    Expr::int(v)
}

/// Float literal.
pub fn flt(v: f64) -> Expr {
    Expr::float(v)
}

/// Buffer read.
pub fn read(buf: impl Into<Sym>, idx: Vec<Expr>) -> Expr {
    Expr::read(buf, idx)
}

/// `for var in seq(lo, hi): body`
pub fn for_(v: impl Into<Sym>, lo: impl Into<Expr>, hi: impl Into<Expr>, body: Vec<Stmt>) -> Stmt {
    Stmt::for_(v, lo, hi, body)
}

/// `buf[idx] = rhs`
pub fn assign(buf: impl Into<Sym>, idx: Vec<Expr>, rhs: Expr) -> Stmt {
    Stmt::assign(buf, idx, rhs)
}

/// `buf[idx] += rhs`
pub fn reduce(buf: impl Into<Sym>, idx: Vec<Expr>, rhs: Expr) -> Stmt {
    Stmt::reduce(buf, idx, rhs)
}

/// Buffer allocation statement.
pub fn alloc(name: impl Into<Sym>, ty: ScalarType, dims: Vec<Expr>, mem: MemSpace) -> Stmt {
    Stmt::alloc(name, ty, dims, mem)
}

/// Instruction call statement.
pub fn call(instr: &Arc<Proc>, args: Vec<CallArg>) -> Stmt {
    Stmt::call(instr.clone(), args)
}

/// Comment statement.
pub fn comment(text: impl Into<String>) -> Stmt {
    Stmt::Comment(text.into())
}

/// `if lhs op rhs: then_body`
pub fn if_(op: CmpOp, lhs: Expr, rhs: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
    Stmt::If { cond: Cond { op, lhs, rhs }, then_body, else_body }
}

/// Point access within a window.
pub fn pt(e: Expr) -> WAccess {
    WAccess::Point(e)
}

/// Interval access `[lo, hi)` within a window.
pub fn interval(lo: impl Into<Expr>, hi: impl Into<Expr>) -> WAccess {
    WAccess::Interval(lo.into(), hi.into())
}

/// Window call argument.
pub fn win(buf: impl Into<Sym>, idx: Vec<WAccess>) -> CallArg {
    CallArg::Window(WindowExpr::new(buf, idx))
}

/// Scalar / index call argument.
pub fn arg_expr(e: Expr) -> CallArg {
    CallArg::Expr(e)
}

/// Fluent builder for [`Proc`].
#[derive(Debug, Default)]
pub struct ProcBuilder {
    name: String,
    args: Vec<ProcArg>,
    body: Vec<Stmt>,
    instr: Option<InstrInfo>,
}

/// Starts building a procedure with the given name.
pub fn proc(name: impl Into<String>) -> ProcBuilder {
    ProcBuilder { name: name.into(), ..ProcBuilder::default() }
}

impl ProcBuilder {
    /// Adds a `size` argument.
    pub fn size_arg(mut self, name: impl Into<Sym>) -> Self {
        self.args.push(ProcArg::size(name));
        self
    }

    /// Adds an `index` argument.
    pub fn index_arg(mut self, name: impl Into<Sym>) -> Self {
        self.args.push(ProcArg::index(name));
        self
    }

    /// Adds a tensor argument.
    pub fn tensor_arg(
        mut self,
        name: impl Into<Sym>,
        ty: ScalarType,
        dims: Vec<Expr>,
        mem: MemSpace,
    ) -> Self {
        self.args.push(ProcArg::tensor(name, ty, dims, mem));
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: Vec<Stmt>) -> Self {
        self.body = body;
        self
    }

    /// Marks the procedure as an instruction specification.
    pub fn instr_info(mut self, info: InstrInfo) -> Self {
        self.instr = Some(info);
        self
    }

    /// Finishes building.
    pub fn build(self) -> Proc {
        Proc { name: self.name, args: self.args, body: self.body, instr: self.instr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::InstrClass;

    #[test]
    fn builder_produces_valid_proc() {
        let p = proc("p")
            .size_arg("N")
            .tensor_arg("x", ScalarType::F32, vec![var("N")], MemSpace::Dram)
            .body(vec![for_("i", 0, var("N"), vec![assign("x", vec![var("i")], flt(1.0))])])
            .build();
        assert!(p.validate().is_ok());
        assert_eq!(p.args.len(), 2);
    }

    #[test]
    fn instr_builder_sets_metadata() {
        let p = proc("neon_vld_4xf32")
            .tensor_arg("dst", ScalarType::F32, vec![int(4)], MemSpace::Neon)
            .tensor_arg("src", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .body(vec![for_("i", 0, 4, vec![assign("dst", vec![var("i")], read("src", vec![var("i")]))])])
            .instr_info(InstrInfo::new(
                "{dst_data} = vld1q_f32(&{src_data});",
                InstrClass::VecLoad,
                4,
                ScalarType::F32,
            ))
            .build();
        assert!(p.is_instr());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn window_helpers_compose() {
        let w = win("C_reg", vec![pt(var("jt")), interval(0, 4)]);
        match w {
            CallArg::Window(w) => assert_eq!(w.rank(), 1),
            _ => panic!("expected window"),
        }
    }
}
