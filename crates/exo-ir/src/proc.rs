//! Procedures: the top-level schedulable unit, equivalent to an Exo `@proc`
//! (or `@instr` when carrying instruction metadata).

use std::collections::BTreeSet;
use std::fmt;

use crate::expr::Expr;
use crate::stmt::{walk, Stmt};
use crate::sym::Sym;
use crate::types::{MemSpace, ScalarType};

/// The kind of a procedure argument.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgKind {
    /// A `size` parameter: a positive integer fixed at call time (e.g. `KC`).
    Size,
    /// An `index` parameter: an integer used in subscripts (e.g. the lane
    /// number `l` of `vfmaq_laneq_f32`).
    Index,
    /// A tensor (buffer) parameter with element type, dimensions and memory
    /// placement. Scalars such as `alpha: f32[1]` are rank-1 tensors of
    /// extent 1, exactly as in the paper's listings.
    Tensor {
        /// Element type.
        ty: ScalarType,
        /// Dimension extents (may reference `size` parameters).
        dims: Vec<Expr>,
        /// Memory placement.
        mem: MemSpace,
    },
}

impl ArgKind {
    /// Shorthand for a tensor argument.
    pub fn tensor(ty: ScalarType, dims: Vec<Expr>, mem: MemSpace) -> ArgKind {
        ArgKind::Tensor { ty, dims, mem }
    }

    /// Whether this argument is a buffer.
    pub fn is_tensor(&self) -> bool {
        matches!(self, ArgKind::Tensor { .. })
    }
}

/// A named procedure argument.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcArg {
    /// Argument name.
    pub name: Sym,
    /// Argument kind.
    pub kind: ArgKind,
}

impl ProcArg {
    /// Creates an argument.
    pub fn new(name: impl Into<Sym>, kind: ArgKind) -> Self {
        ProcArg { name: name.into(), kind }
    }

    /// Creates a `size` argument.
    pub fn size(name: impl Into<Sym>) -> Self {
        ProcArg::new(name, ArgKind::Size)
    }

    /// Creates an `index` argument.
    pub fn index(name: impl Into<Sym>) -> Self {
        ProcArg::new(name, ArgKind::Index)
    }

    /// Creates a tensor argument.
    pub fn tensor(name: impl Into<Sym>, ty: ScalarType, dims: Vec<Expr>, mem: MemSpace) -> Self {
        ProcArg::new(name, ArgKind::tensor(ty, dims, mem))
    }
}

/// Machine-level classification of an instruction, consumed by the
/// performance model (`carmel-sim`) when it executes instruction traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Vector load from memory into a register.
    VecLoad,
    /// Vector store from a register to memory.
    VecStore,
    /// Vector fused multiply-add, optionally indexed by a lane of the second
    /// source ("laneq" form).
    VecFma,
    /// Broadcast (duplicate) a scalar across a vector register.
    VecBroadcast,
    /// Vector multiply.
    VecMul,
    /// Vector add.
    VecAdd,
    /// Zero a vector register.
    VecZero,
    /// Software prefetch hint.
    Prefetch,
    /// Anything else (modelled as a generic single-issue ALU op).
    Other,
}

/// Metadata attached to an `@instr` procedure: how to print it as a C
/// intrinsic and how the hardware model should account for it.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrInfo {
    /// C format string with `{arg}` placeholders, e.g.
    /// `"vst1q_f32(&{dst_data}, {src_data});"`.
    pub c_format: String,
    /// Machine-level classification.
    pub class: InstrClass,
    /// Number of vector lanes the instruction operates on.
    pub lanes: usize,
    /// Element type of each lane.
    pub elem: ScalarType,
}

impl InstrInfo {
    /// Creates instruction metadata.
    pub fn new(c_format: impl Into<String>, class: InstrClass, lanes: usize, elem: ScalarType) -> Self {
        InstrInfo { c_format: c_format.into(), class, lanes, elem }
    }
}

/// A procedure: name, arguments, body, and optional instruction metadata.
///
/// This is the unit that scheduling operators rewrite and that backends
/// consume.
#[derive(Debug, Clone, PartialEq)]
pub struct Proc {
    /// Procedure name (becomes the C function name).
    pub name: String,
    /// Ordered argument list.
    pub args: Vec<ProcArg>,
    /// Statement body.
    pub body: Vec<Stmt>,
    /// Present when this procedure is a hardware instruction specification
    /// (the paper's `@instr` definitions, Fig. 3).
    pub instr: Option<InstrInfo>,
}

impl Proc {
    /// Creates a plain (schedulable) procedure.
    pub fn new(name: impl Into<String>, args: Vec<ProcArg>, body: Vec<Stmt>) -> Self {
        Proc { name: name.into(), args, body, instr: None }
    }

    /// Creates an instruction specification procedure.
    pub fn instr(name: impl Into<String>, args: Vec<ProcArg>, body: Vec<Stmt>, info: InstrInfo) -> Self {
        Proc { name: name.into(), args, body, instr: Some(info) }
    }

    /// Whether this procedure is an instruction specification.
    pub fn is_instr(&self) -> bool {
        self.instr.is_some()
    }

    /// Looks up an argument by name.
    pub fn arg(&self, name: &Sym) -> Option<&ProcArg> {
        self.args.iter().find(|a| &a.name == name)
    }

    /// Returns the formal tensor parameters written by the body.
    pub fn written_params(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        for stmt in &self.body {
            for name in stmt.written_bufs() {
                if self.arg(&name).is_some() {
                    out.insert(name);
                }
            }
        }
        out
    }

    /// Returns the formal tensor parameters read by the body.
    pub fn read_params(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        for stmt in &self.body {
            for name in stmt.read_bufs() {
                if self.arg(&name).is_some() {
                    out.insert(name);
                }
            }
        }
        out
    }

    /// Every symbol appearing anywhere in the procedure (arguments, loop
    /// variables, buffers). Used for fresh-name generation.
    pub fn all_syms(&self) -> BTreeSet<Sym> {
        let mut out: BTreeSet<Sym> = self.args.iter().map(|a| a.name.clone()).collect();
        for stmt in &self.body {
            out.extend(stmt.all_syms());
        }
        out
    }

    /// Generates a name derived from `base` that does not collide with any
    /// symbol already used in the procedure.
    pub fn fresh_sym(&self, base: &str) -> Sym {
        let taken = self.all_syms();
        Sym::new(base).freshen(&taken)
    }

    /// Simplifies every expression in the body.
    pub fn simplified(&self) -> Proc {
        Proc {
            name: self.name.clone(),
            args: self.args.clone(),
            body: self.body.iter().map(Stmt::simplify).collect(),
            instr: self.instr.clone(),
        }
    }

    /// Validates well-formedness of the procedure.
    ///
    /// # Errors
    ///
    /// Returns [`IrError`] if an argument name is duplicated, a statement
    /// references an unbound symbol, a buffer is allocated twice, or an
    /// allocation shadows an argument.
    pub fn validate(&self) -> Result<(), IrError> {
        let mut bound: BTreeSet<Sym> = BTreeSet::new();
        for arg in &self.args {
            if !bound.insert(arg.name.clone()) {
                return Err(IrError::DuplicateName { proc: self.name.clone(), name: arg.name.clone() });
            }
        }
        // Dimensions of tensor args may only reference size args.
        let sizes: BTreeSet<Sym> =
            self.args.iter().filter(|a| matches!(a.kind, ArgKind::Size)).map(|a| a.name.clone()).collect();
        for arg in &self.args {
            if let ArgKind::Tensor { dims, .. } = &arg.kind {
                for d in dims {
                    for s in d.free_syms() {
                        if !sizes.contains(&s) {
                            return Err(IrError::UnboundSymbol {
                                proc: self.name.clone(),
                                name: s,
                                context: format!("dimension of argument `{}`", arg.name),
                            });
                        }
                    }
                }
            }
        }
        self.validate_block(&self.body, &mut bound)?;
        Ok(())
    }

    fn validate_block(&self, block: &[Stmt], bound: &mut BTreeSet<Sym>) -> Result<(), IrError> {
        let mut locally_bound: Vec<Sym> = Vec::new();
        for stmt in block {
            match stmt {
                Stmt::Alloc { name, dims, .. } => {
                    for d in dims {
                        self.check_expr_bound(d, bound, "allocation dimension")?;
                    }
                    if bound.contains(name) {
                        return Err(IrError::DuplicateName { proc: self.name.clone(), name: name.clone() });
                    }
                    bound.insert(name.clone());
                    locally_bound.push(name.clone());
                }
                Stmt::Assign { buf, idx, rhs } | Stmt::Reduce { buf, idx, rhs } => {
                    if !bound.contains(buf) {
                        return Err(IrError::UnboundSymbol {
                            proc: self.name.clone(),
                            name: buf.clone(),
                            context: "assignment target".into(),
                        });
                    }
                    for e in idx {
                        self.check_expr_bound(e, bound, "subscript")?;
                    }
                    self.check_expr_bound(rhs, bound, "right-hand side")?;
                }
                Stmt::For { var, lo, hi, body } => {
                    self.check_expr_bound(lo, bound, "loop bound")?;
                    self.check_expr_bound(hi, bound, "loop bound")?;
                    let fresh_here = !bound.contains(var);
                    if fresh_here {
                        bound.insert(var.clone());
                    }
                    self.validate_block(body, bound)?;
                    if fresh_here {
                        bound.remove(var);
                    }
                }
                Stmt::Call { instr, args } => {
                    if args.len() != instr.args.len() {
                        return Err(IrError::ArityMismatch {
                            proc: self.name.clone(),
                            callee: instr.name.clone(),
                            expected: instr.args.len(),
                            got: args.len(),
                        });
                    }
                    for arg in args {
                        for s in arg.free_syms() {
                            // Window buffer names and index variables must both be bound.
                            if !bound.contains(&s) {
                                return Err(IrError::UnboundSymbol {
                                    proc: self.name.clone(),
                                    name: s,
                                    context: format!("argument of call to `{}`", instr.name),
                                });
                            }
                        }
                    }
                }
                Stmt::If { cond, then_body, else_body } => {
                    self.check_expr_bound(&cond.lhs, bound, "if condition")?;
                    self.check_expr_bound(&cond.rhs, bound, "if condition")?;
                    self.validate_block(then_body, bound)?;
                    self.validate_block(else_body, bound)?;
                }
                Stmt::Comment(_) => {}
            }
        }
        for name in locally_bound {
            bound.remove(&name);
        }
        Ok(())
    }

    fn check_expr_bound(&self, e: &Expr, bound: &BTreeSet<Sym>, context: &str) -> Result<(), IrError> {
        for s in e.free_syms() {
            if !bound.contains(&s) {
                return Err(IrError::UnboundSymbol {
                    proc: self.name.clone(),
                    name: s,
                    context: context.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Counts statements in the body (recursively), a rough complexity metric
    /// used in tests and reports.
    pub fn stmt_count(&self) -> usize {
        walk(&self.body).len()
    }
}

/// Errors produced while constructing or validating IR.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// Two bindings share the same name.
    DuplicateName {
        /// Procedure in which the error occurred.
        proc: String,
        /// The offending name.
        name: Sym,
    },
    /// A symbol is referenced but never bound.
    UnboundSymbol {
        /// Procedure in which the error occurred.
        proc: String,
        /// The offending name.
        name: Sym,
        /// What the symbol was used for.
        context: String,
    },
    /// A call passes the wrong number of arguments.
    ArityMismatch {
        /// Procedure in which the error occurred.
        proc: String,
        /// The callee.
        callee: String,
        /// Number of formal parameters.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DuplicateName { proc, name } => {
                write!(f, "duplicate name `{name}` in procedure `{proc}`")
            }
            IrError::UnboundSymbol { proc, name, context } => {
                write!(f, "unbound symbol `{name}` used as {context} in procedure `{proc}`")
            }
            IrError::ArityMismatch { proc, callee, expected, got } => write!(
                f,
                "call to `{callee}` in procedure `{proc}` expects {expected} arguments but got {got}"
            ),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::stmt::Stmt;

    fn v(s: &str) -> Expr {
        Expr::var(s)
    }

    fn simple_proc() -> Proc {
        Proc::new(
            "ukernel_ref",
            vec![
                ProcArg::size("KC"),
                ProcArg::tensor("Ac", ScalarType::F32, vec![v("KC"), Expr::int(8)], MemSpace::Dram),
                ProcArg::tensor("Bc", ScalarType::F32, vec![v("KC"), Expr::int(12)], MemSpace::Dram),
                ProcArg::tensor("C", ScalarType::F32, vec![Expr::int(12), Expr::int(8)], MemSpace::Dram),
            ],
            vec![Stmt::for_(
                "k",
                0,
                v("KC"),
                vec![Stmt::for_(
                    "j",
                    0,
                    12,
                    vec![Stmt::for_(
                        "i",
                        0,
                        8,
                        vec![Stmt::reduce(
                            "C",
                            vec![v("j"), v("i")],
                            Expr::mul(
                                Expr::read("Ac", vec![v("k"), v("i")]),
                                Expr::read("Bc", vec![v("k"), v("j")]),
                            ),
                        )],
                    )],
                )],
            )],
        )
    }

    #[test]
    fn validates_well_formed_proc() {
        assert_eq!(simple_proc().validate(), Ok(()));
    }

    #[test]
    fn detects_unbound_symbol() {
        let mut p = simple_proc();
        p.body = vec![Stmt::assign("Z", vec![Expr::int(0)], Expr::int(0))];
        match p.validate() {
            Err(IrError::UnboundSymbol { name, .. }) => assert_eq!(name, "Z"),
            other => panic!("expected unbound symbol error, got {other:?}"),
        }
    }

    #[test]
    fn detects_duplicate_arg() {
        let mut p = simple_proc();
        p.args.push(ProcArg::size("KC"));
        assert!(matches!(p.validate(), Err(IrError::DuplicateName { .. })));
    }

    #[test]
    fn detects_arity_mismatch() {
        let instr = std::sync::Arc::new(Proc::instr(
            "neon_vld_4xf32",
            vec![
                ProcArg::tensor("dst", ScalarType::F32, vec![Expr::int(4)], MemSpace::Neon),
                ProcArg::tensor("src", ScalarType::F32, vec![Expr::int(4)], MemSpace::Dram),
            ],
            vec![Stmt::for_(
                "i",
                0,
                4,
                vec![Stmt::assign("dst", vec![v("i")], Expr::read("src", vec![v("i")]))],
            )],
            InstrInfo::new("{dst_data} = vld1q_f32(&{src_data});", InstrClass::VecLoad, 4, ScalarType::F32),
        ));
        let mut p = simple_proc();
        p.body = vec![Stmt::call(instr, vec![])];
        assert!(matches!(p.validate(), Err(IrError::ArityMismatch { .. })));
    }

    #[test]
    fn written_and_read_params() {
        let p = simple_proc();
        let written = p.written_params();
        let read = p.read_params();
        assert!(written.contains(&"C".into()));
        assert!(!written.contains(&"Ac".into()));
        assert!(read.contains(&"Ac".into()));
        assert!(read.contains(&"Bc".into()));
    }

    #[test]
    fn fresh_sym_avoids_existing_names() {
        let p = simple_proc();
        let s = p.fresh_sym("k");
        assert_eq!(s, "k_1");
        let t = p.fresh_sym("C_reg");
        assert_eq!(t, "C_reg");
    }

    #[test]
    fn tensor_dims_must_use_size_args() {
        let p = Proc::new(
            "bad",
            vec![ProcArg::tensor("A", ScalarType::F32, vec![v("N")], MemSpace::Dram)],
            vec![],
        );
        assert!(matches!(p.validate(), Err(IrError::UnboundSymbol { .. })));
    }

    #[test]
    fn stmt_count_counts_nested() {
        assert_eq!(simple_proc().stmt_count(), 4);
    }

    #[test]
    fn display_of_errors_is_informative() {
        let e = IrError::ArityMismatch { proc: "p".into(), callee: "q".into(), expected: 2, got: 1 };
        let msg = e.to_string();
        assert!(msg.contains("expects 2"));
        assert!(msg.contains('q'));
    }
}
