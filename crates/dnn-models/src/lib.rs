//! # dnn-models
//!
//! The deep-learning workloads of the paper's Section IV-C: the convolution
//! layers of ResNet50 v1.5 and VGG16, lowered to GEMM with the IM2ROW
//! transform at batch size 1 (Tables I and II), together with the per-layer
//! repetition counts needed to reproduce the aggregated inference time
//! figures (Figs. 16 and 18).
//!
//! Two layers of lowering are provided:
//!
//! * [`im2row`] — the *shape* lowering: a [`ConvLayer`] becomes a
//!   [`GemmShape`] (`m`, `n`, `k` plus layer numbers), the unit the
//!   autotuner and the figure harnesses sweep;
//! * [`conv::conv2d`] — the *execution* lowering: run a layer's forward
//!   pass through any [`gemm_blis::GemmExecutor`], feeding pointwise
//!   (1x1, stride 1) convolutions as zero-copy strided views and
//!   materialising im2row panels only when the access pattern genuinely
//!   needs a gather.

#![warn(missing_docs)]

pub mod conv;
pub mod resnet50;
pub mod vgg16;

pub use conv::{conv2d, conv2d_reference, im2row, ConvLayer};
pub use resnet50::resnet50_table;
pub use vgg16::{vgg16_conv_layers, vgg16_table};

/// The GEMM shape `C(m x n) = A(m x k) * B(k x n)` derived from one or more
/// identical convolution layers — a problem *descriptor* (no data); the
/// executable counterpart with views and scalars is
/// [`gemm_blis::GemmProblem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmShape {
    /// Row count of `A` and `C`.
    pub m: usize,
    /// Column count of `B` and `C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Identifiers of the model layers that map to this problem (the paper's
    /// "Layer numbers" column).
    pub layer_numbers: Vec<u32>,
}

impl GemmShape {
    /// Creates a problem.
    pub fn new(m: usize, n: usize, k: usize, layer_numbers: Vec<u32>) -> Self {
        GemmShape { m, n, k, layer_numbers }
    }

    /// Floating-point operations of a single instance of the problem.
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Number of times the problem occurs in one inference pass.
    pub fn occurrences(&self) -> usize {
        self.layer_numbers.len().max(1)
    }
}

/// A model workload: a list of unique GEMM problems with their repetition
/// counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelWorkload {
    /// Human-readable model name.
    pub name: String,
    /// Unique GEMM problems in layer order (the rows of Table I / II).
    pub unique_layers: Vec<GemmShape>,
}

impl ModelWorkload {
    /// Every layer instance in execution order (repeated layers expanded),
    /// as `(layer_number, problem)` pairs — the x-axis of Figs. 16 and 18.
    pub fn instances(&self) -> Vec<(u32, &GemmShape)> {
        let mut out: Vec<(u32, &GemmShape)> = Vec::new();
        for p in &self.unique_layers {
            for &id in &p.layer_numbers {
                out.push((id, p));
            }
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Total floating-point operations of one inference pass.
    pub fn total_flops(&self) -> u64 {
        self.unique_layers.iter().map(|p| p.flops() * p.occurrences() as u64).sum()
    }

    /// The unique GEMM shapes of the workload as `(m, n, k)` triples, in
    /// table order — the shape list an autotuner sweeps to cover the whole
    /// model.
    pub fn gemm_shapes(&self) -> Vec<(usize, usize, usize)> {
        self.unique_layers.iter().map(|p| (p.m, p.n, p.k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_flops() {
        let p = GemmShape::new(100, 10, 4, vec![1]);
        assert_eq!(p.flops(), 8000);
        assert_eq!(p.occurrences(), 1);
    }

    #[test]
    fn resnet_workload_has_20_unique_layers_and_53_instances() {
        let w = resnet50_table();
        assert_eq!(w.unique_layers.len(), 20);
        assert_eq!(w.instances().len(), 53);
        // First layer of Table I.
        assert_eq!(w.unique_layers[0], GemmShape::new(12544, 64, 147, vec![1]));
        // Layer id 083 belongs to the 196 x 256 x 2304 problem.
        let binding = w.instances();
        let (_, p) = binding.iter().find(|(id, _)| *id == 83).unwrap();
        assert_eq!((p.m, p.n, p.k), (196, 256, 2304));
    }

    #[test]
    fn vgg_workload_has_9_unique_layers_and_13_instances() {
        let w = vgg16_table();
        assert_eq!(w.unique_layers.len(), 9);
        assert_eq!(w.instances().len(), 13);
        assert_eq!(w.unique_layers[0], GemmShape::new(50176, 64, 27, vec![1]));
    }

    #[test]
    fn instances_are_sorted_by_layer_number() {
        let w = resnet50_table();
        let ids: Vec<u32> = w.instances().into_iter().map(|(id, _)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        assert_eq!(ids[0], 1);
        assert_eq!(*ids.last().unwrap(), 170);
    }

    #[test]
    fn gemm_shapes_mirror_the_unique_layers() {
        let w = resnet50_table();
        let shapes = w.gemm_shapes();
        assert_eq!(shapes.len(), w.unique_layers.len());
        assert_eq!(shapes[0], (12544, 64, 147));
        // Shapes are unique: the tables deduplicate repeated layers.
        let set: std::collections::BTreeSet<_> = shapes.iter().collect();
        assert_eq!(set.len(), shapes.len());
    }

    #[test]
    fn total_flops_are_in_the_expected_ballpark() {
        // ResNet50 v1.5 convolutions (batch 1) are roughly 7-8 GFLOP,
        // VGG16 roughly 30 GFLOP.
        let r = resnet50_table().total_flops() as f64 / 1.0e9;
        let v = vgg16_table().total_flops() as f64 / 1.0e9;
        assert!(r > 4.0 && r < 10.0, "resnet conv GFLOP = {r}");
        assert!(v > 25.0 && v < 35.0, "vgg conv GFLOP = {v}");
    }
}
