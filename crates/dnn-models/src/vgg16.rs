//! Table II of the paper: the GEMM dimensions of the VGG16 convolution
//! layers at batch size 1, both as the encoded table and derived from the
//! network architecture through [`crate::im2row`].

use crate::conv::{im2row, ConvLayer};
use crate::{GemmShape, ModelWorkload};

/// The 13 convolution layers of VGG16 (all 3x3, stride 1, padding 1), with
/// the paper's layer numbering.
pub fn vgg16_conv_layers() -> Vec<ConvLayer> {
    // (name, layer number, input side, in channels, out channels)
    let specs: Vec<(&str, u32, usize, usize, usize)> = vec![
        ("conv1_1", 1, 224, 3, 64),
        ("conv1_2", 3, 224, 64, 64),
        ("conv2_1", 6, 112, 64, 128),
        ("conv2_2", 8, 112, 128, 128),
        ("conv3_1", 11, 56, 128, 256),
        ("conv3_2", 13, 56, 256, 256),
        ("conv3_3", 15, 56, 256, 256),
        ("conv4_1", 18, 28, 256, 512),
        ("conv4_2", 20, 28, 512, 512),
        ("conv4_3", 22, 28, 512, 512),
        ("conv5_1", 25, 14, 512, 512),
        ("conv5_2", 27, 14, 512, 512),
        ("conv5_3", 29, 14, 512, 512),
    ];
    specs
        .into_iter()
        .map(|(name, number, side, cin, cout)| ConvLayer {
            name: name.to_string(),
            layer_number: number,
            height: side,
            width: side,
            in_channels: cin,
            out_channels: cout,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        })
        .collect()
}

/// The 9 unique GEMM problems of VGG16 (Table II), batch size 1, derived from
/// [`vgg16_conv_layers`] via IM2ROW and grouped by identical dimensions.
pub fn vgg16_table() -> ModelWorkload {
    let mut unique: Vec<GemmShape> = Vec::new();
    for layer in vgg16_conv_layers() {
        let g = im2row(&layer);
        match unique.iter_mut().find(|p| p.m == g.m && p.n == g.n && p.k == g.k) {
            Some(existing) => existing.layer_numbers.push(layer.layer_number),
            None => unique.push(g),
        }
    }
    ModelWorkload { name: "VGG16".to_string(), unique_layers: unique }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_table_matches_the_paper() {
        let expected: Vec<(usize, usize, usize, Vec<u32>)> = vec![
            (50176, 64, 27, vec![1]),
            (50176, 64, 576, vec![3]),
            (12544, 128, 576, vec![6]),
            (12544, 128, 1152, vec![8]),
            (3136, 256, 1152, vec![11]),
            (3136, 256, 2304, vec![13, 15]),
            (784, 512, 2304, vec![18]),
            (784, 512, 4608, vec![20, 22]),
            (196, 512, 4608, vec![25, 27, 29]),
        ];
        let table = vgg16_table();
        assert_eq!(table.unique_layers.len(), expected.len());
        for (got, (m, n, k, ids)) in table.unique_layers.iter().zip(expected) {
            assert_eq!((got.m, got.n, got.k), (m, n, k));
            assert_eq!(got.layer_numbers, ids);
        }
    }

    #[test]
    fn thirteen_convolutions_total() {
        assert_eq!(vgg16_conv_layers().len(), 13);
        assert_eq!(vgg16_table().instances().len(), 13);
    }

    #[test]
    fn all_layers_preserve_spatial_size() {
        for l in vgg16_conv_layers() {
            assert_eq!(l.out_height(), l.height, "3x3/s1/p1 preserves the feature map");
        }
    }
}
