//! Table I of the paper: the GEMM dimensions obtained by applying IM2ROW to
//! the convolution layers of ResNet50 v1.5 at batch size 1.
//!
//! The table is encoded directly from the paper (unique problems plus the
//! layer numbers that share them); the VGG16 counterpart in [`crate::vgg16`]
//! is additionally re-derived from the network architecture as a cross-check
//! of the IM2ROW lowering.

use crate::{GemmShape, ModelWorkload};

/// The 20 unique GEMM problems of ResNet50 v1.5 (Table I), batch size 1.
pub fn resnet50_table() -> ModelWorkload {
    let rows: Vec<(usize, usize, usize, Vec<u32>)> = vec![
        (12544, 64, 147, vec![1]),
        (3136, 64, 64, vec![6]),
        (3136, 64, 576, vec![9, 21, 31]),
        (3136, 256, 64, vec![12, 14, 24, 34]),
        (3136, 64, 256, vec![18, 28]),
        (3136, 128, 256, vec![38]),
        (784, 128, 1152, vec![41, 53, 63, 73]),
        (784, 512, 128, vec![44, 56, 66, 76]),
        (784, 512, 256, vec![46]),
        (784, 128, 512, vec![50, 60, 70]),
        (784, 256, 512, vec![80]),
        (196, 256, 2304, vec![83, 95, 105, 115, 125, 135]),
        (196, 1024, 256, vec![86, 98, 108, 118, 128, 138]),
        (196, 1024, 512, vec![88]),
        (196, 256, 1024, vec![92, 102, 112, 122, 132]),
        (196, 512, 1024, vec![142]),
        (49, 512, 4608, vec![145, 157, 167]),
        (49, 2048, 512, vec![148, 160, 170]),
        (49, 2048, 1024, vec![150]),
        (49, 512, 2048, vec![154, 164]),
    ];
    ModelWorkload {
        name: "ResNet50 v1.5".to_string(),
        unique_layers: rows.into_iter().map(|(m, n, k, ids)| GemmShape::new(m, n, k, ids)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_the_paper_rows() {
        let w = resnet50_table();
        // Spot-check a few rows against Table I.
        assert_eq!(w.unique_layers[2], GemmShape::new(3136, 64, 576, vec![9, 21, 31]));
        assert_eq!(w.unique_layers[16], GemmShape::new(49, 512, 4608, vec![145, 157, 167]));
        assert_eq!(w.unique_layers[19], GemmShape::new(49, 512, 2048, vec![154, 164]));
    }

    #[test]
    fn every_m_dimension_reflects_a_square_feature_map() {
        // ResNet50 feature maps are 112, 56, 28, 14, 7 pixels on a side.
        let squares: Vec<usize> = [112usize, 56, 28, 14, 7].iter().map(|s| s * s).collect();
        for p in resnet50_table().unique_layers {
            assert!(squares.contains(&p.m), "m = {} is not a square feature map", p.m);
        }
    }

    #[test]
    fn layer_numbers_are_unique_across_the_table() {
        let w = resnet50_table();
        let mut all: Vec<u32> = w.unique_layers.iter().flat_map(|p| p.layer_numbers.clone()).collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(before, all.len());
        assert_eq!(before, 53);
    }
}
