//! Convolution layer descriptors, the IM2ROW shape lowering, and the
//! executable conv-to-GEMM forward pass.

use crate::GemmShape;
use gemm_blis::{GemmError, GemmExecutor, GemmProblem, GemmStats, MatMut, MatRef};

/// A 2-D convolution layer (batch size 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvLayer {
    /// Layer name, e.g. `"conv4_1"`.
    pub name: String,
    /// Layer number in the model's execution order (the paper's numbering).
    pub layer_number: u32,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (number of filters).
    pub out_channels: usize,
    /// Filter height.
    pub kernel_h: usize,
    /// Filter width.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvLayer {
    /// Output height after the convolution.
    pub fn out_height(&self) -> usize {
        (self.height + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output width after the convolution.
    pub fn out_width(&self) -> usize {
        (self.width + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// Floating-point operations of the layer (2 per multiply-accumulate).
    pub fn flops(&self) -> u64 {
        2 * self.out_height() as u64
            * self.out_width() as u64
            * self.out_channels as u64
            * (self.kernel_h * self.kernel_w * self.in_channels) as u64
    }
}

/// Applies the IM2ROW transform (Chellapilla et al., reference \[25\] of the
/// paper): a convolution at batch size 1 becomes a GEMM with
/// `m = out_h * out_w`, `n = out_channels`, `k = kernel_h * kernel_w *
/// in_channels`.
pub fn im2row(layer: &ConvLayer) -> GemmShape {
    GemmShape::new(
        layer.out_height() * layer.out_width(),
        layer.out_channels,
        layer.kernel_h * layer.kernel_w * layer.in_channels,
        vec![layer.layer_number],
    )
}

/// Whether the layer's IM2ROW `A` operand is *already* a strided view of
/// the input tensor — true for pointwise (1x1, stride 1, no padding)
/// convolutions, where GEMM row `r` is exactly input pixel `r` and the `k`
/// axis is the channel axis.
fn im2row_is_a_view(layer: &ConvLayer) -> bool {
    layer.kernel_h == 1 && layer.kernel_w == 1 && layer.stride == 1 && layer.padding == 0
}

/// Materialises the IM2ROW matrix (`m x k`, row-major) for layers whose
/// access pattern is a genuine gather: row `oy * ow + ox`, column
/// `(ky * kw + kx) * cin + ci`, zero-filled where the receptive field falls
/// into the padding border.
fn im2row_materialise(layer: &ConvLayer, input: &[f32]) -> Vec<f32> {
    let (oh, ow) = (layer.out_height(), layer.out_width());
    let (kh, kw, cin) = (layer.kernel_h, layer.kernel_w, layer.in_channels);
    let k = kh * kw * cin;
    let mut a = vec![0.0f32; oh * ow * k];
    for oy in 0..oh {
        for ox in 0..ow {
            let row = &mut a[(oy * ow + ox) * k..(oy * ow + ox + 1) * k];
            for ky in 0..kh {
                let iy = (oy * layer.stride + ky) as isize - layer.padding as isize;
                if iy < 0 || iy >= layer.height as isize {
                    continue; // stays zero-padded
                }
                for kx in 0..kw {
                    let ix = (ox * layer.stride + kx) as isize - layer.padding as isize;
                    if ix < 0 || ix >= layer.width as isize {
                        continue;
                    }
                    let src = (iy as usize * layer.width + ix as usize) * cin;
                    let dst = (ky * kw + kx) * cin;
                    row[dst..dst + cin].copy_from_slice(&input[src..src + cin]);
                }
            }
        }
    }
    a
}

/// Runs one convolution layer's forward pass through a
/// [`gemm_blis::GemmExecutor`]: `output = im2row(input) * weights`.
///
/// * `input` — the NHWC activation tensor, `height * width * in_channels`;
/// * `weights` — a `k x out_channels` view (`k = kernel_h * kernel_w *
///   in_channels`, rows ordered `(ky, kx, ci)`) — any stride layout works,
///   including a transposed `out_channels x k` filter bank passed as
///   `.t()`;
/// * `output` — `out_h * out_w * out_channels`, row-major over
///   `(pixel, channel)`. It need **not** be initialised: the problem runs
///   with `beta = 0`, which never reads `C`.
///
/// Pointwise layers (1x1, stride 1, no padding) — a large fraction of
/// ResNet50 — are fed to the executor as a zero-copy strided view of
/// `input`; every other geometry materialises its im2row panel first.
///
/// # Errors
///
/// Returns [`GemmError::ShapeMismatch`] if a buffer or view disagrees with
/// the layer geometry, and propagates executor failures.
pub fn conv2d(
    layer: &ConvLayer,
    input: &[f32],
    weights: MatRef<'_>,
    output: &mut [f32],
    executor: &dyn GemmExecutor,
) -> Result<GemmStats, GemmError> {
    let shape = im2row(layer);
    let (m, n, k) = (shape.m, shape.n, shape.k);
    if input.len() != layer.height * layer.width * layer.in_channels {
        return Err(GemmError::ShapeMismatch {
            what: format!(
                "layer `{}` expects an input of {} elements, got {}",
                layer.name,
                layer.height * layer.width * layer.in_channels,
                input.len()
            ),
        });
    }
    if weights.rows() != k || weights.cols() != n {
        return Err(GemmError::ShapeMismatch {
            what: format!(
                "layer `{}` expects {k}x{n} weights, got {}x{}",
                layer.name,
                weights.rows(),
                weights.cols()
            ),
        });
    }
    if output.len() != m * n {
        return Err(GemmError::ShapeMismatch {
            what: format!("layer `{}` writes {} output elements, got {}", layer.name, m * n, output.len()),
        });
    }
    let c = MatMut::from_slice(output, m, n);
    if im2row_is_a_view(layer) {
        // Pointwise: GEMM row r is input pixel r, k is the channel axis —
        // a strided view, no copy.
        let a = MatRef::with_strides(input, m, k, layer.in_channels, 1);
        executor.gemm(GemmProblem::new(a, weights, c).beta(0.0))
    } else {
        let panel = im2row_materialise(layer, input);
        let a = MatRef::from_slice(&panel, m, k);
        executor.gemm(GemmProblem::new(a, weights, c).beta(0.0))
    }
}

/// Direct (non-GEMM) convolution reference: the ground truth [`conv2d`] is
/// tested against. Same tensor layouts as [`conv2d`].
pub fn conv2d_reference(layer: &ConvLayer, input: &[f32], weights: MatRef<'_>, output: &mut [f32]) {
    let (oh, ow) = (layer.out_height(), layer.out_width());
    let (kh, kw, cin, cout) = (layer.kernel_h, layer.kernel_w, layer.in_channels, layer.out_channels);
    for oy in 0..oh {
        for ox in 0..ow {
            for co in 0..cout {
                let mut acc = 0.0f32;
                for ky in 0..kh {
                    let iy = (oy * layer.stride + ky) as isize - layer.padding as isize;
                    if iy < 0 || iy >= layer.height as isize {
                        continue;
                    }
                    for kx in 0..kw {
                        let ix = (ox * layer.stride + kx) as isize - layer.padding as isize;
                        if ix < 0 || ix >= layer.width as isize {
                            continue;
                        }
                        for ci in 0..cin {
                            let x = input[(iy as usize * layer.width + ix as usize) * cin + ci];
                            acc += x * weights.get((ky * kw + kx) * cin + ci, co);
                        }
                    }
                }
                output[(oy * ow + ox) * cout + co] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn conv(
        name: &str,
        n: u32,
        hw: usize,
        cin: usize,
        cout: usize,
        k: usize,
        s: usize,
        p: usize,
    ) -> ConvLayer {
        ConvLayer {
            name: name.into(),
            layer_number: n,
            height: hw,
            width: hw,
            in_channels: cin,
            out_channels: cout,
            kernel_h: k,
            kernel_w: k,
            stride: s,
            padding: p,
        }
    }

    #[test]
    fn resnet_first_layer_matches_table_i() {
        // 7x7, stride 2, pad 3 on a 224x224x3 input: 112*112 = 12544 rows,
        // 64 filters, 7*7*3 = 147 inner dimension — Table I, layer 1.
        let l = conv("conv1", 1, 224, 3, 64, 7, 2, 3);
        assert_eq!(l.out_height(), 112);
        let g = im2row(&l);
        assert_eq!((g.m, g.n, g.k), (12544, 64, 147));
    }

    #[test]
    fn vgg_first_layer_matches_table_ii() {
        let l = conv("conv1_1", 1, 224, 3, 64, 3, 1, 1);
        let g = im2row(&l);
        assert_eq!((g.m, g.n, g.k), (50176, 64, 27));
    }

    #[test]
    fn flops_match_gemm_flops() {
        let l = conv("conv3_2", 13, 56, 256, 256, 3, 1, 1);
        let g = im2row(&l);
        assert_eq!(l.flops(), g.flops());
    }

    #[test]
    fn strided_output_dimensions() {
        let l = conv("s2", 2, 56, 64, 128, 1, 2, 0);
        assert_eq!(l.out_height(), 28);
        assert_eq!(l.out_width(), 28);
    }

    fn run_conv_both_ways(l: &ConvLayer) {
        let shape = im2row(l);
        let input: Vec<f32> =
            (0..l.height * l.width * l.in_channels).map(|i| ((i * 7 + 3) % 13) as f32 * 0.25 - 1.0).collect();
        let weights: Vec<f32> =
            (0..shape.k * shape.n).map(|i| ((i * 5 + 1) % 11) as f32 * 0.125 - 0.5).collect();
        let w = gemm_blis::MatRef::from_slice(&weights, shape.k, shape.n);
        // Output deliberately NaN-poisoned: conv2d runs with beta = 0 and
        // must never read it.
        let mut out_gemm = vec![f32::NAN; shape.m * shape.n];
        let stats = conv2d(l, &input, w, &mut out_gemm, &gemm_blis::NaiveGemm).unwrap();
        assert_eq!((stats.m, stats.n, stats.k), (shape.m, shape.n, shape.k));
        let mut out_ref = vec![0.0f32; shape.m * shape.n];
        conv2d_reference(l, &input, w, &mut out_ref);
        for (idx, (x, y)) in out_gemm.iter().zip(&out_ref).enumerate() {
            assert!((x - y).abs() < 1e-3, "{} at {idx}: {x} vs {y}", l.name);
        }
        // And through the blocked driver, which must agree too.
        let kernel = gemm_blis::neon_intrinsics_kernel();
        let blocking = gemm_blis::BlockingParams { mc: 16, kc: 8, nc: 24, mr: kernel.mr, nr: kernel.nr };
        let driver = gemm_blis::BlisGemm::new(blocking).with_kernel(kernel);
        let mut out_blis = vec![f32::NAN; shape.m * shape.n];
        conv2d(l, &input, w, &mut out_blis, &driver).unwrap();
        for (idx, (x, y)) in out_blis.iter().zip(&out_ref).enumerate() {
            assert!((x - y).abs() < 1e-3, "{} blis at {idx}: {x} vs {y}", l.name);
        }
    }

    #[test]
    fn pointwise_convolutions_run_as_zero_copy_views() {
        let l = conv("pw", 1, 6, 5, 7, 1, 1, 0);
        assert!(super::im2row_is_a_view(&l));
        run_conv_both_ways(&l);
    }

    #[test]
    fn padded_and_strided_convolutions_materialise_and_match() {
        let l = conv("k3p1", 2, 5, 3, 4, 3, 1, 1);
        assert!(!super::im2row_is_a_view(&l));
        run_conv_both_ways(&l);
        let l = conv("k3s2", 3, 7, 2, 3, 3, 2, 1);
        run_conv_both_ways(&l);
        let l = conv("k7s2p3", 4, 9, 3, 5, 7, 2, 3);
        run_conv_both_ways(&l);
    }

    #[test]
    fn transposed_filter_banks_work_as_views() {
        // Weights stored cout x k (the framework-native layout) and passed
        // transposed — no repacking of the filter bank.
        let l = conv("pw_t", 5, 4, 3, 6, 1, 1, 0);
        let shape = im2row(&l);
        let input: Vec<f32> = (0..l.height * l.width * l.in_channels).map(|i| (i % 7) as f32 * 0.5).collect();
        let wt: Vec<f32> = (0..shape.n * shape.k).map(|i| (i % 5) as f32 * 0.25 - 0.5).collect();
        let w_t = gemm_blis::MatRef::from_slice(&wt, shape.n, shape.k).t();
        let mut out_t = vec![f32::NAN; shape.m * shape.n];
        conv2d(&l, &input, w_t, &mut out_t, &gemm_blis::NaiveGemm).unwrap();
        let mut out_ref = vec![0.0f32; shape.m * shape.n];
        conv2d_reference(&l, &input, w_t, &mut out_ref);
        assert_eq!(out_t, out_ref);
    }

    #[test]
    fn geometry_mismatches_are_rejected() {
        let l = conv("bad", 6, 4, 3, 4, 1, 1, 0);
        let shape = im2row(&l);
        let input = vec![0.0f32; l.height * l.width * l.in_channels];
        let weights = vec![0.0f32; shape.k * shape.n];
        let w = gemm_blis::MatRef::from_slice(&weights, shape.k, shape.n);
        let mut out = vec![0.0f32; shape.m * shape.n];
        assert!(conv2d(&l, &input[1..], w, &mut out, &gemm_blis::NaiveGemm).is_err());
        assert!(conv2d(&l, &input, w.t(), &mut out, &gemm_blis::NaiveGemm).is_err());
        assert!(conv2d(&l, &input, w, &mut out[1..], &gemm_blis::NaiveGemm).is_err());
    }
}
