//! Convolution layer descriptors and the IM2ROW lowering to GEMM.

use crate::GemmProblem;

/// A 2-D convolution layer (batch size 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvLayer {
    /// Layer name, e.g. `"conv4_1"`.
    pub name: String,
    /// Layer number in the model's execution order (the paper's numbering).
    pub layer_number: u32,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (number of filters).
    pub out_channels: usize,
    /// Filter height.
    pub kernel_h: usize,
    /// Filter width.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvLayer {
    /// Output height after the convolution.
    pub fn out_height(&self) -> usize {
        (self.height + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output width after the convolution.
    pub fn out_width(&self) -> usize {
        (self.width + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// Floating-point operations of the layer (2 per multiply-accumulate).
    pub fn flops(&self) -> u64 {
        2 * self.out_height() as u64
            * self.out_width() as u64
            * self.out_channels as u64
            * (self.kernel_h * self.kernel_w * self.in_channels) as u64
    }
}

/// Applies the IM2ROW transform (Chellapilla et al., reference \[25\] of the
/// paper): a convolution at batch size 1 becomes a GEMM with
/// `m = out_h * out_w`, `n = out_channels`, `k = kernel_h * kernel_w *
/// in_channels`.
pub fn im2row(layer: &ConvLayer) -> GemmProblem {
    GemmProblem::new(
        layer.out_height() * layer.out_width(),
        layer.out_channels,
        layer.kernel_h * layer.kernel_w * layer.in_channels,
        vec![layer.layer_number],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn conv(
        name: &str,
        n: u32,
        hw: usize,
        cin: usize,
        cout: usize,
        k: usize,
        s: usize,
        p: usize,
    ) -> ConvLayer {
        ConvLayer {
            name: name.into(),
            layer_number: n,
            height: hw,
            width: hw,
            in_channels: cin,
            out_channels: cout,
            kernel_h: k,
            kernel_w: k,
            stride: s,
            padding: p,
        }
    }

    #[test]
    fn resnet_first_layer_matches_table_i() {
        // 7x7, stride 2, pad 3 on a 224x224x3 input: 112*112 = 12544 rows,
        // 64 filters, 7*7*3 = 147 inner dimension — Table I, layer 1.
        let l = conv("conv1", 1, 224, 3, 64, 7, 2, 3);
        assert_eq!(l.out_height(), 112);
        let g = im2row(&l);
        assert_eq!((g.m, g.n, g.k), (12544, 64, 147));
    }

    #[test]
    fn vgg_first_layer_matches_table_ii() {
        let l = conv("conv1_1", 1, 224, 3, 64, 3, 1, 1);
        let g = im2row(&l);
        assert_eq!((g.m, g.n, g.k), (50176, 64, 27));
    }

    #[test]
    fn flops_match_gemm_flops() {
        let l = conv("conv3_2", 13, 56, 256, 256, 3, 1, 1);
        let g = im2row(&l);
        assert_eq!(l.flops(), g.flops());
    }

    #[test]
    fn strided_output_dimensions() {
        let l = conv("s2", 2, 56, 64, 128, 1, 2, 0);
        assert_eq!(l.out_height(), 28);
        assert_eq!(l.out_width(), 28);
    }
}
