//! Executable lowering: compiles a scheduled procedure into a
//! [`CompiledKernel`] that runs directly on `f32` slices.
//!
//! The original toolchain compiles Exo's C output with `gcc` and runs it on
//! an ARM board. Neither is available here, so this backend provides the
//! *functional* execution path: instruction calls are inlined back to their
//! semantic bodies at compile time, multi-dimensional accesses are linearised
//! into row-major address polynomials, and the kernel runs over caller
//! provided buffers. It is used by the differential tests (generated kernel
//! vs. naive reference), by the BLIS-like GEMM driver's functional mode, and
//! by the wall-clock Criterion benches (where only *relative* numbers are
//! meaningful — absolute GFLOPS figures come from the `carmel-sim`
//! performance model).

use exo_ir::{ArgKind, BinOp, Expr, Proc, ScalarType, Stmt, Sym};
use exo_sched::inline_call;

use crate::error::{CodegenError, Result};

/// A runtime argument for [`CompiledKernel::run`].
#[derive(Debug)]
pub enum RunArg<'a> {
    /// Value for a `size` or `index` parameter.
    Size(i64),
    /// Buffer for a tensor parameter (mutated in place).
    Tensor(&'a mut [f32]),
}

/// Which runtime slot a compiled buffer reference points to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BufSlot {
    Arg(u16),
    Local(u16),
}

/// Compiled integer (index) expression.
#[derive(Debug, Clone)]
pub(crate) enum IExpr {
    Const(i64),
    Loop(u16),
    Scalar(u16),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Mul(Box<IExpr>, Box<IExpr>),
    Div(Box<IExpr>, Box<IExpr>),
    Mod(Box<IExpr>, Box<IExpr>),
    Neg(Box<IExpr>),
}

/// Compiled value (f32) expression.
#[derive(Debug, Clone)]
pub(crate) enum VExpr {
    Const(f32),
    Int(IExpr),
    Load { buf: BufSlot, flat: IExpr },
    Add(Box<VExpr>, Box<VExpr>),
    Sub(Box<VExpr>, Box<VExpr>),
    Mul(Box<VExpr>, Box<VExpr>),
    Div(Box<VExpr>, Box<VExpr>),
    Neg(Box<VExpr>),
}

/// Compiled statement.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    Assign { buf: BufSlot, flat: IExpr, rhs: VExpr, f16: bool },
    Reduce { buf: BufSlot, flat: IExpr, rhs: VExpr, f16: bool },
    For { var: u16, lo: IExpr, hi: IExpr, body: Vec<Op> },
    AllocLocal { slot: u16, len: IExpr },
    If { lhs: IExpr, op: exo_ir::CmpOp, rhs: IExpr, then_body: Vec<Op>, else_body: Vec<Op> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParamKind {
    Scalar,
    Tensor,
}

/// A procedure lowered to an executable form over `f32` buffers.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Name of the source procedure.
    pub name: String,
    pub(crate) params: Vec<(String, ParamKind)>,
    pub(crate) body: Vec<Op>,
    n_loop_vars: usize,
    n_locals: usize,
}

#[derive(Default)]
struct Compiler {
    loop_vars: Vec<Sym>,
    scalars: Vec<Sym>,
    arg_tensors: Vec<Sym>,
    arg_dims: Vec<Vec<Expr>>,
    arg_types: Vec<ScalarType>,
    locals: Vec<Sym>,
    local_dims: Vec<Vec<Expr>>,
    local_types: Vec<ScalarType>,
}

impl Compiler {
    fn loop_index(&mut self, s: &Sym) -> u16 {
        match self.loop_vars.iter().position(|v| v == s) {
            Some(i) => i as u16,
            None => {
                self.loop_vars.push(s.clone());
                (self.loop_vars.len() - 1) as u16
            }
        }
    }

    fn sym_ref(&self, s: &Sym) -> Option<IExpr> {
        if let Some(i) = self.loop_vars.iter().position(|v| v == s) {
            return Some(IExpr::Loop(i as u16));
        }
        if let Some(i) = self.scalars.iter().position(|v| v == s) {
            return Some(IExpr::Scalar(i as u16));
        }
        None
    }

    fn buffer(&self, s: &Sym) -> Option<(BufSlot, ScalarType, Vec<Expr>)> {
        if let Some(i) = self.arg_tensors.iter().position(|v| v == s) {
            return Some((BufSlot::Arg(i as u16), self.arg_types[i], self.arg_dims[i].clone()));
        }
        if let Some(i) = self.locals.iter().rposition(|v| v == s) {
            return Some((BufSlot::Local(i as u16), self.local_types[i], self.local_dims[i].clone()));
        }
        None
    }

    fn compile_iexpr(&mut self, e: &Expr) -> Result<IExpr> {
        Ok(match e {
            Expr::Int(v) => IExpr::Const(*v),
            Expr::Var(s) => self.sym_ref(s).ok_or_else(|| CodegenError::UnknownBuffer { buf: s.clone() })?,
            Expr::Binop { op, lhs, rhs } => {
                let l = Box::new(self.compile_iexpr(lhs)?);
                let r = Box::new(self.compile_iexpr(rhs)?);
                match op {
                    BinOp::Add => IExpr::Add(l, r),
                    BinOp::Sub => IExpr::Sub(l, r),
                    BinOp::Mul => IExpr::Mul(l, r),
                    BinOp::Div => IExpr::Div(l, r),
                    BinOp::Mod => IExpr::Mod(l, r),
                }
            }
            Expr::Neg(inner) => IExpr::Neg(Box::new(self.compile_iexpr(inner)?)),
            Expr::Float(_) | Expr::Read { .. } => {
                return Err(CodegenError::Unsupported {
                    backend: "exec",
                    what: "buffer reads or float literals in index position".into(),
                })
            }
        })
    }

    /// Compiles a multi-dimensional access into a row-major flat address
    /// polynomial.
    fn compile_access(&mut self, buf: &Sym, idx: &[Expr]) -> Result<(BufSlot, IExpr, bool)> {
        let (slot, ty, dims) =
            self.buffer(buf).ok_or_else(|| CodegenError::UnknownBuffer { buf: buf.clone() })?;
        if idx.len() != dims.len() {
            return Err(CodegenError::Unsupported {
                backend: "exec",
                what: format!(
                    "access to `{buf}` with rank {} but the buffer has rank {}",
                    idx.len(),
                    dims.len()
                ),
            });
        }
        // Horner: flat = ((i0 * d1 + i1) * d2 + i2) ...
        let mut flat = if idx.is_empty() { IExpr::Const(0) } else { self.compile_iexpr(&idx[0])? };
        for d in 1..idx.len() {
            let dim = self.compile_iexpr(&dims[d])?;
            let i = self.compile_iexpr(&idx[d])?;
            flat = IExpr::Add(Box::new(IExpr::Mul(Box::new(flat), Box::new(dim))), Box::new(i));
        }
        Ok((slot, flat, ty == ScalarType::F16))
    }

    fn compile_vexpr(&mut self, e: &Expr) -> Result<VExpr> {
        Ok(match e {
            Expr::Float(v) => VExpr::Const(*v as f32),
            Expr::Int(v) => VExpr::Const(*v as f32),
            Expr::Var(_) => VExpr::Int(self.compile_iexpr(e)?),
            Expr::Read { buf, idx } => {
                let (slot, flat, _) = self.compile_access(buf, idx)?;
                VExpr::Load { buf: slot, flat }
            }
            Expr::Binop { op, lhs, rhs } => {
                let l = Box::new(self.compile_vexpr(lhs)?);
                let r = Box::new(self.compile_vexpr(rhs)?);
                match op {
                    BinOp::Add => VExpr::Add(l, r),
                    BinOp::Sub => VExpr::Sub(l, r),
                    BinOp::Mul => VExpr::Mul(l, r),
                    BinOp::Div => VExpr::Div(l, r),
                    BinOp::Mod => {
                        return Err(CodegenError::Unsupported {
                            backend: "exec",
                            what: "floating-point modulo".into(),
                        })
                    }
                }
            }
            Expr::Neg(inner) => VExpr::Neg(Box::new(self.compile_vexpr(inner)?)),
        })
    }

    fn compile_block(&mut self, block: &[Stmt]) -> Result<Vec<Op>> {
        let mut out = Vec::new();
        for stmt in block {
            match stmt {
                Stmt::Comment(_) => {}
                Stmt::Alloc { name, ty, dims, .. } => {
                    let slot = self.locals.len() as u16;
                    // Total length = product of dims (1 for rank-0).
                    let mut len = IExpr::Const(1);
                    for d in dims {
                        let de = self.compile_iexpr(d)?;
                        len = IExpr::Mul(Box::new(len), Box::new(de));
                    }
                    self.locals.push(name.clone());
                    self.local_types.push(*ty);
                    self.local_dims.push(dims.clone());
                    out.push(Op::AllocLocal { slot, len });
                }
                Stmt::Assign { buf, idx, rhs } => {
                    let rhs = self.compile_vexpr(rhs)?;
                    let (slot, flat, f16) = self.compile_access(buf, idx)?;
                    out.push(Op::Assign { buf: slot, flat, rhs, f16 });
                }
                Stmt::Reduce { buf, idx, rhs } => {
                    let rhs = self.compile_vexpr(rhs)?;
                    let (slot, flat, f16) = self.compile_access(buf, idx)?;
                    out.push(Op::Reduce { buf: slot, flat, rhs, f16 });
                }
                Stmt::For { var, lo, hi, body } => {
                    let lo = self.compile_iexpr(lo)?;
                    let hi = self.compile_iexpr(hi)?;
                    let v = self.loop_index(var);
                    let body = self.compile_block(body)?;
                    out.push(Op::For { var: v, lo, hi, body });
                }
                Stmt::If { cond, then_body, else_body } => {
                    out.push(Op::If {
                        lhs: self.compile_iexpr(&cond.lhs)?,
                        op: cond.op,
                        rhs: self.compile_iexpr(&cond.rhs)?,
                        then_body: self.compile_block(then_body)?,
                        else_body: self.compile_block(else_body)?,
                    });
                }
                Stmt::Call { instr, args } => {
                    // Inline the instruction's semantic body; the scheduled
                    // structure has already done its job, functionally the
                    // body is all that matters.
                    let inlined = inline_call(instr, args).map_err(|e| CodegenError::Unsupported {
                        backend: "exec",
                        what: format!("call to `{}` could not be inlined: {e}", instr.name),
                    })?;
                    out.extend(self.compile_block(&inlined)?);
                }
            }
        }
        Ok(out)
    }
}

/// Compiles a procedure for execution over `f32` buffers.
///
/// # Errors
///
/// Returns [`CodegenError::Unsupported`] for constructs the executable
/// backend cannot lower (reads in index position, calls whose arguments do
/// not match their instruction).
pub fn compile(p: &Proc) -> Result<CompiledKernel> {
    let mut params = Vec::new();
    let mut compiler = Compiler::default();
    for arg in &p.args {
        match &arg.kind {
            ArgKind::Size | ArgKind::Index => {
                compiler.scalars.push(arg.name.clone());
                params.push((arg.name.to_string(), ParamKind::Scalar));
            }
            ArgKind::Tensor { ty, dims, .. } => {
                compiler.arg_tensors.push(arg.name.clone());
                compiler.arg_types.push(*ty);
                compiler.arg_dims.push(dims.clone());
                params.push((arg.name.to_string(), ParamKind::Tensor));
            }
        }
    }
    let body = compiler.compile_block(&p.body)?;
    Ok(CompiledKernel {
        name: p.name.clone(),
        params,
        body,
        n_loop_vars: compiler.loop_vars.len(),
        n_locals: compiler.locals.len(),
    })
}

struct Runtime<'a> {
    tensors: Vec<&'a mut [f32]>,
    locals: Vec<Vec<f32>>,
    loops: Vec<i64>,
    scalars: Vec<i64>,
}

impl CompiledKernel {
    /// Number of parameters (scalar and tensor) the kernel expects.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Parameter names in signature order.
    pub fn param_names(&self) -> Vec<&str> {
        self.params.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Runs the kernel. `args` must supply one entry per parameter, in
    /// signature order: [`RunArg::Size`] for `size`/`index` parameters and
    /// [`RunArg::Tensor`] for buffers.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::BadArguments`] on an argument-count or kind
    /// mismatch and [`CodegenError::OutOfBounds`] if an access leaves its
    /// buffer.
    pub fn run(&self, args: &mut [RunArg<'_>]) -> Result<()> {
        if args.len() != self.params.len() {
            return Err(CodegenError::BadArguments {
                reason: format!(
                    "kernel `{}` expects {} arguments, got {}",
                    self.name,
                    self.params.len(),
                    args.len()
                ),
            });
        }
        let mut scalars = Vec::new();
        let mut tensors: Vec<&mut [f32]> = Vec::new();
        for ((name, kind), arg) in self.params.iter().zip(args.iter_mut()) {
            match (kind, arg) {
                (ParamKind::Scalar, RunArg::Size(v)) => scalars.push(*v),
                (ParamKind::Tensor, RunArg::Tensor(t)) => tensors.push(t),
                _ => {
                    return Err(CodegenError::BadArguments {
                        reason: format!("argument `{name}` has the wrong kind"),
                    })
                }
            }
        }
        let mut rt = Runtime {
            tensors,
            locals: vec![Vec::new(); self.n_locals],
            loops: vec![0; self.n_loop_vars],
            scalars,
        };
        exec_block(&self.body, &mut rt)
    }
}

fn exec_block(ops: &[Op], rt: &mut Runtime<'_>) -> Result<()> {
    for op in ops {
        match op {
            Op::AllocLocal { slot, len } => {
                let len = eval_i(len, rt).max(1) as usize;
                rt.locals[*slot as usize] = vec![0.0; len];
            }
            Op::Assign { buf, flat, rhs, f16 } => {
                let value = eval_v(rhs, rt)?;
                let value = if *f16 { exo_ir::types::f16_round(value as f64) as f32 } else { value };
                let flat = eval_i(flat, rt);
                store(buf, flat, value, rt)?;
            }
            Op::Reduce { buf, flat, rhs, f16 } => {
                let value = eval_v(rhs, rt)?;
                let flat = eval_i(flat, rt);
                let next = load(buf, flat, rt)? + value;
                let next = if *f16 { exo_ir::types::f16_round(next as f64) as f32 } else { next };
                store(buf, flat, next, rt)?;
            }
            Op::For { var, lo, hi, body } => {
                let lo = eval_i(lo, rt);
                let hi = eval_i(hi, rt);
                for i in lo..hi {
                    rt.loops[*var as usize] = i;
                    exec_block(body, rt)?;
                }
            }
            Op::If { lhs, op, rhs, then_body, else_body } => {
                if op.eval(eval_i(lhs, rt), eval_i(rhs, rt)) {
                    exec_block(then_body, rt)?;
                } else {
                    exec_block(else_body, rt)?;
                }
            }
        }
    }
    Ok(())
}

fn eval_i(e: &IExpr, rt: &Runtime<'_>) -> i64 {
    match e {
        IExpr::Const(v) => *v,
        IExpr::Loop(i) => rt.loops[*i as usize],
        IExpr::Scalar(i) => rt.scalars[*i as usize],
        IExpr::Add(a, b) => eval_i(a, rt) + eval_i(b, rt),
        IExpr::Sub(a, b) => eval_i(a, rt) - eval_i(b, rt),
        IExpr::Mul(a, b) => eval_i(a, rt) * eval_i(b, rt),
        IExpr::Div(a, b) => {
            let d = eval_i(b, rt);
            if d == 0 {
                0
            } else {
                eval_i(a, rt).div_euclid(d)
            }
        }
        IExpr::Mod(a, b) => {
            let d = eval_i(b, rt);
            if d == 0 {
                0
            } else {
                eval_i(a, rt).rem_euclid(d)
            }
        }
        IExpr::Neg(a) => -eval_i(a, rt),
    }
}

fn eval_v(e: &VExpr, rt: &Runtime<'_>) -> Result<f32> {
    Ok(match e {
        VExpr::Const(v) => *v,
        VExpr::Int(i) => eval_i(i, rt) as f32,
        VExpr::Load { buf, flat } => load(buf, eval_i(flat, rt), rt)?,
        VExpr::Add(a, b) => eval_v(a, rt)? + eval_v(b, rt)?,
        VExpr::Sub(a, b) => eval_v(a, rt)? - eval_v(b, rt)?,
        VExpr::Mul(a, b) => eval_v(a, rt)? * eval_v(b, rt)?,
        VExpr::Div(a, b) => eval_v(a, rt)? / eval_v(b, rt)?,
        VExpr::Neg(a) => -eval_v(a, rt)?,
    })
}

fn load(buf: &BufSlot, flat: i64, rt: &Runtime<'_>) -> Result<f32> {
    let slice: &[f32] = match buf {
        BufSlot::Arg(i) => rt.tensors[*i as usize],
        BufSlot::Local(i) => &rt.locals[*i as usize],
    };
    if flat < 0 || flat as usize >= slice.len() {
        return Err(CodegenError::OutOfBounds { buf: format!("{buf:?}"), index: flat, len: slice.len() });
    }
    Ok(slice[flat as usize])
}

fn store(buf: &BufSlot, flat: i64, value: f32, rt: &mut Runtime<'_>) -> Result<()> {
    let slice: &mut [f32] = match buf {
        BufSlot::Arg(i) => rt.tensors[*i as usize],
        BufSlot::Local(i) => &mut rt.locals[*i as usize],
    };
    if flat < 0 || flat as usize >= slice.len() {
        return Err(CodegenError::OutOfBounds { buf: format!("{buf:?}"), index: flat, len: slice.len() });
    }
    slice[flat as usize] = value;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::builder::*;
    use exo_ir::MemSpace;

    fn naive_gemm(a: &[f32], b: &[f32], c: &mut [f32], mr: usize, nr: usize, kc: usize) {
        for k in 0..kc {
            for j in 0..nr {
                for i in 0..mr {
                    c[j * mr + i] += a[k * mr + i] * b[k * nr + j];
                }
            }
        }
    }

    #[test]
    fn compiled_reference_kernel_matches_naive_gemm() {
        let p = exo_isa::ukernel_ref_simple(ScalarType::F32);
        let kernel = compile(&p).unwrap();
        assert_eq!(kernel.param_count(), 6);

        let (mr, nr, kc) = (8usize, 12usize, 17usize);
        let a: Vec<f32> = (0..kc * mr).map(|i| ((i * 7 + 3) % 13) as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..kc * nr).map(|i| ((i * 5 + 1) % 11) as f32 * 0.25).collect();
        let mut c: Vec<f32> = (0..nr * mr).map(|i| (i % 5) as f32).collect();
        let mut c_ref = c.clone();

        let mut a_buf = a.clone();
        let mut b_buf = b.clone();
        let mut args = vec![
            RunArg::Size(mr as i64),
            RunArg::Size(nr as i64),
            RunArg::Size(kc as i64),
            RunArg::Tensor(&mut a_buf),
            RunArg::Tensor(&mut b_buf),
            RunArg::Tensor(&mut c),
        ];
        kernel.run(&mut args).unwrap();
        naive_gemm(&a, &b, &mut c_ref, mr, nr, kc);
        for (x, y) in c.iter().zip(&c_ref) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn compiled_kernel_with_calls_matches_reference() {
        // Build a tiny vectorised copy kernel: R[it, 0:4] loaded from X, then
        // stored to Y, via the Neon load/store instruction specs.
        let isa = exo_isa::neon_f32();
        let p = proc("copy8")
            .tensor_arg("X", ScalarType::F32, vec![int(8)], MemSpace::Dram)
            .tensor_arg("Y", ScalarType::F32, vec![int(8)], MemSpace::Dram)
            .body(vec![
                alloc("R", ScalarType::F32, vec![int(2), int(4)], MemSpace::Neon),
                for_(
                    "it",
                    0,
                    2,
                    vec![
                        call(
                            &isa.load,
                            vec![
                                win("R", vec![pt(var("it")), interval(0, 4)]),
                                win(
                                    "X",
                                    vec![interval(
                                        Expr::mul(int(4), var("it")),
                                        Expr::add(Expr::mul(int(4), var("it")), int(4)),
                                    )],
                                ),
                            ],
                        ),
                        call(
                            &isa.store,
                            vec![
                                win(
                                    "Y",
                                    vec![interval(
                                        Expr::mul(int(4), var("it")),
                                        Expr::add(Expr::mul(int(4), var("it")), int(4)),
                                    )],
                                ),
                                win("R", vec![pt(var("it")), interval(0, 4)]),
                            ],
                        ),
                    ],
                ),
            ])
            .build();
        let kernel = compile(&p).unwrap();
        let mut x: Vec<f32> = (0..8).map(|i| i as f32 * 1.5).collect();
        let x_copy = x.clone();
        let mut y = vec![0.0f32; 8];
        let mut args = vec![RunArg::Tensor(&mut x), RunArg::Tensor(&mut y)];
        kernel.run(&mut args).unwrap();
        assert_eq!(y, x_copy);
    }

    #[test]
    fn f16_kernels_round_on_store() {
        let p = proc("round16")
            .tensor_arg("out", ScalarType::F16, vec![int(1)], MemSpace::Dram)
            .body(vec![assign("out", vec![int(0)], flt(1.0 + 1.0e-5))])
            .build();
        let kernel = compile(&p).unwrap();
        let mut out = vec![0.0f32; 1];
        kernel.run(&mut [RunArg::Tensor(&mut out)]).unwrap();
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn argument_mismatches_are_reported() {
        let p = exo_isa::ukernel_ref_simple(ScalarType::F32);
        let kernel = compile(&p).unwrap();
        let mut too_few = vec![RunArg::Size(1)];
        assert!(matches!(kernel.run(&mut too_few), Err(CodegenError::BadArguments { .. })));
        let mut wrong = vec![
            RunArg::Tensor(&mut []),
            RunArg::Size(1),
            RunArg::Size(1),
            RunArg::Size(1),
            RunArg::Size(1),
            RunArg::Size(1),
        ];
        assert!(matches!(kernel.run(&mut wrong), Err(CodegenError::BadArguments { .. })));
    }

    #[test]
    fn out_of_bounds_accesses_are_reported() {
        let p = proc("oob")
            .tensor_arg("x", ScalarType::F32, vec![int(2)], MemSpace::Dram)
            .body(vec![assign("x", vec![int(7)], flt(1.0))])
            .build();
        let kernel = compile(&p).unwrap();
        let mut x = vec![0.0f32; 2];
        assert!(matches!(kernel.run(&mut [RunArg::Tensor(&mut x)]), Err(CodegenError::OutOfBounds { .. })));
    }

    #[test]
    fn param_names_follow_signature_order() {
        let p = exo_isa::ukernel_ref_simple(ScalarType::F32);
        let kernel = compile(&p).unwrap();
        assert_eq!(kernel.param_names(), vec!["MR", "NR", "KC", "Ac", "Bc", "C"]);
    }
}
