//! Instruction-trace extraction.
//!
//! The performance model (`carmel-sim`) does not execute IR; it executes a
//! *machine-operation trace*: how many vector loads, stores and FMAs the
//! kernel issues per `k` iteration, what it does before and after the `k`
//! loop (loading/storing the `C` register tile), and which buffers the memory
//! operations touch. This module derives that trace from a scheduled
//! procedure.

use std::collections::BTreeMap;

use exo_ir::{Expr, InstrClass, Proc, ScalarType, Stmt, Sym};

use crate::error::{CodegenError, Result};

/// One machine-level operation, possibly repeated.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineOp {
    /// Operation class (load, store, FMA, ...).
    pub class: InstrClass,
    /// Number of vector lanes (1 for scalar operations).
    pub lanes: usize,
    /// Element type.
    pub elem: ScalarType,
    /// Buffer touched by memory operations (`None` for pure register ops).
    pub buffer: Option<Sym>,
    /// Static repetition count (product of enclosing constant loop extents).
    pub count: u64,
}

impl MachineOp {
    /// Bytes moved by this operation if it is a memory operation (per single
    /// execution, not multiplied by `count`).
    pub fn bytes(&self) -> usize {
        match self.class {
            InstrClass::VecLoad | InstrClass::VecStore | InstrClass::Prefetch => {
                self.lanes * self.elem.size_bytes()
            }
            _ => 0,
        }
    }

    /// Floating-point operations performed per execution (an FMA counts as
    /// two flops per lane).
    pub fn flops(&self) -> u64 {
        match self.class {
            InstrClass::VecFma => 2 * self.lanes as u64,
            InstrClass::VecMul | InstrClass::VecAdd => self.lanes as u64,
            _ => 0,
        }
    }
}

/// The machine-operation trace of a micro-kernel: a prologue executed once,
/// a body executed `KC` times, and an epilogue executed once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelTrace {
    /// Name of the procedure the trace was extracted from.
    pub name: String,
    /// Operations before the `k` loop (typically the `C` tile loads).
    pub prologue: Vec<MachineOp>,
    /// Operations inside one iteration of the `k` loop.
    pub per_k: Vec<MachineOp>,
    /// Operations after the `k` loop (typically the `C` tile stores).
    pub epilogue: Vec<MachineOp>,
    /// Number of constant-extent loop levels inside the `k` loop, used by the
    /// core model to charge loop-control overhead.
    pub inner_loop_levels: usize,
}

impl KernelTrace {
    /// Total floating-point operations for a given `KC`.
    pub fn total_flops(&self, kc: u64) -> u64 {
        let once: u64 = self.prologue.iter().chain(&self.epilogue).map(|op| op.flops() * op.count).sum();
        let per: u64 = self.per_k.iter().map(|op| op.flops() * op.count).sum();
        once + per * kc
    }

    /// Sum of `count` for operations of a class in the per-`k` body.
    pub fn per_k_count(&self, class: InstrClass) -> u64 {
        self.per_k.iter().filter(|op| op.class == class).map(|op| op.count).sum()
    }

    /// Sum of `count` for operations of a class in the prologue+epilogue.
    pub fn once_count(&self, class: InstrClass) -> u64 {
        self.prologue.iter().chain(&self.epilogue).filter(|op| op.class == class).map(|op| op.count).sum()
    }

    /// Bytes read per `k` iteration from a specific buffer.
    pub fn per_k_bytes_from(&self, buffer: &str) -> u64 {
        self.per_k
            .iter()
            .filter(|op| {
                op.class == InstrClass::VecLoad && op.buffer.as_ref().map(|b| b.as_str()) == Some(buffer)
            })
            .map(|op| op.count * op.bytes() as u64)
            .sum()
    }
}

/// Extracts the trace of a procedure, treating the first loop whose extent is
/// the size argument named `k_size` (e.g. `"KC"`) as the `k` loop.
///
/// Constant-extent loops are unrolled into the operation counts; statements
/// at `k`-loop level or outside it land in the per-`k` body, prologue or
/// epilogue respectively.
///
/// # Errors
///
/// Returns [`CodegenError::Unsupported`] if no `k` loop is found or the
/// procedure contains constructs the trace extractor cannot account for
/// (e.g. data-dependent `if`).
pub fn extract_trace(p: &Proc, k_size: &str) -> Result<KernelTrace> {
    let mut trace = KernelTrace { name: p.name.clone(), ..KernelTrace::default() };

    // Locate the k loop: first loop whose upper bound mentions `k_size`.
    let k_sym = Sym::new(k_size);
    let mut found_k = false;
    let mut phase_prologue: Vec<MachineOp> = Vec::new();
    let mut phase_epilogue: Vec<MachineOp> = Vec::new();

    for stmt in &p.body {
        if !found_k {
            if let Stmt::For { hi, body, .. } = stmt {
                if hi.uses_var(&k_sym) {
                    found_k = true;
                    let mut levels = 0usize;
                    collect_ops(body, 1, &mut trace.per_k, &mut levels)?;
                    trace.inner_loop_levels = levels;
                    continue;
                }
            }
            let mut levels = 0usize;
            collect_ops(std::slice::from_ref(stmt), 1, &mut phase_prologue, &mut levels)?;
        } else {
            let mut levels = 0usize;
            collect_ops(std::slice::from_ref(stmt), 1, &mut phase_epilogue, &mut levels)?;
        }
    }

    if !found_k {
        return Err(CodegenError::Unsupported {
            backend: "trace",
            what: format!("no loop over the size argument `{k_size}` was found in `{}`", p.name),
        });
    }
    trace.prologue = phase_prologue;
    trace.epilogue = phase_epilogue;
    Ok(trace)
}

fn const_extent(lo: &Expr, hi: &Expr) -> Option<u64> {
    let lo = lo.simplify().as_int()?;
    let hi = hi.simplify().as_int()?;
    Some((hi - lo).max(0) as u64)
}

fn collect_ops(block: &[Stmt], multiplier: u64, out: &mut Vec<MachineOp>, levels: &mut usize) -> Result<()> {
    for stmt in block {
        match stmt {
            Stmt::Comment(_) | Stmt::Alloc { .. } => {}
            Stmt::For { lo, hi, body, var } => {
                let extent = const_extent(lo, hi).ok_or_else(|| CodegenError::NonConstant {
                    what: format!("extent of inner loop `{var}` (only the k loop may be symbolic)"),
                })?;
                *levels += 1;
                collect_ops(body, multiplier * extent, out, levels)?;
            }
            Stmt::Call { instr, args } => {
                let info = instr.instr.as_ref().ok_or_else(|| CodegenError::Unsupported {
                    backend: "trace",
                    what: format!("call to non-instruction `{}`", instr.name),
                })?;
                // Determine the buffer a memory op touches: the DRAM-side
                // argument (src for loads, dst for stores, addr for prefetch).
                let buffer = match info.class {
                    InstrClass::VecLoad => window_buffer(instr, args, "src"),
                    InstrClass::VecStore => window_buffer(instr, args, "dst"),
                    InstrClass::Prefetch => window_buffer(instr, args, "addr"),
                    InstrClass::VecFma => window_buffer(instr, args, "rhs").filter(|_| {
                        // Broadcast FMAs read their scalar operand from memory.
                        matches!(
                            instr.arg(&Sym::new("rhs")).map(|a| &a.kind),
                            Some(exo_ir::ArgKind::Tensor { mem: exo_ir::MemSpace::Dram, .. })
                        )
                    }),
                    _ => None,
                };
                out.push(MachineOp {
                    class: info.class,
                    lanes: info.lanes,
                    elem: info.elem,
                    buffer,
                    count: multiplier,
                });
            }
            Stmt::Assign { buf, rhs, .. } => {
                // Scalar statement: account loads for argument reads, a store
                // for the write, and an ALU op.
                push_scalar_reads(rhs, multiplier, out);
                out.push(MachineOp {
                    class: InstrClass::VecStore,
                    lanes: 1,
                    elem: ScalarType::F32,
                    buffer: Some(buf.clone()),
                    count: multiplier,
                });
            }
            Stmt::Reduce { buf, rhs, .. } => {
                push_scalar_reads(rhs, multiplier, out);
                out.push(MachineOp {
                    class: InstrClass::VecFma,
                    lanes: 1,
                    elem: ScalarType::F32,
                    buffer: Some(buf.clone()),
                    count: multiplier,
                });
            }
            Stmt::If { .. } => {
                return Err(CodegenError::Unsupported {
                    backend: "trace",
                    what: "data-dependent control flow inside a micro-kernel".into(),
                })
            }
        }
    }
    Ok(())
}

fn push_scalar_reads(rhs: &Expr, multiplier: u64, out: &mut Vec<MachineOp>) {
    let mut bufs: Vec<Sym> = Vec::new();
    collect_read_bufs(rhs, &mut bufs);
    for b in bufs {
        out.push(MachineOp {
            class: InstrClass::VecLoad,
            lanes: 1,
            elem: ScalarType::F32,
            buffer: Some(b),
            count: multiplier,
        });
    }
}

fn collect_read_bufs(e: &Expr, out: &mut Vec<Sym>) {
    match e {
        Expr::Read { buf, idx } => {
            out.push(buf.clone());
            for i in idx {
                collect_read_bufs(i, out);
            }
        }
        Expr::Binop { lhs, rhs, .. } => {
            collect_read_bufs(lhs, out);
            collect_read_bufs(rhs, out);
        }
        Expr::Neg(inner) => collect_read_bufs(inner, out),
        _ => {}
    }
}

fn window_buffer(instr: &Proc, args: &[exo_ir::CallArg], param: &str) -> Option<Sym> {
    let pos = instr.args.iter().position(|a| a.name == param)?;
    match args.get(pos) {
        Some(exo_ir::CallArg::Window(w)) => Some(w.buf.clone()),
        _ => None,
    }
}

/// Summarises a trace per class, useful for reports and assertions in tests.
pub fn summarise(trace: &KernelTrace) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for (phase, ops) in
        [("prologue", &trace.prologue), ("per_k", &trace.per_k), ("epilogue", &trace.epilogue)]
    {
        for op in ops {
            *out.entry(format!("{phase}.{:?}", op.class)).or_insert(0) += op.count;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::builder::*;
    use exo_ir::MemSpace;
    use exo_isa::neon_f32;

    /// Hand-built scheduled 8x12 kernel shaped like the paper's Fig. 11:
    /// C loads in the prologue, 5 loads + 24 FMAs per k iteration, C stores
    /// in the epilogue.
    fn scheduled_8x12() -> Proc {
        let isa = neon_f32();
        let fma = isa.fma_lane.clone().unwrap();
        let c_load = |jt: i64, it: i64| {
            call(
                &isa.load,
                vec![
                    win("C_reg", vec![pt(int(jt)), pt(int(it)), interval(0, 4)]),
                    win("C", vec![pt(int(jt)), interval(4 * it, 4 * it + 4)]),
                ],
            )
        };
        let mut prologue =
            vec![alloc("C_reg", ScalarType::F32, vec![int(12), int(2), int(4)], MemSpace::Neon)];
        for jt in 0..12 {
            for it in 0..2 {
                prologue.push(c_load(jt, it));
            }
        }
        let mut k_body = vec![
            alloc("A_reg", ScalarType::F32, vec![int(2), int(4)], MemSpace::Neon),
            alloc("B_reg", ScalarType::F32, vec![int(3), int(4)], MemSpace::Neon),
        ];
        for it in 0..2 {
            k_body.push(call(
                &isa.load,
                vec![
                    win("A_reg", vec![pt(int(it)), interval(0, 4)]),
                    win("Ac", vec![pt(var("k")), interval(4 * it, 4 * it + 4)]),
                ],
            ));
        }
        for jt in 0..3 {
            k_body.push(call(
                &isa.load,
                vec![
                    win("B_reg", vec![pt(int(jt)), interval(0, 4)]),
                    win("Bc", vec![pt(var("k")), interval(4 * jt, 4 * jt + 4)]),
                ],
            ));
        }
        k_body.push(for_(
            "jt",
            0,
            3,
            vec![for_(
                "it",
                0,
                2,
                vec![for_(
                    "jtt",
                    0,
                    4,
                    vec![call(
                        &fma,
                        vec![
                            win(
                                "C_reg",
                                vec![
                                    pt(Expr::add(Expr::mul(int(4), var("jt")), var("jtt"))),
                                    pt(var("it")),
                                    interval(0, 4),
                                ],
                            ),
                            win("A_reg", vec![pt(var("it")), interval(0, 4)]),
                            win("B_reg", vec![pt(var("jt")), interval(0, 4)]),
                            arg_expr(var("jtt")),
                        ],
                    )],
                )],
            )],
        ));
        let mut body = prologue;
        body.push(for_("k", 0, var("KC"), k_body));
        for jt in 0..12 {
            for it in 0..2 {
                body.push(call(
                    &isa.store,
                    vec![
                        win("C", vec![pt(int(jt)), interval(4 * it, 4 * it + 4)]),
                        win("C_reg", vec![pt(int(jt)), pt(int(it)), interval(0, 4)]),
                    ],
                ));
            }
        }
        proc("uk_8x12")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(8)], MemSpace::Dram)
            .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), int(12)], MemSpace::Dram)
            .tensor_arg("C", ScalarType::F32, vec![int(12), int(8)], MemSpace::Dram)
            .body(body)
            .build()
    }

    #[test]
    fn trace_counts_match_the_paper_kernel() {
        let p = scheduled_8x12();
        let trace = extract_trace(&p, "KC").unwrap();
        // Per k iteration: 2 A loads + 3 B loads, 24 FMAs.
        assert_eq!(trace.per_k_count(InstrClass::VecLoad), 5);
        assert_eq!(trace.per_k_count(InstrClass::VecFma), 24);
        // Prologue/epilogue: 24 C loads + 24 C stores.
        assert_eq!(trace.once_count(InstrClass::VecLoad), 24);
        assert_eq!(trace.once_count(InstrClass::VecStore), 24);
        // Flops: 24 FMAs x 8 flops x KC plus nothing outside the k loop.
        assert_eq!(trace.total_flops(512), 24 * 8 * 512);
        // Memory traffic per iteration: 32 bytes of A, 48 bytes of B.
        assert_eq!(trace.per_k_bytes_from("Ac"), 32);
        assert_eq!(trace.per_k_bytes_from("Bc"), 48);
    }

    #[test]
    fn scalar_statements_are_accounted() {
        let p = exo_isa::ukernel_ref_simple(ScalarType::F32);
        let p = exo_sched_free_partial_eval(&p);
        let trace = extract_trace(&p, "KC").unwrap();
        // 8x12 scalar kernel: 96 scalar FMAs per k iteration.
        assert_eq!(trace.per_k_count(InstrClass::VecFma), 96);
        assert_eq!(trace.total_flops(10), 96 * 2 * 10);
    }

    /// Minimal stand-in for `exo_sched::partial_eval` to avoid a dependency
    /// cycle in tests: substitutes MR=8, NR=12 by hand.
    fn exo_sched_free_partial_eval(p: &Proc) -> Proc {
        use std::collections::BTreeMap;
        let mut map = BTreeMap::new();
        map.insert(Sym::new("MR"), Expr::int(8));
        map.insert(Sym::new("NR"), Expr::int(12));
        let mut out = p.clone();
        out.args.retain(|a| a.name != "MR" && a.name != "NR");
        out.body = out.body.iter().map(|s| s.subst(&map).simplify()).collect();
        out
    }

    #[test]
    fn missing_k_loop_is_reported() {
        let p = proc("flat")
            .tensor_arg("x", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .body(vec![assign("x", vec![int(0)], flt(1.0))])
            .build();
        assert!(matches!(extract_trace(&p, "KC"), Err(CodegenError::Unsupported { .. })));
    }

    #[test]
    fn summary_lists_phases() {
        let p = scheduled_8x12();
        let trace = extract_trace(&p, "KC").unwrap();
        let s = summarise(&trace);
        assert_eq!(s.get("per_k.VecFma"), Some(&24));
        assert_eq!(s.get("prologue.VecLoad"), Some(&24));
        assert_eq!(s.get("epilogue.VecStore"), Some(&24));
    }
}
