//! Error type for the code-generation backends.

use std::fmt;

use exo_ir::Sym;

/// Errors produced while lowering a procedure to C, assembly, a trace, or an
/// executable kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenError {
    /// The procedure references a buffer whose shape could not be resolved.
    UnknownBuffer {
        /// The buffer name.
        buf: Sym,
    },
    /// A construct is not supported by this backend.
    Unsupported {
        /// Which backend raised the error.
        backend: &'static str,
        /// Description of the unsupported construct.
        what: String,
    },
    /// A loop or dimension that must be a compile-time constant is not.
    NonConstant {
        /// Description of the offending expression.
        what: String,
    },
    /// The runtime arguments passed to a compiled kernel do not match its
    /// signature.
    BadArguments {
        /// Description of the mismatch.
        reason: String,
    },
    /// An index evaluated outside the bounds of its buffer at run time.
    OutOfBounds {
        /// The buffer name.
        buf: String,
        /// The flat index.
        index: i64,
        /// The buffer length.
        len: usize,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UnknownBuffer { buf } => write!(f, "unknown buffer `{buf}`"),
            CodegenError::Unsupported { backend, what } => {
                write!(f, "the {backend} backend does not support {what}")
            }
            CodegenError::NonConstant { what } => write!(f, "{what} must be a compile-time constant"),
            CodegenError::BadArguments { reason } => write!(f, "bad kernel arguments: {reason}"),
            CodegenError::OutOfBounds { buf, index, len } => {
                write!(f, "index {index} out of bounds for buffer `{buf}` of length {len}")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CodegenError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CodegenError::Unsupported { backend: "C", what: "windowed calls of rank 2".into() };
        assert!(e.to_string().contains("C backend"));
        let e = CodegenError::OutOfBounds { buf: "C".into(), index: 9, len: 4 };
        assert!(e.to_string().contains('9'));
    }
}
