//! The ISA-generic chain compiler: one monomorphic closure per superword
//! op, fused tiles for `VFmaLane` runs, vector intrinsics per lane shape.
//!
//! Everything here is generic over [`VectorIsa`] and monomorphised per
//! implementation at [`build_nodes`] time: the closures a chain holds are
//! compiled *for* one ISA, so the hot path never dispatches over the ISA
//! again. Register-file copies (`VLoad`/`VStore`) are plain memcpys and
//! need no intrinsics; the FMA ops route through the ISA's register-run
//! helpers, which pick vector bodies, masked fringes, and scalar tails.

use super::VectorIsa;
use crate::superword::{SAddr, VOp};
use crate::tape::{Addr, TOp};

/// Chain statistics accumulated during compilation.
#[derive(Default)]
pub(super) struct BuildStats {
    pub(super) steps: usize,
    pub(super) fused_tiles: usize,
}

/// One pre-compiled closure: operands resolved at compile time, intrinsics
/// selected for the lane shape. Receives the register file, the tensor
/// base-pointer table, and the loop/scalar tables of the current run.
pub(super) type StepFn = Box<dyn Fn(*mut f32, &[*mut f32], &[i64], &[i64]) + Send + Sync>;

/// A node of the compiled program: a straight-line step or a native loop
/// over a nested chain.
pub(super) enum Node {
    /// One pre-compiled op.
    Step(StepFn),
    /// A dynamic loop: evaluate bounds, run the body chain per iteration
    /// with the counter written into its slot.
    Loop { slot: usize, lo: SAddr, hi: SAddr, body: Vec<Node> },
    /// A dynamic loop whose whole body fused into one closure (the laneq
    /// micro-kernel's `KC` loop): the counter drives the step directly,
    /// no per-iteration chain walk.
    LoopStep { slot: usize, lo: SAddr, hi: SAddr, step: StepFn },
}

/// Runs a compiled chain: steps call straight through their closure, loops
/// drive native counters over their body chain.
///
/// # Safety
///
/// As `SimdKernel::exec_unchecked` — every closure assumes the proofs
/// hold for the pointers and tables it receives.
pub(super) unsafe fn run_nodes(
    nodes: &[Node],
    regs: *mut f32,
    tens: &[*mut f32],
    loops: &mut [i64],
    scalars: &[i64],
) {
    for node in nodes {
        match node {
            Node::Step(f) => f(regs, tens, loops, scalars),
            Node::Loop { slot, lo, hi, body } => {
                let l = lo.eval(loops, scalars);
                let h = hi.eval(loops, scalars);
                let mut v = l;
                while v < h {
                    *loops.get_unchecked_mut(*slot) = v;
                    run_nodes(body, regs, tens, loops, scalars);
                    v += 1;
                }
            }
            Node::LoopStep { slot, lo, hi, step } => {
                let l = lo.eval(loops, scalars);
                let h = hi.eval(loops, scalars);
                let mut v = l;
                while v < h {
                    *loops.get_unchecked_mut(*slot) = v;
                    step(regs, tens, loops, scalars);
                    v += 1;
                }
            }
        }
    }
}

/// Whether `[a, a + len)` and `[b, b + blen)` intersect.
fn overlaps(a: usize, len: usize, b: usize, blen: usize) -> bool {
    a < b + blen && b < a + len
}

/// A register-file copy closure (`VLoad`/`VStore` are memcpys between
/// a tensor and a lane-aligned register run; `copy_nonoverlapping`
/// lowers to vector moves). `LOAD` selects the direction.
fn copy_step<const LOAD: bool>(reg: usize, buf: usize, lanes: usize, addr: &SAddr) -> StepFn {
    // Specialise the hot single-loop-term address so the chain never
    // touches the general evaluator on the packed-operand walk.
    if let SAddr::Loop { base, slot, coeff } = *addr {
        let slot = slot as usize;
        Box::new(move |regs, tens, loops, _scalars| unsafe {
            let idx = (base + coeff * *loops.get_unchecked(slot)) as usize;
            let t = (*tens.get_unchecked(buf)).add(idx);
            if LOAD {
                std::ptr::copy_nonoverlapping(t as *const f32, regs.add(reg), lanes);
            } else {
                std::ptr::copy_nonoverlapping(regs.add(reg) as *const f32, t, lanes);
            }
        })
    } else {
        let addr = addr.clone();
        Box::new(move |regs, tens, loops, scalars| unsafe {
            let idx = addr.eval(loops, scalars) as usize;
            let t = (*tens.get_unchecked(buf)).add(idx);
            if LOAD {
                std::ptr::copy_nonoverlapping(t as *const f32, regs.add(reg), lanes);
            } else {
                std::ptr::copy_nonoverlapping(regs.add(reg) as *const f32, t, lanes);
            }
        })
    }
}

/// One `VFmaLane` op as a closure, vector form when the runs permit.
fn fma_lane_step<I: VectorIsa>(dst: usize, a: usize, b: usize, lanes: usize) -> StepFn {
    if a != dst && overlaps(a, lanes, dst, lanes) {
        // Partial overlap: ascending lane order is semantic — keep it.
        Box::new(move |regs, _tens, _loops, _scalars| unsafe {
            I::fma_run_inorder(regs, dst, a, *regs.add(b), lanes);
        })
    } else {
        Box::new(move |regs, _tens, _loops, _scalars| unsafe {
            I::fma_run(regs, dst, a, *regs.add(b), lanes);
        })
    }
}

/// One `VFmaBcast` op: broadcast one tensor element, write the scratch
/// register (the scalar sequence leaves it written), FMA the run.
fn fma_bcast_step<I: VectorIsa>(
    dst: usize,
    a: usize,
    buf: usize,
    addr: &SAddr,
    scratch: usize,
    lanes: usize,
) -> StepFn {
    let addr = addr.clone();
    let plain_order = a == dst || !overlaps(a, lanes, dst, lanes);
    Box::new(move |regs, tens, loops, scalars| unsafe {
        let idx = addr.eval(loops, scalars) as usize;
        let bval = *(*tens.get_unchecked(buf)).add(idx);
        *regs.add(scratch) = bval;
        if plain_order {
            I::fma_run(regs, dst, a, bval, lanes);
        } else {
            I::fma_run_inorder(regs, dst, a, bval, lanes);
        }
    })
}

/// A scalar tape op as a closure. Scalar `Fma` takes the ISA's scalar
/// rounding (contracted on the native ISAs, two roundings on the scalar
/// reference) like the rest of the tier.
fn scalar_step<I: VectorIsa>(op: &TOp) -> Option<StepFn> {
    let addr_eval = |addr: &Addr| {
        let addr = SAddr::from_addr(addr);
        move |loops: &[i64], scalars: &[i64]| addr.eval(loops, scalars)
    };
    Some(match op {
        TOp::ConstF { dst, val } => {
            let (dst, val) = (*dst as usize, *val);
            Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = val })
        }
        TOp::LoadT { dst, buf, addr } => {
            let (dst, buf, at) = (*dst as usize, *buf as usize, addr_eval(addr));
            Box::new(move |regs, tens, loops, scalars| unsafe {
                let idx = at(loops, scalars) as usize;
                *regs.add(dst) = *(*tens.get_unchecked(buf)).add(idx);
            })
        }
        TOp::StoreT { src, buf, addr } => {
            let (src, buf, at) = (*src as usize, *buf as usize, addr_eval(addr));
            Box::new(move |regs, tens, loops, scalars| unsafe {
                let idx = at(loops, scalars) as usize;
                *(*tens.get_unchecked(buf)).add(idx) = *regs.add(src);
            })
        }
        TOp::Mov { dst, src } => {
            let (dst, src) = (*dst as usize, *src as usize);
            Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = *regs.add(src) })
        }
        TOp::Add { dst, a, b } => {
            let (dst, a, b) = (*dst as usize, *a as usize, *b as usize);
            Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = *regs.add(a) + *regs.add(b) })
        }
        TOp::Sub { dst, a, b } => {
            let (dst, a, b) = (*dst as usize, *a as usize, *b as usize);
            Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = *regs.add(a) - *regs.add(b) })
        }
        TOp::Mul { dst, a, b } => {
            let (dst, a, b) = (*dst as usize, *a as usize, *b as usize);
            Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = *regs.add(a) * *regs.add(b) })
        }
        TOp::Div { dst, a, b } => {
            let (dst, a, b) = (*dst as usize, *a as usize, *b as usize);
            Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = *regs.add(a) / *regs.add(b) })
        }
        TOp::Neg { dst, src } => {
            let (dst, src) = (*dst as usize, *src as usize);
            Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = -*regs.add(src) })
        }
        TOp::Fma { dst, a, b } => {
            let (dst, a, b) = (*dst as usize, *a as usize, *b as usize);
            Box::new(move |regs, _t, _l, _s| unsafe {
                I::fma_run_inorder(regs, dst, a, *regs.add(b), 1);
            })
        }
        TOp::AddAssign { dst, src } => {
            let (dst, src) = (*dst as usize, *src as usize);
            Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) += *regs.add(src) })
        }
        TOp::CastI { dst, value } => {
            let (dst, at) = (*dst as usize, addr_eval(value));
            Box::new(move |regs, _tens, loops, scalars| unsafe {
                *regs.add(dst) = at(loops, scalars) as f32;
            })
        }
        TOp::Round { reg } => {
            let reg = *reg as usize;
            Box::new(move |regs, _t, _l, _s| unsafe {
                let r = regs.add(reg);
                *r = exo_ir::types::f16_round(f64::from(*r)) as f32;
            })
        }
        TOp::Zero { base, len } => {
            let (base, len) = (*base as usize, *len as usize);
            Box::new(move |regs, _t, _l, _s| unsafe {
                std::ptr::write_bytes(regs.add(base), 0, len);
            })
        }
        // Loop markers are lifted to VOp level by the superword pass;
        // one surviving here means the source was not validated.
        TOp::LoopBegin { .. } | TOp::LoopEnd { .. } => return None,
    })
}

/// Pre-resolved parameters of a fused accumulator tile.
#[derive(Clone, Copy)]
struct Tile {
    dst: usize,
    a: usize,
    b: usize,
    lanes: usize,
    count: usize,
}

/// Recognises a run of `VFmaLane` ops starting at `ops[i]` that forms
/// one tile: identical lane count (8 or 4 — the shapes `match_tile` was
/// proven against; an ISA narrower than the run re-rolls it inside
/// `fma_tile`), one shared operand run, broadcast registers ascending by
/// one, accumulators ascending by `lanes`. Returns the tile and how many
/// ops it spans.
fn match_tile(ops: &[VOp], i: usize) -> Option<(Tile, usize)> {
    let &VOp::VFmaLane { dst, a, b, lanes } = ops.get(i)? else { return None };
    if lanes != 8 && lanes != 4 {
        return None;
    }
    let mut count = 1usize;
    while let Some(VOp::VFmaLane { dst: d2, a: a2, b: b2, lanes: l2 }) = ops.get(i + count) {
        if *l2 == lanes && *a2 == a && *b2 == b + count as u32 && *d2 == dst + count as u32 * lanes {
            count += 1;
        } else {
            break;
        }
    }
    let tile = Tile { dst: dst as usize, a: a as usize, b: b as usize, lanes: lanes as usize, count };
    // Hoisting the operand load across the tile requires the operand
    // run (and it alone — broadcast registers are re-read per row) to
    // stay disjoint from every accumulator row written before it is
    // read again.
    if count < 2 || overlaps(tile.a, tile.lanes, tile.dst, count * tile.lanes) {
        return None;
    }
    Some((tile, count))
}

/// One pre-resolved operand-stage `VLoad` of a fused micro-iteration:
/// the address is the hot single-loop-term shape, fully unpacked.
#[derive(Clone, Copy)]
struct StageLoad {
    reg: usize,
    buf: usize,
    lanes: usize,
    base: i64,
    slot: usize,
    coeff: i64,
}

/// The monomorphic fused micro-iteration: `N` stage loads then the
/// tile, one indirect call per `k` iteration, everything unrolled.
fn fused_iteration<I: VectorIsa, const N: usize>(loads: [StageLoad; N], tile: Tile) -> StepFn {
    Box::new(move |regs, tens, loops, _scalars| unsafe {
        for ld in &loads {
            let idx = (ld.base + ld.coeff * *loops.get_unchecked(ld.slot)) as usize;
            let src = (*tens.get_unchecked(ld.buf)).add(idx);
            std::ptr::copy_nonoverlapping(src as *const f32, regs.add(ld.reg), ld.lanes);
        }
        I::fma_tile(regs, tile.dst, tile.a, tile.b, tile.lanes, tile.count);
    })
}

/// Fuses the dominant inner-loop body of a laneq micro-kernel —
/// operand stage loads followed by one accumulator tile — into a
/// single closure, so one `k` iteration costs one indirect call
/// instead of one per op. Op order inside the closure is exactly the
/// tape's: every load in sequence, then the tile rows ascending.
/// Returns the closure and how many ops it consumed.
fn try_fuse_iteration<I: VectorIsa>(ops: &[VOp], i: usize) -> Option<(StepFn, usize)> {
    let mut loads = Vec::new();
    let mut j = i;
    while let Some(VOp::VLoad { dst, buf, addr, lanes }) = ops.get(j) {
        // Only the hot loop-term address shape fuses; anything else
        // keeps its own specialised closure.
        let SAddr::Loop { base, slot, coeff } = *addr else { return None };
        loads.push(StageLoad {
            reg: *dst as usize,
            buf: *buf as usize,
            lanes: *lanes as usize,
            base,
            slot: slot as usize,
            coeff,
        });
        j += 1;
    }
    let (tile, tile_ops) = match_tile(ops, j)?;
    let used = (j - i) + tile_ops;
    let step = match *loads.as_slice() {
        [] => return None,
        [l0] => fused_iteration::<I, 1>([l0], tile),
        [l0, l1] => fused_iteration::<I, 2>([l0, l1], tile),
        [l0, l1, l2] => fused_iteration::<I, 3>([l0, l1, l2], tile),
        _ => return None,
    };
    Some((step, used))
}

/// A lone tile (no leading loads) as its own closure.
fn try_fuse_tile<I: VectorIsa>(ops: &[VOp], i: usize) -> Option<(StepFn, usize)> {
    let (tile, used) = match_tile(ops, i)?;
    let step: StepFn = Box::new(move |regs, _tens, _loops, _scalars| unsafe {
        I::fma_tile(regs, tile.dst, tile.a, tile.b, tile.lanes, tile.count);
    });
    Some((step, used))
}

/// Compiles a superword op slice into a node chain for one ISA, recursing
/// into loop bodies. Returns `None` only for structurally invalid input
/// (which `to_superword` never produces).
pub(super) fn build_nodes<I: VectorIsa>(ops: &[VOp], stats: &mut BuildStats) -> Option<Vec<Node>> {
    debug_assert!(I::available(), "chain compiled for {} on a host that cannot run it", I::NAME);
    build_nodes_at::<I>(ops, 0, stats)
}

/// The recursion worker: `base` is the index of `ops[0]` in the
/// original op vec, because every `LoopBegin`'s `end` jump target is
/// absolute in that vec and must be rebased before indexing the
/// subslice (nested dynamic loops would otherwise miss their
/// `LoopEnd` by the accumulated offset and decline compilation).
fn build_nodes_at<I: VectorIsa>(ops: &[VOp], base: usize, stats: &mut BuildStats) -> Option<Vec<Node>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < ops.len() {
        match &ops[i] {
            VOp::LoopBegin { slot, lo, hi, end } => {
                let end = (*end as usize).checked_sub(base)?;
                // Body spans (i + 1)..(end - 1); ops[end - 1] is the
                // matching LoopEnd.
                if end < 2 || end > ops.len() || !matches!(ops[end - 1], VOp::LoopEnd { .. }) {
                    return None;
                }
                let mut body = build_nodes_at::<I>(&ops[i + 1..end - 1], base + i + 1, stats)?;
                let (slot, lo, hi) = (*slot as usize, lo.clone(), hi.clone());
                if body.len() == 1 && matches!(body[0], Node::Step(_)) {
                    let Some(Node::Step(step)) = body.pop() else { unreachable!() };
                    out.push(Node::LoopStep { slot, lo, hi, step });
                } else {
                    out.push(Node::Loop { slot, lo, hi, body });
                }
                i = end;
            }
            VOp::LoopEnd { .. } => return None,
            VOp::VFmaLane { dst, a, b, lanes } => {
                if let Some((step, used)) = try_fuse_tile::<I>(ops, i) {
                    stats.fused_tiles += 1;
                    stats.steps += 1;
                    out.push(Node::Step(step));
                    i += used;
                } else {
                    stats.steps += 1;
                    out.push(Node::Step(fma_lane_step::<I>(
                        *dst as usize,
                        *a as usize,
                        *b as usize,
                        *lanes as usize,
                    )));
                    i += 1;
                }
            }
            VOp::VLoad { dst, buf, addr, lanes } => {
                if let Some((step, used)) = try_fuse_iteration::<I>(ops, i) {
                    stats.fused_tiles += 1;
                    stats.steps += 1;
                    out.push(Node::Step(step));
                    i += used;
                } else {
                    stats.steps += 1;
                    out.push(Node::Step(copy_step::<true>(
                        *dst as usize,
                        *buf as usize,
                        *lanes as usize,
                        addr,
                    )));
                    i += 1;
                }
            }
            VOp::VStore { src, buf, addr, lanes } => {
                stats.steps += 1;
                out.push(Node::Step(copy_step::<false>(*src as usize, *buf as usize, *lanes as usize, addr)));
                i += 1;
            }
            VOp::VFmaBcast { dst, a, buf, addr, scratch, lanes } => {
                stats.steps += 1;
                out.push(Node::Step(fma_bcast_step::<I>(
                    *dst as usize,
                    *a as usize,
                    *buf as usize,
                    addr,
                    *scratch as usize,
                    *lanes as usize,
                )));
                i += 1;
            }
            VOp::Scalar(op) => {
                stats.steps += 1;
                out.push(Node::Step(scalar_step::<I>(op)?));
                i += 1;
            }
        }
    }
    Some(out)
}
