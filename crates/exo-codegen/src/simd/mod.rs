//! Native SIMD execution: the superword tape lowered to per-architecture
//! vector intrinsics through a pre-compiled chain of monomorphic closures.
//!
//! The superword backend of [`crate::superword`] already dispatches one
//! whole vector register per op, but each op still runs through a `match`
//! interpreter whose lane loops the compiler must re-vectorise from
//! scratch on every dispatch — and in practice does not: `VFmaLane` spends
//! its time in scalar multiply-then-add lane arithmetic. This module is
//! the "last mile" the Exo paper delegates to a native compiler backend:
//! the validated superword ops (`VLoad` / `VStore` / `VFmaLane` /
//! `VFmaBcast`) are compiled **once per kernel** into a chain of
//! monomorphic closures over native vector intrinsics:
//!
//! * every closure carries its operands pre-resolved (register offsets,
//!   the pre-compiled specialised address shapes of the superword tier) —
//!   no per-op decode survives to run time;
//! * runs of isomorphic `VFmaLane` ops over one staged operand (the
//!   accumulator tile of a laneq kernel) fuse into a single closure that
//!   hoists the operand load across the whole tile;
//! * dynamic loops become native Rust loops over the closure chain — the
//!   tape's `LoopBegin`/`LoopEnd` jump dispatch disappears entirely.
//!
//! **Multi-ISA.** The chain compiler (the `compile` submodule) is generic
//! over the crate-private `VectorIsa` trait — splat / load / store / fma
//! plus masked partial load/store for fringes, a `LANES` width, and a
//! runtime `available()` probe — and is monomorphised once per
//! implementation:
//!
//! * `x86_64` — AVX2/FMA (`_mm256_fmadd_ps`), 8 lanes, selected when
//!   `is_x86_feature_detected!` confirms both features;
//! * `aarch64` — NEON (`vfmaq_f32`), 4 lanes, always available on
//!   aarch64 (NEON is baseline): an 8-lane superword run re-rolls into a
//!   pair of `float32x4_t` ops;
//! * `scalar` — the 1-lane reference implementation, available
//!   everywhere. Its multiply-then-add matches the superword / tape /
//!   interpreter rounding **bit for bit**, and it also hosts the checked
//!   reference executor those tiers fall back to when the bounds proof
//!   declines.
//!
//! [`active_isa`] picks the widest available implementation at process
//! start ([`IsaKind::Avx2`] → [`IsaKind::Neon`] → [`IsaKind::Scalar`]);
//! `EXO_ISA=avx2|neon|scalar` pins one (a pin the host cannot run
//! panics). [`SimdKernel::compile_for`] compiles for an explicit ISA,
//! which is how the differential suites compare implementations inside
//! one process.
//!
//! **Selection and safety.** The closure chain runs bounds-free: it
//! relies on exactly the proofs the superword backend already established
//! — the construction-time register/loop-structure validation and the
//! run-time affine-interval proof over the tensor addresses.
//! [`SimdDispatch`] reuses the memoised proof of its inner
//! [`SuperwordDispatch`], so steady-state micro-tile dispatch re-proves
//! nothing; when the proof declines, execution falls back to the checked
//! reference loop in the `scalar` module with identical error semantics
//! to the scalar tape.
//!
//! **Bit compatibility.** The native FMA intrinsics *contract* the
//! multiply-then-add of the tape's `Fma` semantics into a single rounding,
//! so the AVX2 and NEON chains are **not** bit-identical to the
//! superword / tape / interp tiers (they are at least as accurate: one
//! rounding instead of two per multiply-add). The differential suites
//! therefore compare those chains against the references within an
//! accumulation-scaled ULP bound — `|simd − superword| ≤
//! 2·ε·(KC + 4)²·scale` ([`fma_contraction_tol`]) — and demand exact
//! equality of the scalar chain, which does not contract. Lane order
//! inside every packed op is preserved, so every chain stays
//! deterministic: the same inputs produce the same bits on every run and
//! every thread count.

use std::sync::{Arc, OnceLock};

use crate::env::env_once;
use crate::error::Result;
use crate::superword::{ExecScratch, SuperwordDispatch, SuperwordKernel};
use crate::tape::TensorView;

#[cfg(target_arch = "aarch64")]
pub(crate) mod aarch64;
mod compile;
pub(crate) mod scalar;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86_64;

use compile::Node;

/// The per-architecture vector primitive set the chain compiler is
/// generic over. One implementation per [`IsaKind`]; the compiler is
/// monomorphised per implementation, so every closure in a compiled chain
/// calls straight into one ISA's intrinsics with no dispatch in between.
///
/// The fine-grained ops (`splat` / `load` / `store` / `fma` and the masked
/// `load_partial` / `store_partial` fringe forms) describe one vector
/// register; the provided register-file helpers (`fma_run`, `fma_tile`,
/// `fma_run_inorder`) compose them over superword lane runs and may be
/// overridden where an architecture needs a `#[target_feature]` call
/// boundary (x86_64) instead of the generic composition (aarch64, scalar).
///
/// Not to be confused with `exo_isa::VectorIsa`, the *codegen-time*
/// description of the paper's target instruction set: this trait is the
/// *run-time* lowering of validated superword ops onto the host.
///
/// # Safety
///
/// All vector ops are `unsafe fn`s: callers guarantee the pointers are
/// valid for the accessed lanes and, for the native implementations, that
/// [`VectorIsa::available`] returned `true` on this host.
pub(crate) trait VectorIsa {
    /// One native vector register (`[f32; LANES]` semantics).
    type Vector: Copy;
    /// Lane count of one vector register.
    const LANES: usize;
    /// Short lowercase name, equal to the matching [`IsaKind::name`].
    const NAME: &'static str;

    /// Whether the running host can execute this implementation's ops.
    fn available() -> bool;

    /// Broadcasts one value into every lane.
    unsafe fn splat(v: f32) -> Self::Vector;
    /// Loads `LANES` contiguous values from `p`.
    unsafe fn load(p: *const f32) -> Self::Vector;
    /// Stores `LANES` contiguous values to `p`.
    unsafe fn store(p: *mut f32, v: Self::Vector);
    /// Per-lane multiply-add `acc + a·b` in this implementation's
    /// rounding (contracted for the native ISAs, two roundings for the
    /// scalar reference).
    unsafe fn fma(acc: Self::Vector, a: Self::Vector, b: Self::Vector) -> Self::Vector;
    /// Masked fringe load: lanes `0..n` from `p`, remaining lanes zero.
    /// Only lanes `0..n` of `p` are accessed (`n < LANES`).
    unsafe fn load_partial(p: *const f32, n: usize) -> Self::Vector;
    /// Masked fringe store: lanes `0..n` of `v` to `p`, the rest dropped.
    /// Only lanes `0..n` of `p` are accessed (`n < LANES`).
    unsafe fn store_partial(p: *mut f32, v: Self::Vector, n: usize);
    /// One scalar multiply-add `acc + a·b` in this implementation's
    /// rounding — the lane the vector ops generalise.
    fn fma_scalar(acc: f32, a: f32, b: f32) -> f32;

    /// `lanes` multiply-adds `reg[dst+i] = reg[a+i]·bval + reg[dst+i]`:
    /// whole vectors, then a masked fringe, in ascending lane order.
    ///
    /// # Safety
    ///
    /// Both register runs in bounds (the superword construction proof)
    /// and, where they overlap, `dst == a` (whole-register loads of a
    /// *partially* overlapping run would read stale lanes — the compiler
    /// routes those to [`VectorIsa::fma_run_inorder`]).
    unsafe fn fma_run(regs: *mut f32, dst: usize, a: usize, bval: f32, lanes: usize) {
        let mut i = 0;
        if Self::LANES > 1 && lanes >= Self::LANES {
            let vb = Self::splat(bval);
            while i + Self::LANES <= lanes {
                let d = regs.add(dst + i);
                let va = Self::load(regs.add(a + i));
                Self::store(d, Self::fma(Self::load(d), va, vb));
                i += Self::LANES;
            }
            if i < lanes {
                let rem = lanes - i;
                let d = regs.add(dst + i);
                let va = Self::load_partial(regs.add(a + i), rem);
                let acc = Self::load_partial(d, rem);
                Self::store_partial(d, Self::fma(acc, va, vb), rem);
                i = lanes;
            }
        }
        while i < lanes {
            let d = regs.add(dst + i);
            *d = Self::fma_scalar(*d, *regs.add(a + i), bval);
            i += 1;
        }
    }

    /// The strictly ascending one-lane-at-a-time form of
    /// [`VectorIsa::fma_run`], taken when the operand run partially
    /// overlaps the accumulator run and the lane order is semantic.
    ///
    /// # Safety
    ///
    /// Both register runs in bounds.
    unsafe fn fma_run_inorder(regs: *mut f32, dst: usize, a: usize, bval: f32, lanes: usize) {
        for i in 0..lanes {
            let d = regs.add(dst + i);
            *d = Self::fma_scalar(*d, *regs.add(a + i), bval);
        }
    }

    /// A fused accumulator tile: `count` consecutive `VFmaLane` ops over
    /// one operand run, `reg[dst0 + g·lanes + i] += reg[a+i] · reg[b0+g]`.
    /// Each operand vector is loaded once and held across the whole tile —
    /// the inner-loop body of a laneq micro-kernel with the operand reload
    /// hoisted. Every accumulator element is touched exactly once (the
    /// rows are disjoint), so the chunk-major walk computes the same bits
    /// as the row-major op order.
    ///
    /// # Safety
    ///
    /// All register runs in bounds, and the operand run disjoint from the
    /// accumulator span (checked at fuse time).
    unsafe fn fma_tile(regs: *mut f32, dst0: usize, a: usize, b0: usize, lanes: usize, count: usize) {
        let mut i = 0;
        if Self::LANES > 1 {
            while i + Self::LANES <= lanes {
                let va = Self::load(regs.add(a + i));
                for g in 0..count {
                    let d = regs.add(dst0 + g * lanes + i);
                    let vb = Self::splat(*regs.add(b0 + g));
                    Self::store(d, Self::fma(Self::load(d), va, vb));
                }
                i += Self::LANES;
            }
            if i < lanes {
                let rem = lanes - i;
                let va = Self::load_partial(regs.add(a + i), rem);
                for g in 0..count {
                    let d = regs.add(dst0 + g * lanes + i);
                    let vb = Self::splat(*regs.add(b0 + g));
                    Self::store_partial(d, Self::fma(Self::load_partial(d, rem), va, vb), rem);
                }
                i = lanes;
            }
        }
        while i < lanes {
            let av = *regs.add(a + i);
            for g in 0..count {
                let d = regs.add(dst0 + g * lanes + i);
                *d = Self::fma_scalar(*d, av, *regs.add(b0 + g));
            }
            i += 1;
        }
    }
}

/// The vector instruction sets the chain compiler can target, widest
/// first. Every variant exists on every build target so `EXO_ISA` values
/// parse everywhere — pinning an ISA the host cannot run is a loud panic,
/// not an "unknown ISA" error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaKind {
    /// x86_64 AVX2 + FMA: 8-lane `__m256` chains.
    Avx2,
    /// aarch64 NEON: 4-lane `float32x4_t` chains (8-lane superword runs
    /// re-roll into pairs).
    Neon,
    /// The portable 1-lane reference implementation: available on every
    /// host, bit-identical to the superword / tape / interpreter tiers.
    Scalar,
}

impl IsaKind {
    /// Every ISA, widest first — the runtime selection order.
    pub const ALL: [IsaKind; 3] = [IsaKind::Avx2, IsaKind::Neon, IsaKind::Scalar];

    /// The lowercase name, as accepted by `EXO_ISA` and recorded by the
    /// bench harness.
    pub fn name(self) -> &'static str {
        match self {
            IsaKind::Avx2 => "avx2",
            IsaKind::Neon => "neon",
            IsaKind::Scalar => "scalar",
        }
    }

    /// Vector lane width of one register.
    pub fn lanes(self) -> usize {
        match self {
            IsaKind::Avx2 => 8,
            IsaKind::Neon => 4,
            IsaKind::Scalar => 1,
        }
    }

    /// Whether this ISA contracts each multiply-add into a single rounding.
    /// Contracting chains are held to [`fma_contraction_tol`] by the
    /// differential suites; the scalar chain is held to bit equality.
    pub fn contracts_fma(self) -> bool {
        !matches!(self, IsaKind::Scalar)
    }

    /// Whether the running host can execute chains compiled for this ISA.
    pub fn available(self) -> bool {
        match self {
            IsaKind::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            // NEON is baseline on every aarch64 Rust target.
            IsaKind::Neon => cfg!(target_arch = "aarch64"),
            IsaKind::Scalar => true,
        }
    }

    /// Parses an `EXO_ISA` value.
    ///
    /// # Errors
    ///
    /// Returns a description naming the accepted ISAs.
    pub fn parse(value: &str) -> std::result::Result<IsaKind, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "avx2" => Ok(IsaKind::Avx2),
            "neon" => Ok(IsaKind::Neon),
            "scalar" => Ok(IsaKind::Scalar),
            other => Err(format!("unknown ISA `{other}` (expected one of: avx2, neon, scalar)")),
        }
    }
}

impl std::fmt::Display for IsaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide `EXO_ISA` override, read once (same contract as
/// `EXO_BACKEND` — see [`crate::env::env_once`]): unset or empty means "no
/// override" (pick the widest available ISA), anything else must parse as
/// an ISA name.
///
/// # Panics
///
/// Panics on an unparseable value, naming the accepted ISAs.
pub fn env_isa_override() -> Option<IsaKind> {
    static OVERRIDE: OnceLock<Option<IsaKind>> = OnceLock::new();
    env_once(&OVERRIDE, "EXO_ISA", IsaKind::parse)
}

/// The vector ISA the SIMD tier targets on this host, decided once per
/// process: the `EXO_ISA` pin when set, otherwise the widest available
/// implementation (AVX2 → NEON → scalar). Never less than
/// [`IsaKind::Scalar`], so [`SimdKernel::compile`] succeeds on every host.
///
/// # Panics
///
/// Panics when `EXO_ISA` pins an ISA this host cannot run — a silent
/// fallback would report numbers for the wrong implementation.
pub fn active_isa() -> IsaKind {
    static ACTIVE: OnceLock<IsaKind> = OnceLock::new();
    *ACTIVE.get_or_init(|| match env_isa_override() {
        Some(pinned) => {
            assert!(
                pinned.available(),
                "EXO_ISA: `{pinned}` is not available on this host (available: {})",
                IsaKind::ALL
                    .iter()
                    .filter(|isa| isa.available())
                    .map(|isa| isa.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            pinned
        }
        None => *IsaKind::ALL.iter().find(|isa| isa.available()).expect("scalar is always available"),
    })
}

/// Whether the SIMD tier runs a *native* vector ISA on this host — i.e.
/// [`active_isa`] resolved to something wider than the scalar reference.
/// Differential suites use this to decide between the FMA-contraction
/// bound (native chains contract) and bit equality (the scalar chain does
/// not); `EXO_ISA=scalar` therefore reports `false` even on AVX2 hosts.
pub fn simd_available() -> bool {
    active_isa() != IsaKind::Scalar
}

/// The accumulation-scaled tolerance of the SIMD tier's FMA-contraction
/// contract — the single definition every differential suite in the
/// workspace holds `|simd − superword|` to, relative to the element
/// magnitude (floor 1.0): the native chains contract each multiply-add
/// into one rounding, so a `k`-deep accumulation over unit-magnitude data
/// differs from the mul-then-add tiers by at most `2·ε·(k + 4)²`. The
/// scalar chain does not contract and its distance is exactly zero.
pub fn fma_contraction_tol(k: usize) -> f32 {
    2.0 * f32::EPSILON * ((k + 4) as f32).powi(2)
}

/// A kernel compiled to a chain of native vector closures.
///
/// Obtained from [`SimdKernel::compile`] (the host's [`active_isa`]) or
/// [`SimdKernel::compile_for`] (an explicit ISA). The fastest execution
/// tier; results of the native chains are within a documented ULP bound
/// of the superword tier (FMA contraction), the scalar chain is
/// bit-identical to it, and no chain is ever bit-different across runs or
/// thread counts.
pub struct SimdKernel {
    source: Arc<SuperwordKernel>,
    isa: IsaKind,
    program: Vec<Node>,
    n_steps: usize,
    n_fused_tiles: usize,
}

impl std::fmt::Debug for SimdKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimdKernel")
            .field("name", &self.source.name)
            .field("isa", &self.isa.name())
            .field("steps", &self.n_steps)
            .field("fused_tiles", &self.n_fused_tiles)
            .finish_non_exhaustive()
    }
}

impl SimdKernel {
    /// Compiles a superword kernel into the closure chain of the host's
    /// [`active_isa`].
    ///
    /// The scalar implementation is always available, so this succeeds on
    /// every host for every generated kernel; `None` survives only for
    /// the (never observed for generated kernels) case of a tape
    /// construct the chain compiler declines.
    pub fn compile(source: Arc<SuperwordKernel>) -> Option<SimdKernel> {
        Self::compile_for(source, active_isa())
    }

    /// Compiles a superword kernel into the closure chain of an explicit
    /// ISA — how the differential suites compare implementations inside
    /// one process, independent of the `EXO_ISA` pin.
    ///
    /// Returns `None` when the host cannot run `isa`
    /// ([`IsaKind::available`]) or the chain compiler declines the tape.
    pub fn compile_for(source: Arc<SuperwordKernel>, isa: IsaKind) -> Option<SimdKernel> {
        if !isa.available() {
            return None;
        }
        let mut stats = compile::BuildStats::default();
        let program = match isa {
            IsaKind::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    compile::build_nodes::<x86_64::Avx2>(&source.ops, &mut stats)?
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    return None;
                }
            }
            IsaKind::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    compile::build_nodes::<aarch64::Neon>(&source.ops, &mut stats)?
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    return None;
                }
            }
            IsaKind::Scalar => compile::build_nodes::<scalar::ScalarIsa>(&source.ops, &mut stats)?,
        };
        Some(SimdKernel { source, isa, program, n_steps: stats.steps, n_fused_tiles: stats.fused_tiles })
    }

    /// The superword kernel this chain was compiled from (also the
    /// portable fallback and the owner of the shared proofs).
    pub fn source(&self) -> &Arc<SuperwordKernel> {
        &self.source
    }

    /// The vector ISA this chain's closures target — the reported-ISA
    /// probe the cross-target CI asserts against.
    pub fn isa(&self) -> IsaKind {
        self.isa
    }

    /// Name of the source procedure.
    pub fn name(&self) -> &str {
        &self.source.name
    }

    /// Number of pre-compiled closures in the chain (loop nodes count
    /// their bodies, not themselves).
    pub fn step_count(&self) -> usize {
        self.n_steps
    }

    /// How many fused accumulator-tile closures the chain compiler formed
    /// (each replaces a whole run of `VFmaLane` ops and hoists the shared
    /// operand load).
    pub fn fused_tile_count(&self) -> usize {
        self.n_fused_tiles
    }

    /// Runs the chain over borrowed tensor views, proving bounds for this
    /// exact input first (one-shot entry point; the GEMM hot path uses
    /// [`SimdDispatch`] instead, which memoises the proof).
    ///
    /// # Errors
    ///
    /// Exactly [`SuperwordKernel::run_views`]'s:
    /// [`crate::CodegenError::BadArguments`] on an argument mismatch, and
    /// [`crate::CodegenError::OutOfBounds`] from the checked fallback when
    /// the interval proof declines and an access indeed leaves its buffer.
    pub fn run_views(&self, scalars: &[i64], tensors: &mut [TensorView<'_>]) -> Result<()> {
        self.source.validate_views(scalars, tensors)?;
        let lens: Vec<usize> = tensors.iter().map(|t| t.as_slice().len()).collect();
        let mut scratch = ExecScratch::for_kernel(&self.source);
        if self.source.bounds_provable(scalars, &lens) {
            // SAFETY: the source kernel's construction proof covers every
            // register operand and the loop structure; `bounds_provable`
            // just certified every tensor access for these scalars and
            // buffer lengths; `validate_views` guaranteed written tensors
            // are `Rw`.
            unsafe { self.exec_unchecked(scalars, tensors, &mut scratch) };
            Ok(())
        } else {
            scalar::exec_checked(&self.source, scalars, tensors, &mut scratch)
        }
    }

    /// Runs the packed micro-kernel signature `(KC, Ac, Bc, C)`:
    /// `c[nr][mr] += ac[kc][mr] * bc[kc][nr]` through the closure chain.
    ///
    /// # Errors
    ///
    /// As [`SuperwordKernel::run_packed`].
    pub fn run_packed(&self, kc: usize, ac: &[f32], bc: &[f32], c: &mut [f32]) -> Result<()> {
        self.source.check_packed_signature()?;
        self.run_views(&[kc as i64], &mut [TensorView::Ro(ac), TensorView::Ro(bc), TensorView::Rw(c)])
    }

    /// A prove-once dispatch handle over this chain (see [`SimdDispatch`]).
    pub fn dispatcher(self: &Arc<Self>) -> SimdDispatch {
        SimdDispatch::new(Arc::clone(self))
    }

    /// Runs the pre-compiled chain with no checks.
    ///
    /// # Safety
    ///
    /// Callers must have established the same three preconditions as
    /// [`SuperwordKernel`]'s unsafe loop for the *source* kernel: the
    /// construction-time register/loop proof (always true), the interval
    /// proof for these exact scalars and tensor lengths, and `Rw` views
    /// for every written tensor. `scratch` must be sized for the source
    /// kernel.
    unsafe fn exec_unchecked(
        &self,
        scalars: &[i64],
        tensors: &mut [TensorView<'_>],
        scratch: &mut ExecScratch,
    ) {
        scratch.regs.fill(0.0);
        let regs = scratch.regs.as_mut_ptr();
        // Raw base pointers, exactly as the superword loop takes them: the
        // `*mut` view of a read-only tensor is never written through.
        let mut tens_stack = [std::ptr::null_mut::<f32>(); 4];
        let mut tens_heap: Vec<*mut f32> = Vec::new();
        let raw = |t: &mut TensorView<'_>| match t {
            TensorView::Ro(s) => s.as_ptr().cast_mut(),
            TensorView::Rw(s) => s.as_mut_ptr(),
        };
        let tens: &[*mut f32] = if tensors.len() <= tens_stack.len() {
            for (slot, t) in tens_stack.iter_mut().zip(tensors.iter_mut()) {
                *slot = raw(t);
            }
            &tens_stack[..tensors.len()]
        } else {
            tens_heap.extend(tensors.iter_mut().map(raw));
            &tens_heap
        };
        compile::run_nodes(&self.program, regs, tens, &mut scratch.loops, scalars);
    }
}

/// A prove-once dispatch handle for the SIMD tier: the per-worker reusable
/// state of a [`SimdKernel`].
///
/// Wraps a [`SuperwordDispatch`] over the source kernel and reuses its
/// memoised affine-interval proof — one verdict per distinct
/// `(scalars, buffer lengths)` tuple gates both the intrinsic chain and,
/// when it declines, the checked reference fallback (identical error
/// semantics). The handle owns its register file and loop tables, so
/// steady-state dispatch allocates nothing; create one per worker thread
/// (it is `Send`) and reuse it for every micro-tile.
#[derive(Debug, Clone)]
pub struct SimdDispatch {
    kernel: Arc<SimdKernel>,
    fallback: SuperwordDispatch,
    scratch: ExecScratch,
}

impl SimdDispatch {
    /// Creates a dispatch handle, allocating the register file and loop
    /// tables up front.
    pub fn new(kernel: Arc<SimdKernel>) -> Self {
        let fallback = SuperwordDispatch::new(Arc::clone(kernel.source()));
        let scratch = ExecScratch::for_kernel(kernel.source());
        SimdDispatch { kernel, fallback, scratch }
    }

    /// The compiled chain this handle dispatches.
    pub fn kernel(&self) -> &SimdKernel {
        &self.kernel
    }

    /// How many distinct `(scalars, buffer lengths)` proof inputs have
    /// been memoised so far (shared with the superword fallback).
    pub fn memoised_proofs(&self) -> usize {
        self.fallback.memoised_proofs()
    }

    /// Whether a packed call with these operand lengths passes the
    /// memoised affine-interval bounds proof. The native (`exo-aot`)
    /// dispatch consults this before handing the call to the compiled C
    /// kernel, which has no bounds checks of its own; a `false` answer
    /// routes the call to this handle's checked tiers instead.
    pub fn packed_provable(&mut self, kc: usize, ac_len: usize, bc_len: usize, c_len: usize) -> bool {
        self.kernel.source().check_packed_signature().is_ok()
            && self.fallback.provable(&[kc as i64], &[ac_len, bc_len, c_len])
    }

    /// Runs the chain over borrowed tensor views, reusing the memoised
    /// proof and this handle's register file.
    ///
    /// # Errors
    ///
    /// As [`SimdKernel::run_views`].
    pub fn run_views(&mut self, scalars: &[i64], tensors: &mut [TensorView<'_>]) -> Result<()> {
        self.kernel.source().validate_views(scalars, tensors)?;
        let mut lens_stack = [0usize; 4];
        if tensors.len() > lens_stack.len() {
            let lens: Vec<usize> = tensors.iter().map(|t| t.as_slice().len()).collect();
            return self.run_proved(scalars, tensors, &lens);
        }
        for (slot, t) in lens_stack.iter_mut().zip(tensors.iter()) {
            *slot = t.as_slice().len();
        }
        let n = tensors.len();
        let lens = lens_stack;
        self.run_proved(scalars, tensors, &lens[..n])
    }

    fn run_proved(&mut self, scalars: &[i64], tensors: &mut [TensorView<'_>], lens: &[usize]) -> Result<()> {
        // Disjoint field borrows: the kernel is read-only while the
        // fallback's proof memo and this handle's scratch are mutated — no
        // per-dispatch Arc traffic on the hot path.
        let SimdDispatch { kernel, fallback, scratch } = self;
        if fallback.provable(scalars, lens) {
            // SAFETY: construction proof of the source kernel, the (memoised)
            // interval proof for these exact inputs, and the `Rw` check in
            // `validate_views` — the same three obligations as the superword
            // unsafe loop.
            unsafe { kernel.exec_unchecked(scalars, tensors, scratch) };
            Ok(())
        } else {
            // Declined proof: the checked reference loop, which reports
            // exactly what the scalar tape would (and memoised the declined
            // verdict, so retries go straight here).
            fallback.run_views(scalars, tensors)
        }
    }

    /// Runs the packed `(KC, Ac, Bc, C)` micro-kernel signature through
    /// the chain, reusing the memoised proof and register file.
    ///
    /// # Errors
    ///
    /// As [`SimdKernel::run_packed`].
    pub fn run_packed(&mut self, kc: usize, ac: &[f32], bc: &[f32], c: &mut [f32]) -> Result<()> {
        self.kernel.source().check_packed_signature()?;
        self.run_views(&[kc as i64], &mut [TensorView::Ro(ac), TensorView::Ro(bc), TensorView::Rw(c)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CodegenError;
    use crate::exec::compile as compile_proc;
    use exo_ir::builder::*;
    use exo_ir::{Expr, MemSpace, ScalarType};

    fn assert_close(x: &[f32], y: &[f32], kc: usize, what: &str) {
        let tol = fma_contraction_tol(kc);
        for (i, (a, b)) in x.iter().zip(y).enumerate() {
            let scale = a.abs().max(b.abs()).max(1.0);
            assert!((a - b).abs() <= tol * scale, "{what} at {i}: {a} vs {b} (tol {tol})");
        }
    }

    /// Every ISA the running host can execute — always at least the
    /// scalar reference, plus the native one of the build target.
    fn available_isas() -> Vec<IsaKind> {
        IsaKind::ALL.iter().copied().filter(|isa| isa.available()).collect()
    }

    /// The laneq-shaped staged 8x4 kernel of the superword tests: the tape
    /// scalarises its staged tiles into exactly the lane runs the chain
    /// compiler fuses.
    fn staged_kernels() -> (Arc<SuperwordKernel>, SimdKernel) {
        let (mr, nr) = (8i64, 4i64);
        let p = proc("ukr_8x4_staged")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(mr)], MemSpace::Dram)
            .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), int(nr)], MemSpace::Dram)
            .tensor_arg("C", ScalarType::F32, vec![int(nr * mr)], MemSpace::Dram)
            .body(vec![
                alloc("Ct", ScalarType::F32, vec![int(nr), int(mr)], MemSpace::Neon),
                alloc("Ra", ScalarType::F32, vec![int(mr)], MemSpace::Neon),
                alloc("Rb", ScalarType::F32, vec![int(nr)], MemSpace::Neon),
                for_(
                    "j",
                    0,
                    nr,
                    vec![for_(
                        "i",
                        0,
                        mr,
                        vec![assign(
                            "Ct",
                            vec![var("j"), var("i")],
                            read("C", vec![Expr::add(Expr::mul(var("j"), int(mr)), var("i"))]),
                        )],
                    )],
                ),
                for_(
                    "k",
                    0,
                    var("KC"),
                    vec![
                        for_(
                            "i",
                            0,
                            mr,
                            vec![assign("Ra", vec![var("i")], read("Ac", vec![var("k"), var("i")]))],
                        ),
                        for_(
                            "j",
                            0,
                            nr,
                            vec![assign("Rb", vec![var("j")], read("Bc", vec![var("k"), var("j")]))],
                        ),
                        for_(
                            "j",
                            0,
                            nr,
                            vec![for_(
                                "i",
                                0,
                                mr,
                                vec![reduce(
                                    "Ct",
                                    vec![var("j"), var("i")],
                                    Expr::mul(read("Ra", vec![var("i")]), read("Rb", vec![var("j")])),
                                )],
                            )],
                        ),
                    ],
                ),
                for_(
                    "j",
                    0,
                    nr,
                    vec![for_(
                        "i",
                        0,
                        mr,
                        vec![assign(
                            "C",
                            vec![Expr::add(Expr::mul(var("j"), int(mr)), var("i"))],
                            read("Ct", vec![var("j"), var("i")]),
                        )],
                    )],
                ),
            ])
            .build();
        let sw = Arc::new(compile_proc(&p).unwrap().to_superword().unwrap());
        let simd = SimdKernel::compile(Arc::clone(&sw)).expect("the scalar floor always compiles");
        (sw, simd)
    }

    #[test]
    fn the_scalar_isa_is_always_available_and_is_the_selection_floor() {
        assert!(IsaKind::Scalar.available());
        let active = active_isa();
        assert!(active.available());
        // `simd_available` now means "a native ISA was selected".
        assert_eq!(simd_available(), active != IsaKind::Scalar);
        // The selection is the widest available ISA (or the env pin).
        if env_isa_override().is_none() {
            let widest = *IsaKind::ALL.iter().find(|isa| isa.available()).unwrap();
            assert_eq!(active, widest);
        }
    }

    #[test]
    fn isa_parse_accepts_names_case_insensitively_and_names_the_choices_on_a_typo() {
        assert_eq!(IsaKind::parse("avx2"), Ok(IsaKind::Avx2));
        assert_eq!(IsaKind::parse(" NEON "), Ok(IsaKind::Neon));
        assert_eq!(IsaKind::parse("Scalar"), Ok(IsaKind::Scalar));
        assert_eq!(
            IsaKind::parse("sse9"),
            Err("unknown ISA `sse9` (expected one of: avx2, neon, scalar)".to_string())
        );
        for isa in IsaKind::ALL {
            assert_eq!(IsaKind::parse(isa.name()), Ok(isa), "names round-trip");
        }
    }

    #[test]
    fn isa_lane_widths_and_contraction_contract() {
        assert_eq!(IsaKind::Avx2.lanes(), 8);
        assert_eq!(IsaKind::Neon.lanes(), 4);
        assert_eq!(IsaKind::Scalar.lanes(), 1);
        assert!(IsaKind::Avx2.contracts_fma());
        assert!(IsaKind::Neon.contracts_fma());
        assert!(!IsaKind::Scalar.contracts_fma());
    }

    #[test]
    fn simd_matches_superword_within_the_fma_bound_and_fuses_tiles() {
        let (sw, simd) = staged_kernels();
        assert_eq!(simd.isa(), active_isa());
        assert!(simd.fused_tile_count() > 0, "the staged kernel's FMA runs must fuse: {simd:?}");
        assert!(simd.step_count() > 0);
        let (mr, nr) = (8usize, 4usize);
        for kc in [0usize, 1, 2, 17, 64] {
            let a: Vec<f32> = (0..kc * mr).map(|i| ((i * 7 + 3) % 13) as f32 * 0.5 - 2.0).collect();
            let b: Vec<f32> = (0..kc * nr).map(|i| ((i * 5 + 1) % 11) as f32 * 0.25 - 1.0).collect();
            let c0: Vec<f32> = (0..nr * mr).map(|i| (i % 5) as f32 * 0.5).collect();
            let mut c_sw = c0.clone();
            sw.run_packed(kc, &a, &b, &mut c_sw).unwrap();
            let mut c_simd = c0.clone();
            simd.run_packed(kc, &a, &b, &mut c_simd).unwrap();
            assert_close(&c_simd, &c_sw, kc, &format!("kc={kc}"));
            if kc == 0 {
                assert_eq!(c_simd, c0, "kc = 0 stages C through registers and writes it back unchanged");
            }
        }
    }

    #[test]
    fn every_available_isa_compiles_the_staged_kernel_and_the_scalar_chain_is_bit_exact() {
        let (sw, _) = staged_kernels();
        let (mr, nr) = (8usize, 4usize);
        for isa in available_isas() {
            let chain = SimdKernel::compile_for(Arc::clone(&sw), isa)
                .unwrap_or_else(|| panic!("{isa} is available but declined the staged kernel"));
            assert_eq!(chain.isa(), isa);
            assert!(chain.fused_tile_count() > 0, "{isa}: the accumulator tiles must fuse");
            for kc in [0usize, 1, 2, 17, 64] {
                let a: Vec<f32> = (0..kc * mr).map(|i| ((i * 7 + 3) % 13) as f32 * 0.5 - 2.0).collect();
                let b: Vec<f32> = (0..kc * nr).map(|i| ((i * 5 + 1) % 11) as f32 * 0.25 - 1.0).collect();
                let c0: Vec<f32> = (0..nr * mr).map(|i| (i % 5) as f32 * 0.5).collect();
                let mut c_sw = c0.clone();
                sw.run_packed(kc, &a, &b, &mut c_sw).unwrap();
                let mut c_chain = c0.clone();
                chain.run_packed(kc, &a, &b, &mut c_chain).unwrap();
                if isa.contracts_fma() {
                    assert_close(&c_chain, &c_sw, kc, &format!("{isa} kc={kc}"));
                } else {
                    assert_eq!(c_chain, c_sw, "{isa} kc={kc}: the scalar chain must be bit-exact");
                }
            }
        }
    }

    #[test]
    fn compile_for_an_unavailable_isa_returns_none() {
        let (sw, _) = staged_kernels();
        for isa in IsaKind::ALL {
            if !isa.available() {
                assert!(SimdKernel::compile_for(Arc::clone(&sw), isa).is_none());
            }
        }
    }

    #[test]
    fn broadcast_and_scalar_passthrough_kernels_lower_and_match() {
        // Unscheduled reference kernel: C stays in memory, nothing packs —
        // the chain degenerates to scalar closures and must still agree.
        let p = exo_isa::ukernel_ref_simple(ScalarType::F32);
        let p = exo_sched::partial_eval(&p, &[4, 4]).unwrap();
        let sw = Arc::new(compile_proc(&p).unwrap().to_superword().unwrap());
        let kc = 13usize;
        let a: Vec<f32> = (0..kc * 4).map(|i| (i % 7) as f32 * 0.25 - 0.5).collect();
        let b: Vec<f32> = (0..kc * 4).map(|i| (i % 5) as f32 * 0.5 - 1.0).collect();
        let c0: Vec<f32> = (0..16).map(|i| i as f32 * 0.125).collect();
        let mut c_sw = c0.clone();
        sw.run_packed(kc, &a, &b, &mut c_sw).unwrap();
        for isa in available_isas() {
            let simd = SimdKernel::compile_for(Arc::clone(&sw), isa).unwrap();
            let mut c_simd = c0.clone();
            simd.run_packed(kc, &a, &b, &mut c_simd).unwrap();
            assert_close(&c_simd, &c_sw, kc, &format!("{isa} scalar passthrough"));
        }

        // A broadcast-from-memory FMA (VFmaBcast) shape.
        let p = proc("bcast")
            .tensor_arg("x", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .tensor_arg("s", ScalarType::F32, vec![int(1)], MemSpace::Dram)
            .tensor_arg("y", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .body(vec![
                alloc("acc", ScalarType::F32, vec![int(4)], MemSpace::Neon),
                alloc("r", ScalarType::F32, vec![int(4)], MemSpace::Neon),
                for_("i", 0, 4, vec![assign("r", vec![var("i")], read("x", vec![var("i")]))]),
                for_(
                    "i",
                    0,
                    4,
                    vec![reduce(
                        "acc",
                        vec![var("i")],
                        Expr::mul(read("r", vec![var("i")]), read("s", vec![int(0)])),
                    )],
                ),
                for_("i", 0, 4, vec![assign("y", vec![var("i")], read("acc", vec![var("i")]))]),
            ])
            .build();
        let sw = Arc::new(compile_proc(&p).unwrap().to_superword().unwrap());
        for isa in available_isas() {
            let simd = SimdKernel::compile_for(Arc::clone(&sw), isa).unwrap();
            let mut x = vec![1.5f32, -2.0, 0.25, 3.0];
            let mut s = vec![0.5f32];
            let mut y = vec![0.0f32; 4];
            simd.run_views(
                &[],
                &mut [TensorView::Rw(&mut x), TensorView::Rw(&mut s), TensorView::Rw(&mut y)],
            )
            .unwrap();
            assert_eq!(y, vec![0.75, -1.0, 0.125, 1.5], "{isa}: one product per lane — exact even under FMA");
        }
    }

    #[test]
    fn nested_dynamic_loops_compile_and_run() {
        // Two nested dynamic loops: the inner LoopBegin's absolute `end`
        // jump target must be rebased when the chain compiler recurses
        // into the outer body, or compilation silently declines.
        let p = proc("nested")
            .size_arg("N")
            .size_arg("M")
            // Constant column extent keeps the addresses affine (the tape
            // rejects `i * M`); both loop bounds stay dynamic.
            .tensor_arg("x", ScalarType::F32, vec![var("N"), int(8)], MemSpace::Dram)
            .body(vec![for_(
                "i",
                0,
                var("N"),
                vec![for_(
                    "j",
                    0,
                    var("M"),
                    vec![assign(
                        "x",
                        vec![var("i"), var("j")],
                        Expr::add(Expr::mul(var("i"), int(10)), var("j")),
                    )],
                )],
            )])
            .build();
        let sw = Arc::new(compile_proc(&p).unwrap().to_superword().unwrap());
        let (n, m) = (3usize, 5usize);
        let mut want = vec![-1.0f32; n * 8];
        sw.run_views(&[n as i64, m as i64], &mut [TensorView::Rw(&mut want)]).unwrap();
        for isa in available_isas() {
            let simd = SimdKernel::compile_for(Arc::clone(&sw), isa)
                .expect("nested dynamic loops must not decline chain compilation");
            let mut x = vec![-1.0f32; n * 8];
            simd.run_views(&[n as i64, m as i64], &mut [TensorView::Rw(&mut x)]).unwrap();
            assert_eq!(x, want, "{isa}: integer-valued writes — exact across tiers");
            assert_eq!(x[8 + 4], 14.0, "x[1][4] = 1*10 + 4");
            assert_eq!(x[8 + 5], -1.0, "columns past M stay untouched");
        }
    }

    #[test]
    fn out_of_bounds_falls_back_to_the_checked_loop_with_identical_errors() {
        let p = proc("oob")
            .size_arg("N")
            .tensor_arg("x", ScalarType::F32, vec![var("N")], MemSpace::Dram)
            .body(vec![for_("i", 0, var("N"), vec![assign("x", vec![var("i")], flt(1.0))])])
            .build();
        let sw = Arc::new(compile_proc(&p).unwrap().to_superword().unwrap());
        for isa in available_isas() {
            let simd = Arc::new(SimdKernel::compile_for(Arc::clone(&sw), isa).unwrap());
            // Claim N = 7 over a 2-element buffer: the interval proof
            // declines and the checked reference loop reports exactly what
            // the scalar tape would — including the partial stores before
            // the error.
            let mut x = vec![0.0f32; 2];
            assert!(matches!(
                simd.run_views(&[7], &mut [TensorView::Rw(&mut x)]),
                Err(CodegenError::OutOfBounds { .. })
            ));
            assert_eq!(x, vec![1.0, 1.0], "{isa}: partial stores precede the error");
            // Same through the dispatch handle, which memoises the declined
            // verdict too.
            let mut dispatch = simd.dispatcher();
            let mut x = vec![0.0f32; 2];
            assert!(matches!(
                dispatch.run_views(&[7], &mut [TensorView::Rw(&mut x)]),
                Err(CodegenError::OutOfBounds { .. })
            ));
            assert_eq!(x, vec![1.0, 1.0]);
            assert_eq!(dispatch.memoised_proofs(), 1);
            let mut y = vec![0.0f32; 8];
            dispatch.run_views(&[7], &mut [TensorView::Rw(&mut y)]).unwrap();
            assert_eq!(&y[..7], &[1.0; 7]);
            assert_eq!(dispatch.memoised_proofs(), 2);
        }
    }

    #[test]
    fn dispatch_handle_matches_one_shot_runs_and_memoises_proofs() {
        let (_, simd) = staged_kernels();
        let simd = Arc::new(simd);
        let mut dispatch = simd.dispatcher();
        let (mr, nr) = (8usize, 4usize);
        for rep in 0..6 {
            for &kc in &[17usize, 5] {
                let a: Vec<f32> = (0..kc * mr).map(|i| ((i * 7 + rep) % 13) as f32 * 0.5 - 2.0).collect();
                let b: Vec<f32> = (0..kc * nr).map(|i| ((i * 5 + rep) % 11) as f32 * 0.25 - 1.0).collect();
                let c0: Vec<f32> = (0..nr * mr).map(|i| ((i + rep) % 5) as f32 * 0.5).collect();
                let mut c_dispatch = c0.clone();
                dispatch.run_packed(kc, &a, &b, &mut c_dispatch).unwrap();
                let mut c_one_shot = c0.clone();
                simd.run_packed(kc, &a, &b, &mut c_one_shot).unwrap();
                assert_eq!(c_dispatch, c_one_shot, "kc={kc} rep={rep}: the chain is deterministic");
            }
        }
        assert_eq!(dispatch.memoised_proofs(), 2, "one proof per distinct (KC, lens) input");
    }
}
