//! The NEON implementation of [`VectorIsa`]: 4-lane `float32x4_t` chains
//! via `vfmaq_f32`.
//!
//! NEON (Advanced SIMD) is a baseline feature of every aarch64 Rust
//! target — `cfg!(target_feature = "neon")` holds without any
//! `-C target-feature` flags — so unlike AVX2 there is no
//! `#[target_feature]` call boundary to honour: the fine-grained trait
//! ops inline straight into the generic composed helpers, and the
//! monomorphised defaults *are* the NEON implementation. An 8-lane
//! superword run (the `MR = 8` micro-kernels were shaped for one
//! `__m256`) re-rolls into a pair of `float32x4_t` ops inside the
//! default [`VectorIsa::fma_run`] / [`VectorIsa::fma_tile`] loops; this
//! is exactly the 2×`vfmaq_f32`-per-row lowering the paper's Fig. 5
//! Carmel micro-kernel uses, recovered mechanically instead of
//! hand-written.
//!
//! `vfmaq_f32(acc, a, b)` computes `acc + a·b` with a single rounding —
//! the same FMA contraction contract as the AVX2 chain, held to
//! [`super::fma_contraction_tol`] by the differential suites.

use std::arch::aarch64::{float32x4_t, vdupq_n_f32, vfmaq_f32, vld1q_f32, vst1q_f32};

use super::VectorIsa;

/// The NEON vector implementation (4 × f32 per register).
pub(crate) struct Neon;

impl VectorIsa for Neon {
    type Vector = float32x4_t;
    const LANES: usize = 4;
    const NAME: &'static str = "neon";

    fn available() -> bool {
        // Baseline on aarch64: the module only compiles there.
        true
    }

    unsafe fn splat(v: f32) -> float32x4_t {
        vdupq_n_f32(v)
    }

    unsafe fn load(p: *const f32) -> float32x4_t {
        vld1q_f32(p)
    }

    unsafe fn store(p: *mut f32, v: float32x4_t) {
        vst1q_f32(p, v)
    }

    unsafe fn fma(acc: float32x4_t, a: float32x4_t, b: float32x4_t) -> float32x4_t {
        vfmaq_f32(acc, a, b)
    }

    unsafe fn load_partial(p: *const f32, n: usize) -> float32x4_t {
        debug_assert!(n < Self::LANES);
        let mut buf = [0.0f32; 4];
        std::ptr::copy_nonoverlapping(p, buf.as_mut_ptr(), n);
        vld1q_f32(buf.as_ptr())
    }

    unsafe fn store_partial(p: *mut f32, v: float32x4_t, n: usize) {
        debug_assert!(n < Self::LANES);
        let mut buf = [0.0f32; 4];
        vst1q_f32(buf.as_mut_ptr(), v);
        std::ptr::copy_nonoverlapping(buf.as_ptr(), p, n);
    }

    fn fma_scalar(acc: f32, a: f32, b: f32) -> f32 {
        // Lowers to a scalar `fmadd` — contracted like the vector lanes.
        a.mul_add(b, acc)
    }
}
