//! The AVX2/FMA implementation of [`VectorIsa`]: 8-lane `__m256` chains
//! with `__m128` quarters and contracted `mul_add` scalar tails.
//!
//! AVX2 is not a baseline x86_64 feature, so every vector body must sit
//! behind a `#[target_feature(enable = "avx2", enable = "fma")]` call
//! boundary — and `target_feature` cannot be applied to trait methods or
//! generic functions. [`Avx2`] therefore overrides the three composed
//! register-run helpers the chain compiler actually calls
//! ([`VectorIsa::fma_run`] / [`VectorIsa::fma_run_inorder`] /
//! [`VectorIsa::fma_tile`]) with thin delegations to `target_feature`
//! free functions: one call boundary per closure invocation, exactly the
//! structure the tier had when it was x86-only. The fine-grained trait
//! ops are implemented for completeness (the generic defaults are never
//! reached once the helpers are overridden) but carry no
//! `target_feature` of their own.

use std::arch::x86_64::{
    __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps, _mm_fmadd_ps, _mm_loadu_ps,
    _mm_set1_ps, _mm_storeu_ps,
};

use super::VectorIsa;

/// The AVX2 + FMA vector implementation (8 × f32 per register).
pub(crate) struct Avx2;

impl VectorIsa for Avx2 {
    type Vector = __m256;
    const LANES: usize = 8;
    const NAME: &'static str = "avx2";

    fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    unsafe fn splat(v: f32) -> __m256 {
        _mm256_set1_ps(v)
    }

    unsafe fn load(p: *const f32) -> __m256 {
        _mm256_loadu_ps(p)
    }

    unsafe fn store(p: *mut f32, v: __m256) {
        _mm256_storeu_ps(p, v)
    }

    unsafe fn fma(acc: __m256, a: __m256, b: __m256) -> __m256 {
        _mm256_fmadd_ps(a, b, acc)
    }

    unsafe fn load_partial(p: *const f32, n: usize) -> __m256 {
        debug_assert!(n < Self::LANES);
        let mut buf = [0.0f32; 8];
        std::ptr::copy_nonoverlapping(p, buf.as_mut_ptr(), n);
        _mm256_loadu_ps(buf.as_ptr())
    }

    unsafe fn store_partial(p: *mut f32, v: __m256, n: usize) {
        debug_assert!(n < Self::LANES);
        let mut buf = [0.0f32; 8];
        _mm256_storeu_ps(buf.as_mut_ptr(), v);
        std::ptr::copy_nonoverlapping(buf.as_ptr(), p, n);
    }

    fn fma_scalar(acc: f32, a: f32, b: f32) -> f32 {
        a.mul_add(b, acc)
    }

    unsafe fn fma_run(regs: *mut f32, dst: usize, a: usize, bval: f32, lanes: usize) {
        fma_run(regs, dst, a, bval, lanes)
    }

    unsafe fn fma_run_inorder(regs: *mut f32, dst: usize, a: usize, bval: f32, lanes: usize) {
        fma_run_scalar(regs, dst, a, bval, lanes)
    }

    unsafe fn fma_tile(regs: *mut f32, dst0: usize, a: usize, b0: usize, lanes: usize, count: usize) {
        fma_tile(regs, dst0, a, b0, lanes, count)
    }
}

/// `lanes` FMAs `reg[dst+i] = reg[a+i] * bval + reg[dst+i]`, ascending:
/// whole `__m256`s, then a `__m128` quarter, then `mul_add` scalar
/// tails. Inside this `target_feature` context the scalar `mul_add`
/// also lowers to a single `vfmadd` — the whole tier contracts.
///
/// # Safety
///
/// Requires AVX2+FMA and both register runs in bounds (the superword
/// construction proof).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fma_run(regs: *mut f32, dst: usize, a: usize, bval: f32, lanes: usize) {
    let mut i = 0;
    if lanes >= 8 {
        let vb = _mm256_set1_ps(bval);
        while i + 8 <= lanes {
            let d = regs.add(dst + i);
            let va = _mm256_loadu_ps(regs.add(a + i));
            _mm256_storeu_ps(d, _mm256_fmadd_ps(va, vb, _mm256_loadu_ps(d)));
            i += 8;
        }
    }
    if i + 4 <= lanes {
        let d = regs.add(dst + i);
        let va = _mm_loadu_ps(regs.add(a + i));
        _mm_storeu_ps(d, _mm_fmadd_ps(va, _mm_set1_ps(bval), _mm_loadu_ps(d)));
        i += 4;
    }
    while i < lanes {
        let d = regs.add(dst + i);
        *d = (*regs.add(a + i)).mul_add(bval, *d);
        i += 1;
    }
}

/// The strict ascending-lane form, taken when the operand run overlaps
/// the accumulator run (whole-register loads would read stale lanes).
///
/// # Safety
///
/// Requires FMA and both register runs in bounds.
#[target_feature(enable = "fma")]
unsafe fn fma_run_scalar(regs: *mut f32, dst: usize, a: usize, bval: f32, lanes: usize) {
    for i in 0..lanes {
        let d = regs.add(dst + i);
        *d = (*regs.add(a + i)).mul_add(bval, *d);
    }
}

/// A fused accumulator tile: `count` consecutive `VFmaLane` ops over
/// one operand run, `reg[dst0 + g·lanes + i] += reg[a+i] * reg[b0+g]`.
/// The operand run is loaded once and held across the whole tile —
/// the inner-loop body of a laneq micro-kernel in three instructions
/// per accumulator row.
///
/// # Safety
///
/// Requires AVX2+FMA, all register runs in bounds, and the operand run
/// disjoint from the accumulator span (checked at fuse time).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fma_tile(regs: *mut f32, dst0: usize, a: usize, b0: usize, lanes: usize, count: usize) {
    if lanes == 8 {
        let va = _mm256_loadu_ps(regs.add(a));
        for g in 0..count {
            let d = regs.add(dst0 + g * 8);
            let vb = _mm256_set1_ps(*regs.add(b0 + g));
            _mm256_storeu_ps(d, _mm256_fmadd_ps(va, vb, _mm256_loadu_ps(d)));
        }
    } else {
        debug_assert_eq!(lanes, 4);
        let va = _mm_loadu_ps(regs.add(a));
        for g in 0..count {
            let d = regs.add(dst0 + g * 4);
            let vb = _mm_set1_ps(*regs.add(b0 + g));
            _mm_storeu_ps(d, _mm_fmadd_ps(va, vb, _mm_loadu_ps(d)));
        }
    }
}
