//! The scalar reference implementation of [`VectorIsa`], and the fully
//! checked reference executor every tier falls back to when the bounds
//! proof declines.
//!
//! One lane, plain `a * b + acc` multiply-then-add — **two** roundings,
//! exactly the arithmetic of the superword / tape / interpreter tiers, so
//! a chain compiled for [`ScalarIsa`] is bit-identical to them (the
//! differential suites assert equality, not a tolerance). It is available
//! on every host, which makes it the floor of the runtime ISA selection:
//! `SimdKernel::compile` never fails for a generated kernel, and
//! `EXO_ISA=scalar` pins the whole native tier to this implementation —
//! same closure chains, same fusion, reference rounding.
//!
//! [`exec_checked`] is the other half of the reference story: the
//! one-lane-at-a-time checked loop (formerly a bespoke method on the
//! superword kernel) with identical op order, rounding, and error values
//! to the scalar tape — including the partial stores already performed
//! when an access faults. The superword tier and every SIMD chain route
//! their declined-proof path here.

use crate::error::{CodegenError, Result};
use crate::superword::{ExecScratch, SuperwordKernel, VOp};
use crate::tape::{TOp, TensorView};

use super::VectorIsa;

/// The portable one-lane reference implementation: `Vector = f32`,
/// multiply-then-add rounding, available everywhere.
pub(crate) struct ScalarIsa;

impl VectorIsa for ScalarIsa {
    type Vector = f32;
    const LANES: usize = 1;
    const NAME: &'static str = "scalar";

    fn available() -> bool {
        true
    }

    unsafe fn splat(v: f32) -> f32 {
        v
    }

    unsafe fn load(p: *const f32) -> f32 {
        *p
    }

    unsafe fn store(p: *mut f32, v: f32) {
        *p = v
    }

    unsafe fn fma(acc: f32, a: f32, b: f32) -> f32 {
        Self::fma_scalar(acc, a, b)
    }

    unsafe fn load_partial(_p: *const f32, n: usize) -> f32 {
        // `n < LANES = 1` means no lanes: nothing to read.
        debug_assert_eq!(n, 0);
        0.0
    }

    unsafe fn store_partial(_p: *mut f32, _v: f32, n: usize) {
        debug_assert_eq!(n, 0);
    }

    fn fma_scalar(acc: f32, a: f32, b: f32) -> f32 {
        // Multiply then add, two roundings: the tape's `Fma` semantics,
        // NOT `mul_add` — bit equality with the portable tiers is the
        // whole point of this implementation.
        a * b + acc
    }
}

/// The fully checked reference executor, taken when the interval proof
/// declines: identical semantics (op order, rounding, and errors) to the
/// scalar tape, one lane at a time inside the packed ops. Shared by the
/// superword tier and the SIMD chains, whose declined-proof paths must
/// report the same errors — including the stores already performed when
/// an access faults.
///
/// # Errors
///
/// [`CodegenError::OutOfBounds`] on the first access that leaves its
/// buffer; [`CodegenError::BadArguments`] on a store to a read-only
/// tensor parameter.
pub(crate) fn exec_checked(
    kernel: &SuperwordKernel,
    scalars: &[i64],
    tensors: &mut [TensorView<'_>],
    scratch: &mut ExecScratch,
) -> Result<()> {
    scratch.regs.fill(0.0);
    let ExecScratch { regs, loops, bounds } = scratch;
    let load = |tensors: &[TensorView<'_>], buf: u16, idx: i64| -> Result<f32> {
        let slice = tensors[buf as usize].as_slice();
        slice.get(usize::try_from(idx).unwrap_or(usize::MAX)).copied().ok_or(CodegenError::OutOfBounds {
            buf: format!("Arg({buf})"),
            index: idx,
            len: slice.len(),
        })
    };
    fn store(tensors: &mut [TensorView<'_>], buf: u16, idx: i64, value: f32) -> Result<()> {
        match &mut tensors[buf as usize] {
            TensorView::Rw(slice) => {
                let len = slice.len();
                *slice
                    .get_mut(usize::try_from(idx).unwrap_or(usize::MAX))
                    .ok_or(CodegenError::OutOfBounds { buf: format!("Arg({buf})"), index: idx, len })? =
                    value;
                Ok(())
            }
            TensorView::Ro(_) => Err(CodegenError::BadArguments {
                reason: format!("store to read-only tensor parameter {buf}"),
            }),
        }
    }
    let ops = &kernel.ops;
    let mut pc = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            VOp::VFmaLane { dst, a, b, lanes } => {
                let bval = regs[*b as usize];
                for i in 0..*lanes as usize {
                    regs[*dst as usize + i] =
                        ScalarIsa::fma_scalar(regs[*dst as usize + i], regs[*a as usize + i], bval);
                }
            }
            VOp::VLoad { dst, buf, addr, lanes } => {
                let base = addr.eval(loops, scalars);
                for i in 0..*lanes as usize {
                    regs[*dst as usize + i] = load(tensors, *buf, base + i as i64)?;
                }
            }
            VOp::VStore { src, buf, addr, lanes } => {
                let base = addr.eval(loops, scalars);
                for i in 0..*lanes as usize {
                    store(tensors, *buf, base + i as i64, regs[*src as usize + i])?;
                }
            }
            VOp::VFmaBcast { dst, a, buf, addr, scratch, lanes } => {
                let bval = load(tensors, *buf, addr.eval(loops, scalars))?;
                regs[*scratch as usize] = bval;
                for i in 0..*lanes as usize {
                    regs[*dst as usize + i] =
                        ScalarIsa::fma_scalar(regs[*dst as usize + i], regs[*a as usize + i], bval);
                }
            }
            VOp::LoopBegin { slot, lo, hi, end } => {
                let l = lo.eval(loops, scalars);
                let h = hi.eval(loops, scalars);
                if l >= h {
                    pc = *end as usize;
                    continue;
                }
                loops[*slot as usize] = l;
                bounds[*slot as usize] = h;
            }
            VOp::LoopEnd { slot, begin } => {
                let s = *slot as usize;
                loops[s] += 1;
                if loops[s] < bounds[s] {
                    pc = *begin as usize + 1;
                    continue;
                }
            }
            VOp::Scalar(op) => match op {
                TOp::Fma { dst, a, b } => {
                    regs[*dst as usize] =
                        ScalarIsa::fma_scalar(regs[*dst as usize], regs[*a as usize], regs[*b as usize]);
                }
                TOp::LoadT { dst, buf, addr } => {
                    regs[*dst as usize] = load(tensors, *buf, addr.eval(loops, scalars))?;
                }
                TOp::StoreT { src, buf, addr } => {
                    store(tensors, *buf, addr.eval(loops, scalars), regs[*src as usize])?;
                }
                TOp::ConstF { dst, val } => regs[*dst as usize] = *val,
                TOp::Mov { dst, src } => regs[*dst as usize] = regs[*src as usize],
                TOp::Add { dst, a, b } => {
                    let v = regs[*a as usize] + regs[*b as usize];
                    regs[*dst as usize] = v;
                }
                TOp::Sub { dst, a, b } => {
                    let v = regs[*a as usize] - regs[*b as usize];
                    regs[*dst as usize] = v;
                }
                TOp::Mul { dst, a, b } => {
                    let v = regs[*a as usize] * regs[*b as usize];
                    regs[*dst as usize] = v;
                }
                TOp::Div { dst, a, b } => {
                    let v = regs[*a as usize] / regs[*b as usize];
                    regs[*dst as usize] = v;
                }
                TOp::Neg { dst, src } => regs[*dst as usize] = -regs[*src as usize],
                TOp::AddAssign { dst, src } => {
                    let v = regs[*src as usize];
                    regs[*dst as usize] += v;
                }
                TOp::CastI { dst, value } => regs[*dst as usize] = value.eval(loops, scalars) as f32,
                TOp::Round { reg } => {
                    let r = &mut regs[*reg as usize];
                    *r = exo_ir::types::f16_round(f64::from(*r)) as f32;
                }
                TOp::Zero { base, len } => {
                    regs[*base as usize..(*base + *len) as usize].fill(0.0);
                }
                TOp::LoopBegin { .. } | TOp::LoopEnd { .. } => unreachable!("lifted to VOp level"),
            },
        }
        pc += 1;
    }
    Ok(())
}
