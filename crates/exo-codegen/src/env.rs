//! Parse-once-or-panic environment overrides.
//!
//! Every `EXO_*` override in the workspace follows the same contract:
//!
//! * unset or empty means "no override" — the library picks its default;
//! * anything else must parse, and a typo **panics** with the variable
//!   name and the parse error rather than silently falling back (an
//!   override the user asked for but did not get would defeat its
//!   purpose);
//! * the variable is read **once** per process and the verdict cached, so
//!   every consumer sees the same decision and the hot path never touches
//!   the environment.
//!
//! [`env_once`] is that contract, factored out of the four call sites that
//! used to re-implement it (`EXO_BACKEND`, `EXO_THREADS`, `EXO_FAULT`, and
//! now `EXO_ISA`). The caller owns the `OnceLock` cell — overrides stay
//! distinct statics at their point of use — and supplies only the parser.

use std::sync::OnceLock;

/// Reads environment variable `var` through `cell`, applying the
/// workspace-wide override contract (see the module docs).
///
/// The parse closure runs at most once per process (on the first call that
/// finds the variable set and non-empty); later calls return the cached
/// verdict. Parsers report problems as `Err(description)`.
///
/// # Panics
///
/// Panics with `"{var}: {description}"` when the variable is set,
/// non-empty, and fails to parse.
pub fn env_once<T: Clone>(
    cell: &OnceLock<Option<T>>,
    var: &str,
    parse: impl FnOnce(&str) -> Result<T, String>,
) -> Option<T> {
    cell.get_or_init(|| match std::env::var(var) {
        Ok(value) if !value.is_empty() => Some(parse(&value).unwrap_or_else(|e| panic!("{var}: {e}"))),
        _ => None,
    })
    .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;

    // Each test owns a uniquely named variable: integration with the real
    // process environment is the point, and unique names keep parallel
    // test threads out of each other's way.

    #[test]
    fn unset_or_empty_means_no_override() {
        let cell = OnceLock::new();
        let got = env_once(&cell, "EXO_ENV_ONCE_TEST_UNSET", |_| Ok(1usize));
        assert_eq!(got, None);

        std::env::set_var("EXO_ENV_ONCE_TEST_EMPTY", "");
        let cell = OnceLock::new();
        let got = env_once(&cell, "EXO_ENV_ONCE_TEST_EMPTY", |_| Ok(1usize));
        assert_eq!(got, None);
    }

    #[test]
    fn the_parser_runs_once_and_the_verdict_is_cached() {
        std::env::set_var("EXO_ENV_ONCE_TEST_CACHED", "7");
        let cell = OnceLock::new();
        let first =
            env_once(&cell, "EXO_ENV_ONCE_TEST_CACHED", |v| v.parse::<usize>().map_err(|e| e.to_string()));
        assert_eq!(first, Some(7));
        // A second read must come from the cache: this parser would panic
        // the test if it ran.
        let second = env_once(&cell, "EXO_ENV_ONCE_TEST_CACHED", |_| panic!("the parser must not run twice"));
        assert_eq!(second, Some(7));
    }

    #[test]
    fn a_typo_panics_with_the_variable_name_and_the_parse_error() {
        std::env::set_var("EXO_ENV_ONCE_TEST_TYPO", "bogus");
        let cell: OnceLock<Option<usize>> = OnceLock::new();
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            env_once(&cell, "EXO_ENV_ONCE_TEST_TYPO", |v| {
                Err(format!("`{v}` is not a thing (expected one of: a, b)"))
            })
        }))
        .expect_err("a set, non-empty, unparseable value must panic");
        let message = payload.downcast_ref::<String>().expect("panic carries the formatted message");
        assert_eq!(message, "EXO_ENV_ONCE_TEST_TYPO: `bogus` is not a thing (expected one of: a, b)");
    }
}
