//! Superword execution: whole-vector tape ops, one vector register per
//! dispatch.
//!
//! The scalar tape of [`crate::tape`] already erased the expression trees,
//! but it still *scalarises* the kernel's vector instructions: a
//! `vld1q_f32` becomes four `LoadT` ops, a `vfmaq_laneq_f32` four `Fma`
//! ops, and every one of them pays a dispatch, a register bounds check and
//! a tensor bounds check. This module closes that gap with a classic
//! superword-level-parallelism (SLP) pass over the scalar tape: runs of
//! isomorphic lane ops over consecutive registers and consecutive affine
//! addresses are re-rolled into whole-vector ops that execute an entire
//! vector register per dispatch —
//!
//! * `VLoad` / `VStore` — `lanes` contiguous elements moved between a
//!   tensor and a lane-aligned run of the register file (the tape's local
//!   allocator aligns every local to `LANE_ALIGN` registers),
//! * `VFmaLane` — `reg[dst+i] += reg[a+i] * reg[b]` for `i in 0..lanes`,
//!   the `vfmaq_laneq_f32` shape (one lane of a vector register broadcast
//!   across the accumulator),
//! * `VFmaBcast` — the broadcast-from-memory FMA of `vfmaq_n_f32`: the
//!   scalar tape's repeated `[LoadT rhs; Fma]` pairs collapse into one
//!   load plus a vector FMA.
//!
//! **Validated construction.** [`TapeKernel::to_superword`] proves, at
//! construction time, that every register operand (including the full
//! `dst..dst+lanes` runs) stays inside the register file, that the loop
//! structure is well formed, and that no packed op's scalar operand is
//! clobbered by its own accumulator writes. At run time, a single exact
//! interval analysis over the (affine) addresses and the dynamic-loop
//! bounds proves every tensor access in bounds *before* the tape starts —
//! which unlocks an `unsafe` bounds-free dispatch loop behind the safe
//! [`SuperwordKernel::run_views`] API. When the proof does not go through
//! (an address that could leave its buffer), execution transparently falls
//! back to a fully checked loop with semantics — including the error
//! reported — identical to the scalar tape's.
//!
//! Packing preserves the scalar tape's exact op order within each packed
//! group (lanes execute in ascending order, multiplication commutes
//! bitwise), so the superword backend is **bit-for-bit** equal to the
//! scalar tape and the tree-walking interpreter; the differential suite in
//! `tests/tape_exec.rs` asserts this across every registry shape.

use crate::error::{CodegenError, Result};
use crate::exec::{CompiledKernel, ParamKind, RunArg};
use crate::tape::{Addr, TOp, TapeKernel, TensorView, Term};

/// A pre-compiled affine address: the general [`Addr`] (a heap-allocated
/// term list walked per evaluation) specialised, at superword construction
/// time, into the handful of monomorphic shapes a micro-kernel tape
/// actually produces. The packed ops of the dispatch loops evaluate these
/// without pointer-chasing a term slice or matching per term — the address
/// arithmetic is hoisted into this table once per kernel.
#[derive(Debug, Clone)]
pub(crate) enum SAddr {
    /// A compile-time constant address.
    Const(i64),
    /// `base + coeff * loop[slot]` — the hot shape of every packed operand
    /// access inside the dynamic `KC` loop.
    Loop {
        /// Constant offset.
        base: i64,
        /// Dynamic-loop slot supplying the counter.
        slot: u16,
        /// Stride applied to the counter.
        coeff: i64,
    },
    /// `base + coeff * scalar[slot]` — loop bounds (`0..KC`).
    Scalar {
        /// Constant offset.
        base: i64,
        /// Scalar-parameter slot.
        slot: u16,
        /// Stride applied to the scalar.
        coeff: i64,
    },
    /// Anything with two or more terms: kept in the general affine form.
    General(Addr),
}

impl SAddr {
    pub(crate) fn from_addr(a: &Addr) -> SAddr {
        match a.terms.as_ref() {
            [] => SAddr::Const(a.base),
            &[(Term::Loop(slot), coeff)] => SAddr::Loop { base: a.base, slot, coeff },
            &[(Term::Scalar(slot), coeff)] => SAddr::Scalar { base: a.base, slot, coeff },
            _ => SAddr::General(a.clone()),
        }
    }

    #[inline]
    pub(crate) fn eval(&self, loops: &[i64], scalars: &[i64]) -> i64 {
        match self {
            SAddr::Const(v) => *v,
            SAddr::Loop { base, slot, coeff } => base + coeff * loops[*slot as usize],
            SAddr::Scalar { base, slot, coeff } => base + coeff * scalars[*slot as usize],
            SAddr::General(a) => a.eval(loops, scalars),
        }
    }

    /// Exact interval over the current loop-counter intervals (saturating,
    /// so overflow only ever widens the range and fails toward the checked
    /// path).
    fn interval(&self, iv: &[(i64, i64)], scalars: &[i64]) -> (i64, i64) {
        match self {
            SAddr::Const(v) => (*v, *v),
            SAddr::Scalar { base, slot, coeff } => {
                let v = base.saturating_add(coeff.saturating_mul(scalars[*slot as usize]));
                (v, v)
            }
            SAddr::Loop { base, slot, coeff } => {
                let (tmin, tmax) = iv[*slot as usize];
                let (p, q) = if *coeff >= 0 { (tmin, tmax) } else { (tmax, tmin) };
                (base.saturating_add(coeff.saturating_mul(p)), base.saturating_add(coeff.saturating_mul(q)))
            }
            SAddr::General(a) => addr_interval(a, iv, scalars),
        }
    }

    /// Runs `f` over every term, mirroring the construction-time validation
    /// walk of the general affine form.
    fn validate_terms(&self, mut f: impl FnMut(Term) -> Result<()>) -> Result<()> {
        match self {
            SAddr::Const(_) => Ok(()),
            SAddr::Loop { slot, .. } => f(Term::Loop(*slot)),
            SAddr::Scalar { slot, .. } => f(Term::Scalar(*slot)),
            SAddr::General(a) => {
                for &(t, _) in a.terms.iter() {
                    f(t)?;
                }
                Ok(())
            }
        }
    }
}

/// One superword tape operation. Packed ops carry their lane count; scalar
/// leftovers ride along unchanged.
#[derive(Debug, Clone)]
pub(crate) enum VOp {
    /// A scalar tape op that did not pack (never a loop marker).
    Scalar(TOp),
    /// `reg[dst..dst+lanes] = tensor[buf][addr..addr+lanes]`
    VLoad { dst: u32, buf: u16, addr: SAddr, lanes: u32 },
    /// `tensor[buf][addr..addr+lanes] = reg[src..src+lanes]`
    VStore { src: u32, buf: u16, addr: SAddr, lanes: u32 },
    /// `reg[dst+i] += reg[a+i] * reg[b]` for `i in 0..lanes` (`b` is one
    /// lane of a vector register, held fixed across the run).
    VFmaLane { dst: u32, a: u32, b: u32, lanes: u32 },
    /// `reg[scratch] = tensor[buf][addr]; reg[dst+i] += reg[a+i] *
    /// reg[scratch]` for `i in 0..lanes` — the broadcast-from-memory FMA.
    /// `scratch` is written so the register file finishes in exactly the
    /// state the scalar sequence leaves it in.
    VFmaBcast { dst: u32, a: u32, buf: u16, addr: SAddr, scratch: u32, lanes: u32 },
    /// Enter a dynamic loop: evaluate bounds, jump to `end` if empty.
    LoopBegin { slot: u16, lo: SAddr, hi: SAddr, end: u32 },
    /// Bottom of a dynamic loop: bump the counter, jump back while it holds.
    LoopEnd { slot: u16, begin: u32 },
}

/// A kernel lowered to whole-vector superword ops.
///
/// Obtained from [`TapeKernel::to_superword`] (or
/// [`CompiledKernel::to_superword`]). Computes bit-for-bit the same result
/// as the scalar tape and the interpreter, dispatching one vector register
/// per op instead of one lane.
#[derive(Debug, Clone)]
pub struct SuperwordKernel {
    /// Name of the source procedure.
    pub name: String,
    pub(crate) params: Vec<(String, ParamKind)>,
    pub(crate) ops: Vec<VOp>,
    pub(crate) n_regs: usize,
    pub(crate) n_dyn_loops: usize,
    tensor_written: Vec<bool>,
    n_vector_ops: usize,
    n_scalar_ops: usize,
}

fn unsupported(what: impl Into<String>) -> CodegenError {
    CodegenError::Unsupported { backend: "superword", what: what.into() }
}

/// `next` is `base` shifted by a constant `k` (same strides, consecutive
/// memory).
fn addr_offset_by(base: &Addr, next: &Addr, k: i64) -> bool {
    next.base == base.base + k && next.terms == base.terms
}

/// Maximal `VLoad` run starting at `ops[i]`: consecutive destination
/// registers fed from consecutive addresses of one buffer.
fn try_vload(ops: &[TOp], i: usize) -> Option<(VOp, usize)> {
    let TOp::LoadT { dst, buf, addr } = &ops[i] else { return None };
    let mut lanes: u32 = 1;
    while let Some(TOp::LoadT { dst: d2, buf: b2, addr: a2 }) = ops.get(i + lanes as usize) {
        if *b2 == *buf && *d2 == dst.wrapping_add(lanes) && addr_offset_by(addr, a2, i64::from(lanes)) {
            lanes += 1;
        } else {
            break;
        }
    }
    (lanes >= 2)
        .then(|| (VOp::VLoad { dst: *dst, buf: *buf, addr: SAddr::from_addr(addr), lanes }, lanes as usize))
}

/// Maximal `VStore` run starting at `ops[i]`.
fn try_vstore(ops: &[TOp], i: usize) -> Option<(VOp, usize)> {
    let TOp::StoreT { src, buf, addr } = &ops[i] else { return None };
    let mut lanes: u32 = 1;
    while let Some(TOp::StoreT { src: s2, buf: b2, addr: a2 }) = ops.get(i + lanes as usize) {
        if *b2 == *buf && *s2 == src.wrapping_add(lanes) && addr_offset_by(addr, a2, i64::from(lanes)) {
            lanes += 1;
        } else {
            break;
        }
    }
    (lanes >= 2)
        .then(|| (VOp::VStore { src: *src, buf: *buf, addr: SAddr::from_addr(addr), lanes }, lanes as usize))
}

/// Maximal `VFmaLane` run starting at `ops[i]`: consecutive accumulators,
/// one operand consecutive, the other held fixed. Multiplication commutes
/// bitwise, so the fixed operand becomes the broadcast lane either way.
fn try_vfma_lane(ops: &[TOp], i: usize) -> Option<(VOp, usize)> {
    let TOp::Fma { dst, a, b } = &ops[i] else { return None };
    let TOp::Fma { dst: d1, a: a1, b: b1 } = ops.get(i + 1)? else { return None };
    if *d1 != dst + 1 {
        return None;
    }
    // (vector operand base, fixed lane operand), determined by the second op.
    let (vec0, lane) = if *a1 == a + 1 && b1 == b {
        (*a, *b)
    } else if a1 == a && *b1 == b + 1 {
        (*b, *a)
    } else {
        return None;
    };
    let mut lanes: u32 = 2;
    while let Some(TOp::Fma { dst: d2, a: a2, b: b2 }) = ops.get(i + lanes as usize) {
        let (v2, l2) = if lane == *b { (*a2, *b2) } else { (*b2, *a2) };
        if *d2 == dst.wrapping_add(lanes) && v2 == vec0.wrapping_add(lanes) && l2 == lane {
            lanes += 1;
        } else {
            break;
        }
    }
    // The fixed lane register is read once per lane; hoisting it out of the
    // loop is only sound if no accumulator write can change it.
    if lane >= *dst && lane < dst + lanes {
        return None;
    }
    Some((VOp::VFmaLane { dst: *dst, a: vec0, b: lane, lanes }, lanes as usize))
}

/// Maximal `VFmaBcast` run starting at `ops[i]`: repeated `[LoadT t; Fma
/// {dst+i, a+i, t}]` pairs where every load reads the *same* address into
/// the *same* scratch register — the scalarised broadcast FMA. One load
/// replaces them all (each re-load wrote the identical value).
fn try_vfma_bcast(ops: &[TOp], i: usize) -> Option<(VOp, usize)> {
    let TOp::LoadT { dst: t, buf, addr } = &ops[i] else { return None };
    let TOp::Fma { dst, a, b } = ops.get(i + 1)? else { return None };
    if b != t {
        return None;
    }
    let mut lanes: u32 = 1;
    loop {
        let j = i + 2 * lanes as usize;
        match (ops.get(j), ops.get(j + 1)) {
            (Some(TOp::LoadT { dst: t2, buf: b2, addr: a2 }), Some(TOp::Fma { dst: d2, a: av2, b: bv2 }))
                if t2 == t
                    && *b2 == *buf
                    && addr_offset_by(addr, a2, 0)
                    && *d2 == dst.wrapping_add(lanes)
                    && *av2 == a.wrapping_add(lanes)
                    && bv2 == t =>
            {
                lanes += 1;
            }
            _ => break,
        }
    }
    if lanes < 2 {
        return None;
    }
    // The scratch register must survive the accumulator writes, or later
    // lanes would read a clobbered broadcast value.
    if *t >= *dst && *t < dst + lanes {
        return None;
    }
    Some((
        VOp::VFmaBcast { dst: *dst, a: *a, buf: *buf, addr: SAddr::from_addr(addr), scratch: *t, lanes },
        2 * lanes as usize,
    ))
}

/// The superword packing pass: re-roll isomorphic scalar runs into vector
/// ops, rebuilding loop jump targets for the shorter op list.
fn pack(ops: &[TOp]) -> Result<Vec<VOp>> {
    let mut out: Vec<VOp> = Vec::with_capacity(ops.len());
    let mut begin_stack: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        match &ops[i] {
            TOp::LoopBegin { slot, lo, hi, .. } => {
                begin_stack.push(out.len());
                out.push(VOp::LoopBegin {
                    slot: *slot,
                    lo: SAddr::from_addr(lo),
                    hi: SAddr::from_addr(hi),
                    end: 0,
                });
                i += 1;
            }
            TOp::LoopEnd { slot, .. } => {
                let begin = begin_stack.pop().ok_or_else(|| unsupported("unbalanced loop end"))?;
                out.push(VOp::LoopEnd { slot: *slot, begin: begin as u32 });
                let end = out.len() as u32;
                let VOp::LoopBegin { end: e, .. } = &mut out[begin] else { unreachable!() };
                *e = end;
                i += 1;
            }
            op @ TOp::LoadT { .. } => {
                if let Some((vop, used)) = try_vfma_bcast(ops, i).or_else(|| try_vload(ops, i)) {
                    out.push(vop);
                    i += used;
                } else {
                    out.push(VOp::Scalar(op.clone()));
                    i += 1;
                }
            }
            op @ TOp::StoreT { .. } => {
                if let Some((vop, used)) = try_vstore(ops, i) {
                    out.push(vop);
                    i += used;
                } else {
                    out.push(VOp::Scalar(op.clone()));
                    i += 1;
                }
            }
            op @ TOp::Fma { .. } => {
                if let Some((vop, used)) = try_vfma_lane(ops, i) {
                    out.push(vop);
                    i += used;
                } else {
                    out.push(VOp::Scalar(op.clone()));
                    i += 1;
                }
            }
            op => {
                out.push(VOp::Scalar(op.clone()));
                i += 1;
            }
        }
    }
    if !begin_stack.is_empty() {
        return Err(unsupported("unterminated loop"));
    }
    Ok(out)
}

/// Construction-time proof obligations for the bounds-free dispatch loop:
/// every register operand (including whole `dst..dst+lanes` runs) indexes
/// inside the register file, every buffer index inside the parameter list,
/// every affine term inside its scalar/loop table (loop terms only under an
/// open loop), and the loop markers form a well-nested structure with
/// consistent jump targets.
fn validate_construction(
    ops: &[VOp],
    n_regs: usize,
    n_dyn: usize,
    n_scalars: usize,
    n_tensors: usize,
) -> Result<()> {
    let reg = |r: u32, lanes: u32| -> Result<()> {
        if (r as usize) + (lanes as usize) > n_regs {
            return Err(unsupported(format!("register run {r}+{lanes} exceeds file of {n_regs}")));
        }
        Ok(())
    };
    let buf = |b: u16| -> Result<()> {
        if (b as usize) >= n_tensors {
            return Err(unsupported(format!("tensor index {b} out of {n_tensors}")));
        }
        Ok(())
    };
    let mut active = vec![false; n_dyn];
    let term = |t: Term, active: &[bool]| -> Result<()> {
        match t {
            Term::Scalar(s) if (s as usize) < n_scalars => Ok(()),
            Term::Loop(l) if (l as usize) < n_dyn && active[l as usize] => Ok(()),
            _ => Err(unsupported("affine term outside its table or loop")),
        }
    };
    let addr = |a: &Addr, active: &[bool]| -> Result<()> {
        for &(t, _) in a.terms.iter() {
            term(t, active)?;
        }
        Ok(())
    };
    let saddr = |a: &SAddr, active: &[bool]| -> Result<()> { a.validate_terms(|t| term(t, active)) };
    let mut stack: Vec<(usize, u16)> = Vec::new();
    for (idx, op) in ops.iter().enumerate() {
        match op {
            VOp::Scalar(s) => match s {
                TOp::ConstF { dst, .. } => reg(*dst, 1)?,
                TOp::LoadT { dst, buf: b, addr: a } => {
                    reg(*dst, 1)?;
                    buf(*b)?;
                    addr(a, &active)?;
                }
                TOp::StoreT { src, buf: b, addr: a } => {
                    reg(*src, 1)?;
                    buf(*b)?;
                    addr(a, &active)?;
                }
                TOp::Mov { dst, src } | TOp::Neg { dst, src } | TOp::AddAssign { dst, src } => {
                    reg(*dst, 1)?;
                    reg(*src, 1)?;
                }
                TOp::Add { dst, a, b }
                | TOp::Sub { dst, a, b }
                | TOp::Mul { dst, a, b }
                | TOp::Div { dst, a, b }
                | TOp::Fma { dst, a, b } => {
                    reg(*dst, 1)?;
                    reg(*a, 1)?;
                    reg(*b, 1)?;
                }
                TOp::CastI { dst, value } => {
                    reg(*dst, 1)?;
                    addr(value, &active)?;
                }
                TOp::Round { reg: r } => reg(*r, 1)?,
                TOp::Zero { base, len } => reg(*base, *len)?,
                TOp::LoopBegin { .. } | TOp::LoopEnd { .. } => {
                    return Err(unsupported("loop marker hidden in a scalar op"))
                }
            },
            VOp::VLoad { dst, buf: b, addr: a, lanes } => {
                reg(*dst, *lanes)?;
                buf(*b)?;
                saddr(a, &active)?;
            }
            VOp::VStore { src, buf: b, addr: a, lanes } => {
                reg(*src, *lanes)?;
                buf(*b)?;
                saddr(a, &active)?;
            }
            VOp::VFmaLane { dst, a, b, lanes } => {
                reg(*dst, *lanes)?;
                reg(*a, *lanes)?;
                reg(*b, 1)?;
                if *b >= *dst && *b < dst + lanes {
                    return Err(unsupported("broadcast lane aliases its accumulator run"));
                }
            }
            VOp::VFmaBcast { dst, a, buf: b, addr: ad, scratch, lanes } => {
                reg(*dst, *lanes)?;
                reg(*a, *lanes)?;
                reg(*scratch, 1)?;
                buf(*b)?;
                saddr(ad, &active)?;
                if *scratch >= *dst && *scratch < dst + lanes {
                    return Err(unsupported("broadcast scratch aliases its accumulator run"));
                }
            }
            VOp::LoopBegin { slot, lo, hi, .. } => {
                if (*slot as usize) >= n_dyn || active[*slot as usize] {
                    return Err(unsupported("bad loop slot"));
                }
                saddr(lo, &active)?;
                saddr(hi, &active)?;
                stack.push((idx, *slot));
                active[*slot as usize] = true;
            }
            VOp::LoopEnd { slot, begin } => {
                let Some((b_idx, b_slot)) = stack.pop() else {
                    return Err(unsupported("unbalanced loop end"));
                };
                let VOp::LoopBegin { end, .. } = &ops[b_idx] else { unreachable!() };
                if b_slot != *slot || *begin as usize != b_idx || *end as usize != idx + 1 {
                    return Err(unsupported("inconsistent loop targets"));
                }
                active[*slot as usize] = false;
            }
        }
    }
    if !stack.is_empty() {
        return Err(unsupported("unterminated loop"));
    }
    Ok(())
}

/// Exact interval of an affine address over the current loop-counter
/// intervals (saturating, so overflow only ever widens the range and fails
/// toward the checked path).
fn addr_interval(a: &Addr, iv: &[(i64, i64)], scalars: &[i64]) -> (i64, i64) {
    let (mut lo, mut hi) = (a.base, a.base);
    for &(t, c) in a.terms.iter() {
        let (tmin, tmax) = match t {
            Term::Loop(i) => iv[i as usize],
            Term::Scalar(i) => (scalars[i as usize], scalars[i as usize]),
        };
        let (p, q) = if c >= 0 { (tmin, tmax) } else { (tmax, tmin) };
        lo = lo.saturating_add(c.saturating_mul(p));
        hi = hi.saturating_add(c.saturating_mul(q));
    }
    (lo, hi)
}

impl TapeKernel {
    /// Lowers this scalar tape to a [`SuperwordKernel`] via the superword
    /// packing pass, proving the register-file obligations of the unsafe
    /// dispatch loop at construction time.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::Unsupported`] if the tape violates a
    /// structural invariant (which a tape built by
    /// [`CompiledKernel::to_tape`] never does).
    pub fn to_superword(&self) -> Result<SuperwordKernel> {
        let ops = pack(&self.ops)?;
        let n_scalars = self.params.iter().filter(|(_, k)| *k == ParamKind::Scalar).count();
        let n_tensors = self.params.len() - n_scalars;
        validate_construction(&ops, self.n_regs, self.n_dyn_loops, n_scalars, n_tensors)?;
        let n_vector_ops = ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    VOp::VLoad { .. } | VOp::VStore { .. } | VOp::VFmaLane { .. } | VOp::VFmaBcast { .. }
                )
            })
            .count();
        let n_scalar_ops = ops.iter().filter(|op| matches!(op, VOp::Scalar(_))).count();
        Ok(SuperwordKernel {
            name: self.name.clone(),
            params: self.params.clone(),
            ops,
            n_regs: self.n_regs,
            n_dyn_loops: self.n_dyn_loops,
            tensor_written: self.tensor_written.clone(),
            n_vector_ops,
            n_scalar_ops,
        })
    }
}

impl CompiledKernel {
    /// Compiles this kernel straight to a [`SuperwordKernel`]
    /// (tape-compile, then superword-pack).
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::Unsupported`] for constructs the tape cannot
    /// register-allocate; callers keep the interpreter as the fallback.
    pub fn to_superword(&self) -> Result<SuperwordKernel> {
        self.to_tape()?.to_superword()
    }
}

impl SuperwordKernel {
    /// Number of parameters (scalar and tensor) the kernel expects.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Parameter names in signature order.
    pub fn param_names(&self) -> Vec<&str> {
        self.params.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of ops on the superword tape (packed ops count once).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Size of the flat `f32` register file.
    pub fn register_count(&self) -> usize {
        self.n_regs
    }

    /// How many whole-vector ops the packing pass produced.
    pub fn vector_op_count(&self) -> usize {
        self.n_vector_ops
    }

    /// How many scalar ops survived unpacked.
    pub fn scalar_op_count(&self) -> usize {
        self.n_scalar_ops
    }

    /// Whether the tape stores to tensor parameter `idx` (counting tensor
    /// parameters only, in signature order).
    pub fn writes_tensor(&self, idx: usize) -> bool {
        self.tensor_written.get(idx).copied().unwrap_or(false)
    }

    /// Runs the superword tape through the same argument interface as
    /// [`CompiledKernel::run`].
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::BadArguments`] on an argument-count or kind
    /// mismatch and [`CodegenError::OutOfBounds`] if an access leaves its
    /// buffer.
    pub fn run(&self, args: &mut [RunArg<'_>]) -> Result<()> {
        if args.len() != self.params.len() {
            return Err(CodegenError::BadArguments {
                reason: format!(
                    "superword kernel `{}` expects {} arguments, got {}",
                    self.name,
                    self.params.len(),
                    args.len()
                ),
            });
        }
        let mut scalars = Vec::new();
        let mut tensors: Vec<TensorView<'_>> = Vec::new();
        for ((name, kind), arg) in self.params.iter().zip(args.iter_mut()) {
            match (kind, arg) {
                (ParamKind::Scalar, RunArg::Size(v)) => scalars.push(*v),
                (ParamKind::Tensor, RunArg::Tensor(t)) => tensors.push(TensorView::Rw(t)),
                _ => {
                    return Err(CodegenError::BadArguments {
                        reason: format!("argument `{name}` has the wrong kind"),
                    })
                }
            }
        }
        self.exec(&scalars, &mut tensors)
    }

    /// Runs the superword tape over borrowed tensor views.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::BadArguments`] if the counts do not match or
    /// a read-only view is passed for a tensor the tape writes, and
    /// [`CodegenError::OutOfBounds`] for accesses that leave a buffer.
    pub fn run_views(&self, scalars: &[i64], tensors: &mut [TensorView<'_>]) -> Result<()> {
        self.validate_views(scalars, tensors)?;
        self.exec(scalars, tensors)
    }

    /// The argument validation shared by the one-shot entry points, the
    /// prove-once [`SuperwordDispatch`] handle, and the SIMD tier built on
    /// top of this kernel ([`crate::simd`]).
    pub(crate) fn validate_views(&self, scalars: &[i64], tensors: &[TensorView<'_>]) -> Result<()> {
        let n_scalars = self.params.iter().filter(|(_, k)| *k == ParamKind::Scalar).count();
        let n_tensors = self.params.len() - n_scalars;
        if scalars.len() != n_scalars || tensors.len() != n_tensors {
            return Err(CodegenError::BadArguments {
                reason: format!(
                    "superword kernel `{}` expects {n_scalars} scalars and {n_tensors} tensors, got {} and {}",
                    self.name,
                    scalars.len(),
                    tensors.len()
                ),
            });
        }
        for (i, view) in tensors.iter().enumerate() {
            if matches!(view, TensorView::Ro(_)) && self.tensor_written[i] {
                return Err(CodegenError::BadArguments {
                    reason: format!(
                        "superword kernel `{}` writes tensor parameter {i}, which was passed read-only",
                        self.name
                    ),
                });
            }
        }
        Ok(())
    }

    /// Whether the kernel has the packed `(KC, Ac, Bc, C)` micro-kernel
    /// signature (one scalar, three tensors).
    pub(crate) fn check_packed_signature(&self) -> Result<()> {
        let n_scalars = self.params.iter().filter(|(_, k)| *k == ParamKind::Scalar).count();
        if n_scalars != 1 || self.params.len() != 4 {
            return Err(CodegenError::BadArguments {
                reason: format!(
                    "superword kernel `{}` does not have the packed (KC, Ac, Bc, C) signature",
                    self.name
                ),
            });
        }
        Ok(())
    }

    /// Whether a packed call `run_packed(kc, ac, bc, c)` with operands of
    /// the given lengths would take the proven bounds-free path: the
    /// kernel has the packed signature and the affine interval analysis
    /// proves every tensor access in bounds. The native (`exo-aot`) tier
    /// uses this as its dispatch guard — the compiled C kernel has no
    /// bounds checks, so it only runs on calls this proof admits.
    pub fn packed_bounds_provable(&self, kc: usize, ac_len: usize, bc_len: usize, c_len: usize) -> bool {
        self.check_packed_signature().is_ok() && self.bounds_provable(&[kc as i64], &[ac_len, bc_len, c_len])
    }

    /// The minimal packed operand lengths `(ac_len, bc_len, c_len)` that
    /// cover every tensor access this kernel makes at the given `kc` —
    /// the exact probe shape the ahead-of-time tier's verified promotion
    /// runs a freshly built native artifact on before letting it into
    /// dispatch. The same affine-interval walk as
    /// [`Self::packed_bounds_provable`], but recording the maximal
    /// touched index per buffer instead of checking against supplied
    /// lengths. `None` when the kernel does not have the packed
    /// `(KC, Ac, Bc, C)` signature, an access interval reaches below
    /// zero, or an interval saturates (a dependent loop bound) — the
    /// cases where no finite lengths would make the call provable either.
    pub fn packed_probe_lens(&self, kc: usize) -> Option<(usize, usize, usize)> {
        // Lengths past this are not a probe, they are a bug (or a
        // saturated interval): refuse rather than allocate gigabytes.
        const MAX_PROBE_LEN: i64 = 1 << 24;
        self.check_packed_signature().ok()?;
        let scalars = [kc as i64];
        let mut iv: Vec<(i64, i64)> = vec![(0, 0); self.n_dyn_loops];
        let mut ends = [0i64; 3];
        let reach = |(lo, hi): (i64, i64), span: u32| -> Option<i64> {
            let end = hi.saturating_add(i64::from(span));
            (lo >= 0 && end <= MAX_PROBE_LEN).then_some(end)
        };
        let mut pc = 0usize;
        while pc < self.ops.len() {
            let touched: Option<(u16, i64)> = match &self.ops[pc] {
                VOp::Scalar(TOp::LoadT { buf, addr, .. }) | VOp::Scalar(TOp::StoreT { buf, addr, .. }) => {
                    Some((*buf, reach(addr_interval(addr, &iv, &scalars), 1)?))
                }
                VOp::VFmaBcast { buf, addr, .. } => Some((*buf, reach(addr.interval(&iv, &scalars), 1)?)),
                VOp::VLoad { buf, addr, lanes, .. } | VOp::VStore { buf, addr, lanes, .. } => {
                    Some((*buf, reach(addr.interval(&iv, &scalars), *lanes)?))
                }
                VOp::LoopBegin { slot, lo, hi, end } => {
                    let (lo_min, _) = lo.interval(&iv, &scalars);
                    let (_, hi_max) = hi.interval(&iv, &scalars);
                    if hi_max.saturating_sub(1) < lo_min {
                        // The loop never executes for any outer
                        // assignment: its body touches nothing.
                        pc = *end as usize;
                        continue;
                    }
                    iv[*slot as usize] = (lo_min, hi_max - 1);
                    None
                }
                _ => None,
            };
            if let Some((buf, end)) = touched {
                let slot = ends.get_mut(buf as usize)?;
                *slot = (*slot).max(end);
            }
            pc += 1;
        }
        Some((ends[0] as usize, ends[1] as usize, ends[2] as usize))
    }

    /// Runs a packed micro-kernel signature `(KC, Ac, Bc, C)`:
    /// `c[nr][mr] += ac[kc][mr] * bc[kc][nr]` without copying the operands.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::BadArguments`] if the kernel does not have
    /// the one-scalar/three-tensor packed signature or writes its packed
    /// operands, and propagates execution errors.
    pub fn run_packed(&self, kc: usize, ac: &[f32], bc: &[f32], c: &mut [f32]) -> Result<()> {
        self.check_packed_signature()?;
        self.run_views(&[kc as i64], &mut [TensorView::Ro(ac), TensorView::Ro(bc), TensorView::Rw(c)])
    }

    fn exec(&self, scalars: &[i64], tensors: &mut [TensorView<'_>]) -> Result<()> {
        let mut scratch = ExecScratch::for_kernel(self);
        let lens: Vec<usize> = tensors.iter().map(|t| t.as_slice().len()).collect();
        if self.bounds_provable(scalars, &lens) {
            // SAFETY: `validate_construction` proved every register operand
            // in range and the loop structure well formed;
            // `bounds_provable` just proved every tensor access in bounds
            // for these scalars and buffer lengths; and the written-tensor
            // check in `run_views`/`run` guarantees stores only target
            // mutably borrowed views.
            unsafe { self.exec_unchecked(scalars, tensors, &mut scratch) };
            Ok(())
        } else {
            crate::simd::scalar::exec_checked(self, scalars, tensors, &mut scratch)
        }
    }

    /// The runtime half of the validation proof: an exact interval analysis
    /// over the affine addresses. The tape has no data-dependent branches,
    /// so an op inside a loop executes for *every* counter value in the
    /// loop's range — the interval bound is not an approximation unless a
    /// loop bound itself depends on an outer loop (where it degrades to a
    /// safe over-approximation and execution falls back to the checked
    /// loop).
    pub(crate) fn bounds_provable(&self, scalars: &[i64], lens: &[usize]) -> bool {
        let mut iv: Vec<(i64, i64)> = vec![(0, 0); self.n_dyn_loops];
        let in_bounds = |lo: i64, hi: i64, span: u32, buf: u16| -> bool {
            lo >= 0 && hi.saturating_add(i64::from(span) - 1) < lens[buf as usize] as i64
        };
        let check = |a: &SAddr, span: u32, iv: &[(i64, i64)], buf: u16| -> bool {
            let (lo, hi) = a.interval(iv, scalars);
            in_bounds(lo, hi, span, buf)
        };
        let check_addr = |a: &Addr, iv: &[(i64, i64)], buf: u16| -> bool {
            let (lo, hi) = addr_interval(a, iv, scalars);
            in_bounds(lo, hi, 1, buf)
        };
        let mut pc = 0usize;
        while pc < self.ops.len() {
            match &self.ops[pc] {
                VOp::Scalar(TOp::LoadT { buf, addr, .. }) | VOp::Scalar(TOp::StoreT { buf, addr, .. })
                    if !check_addr(addr, &iv, *buf) =>
                {
                    return false;
                }
                VOp::VFmaBcast { buf, addr, .. } if !check(addr, 1, &iv, *buf) => {
                    return false;
                }
                VOp::VLoad { buf, addr, lanes, .. } | VOp::VStore { buf, addr, lanes, .. }
                    if !check(addr, *lanes, &iv, *buf) =>
                {
                    return false;
                }
                VOp::LoopBegin { slot, lo, hi, end } => {
                    let (lo_min, _) = lo.interval(&iv, scalars);
                    let (_, hi_max) = hi.interval(&iv, scalars);
                    if hi_max.saturating_sub(1) < lo_min {
                        // The loop never executes for any outer assignment:
                        // skip its body entirely.
                        pc = *end as usize;
                        continue;
                    }
                    iv[*slot as usize] = (lo_min, hi_max - 1);
                }
                _ => {}
            }
            pc += 1;
        }
        true
    }

    /// The bounds-free dispatch loop.
    ///
    /// # Safety
    ///
    /// Callers must have established (a) the construction-time register and
    /// loop-structure proof (always true for a [`SuperwordKernel`], checked
    /// in `to_superword`), (b) `bounds_provable` for these exact scalars
    /// and tensor lengths, and (c) that every tensor the tape writes is a
    /// [`TensorView::Rw`]. `scratch` must be sized for this kernel
    /// ([`ExecScratch::for_kernel`]).
    unsafe fn exec_unchecked(
        &self,
        scalars: &[i64],
        tensors: &mut [TensorView<'_>],
        scratch: &mut ExecScratch,
    ) {
        // The register file starts at zero on every run, exactly like the
        // scalar tape's freshly allocated one; loop slots are always written
        // by their `LoopBegin` before being read.
        scratch.regs.fill(0.0);
        let ExecScratch { regs, loops, bounds } = scratch;
        let (regs, loops, bounds) = (regs.as_mut_slice(), loops.as_mut_slice(), bounds.as_mut_slice());
        // Raw base pointers; the `*mut` view of a read-only tensor is never
        // written through (precondition (c)). The packed micro-kernel
        // signature has three tensors, so the common case stays on the
        // stack instead of allocating per dispatch.
        let mut tens_stack = [std::ptr::null_mut::<f32>(); 4];
        let mut tens_heap: Vec<*mut f32> = Vec::new();
        let raw = |t: &mut TensorView<'_>| match t {
            TensorView::Ro(s) => s.as_ptr().cast_mut(),
            TensorView::Rw(s) => s.as_mut_ptr(),
        };
        let tens: &[*mut f32] = if tensors.len() <= tens_stack.len() {
            for (slot, t) in tens_stack.iter_mut().zip(tensors.iter_mut()) {
                *slot = raw(t);
            }
            &tens_stack[..tensors.len()]
        } else {
            tens_heap.extend(tensors.iter_mut().map(raw));
            &tens_heap
        };
        let ops = &self.ops;
        let mut pc = 0usize;
        while pc < ops.len() {
            match ops.get_unchecked(pc) {
                VOp::VFmaLane { dst, a, b, lanes } => {
                    let bval = *regs.get_unchecked(*b as usize);
                    let (dst, a) = (*dst as usize, *a as usize);
                    for i in 0..*lanes as usize {
                        let av = *regs.get_unchecked(a + i);
                        *regs.get_unchecked_mut(dst + i) += av * bval;
                    }
                }
                VOp::VLoad { dst, buf, addr, lanes } => {
                    let idx = addr.eval(loops, scalars) as usize;
                    let src = tens.get_unchecked(*buf as usize).add(idx);
                    std::ptr::copy_nonoverlapping(src, regs.as_mut_ptr().add(*dst as usize), *lanes as usize);
                }
                VOp::VStore { src, buf, addr, lanes } => {
                    let idx = addr.eval(loops, scalars) as usize;
                    let dst = tens.get_unchecked(*buf as usize).add(idx);
                    std::ptr::copy_nonoverlapping(regs.as_ptr().add(*src as usize), dst, *lanes as usize);
                }
                VOp::VFmaBcast { dst, a, buf, addr, scratch, lanes } => {
                    let idx = addr.eval(loops, scalars) as usize;
                    let bval = *tens.get_unchecked(*buf as usize).add(idx);
                    *regs.get_unchecked_mut(*scratch as usize) = bval;
                    let (dst, a) = (*dst as usize, *a as usize);
                    for i in 0..*lanes as usize {
                        let av = *regs.get_unchecked(a + i);
                        *regs.get_unchecked_mut(dst + i) += av * bval;
                    }
                }
                VOp::LoopBegin { slot, lo, hi, end } => {
                    let l = lo.eval(loops, scalars);
                    let h = hi.eval(loops, scalars);
                    if l >= h {
                        pc = *end as usize;
                        continue;
                    }
                    *loops.get_unchecked_mut(*slot as usize) = l;
                    *bounds.get_unchecked_mut(*slot as usize) = h;
                }
                VOp::LoopEnd { slot, begin } => {
                    let s = *slot as usize;
                    *loops.get_unchecked_mut(s) += 1;
                    if *loops.get_unchecked(s) < *bounds.get_unchecked(s) {
                        pc = *begin as usize + 1;
                        continue;
                    }
                }
                VOp::Scalar(op) => match op {
                    TOp::Fma { dst, a, b } => {
                        let v = *regs.get_unchecked(*a as usize) * *regs.get_unchecked(*b as usize);
                        *regs.get_unchecked_mut(*dst as usize) += v;
                    }
                    TOp::LoadT { dst, buf, addr } => {
                        let idx = addr.eval(loops, scalars) as usize;
                        *regs.get_unchecked_mut(*dst as usize) = *tens.get_unchecked(*buf as usize).add(idx);
                    }
                    TOp::StoreT { src, buf, addr } => {
                        let idx = addr.eval(loops, scalars) as usize;
                        *tens.get_unchecked(*buf as usize).add(idx) = *regs.get_unchecked(*src as usize);
                    }
                    TOp::ConstF { dst, val } => *regs.get_unchecked_mut(*dst as usize) = *val,
                    TOp::Mov { dst, src } => {
                        *regs.get_unchecked_mut(*dst as usize) = *regs.get_unchecked(*src as usize)
                    }
                    TOp::Add { dst, a, b } => {
                        let v = *regs.get_unchecked(*a as usize) + *regs.get_unchecked(*b as usize);
                        *regs.get_unchecked_mut(*dst as usize) = v;
                    }
                    TOp::Sub { dst, a, b } => {
                        let v = *regs.get_unchecked(*a as usize) - *regs.get_unchecked(*b as usize);
                        *regs.get_unchecked_mut(*dst as usize) = v;
                    }
                    TOp::Mul { dst, a, b } => {
                        let v = *regs.get_unchecked(*a as usize) * *regs.get_unchecked(*b as usize);
                        *regs.get_unchecked_mut(*dst as usize) = v;
                    }
                    TOp::Div { dst, a, b } => {
                        let v = *regs.get_unchecked(*a as usize) / *regs.get_unchecked(*b as usize);
                        *regs.get_unchecked_mut(*dst as usize) = v;
                    }
                    TOp::Neg { dst, src } => {
                        *regs.get_unchecked_mut(*dst as usize) = -*regs.get_unchecked(*src as usize)
                    }
                    TOp::AddAssign { dst, src } => {
                        let v = *regs.get_unchecked(*src as usize);
                        *regs.get_unchecked_mut(*dst as usize) += v;
                    }
                    TOp::CastI { dst, value } => {
                        *regs.get_unchecked_mut(*dst as usize) = value.eval(loops, scalars) as f32
                    }
                    TOp::Round { reg } => {
                        let r = regs.get_unchecked_mut(*reg as usize);
                        *r = exo_ir::types::f16_round(f64::from(*r)) as f32;
                    }
                    TOp::Zero { base, len } => {
                        std::ptr::write_bytes(regs.as_mut_ptr().add(*base as usize), 0, *len as usize);
                    }
                    TOp::LoopBegin { .. } | TOp::LoopEnd { .. } => {
                        debug_assert!(false, "loop markers are lifted to VOp level");
                    }
                },
            }
            pc += 1;
        }
    }

    /// A prove-once dispatch handle over this kernel (see
    /// [`SuperwordDispatch`]).
    pub fn dispatcher(self: &std::sync::Arc<Self>) -> SuperwordDispatch {
        SuperwordDispatch::new(std::sync::Arc::clone(self))
    }
}

/// Reusable execution state: the flat register file and the loop
/// counter/bound tables, allocated once and shared by every run of one
/// [`SuperwordDispatch`] (or of the SIMD dispatch handle built on it).
#[derive(Debug, Clone)]
pub(crate) struct ExecScratch {
    pub(crate) regs: Vec<f32>,
    pub(crate) loops: Vec<i64>,
    pub(crate) bounds: Vec<i64>,
}

impl ExecScratch {
    pub(crate) fn for_kernel(kernel: &SuperwordKernel) -> Self {
        ExecScratch {
            regs: vec![0.0; kernel.n_regs],
            loops: vec![0; kernel.n_dyn_loops],
            bounds: vec![0; kernel.n_dyn_loops],
        }
    }
}

/// One memoised run of the interval proof: the scalar arguments and buffer
/// lengths it was run for, and its verdict.
#[derive(Debug, Clone)]
struct ProofEntry {
    scalars: Vec<i64>,
    lens: Vec<usize>,
    provable: bool,
}

/// A prove-once dispatch handle: the reusable per-GEMM state of a
/// [`SuperwordKernel`].
///
/// [`SuperwordKernel::run_views`] re-runs the (cheap, `O(ops)`) interval
/// proof and re-allocates its register file on **every** call, even though a
/// GEMM driver dispatches the same kernel thousands of times per problem
/// with only a couple of distinct proof inputs (`KC` full vs. fringe, and
/// the matching buffer lengths). A `SuperwordDispatch` memoises the proof
/// verdict per distinct `(scalars, lengths)` tuple and reuses one register
/// file across calls, so steady-state dispatch does no allocation and no
/// re-proving. Results are bit-for-bit identical to the one-shot entry
/// points.
///
/// The handle owns its scratch, so create one per worker thread (it is
/// `Send`) and reuse it for every micro-tile of that worker's share of the
/// problem.
#[derive(Debug, Clone)]
pub struct SuperwordDispatch {
    kernel: std::sync::Arc<SuperwordKernel>,
    scratch: ExecScratch,
    proofs: Vec<ProofEntry>,
}

impl SuperwordDispatch {
    /// Creates a dispatch handle for a kernel, allocating its register file
    /// and loop tables up front.
    pub fn new(kernel: std::sync::Arc<SuperwordKernel>) -> Self {
        let scratch = ExecScratch::for_kernel(&kernel);
        SuperwordDispatch { kernel, scratch, proofs: Vec::new() }
    }

    /// The kernel this handle dispatches.
    pub fn kernel(&self) -> &SuperwordKernel {
        &self.kernel
    }

    /// How many distinct `(scalars, buffer lengths)` proof inputs have been
    /// memoised so far. A well-blocked GEMM sees only a handful.
    pub fn memoised_proofs(&self) -> usize {
        self.proofs.len()
    }

    /// Looks up (or runs and memoises) the interval proof for one input
    /// tuple. The SIMD dispatch handle shares this memo: the same verdict
    /// gates both the intrinsic chain and the superword unsafe loop.
    pub(crate) fn provable(&mut self, scalars: &[i64], lens: &[usize]) -> bool {
        if let Some(entry) = self.proofs.iter().find(|p| p.scalars == scalars && p.lens == lens) {
            return entry.provable;
        }
        let provable = self.kernel.bounds_provable(scalars, lens);
        self.proofs.push(ProofEntry { scalars: scalars.to_vec(), lens: lens.to_vec(), provable });
        provable
    }

    /// Runs the kernel over borrowed tensor views, reusing the memoised
    /// proof and the handle's register file. Semantics (including errors)
    /// are identical to [`SuperwordKernel::run_views`].
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::BadArguments`] on an argument mismatch and
    /// [`CodegenError::OutOfBounds`] if an access leaves its buffer.
    pub fn run_views(&mut self, scalars: &[i64], tensors: &mut [TensorView<'_>]) -> Result<()> {
        self.kernel.validate_views(scalars, tensors)?;
        // The proof inputs: buffer lengths only (contents never affect
        // addresses — the tape has no data-dependent control flow).
        let mut lens_stack = [0usize; 4];
        let lens: &[usize] = if tensors.len() <= lens_stack.len() {
            for (slot, t) in lens_stack.iter_mut().zip(tensors.iter()) {
                *slot = t.as_slice().len();
            }
            &lens_stack[..tensors.len()]
        } else {
            return self.run_views_slow(scalars, tensors);
        };
        let kernel = std::sync::Arc::clone(&self.kernel);
        if self.provable(scalars, lens) {
            // SAFETY: construction-time register/loop proof holds for every
            // `SuperwordKernel`; `provable` just certified (or recalled the
            // certification of) these exact scalars and buffer lengths; and
            // `validate_views` guaranteed written tensors are `Rw`.
            unsafe { kernel.exec_unchecked(scalars, tensors, &mut self.scratch) };
            Ok(())
        } else {
            crate::simd::scalar::exec_checked(&kernel, scalars, tensors, &mut self.scratch)
        }
    }

    /// Fallback for kernels with more tensors than the stack buffer holds:
    /// identical semantics, one heap allocation for the length tuple.
    fn run_views_slow(&mut self, scalars: &[i64], tensors: &mut [TensorView<'_>]) -> Result<()> {
        let lens: Vec<usize> = tensors.iter().map(|t| t.as_slice().len()).collect();
        let kernel = std::sync::Arc::clone(&self.kernel);
        if self.provable(scalars, &lens) {
            // SAFETY: as in `run_views`.
            unsafe { kernel.exec_unchecked(scalars, tensors, &mut self.scratch) };
            Ok(())
        } else {
            crate::simd::scalar::exec_checked(&kernel, scalars, tensors, &mut self.scratch)
        }
    }

    /// Runs the packed `(KC, Ac, Bc, C)` micro-kernel signature, reusing the
    /// memoised proof and register file:
    /// `c[nr][mr] += ac[kc][mr] * bc[kc][nr]`.
    ///
    /// # Errors
    ///
    /// As [`SuperwordKernel::run_packed`].
    pub fn run_packed(&mut self, kc: usize, ac: &[f32], bc: &[f32], c: &mut [f32]) -> Result<()> {
        self.kernel.check_packed_signature()?;
        self.run_views(&[kc as i64], &mut [TensorView::Ro(ac), TensorView::Ro(bc), TensorView::Rw(c)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::compile;
    use exo_ir::builder::*;
    use exo_ir::{Expr, MemSpace, ScalarType};

    /// A hand-staged 8x4 laneq-shaped kernel with the structure every
    /// scheduled micro-kernel lowers to: the `C` tile and both operand
    /// stages live in locals (registers), so the tape scalarises them into
    /// exactly the lane runs the superword pass re-rolls.
    fn staged_kernels() -> (TapeKernel, SuperwordKernel) {
        let (mr, nr) = (8i64, 4i64);
        let p = proc("ukr_8x4_staged")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(mr)], MemSpace::Dram)
            .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), int(nr)], MemSpace::Dram)
            .tensor_arg("C", ScalarType::F32, vec![int(nr * mr)], MemSpace::Dram)
            .body(vec![
                alloc("Ct", ScalarType::F32, vec![int(nr), int(mr)], MemSpace::Neon),
                alloc("Ra", ScalarType::F32, vec![int(mr)], MemSpace::Neon),
                alloc("Rb", ScalarType::F32, vec![int(nr)], MemSpace::Neon),
                for_(
                    "j",
                    0,
                    nr,
                    vec![for_(
                        "i",
                        0,
                        mr,
                        vec![assign(
                            "Ct",
                            vec![var("j"), var("i")],
                            read("C", vec![Expr::add(Expr::mul(var("j"), int(mr)), var("i"))]),
                        )],
                    )],
                ),
                for_(
                    "k",
                    0,
                    var("KC"),
                    vec![
                        for_(
                            "i",
                            0,
                            mr,
                            vec![assign("Ra", vec![var("i")], read("Ac", vec![var("k"), var("i")]))],
                        ),
                        for_(
                            "j",
                            0,
                            nr,
                            vec![assign("Rb", vec![var("j")], read("Bc", vec![var("k"), var("j")]))],
                        ),
                        for_(
                            "j",
                            0,
                            nr,
                            vec![for_(
                                "i",
                                0,
                                mr,
                                vec![reduce(
                                    "Ct",
                                    vec![var("j"), var("i")],
                                    Expr::mul(read("Ra", vec![var("i")]), read("Rb", vec![var("j")])),
                                )],
                            )],
                        ),
                    ],
                ),
                for_(
                    "j",
                    0,
                    nr,
                    vec![for_(
                        "i",
                        0,
                        mr,
                        vec![assign(
                            "C",
                            vec![Expr::add(Expr::mul(var("j"), int(mr)), var("i"))],
                            read("Ct", vec![var("j"), var("i")]),
                        )],
                    )],
                ),
            ])
            .build();
        let compiled = compile(&p).unwrap();
        let tape = compiled.to_tape().unwrap();
        let sw = tape.to_superword().unwrap();
        (tape, sw)
    }

    #[test]
    fn superword_matches_the_scalar_tape_bit_for_bit() {
        let (tape, sw) = staged_kernels();
        let (mr, nr, kc) = (8usize, 4usize, 29usize);
        let a: Vec<f32> = (0..kc * mr).map(|i| ((i * 7 + 3) % 13) as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..kc * nr).map(|i| ((i * 5 + 1) % 11) as f32 * 0.25 - 1.0).collect();
        let c0: Vec<f32> = (0..nr * mr).map(|i| (i % 5) as f32 * 0.5).collect();
        let mut c_tape = c0.clone();
        tape.run_packed(kc, &a, &b, &mut c_tape).unwrap();
        let mut c_sw = c0.clone();
        sw.run_packed(kc, &a, &b, &mut c_sw).unwrap();
        assert_eq!(c_tape, c_sw, "superword must be bit-for-bit equal to the scalar tape");
    }

    #[test]
    fn unscheduled_kernels_survive_as_scalar_passthrough() {
        // The unscheduled reference kernel keeps `C` in memory, so nothing
        // packs — the superword tape degenerates to the scalar one (plus
        // the unchecked dispatch) and must still agree bit for bit.
        let p = exo_isa::ukernel_ref_simple(ScalarType::F32);
        let p = exo_sched::partial_eval(&p, &[4, 4]).unwrap();
        let compiled = compile(&p).unwrap();
        let tape = compiled.to_tape().unwrap();
        let sw = tape.to_superword().unwrap();
        let kc = 13usize;
        let a: Vec<f32> = (0..kc * 4).map(|i| (i % 7) as f32 * 0.25 - 0.5).collect();
        let b: Vec<f32> = (0..kc * 4).map(|i| (i % 5) as f32 * 0.5 - 1.0).collect();
        let c0: Vec<f32> = (0..16).map(|i| i as f32 * 0.125).collect();
        let mut c_tape = c0.clone();
        tape.run_packed(kc, &a, &b, &mut c_tape).unwrap();
        let mut c_sw = c0.clone();
        sw.run_packed(kc, &a, &b, &mut c_sw).unwrap();
        assert_eq!(c_tape, c_sw);
    }

    #[test]
    fn packing_produces_whole_vector_ops() {
        let (tape, sw) = staged_kernels();
        assert!(sw.vector_op_count() > 0, "the staged 8x4 kernel must pack");
        // Packing re-rolls lane runs, so the superword tape is much shorter
        // than the scalar one; the FMA stream packs completely.
        assert!(sw.len() * 3 < tape.len(), "superword tape ({}) vs scalar tape ({})", sw.len(), tape.len());
        assert!(sw.ops.iter().any(|op| matches!(op, VOp::VFmaLane { lanes, .. } if *lanes >= 4)));
    }

    #[test]
    fn empty_kc_loops_skip_their_body() {
        let (_, sw) = staged_kernels();
        // kc = 0: the packed operands are empty, the KC loop never runs, and
        // the interval proof must skip its body rather than reject it.
        let mut c = vec![1.0f32; 32];
        let before = c.clone();
        sw.run_packed(0, &[], &[], &mut c).unwrap();
        assert_eq!(c, before, "kc = 0 stages C through registers and writes it back unchanged");
    }

    #[test]
    fn out_of_bounds_falls_back_to_the_checked_loop_and_reports() {
        let p = proc("oob")
            .size_arg("N")
            .tensor_arg("x", ScalarType::F32, vec![var("N")], MemSpace::Dram)
            .body(vec![for_("i", 0, var("N"), vec![assign("x", vec![var("i")], flt(1.0))])])
            .build();
        let sw = compile(&p).unwrap().to_superword().unwrap();
        let mut x = vec![0.0f32; 2];
        // Claim N = 7 over a 2-element buffer: the interval proof declines,
        // the checked loop reports exactly what the scalar tape would.
        assert!(matches!(
            sw.run(&mut [RunArg::Size(7), RunArg::Tensor(&mut x)]),
            Err(CodegenError::OutOfBounds { .. })
        ));
        // The first two stores landed before the error, like the tape's.
        assert_eq!(x, vec![1.0, 1.0]);
    }

    #[test]
    fn f16_rounding_matches_the_tape() {
        let p = proc("round16")
            .tensor_arg("out", ScalarType::F16, vec![int(2)], MemSpace::Dram)
            .body(vec![assign("out", vec![int(0)], flt(1.0 + 1.0e-5)), reduce("out", vec![int(1)], flt(0.1))])
            .build();
        let compiled = compile(&p).unwrap();
        let tape = compiled.to_tape().unwrap();
        let sw = tape.to_superword().unwrap();
        let mut out_tape = vec![0.0f32, 3.0];
        tape.run(&mut [RunArg::Tensor(&mut out_tape)]).unwrap();
        let mut out_sw = vec![0.0f32, 3.0];
        sw.run(&mut [RunArg::Tensor(&mut out_sw)]).unwrap();
        assert_eq!(out_tape, out_sw);
    }

    #[test]
    fn written_tensors_and_argument_mismatches_are_rejected() {
        let (_, sw) = staged_kernels();
        assert!(!sw.writes_tensor(0) && !sw.writes_tensor(1) && sw.writes_tensor(2));
        let a = vec![0.0f32; 8];
        let b = vec![0.0f32; 4];
        let c = vec![0.0f32; 32];
        let err = sw.run_views(&[1], &mut [TensorView::Ro(&a), TensorView::Ro(&b), TensorView::Ro(&c)]);
        assert!(matches!(err, Err(CodegenError::BadArguments { .. })));
        let mut too_few = vec![RunArg::Size(1)];
        assert!(matches!(sw.run(&mut too_few), Err(CodegenError::BadArguments { .. })));
    }

    #[test]
    fn dispatch_handle_matches_one_shot_runs_and_memoises_proofs() {
        let (_, sw) = staged_kernels();
        let sw = std::sync::Arc::new(sw);
        let mut dispatch = sw.dispatcher();
        let (mr, nr) = (8usize, 4usize);
        // Sweep the per-GEMM dispatch pattern: many tiles, two distinct KC
        // values (full and fringe) — the proof must run once per distinct
        // input, not once per tile.
        for rep in 0..6 {
            for &kc in &[17usize, 5] {
                let a: Vec<f32> = (0..kc * mr).map(|i| ((i * 7 + rep) % 13) as f32 * 0.5 - 2.0).collect();
                let b: Vec<f32> = (0..kc * nr).map(|i| ((i * 5 + rep) % 11) as f32 * 0.25 - 1.0).collect();
                let c0: Vec<f32> = (0..nr * mr).map(|i| ((i + rep) % 5) as f32 * 0.5).collect();
                let mut c_dispatch = c0.clone();
                dispatch.run_packed(kc, &a, &b, &mut c_dispatch).unwrap();
                let mut c_one_shot = c0.clone();
                sw.run_packed(kc, &a, &b, &mut c_one_shot).unwrap();
                assert_eq!(c_dispatch, c_one_shot, "kc={kc} rep={rep}");
            }
        }
        assert_eq!(dispatch.memoised_proofs(), 2, "one proof per distinct (KC, lens) input");
    }

    #[test]
    fn dispatch_handle_reports_checked_path_errors_like_the_one_shot_run() {
        let p = proc("oob")
            .size_arg("N")
            .tensor_arg("x", ScalarType::F32, vec![var("N")], MemSpace::Dram)
            .body(vec![for_("i", 0, var("N"), vec![assign("x", vec![var("i")], flt(1.0))])])
            .build();
        let sw = std::sync::Arc::new(compile(&p).unwrap().to_superword().unwrap());
        let mut dispatch = sw.dispatcher();
        let mut x = vec![0.0f32; 2];
        assert!(matches!(
            dispatch.run_views(&[7], &mut [TensorView::Rw(&mut x)]),
            Err(CodegenError::OutOfBounds { .. })
        ));
        assert_eq!(x, vec![1.0, 1.0], "partial stores before the error, like the tape's");
        // The failed proof is memoised too: a retry with the same inputs
        // goes straight back to the checked loop.
        assert_eq!(dispatch.memoised_proofs(), 1);
        let mut y = vec![0.0f32; 8];
        dispatch.run_views(&[7], &mut [TensorView::Rw(&mut y)]).unwrap();
        assert_eq!(&y[..7], &[1.0; 7]);
        assert_eq!(dispatch.memoised_proofs(), 2);
    }

    #[test]
    fn broadcast_pairs_pack_into_vfma_bcast() {
        // The scalarised broadcast FMA: a register-staged operand times one
        // memory element, accumulated into a register run — the tape
        // interleaves [LoadT rhs; Fma] pairs, which must collapse into one
        // VFmaBcast per statement.
        let p = proc("bcast")
            .tensor_arg("x", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .tensor_arg("s", ScalarType::F32, vec![int(1)], MemSpace::Dram)
            .tensor_arg("y", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .body(vec![
                alloc("acc", ScalarType::F32, vec![int(4)], MemSpace::Neon),
                alloc("r", ScalarType::F32, vec![int(4)], MemSpace::Neon),
                for_("i", 0, 4, vec![assign("r", vec![var("i")], read("x", vec![var("i")]))]),
                for_(
                    "i",
                    0,
                    4,
                    vec![reduce(
                        "acc",
                        vec![var("i")],
                        Expr::mul(read("r", vec![var("i")]), read("s", vec![int(0)])),
                    )],
                ),
                for_("i", 0, 4, vec![assign("y", vec![var("i")], read("acc", vec![var("i")]))]),
            ])
            .build();
        let compiled = compile(&p).unwrap();
        let tape = compiled.to_tape().unwrap();
        let sw = tape.to_superword().unwrap();
        assert!(sw.ops.iter().any(|op| matches!(op, VOp::VFmaBcast { lanes: 4, .. })), "{:?}", sw.ops);
        assert!(sw.ops.iter().any(|op| matches!(op, VOp::VLoad { lanes: 4, .. })));
        assert!(sw.ops.iter().any(|op| matches!(op, VOp::VStore { lanes: 4, .. })));
        let x = vec![1.5f32, -2.0, 0.25, 3.0];
        let s = vec![0.5f32];
        let run = |k: &dyn Fn(&mut [RunArg<'_>]) -> Result<()>| {
            let mut xb = x.clone();
            let mut sb = s.clone();
            let mut y = vec![0.0f32; 4];
            k(&mut [RunArg::Tensor(&mut xb), RunArg::Tensor(&mut sb), RunArg::Tensor(&mut y)]).unwrap();
            y
        };
        assert_eq!(run(&|args| tape.run(args)), run(&|args| sw.run(args)));
        assert_eq!(run(&|args| sw.run(args)), vec![0.75, -1.0, 0.125, 1.5]);
    }
}
