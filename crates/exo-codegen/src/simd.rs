//! Native SIMD execution: the superword tape lowered to AVX2/FMA
//! intrinsics through a pre-compiled chain of monomorphic closures.
//!
//! The superword backend of [`crate::superword`] already dispatches one
//! whole vector register per op, but each op still runs through a `match`
//! interpreter whose lane loops the compiler must re-vectorise from
//! scratch on every dispatch — and in practice does not: `VFmaLane` spends
//! its time in scalar multiply-then-add lane arithmetic. This module is
//! the "last mile" the Exo paper delegates to a native compiler backend:
//! the validated superword ops (`VLoad` / `VStore` / `VFmaLane` /
//! `VFmaBcast`, lanes aligned to `LANE_ALIGN = 8` so one packed op is one
//! `__m256`) are compiled **once per kernel** into a chain of monomorphic
//! closures over `core::arch::x86_64` intrinsics
//! (`_mm256_loadu_ps` / `_mm256_fmadd_ps` / `_mm256_set1_ps`):
//!
//! * every closure carries its operands pre-resolved (register offsets,
//!   the pre-compiled specialised address shapes of the superword tier) —
//!   no per-op decode survives to run time;
//! * runs of isomorphic `VFmaLane` ops over one staged operand (the
//!   accumulator tile of a laneq kernel) fuse into a single closure that
//!   hoists the operand load across the whole tile;
//! * dynamic loops become native Rust loops over the closure chain — the
//!   tape's `LoopBegin`/`LoopEnd` jump dispatch disappears entirely;
//! * non-8-lane fringe runs lower to `__m128` quarters and
//!   `f32::mul_add` scalar tails, in ascending lane order.
//!
//! **Selection and safety.** [`SimdKernel::compile`] only succeeds when
//! `is_x86_feature_detected!("avx2")` and `("fma")` both hold (and the
//! target is `x86_64`); everywhere else the caller keeps the portable
//! superword tier, which computes the same result bit-for-bit with the
//! scalar tape. The closure chain runs bounds-free: it relies on exactly
//! the proofs the superword backend already established — the
//! construction-time register/loop-structure validation and the run-time
//! affine-interval proof over the tensor addresses. [`SimdDispatch`]
//! reuses the memoised proof of its inner [`SuperwordDispatch`], so
//! steady-state micro-tile dispatch re-proves nothing; when the proof
//! declines, execution falls back to the superword checked loop with
//! identical error semantics.
//!
//! **Bit compatibility.** The FMA intrinsics *contract* the
//! multiply-then-add of the tape's `Fma` semantics into a single rounding,
//! so this tier is **not** bit-identical to the superword / tape / interp
//! tiers (it is at least as accurate: one rounding instead of two per
//! multiply-add). The differential suites therefore compare the SIMD tier
//! against the references within an accumulation-scaled ULP bound —
//! `|simd − superword| ≤ 2·ε·(KC + 4)²·scale` — and demand exact equality
//! only on the portable fallback path (`EXO_BACKEND=superword`), which
//! runs the unchanged superword loop. Lane order inside every packed op is
//! preserved, so the tier stays deterministic: the same inputs produce the
//! same bits on every run and every thread count.

use std::sync::Arc;

use crate::error::Result;
use crate::superword::{ExecScratch, SAddr, SuperwordDispatch, SuperwordKernel};
use crate::tape::TensorView;

/// Whether the running host can execute the SIMD tier (x86_64 with AVX2
/// and FMA, detected at run time). When `false`,
/// [`SimdKernel::compile`] returns `None` and every consumer stays on the
/// portable superword tier.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The accumulation-scaled tolerance of the SIMD tier's FMA-contraction
/// contract — the single definition every differential suite in the
/// workspace holds `|simd − superword|` to, relative to the element
/// magnitude (floor 1.0): the chain contracts each multiply-add into one
/// rounding, so a `k`-deep accumulation over unit-magnitude data differs
/// from the mul-then-add tiers by at most `2·ε·(k + 4)²`. On hosts
/// without AVX2/FMA the simd backend runs the superword tier and the
/// distance is exactly zero.
pub fn fma_contraction_tol(k: usize) -> f32 {
    2.0 * f32::EPSILON * ((k + 4) as f32).powi(2)
}

/// One pre-compiled closure: operands resolved at compile time, intrinsics
/// selected for the lane shape. Receives the register file, the tensor
/// base-pointer table, and the loop/scalar tables of the current run.
type StepFn = Box<dyn Fn(*mut f32, &[*mut f32], &[i64], &[i64]) + Send + Sync>;

/// A node of the compiled program: a straight-line step or a native loop
/// over a nested chain.
enum Node {
    /// One pre-compiled op.
    Step(StepFn),
    /// A dynamic loop: evaluate bounds, run the body chain per iteration
    /// with the counter written into its slot.
    Loop { slot: usize, lo: SAddr, hi: SAddr, body: Vec<Node> },
    /// A dynamic loop whose whole body fused into one closure (the laneq
    /// micro-kernel's `KC` loop): the counter drives the step directly,
    /// no per-iteration chain walk.
    LoopStep { slot: usize, lo: SAddr, hi: SAddr, step: StepFn },
}

/// A kernel compiled to a chain of AVX2/FMA closures.
///
/// Obtained from [`SimdKernel::compile`] over a validated
/// [`SuperwordKernel`] (`None` off x86_64 or when the host lacks
/// AVX2/FMA). The fastest execution tier; results are within a documented
/// ULP bound of the superword tier (FMA contraction), never bit-different
/// across runs or thread counts.
pub struct SimdKernel {
    source: Arc<SuperwordKernel>,
    program: Vec<Node>,
    n_steps: usize,
    n_fused_tiles: usize,
}

impl std::fmt::Debug for SimdKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimdKernel")
            .field("name", &self.source.name)
            .field("steps", &self.n_steps)
            .field("fused_tiles", &self.n_fused_tiles)
            .finish_non_exhaustive()
    }
}

impl SimdKernel {
    /// Compiles a superword kernel into the AVX2/FMA closure chain.
    ///
    /// Returns `None` when the host cannot run the chain (non-x86_64, or
    /// AVX2/FMA not detected) — callers keep the superword tier — or in
    /// the (never observed for generated kernels) case of a tape construct
    /// the chain compiler declines.
    pub fn compile(source: Arc<SuperwordKernel>) -> Option<SimdKernel> {
        if !simd_available() {
            return None;
        }
        #[cfg(target_arch = "x86_64")]
        {
            let mut stats = x86::BuildStats::default();
            let program = x86::build_nodes(&source.ops, &mut stats)?;
            Some(SimdKernel { source, program, n_steps: stats.steps, n_fused_tiles: stats.fused_tiles })
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            None
        }
    }

    /// The superword kernel this chain was compiled from (also the
    /// portable fallback and the owner of the shared proofs).
    pub fn source(&self) -> &Arc<SuperwordKernel> {
        &self.source
    }

    /// Name of the source procedure.
    pub fn name(&self) -> &str {
        &self.source.name
    }

    /// Number of pre-compiled closures in the chain (loop nodes count
    /// their bodies, not themselves).
    pub fn step_count(&self) -> usize {
        self.n_steps
    }

    /// How many fused accumulator-tile closures the chain compiler formed
    /// (each replaces a whole run of `VFmaLane` ops and hoists the shared
    /// operand load).
    pub fn fused_tile_count(&self) -> usize {
        self.n_fused_tiles
    }

    /// Runs the chain over borrowed tensor views, proving bounds for this
    /// exact input first (one-shot entry point; the GEMM hot path uses
    /// [`SimdDispatch`] instead, which memoises the proof).
    ///
    /// # Errors
    ///
    /// Exactly [`SuperwordKernel::run_views`]'s:
    /// [`crate::CodegenError::BadArguments`] on an argument mismatch, and
    /// [`crate::CodegenError::OutOfBounds`] from the checked fallback when
    /// the interval proof declines and an access indeed leaves its buffer.
    pub fn run_views(&self, scalars: &[i64], tensors: &mut [TensorView<'_>]) -> Result<()> {
        self.source.validate_views(scalars, tensors)?;
        let lens: Vec<usize> = tensors.iter().map(|t| t.as_slice().len()).collect();
        let mut scratch = ExecScratch::for_kernel(&self.source);
        if self.source.bounds_provable(scalars, &lens) {
            // SAFETY: the source kernel's construction proof covers every
            // register operand and the loop structure; `bounds_provable`
            // just certified every tensor access for these scalars and
            // buffer lengths; `validate_views` guaranteed written tensors
            // are `Rw`.
            unsafe { self.exec_unchecked(scalars, tensors, &mut scratch) };
            Ok(())
        } else {
            self.source.exec_checked(scalars, tensors, &mut scratch)
        }
    }

    /// Runs the packed micro-kernel signature `(KC, Ac, Bc, C)`:
    /// `c[nr][mr] += ac[kc][mr] * bc[kc][nr]` through the closure chain.
    ///
    /// # Errors
    ///
    /// As [`SuperwordKernel::run_packed`].
    pub fn run_packed(&self, kc: usize, ac: &[f32], bc: &[f32], c: &mut [f32]) -> Result<()> {
        self.source.check_packed_signature()?;
        self.run_views(&[kc as i64], &mut [TensorView::Ro(ac), TensorView::Ro(bc), TensorView::Rw(c)])
    }

    /// A prove-once dispatch handle over this chain (see [`SimdDispatch`]).
    pub fn dispatcher(self: &Arc<Self>) -> SimdDispatch {
        SimdDispatch::new(Arc::clone(self))
    }

    /// Runs the pre-compiled chain with no checks.
    ///
    /// # Safety
    ///
    /// Callers must have established the same three preconditions as
    /// [`SuperwordKernel`]'s unsafe loop for the *source* kernel: the
    /// construction-time register/loop proof (always true), the interval
    /// proof for these exact scalars and tensor lengths, and `Rw` views
    /// for every written tensor. `scratch` must be sized for the source
    /// kernel.
    unsafe fn exec_unchecked(
        &self,
        scalars: &[i64],
        tensors: &mut [TensorView<'_>],
        scratch: &mut ExecScratch,
    ) {
        scratch.regs.fill(0.0);
        let regs = scratch.regs.as_mut_ptr();
        // Raw base pointers, exactly as the superword loop takes them: the
        // `*mut` view of a read-only tensor is never written through.
        let mut tens_stack = [std::ptr::null_mut::<f32>(); 4];
        let mut tens_heap: Vec<*mut f32> = Vec::new();
        let raw = |t: &mut TensorView<'_>| match t {
            TensorView::Ro(s) => s.as_ptr().cast_mut(),
            TensorView::Rw(s) => s.as_mut_ptr(),
        };
        let tens: &[*mut f32] = if tensors.len() <= tens_stack.len() {
            for (slot, t) in tens_stack.iter_mut().zip(tensors.iter_mut()) {
                *slot = raw(t);
            }
            &tens_stack[..tensors.len()]
        } else {
            tens_heap.extend(tensors.iter_mut().map(raw));
            &tens_heap
        };
        run_nodes(&self.program, regs, tens, &mut scratch.loops, scalars);
    }
}

/// Runs a compiled chain: steps call straight through their closure, loops
/// drive native counters over their body chain.
///
/// # Safety
///
/// As [`SimdKernel::exec_unchecked`] — every closure assumes the proofs
/// hold for the pointers and tables it receives.
unsafe fn run_nodes(nodes: &[Node], regs: *mut f32, tens: &[*mut f32], loops: &mut [i64], scalars: &[i64]) {
    for node in nodes {
        match node {
            Node::Step(f) => f(regs, tens, loops, scalars),
            Node::Loop { slot, lo, hi, body } => {
                let l = lo.eval(loops, scalars);
                let h = hi.eval(loops, scalars);
                let mut v = l;
                while v < h {
                    *loops.get_unchecked_mut(*slot) = v;
                    run_nodes(body, regs, tens, loops, scalars);
                    v += 1;
                }
            }
            Node::LoopStep { slot, lo, hi, step } => {
                let l = lo.eval(loops, scalars);
                let h = hi.eval(loops, scalars);
                let mut v = l;
                while v < h {
                    *loops.get_unchecked_mut(*slot) = v;
                    step(regs, tens, loops, scalars);
                    v += 1;
                }
            }
        }
    }
}

/// A prove-once dispatch handle for the SIMD tier: the per-worker reusable
/// state of a [`SimdKernel`].
///
/// Wraps a [`SuperwordDispatch`] over the source kernel and reuses its
/// memoised affine-interval proof — one verdict per distinct
/// `(scalars, buffer lengths)` tuple gates both the intrinsic chain and,
/// when it declines, the superword checked fallback (identical error
/// semantics). The handle owns its register file and loop tables, so
/// steady-state dispatch allocates nothing; create one per worker thread
/// (it is `Send`) and reuse it for every micro-tile.
#[derive(Debug, Clone)]
pub struct SimdDispatch {
    kernel: Arc<SimdKernel>,
    fallback: SuperwordDispatch,
    scratch: ExecScratch,
}

impl SimdDispatch {
    /// Creates a dispatch handle, allocating the register file and loop
    /// tables up front.
    pub fn new(kernel: Arc<SimdKernel>) -> Self {
        let fallback = SuperwordDispatch::new(Arc::clone(kernel.source()));
        let scratch = ExecScratch::for_kernel(kernel.source());
        SimdDispatch { kernel, fallback, scratch }
    }

    /// The compiled chain this handle dispatches.
    pub fn kernel(&self) -> &SimdKernel {
        &self.kernel
    }

    /// How many distinct `(scalars, buffer lengths)` proof inputs have
    /// been memoised so far (shared with the superword fallback).
    pub fn memoised_proofs(&self) -> usize {
        self.fallback.memoised_proofs()
    }

    /// Runs the chain over borrowed tensor views, reusing the memoised
    /// proof and this handle's register file.
    ///
    /// # Errors
    ///
    /// As [`SimdKernel::run_views`].
    pub fn run_views(&mut self, scalars: &[i64], tensors: &mut [TensorView<'_>]) -> Result<()> {
        self.kernel.source().validate_views(scalars, tensors)?;
        let mut lens_stack = [0usize; 4];
        if tensors.len() > lens_stack.len() {
            let lens: Vec<usize> = tensors.iter().map(|t| t.as_slice().len()).collect();
            return self.run_proved(scalars, tensors, &lens);
        }
        for (slot, t) in lens_stack.iter_mut().zip(tensors.iter()) {
            *slot = t.as_slice().len();
        }
        let n = tensors.len();
        let lens = lens_stack;
        self.run_proved(scalars, tensors, &lens[..n])
    }

    fn run_proved(&mut self, scalars: &[i64], tensors: &mut [TensorView<'_>], lens: &[usize]) -> Result<()> {
        // Disjoint field borrows: the kernel is read-only while the
        // fallback's proof memo and this handle's scratch are mutated — no
        // per-dispatch Arc traffic on the hot path.
        let SimdDispatch { kernel, fallback, scratch } = self;
        if fallback.provable(scalars, lens) {
            // SAFETY: construction proof of the source kernel, the (memoised)
            // interval proof for these exact inputs, and the `Rw` check in
            // `validate_views` — the same three obligations as the superword
            // unsafe loop.
            unsafe { kernel.exec_unchecked(scalars, tensors, scratch) };
            Ok(())
        } else {
            // Declined proof: the superword checked loop, which reports
            // exactly what the scalar tape would (and memoised the declined
            // verdict, so retries go straight here).
            fallback.run_views(scalars, tensors)
        }
    }

    /// Runs the packed `(KC, Ac, Bc, C)` micro-kernel signature through
    /// the chain, reusing the memoised proof and register file.
    ///
    /// # Errors
    ///
    /// As [`SimdKernel::run_packed`].
    pub fn run_packed(&mut self, kc: usize, ac: &[f32], bc: &[f32], c: &mut [f32]) -> Result<()> {
        self.kernel.source().check_packed_signature()?;
        self.run_views(&[kc as i64], &mut [TensorView::Ro(ac), TensorView::Ro(bc), TensorView::Rw(c)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CodegenError;
    use crate::exec::compile;
    use exo_ir::builder::*;
    use exo_ir::{Expr, MemSpace, ScalarType};

    fn assert_close(x: &[f32], y: &[f32], kc: usize, what: &str) {
        let tol = fma_contraction_tol(kc);
        for (i, (a, b)) in x.iter().zip(y).enumerate() {
            let scale = a.abs().max(b.abs()).max(1.0);
            assert!((a - b).abs() <= tol * scale, "{what} at {i}: {a} vs {b} (tol {tol})");
        }
    }

    /// The laneq-shaped staged 8x4 kernel of the superword tests: the tape
    /// scalarises its staged tiles into exactly the lane runs the chain
    /// compiler fuses.
    fn staged_kernels() -> (Arc<SuperwordKernel>, SimdKernel) {
        let (mr, nr) = (8i64, 4i64);
        let p = proc("ukr_8x4_staged")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(mr)], MemSpace::Dram)
            .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), int(nr)], MemSpace::Dram)
            .tensor_arg("C", ScalarType::F32, vec![int(nr * mr)], MemSpace::Dram)
            .body(vec![
                alloc("Ct", ScalarType::F32, vec![int(nr), int(mr)], MemSpace::Neon),
                alloc("Ra", ScalarType::F32, vec![int(mr)], MemSpace::Neon),
                alloc("Rb", ScalarType::F32, vec![int(nr)], MemSpace::Neon),
                for_(
                    "j",
                    0,
                    nr,
                    vec![for_(
                        "i",
                        0,
                        mr,
                        vec![assign(
                            "Ct",
                            vec![var("j"), var("i")],
                            read("C", vec![Expr::add(Expr::mul(var("j"), int(mr)), var("i"))]),
                        )],
                    )],
                ),
                for_(
                    "k",
                    0,
                    var("KC"),
                    vec![
                        for_(
                            "i",
                            0,
                            mr,
                            vec![assign("Ra", vec![var("i")], read("Ac", vec![var("k"), var("i")]))],
                        ),
                        for_(
                            "j",
                            0,
                            nr,
                            vec![assign("Rb", vec![var("j")], read("Bc", vec![var("k"), var("j")]))],
                        ),
                        for_(
                            "j",
                            0,
                            nr,
                            vec![for_(
                                "i",
                                0,
                                mr,
                                vec![reduce(
                                    "Ct",
                                    vec![var("j"), var("i")],
                                    Expr::mul(read("Ra", vec![var("i")]), read("Rb", vec![var("j")])),
                                )],
                            )],
                        ),
                    ],
                ),
                for_(
                    "j",
                    0,
                    nr,
                    vec![for_(
                        "i",
                        0,
                        mr,
                        vec![assign(
                            "C",
                            vec![Expr::add(Expr::mul(var("j"), int(mr)), var("i"))],
                            read("Ct", vec![var("j"), var("i")]),
                        )],
                    )],
                ),
            ])
            .build();
        let sw = Arc::new(compile(&p).unwrap().to_superword().unwrap());
        let simd = SimdKernel::compile(Arc::clone(&sw)).expect("host must support AVX2+FMA in CI");
        (sw, simd)
    }

    #[test]
    fn simd_matches_superword_within_the_fma_bound_and_fuses_tiles() {
        if !simd_available() {
            return;
        }
        let (sw, simd) = staged_kernels();
        assert!(simd.fused_tile_count() > 0, "the staged kernel's FMA runs must fuse: {simd:?}");
        assert!(simd.step_count() > 0);
        let (mr, nr) = (8usize, 4usize);
        for kc in [0usize, 1, 2, 17, 64] {
            let a: Vec<f32> = (0..kc * mr).map(|i| ((i * 7 + 3) % 13) as f32 * 0.5 - 2.0).collect();
            let b: Vec<f32> = (0..kc * nr).map(|i| ((i * 5 + 1) % 11) as f32 * 0.25 - 1.0).collect();
            let c0: Vec<f32> = (0..nr * mr).map(|i| (i % 5) as f32 * 0.5).collect();
            let mut c_sw = c0.clone();
            sw.run_packed(kc, &a, &b, &mut c_sw).unwrap();
            let mut c_simd = c0.clone();
            simd.run_packed(kc, &a, &b, &mut c_simd).unwrap();
            assert_close(&c_simd, &c_sw, kc, &format!("kc={kc}"));
            if kc == 0 {
                assert_eq!(c_simd, c0, "kc = 0 stages C through registers and writes it back unchanged");
            }
        }
    }

    #[test]
    fn broadcast_and_scalar_passthrough_kernels_lower_and_match() {
        if !simd_available() {
            return;
        }
        // Unscheduled reference kernel: C stays in memory, nothing packs —
        // the chain degenerates to scalar closures and must still agree.
        let p = exo_isa::ukernel_ref_simple(ScalarType::F32);
        let p = exo_sched::partial_eval(&p, &[4, 4]).unwrap();
        let sw = Arc::new(compile(&p).unwrap().to_superword().unwrap());
        let simd = SimdKernel::compile(Arc::clone(&sw)).unwrap();
        let kc = 13usize;
        let a: Vec<f32> = (0..kc * 4).map(|i| (i % 7) as f32 * 0.25 - 0.5).collect();
        let b: Vec<f32> = (0..kc * 4).map(|i| (i % 5) as f32 * 0.5 - 1.0).collect();
        let c0: Vec<f32> = (0..16).map(|i| i as f32 * 0.125).collect();
        let mut c_sw = c0.clone();
        sw.run_packed(kc, &a, &b, &mut c_sw).unwrap();
        let mut c_simd = c0.clone();
        simd.run_packed(kc, &a, &b, &mut c_simd).unwrap();
        assert_close(&c_simd, &c_sw, kc, "scalar passthrough");

        // A broadcast-from-memory FMA (VFmaBcast) shape.
        let p = proc("bcast")
            .tensor_arg("x", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .tensor_arg("s", ScalarType::F32, vec![int(1)], MemSpace::Dram)
            .tensor_arg("y", ScalarType::F32, vec![int(4)], MemSpace::Dram)
            .body(vec![
                alloc("acc", ScalarType::F32, vec![int(4)], MemSpace::Neon),
                alloc("r", ScalarType::F32, vec![int(4)], MemSpace::Neon),
                for_("i", 0, 4, vec![assign("r", vec![var("i")], read("x", vec![var("i")]))]),
                for_(
                    "i",
                    0,
                    4,
                    vec![reduce(
                        "acc",
                        vec![var("i")],
                        Expr::mul(read("r", vec![var("i")]), read("s", vec![int(0)])),
                    )],
                ),
                for_("i", 0, 4, vec![assign("y", vec![var("i")], read("acc", vec![var("i")]))]),
            ])
            .build();
        let sw = Arc::new(compile(&p).unwrap().to_superword().unwrap());
        let simd = SimdKernel::compile(Arc::clone(&sw)).unwrap();
        let mut x = vec![1.5f32, -2.0, 0.25, 3.0];
        let mut s = vec![0.5f32];
        let mut y = vec![0.0f32; 4];
        simd.run_views(&[], &mut [TensorView::Rw(&mut x), TensorView::Rw(&mut s), TensorView::Rw(&mut y)])
            .unwrap();
        assert_eq!(y, vec![0.75, -1.0, 0.125, 1.5], "one product per lane: exact even under FMA");
    }

    #[test]
    fn nested_dynamic_loops_compile_and_run() {
        if !simd_available() {
            return;
        }
        // Two nested dynamic loops: the inner LoopBegin's absolute `end`
        // jump target must be rebased when the chain compiler recurses
        // into the outer body, or compilation silently declines.
        let p = proc("nested")
            .size_arg("N")
            .size_arg("M")
            // Constant column extent keeps the addresses affine (the tape
            // rejects `i * M`); both loop bounds stay dynamic.
            .tensor_arg("x", ScalarType::F32, vec![var("N"), int(8)], MemSpace::Dram)
            .body(vec![for_(
                "i",
                0,
                var("N"),
                vec![for_(
                    "j",
                    0,
                    var("M"),
                    vec![assign(
                        "x",
                        vec![var("i"), var("j")],
                        Expr::add(Expr::mul(var("i"), int(10)), var("j")),
                    )],
                )],
            )])
            .build();
        let sw = Arc::new(compile(&p).unwrap().to_superword().unwrap());
        let simd = SimdKernel::compile(Arc::clone(&sw))
            .expect("nested dynamic loops must not decline chain compilation");
        let (n, m) = (3usize, 5usize);
        let mut x = vec![-1.0f32; n * 8];
        simd.run_views(&[n as i64, m as i64], &mut [TensorView::Rw(&mut x)]).unwrap();
        let mut want = vec![-1.0f32; n * 8];
        sw.run_views(&[n as i64, m as i64], &mut [TensorView::Rw(&mut want)]).unwrap();
        assert_eq!(x, want, "integer-valued writes: exact across tiers");
        assert_eq!(x[8 + 4], 14.0, "x[1][4] = 1*10 + 4");
        assert_eq!(x[8 + 5], -1.0, "columns past M stay untouched");
    }

    #[test]
    fn out_of_bounds_falls_back_to_the_checked_loop_with_identical_errors() {
        if !simd_available() {
            return;
        }
        let p = proc("oob")
            .size_arg("N")
            .tensor_arg("x", ScalarType::F32, vec![var("N")], MemSpace::Dram)
            .body(vec![for_("i", 0, var("N"), vec![assign("x", vec![var("i")], flt(1.0))])])
            .build();
        let sw = Arc::new(compile(&p).unwrap().to_superword().unwrap());
        let simd = Arc::new(SimdKernel::compile(Arc::clone(&sw)).unwrap());
        // Claim N = 7 over a 2-element buffer: the interval proof declines
        // and the superword checked loop reports exactly what the scalar
        // tape would — including the partial stores before the error.
        let mut x = vec![0.0f32; 2];
        assert!(matches!(
            simd.run_views(&[7], &mut [TensorView::Rw(&mut x)]),
            Err(CodegenError::OutOfBounds { .. })
        ));
        assert_eq!(x, vec![1.0, 1.0]);
        // Same through the dispatch handle, which memoises the declined
        // verdict too.
        let mut dispatch = simd.dispatcher();
        let mut x = vec![0.0f32; 2];
        assert!(matches!(
            dispatch.run_views(&[7], &mut [TensorView::Rw(&mut x)]),
            Err(CodegenError::OutOfBounds { .. })
        ));
        assert_eq!(x, vec![1.0, 1.0]);
        assert_eq!(dispatch.memoised_proofs(), 1);
        let mut y = vec![0.0f32; 8];
        dispatch.run_views(&[7], &mut [TensorView::Rw(&mut y)]).unwrap();
        assert_eq!(&y[..7], &[1.0; 7]);
        assert_eq!(dispatch.memoised_proofs(), 2);
    }

    #[test]
    fn dispatch_handle_matches_one_shot_runs_and_memoises_proofs() {
        if !simd_available() {
            return;
        }
        let (_, simd) = staged_kernels();
        let simd = Arc::new(simd);
        let mut dispatch = simd.dispatcher();
        let (mr, nr) = (8usize, 4usize);
        for rep in 0..6 {
            for &kc in &[17usize, 5] {
                let a: Vec<f32> = (0..kc * mr).map(|i| ((i * 7 + rep) % 13) as f32 * 0.5 - 2.0).collect();
                let b: Vec<f32> = (0..kc * nr).map(|i| ((i * 5 + rep) % 11) as f32 * 0.25 - 1.0).collect();
                let c0: Vec<f32> = (0..nr * mr).map(|i| ((i + rep) % 5) as f32 * 0.5).collect();
                let mut c_dispatch = c0.clone();
                dispatch.run_packed(kc, &a, &b, &mut c_dispatch).unwrap();
                let mut c_one_shot = c0.clone();
                simd.run_packed(kc, &a, &b, &mut c_one_shot).unwrap();
                assert_eq!(c_dispatch, c_one_shot, "kc={kc} rep={rep}: the chain is deterministic");
            }
        }
        assert_eq!(dispatch.memoised_proofs(), 2, "one proof per distinct (KC, lens) input");
    }
}

/// The x86_64 chain compiler: one monomorphic closure per superword op,
/// fused tiles for `VFmaLane` runs, AVX2/FMA intrinsics per lane shape.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps, _mm_fmadd_ps, _mm_loadu_ps,
        _mm_set1_ps, _mm_storeu_ps,
    };

    use super::{Node, StepFn};
    use crate::superword::{SAddr, VOp};
    use crate::tape::{Addr, TOp};

    #[derive(Default)]
    pub(super) struct BuildStats {
        pub(super) steps: usize,
        pub(super) fused_tiles: usize,
    }

    /// `lanes` FMAs `reg[dst+i] = reg[a+i] * bval + reg[dst+i]`, ascending:
    /// whole `__m256`s, then a `__m128` quarter, then `mul_add` scalar
    /// tails. Inside this `target_feature` context the scalar `mul_add`
    /// also lowers to a single `vfmadd` — the whole tier contracts.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA and both register runs in bounds (the superword
    /// construction proof).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn fma_run(regs: *mut f32, dst: usize, a: usize, bval: f32, lanes: usize) {
        let mut i = 0;
        if lanes >= 8 {
            let vb = _mm256_set1_ps(bval);
            while i + 8 <= lanes {
                let d = regs.add(dst + i);
                let va = _mm256_loadu_ps(regs.add(a + i));
                _mm256_storeu_ps(d, _mm256_fmadd_ps(va, vb, _mm256_loadu_ps(d)));
                i += 8;
            }
        }
        if i + 4 <= lanes {
            let d = regs.add(dst + i);
            let va = _mm_loadu_ps(regs.add(a + i));
            _mm_storeu_ps(d, _mm_fmadd_ps(va, _mm_set1_ps(bval), _mm_loadu_ps(d)));
            i += 4;
        }
        while i < lanes {
            let d = regs.add(dst + i);
            *d = (*regs.add(a + i)).mul_add(bval, *d);
            i += 1;
        }
    }

    /// The strict ascending-lane form, taken when the operand run overlaps
    /// the accumulator run (whole-register loads would read stale lanes).
    ///
    /// # Safety
    ///
    /// Requires FMA and both register runs in bounds.
    #[target_feature(enable = "fma")]
    unsafe fn fma_run_scalar(regs: *mut f32, dst: usize, a: usize, bval: f32, lanes: usize) {
        for i in 0..lanes {
            let d = regs.add(dst + i);
            *d = (*regs.add(a + i)).mul_add(bval, *d);
        }
    }

    /// A fused accumulator tile: `count` consecutive `VFmaLane` ops over
    /// one operand run, `reg[dst0 + g·lanes + i] += reg[a+i] * reg[b0+g]`.
    /// The operand run is loaded once and held across the whole tile —
    /// the inner-loop body of a laneq micro-kernel in three instructions
    /// per accumulator row.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA, all register runs in bounds, and the operand run
    /// disjoint from the accumulator span (checked at fuse time).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn fma_tile(regs: *mut f32, dst0: usize, a: usize, b0: usize, lanes: usize, count: usize) {
        if lanes == 8 {
            let va = _mm256_loadu_ps(regs.add(a));
            for g in 0..count {
                let d = regs.add(dst0 + g * 8);
                let vb = _mm256_set1_ps(*regs.add(b0 + g));
                _mm256_storeu_ps(d, _mm256_fmadd_ps(va, vb, _mm256_loadu_ps(d)));
            }
        } else {
            debug_assert_eq!(lanes, 4);
            let va = _mm_loadu_ps(regs.add(a));
            for g in 0..count {
                let d = regs.add(dst0 + g * 4);
                let vb = _mm_set1_ps(*regs.add(b0 + g));
                _mm_storeu_ps(d, _mm_fmadd_ps(va, vb, _mm_loadu_ps(d)));
            }
        }
    }

    /// Whether `[a, a + len)` and `[b, b + blen)` intersect.
    fn overlaps(a: usize, len: usize, b: usize, blen: usize) -> bool {
        a < b + blen && b < a + len
    }

    /// A register-file copy closure (`VLoad`/`VStore` are memcpys between
    /// a tensor and a lane-aligned register run; `copy_nonoverlapping`
    /// lowers to vector moves). `LOAD` selects the direction.
    fn copy_step<const LOAD: bool>(reg: usize, buf: usize, lanes: usize, addr: &SAddr) -> StepFn {
        // Specialise the hot single-loop-term address so the chain never
        // touches the general evaluator on the packed-operand walk.
        if let SAddr::Loop { base, slot, coeff } = *addr {
            let slot = slot as usize;
            Box::new(move |regs, tens, loops, _scalars| unsafe {
                let idx = (base + coeff * *loops.get_unchecked(slot)) as usize;
                let t = (*tens.get_unchecked(buf)).add(idx);
                if LOAD {
                    std::ptr::copy_nonoverlapping(t as *const f32, regs.add(reg), lanes);
                } else {
                    std::ptr::copy_nonoverlapping(regs.add(reg) as *const f32, t, lanes);
                }
            })
        } else {
            let addr = addr.clone();
            Box::new(move |regs, tens, loops, scalars| unsafe {
                let idx = addr.eval(loops, scalars) as usize;
                let t = (*tens.get_unchecked(buf)).add(idx);
                if LOAD {
                    std::ptr::copy_nonoverlapping(t as *const f32, regs.add(reg), lanes);
                } else {
                    std::ptr::copy_nonoverlapping(regs.add(reg) as *const f32, t, lanes);
                }
            })
        }
    }

    /// One `VFmaLane` op as a closure, vector form when the runs permit.
    fn fma_lane_step(dst: usize, a: usize, b: usize, lanes: usize) -> StepFn {
        if a != dst && overlaps(a, lanes, dst, lanes) {
            // Partial overlap: ascending lane order is semantic — keep it.
            Box::new(move |regs, _tens, _loops, _scalars| unsafe {
                fma_run_scalar(regs, dst, a, *regs.add(b), lanes);
            })
        } else {
            Box::new(move |regs, _tens, _loops, _scalars| unsafe {
                fma_run(regs, dst, a, *regs.add(b), lanes);
            })
        }
    }

    /// One `VFmaBcast` op: broadcast one tensor element, write the scratch
    /// register (the scalar sequence leaves it written), FMA the run.
    fn fma_bcast_step(
        dst: usize,
        a: usize,
        buf: usize,
        addr: &SAddr,
        scratch: usize,
        lanes: usize,
    ) -> StepFn {
        let addr = addr.clone();
        let plain_order = a == dst || !overlaps(a, lanes, dst, lanes);
        Box::new(move |regs, tens, loops, scalars| unsafe {
            let idx = addr.eval(loops, scalars) as usize;
            let bval = *(*tens.get_unchecked(buf)).add(idx);
            *regs.add(scratch) = bval;
            if plain_order {
                fma_run(regs, dst, a, bval, lanes);
            } else {
                fma_run_scalar(regs, dst, a, bval, lanes);
            }
        })
    }

    /// A scalar tape op as a closure. Scalar `Fma` contracts (`mul_add`)
    /// like the rest of the tier.
    fn scalar_step(op: &TOp) -> Option<StepFn> {
        let addr_eval = |addr: &Addr| {
            let addr = SAddr::from_addr(addr);
            move |loops: &[i64], scalars: &[i64]| addr.eval(loops, scalars)
        };
        Some(match op {
            TOp::ConstF { dst, val } => {
                let (dst, val) = (*dst as usize, *val);
                Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = val })
            }
            TOp::LoadT { dst, buf, addr } => {
                let (dst, buf, at) = (*dst as usize, *buf as usize, addr_eval(addr));
                Box::new(move |regs, tens, loops, scalars| unsafe {
                    let idx = at(loops, scalars) as usize;
                    *regs.add(dst) = *(*tens.get_unchecked(buf)).add(idx);
                })
            }
            TOp::StoreT { src, buf, addr } => {
                let (src, buf, at) = (*src as usize, *buf as usize, addr_eval(addr));
                Box::new(move |regs, tens, loops, scalars| unsafe {
                    let idx = at(loops, scalars) as usize;
                    *(*tens.get_unchecked(buf)).add(idx) = *regs.add(src);
                })
            }
            TOp::Mov { dst, src } => {
                let (dst, src) = (*dst as usize, *src as usize);
                Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = *regs.add(src) })
            }
            TOp::Add { dst, a, b } => {
                let (dst, a, b) = (*dst as usize, *a as usize, *b as usize);
                Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = *regs.add(a) + *regs.add(b) })
            }
            TOp::Sub { dst, a, b } => {
                let (dst, a, b) = (*dst as usize, *a as usize, *b as usize);
                Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = *regs.add(a) - *regs.add(b) })
            }
            TOp::Mul { dst, a, b } => {
                let (dst, a, b) = (*dst as usize, *a as usize, *b as usize);
                Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = *regs.add(a) * *regs.add(b) })
            }
            TOp::Div { dst, a, b } => {
                let (dst, a, b) = (*dst as usize, *a as usize, *b as usize);
                Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = *regs.add(a) / *regs.add(b) })
            }
            TOp::Neg { dst, src } => {
                let (dst, src) = (*dst as usize, *src as usize);
                Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) = -*regs.add(src) })
            }
            TOp::Fma { dst, a, b } => {
                let (dst, a, b) = (*dst as usize, *a as usize, *b as usize);
                Box::new(move |regs, _t, _l, _s| unsafe {
                    fma_run_scalar(regs, dst, a, *regs.add(b), 1);
                })
            }
            TOp::AddAssign { dst, src } => {
                let (dst, src) = (*dst as usize, *src as usize);
                Box::new(move |regs, _t, _l, _s| unsafe { *regs.add(dst) += *regs.add(src) })
            }
            TOp::CastI { dst, value } => {
                let (dst, at) = (*dst as usize, addr_eval(value));
                Box::new(move |regs, _tens, loops, scalars| unsafe {
                    *regs.add(dst) = at(loops, scalars) as f32;
                })
            }
            TOp::Round { reg } => {
                let reg = *reg as usize;
                Box::new(move |regs, _t, _l, _s| unsafe {
                    let r = regs.add(reg);
                    *r = exo_ir::types::f16_round(f64::from(*r)) as f32;
                })
            }
            TOp::Zero { base, len } => {
                let (base, len) = (*base as usize, *len as usize);
                Box::new(move |regs, _t, _l, _s| unsafe {
                    std::ptr::write_bytes(regs.add(base), 0, len);
                })
            }
            // Loop markers are lifted to VOp level by the superword pass;
            // one surviving here means the source was not validated.
            TOp::LoopBegin { .. } | TOp::LoopEnd { .. } => return None,
        })
    }

    /// Pre-resolved parameters of a fused accumulator tile.
    #[derive(Clone, Copy)]
    struct Tile {
        dst: usize,
        a: usize,
        b: usize,
        lanes: usize,
        count: usize,
    }

    /// Recognises a run of `VFmaLane` ops starting at `ops[i]` that forms
    /// one tile: identical lane count (8 or 4), one shared operand run,
    /// broadcast registers ascending by one, accumulators ascending by
    /// `lanes`. Returns the tile and how many ops it spans.
    fn match_tile(ops: &[VOp], i: usize) -> Option<(Tile, usize)> {
        let &VOp::VFmaLane { dst, a, b, lanes } = ops.get(i)? else { return None };
        if lanes != 8 && lanes != 4 {
            return None;
        }
        let mut count = 1usize;
        while let Some(VOp::VFmaLane { dst: d2, a: a2, b: b2, lanes: l2 }) = ops.get(i + count) {
            if *l2 == lanes && *a2 == a && *b2 == b + count as u32 && *d2 == dst + count as u32 * lanes {
                count += 1;
            } else {
                break;
            }
        }
        let tile = Tile { dst: dst as usize, a: a as usize, b: b as usize, lanes: lanes as usize, count };
        // Hoisting the operand load across the tile requires the operand
        // run (and it alone — broadcast registers are re-read per row) to
        // stay disjoint from every accumulator row written before it is
        // read again.
        if count < 2 || overlaps(tile.a, tile.lanes, tile.dst, count * tile.lanes) {
            return None;
        }
        Some((tile, count))
    }

    /// One pre-resolved operand-stage `VLoad` of a fused micro-iteration:
    /// the address is the hot single-loop-term shape, fully unpacked.
    #[derive(Clone, Copy)]
    struct StageLoad {
        reg: usize,
        buf: usize,
        lanes: usize,
        base: i64,
        slot: usize,
        coeff: i64,
    }

    /// The monomorphic fused micro-iteration: `N` stage loads then the
    /// tile, one indirect call per `k` iteration, everything unrolled.
    fn fused_iteration<const N: usize>(loads: [StageLoad; N], tile: Tile) -> StepFn {
        Box::new(move |regs, tens, loops, _scalars| unsafe {
            for ld in &loads {
                let idx = (ld.base + ld.coeff * *loops.get_unchecked(ld.slot)) as usize;
                let src = (*tens.get_unchecked(ld.buf)).add(idx);
                std::ptr::copy_nonoverlapping(src as *const f32, regs.add(ld.reg), ld.lanes);
            }
            fma_tile(regs, tile.dst, tile.a, tile.b, tile.lanes, tile.count);
        })
    }

    /// Fuses the dominant inner-loop body of a laneq micro-kernel —
    /// operand stage loads followed by one accumulator tile — into a
    /// single closure, so one `k` iteration costs one indirect call
    /// instead of one per op. Op order inside the closure is exactly the
    /// tape's: every load in sequence, then the tile rows ascending.
    /// Returns the closure and how many ops it consumed.
    fn try_fuse_iteration(ops: &[VOp], i: usize) -> Option<(StepFn, usize)> {
        let mut loads = Vec::new();
        let mut j = i;
        while let Some(VOp::VLoad { dst, buf, addr, lanes }) = ops.get(j) {
            // Only the hot loop-term address shape fuses; anything else
            // keeps its own specialised closure.
            let SAddr::Loop { base, slot, coeff } = *addr else { return None };
            loads.push(StageLoad {
                reg: *dst as usize,
                buf: *buf as usize,
                lanes: *lanes as usize,
                base,
                slot: slot as usize,
                coeff,
            });
            j += 1;
        }
        let (tile, tile_ops) = match_tile(ops, j)?;
        let used = (j - i) + tile_ops;
        let step = match *loads.as_slice() {
            [] => return None,
            [l0] => fused_iteration([l0], tile),
            [l0, l1] => fused_iteration([l0, l1], tile),
            [l0, l1, l2] => fused_iteration([l0, l1, l2], tile),
            _ => return None,
        };
        Some((step, used))
    }

    /// A lone tile (no leading loads) as its own closure.
    fn try_fuse_tile(ops: &[VOp], i: usize) -> Option<(StepFn, usize)> {
        let (tile, used) = match_tile(ops, i)?;
        let step: StepFn = Box::new(move |regs, _tens, _loops, _scalars| unsafe {
            fma_tile(regs, tile.dst, tile.a, tile.b, tile.lanes, tile.count);
        });
        Some((step, used))
    }

    /// Compiles a superword op slice into a node chain, recursing into
    /// loop bodies. Returns `None` only for structurally invalid input
    /// (which `to_superword` never produces).
    pub(super) fn build_nodes(ops: &[VOp], stats: &mut BuildStats) -> Option<Vec<Node>> {
        build_nodes_at(ops, 0, stats)
    }

    /// The recursion worker: `base` is the index of `ops[0]` in the
    /// original op vec, because every `LoopBegin`'s `end` jump target is
    /// absolute in that vec and must be rebased before indexing the
    /// subslice (nested dynamic loops would otherwise miss their
    /// `LoopEnd` by the accumulated offset and decline compilation).
    fn build_nodes_at(ops: &[VOp], base: usize, stats: &mut BuildStats) -> Option<Vec<Node>> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < ops.len() {
            match &ops[i] {
                VOp::LoopBegin { slot, lo, hi, end } => {
                    let end = (*end as usize).checked_sub(base)?;
                    // Body spans (i + 1)..(end - 1); ops[end - 1] is the
                    // matching LoopEnd.
                    if end < 2 || end > ops.len() || !matches!(ops[end - 1], VOp::LoopEnd { .. }) {
                        return None;
                    }
                    let mut body = build_nodes_at(&ops[i + 1..end - 1], base + i + 1, stats)?;
                    let (slot, lo, hi) = (*slot as usize, lo.clone(), hi.clone());
                    if body.len() == 1 && matches!(body[0], Node::Step(_)) {
                        let Some(Node::Step(step)) = body.pop() else { unreachable!() };
                        out.push(Node::LoopStep { slot, lo, hi, step });
                    } else {
                        out.push(Node::Loop { slot, lo, hi, body });
                    }
                    i = end;
                }
                VOp::LoopEnd { .. } => return None,
                VOp::VFmaLane { dst, a, b, lanes } => {
                    if let Some((step, used)) = try_fuse_tile(ops, i) {
                        stats.fused_tiles += 1;
                        stats.steps += 1;
                        out.push(Node::Step(step));
                        i += used;
                    } else {
                        stats.steps += 1;
                        out.push(Node::Step(fma_lane_step(
                            *dst as usize,
                            *a as usize,
                            *b as usize,
                            *lanes as usize,
                        )));
                        i += 1;
                    }
                }
                VOp::VLoad { dst, buf, addr, lanes } => {
                    if let Some((step, used)) = try_fuse_iteration(ops, i) {
                        stats.fused_tiles += 1;
                        stats.steps += 1;
                        out.push(Node::Step(step));
                        i += used;
                    } else {
                        stats.steps += 1;
                        out.push(Node::Step(copy_step::<true>(
                            *dst as usize,
                            *buf as usize,
                            *lanes as usize,
                            addr,
                        )));
                        i += 1;
                    }
                }
                VOp::VStore { src, buf, addr, lanes } => {
                    stats.steps += 1;
                    out.push(Node::Step(copy_step::<false>(
                        *src as usize,
                        *buf as usize,
                        *lanes as usize,
                        addr,
                    )));
                    i += 1;
                }
                VOp::VFmaBcast { dst, a, buf, addr, scratch, lanes } => {
                    stats.steps += 1;
                    out.push(Node::Step(fma_bcast_step(
                        *dst as usize,
                        *a as usize,
                        *buf as usize,
                        addr,
                        *scratch as usize,
                        *lanes as usize,
                    )));
                    i += 1;
                }
                VOp::Scalar(op) => {
                    stats.steps += 1;
                    out.push(Node::Step(scalar_step(op)?));
                    i += 1;
                }
            }
        }
        Some(out)
    }
}
