//! Tape-compiled execution: a flat, register-allocated lowering of a
//! [`CompiledKernel`].
//!
//! The tree-walking interpreter in [`crate::exec`] re-evaluates boxed
//! expression nodes, re-linearises addresses, and re-allocates locals on
//! every statement it touches — fine for validation, orders of magnitude off
//! for a hot GEMM inner loop. `to_tape` compiles the same kernel once more,
//! this time into a *tape*: a linear array of ops over a flat `f32` register
//! file.
//!
//! * Constant-trip loops (the register-tile loops of a micro-kernel) are
//!   fully unrolled at tape-build time.
//! * Local buffers with constant extents become contiguous runs of the
//!   register file, so the staged `C` tile and the `Ac`/`Bc` vector stages
//!   live in "registers", exactly as the generated C would place them.
//! * Every memory access is reduced to a precomputed affine address
//!   `base + Σ coeff·loop + Σ coeff·scalar` over the few loops that stay
//!   dynamic (the `KC` loop) — no expression trees survive to run time.
//! * Remaining loops (`for k in 0..KC`) are tape-level jump pairs.
//!
//! The tape executes the *identical* sequence of f32 operations as the
//! interpreter (same order, same mul-then-add rounding, same f16 rounding
//! points), so results are bit-for-bit equal — the differential suite
//! asserts this. Constructs the tape cannot register-allocate (dynamically
//! sized locals, data-dependent branches, non-affine addresses) fail
//! `to_tape` with [`CodegenError::Unsupported`]; callers keep the
//! interpreter as the fallback.

use std::collections::HashMap;

use crate::error::{CodegenError, Result};
use crate::exec::{BufSlot, CompiledKernel, IExpr, Op, ParamKind, RunArg, VExpr};

/// Loops with a constant trip count at or below this are unrolled; longer
/// ones stay dynamic loops on the tape.
const UNROLL_CAP: i64 = 4096;

/// Hard ceiling on tape length, so pathological inputs fail instead of
/// exhausting memory during unrolling.
const MAX_TAPE_OPS: usize = 1 << 20;

/// Marker bit distinguishing statement-scoped temporaries from persistent
/// registers while the tape is being built; cleared by the final remap.
const TEMP_FLAG: u32 = 1 << 31;

/// Vector lanes the register file is aligned to: every local buffer starts
/// on a multiple of this, so the whole-vector ops of the superword backend
/// ([`crate::superword`]) always address lane-aligned register runs.
pub(crate) const LANE_ALIGN: u32 = 8;

/// A term of an affine address: one dynamic-loop counter or one scalar
/// parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Term {
    Loop(u16),
    Scalar(u16),
}

/// Affine integer form `base + Σ coeff·term`, the only shape of index
/// arithmetic that survives onto the tape.
#[derive(Debug, Clone, PartialEq)]
struct Affine {
    base: i64,
    terms: Vec<(Term, i64)>,
}

impl Affine {
    fn constant(v: i64) -> Self {
        Affine { base: v, terms: Vec::new() }
    }

    fn term(t: Term) -> Self {
        Affine { base: 0, terms: vec![(t, 1)] }
    }

    fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.base)
    }

    fn add(mut self, other: &Affine) -> Self {
        self.base += other.base;
        for &(t, c) in &other.terms {
            self.add_term(t, c);
        }
        self
    }

    fn add_term(&mut self, t: Term, c: i64) {
        match self.terms.iter_mut().find(|(existing, _)| *existing == t) {
            Some((_, coeff)) => *coeff += c,
            None => self.terms.push((t, c)),
        }
        self.terms.retain(|&(_, coeff)| coeff != 0);
    }

    fn scale(mut self, f: i64) -> Self {
        self.base *= f;
        for (_, c) in &mut self.terms {
            *c *= f;
        }
        self.terms.retain(|&(_, coeff)| coeff != 0);
        self
    }

    fn into_addr(self) -> Addr {
        Addr { base: self.base, terms: self.terms.into_boxed_slice() }
    }
}

/// A precomputed affine address, evaluated per use with one multiply-add per
/// term (typically zero or one term in a micro-kernel's hot loop).
#[derive(Debug, Clone)]
pub(crate) struct Addr {
    pub(crate) base: i64,
    pub(crate) terms: Box<[(Term, i64)]>,
}

impl Addr {
    #[inline]
    pub(crate) fn eval(&self, loops: &[i64], scalars: &[i64]) -> i64 {
        let mut v = self.base;
        for &(t, c) in self.terms.iter() {
            v += c * match t {
                Term::Loop(i) => loops[i as usize],
                Term::Scalar(i) => scalars[i as usize],
            };
        }
        v
    }
}

/// One tape operation. Register fields index the flat `f32` register file.
#[derive(Debug, Clone)]
pub(crate) enum TOp {
    /// `reg[dst] = val`
    ConstF { dst: u32, val: f32 },
    /// `reg[dst] = tensor[buf][addr]`
    LoadT { dst: u32, buf: u16, addr: Addr },
    /// `tensor[buf][addr] = reg[src]`
    StoreT { src: u32, buf: u16, addr: Addr },
    /// `reg[dst] = reg[src]`
    Mov { dst: u32, src: u32 },
    /// `reg[dst] = reg[a] + reg[b]`
    Add { dst: u32, a: u32, b: u32 },
    /// `reg[dst] = reg[a] - reg[b]`
    Sub { dst: u32, a: u32, b: u32 },
    /// `reg[dst] = reg[a] * reg[b]`
    Mul { dst: u32, a: u32, b: u32 },
    /// `reg[dst] = reg[a] / reg[b]`
    Div { dst: u32, a: u32, b: u32 },
    /// `reg[dst] = -reg[src]`
    Neg { dst: u32, src: u32 },
    /// `reg[dst] += reg[a] * reg[b]` — the hot op (mul then add, unfused,
    /// matching the interpreter's rounding).
    Fma { dst: u32, a: u32, b: u32 },
    /// `reg[dst] += reg[src]`
    AddAssign { dst: u32, src: u32 },
    /// `reg[dst] = addr as f32` (integer affine value cast to float)
    CastI { dst: u32, value: Addr },
    /// Round `reg[reg]` to f16 precision in place.
    Round { reg: u32 },
    /// Zero `len` registers starting at `base` (local-buffer allocation).
    Zero { base: u32, len: u32 },
    /// Enter a dynamic loop: evaluate bounds, jump to `end` if empty.
    LoopBegin { slot: u16, lo: Addr, hi: Addr, end: u32 },
    /// Bottom of a dynamic loop: bump the counter, jump back while it holds.
    LoopEnd { slot: u16, begin: u32 },
}

/// A borrowed tensor argument for [`TapeKernel::run_views`]: read-only
/// operands avoid the copies the [`RunArg`] interface forces on callers.
#[derive(Debug)]
pub enum TensorView<'a> {
    /// A tensor the kernel only reads.
    Ro(&'a [f32]),
    /// A tensor the kernel may write.
    Rw(&'a mut [f32]),
}

impl TensorView<'_> {
    #[inline]
    pub(crate) fn as_slice(&self) -> &[f32] {
        match self {
            TensorView::Ro(s) => s,
            TensorView::Rw(s) => s,
        }
    }
}

/// A kernel compiled to a flat tape of register ops.
///
/// Obtained from [`CompiledKernel::to_tape`]. Runs the same computation as
/// the interpreter bit-for-bit, typically one to two orders of magnitude
/// faster.
#[derive(Debug, Clone)]
pub struct TapeKernel {
    /// Name of the source procedure.
    pub name: String,
    pub(crate) params: Vec<(String, ParamKind)>,
    pub(crate) ops: Vec<TOp>,
    pub(crate) n_regs: usize,
    pub(crate) n_dyn_loops: usize,
    /// Per tensor-parameter flag: does any tape op store to it?
    pub(crate) tensor_written: Vec<bool>,
}

impl TapeKernel {
    /// Number of parameters (scalar and tensor) the kernel expects.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Parameter names in signature order.
    pub fn param_names(&self) -> Vec<&str> {
        self.params.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of ops on the tape.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty (a kernel with no statements).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Size of the flat `f32` register file.
    pub fn register_count(&self) -> usize {
        self.n_regs
    }

    /// Whether the tape stores to tensor parameter `idx` (counting tensor
    /// parameters only, in signature order).
    pub fn writes_tensor(&self, idx: usize) -> bool {
        self.tensor_written.get(idx).copied().unwrap_or(false)
    }

    /// Runs the tape through the same argument interface as
    /// [`CompiledKernel::run`].
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::BadArguments`] on an argument-count or kind
    /// mismatch and [`CodegenError::OutOfBounds`] if an access leaves its
    /// buffer.
    pub fn run(&self, args: &mut [RunArg<'_>]) -> Result<()> {
        if args.len() != self.params.len() {
            return Err(CodegenError::BadArguments {
                reason: format!(
                    "tape kernel `{}` expects {} arguments, got {}",
                    self.name,
                    self.params.len(),
                    args.len()
                ),
            });
        }
        let mut scalars = Vec::new();
        let mut tensors: Vec<TensorView<'_>> = Vec::new();
        for ((name, kind), arg) in self.params.iter().zip(args.iter_mut()) {
            match (kind, arg) {
                (ParamKind::Scalar, RunArg::Size(v)) => scalars.push(*v),
                (ParamKind::Tensor, RunArg::Tensor(t)) => tensors.push(TensorView::Rw(t)),
                _ => {
                    return Err(CodegenError::BadArguments {
                        reason: format!("argument `{name}` has the wrong kind"),
                    })
                }
            }
        }
        self.exec(&scalars, &mut tensors)
    }

    /// Runs the tape over borrowed tensor views, avoiding the defensive
    /// copies [`RunArg`] forces for read-only operands.
    ///
    /// `scalars` and `tensors` are matched to the scalar and tensor
    /// parameters in signature order.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::BadArguments`] if the counts do not match or
    /// a read-only view is passed for a tensor the tape writes, and
    /// [`CodegenError::OutOfBounds`] for accesses that leave a buffer.
    pub fn run_views(&self, scalars: &[i64], tensors: &mut [TensorView<'_>]) -> Result<()> {
        let n_scalars = self.params.iter().filter(|(_, k)| *k == ParamKind::Scalar).count();
        let n_tensors = self.params.len() - n_scalars;
        if scalars.len() != n_scalars || tensors.len() != n_tensors {
            return Err(CodegenError::BadArguments {
                reason: format!(
                    "tape kernel `{}` expects {n_scalars} scalars and {n_tensors} tensors, got {} and {}",
                    self.name,
                    scalars.len(),
                    tensors.len()
                ),
            });
        }
        for (i, view) in tensors.iter().enumerate() {
            if matches!(view, TensorView::Ro(_)) && self.tensor_written[i] {
                return Err(CodegenError::BadArguments {
                    reason: format!(
                        "tape kernel `{}` writes tensor parameter {i}, which was passed read-only",
                        self.name
                    ),
                });
            }
        }
        self.exec(scalars, tensors)
    }

    /// Runs a packed micro-kernel signature `(KC, Ac, Bc, C)`:
    /// `c[nr][mr] += ac[kc][mr] * bc[kc][nr]` without copying the operands.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::BadArguments`] if the kernel does not have
    /// the one-scalar/three-tensor packed signature or writes its packed
    /// operands, and propagates execution errors.
    pub fn run_packed(&self, kc: usize, ac: &[f32], bc: &[f32], c: &mut [f32]) -> Result<()> {
        let n_scalars = self.params.iter().filter(|(_, k)| *k == ParamKind::Scalar).count();
        if n_scalars != 1 || self.params.len() != 4 {
            return Err(CodegenError::BadArguments {
                reason: format!(
                    "tape kernel `{}` does not have the packed (KC, Ac, Bc, C) signature",
                    self.name
                ),
            });
        }
        self.run_views(&[kc as i64], &mut [TensorView::Ro(ac), TensorView::Ro(bc), TensorView::Rw(c)])
    }

    fn exec(&self, scalars: &[i64], tensors: &mut [TensorView<'_>]) -> Result<()> {
        let mut regs = vec![0.0f32; self.n_regs];
        let mut loops = vec![0i64; self.n_dyn_loops];
        let mut bounds = vec![0i64; self.n_dyn_loops];
        let ops = &self.ops;
        let mut pc = 0usize;
        while pc < ops.len() {
            match &ops[pc] {
                TOp::Fma { dst, a, b } => {
                    let v = regs[*a as usize] * regs[*b as usize];
                    regs[*dst as usize] += v;
                }
                TOp::LoadT { dst, buf, addr } => {
                    let idx = addr.eval(&loops, scalars);
                    let slice = tensors[*buf as usize].as_slice();
                    regs[*dst as usize] = *slice.get(usize::try_from(idx).unwrap_or(usize::MAX)).ok_or(
                        CodegenError::OutOfBounds {
                            buf: format!("Arg({buf})"),
                            index: idx,
                            len: slice.len(),
                        },
                    )?;
                }
                TOp::StoreT { src, buf, addr } => {
                    let idx = addr.eval(&loops, scalars);
                    let value = regs[*src as usize];
                    match &mut tensors[*buf as usize] {
                        TensorView::Rw(slice) => {
                            let len = slice.len();
                            *slice.get_mut(usize::try_from(idx).unwrap_or(usize::MAX)).ok_or(
                                CodegenError::OutOfBounds { buf: format!("Arg({buf})"), index: idx, len },
                            )? = value;
                        }
                        TensorView::Ro(_) => {
                            return Err(CodegenError::BadArguments {
                                reason: format!("store to read-only tensor parameter {buf}"),
                            })
                        }
                    }
                }
                TOp::ConstF { dst, val } => regs[*dst as usize] = *val,
                TOp::Mov { dst, src } => regs[*dst as usize] = regs[*src as usize],
                TOp::Add { dst, a, b } => {
                    let v = regs[*a as usize] + regs[*b as usize];
                    regs[*dst as usize] = v;
                }
                TOp::Sub { dst, a, b } => {
                    let v = regs[*a as usize] - regs[*b as usize];
                    regs[*dst as usize] = v;
                }
                TOp::Mul { dst, a, b } => {
                    let v = regs[*a as usize] * regs[*b as usize];
                    regs[*dst as usize] = v;
                }
                TOp::Div { dst, a, b } => {
                    let v = regs[*a as usize] / regs[*b as usize];
                    regs[*dst as usize] = v;
                }
                TOp::Neg { dst, src } => regs[*dst as usize] = -regs[*src as usize],
                TOp::AddAssign { dst, src } => {
                    let v = regs[*src as usize];
                    regs[*dst as usize] += v;
                }
                TOp::CastI { dst, value } => regs[*dst as usize] = value.eval(&loops, scalars) as f32,
                TOp::Round { reg } => {
                    let r = &mut regs[*reg as usize];
                    *r = exo_ir::types::f16_round(*r as f64) as f32;
                }
                TOp::Zero { base, len } => {
                    regs[*base as usize..(*base + *len) as usize].fill(0.0);
                }
                TOp::LoopBegin { slot, lo, hi, end } => {
                    let l = lo.eval(&loops, scalars);
                    let h = hi.eval(&loops, scalars);
                    if l >= h {
                        pc = *end as usize;
                        continue;
                    }
                    loops[*slot as usize] = l;
                    bounds[*slot as usize] = h;
                }
                TOp::LoopEnd { slot, begin } => {
                    let s = *slot as usize;
                    loops[s] += 1;
                    if loops[s] < bounds[s] {
                        pc = *begin as usize + 1;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        Ok(())
    }
}

impl CompiledKernel {
    /// Compiles this kernel to a [`TapeKernel`].
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::Unsupported`] for constructs the tape cannot
    /// register-allocate: dynamically sized locals, dynamic indices into
    /// locals, data-dependent branches, and non-affine index arithmetic.
    /// Callers should fall back to [`CompiledKernel::run`] in that case.
    pub fn to_tape(&self) -> Result<TapeKernel> {
        let mut b = TapeBuilder {
            ops: Vec::new(),
            loop_bind: HashMap::new(),
            locals: Vec::new(),
            n_dyn: 0,
            persist_next: 0,
            temp_next: 0,
            temp_high: 0,
        };
        b.block(&self.body)?;
        b.finish(self)
    }
}

#[derive(Debug, Clone, Copy)]
enum LoopBind {
    Const(i64),
    Dyn(u16),
}

#[derive(Debug, Clone, Copy)]
struct LocalBind {
    base: u32,
    len: u32,
}

/// Where a compiled access lands: a register (constant-indexed local) or a
/// tensor memory location.
enum Target {
    Reg(u32),
    Mem { buf: u16, addr: Addr },
}

struct TapeBuilder {
    ops: Vec<TOp>,
    loop_bind: HashMap<u16, LoopBind>,
    locals: Vec<Option<LocalBind>>,
    n_dyn: usize,
    persist_next: u32,
    temp_next: u32,
    temp_high: u32,
}

fn unsupported(what: impl Into<String>) -> CodegenError {
    CodegenError::Unsupported { backend: "tape", what: what.into() }
}

impl TapeBuilder {
    fn push(&mut self, op: TOp) -> Result<()> {
        if self.ops.len() >= MAX_TAPE_OPS {
            return Err(unsupported(format!("tape exceeds {MAX_TAPE_OPS} ops")));
        }
        self.ops.push(op);
        Ok(())
    }

    fn persist_alloc(&mut self, len: u32) -> u32 {
        // Lane-align every local so the superword backend's whole-vector ops
        // address lane-aligned register runs; the padding registers are never
        // read or written.
        let base = self.persist_next.next_multiple_of(LANE_ALIGN);
        self.persist_next = base + len;
        base
    }

    fn temp(&mut self) -> u32 {
        let t = self.temp_next;
        self.temp_next += 1;
        self.temp_high = self.temp_high.max(self.temp_next);
        TEMP_FLAG | t
    }

    fn temp_reset(&mut self) {
        self.temp_next = 0;
    }

    /// Lowers an index expression to affine form under the current loop
    /// bindings.
    fn affine(&self, e: &IExpr) -> Result<Affine> {
        Ok(match e {
            IExpr::Const(v) => Affine::constant(*v),
            IExpr::Loop(i) => match self.loop_bind.get(i) {
                Some(LoopBind::Const(c)) => Affine::constant(*c),
                Some(LoopBind::Dyn(d)) => Affine::term(Term::Loop(*d)),
                None => return Err(unsupported("loop variable used outside its loop")),
            },
            IExpr::Scalar(s) => Affine::term(Term::Scalar(*s)),
            IExpr::Add(a, b) => self.affine(a)?.add(&self.affine(b)?),
            IExpr::Sub(a, b) => self.affine(a)?.add(&self.affine(b)?.scale(-1)),
            IExpr::Mul(a, b) => {
                let (l, r) = (self.affine(a)?, self.affine(b)?);
                if let Some(c) = l.as_const() {
                    r.scale(c)
                } else if let Some(c) = r.as_const() {
                    l.scale(c)
                } else {
                    return Err(unsupported("product of two non-constant indices"));
                }
            }
            // Division and modulo mirror the interpreter exactly, including
            // its divide-by-zero convention, but only for fully constant
            // operands — anything else is not affine.
            IExpr::Div(a, b) => {
                let (l, r) = (self.affine(a)?.as_const(), self.affine(b)?.as_const());
                match (l, r) {
                    (Some(x), Some(d)) => Affine::constant(if d == 0 { 0 } else { x.div_euclid(d) }),
                    _ => return Err(unsupported("non-constant integer division")),
                }
            }
            IExpr::Mod(a, b) => {
                let (l, r) = (self.affine(a)?.as_const(), self.affine(b)?.as_const());
                match (l, r) {
                    (Some(x), Some(d)) => Affine::constant(if d == 0 { 0 } else { x.rem_euclid(d) }),
                    _ => return Err(unsupported("non-constant integer modulo")),
                }
            }
            IExpr::Neg(a) => self.affine(a)?.scale(-1),
        })
    }

    /// Resolves a buffer access to a register (constant-indexed local) or a
    /// tensor address.
    fn resolve(&self, buf: &BufSlot, flat: &IExpr) -> Result<Target> {
        let a = self.affine(flat)?;
        match buf {
            BufSlot::Arg(i) => Ok(Target::Mem { buf: *i, addr: a.into_addr() }),
            BufSlot::Local(i) => {
                let bind = self
                    .locals
                    .get(*i as usize)
                    .copied()
                    .flatten()
                    .ok_or_else(|| unsupported("local buffer used before allocation"))?;
                let off = a
                    .as_const()
                    .ok_or_else(|| unsupported("dynamic index into a register-allocated local"))?;
                if off < 0 || off >= bind.len as i64 {
                    return Err(CodegenError::OutOfBounds {
                        buf: format!("Local({i})"),
                        index: off,
                        len: bind.len as usize,
                    });
                }
                Ok(Target::Reg(bind.base + off as u32))
            }
        }
    }

    /// Compiles a value expression, returning the register holding it and
    /// whether that register is a fresh temporary (false = a borrowed
    /// persistent local register that must not be clobbered).
    fn vexpr(&mut self, e: &VExpr) -> Result<(u32, bool)> {
        match e {
            VExpr::Load { buf, flat } => {
                if let Target::Reg(r) = self.resolve(buf, flat)? {
                    return Ok((r, false));
                }
                let t = self.temp();
                self.vexpr_into(t, e)?;
                Ok((t, true))
            }
            _ => {
                let t = self.temp();
                self.vexpr_into(t, e)?;
                Ok((t, true))
            }
        }
    }

    /// Compiles a value expression so that its final op writes `dst`.
    fn vexpr_into(&mut self, dst: u32, e: &VExpr) -> Result<()> {
        match e {
            VExpr::Const(v) => self.push(TOp::ConstF { dst, val: *v }),
            VExpr::Int(i) => {
                let a = self.affine(i)?;
                match a.as_const() {
                    Some(c) => self.push(TOp::ConstF { dst, val: c as f32 }),
                    None => self.push(TOp::CastI { dst, value: a.into_addr() }),
                }
            }
            VExpr::Load { buf, flat } => match self.resolve(buf, flat)? {
                Target::Reg(r) => {
                    if r == dst {
                        Ok(())
                    } else {
                        self.push(TOp::Mov { dst, src: r })
                    }
                }
                Target::Mem { buf, addr } => self.push(TOp::LoadT { dst, buf, addr }),
            },
            VExpr::Add(a, b) => {
                let (ra, _) = self.vexpr(a)?;
                let (rb, _) = self.vexpr(b)?;
                self.push(TOp::Add { dst, a: ra, b: rb })
            }
            VExpr::Sub(a, b) => {
                let (ra, _) = self.vexpr(a)?;
                let (rb, _) = self.vexpr(b)?;
                self.push(TOp::Sub { dst, a: ra, b: rb })
            }
            VExpr::Mul(a, b) => {
                let (ra, _) = self.vexpr(a)?;
                let (rb, _) = self.vexpr(b)?;
                self.push(TOp::Mul { dst, a: ra, b: rb })
            }
            VExpr::Div(a, b) => {
                let (ra, _) = self.vexpr(a)?;
                let (rb, _) = self.vexpr(b)?;
                self.push(TOp::Div { dst, a: ra, b: rb })
            }
            VExpr::Neg(a) => {
                let (ra, _) = self.vexpr(a)?;
                self.push(TOp::Neg { dst, src: ra })
            }
        }
    }

    fn block(&mut self, ops: &[Op]) -> Result<()> {
        for op in ops {
            self.stmt(op)?;
        }
        Ok(())
    }

    fn stmt(&mut self, op: &Op) -> Result<()> {
        match op {
            Op::AllocLocal { slot, len } => {
                let len = self
                    .affine(len)?
                    .as_const()
                    .ok_or_else(|| unsupported("dynamically sized local buffer"))?
                    .max(1);
                if len > UNROLL_CAP * 16 {
                    return Err(unsupported(format!("local buffer of {len} registers")));
                }
                let base = self.persist_alloc(len as u32);
                let slot = *slot as usize;
                if self.locals.len() <= slot {
                    self.locals.resize(slot + 1, None);
                }
                self.locals[slot] = Some(LocalBind { base, len: len as u32 });
                self.push(TOp::Zero { base, len: len as u32 })
            }
            Op::Assign { buf, flat, rhs, f16 } => {
                self.temp_reset();
                match self.resolve(buf, flat)? {
                    Target::Reg(r) => {
                        self.vexpr_into(r, rhs)?;
                        if *f16 {
                            self.push(TOp::Round { reg: r })?;
                        }
                        Ok(())
                    }
                    Target::Mem { buf, addr } => {
                        let (src, owned) = self.vexpr(rhs)?;
                        let src = if *f16 {
                            // Round in a scratch register so a borrowed
                            // local is not corrupted.
                            let r = if owned {
                                src
                            } else {
                                let t = self.temp();
                                self.push(TOp::Mov { dst: t, src })?;
                                t
                            };
                            self.push(TOp::Round { reg: r })?;
                            r
                        } else {
                            src
                        };
                        self.push(TOp::StoreT { src, buf, addr })
                    }
                }
            }
            Op::Reduce { buf, flat, rhs, f16 } => {
                self.temp_reset();
                match self.resolve(buf, flat)? {
                    Target::Reg(r) => {
                        if !*f16 {
                            if let VExpr::Mul(a, b) = rhs {
                                let (ra, _) = self.vexpr(a)?;
                                let (rb, _) = self.vexpr(b)?;
                                return self.push(TOp::Fma { dst: r, a: ra, b: rb });
                            }
                        }
                        let (v, _) = self.vexpr(rhs)?;
                        self.push(TOp::AddAssign { dst: r, src: v })?;
                        if *f16 {
                            self.push(TOp::Round { reg: r })?;
                        }
                        Ok(())
                    }
                    Target::Mem { buf, addr } => {
                        let (v, _) = self.vexpr(rhs)?;
                        let t = self.temp();
                        self.push(TOp::LoadT { dst: t, buf, addr: addr.clone() })?;
                        self.push(TOp::Add { dst: t, a: t, b: v })?;
                        if *f16 {
                            self.push(TOp::Round { reg: t })?;
                        }
                        self.push(TOp::StoreT { src: t, buf, addr })
                    }
                }
            }
            Op::For { var, lo, hi, body } => {
                let lo_a = self.affine(lo)?;
                let hi_a = self.affine(hi)?;
                if let (Some(l), Some(h)) = (lo_a.as_const(), hi_a.as_const()) {
                    if h - l <= UNROLL_CAP {
                        let saved = self.loop_bind.get(var).copied();
                        for i in l..h {
                            self.loop_bind.insert(*var, LoopBind::Const(i));
                            self.block(body)?;
                        }
                        match saved {
                            Some(bind) => self.loop_bind.insert(*var, bind),
                            None => self.loop_bind.remove(var),
                        };
                        return Ok(());
                    }
                }
                // Dynamic loop (or a constant loop too long to unroll).
                if self.n_dyn >= u16::MAX as usize {
                    return Err(unsupported("too many dynamic loops"));
                }
                let slot = self.n_dyn as u16;
                self.n_dyn += 1;
                let saved = self.loop_bind.insert(*var, LoopBind::Dyn(slot));
                let begin = self.ops.len();
                self.push(TOp::LoopBegin { slot, lo: lo_a.into_addr(), hi: hi_a.into_addr(), end: 0 })?;
                self.block(body)?;
                self.push(TOp::LoopEnd { slot, begin: begin as u32 })?;
                let end = self.ops.len() as u32;
                if let TOp::LoopBegin { end: e, .. } = &mut self.ops[begin] {
                    *e = end;
                }
                match saved {
                    Some(bind) => self.loop_bind.insert(*var, bind),
                    None => self.loop_bind.remove(var),
                };
                Ok(())
            }
            Op::If { lhs, op, rhs, then_body, else_body } => {
                let l = self.affine(lhs)?.as_const();
                let r = self.affine(rhs)?.as_const();
                match (l, r) {
                    (Some(a), Some(b)) => {
                        if op.eval(a, b) {
                            self.block(then_body)
                        } else {
                            self.block(else_body)
                        }
                    }
                    _ => Err(unsupported("data-dependent branch")),
                }
            }
        }
    }

    fn finish(mut self, kernel: &CompiledKernel) -> Result<TapeKernel> {
        // Temporaries were numbered in their own space during the build;
        // place them after the persistent (local) registers.
        let persist = self.persist_next;
        let remap = |r: &mut u32| {
            if *r & TEMP_FLAG != 0 {
                *r = persist + (*r & !TEMP_FLAG);
            }
        };
        for op in &mut self.ops {
            match op {
                TOp::ConstF { dst, .. } | TOp::CastI { dst, .. } => remap(dst),
                TOp::LoadT { dst, .. } => remap(dst),
                TOp::StoreT { src, .. } => remap(src),
                TOp::Mov { dst, src } | TOp::Neg { dst, src } | TOp::AddAssign { dst, src } => {
                    remap(dst);
                    remap(src);
                }
                TOp::Add { dst, a, b }
                | TOp::Sub { dst, a, b }
                | TOp::Mul { dst, a, b }
                | TOp::Div { dst, a, b }
                | TOp::Fma { dst, a, b } => {
                    remap(dst);
                    remap(a);
                    remap(b);
                }
                TOp::Round { reg } => remap(reg),
                TOp::Zero { .. } | TOp::LoopBegin { .. } | TOp::LoopEnd { .. } => {}
            }
        }
        let n_tensors = kernel.params.iter().filter(|(_, k)| *k == ParamKind::Tensor).count();
        let mut tensor_written = vec![false; n_tensors];
        for op in &self.ops {
            if let TOp::StoreT { buf, .. } = op {
                tensor_written[*buf as usize] = true;
            }
        }
        Ok(TapeKernel {
            name: kernel.name.clone(),
            params: kernel.params.clone(),
            ops: self.ops,
            n_regs: (persist + self.temp_high) as usize,
            n_dyn_loops: self.n_dyn,
            tensor_written,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::compile;
    use exo_ir::builder::*;
    use exo_ir::{MemSpace, ScalarType};

    /// The reference kernel specialised to an 8x12 tile: signature
    /// `(KC, Ac, Bc, C)` with constant-trip tile loops, the form every
    /// generated kernel takes.
    fn reference_tape() -> (CompiledKernel, TapeKernel) {
        let p = exo_isa::ukernel_ref_simple(ScalarType::F32);
        let p = exo_sched::partial_eval(&p, &[8, 12]).unwrap();
        let compiled = compile(&p).unwrap();
        let tape = compiled.to_tape().unwrap();
        (compiled, tape)
    }

    #[test]
    fn tape_matches_interpreter_bit_for_bit_on_the_reference_kernel() {
        let (compiled, tape) = reference_tape();
        let (mr, nr, kc) = (8usize, 12usize, 29usize);
        let a: Vec<f32> = (0..kc * mr).map(|i| ((i * 7 + 3) % 13) as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..kc * nr).map(|i| ((i * 5 + 1) % 11) as f32 * 0.25 - 1.0).collect();
        let c0: Vec<f32> = (0..nr * mr).map(|i| (i % 5) as f32 * 0.5).collect();

        let run = |kernel: &dyn Fn(&mut [RunArg<'_>]) -> Result<()>| {
            let mut a_buf = a.clone();
            let mut b_buf = b.clone();
            let mut c = c0.clone();
            let mut args = vec![
                RunArg::Size(kc as i64),
                RunArg::Tensor(&mut a_buf),
                RunArg::Tensor(&mut b_buf),
                RunArg::Tensor(&mut c),
            ];
            kernel(&mut args).unwrap();
            c
        };
        let c_interp = run(&|args| compiled.run(args));
        let c_tape = run(&|args| tape.run(args));
        assert_eq!(c_interp, c_tape, "tape must be bit-for-bit equal to the interpreter");

        // The zero-copy packed entry point computes the same values.
        let mut c_packed = c0.clone();
        tape.run_packed(kc, &a, &b, &mut c_packed).unwrap();
        assert_eq!(c_interp, c_packed);
    }

    #[test]
    fn tape_reports_written_tensors_and_rejects_misuse() {
        let (_, tape) = reference_tape();
        // Signature is (KC, Ac, Bc, C): only C is written.
        assert!(!tape.writes_tensor(0));
        assert!(!tape.writes_tensor(1));
        assert!(tape.writes_tensor(2));
        // Passing the written tensor read-only is rejected up front.
        let a = vec![0.0f32; 8];
        let b = vec![0.0f32; 12];
        let c = vec![0.0f32; 96];
        let err = tape.run_views(&[1], &mut [TensorView::Ro(&a), TensorView::Ro(&b), TensorView::Ro(&c)]);
        assert!(matches!(err, Err(CodegenError::BadArguments { .. })));
    }

    #[test]
    fn constant_loops_unroll_and_kc_stays_dynamic() {
        let (_, tape) = reference_tape();
        // The register-tile loops are unrolled; only the KC loop remains.
        assert_eq!(tape.n_dyn_loops, 1);
        assert!(tape.len() > 8 * 12, "unrolled tape should carry ops for every tile element");
    }

    #[test]
    fn fully_symbolic_kernels_fall_back_to_the_interpreter() {
        // Without partial evaluation the tile loops multiply two unknowns
        // (`k * MR`), which is not affine: the tape refuses, and callers keep
        // the interpreter.
        let p = exo_isa::ukernel_ref_simple(ScalarType::F32);
        let compiled = compile(&p).unwrap();
        assert!(matches!(compiled.to_tape(), Err(CodegenError::Unsupported { .. })));
    }

    #[test]
    fn out_of_bounds_accesses_are_reported() {
        let p = proc("oob")
            .size_arg("N")
            .tensor_arg("x", ScalarType::F32, vec![var("N")], MemSpace::Dram)
            .body(vec![for_("i", 0, var("N"), vec![assign("x", vec![var("i")], flt(1.0))])])
            .build();
        let tape = compile(&p).unwrap().to_tape().unwrap();
        let mut x = vec![0.0f32; 2];
        // Claim N = 7 over a 2-element buffer.
        assert!(matches!(
            tape.run(&mut [RunArg::Size(7), RunArg::Tensor(&mut x)]),
            Err(CodegenError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn f16_rounding_matches_the_interpreter() {
        let p = proc("round16")
            .tensor_arg("out", ScalarType::F16, vec![int(2)], MemSpace::Dram)
            .body(vec![assign("out", vec![int(0)], flt(1.0 + 1.0e-5)), reduce("out", vec![int(1)], flt(0.1))])
            .build();
        let compiled = compile(&p).unwrap();
        let tape = compiled.to_tape().unwrap();
        let mut out_interp = vec![0.0f32, 3.0];
        compiled.run(&mut [RunArg::Tensor(&mut out_interp)]).unwrap();
        let mut out_tape = vec![0.0f32, 3.0];
        tape.run(&mut [RunArg::Tensor(&mut out_tape)]).unwrap();
        assert_eq!(out_interp, out_tape);
        assert_eq!(out_interp[0], 1.0);
    }

    #[test]
    fn argument_mismatches_are_reported() {
        let (_, tape) = reference_tape();
        let mut too_few = vec![RunArg::Size(1)];
        assert!(matches!(tape.run(&mut too_few), Err(CodegenError::BadArguments { .. })));
    }
}
