//! Pseudo-assembly rendering of the `k`-loop body, the analogue of the
//! paper's Fig. 12 (the AArch64 code `gcc-10 -S` produces for the generated
//! kernel).
//!
//! The listing is produced from the kernel's [`KernelTrace`]: loads are
//! paired into `ldp` where possible, FMAs become `fmla` with a simple
//! round-robin register allocation, and the loop control (`add`/`cmp`/`bne`)
//! is appended. It is meant for human inspection and for checking that the
//! generated kernel has the expected instruction mix — it is not meant to be
//! assembled.

use std::fmt::Write as _;

use exo_ir::InstrClass;

use crate::trace::KernelTrace;

/// Renders an AArch64-style listing of the per-`k` body of a trace.
pub fn emit_asm(trace: &KernelTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// pseudo-assembly for the k-loop of `{}`", trace.name);
    let _ = writeln!(out, ".L_kloop_{}:", trace.name);

    // Expand ops into individual instructions.
    let mut loads: Vec<(String, usize)> = Vec::new();
    let mut fmas = 0u64;
    let mut stores = 0u64;
    let mut prefetches = 0u64;
    let mut others = 0u64;
    for op in &trace.per_k {
        match op.class {
            InstrClass::VecLoad => {
                for _ in 0..op.count {
                    loads.push((
                        op.buffer.as_ref().map(|b| b.to_string()).unwrap_or_else(|| "mem".into()),
                        op.bytes(),
                    ));
                }
            }
            InstrClass::VecFma => fmas += op.count,
            InstrClass::VecStore => stores += op.count,
            InstrClass::Prefetch => prefetches += op.count,
            _ => others += op.count,
        }
    }

    // Source registers q0.. for loads, paired into ldp when two consecutive
    // loads read the same buffer.
    let mut qreg = 0usize;
    let mut base_reg = 3usize; // x3, x4, ... address registers per buffer
    let mut current_buffer: Option<String> = None;
    let mut i = 0usize;
    while i < loads.len() {
        let (buf, bytes) = &loads[i];
        if current_buffer.as_deref() != Some(buf) {
            current_buffer = Some(buf.clone());
            base_reg += 1;
        }
        let pair = i + 1 < loads.len() && &loads[i + 1].0 == buf;
        if pair {
            let _ = writeln!(
                out,
                "    ldp     q{}, q{}, [x{}]          // load {} -> q{}, q{}",
                qreg,
                qreg + 1,
                base_reg,
                buf,
                qreg,
                qreg + 1
            );
            let _ = writeln!(out, "    add     x{}, x{}, {}", base_reg, base_reg, bytes * 2);
            qreg += 2;
            i += 2;
        } else {
            let _ = writeln!(
                out,
                "    ldr     q{}, [x{}]              // load {} -> q{}",
                qreg, base_reg, buf, qreg
            );
            let _ = writeln!(out, "    add     x{}, x{}, {}", base_reg, base_reg, bytes);
            qreg += 1;
            i += 1;
        }
    }
    for _ in 0..prefetches {
        let _ = writeln!(out, "    prfm    pldl1keep, [x{}, 256]", base_reg);
    }

    // Accumulator registers start after the source registers.
    let acc_base = qreg.max(1);
    let total_regs: usize = 32;
    let src_count = qreg.max(1);
    for f in 0..fmas {
        let acc = acc_base + (f as usize % (total_regs - acc_base).max(1));
        let src_a = f as usize % src_count;
        let lane = f as usize % 4;
        let _ = writeln!(
            out,
            "    fmla    v{}.4s, v{}.4s, v{}.s[{}]",
            acc,
            src_a,
            (src_a + 1) % src_count.max(1),
            lane
        );
    }
    for s in 0..stores {
        let _ = writeln!(out, "    str     q{}, [x{}]              // store", s % 32, base_reg + 1);
    }
    for _ in 0..others {
        let _ = writeln!(out, "    mov     w9, w9                  // scalar op");
    }

    let _ = writeln!(out, "    add     x0, x0, 1");
    let _ = writeln!(out, "    cmp     x1, x0");
    let _ = writeln!(out, "    bne     .L_kloop_{}", trace.name);
    out
}

/// Counts instruction mnemonics in a pseudo-assembly listing; handy for tests
/// and for the code-generation report binary.
pub fn count_mnemonics(asm: &str) -> std::collections::BTreeMap<String, usize> {
    let mut out = std::collections::BTreeMap::new();
    for line in asm.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") || trimmed.starts_with('.') || trimmed.is_empty() {
            continue;
        }
        if let Some(mnemonic) = trimmed.split_whitespace().next() {
            *out.entry(mnemonic.to_string()).or_insert(0) += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MachineOp;
    use exo_ir::ScalarType;

    fn paper_like_trace() -> KernelTrace {
        KernelTrace {
            name: "uk_8x12".into(),
            prologue: vec![],
            per_k: vec![
                MachineOp {
                    class: InstrClass::VecLoad,
                    lanes: 4,
                    elem: ScalarType::F32,
                    buffer: Some("Ac".into()),
                    count: 2,
                },
                MachineOp {
                    class: InstrClass::VecLoad,
                    lanes: 4,
                    elem: ScalarType::F32,
                    buffer: Some("Bc".into()),
                    count: 3,
                },
                MachineOp {
                    class: InstrClass::VecFma,
                    lanes: 4,
                    elem: ScalarType::F32,
                    buffer: None,
                    count: 24,
                },
            ],
            epilogue: vec![],
            inner_loop_levels: 3,
        }
    }

    #[test]
    fn listing_has_the_papers_instruction_mix() {
        let asm = emit_asm(&paper_like_trace());
        let counts = count_mnemonics(&asm);
        // 5 vector loads -> 2 ldp (A pair, B pair) + 1 ldr (B remainder).
        assert_eq!(counts.get("ldp"), Some(&2), "listing:\n{asm}");
        assert_eq!(counts.get("ldr"), Some(&1), "listing:\n{asm}");
        assert_eq!(counts.get("fmla"), Some(&24), "listing:\n{asm}");
        assert_eq!(counts.get("bne"), Some(&1));
        assert!(asm.contains(".L_kloop_uk_8x12:"));
    }

    #[test]
    fn stores_and_prefetches_appear() {
        let mut t = paper_like_trace();
        t.per_k.push(MachineOp {
            class: InstrClass::Prefetch,
            lanes: 1,
            elem: ScalarType::F32,
            buffer: Some("C".into()),
            count: 2,
        });
        t.per_k.push(MachineOp {
            class: InstrClass::VecStore,
            lanes: 4,
            elem: ScalarType::F32,
            buffer: Some("C".into()),
            count: 1,
        });
        let asm = emit_asm(&t);
        let counts = count_mnemonics(&asm);
        assert_eq!(counts.get("prfm"), Some(&2));
        assert_eq!(counts.get("str"), Some(&1));
    }

    #[test]
    fn mnemonic_counter_ignores_labels_and_comments() {
        let counts = count_mnemonics(".Lfoo:\n// comment\n    add x0, x0, 1\n");
        assert_eq!(counts.get("add"), Some(&1));
        assert_eq!(counts.len(), 1);
    }
}
