//! # exo-codegen
//!
//! Backends over scheduled procedures, mirroring what the paper's toolchain
//! obtains from Exo plus what this reproduction needs in place of a native
//! ARM toolchain:
//!
//! * [`c::emit_c`] — C-with-intrinsics source, the artifact's visible output
//!   (Section III, step g),
//! * [`asm::emit_asm`] — a pseudo-assembly rendering of the `k`-loop, the
//!   analogue of the paper's Fig. 12,
//! * [`trace::extract_trace`] — the machine-operation trace consumed by the
//!   `carmel-sim` performance model,
//! * [`exec::compile`] — an executable lowering used for functional
//!   validation and wall-clock benches,
//! * [`tape`] — a flat, register-allocated tape compiled from the executable
//!   lowering: the scalar bytecode backend,
//! * [`superword`] — the superword lowering of the tape: whole-vector ops
//!   (`VLoad`, `VStore`, `VFmaLane`, `VFmaBcast`) that execute one vector
//!   register per dispatch over a validated, bounds-free register file —
//!   the fastest *portable* backend, and every other tier's fallback,
//! * [`simd`] — the native tier: the validated superword ops compiled once
//!   per kernel into a chain of monomorphic closures over the widest
//!   vector ISA the host can run — AVX2/FMA on x86_64, NEON on aarch64, a
//!   bit-exact scalar reference everywhere (pin one with `EXO_ISA`) — the
//!   fastest backend, and the one the GEMM hot path dispatches through.

#![warn(missing_docs)]

pub mod asm;
pub mod c;
pub mod env;
pub mod error;
pub mod exec;
pub mod simd;
pub mod superword;
pub mod tape;
pub mod trace;

pub use asm::{count_mnemonics, emit_asm};
pub use c::{emit_c, emit_superword_c};
pub use env::env_once;
pub use error::{CodegenError, Result};
pub use exec::{compile, CompiledKernel, RunArg};
pub use simd::{
    active_isa, env_isa_override, fma_contraction_tol, simd_available, IsaKind, SimdDispatch, SimdKernel,
};
pub use superword::{SuperwordDispatch, SuperwordKernel};
pub use tape::{TapeKernel, TensorView};
pub use trace::{extract_trace, summarise, KernelTrace, MachineOp};
