//! Error type shared by all scheduling operators.

use std::fmt;

use exo_ir::parse::ParseError;
use exo_ir::{IrError, Sym};

/// Error returned by scheduling operators when a rewrite cannot be applied
/// legally.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A pattern did not match any statement in the procedure.
    PatternNotFound {
        /// The pattern text.
        pattern: String,
        /// Procedure searched.
        proc: String,
    },
    /// The statement found is not of the kind the operator needs (e.g.
    /// `unroll_loop` on something that is not a loop).
    WrongStatementKind {
        /// What the operator expected.
        expected: &'static str,
        /// What was found instead.
        found: String,
    },
    /// A loop could not be divided because its extent is not a multiple of
    /// the requested factor (with `perfect` division).
    NotDivisible {
        /// Loop variable.
        var: Sym,
        /// Loop extent, if known.
        extent: Option<i64>,
        /// Requested factor.
        factor: i64,
    },
    /// A loop bound or extent had to be a compile-time constant but was not.
    NonConstantBound {
        /// Loop variable.
        var: Sym,
    },
    /// Two loops could not be reordered because they are not perfectly nested.
    NotPerfectlyNested {
        /// Outer loop variable.
        outer: Sym,
        /// Inner loop variable.
        inner: Sym,
    },
    /// A buffer name was not found (for `expand_dim`, `set_memory`, ...).
    UnknownBuffer {
        /// The buffer name.
        buf: Sym,
    },
    /// `lift_alloc` or `autofission` was asked to lift through more levels
    /// than exist.
    LiftTooFar {
        /// Requested number of lifts.
        requested: usize,
        /// Available nesting depth.
        available: usize,
    },
    /// Fission would have to cross an `if` statement, which is unsupported.
    FissionThroughIf,
    /// Fission through a loop would duplicate work that is not idempotent.
    UnsafeFission {
        /// Loop variable of the loop that could not be dropped or duplicated.
        var: Sym,
        /// Explanation.
        reason: String,
    },
    /// `replace` could not unify any matching statement with the instruction
    /// specification.
    ReplaceFailed {
        /// Instruction name.
        instr: String,
        /// Pattern used to select candidates.
        pattern: String,
        /// Explanation from the last attempted candidate.
        reason: String,
    },
    /// The post-replacement verification (re-inlining the instruction and
    /// comparing against the original statement) failed — this is the
    /// "security definition" of the paper and indicates an internal bug.
    ReplaceVerificationFailed {
        /// Instruction name.
        instr: String,
    },
    /// `partial_eval` received more values than there are `size` arguments.
    TooManyValues {
        /// Number of `size` arguments.
        sizes: usize,
        /// Number of values supplied.
        values: usize,
    },
    /// An argument or index range check failed (e.g. `expand_dim` indexing
    /// expression can exceed the new dimension).
    OutOfRange {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A textual fragment (expression, window, pattern) failed to parse.
    Parse(ParseError),
    /// The rewritten procedure failed IR validation (indicates an operator
    /// bug; surfaced rather than silently returning broken IR).
    Ir(IrError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::PatternNotFound { pattern, proc } => {
                write!(f, "pattern `{pattern}` not found in procedure `{proc}`")
            }
            SchedError::WrongStatementKind { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            SchedError::NotDivisible { var, extent, factor } => match extent {
                Some(e) => write!(f, "loop `{var}` with extent {e} is not divisible by {factor}"),
                None => write!(f, "loop `{var}` has a non-constant extent, cannot divide by {factor}"),
            },
            SchedError::NonConstantBound { var } => {
                write!(f, "loop `{var}` requires constant bounds for this operation")
            }
            SchedError::NotPerfectlyNested { outer, inner } => {
                write!(f, "loops `{outer}` and `{inner}` are not perfectly nested")
            }
            SchedError::UnknownBuffer { buf } => write!(f, "unknown buffer `{buf}`"),
            SchedError::LiftTooFar { requested, available } => {
                write!(f, "cannot lift {requested} levels, only {available} available")
            }
            SchedError::FissionThroughIf => write!(f, "cannot fission through an if statement"),
            SchedError::UnsafeFission { var, reason } => {
                write!(f, "cannot fission through loop `{var}`: {reason}")
            }
            SchedError::ReplaceFailed { instr, pattern, reason } => {
                write!(f, "cannot replace `{pattern}` with instruction `{instr}`: {reason}")
            }
            SchedError::ReplaceVerificationFailed { instr } => {
                write!(f, "verification of replacement with `{instr}` failed")
            }
            SchedError::TooManyValues { sizes, values } => {
                write!(f, "partial_eval got {values} values but the procedure has {sizes} size arguments")
            }
            SchedError::OutOfRange { reason } => write!(f, "range check failed: {reason}"),
            SchedError::Parse(e) => write!(f, "fragment parse error: {e}"),
            SchedError::Ir(e) => write!(f, "rewritten procedure is ill-formed: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Parse(e) => Some(e),
            SchedError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for SchedError {
    fn from(e: ParseError) -> Self {
        SchedError::Parse(e)
    }
}

impl From<IrError> for SchedError {
    fn from(e: IrError) -> Self {
        SchedError::Ir(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SchedError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SchedError::NotDivisible { var: "i".into(), extent: Some(7), factor: 4 };
        assert!(e.to_string().contains("not divisible"));
        let e = SchedError::PatternNotFound { pattern: "for q in _: _".into(), proc: "uk".into() };
        assert!(e.to_string().contains("for q in _: _"));
        let e = SchedError::LiftTooFar { requested: 9, available: 2 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn parse_errors_convert() {
        let err = exo_ir::parse::parse_expr("+").unwrap_err();
        let sched: SchedError = err.into();
        assert!(matches!(sched, SchedError::Parse(_)));
        assert!(std::error::Error::source(&sched).is_some());
    }
}
