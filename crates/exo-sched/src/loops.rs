//! Loop-structure operators: `divide_loop`, `reorder_loops`, and
//! `unroll_loop`.

use std::collections::BTreeMap;

use exo_ir::stmt::{splice_at, stmt_at};
use exo_ir::{Expr, Proc, Stmt, Sym};

use crate::error::{Result, SchedError};
use crate::pattern::{find_all, StmtPattern};

fn find_loop(p: &Proc, var: &str) -> Result<Vec<usize>> {
    let paths = find_all(p, &StmtPattern::ForNamed(Sym::new(var)));
    paths.into_iter().next().ok_or_else(|| SchedError::PatternNotFound {
        pattern: format!("for {var} in _: _"),
        proc: p.name.clone(),
    })
}

/// Splits the first loop named `var` into an outer loop `outer_name` and an
/// inner loop `inner_name` of extent `factor`, substituting
/// `var := factor * outer + inner` in the body. This is the paper's
/// `divide_loop(p, 'i', 4, ['it', 'itt'], perfect=True)`.
///
/// With `perfect = true` the loop extent must be a compile-time constant
/// multiple of `factor`. With `perfect = false` a remainder ("edge") loop is
/// generated after the main loop, which is how non-multiple micro-kernel
/// sizes are handled.
///
/// # Errors
///
/// * [`SchedError::PatternNotFound`] if no loop named `var` exists.
/// * [`SchedError::NonConstantBound`] if the bounds are not constants.
/// * [`SchedError::NotDivisible`] if `perfect` and the extent is not a
///   multiple of `factor`.
pub fn divide_loop(
    p: &Proc,
    var: &str,
    factor: i64,
    outer_name: &str,
    inner_name: &str,
    perfect: bool,
) -> Result<Proc> {
    if factor <= 0 {
        return Err(SchedError::OutOfRange { reason: format!("division factor {factor} must be positive") });
    }
    let path = find_loop(p, var)?;
    let loop_stmt = stmt_at(&p.body, &path).expect("path from find_loop is valid").clone();
    let (loop_var, lo, hi, body) = match loop_stmt {
        Stmt::For { var, lo, hi, body } => (var, lo, hi, body),
        _ => unreachable!("find_loop only returns loops"),
    };
    let lo_c = lo.simplify().as_int().ok_or(SchedError::NonConstantBound { var: loop_var.clone() })?;
    let hi_c = hi.simplify().as_int().ok_or(SchedError::NonConstantBound { var: loop_var.clone() })?;
    if lo_c != 0 {
        return Err(SchedError::OutOfRange {
            reason: format!("divide_loop requires a zero lower bound, loop `{loop_var}` starts at {lo_c}"),
        });
    }
    let extent = hi_c - lo_c;
    let quotient = extent / factor;
    let remainder = extent % factor;
    if perfect && remainder != 0 {
        return Err(SchedError::NotDivisible { var: loop_var, extent: Some(extent), factor });
    }

    let outer = Sym::new(outer_name);
    let inner = Sym::new(inner_name);
    let mut new_stmts: Vec<Stmt> = Vec::new();

    if quotient > 0 {
        let mut map: BTreeMap<Sym, Expr> = BTreeMap::new();
        map.insert(
            loop_var.clone(),
            Expr::add(Expr::mul(Expr::int(factor), Expr::var(outer.clone())), Expr::var(inner.clone())),
        );
        let main_body: Vec<Stmt> = body.iter().map(|s| s.subst(&map).simplify()).collect();
        new_stmts.push(Stmt::For {
            var: outer.clone(),
            lo: Expr::int(0),
            hi: Expr::int(quotient),
            body: vec![Stmt::For {
                var: inner.clone(),
                lo: Expr::int(0),
                hi: Expr::int(factor),
                body: main_body,
            }],
        });
    }
    if remainder != 0 {
        // Edge loop covering the last `remainder` iterations.
        let tail_var = Sym::new(format!("{inner_name}_tail"));
        let mut map: BTreeMap<Sym, Expr> = BTreeMap::new();
        map.insert(loop_var.clone(), Expr::add(Expr::int(quotient * factor), Expr::var(tail_var.clone())));
        let tail_body: Vec<Stmt> = body.iter().map(|s| s.subst(&map).simplify()).collect();
        new_stmts.push(Stmt::For {
            var: tail_var,
            lo: Expr::int(0),
            hi: Expr::int(remainder),
            body: tail_body,
        });
    }

    let mut out = p.clone();
    splice_at(&mut out.body, &path, new_stmts);
    out.validate()?;
    Ok(out)
}

/// Swaps two perfectly nested loops. The `order` string names the two loop
/// variables separated by whitespace, outer first — the paper's
/// `reorder_loops(p, 'jtt it')`.
///
/// # Errors
///
/// * [`SchedError::PatternNotFound`] if the outer loop does not exist.
/// * [`SchedError::NotPerfectlyNested`] if the outer loop's body is not
///   exactly the inner loop, or the inner loop's bounds depend on the outer
///   variable.
pub fn reorder_loops(p: &Proc, order: &str) -> Result<Proc> {
    let mut names = order.split_whitespace();
    let (outer_name, inner_name) = match (names.next(), names.next(), names.next()) {
        (Some(a), Some(b), None) => (a, b),
        _ => {
            return Err(SchedError::WrongStatementKind {
                expected: "an order of exactly two loop names, e.g. `jtt it`",
                found: format!("`{order}`"),
            })
        }
    };
    // Find the first loop named `outer_name` whose sole child is a loop named
    // `inner_name`.
    let candidates = find_all(p, &StmtPattern::ForNamed(Sym::new(outer_name)));
    for path in candidates {
        let stmt = stmt_at(&p.body, &path).expect("path is valid");
        if let Stmt::For { var: ov, lo: olo, hi: ohi, body } = stmt {
            if body.len() == 1 {
                if let Stmt::For { var: iv, lo: ilo, hi: ihi, body: inner_body } = &body[0] {
                    if iv == inner_name {
                        if ilo.uses_var(ov) || ihi.uses_var(ov) {
                            return Err(SchedError::NotPerfectlyNested {
                                outer: ov.clone(),
                                inner: iv.clone(),
                            });
                        }
                        let swapped = Stmt::For {
                            var: iv.clone(),
                            lo: ilo.clone(),
                            hi: ihi.clone(),
                            body: vec![Stmt::For {
                                var: ov.clone(),
                                lo: olo.clone(),
                                hi: ohi.clone(),
                                body: inner_body.clone(),
                            }],
                        };
                        let mut out = p.clone();
                        splice_at(&mut out.body, &path, vec![swapped]);
                        out.validate()?;
                        return Ok(out);
                    }
                }
            }
        }
    }
    Err(SchedError::NotPerfectlyNested { outer: Sym::new(outer_name), inner: Sym::new(inner_name) })
}

/// Fully unrolls the first loop named `var`, which must have constant bounds
/// (the paper's `unroll_loop(p, 'it')`).
///
/// # Errors
///
/// * [`SchedError::PatternNotFound`] if no such loop exists.
/// * [`SchedError::NonConstantBound`] if the bounds are not constants.
pub fn unroll_loop(p: &Proc, var: &str) -> Result<Proc> {
    unroll_loop_nth(p, var, 0)
}

/// Fully unrolls the `occurrence`-th (0-based, pre-order) loop named `var`.
///
/// The paper's user code addresses loops by name only; when several loops
/// share a name (the `C` load nest and the operand load nest both iterate
/// over `it`), the generator uses this variant to address the one Fig. 11
/// unrolls.
///
/// # Errors
///
/// * [`SchedError::PatternNotFound`] if fewer than `occurrence + 1` loops
///   named `var` exist.
/// * [`SchedError::NonConstantBound`] if the bounds are not constants.
pub fn unroll_loop_nth(p: &Proc, var: &str, occurrence: usize) -> Result<Proc> {
    let paths = find_all(p, &StmtPattern::ForNamed(Sym::new(var)));
    let path = paths.into_iter().nth(occurrence).ok_or_else(|| SchedError::PatternNotFound {
        pattern: format!("for {var} in _: _ (occurrence {occurrence})"),
        proc: p.name.clone(),
    })?;
    let stmt = stmt_at(&p.body, &path).expect("path from find_loop is valid").clone();
    let (loop_var, lo, hi, body) = match stmt {
        Stmt::For { var, lo, hi, body } => (var, lo, hi, body),
        _ => unreachable!("find_loop only returns loops"),
    };
    let lo_c = lo.simplify().as_int().ok_or(SchedError::NonConstantBound { var: loop_var.clone() })?;
    let hi_c = hi.simplify().as_int().ok_or(SchedError::NonConstantBound { var: loop_var.clone() })?;
    let mut unrolled = Vec::new();
    for i in lo_c..hi_c {
        let mut map = BTreeMap::new();
        map.insert(loop_var.clone(), Expr::int(i));
        for s in &body {
            unrolled.push(s.subst(&map).simplify());
        }
    }
    let mut out = p.clone();
    splice_at(&mut out.body, &path, unrolled);
    out.validate()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::builder::*;
    use exo_ir::interp::{run_proc, ArgValue, TensorData};
    use exo_ir::printer::proc_to_string;
    use exo_ir::{MemSpace, ScalarType};

    fn uk_8x12() -> Proc {
        proc("uk_8x12")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(8)], MemSpace::Dram)
            .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), int(12)], MemSpace::Dram)
            .tensor_arg("C", ScalarType::F32, vec![int(12), int(8)], MemSpace::Dram)
            .body(vec![for_(
                "k",
                0,
                var("KC"),
                vec![for_(
                    "j",
                    0,
                    12,
                    vec![for_(
                        "i",
                        0,
                        8,
                        vec![reduce(
                            "C",
                            vec![var("j"), var("i")],
                            Expr::mul(
                                read("Ac", vec![var("k"), var("i")]),
                                read("Bc", vec![var("k"), var("j")]),
                            ),
                        )],
                    )],
                )],
            )])
            .build()
    }

    fn run_kernel(p: &Proc, kc: usize, mr: usize, nr: usize) -> TensorData {
        let a = TensorData::from_fn(ScalarType::F32, vec![kc, mr], |i| ((i * 7 + 3) % 11) as f64 * 0.25);
        let b = TensorData::from_fn(ScalarType::F32, vec![kc, nr], |i| ((i * 5 + 1) % 13) as f64 - 6.0);
        let c = TensorData::from_fn(ScalarType::F32, vec![nr, mr], |i| (i % 3) as f64);
        let mut args =
            vec![ArgValue::Size(kc as i64), ArgValue::Tensor(a), ArgValue::Tensor(b), ArgValue::Tensor(c)];
        run_proc(p, &mut args).unwrap();
        args.remove(3).as_tensor().unwrap().clone()
    }

    #[test]
    fn divide_loop_perfect_matches_paper_structure() {
        let p = uk_8x12();
        let p = divide_loop(&p, "i", 4, "it", "itt", true).unwrap();
        let p = divide_loop(&p, "j", 4, "jt", "jtt", true).unwrap();
        let text = proc_to_string(&p);
        assert!(text.contains("for jt in seq(0, 3):"));
        assert!(text.contains("for jtt in seq(0, 4):"));
        assert!(text.contains("for it in seq(0, 2):"));
        assert!(text.contains("for itt in seq(0, 4):"));
        assert!(text.contains("C[4 * jt + jtt, 4 * it + itt] += Ac[k, 4 * it + itt] * Bc[k, 4 * jt + jtt]"));
    }

    #[test]
    fn divide_loop_preserves_semantics() {
        let p = uk_8x12();
        let q = divide_loop(&p, "i", 4, "it", "itt", true).unwrap();
        let q = divide_loop(&q, "j", 4, "jt", "jtt", true).unwrap();
        assert_eq!(run_kernel(&p, 5, 8, 12), run_kernel(&q, 5, 8, 12));
    }

    #[test]
    fn divide_loop_imperfect_generates_tail() {
        // 8 is not a multiple of 3: main loop of 2 x 3 plus a tail of 2.
        let p = uk_8x12();
        assert!(matches!(divide_loop(&p, "i", 3, "it", "itt", true), Err(SchedError::NotDivisible { .. })));
        let q = divide_loop(&p, "i", 3, "it", "itt", false).unwrap();
        let text = proc_to_string(&q);
        assert!(text.contains("for it in seq(0, 2):"));
        assert!(text.contains("for itt_tail in seq(0, 2):"));
        assert_eq!(run_kernel(&p, 4, 8, 12), run_kernel(&q, 4, 8, 12));
    }

    #[test]
    fn divide_loop_rejects_symbolic_bounds() {
        let p = uk_8x12();
        assert!(matches!(
            divide_loop(&p, "k", 4, "kt", "ktt", true),
            Err(SchedError::NonConstantBound { .. })
        ));
    }

    #[test]
    fn divide_loop_rejects_missing_loop() {
        let p = uk_8x12();
        assert!(matches!(divide_loop(&p, "zz", 4, "a", "b", true), Err(SchedError::PatternNotFound { .. })));
    }

    #[test]
    fn reorder_swaps_perfectly_nested_loops() {
        let p = uk_8x12();
        let p = divide_loop(&p, "i", 4, "it", "itt", true).unwrap();
        let p = divide_loop(&p, "j", 4, "jt", "jtt", true).unwrap();
        // jtt and it are adjacent in the nest k, jt, jtt, it, itt.
        let q = reorder_loops(&p, "jtt it").unwrap();
        let text = proc_to_string(&q);
        let pos_it = text.find("for it in").unwrap();
        let pos_jtt = text.find("for jtt in").unwrap();
        assert!(pos_it < pos_jtt, "after reorder `it` should come before `jtt`:\n{text}");
        assert_eq!(run_kernel(&p, 3, 8, 12), run_kernel(&q, 3, 8, 12));
    }

    #[test]
    fn reorder_rejects_non_nested_loops() {
        let p = uk_8x12();
        assert!(matches!(reorder_loops(&p, "k i"), Err(SchedError::NotPerfectlyNested { .. })));
        assert!(reorder_loops(&p, "only_one").is_err());
    }

    #[test]
    fn unroll_expands_constant_loops() {
        let p = uk_8x12();
        let p = divide_loop(&p, "i", 4, "it", "itt", true).unwrap();
        let q = unroll_loop(&p, "it").unwrap();
        let text = proc_to_string(&q);
        // The `it` loop disappears; its two iterations are inlined with
        // constants 0 and 4 folded into the subscripts.
        assert!(!text.contains("for it in"));
        assert!(text.contains("Ac[k, itt]"));
        assert!(text.contains("Ac[k, itt + 4]"));
        assert_eq!(run_kernel(&p, 2, 8, 12), run_kernel(&q, 2, 8, 12));
    }

    #[test]
    fn unroll_rejects_symbolic_loop() {
        let p = uk_8x12();
        assert!(matches!(unroll_loop(&p, "k"), Err(SchedError::NonConstantBound { .. })));
    }
}
