//! # exo-sched
//!
//! Scheduling operators over [`exo_ir`] procedures, reproducing the operator
//! vocabulary that the paper *"Tackling the Matrix Multiplication
//! Micro-kernel Generation with Exo"* (CGO 2024) uses to turn the naive
//! triple-loop micro-kernel into vectorised, register-tiled code:
//!
//! | paper (Exo) | this crate |
//! |---|---|
//! | `rename(p, name)` | [`rename`] |
//! | `p.partial_eval(MR, NR)` | [`partial_eval`] |
//! | `divide_loop(p, 'i', 4, ['it','itt'], perfect=True)` | [`divide_loop`] |
//! | `reorder_loops(p, 'jtt it')` | [`reorder_loops`] |
//! | `stage_mem(p, 'C[_] += _', 'C[...]', 'C_reg')` | [`stage_mem`] |
//! | `bind_expr(p, 'Xc[_]', 'X_reg')` | [`bind_expr`] |
//! | `expand_dim(p, 'C_reg', 4, 'itt')` | [`expand_dim`] |
//! | `lift_alloc(p, 'C_reg', n_lifts=5)` | [`lift_alloc`] |
//! | `autofission(p, p.find(..).after(), n_lifts=5)` | [`autofission`] |
//! | `replace(p, 'for itt in _: _', neon_vld_4xf32)` | [`replace`] |
//! | `set_memory(p, 'C_reg', Neon)` | [`set_memory`] |
//! | `set_precision(p, 'A_reg', 'f16')` | [`set_precision`] |
//! | `unroll_loop(p, 'it')` | [`unroll_loop`] |
//!
//! Every operator takes the procedure by reference and returns a new
//! procedure (or a [`SchedError`]), so user code chains them exactly like the
//! paper's Python listings. Each operator re-validates the produced IR, and
//! `replace` additionally verifies that re-inlining the produced instruction
//! call reproduces the code it replaced (the paper's "security definition").

#![warn(missing_docs)]

mod basic;
mod error;
mod fission;
mod loops;
mod memory;
mod pattern;
mod replace;

pub use basic::{partial_eval, partial_eval_named, rename, set_memory, set_precision, simplify};
pub use error::{Result, SchedError};
pub use fission::{autofission, fission_at, Anchor};
pub use loops::{divide_loop, reorder_loops, unroll_loop, unroll_loop_nth};
pub use memory::{bind_expr, expand_dim, lift_alloc, stage_mem};
pub use pattern::{find_all, find_all_text, find_first, stmt_at_checked, ExprPattern, StmtPattern};
pub use replace::{inline_call, replace, replace_all};
