//! The `replace` operator: pattern-match a loop nest against the semantic
//! body of a hardware instruction specification and substitute a call to the
//! instruction (Figs. 8–10 of the paper).
//!
//! This is the operator that gives Exo its "hardware as a library" character:
//! the instruction is an ordinary procedure whose body *defines* its
//! semantics, and `replace` only succeeds when the matched code is equivalent
//! to that body under some binding of the instruction's parameters — the
//! "security definition" the paper describes. After unification the call is
//! re-inlined and compared against the original statement as a final check.

use std::collections::BTreeMap;
use std::sync::Arc;

use exo_ir::alpha::blocks_alpha_eq;
use exo_ir::stmt::{splice_at, stmt_at};
use exo_ir::{Affine, ArgKind, BinOp, CallArg, Expr, Proc, Stmt, Sym, WAccess, WindowExpr};

use crate::error::{Result, SchedError};
use crate::memory::exprs_equiv;
use crate::pattern::{find_all_text, StmtPattern};

/// Bindings accumulated while unifying an instruction body against candidate
/// code.
#[derive(Debug, Default, Clone)]
struct Bindings {
    /// Instruction loop variable -> candidate loop variable.
    loop_vars: BTreeMap<Sym, Sym>,
    /// Instruction tensor parameter -> window of a candidate buffer.
    windows: BTreeMap<Sym, WindowExpr>,
    /// Instruction scalar (`size`/`index`) parameter -> candidate expression.
    scalars: BTreeMap<Sym, Expr>,
}

impl Bindings {
    fn bind_window(&mut self, param: &Sym, w: WindowExpr) -> std::result::Result<(), String> {
        let w = w.simplify();
        if let Some(existing) = self.windows.get(param) {
            if !windows_equiv(existing, &w) {
                return Err(format!("parameter `{param}` would bind to two different windows"));
            }
            return Ok(());
        }
        self.windows.insert(param.clone(), w);
        Ok(())
    }

    fn bind_scalar(&mut self, param: &Sym, e: Expr) -> std::result::Result<(), String> {
        let e = e.simplify();
        if let Some(existing) = self.scalars.get(param) {
            if !exprs_equiv(existing, &e) {
                return Err(format!("parameter `{param}` would bind to two different expressions"));
            }
            return Ok(());
        }
        self.scalars.insert(param.clone(), e);
        Ok(())
    }
}

fn windows_equiv(a: &WindowExpr, b: &WindowExpr) -> bool {
    a.buf == b.buf
        && a.idx.len() == b.idx.len()
        && a.idx.iter().zip(&b.idx).all(|(x, y)| match (x, y) {
            (WAccess::Point(p), WAccess::Point(q)) => exprs_equiv(p, q),
            (WAccess::Interval(l1, h1), WAccess::Interval(l2, h2)) => {
                exprs_equiv(l1, l2) && exprs_equiv(h1, h2)
            }
            _ => false,
        })
}

/// Replaces the first statement matching `pattern` that unifies with the
/// instruction `instr` by a call to it.
///
/// Candidates are tried in program order; the first whose body is equivalent
/// to the instruction's semantic specification (under some binding of the
/// instruction's parameters) is rewritten. This matches the way the paper's
/// user code issues several `replace(p, 'for itt in _: _', ...)` calls in a
/// row and each one picks up the next vectorisable loop.
///
/// # Errors
///
/// * [`SchedError::PatternNotFound`] if the pattern matches nothing.
/// * [`SchedError::ReplaceFailed`] if no candidate unifies.
/// * [`SchedError::ReplaceVerificationFailed`] if re-inlining the produced
///   call does not reproduce the original statement (internal consistency
///   check).
pub fn replace(p: &Proc, pattern: &str, instr: &Arc<Proc>) -> Result<Proc> {
    let candidates = find_all_text(p, pattern)?;
    if candidates.is_empty() {
        return Err(SchedError::PatternNotFound { pattern: pattern.to_string(), proc: p.name.clone() });
    }
    let mut last_reason = String::from("no candidate matched the pattern");
    for path in candidates {
        let stmt = stmt_at(&p.body, &path).expect("path from find_all is valid").clone();
        match unify_instr(instr, &stmt) {
            Ok(args) => {
                // Verification: inline the call, rename its loop variables to
                // the original's, and compare the simplified forms.
                let inlined = inline_call(instr, &args)?;
                let aligned: Vec<Stmt> = inlined
                    .iter()
                    .zip(std::iter::once(&stmt))
                    .map(|(inl, orig)| comm_normalize(&align_loop_vars(inl, orig).simplify()))
                    .collect();
                let normalised_original = vec![comm_normalize(&stmt.simplify())];
                let ok = aligned == normalised_original || blocks_alpha_eq(&aligned, &normalised_original);
                if !ok {
                    return Err(SchedError::ReplaceVerificationFailed { instr: instr.name.clone() });
                }
                let mut out = p.clone();
                splice_at(&mut out.body, &path, vec![Stmt::call(instr.clone(), args)]);
                out.validate()?;
                return Ok(out);
            }
            Err(reason) => last_reason = reason,
        }
    }
    Err(SchedError::ReplaceFailed {
        instr: instr.name.clone(),
        pattern: pattern.to_string(),
        reason: last_reason,
    })
}

/// Replaces every statement matching `pattern` that unifies with `instr`,
/// repeating until no further candidate unifies. Returns the rewritten
/// procedure and the number of replacements performed.
///
/// # Errors
///
/// Returns an error only if the pattern text itself is malformed; zero
/// replacements is reported through the returned count.
pub fn replace_all(p: &Proc, pattern: &str, instr: &Arc<Proc>) -> Result<(Proc, usize)> {
    // Validate the pattern up front so malformed text is still reported.
    StmtPattern::parse(pattern)?;
    let mut current = p.clone();
    let mut count = 0usize;
    loop {
        match replace(&current, pattern, instr) {
            Ok(next) => {
                current = next;
                count += 1;
            }
            Err(SchedError::ReplaceFailed { .. }) | Err(SchedError::PatternNotFound { .. }) => break,
            Err(e) => return Err(e),
        }
    }
    Ok((current, count))
}

/// Canonicalises commutative operators by sorting their operands on a
/// printed key, so that `a * b` and `b * a` compare equal during the
/// post-replacement verification.
fn comm_normalize(stmt: &Stmt) -> Stmt {
    fn norm_expr(e: &Expr) -> Expr {
        match e {
            Expr::Binop { op, lhs, rhs } => {
                let l = norm_expr(lhs);
                let r = norm_expr(rhs);
                if matches!(op, BinOp::Mul | BinOp::Add) {
                    let lk = exo_ir::printer::expr_to_string(&l);
                    let rk = exo_ir::printer::expr_to_string(&r);
                    if rk < lk {
                        return Expr::Binop { op: *op, lhs: Box::new(r), rhs: Box::new(l) };
                    }
                }
                Expr::Binop { op: *op, lhs: Box::new(l), rhs: Box::new(r) }
            }
            Expr::Neg(inner) => Expr::Neg(Box::new(norm_expr(inner))),
            Expr::Read { buf, idx } => {
                Expr::Read { buf: buf.clone(), idx: idx.iter().map(norm_expr).collect() }
            }
            _ => e.clone(),
        }
    }
    match stmt {
        Stmt::Assign { buf, idx, rhs } => {
            Stmt::Assign { buf: buf.clone(), idx: idx.iter().map(norm_expr).collect(), rhs: norm_expr(rhs) }
        }
        Stmt::Reduce { buf, idx, rhs } => {
            Stmt::Reduce { buf: buf.clone(), idx: idx.iter().map(norm_expr).collect(), rhs: norm_expr(rhs) }
        }
        Stmt::For { var, lo, hi, body } => Stmt::For {
            var: var.clone(),
            lo: lo.clone(),
            hi: hi.clone(),
            body: body.iter().map(comm_normalize).collect(),
        },
        other => other.clone(),
    }
}

/// Renames the loop variables of `spec` (recursively, by nesting position) to
/// match those of `target`, so that the two can be compared structurally
/// after simplification.
fn align_loop_vars(spec: &Stmt, target: &Stmt) -> Stmt {
    match (spec, target) {
        (Stmt::For { var: sv, lo, hi, body }, Stmt::For { var: tv, body: tbody, .. }) => {
            let mut map = BTreeMap::new();
            map.insert(sv.clone(), Expr::var(tv.clone()));
            let renamed_body: Vec<Stmt> = body.iter().map(|s| s.subst(&map)).collect();
            let aligned_body: Vec<Stmt> = renamed_body
                .iter()
                .zip(tbody)
                .map(|(s, t)| align_loop_vars(s, t))
                .chain(renamed_body.iter().skip(tbody.len()).cloned())
                .collect();
            Stmt::For { var: tv.clone(), lo: lo.subst(&map), hi: hi.subst(&map), body: aligned_body }
        }
        _ => spec.clone(),
    }
}

/// Expands a call to an instruction back into its semantic body with the call
/// arguments substituted — the inverse of [`replace`], also used for its
/// verification step.
///
/// # Errors
///
/// Returns [`SchedError::ReplaceFailed`] if the argument list does not match
/// the instruction signature.
pub fn inline_call(instr: &Proc, args: &[CallArg]) -> Result<Vec<Stmt>> {
    if args.len() != instr.args.len() {
        return Err(SchedError::ReplaceFailed {
            instr: instr.name.clone(),
            pattern: String::new(),
            reason: format!("expected {} arguments, got {}", instr.args.len(), args.len()),
        });
    }
    let mut scalar_map: BTreeMap<Sym, Expr> = BTreeMap::new();
    let mut window_map: BTreeMap<Sym, WindowExpr> = BTreeMap::new();
    for (formal, actual) in instr.args.iter().zip(args) {
        match (&formal.kind, actual) {
            (ArgKind::Size | ArgKind::Index, CallArg::Expr(e)) => {
                scalar_map.insert(formal.name.clone(), e.clone());
            }
            (ArgKind::Tensor { .. }, CallArg::Window(w)) => {
                window_map.insert(formal.name.clone(), w.clone());
            }
            _ => {
                return Err(SchedError::ReplaceFailed {
                    instr: instr.name.clone(),
                    pattern: String::new(),
                    reason: format!("argument for `{}` has the wrong kind", formal.name),
                })
            }
        }
    }
    Ok(instr.body.iter().map(|s| inline_stmt(s, &scalar_map, &window_map)).collect())
}

fn inline_stmt(s: &Stmt, scalars: &BTreeMap<Sym, Expr>, windows: &BTreeMap<Sym, WindowExpr>) -> Stmt {
    let subst = |e: &Expr| inline_expr(e, scalars, windows);
    match s {
        Stmt::Assign { buf, idx, rhs } => match windows.get(buf) {
            Some(w) => {
                let (target, target_idx) = window_access(w, &idx.iter().map(&subst).collect::<Vec<_>>());
                Stmt::Assign { buf: target, idx: target_idx, rhs: subst(rhs) }
            }
            None => Stmt::Assign { buf: buf.clone(), idx: idx.iter().map(&subst).collect(), rhs: subst(rhs) },
        },
        Stmt::Reduce { buf, idx, rhs } => match windows.get(buf) {
            Some(w) => {
                let (target, target_idx) = window_access(w, &idx.iter().map(&subst).collect::<Vec<_>>());
                Stmt::Reduce { buf: target, idx: target_idx, rhs: subst(rhs) }
            }
            None => Stmt::Reduce { buf: buf.clone(), idx: idx.iter().map(&subst).collect(), rhs: subst(rhs) },
        },
        Stmt::For { var, lo, hi, body } => Stmt::For {
            var: var.clone(),
            lo: subst(lo),
            hi: subst(hi),
            body: body.iter().map(|b| inline_stmt(b, scalars, windows)).collect(),
        },
        Stmt::If { cond, then_body, else_body } => Stmt::If {
            cond: exo_ir::Cond { op: cond.op, lhs: subst(&cond.lhs), rhs: subst(&cond.rhs) },
            then_body: then_body.iter().map(|b| inline_stmt(b, scalars, windows)).collect(),
            else_body: else_body.iter().map(|b| inline_stmt(b, scalars, windows)).collect(),
        },
        other => other.clone(),
    }
}

fn inline_expr(e: &Expr, scalars: &BTreeMap<Sym, Expr>, windows: &BTreeMap<Sym, WindowExpr>) -> Expr {
    match e {
        Expr::Var(s) => scalars.get(s).cloned().unwrap_or_else(|| e.clone()),
        Expr::Read { buf, idx } => {
            let idx: Vec<Expr> = idx.iter().map(|i| inline_expr(i, scalars, windows)).collect();
            match windows.get(buf) {
                Some(w) => {
                    let (target, target_idx) = window_access(w, &idx);
                    Expr::Read { buf: target, idx: target_idx }
                }
                None => Expr::Read { buf: buf.clone(), idx },
            }
        }
        Expr::Binop { op, lhs, rhs } => Expr::Binop {
            op: *op,
            lhs: Box::new(inline_expr(lhs, scalars, windows)),
            rhs: Box::new(inline_expr(rhs, scalars, windows)),
        },
        Expr::Neg(inner) => Expr::Neg(Box::new(inline_expr(inner, scalars, windows))),
        _ => e.clone(),
    }
}

/// Converts an access `w[view_idx...]` through a window into an access of the
/// underlying buffer.
fn window_access(w: &WindowExpr, view_idx: &[Expr]) -> (Sym, Vec<Expr>) {
    let mut out = Vec::new();
    let mut vi = 0usize;
    for access in &w.idx {
        match access {
            WAccess::Point(e) => out.push(e.clone()),
            WAccess::Interval(lo, _) => {
                let rel = view_idx.get(vi).cloned().unwrap_or_else(|| Expr::int(0));
                out.push(Expr::add(lo.clone(), rel));
                vi += 1;
            }
        }
    }
    (w.buf.clone(), out)
}

/// Attempts to unify the instruction's semantic body against a candidate
/// statement, returning the call arguments (in the instruction's parameter
/// order) on success and a human-readable reason on failure.
fn unify_instr(instr: &Proc, candidate: &Stmt) -> std::result::Result<Vec<CallArg>, String> {
    let mut b = Bindings::default();
    if instr.body.len() != 1 {
        return Err(format!("instruction `{}` must have a single top-level statement", instr.name));
    }
    unify_stmt(instr, &instr.body[0], candidate, &mut b)?;

    // Assemble arguments in signature order.
    let mut args = Vec::new();
    for formal in &instr.args {
        match &formal.kind {
            ArgKind::Tensor { .. } => match b.windows.get(&formal.name) {
                Some(w) => args.push(CallArg::Window(w.clone())),
                None => return Err(format!("tensor parameter `{}` was never bound", formal.name)),
            },
            ArgKind::Size | ArgKind::Index => match b.scalars.get(&formal.name) {
                Some(e) => args.push(CallArg::Expr(e.clone())),
                None => return Err(format!("scalar parameter `{}` was never bound", formal.name)),
            },
        }
    }
    Ok(args)
}

fn unify_stmt(instr: &Proc, spec: &Stmt, cand: &Stmt, b: &mut Bindings) -> std::result::Result<(), String> {
    match (spec, cand) {
        (
            Stmt::For { var: sv, lo: slo, hi: shi, body: sbody },
            Stmt::For { var: cv, lo: clo, hi: chi, body: cbody },
        ) => {
            unify_index(instr, slo, clo, b)?;
            unify_index(instr, shi, chi, b)?;
            b.loop_vars.insert(sv.clone(), cv.clone());
            if sbody.len() != cbody.len() {
                return Err("loop bodies have different lengths".into());
            }
            for (s, c) in sbody.iter().zip(cbody) {
                unify_stmt(instr, s, c, b)?;
            }
            Ok(())
        }
        (Stmt::Assign { buf: sb, idx: si, rhs: sr }, Stmt::Assign { buf: cb, idx: ci, rhs: cr })
        | (Stmt::Reduce { buf: sb, idx: si, rhs: sr }, Stmt::Reduce { buf: cb, idx: ci, rhs: cr }) => {
            if !matches!(
                (spec, cand),
                (Stmt::Assign { .. }, Stmt::Assign { .. }) | (Stmt::Reduce { .. }, Stmt::Reduce { .. })
            ) {
                return Err("assignment kind mismatch".into());
            }
            unify_param_access(instr, sb, si, cb, ci, b)?;
            unify_value(instr, sr, cr, b)
        }
        (spec, cand) => Err(format!(
            "instruction statement {:?} cannot match candidate statement {:?}",
            kind_name(spec),
            kind_name(cand)
        )),
    }
}

fn kind_name(s: &Stmt) -> &'static str {
    match s {
        Stmt::Assign { .. } => "assignment",
        Stmt::Reduce { .. } => "reduction",
        Stmt::For { .. } => "loop",
        Stmt::Alloc { .. } => "allocation",
        Stmt::Call { .. } => "call",
        Stmt::If { .. } => "if",
        Stmt::Comment(_) => "comment",
    }
}

/// Unifies index expressions appearing in loop bounds: the spec side may only
/// contain constants or `size` parameters of the instruction.
fn unify_index(instr: &Proc, spec: &Expr, cand: &Expr, b: &mut Bindings) -> std::result::Result<(), String> {
    match spec {
        Expr::Int(v) => match cand.simplify().as_int() {
            Some(c) if c == *v => Ok(()),
            _ => Err(format!("expected constant {v}, found `{}`", exo_ir::printer::expr_to_string(cand))),
        },
        Expr::Var(s) if matches!(instr.arg(s).map(|a| &a.kind), Some(ArgKind::Size)) => {
            b.bind_scalar(s, cand.clone())
        }
        _ => Err(format!(
            "unsupported bound `{}` in instruction specification",
            exo_ir::printer::expr_to_string(spec)
        )),
    }
}

/// Unifies a value expression of the spec against the candidate.
fn unify_value(instr: &Proc, spec: &Expr, cand: &Expr, b: &mut Bindings) -> std::result::Result<(), String> {
    match spec {
        Expr::Read { buf, idx } => match cand {
            Expr::Read { buf: cb, idx: ci } => unify_param_access(instr, buf, idx, cb, ci, b),
            _ => Err(format!(
                "expected a read for parameter `{buf}`, found `{}`",
                exo_ir::printer::expr_to_string(cand)
            )),
        },
        Expr::Binop { op, lhs, rhs } => match cand {
            Expr::Binop { op: cop, lhs: cl, rhs: cr } if cop == op => {
                // Try the operands in order; for commutative operators also
                // try the swapped order (e.g. `a[k] * B_reg[j]` matching a
                // broadcast-FMA spec written as `lhs[i] * rhs[0]`).
                let mut attempt = b.clone();
                match unify_value(instr, lhs, cl, &mut attempt)
                    .and_then(|()| unify_value(instr, rhs, cr, &mut attempt))
                {
                    Ok(()) => {
                        *b = attempt;
                        Ok(())
                    }
                    Err(first_err) => {
                        if matches!(op, BinOp::Mul | BinOp::Add) {
                            let mut swapped = b.clone();
                            unify_value(instr, lhs, cr, &mut swapped)?;
                            unify_value(instr, rhs, cl, &mut swapped)?;
                            *b = swapped;
                            Ok(())
                        } else {
                            Err(first_err)
                        }
                    }
                }
            }
            _ => Err("arithmetic structure mismatch".into()),
        },
        Expr::Neg(inner) => match cand {
            Expr::Neg(cinner) => unify_value(instr, inner, cinner, b),
            _ => Err("negation mismatch".into()),
        },
        Expr::Int(v) => match cand.as_int() {
            Some(c) if c == *v => Ok(()),
            _ => Err(format!("constant {v} mismatch")),
        },
        Expr::Float(v) => match cand {
            Expr::Float(c) if c == v => Ok(()),
            _ => Err(format!("constant {v} mismatch")),
        },
        Expr::Var(s) => {
            // A bare scalar parameter (e.g. an `index` argument used as a value).
            if instr.arg(s).is_some() {
                b.bind_scalar(s, cand.clone())
            } else if let Some(cv) = b.loop_vars.get(s) {
                match cand {
                    Expr::Var(c) if c == cv => Ok(()),
                    _ => Err(format!("expected loop variable `{cv}`")),
                }
            } else {
                Err(format!("unbound specification variable `{s}`"))
            }
        }
    }
}

/// The core of the matcher: unify an access to an instruction tensor
/// parameter `param[spec_idx...]` with a candidate access `cbuf[cand_idx...]`,
/// producing (or checking) the window binding for `param`.
fn unify_param_access(
    instr: &Proc,
    param: &Sym,
    spec_idx: &[Expr],
    cbuf: &Sym,
    cand_idx: &[Expr],
    b: &mut Bindings,
) -> std::result::Result<(), String> {
    let formal =
        instr.arg(param).ok_or_else(|| format!("`{param}` is not a parameter of `{}`", instr.name))?;
    let dims = match &formal.kind {
        ArgKind::Tensor { dims, .. } => dims.clone(),
        _ => return Err(format!("parameter `{param}` is not a tensor")),
    };
    if spec_idx.len() != dims.len() {
        return Err(format!("specification access to `{param}` has the wrong rank"));
    }
    if spec_idx.len() != 1 {
        return Err(format!(
            "only rank-1 instruction operands are supported, `{param}` has rank {}",
            spec_idx.len()
        ));
    }
    if cand_idx.is_empty() {
        return Err(format!("candidate access to `{cbuf}` has rank 0"));
    }
    let extent = dims[0]
        .simplify()
        .as_int()
        .ok_or_else(|| format!("parameter `{param}` must have a constant extent"))?;

    let spec_i = &spec_idx[0];
    match spec_i {
        // Case 1: the spec indexes the operand by its own (bound) loop
        // variable — a contiguous, stride-1 vector access.
        Expr::Var(sv) if b.loop_vars.contains_key(sv) => {
            let cv = b.loop_vars[sv].clone();
            let mut window_dim: Option<(usize, Expr)> = None;
            for (d, ce) in cand_idx.iter().enumerate() {
                if ce.uses_var(&cv) {
                    if window_dim.is_some() {
                        return Err(format!(
                            "candidate access to `{cbuf}` uses `{cv}` in more than one subscript"
                        ));
                    }
                    let aff = Affine::of(ce)
                        .ok_or_else(|| format!("subscript of `{cbuf}` is not affine in `{cv}`"))?;
                    let (coeff, rest) = aff.split_var(&cv);
                    if coeff != 1 {
                        return Err(format!(
                            "access to `{cbuf}` has stride {coeff} in `{cv}`, the instruction requires stride 1"
                        ));
                    }
                    window_dim = Some((d, rest.to_expr()));
                }
            }
            let (d, base) = window_dim.ok_or_else(|| {
                format!("candidate access to `{cbuf}` does not use the vectorised loop variable `{cv}`")
            })?;
            let mut accesses = Vec::new();
            for (i, ce) in cand_idx.iter().enumerate() {
                if i == d {
                    accesses.push(WAccess::Interval(
                        base.clone(),
                        Expr::add(base.clone(), Expr::int(extent)).simplify(),
                    ));
                } else {
                    accesses.push(WAccess::Point(ce.clone()));
                }
            }
            b.bind_window(param, WindowExpr::new(cbuf.clone(), accesses))
        }
        // Case 2: the spec indexes the operand by an `index` parameter — the
        // lane-selection form of `vfmaq_laneq_f32`. The last candidate
        // subscript selects the lane; the window covers the full last
        // dimension.
        Expr::Var(sv) if matches!(instr.arg(sv).map(|a| &a.kind), Some(ArgKind::Index)) => {
            let lane = cand_idx.last().expect("non-empty checked above").clone();
            b.bind_scalar(sv, lane)?;
            let mut accesses: Vec<WAccess> =
                cand_idx[..cand_idx.len() - 1].iter().map(|e| WAccess::Point(e.clone())).collect();
            accesses.push(WAccess::Interval(Expr::int(0), Expr::int(extent)));
            b.bind_window(param, WindowExpr::new(cbuf.clone(), accesses))
        }
        // Case 3: the spec indexes the operand by a constant (broadcast-style
        // access of a single element).
        Expr::Int(c) => {
            let last = cand_idx.last().expect("non-empty checked above").clone();
            let base = Expr::sub(last, Expr::int(*c)).simplify();
            let mut accesses: Vec<WAccess> =
                cand_idx[..cand_idx.len() - 1].iter().map(|e| WAccess::Point(e.clone())).collect();
            accesses.push(WAccess::Interval(base.clone(), Expr::add(base, Expr::int(extent)).simplify()));
            b.bind_window(param, WindowExpr::new(cbuf.clone(), accesses))
        }
        other => Err(format!(
            "unsupported operand subscript `{}` in instruction `{}`",
            exo_ir::printer::expr_to_string(other),
            instr.name
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::builder::*;
    use exo_ir::printer::proc_to_string;
    use exo_ir::{InstrClass, InstrInfo, MemSpace, ScalarType};

    fn vld() -> Arc<Proc> {
        Arc::new(
            proc("neon_vld_4xf32")
                .tensor_arg("dst", ScalarType::F32, vec![int(4)], MemSpace::Neon)
                .tensor_arg("src", ScalarType::F32, vec![int(4)], MemSpace::Dram)
                .body(vec![for_("i", 0, 4, vec![assign("dst", vec![var("i")], read("src", vec![var("i")]))])])
                .instr_info(InstrInfo::new(
                    "{dst_data} = vld1q_f32(&{src_data});",
                    InstrClass::VecLoad,
                    4,
                    ScalarType::F32,
                ))
                .build(),
        )
    }

    fn vst() -> Arc<Proc> {
        Arc::new(
            proc("neon_vst_4xf32")
                .tensor_arg("dst", ScalarType::F32, vec![int(4)], MemSpace::Dram)
                .tensor_arg("src", ScalarType::F32, vec![int(4)], MemSpace::Neon)
                .body(vec![for_("i", 0, 4, vec![assign("dst", vec![var("i")], read("src", vec![var("i")]))])])
                .instr_info(InstrInfo::new(
                    "vst1q_f32(&{dst_data}, {src_data});",
                    InstrClass::VecStore,
                    4,
                    ScalarType::F32,
                ))
                .build(),
        )
    }

    fn vfmla() -> Arc<Proc> {
        Arc::new(
            proc("neon_vfmla_4xf32_4xf32")
                .tensor_arg("dst", ScalarType::F32, vec![int(4)], MemSpace::Neon)
                .tensor_arg("lhs", ScalarType::F32, vec![int(4)], MemSpace::Neon)
                .tensor_arg("rhs", ScalarType::F32, vec![int(4)], MemSpace::Neon)
                .index_arg("l")
                .body(vec![for_(
                    "i",
                    0,
                    4,
                    vec![reduce(
                        "dst",
                        vec![var("i")],
                        Expr::mul(read("lhs", vec![var("i")]), read("rhs", vec![var("l")])),
                    )],
                )])
                .instr_info(InstrInfo::new(
                    "{dst_data} = vfmaq_laneq_f32({dst_data}, {lhs_data}, {rhs_data}, {l});",
                    InstrClass::VecFma,
                    4,
                    ScalarType::F32,
                ))
                .build(),
        )
    }

    /// A little host procedure with a vectorisable load loop.
    fn host_with_load_loop() -> Proc {
        proc("host")
            .tensor_arg("C", ScalarType::F32, vec![int(12), int(8)], MemSpace::Dram)
            .body(vec![
                alloc("C_reg", ScalarType::F32, vec![int(12), int(2), int(4)], MemSpace::Dram),
                for_(
                    "jt",
                    0,
                    3,
                    vec![for_(
                        "jtt",
                        0,
                        4,
                        vec![for_(
                            "it",
                            0,
                            2,
                            vec![for_(
                                "itt",
                                0,
                                4,
                                vec![assign(
                                    "C_reg",
                                    vec![
                                        Expr::add(Expr::mul(int(4), var("jt")), var("jtt")),
                                        var("it"),
                                        var("itt"),
                                    ],
                                    read(
                                        "C",
                                        vec![
                                            Expr::add(Expr::mul(int(4), var("jt")), var("jtt")),
                                            Expr::add(Expr::mul(int(4), var("it")), var("itt")),
                                        ],
                                    ),
                                )],
                            )],
                        )],
                    )],
                ),
            ])
            .build()
    }

    #[test]
    fn replace_load_loop_with_vld() {
        let p = host_with_load_loop();
        let q = replace(&p, "for itt in _: _", &vld()).unwrap();
        let text = proc_to_string(&q);
        assert!(
            text.contains("neon_vld_4xf32(C_reg[4 * jt + jtt, it, 0:4], C[4 * jt + jtt, 4 * it:4 * it + 4])"),
            "unexpected output:\n{text}"
        );
    }

    #[test]
    fn replace_fma_loop_binds_lane_index() {
        let body = vec![
            alloc("C_reg", ScalarType::F32, vec![int(12), int(2), int(4)], MemSpace::Dram),
            alloc("A_reg", ScalarType::F32, vec![int(2), int(4)], MemSpace::Dram),
            alloc("B_reg", ScalarType::F32, vec![int(3), int(4)], MemSpace::Dram),
            for_(
                "jt",
                0,
                3,
                vec![for_(
                    "it",
                    0,
                    2,
                    vec![for_(
                        "jtt",
                        0,
                        4,
                        vec![for_(
                            "itt",
                            0,
                            4,
                            vec![reduce(
                                "C_reg",
                                vec![
                                    Expr::add(var("jtt"), Expr::mul(int(4), var("jt"))),
                                    var("it"),
                                    var("itt"),
                                ],
                                Expr::mul(
                                    read("A_reg", vec![var("it"), var("itt")]),
                                    read("B_reg", vec![var("jt"), var("jtt")]),
                                ),
                            )],
                        )],
                    )],
                )],
            ),
        ];
        let p = proc("host_fma").body(body).build();
        let q = replace(&p, "for itt in _: _", &vfmla()).unwrap();
        let text = proc_to_string(&q);
        assert!(
            text.contains(
                "neon_vfmla_4xf32_4xf32(C_reg[4 * jt + jtt, it, 0:4], A_reg[it, 0:4], B_reg[jt, 0:4], jtt)"
            ),
            "unexpected output:\n{text}"
        );
    }

    #[test]
    fn replace_skips_candidates_that_do_not_unify() {
        // Two itt loops: the first is a reduction (cannot match a store), the
        // second is a plain copy that can.
        let p = proc("host_two")
            .tensor_arg("C", ScalarType::F32, vec![int(8)], MemSpace::Dram)
            .body(vec![
                alloc("R", ScalarType::F32, vec![int(4)], MemSpace::Dram),
                for_("itt", 0, 4, vec![reduce("R", vec![var("itt")], read("C", vec![var("itt")]))]),
                for_("itt", 0, 4, vec![assign("C", vec![var("itt")], read("R", vec![var("itt")]))]),
            ])
            .build();
        let q = replace(&p, "for itt in _: _", &vst()).unwrap();
        let text = proc_to_string(&q);
        assert!(text.contains("neon_vst_4xf32(C[0:4], R[0:4])"), "unexpected output:\n{text}");
        // The reduction loop must still be present.
        assert!(text.contains("R[itt] += C[itt]"));
    }

    #[test]
    fn replace_fails_when_stride_is_not_one() {
        let p = proc("strided")
            .tensor_arg("C", ScalarType::F32, vec![int(16)], MemSpace::Dram)
            .body(vec![
                alloc("R", ScalarType::F32, vec![int(4)], MemSpace::Dram),
                for_(
                    "itt",
                    0,
                    4,
                    vec![assign("R", vec![var("itt")], read("C", vec![Expr::mul(int(2), var("itt"))]))],
                ),
            ])
            .build();
        let err = replace(&p, "for itt in _: _", &vld()).unwrap_err();
        match err {
            SchedError::ReplaceFailed { reason, .. } => {
                assert!(reason.contains("stride"), "reason: {reason}")
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn replace_fails_on_wrong_extent() {
        let p = proc("short")
            .tensor_arg("C", ScalarType::F32, vec![int(8)], MemSpace::Dram)
            .body(vec![
                alloc("R", ScalarType::F32, vec![int(4)], MemSpace::Dram),
                for_("itt", 0, 3, vec![assign("R", vec![var("itt")], read("C", vec![var("itt")]))]),
            ])
            .build();
        assert!(replace(&p, "for itt in _: _", &vld()).is_err());
    }

    #[test]
    fn replace_all_counts_rewrites() {
        let p = host_with_load_loop();
        let (q, n) = replace_all(&p, "for itt in _: _", &vld()).unwrap();
        assert_eq!(n, 1);
        assert!(proc_to_string(&q).contains("neon_vld_4xf32"));
        let (_, n2) = replace_all(&q, "for itt in _: _", &vld()).unwrap();
        assert_eq!(n2, 0);
    }

    #[test]
    fn inline_call_round_trips_replace() {
        let p = host_with_load_loop();
        let q = replace(&p, "for itt in _: _", &vld()).unwrap();
        // Find the call and inline it again.
        let call = exo_ir::stmt::walk(&q.body)
            .into_iter()
            .find_map(|(_, s)| match s {
                Stmt::Call { instr, args } => Some((instr.clone(), args.clone())),
                _ => None,
            })
            .expect("a call exists");
        let inlined = inline_call(&call.0, &call.1).unwrap();
        assert_eq!(inlined.len(), 1);
        let original_loop = exo_ir::stmt::stmt_at(&p.body, &[1, 0, 0, 0]).unwrap();
        let aligned = align_loop_vars(&inlined[0], original_loop).simplify();
        assert_eq!(aligned, original_loop.simplify());
    }

    #[test]
    fn broadcast_constant_index_unifies() {
        // dst[i] += lhs[i] * rhs[0]  (broadcast FMA against a single element)
        let bcast = Arc::new(
            proc("neon_vfmadd_4xf32_1xf32")
                .tensor_arg("dst", ScalarType::F32, vec![int(4)], MemSpace::Neon)
                .tensor_arg("lhs", ScalarType::F32, vec![int(4)], MemSpace::Neon)
                .tensor_arg("rhs", ScalarType::F32, vec![int(1)], MemSpace::Dram)
                .body(vec![for_(
                    "i",
                    0,
                    4,
                    vec![reduce(
                        "dst",
                        vec![var("i")],
                        Expr::mul(read("lhs", vec![var("i")]), read("rhs", vec![int(0)])),
                    )],
                )])
                .instr_info(InstrInfo::new(
                    "{dst_data} = vfmaq_n_f32({dst_data}, {lhs_data}, *{rhs_data});",
                    InstrClass::VecFma,
                    4,
                    ScalarType::F32,
                ))
                .build(),
        );
        let p = proc("host_bcast")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(1)], MemSpace::Dram)
            .body(vec![
                alloc("C_reg", ScalarType::F32, vec![int(4)], MemSpace::Dram),
                alloc("B_reg", ScalarType::F32, vec![int(4)], MemSpace::Dram),
                for_(
                    "k",
                    0,
                    var("KC"),
                    vec![for_(
                        "jtt",
                        0,
                        4,
                        vec![reduce(
                            "C_reg",
                            vec![var("jtt")],
                            Expr::mul(read("B_reg", vec![var("jtt")]), read("Ac", vec![var("k"), int(0)])),
                        )],
                    )],
                ),
            ])
            .build();
        let q = replace(&p, "for jtt in _: _", &bcast).unwrap();
        let text = proc_to_string(&q);
        assert!(text.contains("neon_vfmadd_4xf32_1xf32(C_reg[0:4], B_reg[0:4], Ac[k, 0:1])"), "got:\n{text}");
    }
}
