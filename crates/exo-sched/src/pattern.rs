//! Textual patterns used to address statements inside a procedure, mirroring
//! the cursor/pattern strings of the paper's user code:
//!
//! * `"for itt in _: _"` — the first loop whose index variable is `itt`,
//! * `"C[_] += _"` — a reduction into buffer `C`,
//! * `"C_reg[_] = _"` — an assignment into buffer `C_reg`,
//! * `"Xc[_]"` — (expression pattern) a read of buffer `Xc`, used by
//!   `bind_expr`.

use exo_ir::stmt::{stmt_at, walk};
use exo_ir::{Expr, Proc, Stmt, StmtPath, Sym};

use crate::error::{Result, SchedError};

/// A parsed statement pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtPattern {
    /// `for <var> in _: _`
    ForNamed(Sym),
    /// `<buf>[_] += _`
    ReduceTo(Sym),
    /// `<buf>[_] = _`
    AssignTo(Sym),
    /// `<name>(_)` — a call to the named instruction.
    CallTo(String),
    /// `alloc <name>` — the allocation of the named buffer (extension used by
    /// operators like `lift_alloc`).
    AllocOf(Sym),
}

impl StmtPattern {
    /// Parses a pattern string.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::PatternNotFound`] style parse failures as
    /// [`SchedError::WrongStatementKind`] since the text itself is malformed.
    pub fn parse(text: &str) -> Result<StmtPattern> {
        let t = text.trim();
        if let Some(rest) = t.strip_prefix("for ") {
            let var =
                rest.split_whitespace().next().filter(|v| !v.is_empty()).ok_or_else(|| malformed(text))?;
            return Ok(StmtPattern::ForNamed(Sym::new(var)));
        }
        if let Some(rest) = t.strip_prefix("alloc ") {
            let name = rest.trim();
            if name.is_empty() {
                return Err(malformed(text));
            }
            return Ok(StmtPattern::AllocOf(Sym::new(name)));
        }
        if let Some(idx) = t.find("+=") {
            let lhs = &t[..idx];
            let buf = buffer_of_lhs(lhs).ok_or_else(|| malformed(text))?;
            return Ok(StmtPattern::ReduceTo(buf));
        }
        if let Some(idx) = t.find('=') {
            let lhs = &t[..idx];
            let buf = buffer_of_lhs(lhs).ok_or_else(|| malformed(text))?;
            return Ok(StmtPattern::AssignTo(buf));
        }
        if let Some(idx) = t.find('(') {
            let name = t[..idx].trim();
            if !name.is_empty() {
                return Ok(StmtPattern::CallTo(name.to_string()));
            }
        }
        Err(malformed(text))
    }

    /// Whether `stmt` matches this pattern.
    pub fn matches(&self, stmt: &Stmt) -> bool {
        match (self, stmt) {
            (StmtPattern::ForNamed(v), Stmt::For { var, .. }) => v == var,
            (StmtPattern::ReduceTo(b), Stmt::Reduce { buf, .. }) => b == buf,
            (StmtPattern::AssignTo(b), Stmt::Assign { buf, .. }) => b == buf,
            (StmtPattern::CallTo(name), Stmt::Call { instr, .. }) => instr.name == *name,
            (StmtPattern::AllocOf(n), Stmt::Alloc { name, .. }) => n == name,
            _ => false,
        }
    }
}

fn malformed(text: &str) -> SchedError {
    SchedError::WrongStatementKind {
        expected: "a pattern like `for i in _: _`, `C[_] += _`, `C[_] = _`, `alloc X`, or `f(_)`",
        found: format!("`{text}`"),
    }
}

fn buffer_of_lhs(lhs: &str) -> Option<Sym> {
    let lhs = lhs.trim();
    let bracket = lhs.find('[')?;
    let name = lhs[..bracket].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    Some(Sym::new(name))
}

/// Finds every statement in `p` matching the pattern, in pre-order.
pub fn find_all(p: &Proc, pattern: &StmtPattern) -> Vec<StmtPath> {
    walk(&p.body).into_iter().filter(|(_, stmt)| pattern.matches(stmt)).map(|(path, _)| path).collect()
}

/// Finds every statement matching the textual pattern, in pre-order.
///
/// # Errors
///
/// Returns an error if the pattern text is malformed.
pub fn find_all_text(p: &Proc, pattern: &str) -> Result<Vec<StmtPath>> {
    let parsed = StmtPattern::parse(pattern)?;
    Ok(find_all(p, &parsed))
}

/// Finds the first statement matching the textual pattern.
///
/// # Errors
///
/// Returns [`SchedError::PatternNotFound`] if nothing matches.
pub fn find_first(p: &Proc, pattern: &str) -> Result<StmtPath> {
    let matches = find_all_text(p, pattern)?;
    matches
        .into_iter()
        .next()
        .ok_or_else(|| SchedError::PatternNotFound { pattern: pattern.to_string(), proc: p.name.clone() })
}

/// Fetches the statement at `path`, reporting a scheduling error when the
/// path is stale.
pub fn stmt_at_checked<'a>(p: &'a Proc, path: &[usize]) -> Result<&'a Stmt> {
    stmt_at(&p.body, path).ok_or_else(|| SchedError::PatternNotFound {
        pattern: format!("<path {path:?}>"),
        proc: p.name.clone(),
    })
}

/// An expression pattern: currently only "read of a named buffer" (`"Xc[_]"`)
/// is needed by the scheduling recipes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprPattern {
    /// The buffer whose read is matched.
    pub buf: Sym,
}

impl ExprPattern {
    /// Parses an expression pattern such as `"Ac[_]"`.
    ///
    /// # Errors
    ///
    /// Returns an error if the text is not of the form `name[...]`.
    pub fn parse(text: &str) -> Result<ExprPattern> {
        let buf = buffer_of_lhs(text).ok_or_else(|| SchedError::WrongStatementKind {
            expected: "an expression pattern like `Ac[_]`",
            found: format!("`{text}`"),
        })?;
        Ok(ExprPattern { buf })
    }

    /// Whether an expression matches (is a read of the named buffer).
    pub fn matches(&self, e: &Expr) -> bool {
        matches!(e, Expr::Read { buf, .. } if *buf == self.buf)
    }

    /// Finds the first read matching the pattern inside `e` (pre-order,
    /// left-to-right) and returns a clone of it.
    pub fn find_in_expr(&self, e: &Expr) -> Option<Expr> {
        if self.matches(e) {
            return Some(e.clone());
        }
        match e {
            Expr::Binop { lhs, rhs, .. } => self.find_in_expr(lhs).or_else(|| self.find_in_expr(rhs)),
            Expr::Neg(inner) => self.find_in_expr(inner),
            Expr::Read { idx, .. } => idx.iter().find_map(|i| self.find_in_expr(i)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::builder::*;
    use exo_ir::{MemSpace, ScalarType};

    fn sample() -> Proc {
        proc("uk")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(8)], MemSpace::Dram)
            .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), int(12)], MemSpace::Dram)
            .tensor_arg("C", ScalarType::F32, vec![int(12), int(8)], MemSpace::Dram)
            .body(vec![for_(
                "k",
                0,
                var("KC"),
                vec![for_(
                    "j",
                    0,
                    12,
                    vec![for_(
                        "i",
                        0,
                        8,
                        vec![reduce(
                            "C",
                            vec![var("j"), var("i")],
                            Expr::mul(
                                read("Ac", vec![var("k"), var("i")]),
                                read("Bc", vec![var("k"), var("j")]),
                            ),
                        )],
                    )],
                )],
            )])
            .build()
    }

    #[test]
    fn parses_for_pattern() {
        assert_eq!(StmtPattern::parse("for itt in _: _").unwrap(), StmtPattern::ForNamed("itt".into()));
        assert_eq!(StmtPattern::parse("  for i in seq(0, 4): _").unwrap(), StmtPattern::ForNamed("i".into()));
    }

    #[test]
    fn parses_assign_and_reduce_patterns() {
        assert_eq!(StmtPattern::parse("C[_] += _").unwrap(), StmtPattern::ReduceTo("C".into()));
        assert_eq!(StmtPattern::parse("C_reg[_] = _").unwrap(), StmtPattern::AssignTo("C_reg".into()));
    }

    #[test]
    fn parses_call_and_alloc_patterns() {
        assert_eq!(
            StmtPattern::parse("neon_vld_4xf32(_)").unwrap(),
            StmtPattern::CallTo("neon_vld_4xf32".into())
        );
        assert_eq!(StmtPattern::parse("alloc C_reg").unwrap(), StmtPattern::AllocOf("C_reg".into()));
    }

    #[test]
    fn rejects_malformed_patterns() {
        assert!(StmtPattern::parse("").is_err());
        assert!(StmtPattern::parse("for ").is_err());
        assert!(StmtPattern::parse("just words").is_err());
    }

    #[test]
    fn finds_loops_by_name() {
        let p = sample();
        let path = find_first(&p, "for i in _: _").unwrap();
        assert_eq!(path, vec![0, 0, 0]);
        assert!(find_first(&p, "for zz in _: _").is_err());
    }

    #[test]
    fn finds_reduce_statement() {
        let p = sample();
        let path = find_first(&p, "C[_] += _").unwrap();
        assert_eq!(path, vec![0, 0, 0, 0]);
        let all = find_all_text(&p, "C[_] += _").unwrap();
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn expr_pattern_finds_reads() {
        let pat = ExprPattern::parse("Ac[_]").unwrap();
        let e = Expr::mul(read("Ac", vec![var("k"), var("i")]), read("Bc", vec![var("k"), var("j")]));
        let found = pat.find_in_expr(&e).unwrap();
        assert_eq!(found, read("Ac", vec![var("k"), var("i")]));
        let missing = ExprPattern::parse("Zc[_]").unwrap();
        assert!(missing.find_in_expr(&e).is_none());
    }

    #[test]
    fn stmt_at_checked_reports_stale_paths() {
        let p = sample();
        assert!(stmt_at_checked(&p, &[0, 0, 0, 0]).is_ok());
        assert!(stmt_at_checked(&p, &[5]).is_err());
    }
}
