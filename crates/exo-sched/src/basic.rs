//! Basic whole-procedure operators: `rename`, `partial_eval`, `simplify`,
//! `set_memory`, and `set_precision`.

use std::collections::BTreeMap;

use exo_ir::stmt::stmt_at_mut;
use exo_ir::{ArgKind, Expr, MemSpace, Proc, ScalarType, Stmt, Sym};

use crate::error::{Result, SchedError};
use crate::pattern::{find_all, StmtPattern};

/// Returns a copy of `p` with a new name (the paper's `rename(ukernel_ref,
/// "uk8x12")`).
pub fn rename(p: &Proc, new_name: &str) -> Proc {
    let mut out = p.clone();
    out.name = new_name.to_string();
    out
}

/// Specialises the first `values.len()` `size` arguments of the procedure to
/// the given constants, removing them from the signature and substituting the
/// constants throughout (the paper's `p.partial_eval(MR, NR)`).
///
/// # Errors
///
/// Returns [`SchedError::TooManyValues`] if more values than `size` arguments
/// are supplied, and propagates validation errors if substitution produces
/// ill-formed IR.
pub fn partial_eval(p: &Proc, values: &[i64]) -> Result<Proc> {
    let size_args: Vec<Sym> =
        p.args.iter().filter(|a| matches!(a.kind, ArgKind::Size)).map(|a| a.name.clone()).collect();
    if values.len() > size_args.len() {
        return Err(SchedError::TooManyValues { sizes: size_args.len(), values: values.len() });
    }
    let bound: Vec<(Sym, i64)> = size_args.iter().cloned().zip(values.iter().copied()).collect();
    partial_eval_named(p, &bound)
}

/// Specialises the named `size` arguments to constants.
///
/// # Errors
///
/// Returns [`SchedError::UnknownBuffer`] if a name is not a `size` argument of
/// the procedure.
pub fn partial_eval_named(p: &Proc, values: &[(Sym, i64)]) -> Result<Proc> {
    let mut map: BTreeMap<Sym, Expr> = BTreeMap::new();
    for (name, v) in values {
        match p.arg(name) {
            Some(arg) if matches!(arg.kind, ArgKind::Size) => {
                map.insert(name.clone(), Expr::int(*v));
            }
            _ => return Err(SchedError::UnknownBuffer { buf: name.clone() }),
        }
    }
    let mut out = p.clone();
    out.args.retain(|a| !map.contains_key(&a.name));
    // Substitute into remaining tensor argument dimensions.
    for arg in &mut out.args {
        if let ArgKind::Tensor { dims, .. } = &mut arg.kind {
            for d in dims.iter_mut() {
                *d = d.subst(&map).simplify();
            }
        }
    }
    out.body = out.body.iter().map(|s| s.subst(&map).simplify()).collect();
    out.validate()?;
    Ok(out)
}

/// Simplifies every index expression in the procedure (constant folding and
/// affine normalisation). Scheduling operators already simplify what they
/// touch; this exposes the same cleanup as a standalone step, matching Exo's
/// `simplify(p)`.
pub fn simplify(p: &Proc) -> Proc {
    p.simplified()
}

/// Changes the memory placement of an allocation (the paper's
/// `set_memory(p, 'C_reg', Neon)`).
///
/// # Errors
///
/// Returns [`SchedError::UnknownBuffer`] if no allocation with that name
/// exists.
pub fn set_memory(p: &Proc, buf: &str, mem: MemSpace) -> Result<Proc> {
    let name = Sym::new(buf);
    let mut out = p.clone();
    let paths = find_all(&out, &StmtPattern::AllocOf(name.clone()));
    if paths.is_empty() {
        return Err(SchedError::UnknownBuffer { buf: name });
    }
    for path in paths {
        if let Some(Stmt::Alloc { mem: m, .. }) = stmt_at_mut(&mut out.body, &path) {
            *m = mem;
        }
    }
    Ok(out)
}

/// Changes the element precision of an allocation or of a tensor argument
/// (the paper's `set_precision(p, A_reg, "f16")`, Section III-D).
///
/// # Errors
///
/// Returns [`SchedError::UnknownBuffer`] if neither an allocation nor an
/// argument with that name exists.
pub fn set_precision(p: &Proc, buf: &str, ty: ScalarType) -> Result<Proc> {
    let name = Sym::new(buf);
    let mut out = p.clone();
    let mut changed = false;
    for arg in &mut out.args {
        if arg.name == name {
            if let ArgKind::Tensor { ty: t, .. } = &mut arg.kind {
                *t = ty;
                changed = true;
            }
        }
    }
    let paths = find_all(&out, &StmtPattern::AllocOf(name.clone()));
    for path in &paths {
        if let Some(Stmt::Alloc { ty: t, .. }) = stmt_at_mut(&mut out.body, path) {
            *t = ty;
            changed = true;
        }
    }
    if changed {
        Ok(out)
    } else {
        Err(SchedError::UnknownBuffer { buf: name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::builder::*;
    use exo_ir::printer::proc_to_string;

    fn ref_kernel() -> Proc {
        proc("ukernel_ref")
            .size_arg("MR")
            .size_arg("NR")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), var("MR")], MemSpace::Dram)
            .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), var("NR")], MemSpace::Dram)
            .tensor_arg("C", ScalarType::F32, vec![var("NR"), var("MR")], MemSpace::Dram)
            .body(vec![for_(
                "k",
                0,
                var("KC"),
                vec![for_(
                    "j",
                    0,
                    var("NR"),
                    vec![for_(
                        "i",
                        0,
                        var("MR"),
                        vec![reduce(
                            "C",
                            vec![var("j"), var("i")],
                            Expr::mul(
                                read("Ac", vec![var("k"), var("i")]),
                                read("Bc", vec![var("k"), var("j")]),
                            ),
                        )],
                    )],
                )],
            )])
            .build()
    }

    #[test]
    fn rename_changes_only_the_name() {
        let p = ref_kernel();
        let q = rename(&p, "uk_8x12");
        assert_eq!(q.name, "uk_8x12");
        assert_eq!(q.body, p.body);
    }

    #[test]
    fn partial_eval_replaces_leading_size_args() {
        let p = ref_kernel();
        let q = partial_eval(&p, &[8, 12]).unwrap();
        assert_eq!(q.args.len(), p.args.len() - 2);
        let text = proc_to_string(&q);
        assert!(text.contains("Ac: f32[KC, 8] @ DRAM"));
        assert!(text.contains("C: f32[12, 8] @ DRAM"));
        assert!(text.contains("for j in seq(0, 12):"));
        assert!(text.contains("for i in seq(0, 8):"));
        assert!(q.validate().is_ok());
    }

    #[test]
    fn partial_eval_rejects_excess_values() {
        let p = ref_kernel();
        assert!(matches!(partial_eval(&p, &[1, 2, 3, 4]), Err(SchedError::TooManyValues { .. })));
    }

    #[test]
    fn partial_eval_named_rejects_non_size() {
        let p = ref_kernel();
        assert!(partial_eval_named(&p, &[("Ac".into(), 3)]).is_err());
        let q = partial_eval_named(&p, &[("KC".into(), 512)]).unwrap();
        assert!(proc_to_string(&q).contains("for k in seq(0, 512):"));
    }

    #[test]
    fn set_memory_changes_allocation() {
        let mut p = ref_kernel();
        p.body.insert(0, alloc("C_reg", ScalarType::F32, vec![int(4)], MemSpace::Dram));
        let q = set_memory(&p, "C_reg", MemSpace::Neon).unwrap();
        assert!(proc_to_string(&q).contains("C_reg: f32[4] @ Neon"));
        assert!(set_memory(&p, "nope", MemSpace::Neon).is_err());
    }

    #[test]
    fn set_precision_changes_alloc_and_args() {
        let mut p = ref_kernel();
        p.body.insert(0, alloc("A_reg", ScalarType::F32, vec![int(4)], MemSpace::Neon));
        let q = set_precision(&p, "A_reg", ScalarType::F16).unwrap();
        assert!(proc_to_string(&q).contains("A_reg: f16[4] @ Neon"));
        let q2 = set_precision(&p, "Ac", ScalarType::F16).unwrap();
        assert!(proc_to_string(&q2).contains("Ac: f16[KC, MR] @ DRAM"));
        assert!(set_precision(&p, "missing", ScalarType::F16).is_err());
    }

    #[test]
    fn simplify_folds_indices() {
        let mut p = ref_kernel();
        p.body.push(assign(
            "C",
            vec![Expr::add(Expr::int(0), Expr::mul(Expr::int(1), var("NR"))) - var("NR"), Expr::int(3)],
            flt(0.0),
        ));
        let q = simplify(&p);
        assert!(proc_to_string(&q).contains("C[0, 3]"));
    }
}
