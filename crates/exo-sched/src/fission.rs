//! Loop fission: `autofission` splits a loop nest at a program point and
//! lifts the split through a number of enclosing loops, dropping loops that
//! become redundant — exactly the operator the paper uses to hoist the
//! `C_reg` loads/stores out of the computation (Fig. 8) and the `A_reg` /
//! `B_reg` loads up to the `k`-loop (Fig. 9).
//!
//! # Legality
//!
//! Splitting the body `[G1; G2]` of `for v` into `for v: G1; for v: G2`
//! requires that iterating all of `G1` before all of `G2` does not change
//! behaviour. The checker accepts the split when, for every buffer accessed
//! by both halves with at least one write, every access in both halves
//! mentions the loop variable in a subscript (different iterations touch
//! different elements, so the interleaving between halves is irrelevant).
//!
//! A half that does not mention the loop variable at all is *hoisted out* of
//! the loop instead of being wrapped in a copy of it (Exo's redundant-loop
//! removal). Hoisting is accepted when the half contains no reductions and
//! does not read anything it writes, i.e. executing it once is equivalent to
//! executing it `N ≥ 1` times. Loop extents are assumed positive, as `size`
//! values are in Exo. This is the staging pattern used by the paper's
//! generator; the workspace's differential interpreter tests additionally
//! verify end-to-end behaviour preservation of every generated kernel.

use exo_ir::stmt::{block_of_mut, stmt_at};
use exo_ir::{Proc, Stmt, Sym};

use crate::error::{Result, SchedError};
use crate::pattern::find_first;

/// Which side of the matched statement the fission point lies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// Split immediately before the matched statement.
    Before,
    /// Split immediately after the matched statement.
    After,
}

/// Splits the block containing the first statement matching `pattern` at the
/// given anchor and lifts the split point through `n_lifts` enclosing loops
/// (the paper's `autofission(p, p.find('C_reg[_] = _').after(), n_lifts=5)`).
///
/// # Errors
///
/// * [`SchedError::PatternNotFound`] if the pattern matches nothing.
/// * [`SchedError::LiftTooFar`] if fewer than `n_lifts` enclosing loops exist.
/// * [`SchedError::FissionThroughIf`] if an enclosing statement is an `if`.
/// * [`SchedError::UnsafeFission`] if the dependence checks described in the
///   module documentation fail.
pub fn autofission(p: &Proc, pattern: &str, anchor: Anchor, n_lifts: usize) -> Result<Proc> {
    let path = find_first(p, pattern)?;
    fission_at(p, &path, anchor, n_lifts)
}

/// Like [`autofission`] but addressed by an explicit statement path.
///
/// # Errors
///
/// See [`autofission`].
pub fn fission_at(p: &Proc, path: &[usize], anchor: Anchor, n_lifts: usize) -> Result<Proc> {
    if path.is_empty() {
        return Err(SchedError::PatternNotFound { pattern: "<empty path>".into(), proc: p.name.clone() });
    }
    let mut out = p.clone();
    // The "gap" is a position within the block addressed by `block_path`.
    let mut block_path: Vec<usize> = path[..path.len() - 1].to_vec();
    let mut gap_index = path[path.len() - 1]
        + match anchor {
            Anchor::Before => 0,
            Anchor::After => 1,
        };

    for lift in 0..n_lifts {
        if block_path.is_empty() {
            return Err(SchedError::LiftTooFar { requested: n_lifts, available: lift });
        }
        let enclosing = stmt_at(&out.body, &block_path).expect("block path is valid").clone();
        let (loop_var, lo, hi, body) = match enclosing {
            Stmt::For { var, lo, hi, body } => (var, lo, hi, body),
            Stmt::If { .. } => return Err(SchedError::FissionThroughIf),
            other => {
                return Err(SchedError::WrongStatementKind {
                    expected: "a loop to fission through",
                    found: format!("{other:?}"),
                })
            }
        };

        let g1: Vec<Stmt> = body[..gap_index].to_vec();
        let g2: Vec<Stmt> = body[gap_index..].to_vec();

        let parent_index = *block_path.last().expect("block path is non-empty");

        if g1.is_empty() || g2.is_empty() {
            // Nothing to split at this level; the gap simply moves to before
            // or after the enclosing loop.
            gap_index = if g1.is_empty() { parent_index } else { parent_index + 1 };
            block_path.pop();
            continue;
        }

        check_distribution(&loop_var, &g1, &g2)?;

        let make_half = |half: Vec<Stmt>| -> Result<Vec<Stmt>> {
            let uses = half.iter().any(|s| s.uses_var(&loop_var));
            if !uses {
                check_hoistable(&loop_var, &half)?;
                Ok(half)
            } else {
                Ok(vec![Stmt::For { var: loop_var.clone(), lo: lo.clone(), hi: hi.clone(), body: half }])
            }
        };
        let piece1 = make_half(g1)?;
        let piece2 = make_half(g2)?;
        let piece1_len = piece1.len();

        let replacement: Vec<Stmt> = piece1.into_iter().chain(piece2).collect();
        {
            let (parent_block, pi) = block_of_mut(&mut out.body, &block_path).expect("block path is valid");
            parent_block.remove(pi);
            for (offset, stmt) in replacement.into_iter().enumerate() {
                parent_block.insert(pi + offset, stmt);
            }
        }
        block_path.pop();
        gap_index = parent_index + piece1_len;
    }

    out.validate()?;
    Ok(out)
}

/// Checks that distributing `for v { g1; g2 }` into two loops is safe under
/// the per-iteration disjointness rule described in the module docs.
fn check_distribution(v: &Sym, g1: &[Stmt], g2: &[Stmt]) -> Result<()> {
    let reads1: std::collections::BTreeSet<_> = g1.iter().flat_map(|s| s.read_bufs()).collect();
    let writes1: std::collections::BTreeSet<_> = g1.iter().flat_map(|s| s.written_bufs()).collect();
    let reads2: std::collections::BTreeSet<_> = g2.iter().flat_map(|s| s.read_bufs()).collect();
    let writes2: std::collections::BTreeSet<_> = g2.iter().flat_map(|s| s.written_bufs()).collect();

    let mut shared: std::collections::BTreeSet<Sym> = std::collections::BTreeSet::new();
    for b in writes1.iter() {
        if reads2.contains(b) || writes2.contains(b) {
            shared.insert(b.clone());
        }
    }
    for b in writes2.iter() {
        if reads1.contains(b) || writes1.contains(b) {
            shared.insert(b.clone());
        }
    }

    // Both halves hoistable out of the loop entirely? Then per-iteration
    // interleaving is irrelevant regardless of subscripts.
    let uses1 = g1.iter().any(|s| s.uses_var(v));
    let uses2 = g2.iter().any(|s| s.uses_var(v));
    if !uses1 || !uses2 {
        return Ok(());
    }

    for buf in shared {
        let ok = accesses_mention_var(g1, &buf, v) && accesses_mention_var(g2, &buf, v);
        if !ok {
            return Err(SchedError::UnsafeFission {
                var: v.clone(),
                reason: format!(
                    "buffer `{buf}` is shared between the two halves but not all of its accesses are \
                     indexed by `{v}`"
                ),
            });
        }
    }
    Ok(())
}

/// Checks that a half that does not use the loop variable may be hoisted out
/// of the loop (executed once instead of once per iteration).
fn check_hoistable(v: &Sym, half: &[Stmt]) -> Result<()> {
    fn contains_reduce(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Reduce { .. } => true,
            Stmt::For { body, .. } => contains_reduce(body),
            Stmt::If { then_body, else_body, .. } => contains_reduce(then_body) || contains_reduce(else_body),
            Stmt::Call { instr, .. } => contains_reduce(&instr.body),
            _ => false,
        })
    }
    if contains_reduce(half) {
        return Err(SchedError::UnsafeFission {
            var: v.clone(),
            reason: "the hoisted half contains reductions, so repeating it is not idempotent".into(),
        });
    }
    let reads: std::collections::BTreeSet<_> = half.iter().flat_map(|s| s.read_bufs()).collect();
    let writes: std::collections::BTreeSet<_> = half.iter().flat_map(|s| s.written_bufs()).collect();
    if let Some(b) = writes.iter().find(|b| reads.contains(*b)) {
        return Err(SchedError::UnsafeFission {
            var: v.clone(),
            reason: format!(
                "the hoisted half both reads and writes `{b}`, so repeating it is not idempotent"
            ),
        });
    }
    Ok(())
}

fn accesses_mention_var(stmts: &[Stmt], buf: &Sym, v: &Sym) -> bool {
    fn expr_accesses_ok(e: &exo_ir::Expr, buf: &Sym, v: &Sym) -> bool {
        use exo_ir::Expr;
        match e {
            Expr::Read { buf: b, idx } => {
                let self_ok = if b == buf { idx.iter().any(|i| i.uses_var(v)) } else { true };
                self_ok && idx.iter().all(|i| expr_accesses_ok(i, buf, v))
            }
            Expr::Binop { lhs, rhs, .. } => expr_accesses_ok(lhs, buf, v) && expr_accesses_ok(rhs, buf, v),
            Expr::Neg(inner) => expr_accesses_ok(inner, buf, v),
            _ => true,
        }
    }
    fn stmt_ok(s: &Stmt, buf: &Sym, v: &Sym) -> bool {
        match s {
            Stmt::Assign { buf: b, idx, rhs } | Stmt::Reduce { buf: b, idx, rhs } => {
                let target_ok = if b == buf { idx.iter().any(|i| i.uses_var(v)) } else { true };
                target_ok && idx.iter().all(|i| expr_accesses_ok(i, buf, v)) && expr_accesses_ok(rhs, buf, v)
            }
            Stmt::For { body, .. } => body.iter().all(|s| stmt_ok(s, buf, v)),
            Stmt::If { then_body, else_body, .. } => {
                then_body.iter().all(|s| stmt_ok(s, buf, v)) && else_body.iter().all(|s| stmt_ok(s, buf, v))
            }
            Stmt::Call { args, .. } => args.iter().all(|a| match a {
                exo_ir::CallArg::Window(w) if w.buf == *buf => w.idx.iter().any(|acc| match acc {
                    exo_ir::WAccess::Point(e) => e.uses_var(v),
                    exo_ir::WAccess::Interval(lo, hi) => lo.uses_var(v) || hi.uses_var(v),
                }),
                _ => true,
            }),
            _ => true,
        }
    }
    stmts.iter().all(|s| stmt_ok(s, buf, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::divide_loop;
    use crate::memory::{bind_expr, expand_dim, lift_alloc, stage_mem};
    use exo_ir::builder::*;
    use exo_ir::interp::{run_proc, ArgValue, TensorData};
    use exo_ir::printer::proc_to_string;
    use exo_ir::{Expr, MemSpace, ScalarType};

    fn v2_kernel() -> Proc {
        let p = proc("uk_8x12")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(8)], MemSpace::Dram)
            .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), int(12)], MemSpace::Dram)
            .tensor_arg("C", ScalarType::F32, vec![int(12), int(8)], MemSpace::Dram)
            .body(vec![for_(
                "k",
                0,
                var("KC"),
                vec![for_(
                    "j",
                    0,
                    12,
                    vec![for_(
                        "i",
                        0,
                        8,
                        vec![reduce(
                            "C",
                            vec![var("j"), var("i")],
                            Expr::mul(
                                read("Ac", vec![var("k"), var("i")]),
                                read("Bc", vec![var("k"), var("j")]),
                            ),
                        )],
                    )],
                )],
            )])
            .build();
        let p = divide_loop(&p, "i", 4, "it", "itt", true).unwrap();
        divide_loop(&p, "j", 4, "jt", "jtt", true).unwrap()
    }

    fn staged_kernel() -> Proc {
        let q = stage_mem(&v2_kernel(), "C[_] += _", "C[4 * jt + jtt, 4 * it + itt]", "C_reg").unwrap();
        let q = expand_dim(&q, "C_reg", 4, "itt").unwrap();
        let q = expand_dim(&q, "C_reg", 2, "it").unwrap();
        let q = expand_dim(&q, "C_reg", 12, "jt * 4 + jtt").unwrap();
        lift_alloc(&q, "C_reg", 5).unwrap()
    }

    fn run_kernel(p: &Proc, kc: usize) -> TensorData {
        let a = TensorData::from_fn(ScalarType::F32, vec![kc, 8], |i| ((i * 3 + 1) % 9) as f64 * 0.5);
        let b = TensorData::from_fn(ScalarType::F32, vec![kc, 12], |i| ((i * 7 + 2) % 11) as f64 - 5.0);
        let c = TensorData::from_fn(ScalarType::F32, vec![12, 8], |i| (i % 4) as f64);
        let mut args =
            vec![ArgValue::Size(kc as i64), ArgValue::Tensor(a), ArgValue::Tensor(b), ArgValue::Tensor(c)];
        run_proc(p, &mut args).unwrap();
        args.remove(3).as_tensor().unwrap().clone()
    }

    #[test]
    fn fission_hoists_c_loads_and_stores_out_of_k_loop() {
        let p = staged_kernel();
        let q = autofission(&p, "C_reg[_] = _", Anchor::After, 5).unwrap();
        let q = autofission(&q, "C[_] = _", Anchor::Before, 5).unwrap();
        let text = proc_to_string(&q);
        // Three top-level pieces after the allocation: the load nest (no k),
        // the compute nest (with k), the store nest (no k).
        assert!(matches!(&q.body[0], Stmt::Alloc { .. }));
        assert_eq!(q.body.len(), 4, "alloc + load nest + compute nest + store nest:\n{text}");
        let load_uses_k = q.body[1].uses_var(&"k".into());
        let compute_uses_k =
            q.body[2].uses_var(&"k".into()) || matches!(&q.body[2], Stmt::For { var, .. } if var == "k");
        let store_uses_k = q.body[3].uses_var(&"k".into());
        assert!(!load_uses_k, "the C load nest must be hoisted out of k:\n{text}");
        assert!(compute_uses_k, "the compute nest keeps the k loop:\n{text}");
        assert!(!store_uses_k, "the C store nest must be hoisted out of k:\n{text}");
        // Behaviour is preserved.
        assert_eq!(run_kernel(&v2_kernel(), 4), run_kernel(&q, 4));
    }

    #[test]
    fn fission_moves_operand_loads_to_k_loop() {
        let p = staged_kernel();
        let p = autofission(&p, "C_reg[_] = _", Anchor::After, 5).unwrap();
        let p = autofission(&p, "C[_] = _", Anchor::Before, 5).unwrap();
        // Bind the A operand and lift its load to just inside the k loop.
        let p = bind_expr(&p, "Ac[_]", "A_reg").unwrap();
        let p = expand_dim(&p, "A_reg", 4, "itt").unwrap();
        let p = expand_dim(&p, "A_reg", 2, "it").unwrap();
        let p = lift_alloc(&p, "A_reg", 5).unwrap();
        let q = autofission(&p, "A_reg[_] = _", Anchor::After, 4).unwrap();
        let text = proc_to_string(&q);
        // Inside the k loop the first statement block must be the A_reg load
        // nest (loops it, itt only).
        let k_loop = q
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::For { var, body, .. } if var == "k" => Some(body.clone()),
                _ => None,
            })
            .expect("k loop exists");
        assert!(
            k_loop.len() >= 2,
            "k loop should contain the hoisted load nest and the compute nest:\n{text}"
        );
        assert!(!k_loop[0].uses_var(&"jt".into()), "A load nest must not iterate over jt:\n{text}");
        assert!(
            matches!(&k_loop[0], Stmt::For { var, .. } if var == "it"),
            "A load nest must start with the `it` loop:\n{text}"
        );
        assert_eq!(run_kernel(&v2_kernel(), 3), run_kernel(&q, 3));
    }

    #[test]
    fn fission_errors_when_lifting_too_far() {
        let p = staged_kernel();
        assert!(matches!(
            autofission(&p, "C_reg[_] = _", Anchor::After, 12),
            Err(SchedError::LiftTooFar { .. })
        ));
    }

    #[test]
    fn fission_rejects_unsafe_distribution() {
        // acc[0] is written by the first statement and read by the second
        // without the loop variable in its subscript: fissioning the loop
        // would change the interleaving.
        let p = proc("unsafe")
            .size_arg("N")
            .tensor_arg("x", ScalarType::F32, vec![var("N")], MemSpace::Dram)
            .body(vec![
                alloc("acc", ScalarType::F32, vec![int(1)], MemSpace::Dram),
                for_(
                    "i",
                    0,
                    var("N"),
                    vec![
                        assign("acc", vec![int(0)], read("x", vec![var("i")])),
                        assign("x", vec![var("i")], Expr::mul(read("acc", vec![int(0)]), flt(2.0))),
                    ],
                ),
            ])
            .build();
        let path = crate::pattern::find_first(&p, "acc[_] = _").unwrap();
        let err = fission_at(&p, &path, Anchor::After, 1).unwrap_err();
        assert!(matches!(err, SchedError::UnsafeFission { .. }));
    }

    #[test]
    fn fission_rejects_hoisting_reductions() {
        // The first statement does not use the loop variable but is a
        // reduction: hoisting it out would change the result.
        let p = proc("reduce_hoist")
            .size_arg("N")
            .tensor_arg("x", ScalarType::F32, vec![var("N")], MemSpace::Dram)
            .tensor_arg("total", ScalarType::F32, vec![int(1)], MemSpace::Dram)
            .body(vec![for_(
                "i",
                0,
                var("N"),
                vec![
                    reduce("total", vec![int(0)], flt(1.0)),
                    assign("x", vec![var("i")], read("total", vec![int(0)])),
                ],
            )])
            .build();
        let path = crate::pattern::find_first(&p, "total[_] += _").unwrap();
        let err = fission_at(&p, &path, Anchor::After, 1).unwrap_err();
        assert!(matches!(err, SchedError::UnsafeFission { .. }));
    }

    #[test]
    fn gap_at_block_edges_moves_outward_without_splitting() {
        // Splitting before the first statement of the innermost block should
        // not duplicate loops.
        let p = staged_kernel();
        let path = crate::pattern::find_first(&p, "C_reg[_] = _").unwrap();
        let q = fission_at(&p, &path, Anchor::Before, 2).unwrap();
        assert_eq!(run_kernel(&v2_kernel(), 2), run_kernel(&q, 2));
    }
}
