//! Buffer-staging operators: `stage_mem`, `bind_expr`, `expand_dim`, and
//! `lift_alloc`. These are the operators the paper uses to materialise the
//! `C_reg`, `A_reg`, and `B_reg` register tiles (Section III, Figs. 8–9).

use exo_ir::stmt::{block_of_mut, splice_at, stmt_at, stmt_at_mut};
use exo_ir::{ArgKind, Expr, MemSpace, Proc, ScalarType, Stmt, Sym, WAccess, WindowExpr};

use crate::error::{Result, SchedError};
use crate::pattern::{find_all, find_first, ExprPattern, StmtPattern};

/// Whether two index expressions are equivalent (same affine normal form, or
/// structurally equal after simplification).
pub(crate) fn exprs_equiv(a: &Expr, b: &Expr) -> bool {
    match (exo_ir::Affine::of(a), exo_ir::Affine::of(b)) {
        (Some(x), Some(y)) => x == y,
        _ => a.simplify() == b.simplify(),
    }
}

/// Looks up the element type of a buffer: a tensor argument or a local
/// allocation.
fn buffer_type(p: &Proc, buf: &Sym) -> Option<ScalarType> {
    if let Some(arg) = p.arg(buf) {
        if let ArgKind::Tensor { ty, .. } = &arg.kind {
            return Some(*ty);
        }
    }
    for (_, stmt) in exo_ir::stmt::walk(&p.body) {
        if let Stmt::Alloc { name, ty, .. } = stmt {
            if name == buf {
                return Some(*ty);
            }
        }
    }
    None
}

/// Stages the memory region `window` of a buffer into a new scratch buffer
/// around the first statement matching `stmt_pattern` (the paper's
/// `stage_mem(p, 'C[_] += _', 'C[4 * jt + jtt, 4 * it + itt]', 'C_reg')`).
///
/// The rewrite produces, in place of the matched statement `S`:
///
/// 1. an allocation of the scratch buffer (rank = number of interval
///    dimensions of the window, zero for a single staged element),
/// 2. a copy-in if `S` reads the buffer,
/// 3. `S` with every window-matching access redirected to the scratch buffer,
/// 4. a copy-back if `S` writes the buffer.
///
/// # Errors
///
/// * [`SchedError::PatternNotFound`] if no statement matches.
/// * [`SchedError::UnknownBuffer`] if the window's buffer is unknown.
/// * [`SchedError::OutOfRange`] if an access to the buffer inside the matched
///   statement cannot be expressed relative to the window.
pub fn stage_mem(p: &Proc, stmt_pattern: &str, window: &str, new_name: &str) -> Result<Proc> {
    let path = find_first(p, stmt_pattern)?;
    let target = stmt_at(&p.body, &path).expect("path from find_first is valid").clone();
    let win = exo_ir::parse::parse_window(window)?;
    let buf = win.buf.clone();
    let ty = buffer_type(p, &buf).ok_or_else(|| SchedError::UnknownBuffer { buf: buf.clone() })?;
    let new_sym = p.fresh_sym(new_name);

    // Dimensions of the staged buffer: one per interval access.
    let staged_dims: Vec<Expr> = win
        .idx
        .iter()
        .filter_map(|a| match a {
            WAccess::Interval(lo, hi) => Some(Expr::sub(hi.clone(), lo.clone()).simplify()),
            WAccess::Point(_) => None,
        })
        .collect();

    let reads = target.read_bufs().contains(&buf);
    let writes = target.written_bufs().contains(&buf);

    // Rewrite accesses of `buf` inside the target statement.
    let rewritten = rewrite_stmt_accesses(&target, &buf, &win, &new_sym)?;

    // Copy loops. Fresh iteration variables i0, i1, ... one per staged dim.
    let copy_vars: Vec<Sym> = (0..staged_dims.len()).map(|i| Sym::new(format!("s{i}"))).collect();
    let make_copy = |to_scratch: bool| -> Stmt {
        // Index of the original buffer at copy point.
        let mut orig_idx = Vec::new();
        let mut vi = 0usize;
        for a in &win.idx {
            match a {
                WAccess::Point(e) => orig_idx.push(e.clone()),
                WAccess::Interval(lo, _) => {
                    orig_idx.push(Expr::add(lo.clone(), Expr::var(copy_vars[vi].clone())).simplify());
                    vi += 1;
                }
            }
        }
        let scratch_idx: Vec<Expr> = copy_vars.iter().map(|v| Expr::var(v.clone())).collect();
        let inner = if to_scratch {
            Stmt::assign(new_sym.clone(), scratch_idx, Expr::read(buf.clone(), orig_idx))
        } else {
            Stmt::assign(buf.clone(), orig_idx, Expr::read(new_sym.clone(), scratch_idx))
        };
        let mut stmt = inner;
        for (v, d) in copy_vars.iter().zip(&staged_dims).rev() {
            stmt = Stmt::for_(v.clone(), 0, d.clone(), vec![stmt]);
        }
        stmt
    };

    let mut replacement = vec![Stmt::alloc(new_sym.clone(), ty, staged_dims.clone(), MemSpace::Dram)];
    if reads {
        replacement.push(make_copy(true));
    }
    replacement.push(rewritten);
    if writes {
        replacement.push(make_copy(false));
    }

    let mut out = p.clone();
    splice_at(&mut out.body, &path, replacement);
    out.validate()?;
    Ok(out)
}

/// Rewrites every access to `buf` matching `win` inside `stmt` so that it
/// refers to `scratch` with window-relative indices.
fn rewrite_stmt_accesses(stmt: &Stmt, buf: &Sym, win: &WindowExpr, scratch: &Sym) -> Result<Stmt> {
    let relative = |idx: &[Expr]| -> Result<Vec<Expr>> {
        if idx.len() != win.idx.len() {
            return Err(SchedError::OutOfRange {
                reason: format!(
                    "access to `{buf}` has rank {} but the staged window has rank {}",
                    idx.len(),
                    win.idx.len()
                ),
            });
        }
        let mut rel = Vec::new();
        for (e, a) in idx.iter().zip(&win.idx) {
            match a {
                WAccess::Point(pe) => {
                    if !exprs_equiv(e, pe) {
                        return Err(SchedError::OutOfRange {
                            reason: format!(
                                "access to `{buf}` does not lie in the staged window: `{}` vs `{}`",
                                exo_ir::printer::expr_to_string(e),
                                exo_ir::printer::expr_to_string(pe)
                            ),
                        });
                    }
                }
                WAccess::Interval(lo, _) => {
                    rel.push(Expr::sub(e.clone(), lo.clone()).simplify());
                }
            }
        }
        Ok(rel)
    };

    fn rewrite_expr(
        e: &Expr,
        buf: &Sym,
        scratch: &Sym,
        relative: &impl Fn(&[Expr]) -> Result<Vec<Expr>>,
    ) -> Result<Expr> {
        Ok(match e {
            Expr::Read { buf: b, idx } if b == buf => {
                Expr::Read { buf: scratch.clone(), idx: relative(idx)? }
            }
            Expr::Read { buf: b, idx } => Expr::Read {
                buf: b.clone(),
                idx: idx.iter().map(|i| rewrite_expr(i, buf, scratch, relative)).collect::<Result<_>>()?,
            },
            Expr::Binop { op, lhs, rhs } => Expr::Binop {
                op: *op,
                lhs: Box::new(rewrite_expr(lhs, buf, scratch, relative)?),
                rhs: Box::new(rewrite_expr(rhs, buf, scratch, relative)?),
            },
            Expr::Neg(inner) => Expr::Neg(Box::new(rewrite_expr(inner, buf, scratch, relative)?)),
            _ => e.clone(),
        })
    }

    fn rewrite(
        stmt: &Stmt,
        buf: &Sym,
        scratch: &Sym,
        relative: &impl Fn(&[Expr]) -> Result<Vec<Expr>>,
    ) -> Result<Stmt> {
        Ok(match stmt {
            Stmt::Assign { buf: b, idx, rhs } => {
                let rhs = rewrite_expr(rhs, buf, scratch, relative)?;
                if b == buf {
                    Stmt::Assign { buf: scratch.clone(), idx: relative(idx)?, rhs }
                } else {
                    Stmt::Assign { buf: b.clone(), idx: idx.clone(), rhs }
                }
            }
            Stmt::Reduce { buf: b, idx, rhs } => {
                let rhs = rewrite_expr(rhs, buf, scratch, relative)?;
                if b == buf {
                    Stmt::Reduce { buf: scratch.clone(), idx: relative(idx)?, rhs }
                } else {
                    Stmt::Reduce { buf: b.clone(), idx: idx.clone(), rhs }
                }
            }
            Stmt::For { var, lo, hi, body } => Stmt::For {
                var: var.clone(),
                lo: lo.clone(),
                hi: hi.clone(),
                body: body.iter().map(|s| rewrite(s, buf, scratch, relative)).collect::<Result<_>>()?,
            },
            other => other.clone(),
        })
    }

    rewrite(stmt, buf, scratch, &relative)
}

/// Binds the first read matching `expr_pattern` inside the first statement
/// that contains one to a new rank-0 scratch buffer (the paper's
/// `bind_expr(p, 'Xc[_]', 'X_reg')`).
///
/// The rewrite inserts, immediately before that statement, an allocation of
/// the scratch and an assignment of the matched expression into it, and
/// replaces every identical occurrence of the expression in the statement
/// with a read of the scratch.
///
/// # Errors
///
/// * [`SchedError::PatternNotFound`] if no statement contains a matching
///   read.
pub fn bind_expr(p: &Proc, expr_pattern: &str, new_name: &str) -> Result<Proc> {
    let pat = ExprPattern::parse(expr_pattern)?;
    let ty = buffer_type(p, &pat.buf).ok_or_else(|| SchedError::UnknownBuffer { buf: pat.buf.clone() })?;
    let new_sym = p.fresh_sym(new_name);

    // Find the first Assign/Reduce whose right-hand side contains the read.
    let mut found: Option<(Vec<usize>, Expr)> = None;
    for (path, stmt) in exo_ir::stmt::walk(&p.body) {
        let rhs = match stmt {
            Stmt::Assign { rhs, .. } | Stmt::Reduce { rhs, .. } => rhs,
            _ => continue,
        };
        if let Some(e) = pat.find_in_expr(rhs) {
            found = Some((path, e));
            break;
        }
    }
    let (path, matched) = found.ok_or_else(|| SchedError::PatternNotFound {
        pattern: expr_pattern.to_string(),
        proc: p.name.clone(),
    })?;

    let target = stmt_at(&p.body, &path).expect("path is valid").clone();
    let replaced = replace_expr_in_stmt(&target, &matched, &Expr::read(new_sym.clone(), vec![]));
    let replacement = vec![
        Stmt::alloc(new_sym.clone(), ty, vec![], MemSpace::Dram),
        Stmt::assign(new_sym.clone(), vec![], matched),
        replaced,
    ];
    let mut out = p.clone();
    splice_at(&mut out.body, &path, replacement);
    out.validate()?;
    Ok(out)
}

fn replace_expr_in_stmt(stmt: &Stmt, from: &Expr, to: &Expr) -> Stmt {
    fn go_expr(e: &Expr, from: &Expr, to: &Expr) -> Expr {
        if e == from {
            return to.clone();
        }
        match e {
            Expr::Binop { op, lhs, rhs } => Expr::Binop {
                op: *op,
                lhs: Box::new(go_expr(lhs, from, to)),
                rhs: Box::new(go_expr(rhs, from, to)),
            },
            Expr::Neg(inner) => Expr::Neg(Box::new(go_expr(inner, from, to))),
            Expr::Read { buf, idx } => {
                Expr::Read { buf: buf.clone(), idx: idx.iter().map(|i| go_expr(i, from, to)).collect() }
            }
            _ => e.clone(),
        }
    }
    match stmt {
        Stmt::Assign { buf, idx, rhs } => {
            Stmt::Assign { buf: buf.clone(), idx: idx.clone(), rhs: go_expr(rhs, from, to) }
        }
        Stmt::Reduce { buf, idx, rhs } => {
            Stmt::Reduce { buf: buf.clone(), idx: idx.clone(), rhs: go_expr(rhs, from, to) }
        }
        other => other.clone(),
    }
}

/// Adds a new leading dimension of extent `size` to the allocation of `buf`,
/// and prefixes every access to `buf` with the index expression `idx` (the
/// paper's `expand_dim(p, 'C_reg', 4, 'itt')`).
///
/// # Errors
///
/// * [`SchedError::UnknownBuffer`] if `buf` is not a local allocation.
/// * [`SchedError::OutOfRange`] if `size` is not positive, or the indexing
///   expression is a constant outside `[0, size)`.
pub fn expand_dim(p: &Proc, buf: &str, size: i64, idx: &str) -> Result<Proc> {
    if size <= 0 {
        return Err(SchedError::OutOfRange { reason: format!("expand_dim size {size} must be positive") });
    }
    let name = Sym::new(buf);
    let idx_expr = exo_ir::parse::parse_expr(idx)?.simplify();
    if let Some(c) = idx_expr.as_int() {
        if c < 0 || c >= size {
            return Err(SchedError::OutOfRange {
                reason: format!("constant index {c} outside new dimension of extent {size}"),
            });
        }
    }
    let alloc_paths = find_all(p, &StmtPattern::AllocOf(name.clone()));
    let alloc_path =
        alloc_paths.into_iter().next().ok_or_else(|| SchedError::UnknownBuffer { buf: name.clone() })?;

    let mut out = p.clone();
    if let Some(Stmt::Alloc { dims, .. }) = stmt_at_mut(&mut out.body, &alloc_path) {
        dims.insert(0, Expr::int(size));
    }
    out.body = out.body.iter().map(|s| prefix_accesses(s, &name, &idx_expr)).collect();
    out.validate()?;
    Ok(out)
}

fn prefix_accesses(stmt: &Stmt, buf: &Sym, idx: &Expr) -> Stmt {
    fn go_expr(e: &Expr, buf: &Sym, idx: &Expr) -> Expr {
        match e {
            Expr::Read { buf: b, idx: i } => {
                let mut new_idx: Vec<Expr> = i.iter().map(|x| go_expr(x, buf, idx)).collect();
                if b == buf {
                    new_idx.insert(0, idx.clone());
                }
                Expr::Read { buf: b.clone(), idx: new_idx }
            }
            Expr::Binop { op, lhs, rhs } => Expr::Binop {
                op: *op,
                lhs: Box::new(go_expr(lhs, buf, idx)),
                rhs: Box::new(go_expr(rhs, buf, idx)),
            },
            Expr::Neg(inner) => Expr::Neg(Box::new(go_expr(inner, buf, idx))),
            _ => e.clone(),
        }
    }
    match stmt {
        Stmt::Assign { buf: b, idx: i, rhs } => {
            let mut new_idx: Vec<Expr> = i.clone();
            if b == buf {
                new_idx.insert(0, idx.clone());
            }
            Stmt::Assign { buf: b.clone(), idx: new_idx, rhs: go_expr(rhs, buf, idx) }
        }
        Stmt::Reduce { buf: b, idx: i, rhs } => {
            let mut new_idx: Vec<Expr> = i.clone();
            if b == buf {
                new_idx.insert(0, idx.clone());
            }
            Stmt::Reduce { buf: b.clone(), idx: new_idx, rhs: go_expr(rhs, buf, idx) }
        }
        Stmt::For { var, lo, hi, body } => Stmt::For {
            var: var.clone(),
            lo: lo.clone(),
            hi: hi.clone(),
            body: body.iter().map(|s| prefix_accesses(s, buf, idx)).collect(),
        },
        Stmt::If { cond, then_body, else_body } => Stmt::If {
            cond: cond.clone(),
            then_body: then_body.iter().map(|s| prefix_accesses(s, buf, idx)).collect(),
            else_body: else_body.iter().map(|s| prefix_accesses(s, buf, idx)).collect(),
        },
        Stmt::Call { instr, args } => Stmt::Call {
            instr: instr.clone(),
            args: args
                .iter()
                .map(|a| match a {
                    exo_ir::CallArg::Window(w) if w.buf == *buf => {
                        let mut new_idx = w.idx.clone();
                        new_idx.insert(0, WAccess::Point(idx.clone()));
                        exo_ir::CallArg::Window(WindowExpr::new(w.buf.clone(), new_idx))
                    }
                    other => other.clone(),
                })
                .collect(),
        },
        other => other.clone(),
    }
}

/// Moves the allocation of `buf` up through `n_lifts` enclosing statements
/// (loops), placing it immediately before the statement it used to live
/// inside (the paper's `lift_alloc(p, 'C_reg', n_lifts=5)`).
///
/// Lifting past the outermost nesting level stops at the procedure body, as
/// in Exo.
///
/// # Errors
///
/// * [`SchedError::UnknownBuffer`] if `buf` is not allocated in the body.
/// * [`SchedError::OutOfRange`] if the allocation's dimensions depend on a
///   loop variable that would go out of scope.
pub fn lift_alloc(p: &Proc, buf: &str, n_lifts: usize) -> Result<Proc> {
    let name = Sym::new(buf);
    let mut out = p.clone();
    for _ in 0..n_lifts {
        let paths = find_all(&out, &StmtPattern::AllocOf(name.clone()));
        let path = match paths.into_iter().next() {
            Some(p) => p,
            None => return Err(SchedError::UnknownBuffer { buf: name }),
        };
        if path.len() == 1 {
            // Already at the top of the procedure body.
            break;
        }
        let alloc_stmt = stmt_at(&out.body, &path).expect("path is valid").clone();
        // The loop variable we are lifting across must not appear in the
        // allocation's dimensions.
        let parent_path = &path[..path.len() - 1];
        if let Some(Stmt::For { var, .. }) = stmt_at(&out.body, parent_path) {
            if let Stmt::Alloc { dims, .. } = &alloc_stmt {
                if dims.iter().any(|d| d.uses_var(var)) {
                    return Err(SchedError::OutOfRange {
                        reason: format!("allocation of `{name}` depends on loop variable `{var}`"),
                    });
                }
            }
        }
        // Remove the alloc from its current block...
        {
            let (block, i) = block_of_mut(&mut out.body, &path).expect("path is valid");
            block.remove(i);
        }
        // ...and insert it right before its former parent statement.
        {
            let (parent_block, pi) = block_of_mut(&mut out.body, parent_path).expect("parent path is valid");
            parent_block.insert(pi, alloc_stmt);
        }
    }
    out.validate()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::builder::*;
    use exo_ir::interp::{run_proc, ArgValue, TensorData};
    use exo_ir::printer::proc_to_string;

    /// The v2 kernel of the paper (Fig. 7): loops k, jt, jtt, it, itt.
    fn v2_kernel() -> Proc {
        let p = proc("uk_8x12")
            .size_arg("KC")
            .tensor_arg("Ac", ScalarType::F32, vec![var("KC"), int(8)], MemSpace::Dram)
            .tensor_arg("Bc", ScalarType::F32, vec![var("KC"), int(12)], MemSpace::Dram)
            .tensor_arg("C", ScalarType::F32, vec![int(12), int(8)], MemSpace::Dram)
            .body(vec![for_(
                "k",
                0,
                var("KC"),
                vec![for_(
                    "j",
                    0,
                    12,
                    vec![for_(
                        "i",
                        0,
                        8,
                        vec![reduce(
                            "C",
                            vec![var("j"), var("i")],
                            Expr::mul(
                                read("Ac", vec![var("k"), var("i")]),
                                read("Bc", vec![var("k"), var("j")]),
                            ),
                        )],
                    )],
                )],
            )])
            .build();
        let p = crate::loops::divide_loop(&p, "i", 4, "it", "itt", true).unwrap();
        crate::loops::divide_loop(&p, "j", 4, "jt", "jtt", true).unwrap()
    }

    fn run_kernel(p: &Proc, kc: usize) -> TensorData {
        let a = TensorData::from_fn(ScalarType::F32, vec![kc, 8], |i| ((i * 3 + 1) % 9) as f64 * 0.5);
        let b = TensorData::from_fn(ScalarType::F32, vec![kc, 12], |i| ((i * 7 + 2) % 11) as f64 - 5.0);
        let c = TensorData::from_fn(ScalarType::F32, vec![12, 8], |i| (i % 4) as f64);
        let mut args =
            vec![ArgValue::Size(kc as i64), ArgValue::Tensor(a), ArgValue::Tensor(b), ArgValue::Tensor(c)];
        run_proc(p, &mut args).unwrap();
        args.remove(3).as_tensor().unwrap().clone()
    }

    #[test]
    fn stage_mem_stages_single_element() {
        let p = v2_kernel();
        let q = stage_mem(&p, "C[_] += _", "C[4 * jt + jtt, 4 * it + itt]", "C_reg").unwrap();
        let text = proc_to_string(&q);
        assert!(text.contains("C_reg: f32[] @ DRAM"));
        assert!(text.contains("C_reg[] = C[4 * jt + jtt, 4 * it + itt]"));
        assert!(text.contains("C_reg[] += Ac[k, 4 * it + itt] * Bc[k, 4 * jt + jtt]"));
        assert!(text.contains("C[4 * jt + jtt, 4 * it + itt] = C_reg[]"));
        assert_eq!(run_kernel(&p, 3), run_kernel(&q, 3));
    }

    #[test]
    fn stage_mem_rejects_mismatched_window() {
        let p = v2_kernel();
        let err = stage_mem(&p, "C[_] += _", "C[jt, it]", "C_reg").unwrap_err();
        assert!(matches!(err, SchedError::OutOfRange { .. }));
    }

    #[test]
    fn stage_mem_with_interval_stages_a_row() {
        // Stage the whole 4-element row C[4*jt+jtt, 4*it : 4*it+4].
        let p = v2_kernel();
        let q = stage_mem(&p, "C[_] += _", "C[4 * jt + jtt, 4 * it:4 * it + 4]", "C_row").unwrap();
        let text = proc_to_string(&q);
        assert!(text.contains("C_row: f32[4] @ DRAM"));
        assert!(text.contains("for s0 in seq(0, 4):"));
        assert_eq!(run_kernel(&p, 2), run_kernel(&q, 2));
    }

    #[test]
    fn bind_expr_introduces_scalar_scratch() {
        let p = v2_kernel();
        let q = bind_expr(&p, "Ac[_]", "A_reg").unwrap();
        let text = proc_to_string(&q);
        assert!(text.contains("A_reg: f32[] @ DRAM"));
        assert!(text.contains("A_reg[] = Ac[k, 4 * it + itt]"));
        assert!(text.contains("C[4 * jt + jtt, 4 * it + itt] += A_reg[] * Bc[k, 4 * jt + jtt]"));
        assert_eq!(run_kernel(&p, 3), run_kernel(&q, 3));
    }

    #[test]
    fn bind_expr_unknown_buffer_errors() {
        let p = v2_kernel();
        assert!(bind_expr(&p, "Zc[_]", "Z_reg").is_err());
    }

    #[test]
    fn expand_dim_grows_allocation_and_accesses() {
        let p = v2_kernel();
        let q = stage_mem(&p, "C[_] += _", "C[4 * jt + jtt, 4 * it + itt]", "C_reg").unwrap();
        let q = expand_dim(&q, "C_reg", 4, "itt").unwrap();
        let q = expand_dim(&q, "C_reg", 2, "it").unwrap();
        let q = expand_dim(&q, "C_reg", 12, "jt * 4 + jtt").unwrap();
        let text = proc_to_string(&q);
        assert!(text.contains("C_reg: f32[12, 2, 4] @ DRAM"));
        assert!(text.contains("C_reg[4 * jt + jtt, it, itt] += Ac[k, 4 * it + itt] * Bc[k, 4 * jt + jtt]"));
        assert_eq!(run_kernel(&p, 3), run_kernel(&q, 3));
    }

    #[test]
    fn expand_dim_validates_inputs() {
        let p = v2_kernel();
        assert!(expand_dim(&p, "nope", 4, "itt").is_err());
        let q = stage_mem(&p, "C[_] += _", "C[4 * jt + jtt, 4 * it + itt]", "C_reg").unwrap();
        assert!(expand_dim(&q, "C_reg", 0, "itt").is_err());
        assert!(expand_dim(&q, "C_reg", 4, "7").is_err());
    }

    #[test]
    fn lift_alloc_hoists_to_top() {
        let p = v2_kernel();
        let q = stage_mem(&p, "C[_] += _", "C[4 * jt + jtt, 4 * it + itt]", "C_reg").unwrap();
        let q = expand_dim(&q, "C_reg", 4, "itt").unwrap();
        let q = expand_dim(&q, "C_reg", 2, "it").unwrap();
        let q = expand_dim(&q, "C_reg", 12, "jt * 4 + jtt").unwrap();
        let q = lift_alloc(&q, "C_reg", 5).unwrap();
        // The allocation must now be the first statement of the body.
        match &q.body[0] {
            Stmt::Alloc { name, .. } => assert_eq!(*name, "C_reg"),
            other => panic!("expected allocation at top, found {other:?}"),
        }
        assert_eq!(run_kernel(&p, 2), run_kernel(&q, 2));
    }

    #[test]
    fn lift_alloc_stops_at_procedure_body() {
        let p = v2_kernel();
        let q = stage_mem(&p, "C[_] += _", "C[4 * jt + jtt, 4 * it + itt]", "C_reg").unwrap();
        // Far more lifts than nesting levels: should stop gracefully at the top.
        let q = lift_alloc(&q, "C_reg", 50).unwrap();
        assert!(matches!(&q.body[0], Stmt::Alloc { .. }));
    }

    #[test]
    fn lift_alloc_rejects_dimensions_using_loop_vars() {
        let p = proc("p")
            .size_arg("N")
            .tensor_arg("x", ScalarType::F32, vec![var("N")], MemSpace::Dram)
            .body(vec![for_(
                "i",
                1,
                var("N"),
                vec![
                    alloc("tmp", ScalarType::F32, vec![var("i")], MemSpace::Dram),
                    assign("x", vec![var("i")], read("tmp", vec![int(0)])),
                ],
            )])
            .build();
        assert!(matches!(lift_alloc(&p, "tmp", 1), Err(SchedError::OutOfRange { .. })));
    }

    #[test]
    fn lift_alloc_unknown_buffer_errors() {
        let p = v2_kernel();
        assert!(matches!(lift_alloc(&p, "ghost", 1), Err(SchedError::UnknownBuffer { .. })));
    }
}
