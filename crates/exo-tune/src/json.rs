//! A minimal JSON reader/writer for the registry's persistence file.
//!
//! The workspace carries no external dependencies, so the registry cannot
//! use `serde`. This module implements just enough of RFC 8259 for the
//! verdict cache: objects, arrays, strings, numbers, booleans and null,
//! with no extensions. It is not a general-purpose JSON library — inputs
//! other than registry files are only guaranteed to parse or fail cleanly,
//! never to panic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted for deterministic round-trips.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        let v = self.as_num()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= usize::MAX as f64 {
            Some(v as usize)
        } else {
            None
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A field of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.get(key)
    }

    /// Serialises the value to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut parser = Parser { chars: &bytes, pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.chars.len() {
        return Err(format!("trailing characters at offset {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!("expected `{c}` at offset {}, found `{got}`", self.pos - 1)),
            None => Err(format!("expected `{c}`, found end of input")),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{c}` at offset {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for expected in word.chars() {
            self.expect(expected)?;
        }
        Ok(value)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Obj(map)),
                Some(c) => return Err(format!("expected `,` or `}}`, found `{c}`")),
                None => return Err("unterminated object".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Arr(items)),
                Some(c) => return Err(format!("expected `,` or `]`, found `{c}`")),
                None => return Err("unterminated array".into()),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit =
                                self.bump().and_then(|c| c.to_digit(16)).ok_or("invalid \\u escape")?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some(c) => return Err(format!("invalid escape `\\{c}`")),
                    None => return Err("unterminated string".into()),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_registry_shapes() {
        let mut obj = BTreeMap::new();
        obj.insert("isa".to_string(), Json::Str("neon-f32".into()));
        obj.insert("version".to_string(), Json::Num(1.0));
        obj.insert(
            "verdicts".to_string(),
            Json::Arr(vec![Json::Obj(BTreeMap::from([
                ("m".to_string(), Json::Num(1000.0)),
                ("gflops".to_string(), Json::Num(31.25)),
            ]))]),
        );
        let value = Json::Obj(obj);
        let text = value.to_text();
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed = parse(" { \"a\\n\" : [ 1 , -2.5e1 , true , null , \"x\\u0041\" ] } ").unwrap();
        let arr = parsed.get("a\n").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-25.0));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4].as_str(), Some("xA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\":1} junk").is_err());
        assert!(parse("12..5").is_err());
    }

    #[test]
    fn integer_output_has_no_fraction() {
        assert_eq!(Json::Num(512.0).to_text(), "512");
        assert_eq!(Json::Num(0.5).to_text(), "0.5");
    }

    #[test]
    fn accessor_helpers() {
        let v = parse("{\"n\": 3}").unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(parse("-1").unwrap().as_usize(), None);
        assert_eq!(parse("1.5").unwrap().as_usize(), None);
        assert!(v.get("missing").is_none());
    }
}
